// Fixture: pointer-keyed ordered containers and pointer comparators.
#include <map>
#include <set>
#include <string>

struct Node {};

std::map<Node*, int> rank_by_node;           // finding: pointer key
std::set<const Node*> visited;               // finding: pointer key
std::set<Node*, std::less<Node*>> sorted;    // finding: pointer key + less

// Negatives: pointers as *values* are fine — only key order matters.
std::map<std::string, Node*> node_by_name;
std::map<int, const Node*> node_by_id;
std::set<int> plain_ids;
