// Fixture: naked std::thread::detach().
#include <thread>

void fire_and_forget() {
  std::thread t([] {});
  t.detach();  // finding: detach
}

void joined_is_fine() {
  std::thread t([] {});
  t.join();
}
