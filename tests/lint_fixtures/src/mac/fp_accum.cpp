// Fixture: floating-point accumulation in an engine hot path.
#include <cstdint>
#include <vector>

double mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;  // finding: fp compound assignment
  return sum;
}

double scaled(double acc, double f) {
  acc *= f;  // finding: fp compound assignment
  return acc;
}

// Negatives: integer accumulation, and annotated deterministic reductions.
// (Identifier tracking is file-scoped, so the integer accumulator uses a
// name no floating-point variable shares.)
std::uint64_t total(const std::vector<std::uint64_t>& xs) {
  std::uint64_t isum = 0;
  for (const std::uint64_t x : xs) isum += x;
  return isum;
}

double annotated_mean(const std::vector<double>& xs) {
  double sum = 0.0;
  // lint: fp-ok (fixture: serial loop in vector order, never sharded)
  for (double x : xs) sum += x;
  return sum;
}
