// Fixture: raw sleep primitives inside the serve stack. Every wait here
// must be a bounded, jittered backoff (sleep_checking_stop +
// reconnect_backoff_delay) — naked sleeps in retry loops are flagged.
#include <chrono>
#include <thread>
#include <unistd.h>

void retry_forever(bool (*connect)()) {
  while (!connect()) {
    std::this_thread::sleep_for(std::chrono::seconds(1));  // finding
  }
}

void poll_with_usleep() {
  ::usleep(100000);  // finding
}

void annotated_bounded_wait() {
  // Chunked cooperative wait, callers pass bounded delays. lint: backoff-ok
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

void not_a_sleep_call(int sleep) {
  // The identifier `sleep` without a call, and wrapper names containing
  // "sleep", must not be flagged.
  (void)sleep;
}

void sleep_checking_stop_caller(void (*sleep_checking_stop)(int)) {
  sleep_checking_stop(100);
}
