// Fixture: a checkpoint path using buffered writes and a bare ::write()
// without the O_APPEND + fsync discipline.
#include <fstream>
#include <string>
#include <unistd.h>

void journal_with_ofstream(const std::string& path, const std::string& line) {
  std::ofstream out(path, std::ios::app);  // finding: buffered stream
  out << line;
}

void journal_with_write(int fd, const std::string& line) {
  // finding (file-level): ::write without O_APPEND/fsync anywhere here
  (void)::write(fd, line.data(), line.size());
}
