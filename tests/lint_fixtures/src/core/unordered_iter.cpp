// Fixture: iteration over unordered containers in a result-affecting path.
#include <unordered_map>
#include <unordered_set>
#include <vector>

int iterate_map() {
  std::unordered_map<int, int> counts;
  int sum = 0;
  for (const auto& [k, v] : counts) sum += v;  // finding: range-for
  return sum;
}

int iterate_begin() {
  std::unordered_set<int> seen;
  return *seen.begin();  // finding: .begin()
}

// Negatives: lookups compare against .end() only — that is not iteration.
bool lookup(const std::unordered_map<int, int>& counts_by_key, int k) {
  const std::unordered_map<int, int>& index = counts_by_key;
  return index.find(k) != index.end();
}

int annotated_iteration() {
  std::unordered_set<int> pool;
  int parity = 0;
  // lint: ordered-ok (fixture: XOR fold is order-insensitive)
  for (int v : pool) parity ^= v;
  return parity;
}

int ordered_is_fine(const std::vector<int>& xs) {
  int sum = 0;
  for (int x : xs) sum += x;
  return sum;
}
