// Fixture: wall-clock reads in a result-affecting path.
#include <chrono>
#include <ctime>

long now_seconds() { return time(nullptr); }  // finding: time()
long cpu_ticks() { return clock(); }          // finding: clock()

long epoch_ms() {
  using std::chrono::system_clock;  // finding: system_clock
  return 0;
}

// Negatives: steady_clock is monotonic and allowed; annotated reads pass.
long mono() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

long annotated() {
  // lint: wallclock-ok (fixture: value feeds a log line, never a result)
  return time(nullptr);
}

long elapsed_time(long start_time) { return start_time; }  // lookalike ident
