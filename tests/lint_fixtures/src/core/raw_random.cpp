// Fixture: every raw randomness source the raw-random rule must catch.
#include <cstdlib>
#include <random>  // finding: #include <random>

int draw_rand() { return rand(); }        // finding: C rand()
void reseed() { srand(42); }              // finding: srand()

unsigned device_draw() {
  std::random_device rd;                  // finding: std::random_device
  std::mt19937 gen(rd());                 // finding: std::mt19937
  return gen();
}

// Negatives: the rule must not fire on lookalike identifiers or text in
// comments/strings. rand() in a comment is fine.
int operand(int x) { return x; }
const char* kDoc = "call rand() for chaos";
int dualrad_value() { return 7; }
