// Fixture: a clean result-path file. Mentions of forbidden patterns in
// comments and string literals must not fire:
//   rand() srand() time(nullptr) std::unordered_map iteration detach()
#include <string>

/* block comment spanning
   lines with rand() and clock() inside */

const char* kHelp =
    "seed with srand(), never rand(); std::random_device is banned";

const char* kRaw = R"(rand() time(nullptr) .detach() inside a raw string)";

int answer() { return 42; }
