// Fixture: obs/ is exempt from raw-random and the wall-clock rule does not
// cover it — observability is out-of-band by construction.
#include <cstdlib>
#include <ctime>

long jitter() { return rand() % 100; }
long stamp() { return time(nullptr); }
