#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "byz/adaptive.hpp"
#include "byz/cpa.hpp"
#include "byz/plan.hpp"
#include "campaign/contract.hpp"
#include "core/audit.hpp"
#include "core/reference_engine.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "graph/graph.hpp"

/// Unit suite for the Byzantine node-fault subsystem (src/byz/): placement
/// validation and incremental growth, deterministic forged-token ids, the
/// CPA-vs-uncertified-relay acceptance contrast on a hand-built f-locally-
/// bounded instance, the forged-token audit dimension through Full and
/// Compressed traces, the broadcast-contract integration, and engine/thread
/// equivalence of Byzantine executions.

namespace dualrad {
namespace {

/// The canonical CPA instance-in-miniature: source 0, correct relays 1 and
/// 2, sink 3, and one Byzantine candidate 4.
///
///       0 -> 1 -> 3        G in-neighbors of 3: {1, 2, 4} — exactly one
///       0 -> 2 -> 3        Byzantine (node 4), so the placement {4} is
///       0 -> 4 -> 3        valid for f = 1.
///
/// G' == G: no unreliable edges, so executions depend only on the process
/// coins and the fault plan.
DualGraph five_node_net() {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 4);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(4, 3);
  Graph gp = g;
  return DualGraph(std::move(g), std::move(gp), 0);
}

SimConfig byz_config(const byz::ByzantinePlan& plan, Round max_rounds,
                     TraceLevel trace = TraceLevel::None) {
  SimConfig config;
  config.rule = CollisionRule::CR3;
  config.start = StartRule::Synchronous;
  config.max_rounds = max_rounds;
  config.seed = 11;
  config.trace = trace;
  config.byzantine = &plan;
  return config;
}

double metric_of(const SimResult& result, NodeId node, const char* name) {
  for (const ProcessMetricSample& m : result.process_metrics) {
    if (m.node == node && m.name == name) return m.value;
  }
  ADD_FAILURE() << "metric " << name << " missing at node " << node;
  return -1.0;
}

// ------------------------------------------------------- placement validity

TEST(ByzantinePlan, BindAcceptsValidPlacement) {
  const DualGraph net = five_node_net();
  byz::ByzantinePlan plan(1);
  plan.add(4, byz::ByzBehavior::Forge);
  plan.bind(net, {}, 99);
  ASSERT_TRUE(plan.bound());
  ASSERT_EQ(plan.faults().size(), 1u);
  EXPECT_TRUE(plan.is_byzantine(4));
  EXPECT_FALSE(plan.is_byzantine(3));
  EXPECT_GE(plan.faults()[0].forged_token, byz::kForgedTokenBase);
}

TEST(ByzantinePlan, BindRejectsIllFormedPlacements) {
  const DualGraph net = five_node_net();
  {
    byz::ByzantinePlan plan(1);  // out of range
    plan.add(5, byz::ByzBehavior::Silent);
    EXPECT_THROW(plan.bind(net, {}, 1), std::invalid_argument);
  }
  {
    byz::ByzantinePlan plan(1);  // duplicate fault node
    plan.add(4, byz::ByzBehavior::Silent);
    plan.add(4, byz::ByzBehavior::Forge);
    EXPECT_THROW(plan.bind(net, {}, 1), std::invalid_argument);
  }
  {
    byz::ByzantinePlan plan(1);  // the effective token source (net.source())
    plan.add(0, byz::ByzBehavior::Silent);
    EXPECT_THROW(plan.bind(net, {}, 1), std::invalid_argument);
  }
  {
    byz::ByzantinePlan plan(1);  // an explicit multi-token source
    plan.add(2, byz::ByzBehavior::Silent);
    EXPECT_THROW(plan.bind(net, {0, 2}, 1), std::invalid_argument);
  }
  {
    byz::ByzantinePlan plan(1);  // node 3 would have 2 Byzantine in-neighbors
    plan.add(1, byz::ByzBehavior::Silent);
    plan.add(2, byz::ByzBehavior::Silent);
    EXPECT_THROW(plan.bind(net, {}, 1), std::invalid_argument);
  }
  {
    byz::ByzantinePlan plan(2);  // ... which f = 2 admits
    plan.add(1, byz::ByzBehavior::Silent);
    plan.add(2, byz::ByzBehavior::Silent);
    EXPECT_NO_THROW(plan.bind(net, {}, 1));
  }
}

TEST(ByzantinePlan, TryCorruptEnforcesTheBoundIncrementally) {
  const DualGraph net = five_node_net();
  byz::ByzantinePlan plan(1);
  plan.add(4, byz::ByzBehavior::Silent);
  plan.bind(net, {}, 7);
  const std::uint64_t bound_version = plan.version();

  // Node 3 already has its one Byzantine in-neighbor; corrupting 1 or 2
  // would breach the bound, and inadmissible calls must not mutate.
  EXPECT_FALSE(plan.try_corrupt(1, byz::ByzBehavior::Silent, 2));
  EXPECT_FALSE(plan.try_corrupt(2, byz::ByzBehavior::Forge, 2));
  EXPECT_FALSE(plan.try_corrupt(4, byz::ByzBehavior::Silent, 2));  // already
  EXPECT_FALSE(plan.try_corrupt(0, byz::ByzBehavior::Silent, 2));  // source
  EXPECT_FALSE(plan.try_corrupt(9, byz::ByzBehavior::Silent, 2));  // range
  EXPECT_EQ(plan.faults().size(), 1u);
  EXPECT_EQ(plan.version(), bound_version);

  // Node 3 has no out-edges, so corrupting it burdens no correct node.
  EXPECT_TRUE(plan.try_corrupt(3, byz::ByzBehavior::Forge, 2));
  ASSERT_EQ(plan.faults().size(), 2u);
  EXPECT_TRUE(plan.is_byzantine(3));
  EXPECT_EQ(plan.faults()[1].active_from, 2);
  EXPECT_GE(plan.faults()[1].forged_token, byz::kForgedTokenBase);
  EXPECT_NE(plan.faults()[1].forged_token, plan.faults()[0].forged_token);

  // reset_adaptive rolls back to the bind-time baseline, repeatably.
  plan.reset_adaptive();
  EXPECT_EQ(plan.faults().size(), 1u);
  EXPECT_FALSE(plan.is_byzantine(3));
  EXPECT_TRUE(plan.try_corrupt(3, byz::ByzBehavior::Forge, 2));
  plan.reset_adaptive();
  EXPECT_EQ(plan.faults().size(), 1u);
}

TEST(ByzantinePlan, ForgedIdsAreDeterministicAndBanded) {
  const DualGraph net = five_node_net();
  byz::ByzantinePlan a(2), b(2), c(2);
  for (byz::ByzantinePlan* p : {&a, &b, &c}) {
    p->add(1, byz::ByzBehavior::Forge);
    p->add(2, byz::ByzBehavior::Forge);
  }
  a.bind(net, {}, 1234);
  b.bind(net, {}, 1234);
  c.bind(net, {}, 5678);
  EXPECT_EQ(a.faults(), b.faults());
  EXPECT_NE(a.faults()[0].forged_token, c.faults()[0].forged_token);
  for (const byz::ByzFault& f : a.faults()) {
    EXPECT_GE(f.forged_token, byz::kForgedTokenBase);
  }
  EXPECT_NE(a.faults()[0].forged_token, a.faults()[1].forged_token);
}

TEST(ByzantinePlan, RandomPlanIsDeterministicAndValid) {
  const DualGraph net = duals::layered_sparse(
      {.layers = 10, .width = 8, .fwd_degree = 3, .unreliable_degree = 2,
       .seed = 17});
  const byz::ByzantinePlan a =
      byz::make_random_plan(net, 1, 8, byz::ByzBehavior::Forge, {}, 42);
  const byz::ByzantinePlan b =
      byz::make_random_plan(net, 1, 8, byz::ByzBehavior::Forge, {}, 42);
  EXPECT_EQ(a.faults(), b.faults());
  ASSERT_GE(a.faults().size(), 1u);
  // Every correct node within the bound, recomputed from scratch.
  std::vector<int> byz_in(static_cast<std::size_t>(net.node_count()), 0);
  for (const byz::ByzFault& f : a.faults()) {
    EXPECT_NE(f.node, net.source());
    for (const NodeId v : net.g_csr().row(f.node)) {
      ++byz_in[static_cast<std::size_t>(v)];
    }
  }
  for (NodeId v = 0; v < net.node_count(); ++v) {
    if (a.is_byzantine(v)) continue;
    EXPECT_LE(byz_in[static_cast<std::size_t>(v)], a.f()) << "node " << v;
  }
}

// ------------------------------------------- CPA vs uncertified acceptance

TEST(CertifiedPropagation, ForgedTokenWinsAgainstUncertifiedRelay) {
  const DualGraph net = five_node_net();
  byz::ByzantinePlan plan(1);
  plan.add(4, byz::ByzBehavior::Forge);
  plan.bind(net, {}, 33);

  BenignAdversary adversary;
  const ProcessFactory relay =
      byz::make_uncertified_relay_factory(net.node_count(), {.relay_p = 1.0});
  const SimResult result =
      run_broadcast(net, relay, adversary, byz_config(plan, 16));

  // Round 1: only {0, forger 4} transmit, so node 3 hears the forged token
  // alone, adopts it verbatim, and relays it from round 2 — the win.
  ASSERT_EQ(result.forged_tokens.size(), 1u);
  const ForgedTokenRecord& rec = result.forged_tokens[0];
  EXPECT_EQ(rec.token, plan.faults()[0].forged_token);
  EXPECT_EQ(rec.forger, 4);
  EXPECT_TRUE(rec.won());
  EXPECT_EQ(rec.first_victim, 3);
  EXPECT_EQ(rec.first_victim_round, 2);
  EXPECT_EQ(rec.first_injected, 1);
  EXPECT_GE(rec.injections, 1u);
  EXPECT_GE(rec.victim_sends, 1u);
  EXPECT_GE(rec.receptions, 1u);
  EXPECT_EQ(metric_of(result, 3, "relay_token"),
            static_cast<double>(rec.token));
  // Forged deliveries never leak into legitimate coverage: node 3 is jammed
  // by the forger and must not count as covered.
  EXPECT_EQ(result.first_token[3], kNever);
  EXPECT_FALSE(result.completed);
}

TEST(CertifiedPropagation, CpaNeverAcceptsForgedUnderValidPlacement) {
  const DualGraph net = five_node_net();
  byz::ByzantinePlan plan(1);
  plan.add(4, byz::ByzBehavior::Forge);
  plan.bind(net, {}, 33);

  BenignAdversary adversary;
  const ProcessFactory cpa = byz::make_cpa_factory(
      net.node_count(), {.f = 1, .trusted_origins = {0}, .relay_p = 1.0});
  const SimResult result =
      run_broadcast(net, cpa, adversary, byz_config(plan, 64));

  // The forged token reaches node 3 (receptions > 0) but carries only one
  // possible confirming origin — the forger — and 1 < f + 1, so CPA never
  // accepts it, never relays it, and the token never wins.
  ASSERT_EQ(result.forged_tokens.size(), 1u);
  const ForgedTokenRecord& rec = result.forged_tokens[0];
  EXPECT_FALSE(rec.won());
  EXPECT_EQ(rec.first_victim, kInvalidNode);
  EXPECT_EQ(rec.victim_sends, 0u);
  EXPECT_GE(rec.receptions, 1u);
  for (const NodeId v : {0, 1, 2, 3}) {
    EXPECT_EQ(metric_of(result, v, "cpa_forged"), 0.0) << "node " << v;
  }
}

TEST(CertifiedPropagation, CpaAcceptsLegitimateTokenViaDistinctConfirmers) {
  // Silence the Byzantine node instead: node 3 is no longer jammed and must
  // certify token 1 from its two distinct correct confirmers 1 and 2.
  const DualGraph net = five_node_net();
  byz::ByzantinePlan plan(1);
  plan.add(4, byz::ByzBehavior::Silent);
  plan.bind(net, {}, 33);

  BenignAdversary adversary;
  const ProcessFactory cpa = byz::make_cpa_factory(
      net.node_count(), {.f = 1, .trusted_origins = {0}, .relay_p = 0.5});
  // Engine coverage is first *delivery*; acceptance at node 3 needs a second
  // distinct confirmer, so run a fixed horizon past completion.
  SimConfig config = byz_config(plan, 512);
  config.stop_on_completion = false;
  const SimResult result = run_broadcast(net, cpa, adversary, config);

  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.forged_tokens.empty());
  EXPECT_EQ(metric_of(result, 1, "cpa_accepted"), 1.0);  // trusted origin 0
  EXPECT_EQ(metric_of(result, 2, "cpa_accepted"), 1.0);
  EXPECT_EQ(metric_of(result, 3, "cpa_accepted"), 1.0);  // via {1, 2}
  EXPECT_EQ(metric_of(result, 3, "cpa_forged"), 0.0);
}

// ----------------------------------------------- audit + contract dimension

TEST(ByzAudit, ForgedWinSurfacesThroughFullAndCompressedTraces) {
  const DualGraph net = five_node_net();
  byz::ByzantinePlan plan(1);
  plan.add(4, byz::ByzBehavior::Forge);
  plan.bind(net, {}, 33);
  const ProcessFactory relay =
      byz::make_uncertified_relay_factory(net.node_count(), {.relay_p = 1.0});

  for (const TraceLevel level : {TraceLevel::Full, TraceLevel::Compressed}) {
    BenignAdversary adversary;
    const SimResult result =
        run_broadcast(net, relay, adversary, byz_config(plan, 16, level));
    const audit::AuditReport report =
        audit::audit_execution(net, result, CollisionRule::CR3);
    EXPECT_TRUE(report.ok)
        << (report.violations.empty() ? "" : report.violations.front());
    ASSERT_TRUE(report.forged_token_won());
    ASSERT_EQ(report.forged_wins.size(), 1u);
    EXPECT_NE(report.forged_wins[0].find("forged token"), std::string::npos);
    EXPECT_NE(report.forged_wins[0].find("node 3"), std::string::npos);
  }
}

TEST(ByzAudit, CpaExecutionAuditsCleanWithNoWins) {
  const DualGraph net = five_node_net();
  byz::ByzantinePlan plan(1);
  plan.add(4, byz::ByzBehavior::Forge);
  plan.bind(net, {}, 33);
  const ProcessFactory cpa = byz::make_cpa_factory(
      net.node_count(), {.f = 1, .trusted_origins = {0}, .relay_p = 1.0});

  for (const TraceLevel level : {TraceLevel::Full, TraceLevel::Compressed}) {
    BenignAdversary adversary;
    const SimResult result =
        run_broadcast(net, cpa, adversary, byz_config(plan, 64, level));
    const audit::AuditReport report =
        audit::audit_execution(net, result, CollisionRule::CR3);
    EXPECT_TRUE(report.ok)
        << (report.violations.empty() ? "" : report.violations.front());
    EXPECT_FALSE(report.forged_token_won());
  }
}

TEST(ByzAudit, TamperedProvenanceFailsTheAudit) {
  const DualGraph net = five_node_net();
  byz::ByzantinePlan plan(1);
  plan.add(4, byz::ByzBehavior::Forge);
  plan.bind(net, {}, 33);
  const ProcessFactory relay =
      byz::make_uncertified_relay_factory(net.node_count(), {.relay_p = 1.0});
  BenignAdversary adversary;
  SimResult result = run_broadcast(net, relay, adversary,
                                   byz_config(plan, 16, TraceLevel::Full));
  ASSERT_EQ(result.forged_tokens.size(), 1u);
  result.forged_tokens[0].victim_sends += 1;  // claim one send too many
  const audit::AuditReport report =
      audit::audit_execution(net, result, CollisionRule::CR3);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations[0].find("victim_sends"), std::string::npos);
}

TEST(ByzContract, ForgedWinIsANoCreationViolation) {
  const DualGraph net = five_node_net();
  byz::ByzantinePlan plan(1);
  plan.add(4, byz::ByzBehavior::Forge);
  plan.bind(net, {}, 33);
  const ProcessFactory relay =
      byz::make_uncertified_relay_factory(net.node_count(), {.relay_p = 1.0});
  BenignAdversary adversary;
  const SimResult result =
      run_broadcast(net, relay, adversary, byz_config(plan, 16));

  campaign::Scenario scenario;
  scenario.name = "byz-unit";
  campaign::TrialRow row;
  row.scenario = scenario.name;
  row.completed = result.completed;
  const std::vector<std::string> violations =
      campaign::check_broadcast_contract(scenario, row, result);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("no-creation"), std::string::npos);
  EXPECT_NE(violations[0].find("forged token"), std::string::npos);
  EXPECT_NE(violations[0].find("node 3"), std::string::npos);

  // The CPA run on the same plan satisfies the contract.
  const ProcessFactory cpa = byz::make_cpa_factory(
      net.node_count(), {.f = 1, .trusted_origins = {0}, .relay_p = 1.0});
  BenignAdversary adversary2;
  const SimResult clean =
      run_broadcast(net, cpa, adversary2, byz_config(plan, 64));
  campaign::TrialRow clean_row;
  clean_row.scenario = scenario.name;
  clean_row.completed = clean.completed;
  EXPECT_TRUE(
      campaign::check_broadcast_contract(scenario, clean_row, clean).empty());
}

// --------------------------------------------------- adaptive + equivalence

TEST(AdaptiveByz, CorruptsTheFrontierWithinBudgetAndResets) {
  const DualGraph net = duals::layered_sparse(
      {.layers = 10, .width = 8, .fwd_degree = 3, .unreliable_degree = 2,
       .seed = 17});
  byz::ByzantinePlan plan(1);
  plan.bind(net, {}, 55);
  ASSERT_TRUE(plan.faults().empty());

  BernoulliAdversary inner(0.3, 77);
  byz::AdaptiveByzAdversary adaptive(
      inner, plan, {.budget = 3, .behavior = byz::ByzBehavior::Forge});
  const ProcessFactory cpa = byz::make_cpa_factory(
      net.node_count(), {.f = 1,
                         .trusted_origins = {0},
                         .relay_p = 0.5,
                         .active_rounds = 64,
                         .rebroadcast_period = 16});
  SimConfig config;
  config.rule = CollisionRule::CR3;
  config.start = StartRule::Asynchronous;
  config.max_rounds = 20'000;
  config.seed = 2025;
  config.byzantine = &plan;

  const SimResult first = run_broadcast(net, cpa, adaptive, config);
  const std::size_t placed = adaptive.corrupted();
  EXPECT_GE(placed, 1u);
  EXPECT_LE(placed, 3u);
  EXPECT_EQ(plan.faults().size(), placed);
  const std::vector<byz::ByzFault> grown = plan.faults();
  for (const byz::ByzFault& f : grown) {
    EXPECT_GE(f.active_from, 2);  // corruption lands the round after delivery
  }
  // CPA under an adaptively-grown (still f-locally-bounded) placement:
  // forged tokens fly but never win.
  for (const ForgedTokenRecord& rec : first.forged_tokens) {
    EXPECT_FALSE(rec.won()) << "token " << rec.token;
  }

  // A replay resets the plan and regrows the identical placement, so the
  // execution (including forged provenance) is reproducible.
  const SimResult second = run_broadcast(net, cpa, adaptive, config);
  EXPECT_EQ(plan.faults(), grown);
  EXPECT_EQ(first.forged_tokens, second.forged_tokens);
  EXPECT_EQ(first.rounds_executed, second.rounds_executed);
  EXPECT_EQ(first.total_sends, second.total_sends);
}

TEST(ByzEquivalence, FiveNodeForgeRunsIdenticallyEverywhere) {
  const DualGraph net = five_node_net();
  byz::ByzantinePlan plan(1);
  plan.add(4, byz::ByzBehavior::Forge);
  plan.bind(net, {}, 33);
  const ProcessFactory relay =
      byz::make_uncertified_relay_factory(net.node_count(), {.relay_p = 1.0});
  const SimConfig config = byz_config(plan, 16, TraceLevel::Full);

  BenignAdversary a1, a2, a3, a4;
  const SimResult serial = run_broadcast(net, relay, a1, config);
  const SimResult reference = run_broadcast_reference(net, relay, a2, config);
  EXPECT_EQ(serial.forged_tokens, reference.forged_tokens);
  EXPECT_EQ(serial.total_sends, reference.total_sends);
  EXPECT_EQ(serial.first_token, reference.first_token);
  SimConfig two = config;
  two.threads = 2;
  SimConfig four = config;
  four.threads = 4;
  const SimResult sharded2 = run_broadcast(net, relay, a3, two);
  const SimResult sharded4 = run_broadcast(net, relay, a4, four);
  EXPECT_EQ(serial.forged_tokens, sharded2.forged_tokens);
  EXPECT_EQ(serial.forged_tokens, sharded4.forged_tokens);
  EXPECT_EQ(serial.trace.blob, sharded4.trace.blob);
}

}  // namespace
}  // namespace dualrad
