#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <string>

#include "adversary/basic_adversaries.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "byz/plan.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace dualrad {
namespace {

using testing::scripted_factory;

/// Path network 0 - 1 - 2 with G' = G plus {0,2}.
DualGraph tiny_net() {
  Graph g = gen::path(3);
  Graph gp = gen::path(3);
  gp.add_undirected_edge(0, 2);
  return DualGraph(std::move(g), std::move(gp), 0);
}

SimConfig sync_config(CollisionRule rule, Round max_rounds = 16) {
  SimConfig config;
  config.rule = rule;
  config.start = StartRule::Synchronous;
  config.max_rounds = max_rounds;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  return config;
}

const Reception& reception_of(const SimResult& result, Round round,
                              NodeId node) {
  return result.trace.rounds[static_cast<std::size_t>(round - 1)]
      .receptions[static_cast<std::size_t>(node)];
}

// -------------------------------------------------------------- delivery

TEST(Simulator, ReliableEdgesAlwaysDeliver) {
  const DualGraph net = tiny_net();
  BenignAdversary adversary;
  const auto factory = scripted_factory({{0, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR1));
  // Node 1 hears the source's message in round 1; node 2 hears silence
  // (the 0-2 edge is unreliable and the benign adversary never fires it).
  EXPECT_TRUE(reception_of(result, 1, 1).has_token());
  EXPECT_TRUE(reception_of(result, 1, 2).is_silence());
  EXPECT_EQ(result.first_token[1], 1);
  EXPECT_EQ(result.first_token[2], kNever);
}

TEST(Simulator, UnreliableEdgeFiresWhenAdversaryChooses) {
  const DualGraph net = tiny_net();
  FullInterferenceAdversary adversary;
  const auto factory = scripted_factory({{0, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR1));
  EXPECT_TRUE(reception_of(result, 1, 2).has_token());
  EXPECT_EQ(result.first_token[2], 1);
}

TEST(Simulator, SourceStartsCovered) {
  const DualGraph net = tiny_net();
  BenignAdversary adversary;
  const auto factory = scripted_factory({});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR1, 2));
  EXPECT_EQ(result.first_token[0], 0);
  EXPECT_FALSE(result.completed);
}

TEST(Simulator, CompletionRoundIsFirstFullCoverage) {
  const DualGraph net = tiny_net();
  BenignAdversary adversary;
  // 0 sends round 1 (covers 1); 1 sends round 2 (covers 2).
  const auto factory = scripted_factory({{0, {1}}, {1, {2}}});
  SimConfig config = sync_config(CollisionRule::CR1, 8);
  const SimResult result = run_broadcast(net, factory, adversary, config);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.completion_round, 2);
  EXPECT_EQ(result.first_token[2], 2);
}

// -------------------------------------------------------- collision rules

TEST(CollisionRules, CR1SenderDetectsCollision) {
  // Nodes 0 and 1 both send in round 1; under CR1 both receive top (their
  // own message collides with the other's).
  const DualGraph net = tiny_net();
  BenignAdversary adversary;
  const auto factory = scripted_factory({{0, {1}}, {1, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR1));
  EXPECT_TRUE(reception_of(result, 1, 0).is_collision());
  EXPECT_TRUE(reception_of(result, 1, 1).is_collision());
}

TEST(CollisionRules, CR1SoloSenderHearsOwnMessage) {
  const DualGraph net = tiny_net();
  BenignAdversary adversary;
  const auto factory = scripted_factory({{0, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR1));
  const auto& rec = reception_of(result, 1, 0);
  ASSERT_TRUE(rec.is_message());
  EXPECT_EQ(rec.message->origin, 0);
}

TEST(CollisionRules, CR2SenderAlwaysHearsOwnMessage) {
  const DualGraph net = tiny_net();
  BenignAdversary adversary;
  const auto factory = scripted_factory({{0, {1}}, {1, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR2));
  // Senders hear their own message even though two messages reached them.
  ASSERT_TRUE(reception_of(result, 1, 0).is_message());
  EXPECT_EQ(reception_of(result, 1, 0).message->origin, 0);
  ASSERT_TRUE(reception_of(result, 1, 1).is_message());
  EXPECT_EQ(reception_of(result, 1, 1).message->origin, 1);
  // Node 2: only node 1's message reached it (path topology), so it simply
  // receives that message.
  ASSERT_TRUE(reception_of(result, 1, 2).is_message());
  EXPECT_EQ(reception_of(result, 1, 2).message->origin, 1);
}

TEST(CollisionRules, CR2NonSenderGetsNotification) {
  Graph g = gen::clique(3);
  const DualGraph net = make_classical(std::move(g), 0);
  BenignAdversary adversary;
  const auto factory = scripted_factory({{0, {1}}, {1, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR2));
  EXPECT_TRUE(reception_of(result, 1, 2).is_collision());
}

TEST(CollisionRules, CR3NonSenderHearsSilenceOnCollision) {
  Graph g = gen::clique(3);
  const DualGraph net = make_classical(std::move(g), 0);
  BenignAdversary adversary;
  const auto factory = scripted_factory({{0, {1}}, {1, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR3));
  EXPECT_TRUE(reception_of(result, 1, 2).is_silence());
  // But the collision is still accounted in the trace.
  EXPECT_GE(result.total_collision_events, 1u);
}

TEST(CollisionRules, CR4AdversaryMayDeliverOneMessage) {
  Graph g = gen::clique(3);
  const DualGraph net = make_classical(std::move(g), 0);
  FullInterferenceAdversary adversary(/*deliver_on_cr4=*/true);
  const auto factory = scripted_factory({{0, {1}}, {1, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR4));
  const auto& rec = reception_of(result, 1, 2);
  ASSERT_TRUE(rec.is_message());
  EXPECT_EQ(rec.message->origin, 0);  // smallest-id rule
}

TEST(CollisionRules, CR4DefaultsToSilence) {
  Graph g = gen::clique(3);
  const DualGraph net = make_classical(std::move(g), 0);
  BenignAdversary adversary;
  const auto factory = scripted_factory({{0, {1}}, {1, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR4));
  EXPECT_TRUE(reception_of(result, 1, 2).is_silence());
}

// ------------------------------------------------------------ start rules

TEST(StartRules, AsynchronousProcessesSleepUntilMessage) {
  const DualGraph net = tiny_net();
  BenignAdversary adversary;
  // Node 1 is scripted to send every round, but under async start it sleeps
  // until it receives the source's round-2 message.
  const auto factory = scripted_factory({{0, {2}}, {1, {1, 2, 3}}});
  SimConfig config = sync_config(CollisionRule::CR1, 4);
  config.start = StartRule::Asynchronous;
  const SimResult result = run_broadcast(net, factory, adversary, config);
  // Round 1: node 1 asleep, nothing happens anywhere.
  EXPECT_TRUE(reception_of(result, 1, 0).is_silence());
  // Round 2: source sends, node 1 wakes with the message.
  EXPECT_TRUE(reception_of(result, 2, 1).has_token());
  // Round 3: node 1 is awake now and its script says send.
  ASSERT_TRUE(reception_of(result, 3, 2).is_message());
  EXPECT_EQ(reception_of(result, 3, 2).message->origin, 1);
}

TEST(StartRules, CollisionDoesNotWakeAsleepProcess) {
  // Diamond: 0 - {1, 3} - 2. Round 1: source covers 1 and 3. Round 2: both
  // 1 and 3 send, so node 2 hears top, stays asleep, and its scripted
  // round-3 send never happens.
  Graph g(4);
  g.add_undirected_edge(0, 1);
  g.add_undirected_edge(0, 3);
  g.add_undirected_edge(1, 2);
  g.add_undirected_edge(3, 2);
  const DualGraph net = make_classical(std::move(g), 0);
  BenignAdversary adversary;
  const auto factory =
      scripted_factory({{0, {1}}, {1, {2}}, {3, {2}}, {2, {3}}});
  SimConfig config = sync_config(CollisionRule::CR1, 4);
  config.start = StartRule::Asynchronous;
  const SimResult result = run_broadcast(net, factory, adversary, config);
  EXPECT_TRUE(reception_of(result, 2, 2).is_collision());
  EXPECT_EQ(result.first_token[2], kNever);
  EXPECT_TRUE(result.trace.rounds[2].senders.empty());
}

TEST(StartRules, SynchronousEveryoneAwakeRoundOne) {
  const DualGraph net = tiny_net();
  BenignAdversary adversary;
  const auto factory = scripted_factory({{2, {1}}});  // node 2 has no token
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR1));
  // Node 2 is awake and sends a tokenless message to node 1.
  ASSERT_TRUE(reception_of(result, 1, 1).is_message());
  EXPECT_FALSE(reception_of(result, 1, 1).message->token);
}

// ------------------------------------------------------------- accounting

TEST(Simulator, SendAndCollisionCounters) {
  Graph g = gen::clique(3);
  const DualGraph net = make_classical(std::move(g), 0);
  BenignAdversary adversary;
  const auto factory = scripted_factory({{0, {1, 2}}, {1, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR1, 2));
  EXPECT_EQ(result.total_sends, 3u);
  // Round 1: all three nodes see two arrivals each.
  EXPECT_EQ(result.trace.collisions_per_round[0], 3u);
  EXPECT_EQ(result.trace.senders_per_round[0], 2u);
  EXPECT_EQ(result.trace.senders_per_round[1], 1u);
}

TEST(Simulator, CollisionEventsExcludeSendersUnderCR2ToCR4) {
  // Regression: on a 3-clique with nodes 0 and 1 both sending, every node
  // is reached by two messages. Under CR1 all three observe a collision;
  // under CR2-CR4 the two senders deterministically hear their own message,
  // so only the non-sender (node 2) observes one.
  for (const CollisionRule rule :
       {CollisionRule::CR2, CollisionRule::CR3, CollisionRule::CR4}) {
    Graph g = gen::clique(3);
    const DualGraph net = make_classical(std::move(g), 0);
    BenignAdversary adversary;
    const auto factory = scripted_factory({{0, {1}}, {1, {1}}});
    const SimResult result =
        run_broadcast(net, factory, adversary, sync_config(rule, 1));
    EXPECT_EQ(result.total_collision_events, 1u) << to_string(rule);
    EXPECT_EQ(result.trace.collisions_per_round[0], 1u) << to_string(rule);
  }
}

TEST(Simulator, SoleSenderProducesNoCollisionEvents) {
  // A lone sender's own message reaching it is one arrival, never a
  // collision — under any rule.
  for (const CollisionRule rule : {CollisionRule::CR1, CollisionRule::CR2,
                                   CollisionRule::CR3, CollisionRule::CR4}) {
    Graph g = gen::clique(3);
    const DualGraph net = make_classical(std::move(g), 0);
    BenignAdversary adversary;
    const auto factory = scripted_factory({{0, {1}}});
    const SimResult result =
        run_broadcast(net, factory, adversary, sync_config(rule, 1));
    EXPECT_EQ(result.total_collision_events, 0u) << to_string(rule);
  }
}

TEST(Simulator, ProcMappingIsPermutation) {
  const DualGraph net = tiny_net();
  BenignAdversary adversary;
  const auto factory = scripted_factory({});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR1, 1));
  std::vector<bool> seen(3, false);
  for (ProcessId p : result.process_of_node) {
    seen[static_cast<std::size_t>(p)] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(Simulator, FixedAssignmentPlacesProcesses) {
  const DualGraph net = tiny_net();
  BenignAdversary inner;
  FixedAssignmentAdversary adversary({2, 0, 1}, inner);
  // Process 2 sits at the source node: it gets the token at activation.
  const auto factory = scripted_factory({{2, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR1, 2));
  EXPECT_EQ(result.process_of_node[0], 2);
  EXPECT_TRUE(reception_of(result, 1, 1).has_token());
}

TEST(Simulator, TraceRecordsReachSets) {
  const DualGraph net = tiny_net();
  FullInterferenceAdversary adversary;
  const auto factory = scripted_factory({{0, {1}}});
  const SimResult result =
      run_broadcast(net, factory, adversary, sync_config(CollisionRule::CR1, 1));
  ASSERT_EQ(result.trace.rounds.size(), 1u);
  const auto& senders = result.trace.rounds[0].senders;
  ASSERT_EQ(senders.size(), 1u);
  EXPECT_EQ(senders[0].node, 0);
  // Reached node 1 (reliable) and node 2 (unreliable, fired).
  EXPECT_EQ(senders[0].reached.size(), 2u);
}

TEST(Simulator, StopsAtMaxRounds) {
  const DualGraph net = tiny_net();
  BenignAdversary adversary;
  const auto factory = scripted_factory({});
  SimConfig config = sync_config(CollisionRule::CR1, 5);
  const SimResult result = run_broadcast(net, factory, adversary, config);
  EXPECT_EQ(result.rounds_executed, 5);
  EXPECT_FALSE(result.completed);
}

TEST(BoundedTrace, RejectsZeroWindow) {
  const DualGraph net = make_classical(gen::path(3), 0);
  BenignAdversary adversary;
  SimConfig config;
  config.trace = TraceLevel::Bounded;
  config.trace_window = 0;
  EXPECT_THROW(
      run_broadcast(net, make_round_robin_factory(net.node_count()),
                    adversary, config),
      std::invalid_argument);
}

TEST(BoundedTrace, ShortExecutionFitsEntirelyInWindow) {
  const DualGraph net = make_classical(gen::path(4), 0);
  BenignAdversary adversary;
  SimConfig config;
  config.start = StartRule::Synchronous;
  config.rule = CollisionRule::CR3;
  config.trace = TraceLevel::Bounded;
  config.trace_window = 64;
  const SimResult result = run_broadcast(
      net, make_round_robin_factory(net.node_count()), adversary, config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.trace.rounds_recorded, result.rounds_executed);
  std::uint64_t ring_sends = 0;
  for (Round r = 1; r <= result.rounds_executed; ++r) {
    ASSERT_TRUE(result.trace.in_window(r));
    ring_sends += result.trace.ring_senders_at(r);
  }
  EXPECT_EQ(ring_sends, result.total_sends);
  EXPECT_EQ(result.trace.agg.total_sends, result.total_sends);
}

// ---------------------------------------------------- token-source validation

TEST(TokenSourceValidation, AcceptsDistinctInRangeSources) {
  EXPECT_NO_THROW(validate_token_sources(5, {0, 2, 4}));
  EXPECT_NO_THROW(validate_token_sources(1, {0}));
  EXPECT_NO_THROW(validate_token_sources(3, {}));  // empty = net.source()
}

TEST(TokenSourceValidation, RejectsOutOfRangeSources) {
  try {
    validate_token_sources(3, {0, 3});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("token source out of range"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(validate_token_sources(3, {-1}), std::invalid_argument);
}

TEST(TokenSourceValidation, RejectsDuplicateSources) {
  try {
    validate_token_sources(4, {1, 2, 1});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("token sources must be distinct"),
              std::string::npos)
        << e.what();
  }
}

TEST(TokenSourceValidation, RejectsSourceCountReachingForgedTokenBand) {
  // Token ids are 1..k, so k == kForgedTokenBase sources would mint a
  // legitimate id inside the reserved forged band.
  const std::size_t k = static_cast<std::size_t>(byz::kForgedTokenBase);
  std::vector<NodeId> sources(k);
  std::iota(sources.begin(), sources.end(), NodeId{0});
  try {
    validate_token_sources(static_cast<NodeId>(k), sources);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("too many token sources"),
              std::string::npos)
        << e.what();
  }
}

TEST(TokenSourceValidation, SimulatorRejectsBadSourcesUpFront) {
  const DualGraph net = tiny_net();
  BenignAdversary adversary;
  const auto factory = scripted_factory({});
  SimConfig config = sync_config(CollisionRule::CR1, 2);
  config.token_sources = {0, 0};
  EXPECT_THROW(run_broadcast(net, factory, adversary, config),
               std::invalid_argument);
  config.token_sources = {0, 99};
  EXPECT_THROW(run_broadcast(net, factory, adversary, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace dualrad
