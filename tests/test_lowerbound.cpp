#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/scripted_adversary.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/strong_select.hpp"
#include "core/simulator.hpp"
#include "graph/algorithms.hpp"
#include "graph/dual_builders.hpp"
#include "lowerbound/theorem11_network.hpp"
#include "lowerbound/theorem12.hpp"
#include "lowerbound/theorem2.hpp"
#include "lowerbound/theorem4.hpp"

namespace dualrad {
namespace {

using lowerbound::run_theorem12;
using lowerbound::run_theorem2;
using lowerbound::run_theorem4;
using lowerbound::theorem12_bound;

// ---------------------------------------------------------------- Theorem 2

TEST(Theorem2, RoundRobinNeedsLinearRounds) {
  const NodeId n = 16;
  const auto result = run_theorem2(n, make_round_robin_factory(n), 10'000);
  EXPECT_TRUE(result.bound_respected);
  // Round robin completes every alpha_i eventually.
  for (Round r : result.rounds_by_bridge_id) EXPECT_NE(r, kNever);
  EXPECT_GE(result.worst_rounds, n - 2);
}

TEST(Theorem2, StrongSelectRespectsBound) {
  const NodeId n = 16;
  const auto result =
      run_theorem2(n, make_strong_select_factory(n), 200'000);
  EXPECT_TRUE(result.bound_respected);
}

TEST(Theorem2, BoundGrowsLinearly) {
  for (NodeId n : {8, 16, 32}) {
    const auto result = run_theorem2(n, make_round_robin_factory(n), 100'000);
    EXPECT_TRUE(result.bound_respected) << n;
    EXPECT_EQ(result.theorem_bound, n - 2);
  }
}

TEST(Theorem2, WorstBridgeIdIsReported) {
  const NodeId n = 12;
  const auto result = run_theorem2(n, make_round_robin_factory(n), 10'000);
  ASSERT_GE(result.worst_bridge_id, 1);
  ASSERT_LE(result.worst_bridge_id, n - 2);
  const Round worst = result.rounds_by_bridge_id[static_cast<std::size_t>(
      result.worst_bridge_id - 1)];
  for (Round r : result.rounds_by_bridge_id) EXPECT_LE(r, worst);
}

// ---------------------------------------------------------------- Theorem 4

TEST(Theorem4, HarmonicSuccessBoundedByKOverN2) {
  const NodeId n = 18;
  const std::vector<Round> ks = {1, 4, 8, 12, 15};
  const auto result =
      run_theorem4(n, make_harmonic_factory(n), ks, /*trials=*/60, /*seed=*/3);
  EXPECT_TRUE(result.bound_respected);
  for (const auto& point : result.points) {
    EXPECT_LE(point.min_success_prob,
              point.bound + 0.15)  // generous MC slack
        << "k=" << point.k;
  }
}

TEST(Theorem4, BoundIncreasesWithK) {
  const NodeId n = 14;
  const std::vector<Round> ks = {2, 6, 10};
  const auto result =
      run_theorem4(n, make_harmonic_factory(n), ks, /*trials=*/40, /*seed=*/5);
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    EXPECT_GE(result.points[i].bound, result.points[i - 1].bound);
  }
}

// --------------------------------------------------------------- Theorem 11

TEST(Theorem11, NetworkIsSqrtNBroadcastable) {
  const NodeId n = 100;
  const DualGraph net = lowerbound::theorem11_network(n);
  EXPECT_GE(net.node_count(), n - 1);
  const Round ecc = graphalg::eccentricity(net.g(), net.source());
  const auto layout = lowerbound::theorem11_layout(n);
  EXPECT_EQ(ecc, layout.num_layers);
  EXPECT_FALSE(net.g().is_undirected());
}

TEST(Theorem11, GPrimeHasForwardSkipLinks) {
  const DualGraph net = lowerbound::theorem11_network(30);
  // Source has unreliable links past the first layer.
  EXPECT_GT(net.unreliable_out(net.source()).size(), 0u);
}

// --------------------------------------------------------------- Theorem 12

TEST(Theorem12, BoundFormula) {
  EXPECT_EQ(theorem12_bound(17), 4 * (4 - 2));    // n-1=16: 4 stages, log=4
  EXPECT_EQ(theorem12_bound(33), 8 * (5 - 2));    // n-1=32
  EXPECT_EQ(theorem12_bound(65), 16 * (6 - 2));   // n-1=64
}

TEST(Theorem12, RoundRobinForcedPastBound) {
  const NodeId n = 17;
  const auto result = run_theorem12(n, make_round_robin_factory(n));
  ASSERT_TRUE(result.valid);
  EXPECT_FALSE(result.stalled);
  EXPECT_EQ(result.stages_completed, result.stages_target);
  EXPECT_GE(result.total_rounds, result.guaranteed_bound);
  EXPECT_EQ(result.covered_processes, 2 * result.stages_target + 1);
  EXPECT_LT(result.covered_processes, n);
}

TEST(Theorem12, RoundRobinScalesAsNLogN) {
  Round prev = 0;
  for (NodeId n : {9, 17, 33}) {
    const auto result = run_theorem12(n, make_round_robin_factory(n));
    ASSERT_TRUE(result.valid) << n;
    EXPECT_GE(result.total_rounds, theorem12_bound(n));
    EXPECT_GT(result.total_rounds, prev);
    prev = result.total_rounds;
  }
}

TEST(Theorem12, StrongSelectForcedPastBoundOrStalled) {
  const NodeId n = 17;
  const auto result = run_theorem12(n, make_strong_select_factory(n));
  ASSERT_TRUE(result.valid);
  if (!result.stalled) {
    EXPECT_GE(result.total_rounds, result.guaranteed_bound);
    EXPECT_LT(result.covered_processes, n);
  } else {
    // Even stronger: the algorithm never isolates the frontier again, so the
    // broadcast never completes at all.
    EXPECT_LT(result.covered_processes, n);
  }
}

TEST(Theorem12, StageLengthsAtLeastLogMinusTwo) {
  const NodeId n = 33;  // log2(32) = 5, so each stage >= 3 rounds + round 0
  const auto result = run_theorem12(n, make_round_robin_factory(n));
  ASSERT_TRUE(result.valid);
  // stage_lengths[0] is alpha_0; stages follow.
  for (std::size_t s = 1; s < result.stage_lengths.size(); ++s) {
    EXPECT_GE(result.stage_lengths[s], 5 - 2) << "stage " << s;
  }
}

TEST(Theorem12, ReplayScriptIsALegalExecution) {
  const NodeId n = 17;
  lowerbound::Theorem12Options options;
  options.build_script = true;
  const auto result = run_theorem12(n, make_round_robin_factory(n), options);
  ASSERT_TRUE(result.valid);
  ASSERT_FALSE(result.script.process_of_node.empty());

  // Replay inside the real simulator with the scripted adversary: the
  // algorithm must fail to complete within the constructed prefix, and
  // exactly the constructed processes must be covered.
  const DualGraph net = duals::theorem12_network(n);
  ScriptedAdversary adversary(result.script);
  SimConfig config;
  config.rule = CollisionRule::CR1;
  config.start = StartRule::Synchronous;
  config.max_rounds = result.total_rounds;
  config.stop_on_completion = false;
  const SimResult sim =
      run_broadcast(net, make_round_robin_factory(n), adversary, config);
  EXPECT_FALSE(sim.completed);

  // Covered set must be exactly the assigned processes: source + pairs.
  std::vector<bool> should_be_covered(static_cast<std::size_t>(n), false);
  should_be_covered[0] = true;
  for (const auto& [i1, i2] : result.stage_pairs) {
    should_be_covered[static_cast<std::size_t>(i1)] = true;
    should_be_covered[static_cast<std::size_t>(i2)] = true;
  }
  for (NodeId v = 0; v < n; ++v) {
    const ProcessId pid = sim.process_of_node[static_cast<std::size_t>(v)];
    const bool covered = sim.first_token[static_cast<std::size_t>(v)] != kNever;
    EXPECT_EQ(covered, should_be_covered[static_cast<std::size_t>(pid)])
        << "process " << pid;
  }
}

TEST(Theorem12, RejectsBadN) {
  EXPECT_THROW(run_theorem12(12, make_round_robin_factory(12)),
               std::invalid_argument);
  EXPECT_THROW(run_theorem12(8, make_round_robin_factory(8)),
               std::invalid_argument);
}

TEST(Theorem12, PairsAreDisjointAndUnassigned) {
  const NodeId n = 33;
  const auto result = run_theorem12(n, make_round_robin_factory(n));
  ASSERT_TRUE(result.valid);
  std::vector<ProcessId> seen{0};
  for (const auto& [i1, i2] : result.stage_pairs) {
    EXPECT_NE(i1, i2);
    for (ProcessId p : {i1, i2}) {
      EXPECT_EQ(std::count(seen.begin(), seen.end(), p), 0);
      seen.push_back(p);
    }
  }
}

}  // namespace
}  // namespace dualrad
