#include <gtest/gtest.h>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/strong_select.hpp"
#include "core/audit.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace dualrad {
namespace {

SimResult run_traced(const DualGraph& net, const ProcessFactory& factory,
                     Adversary& adversary, CollisionRule rule) {
  SimConfig config;
  config.rule = rule;
  config.max_rounds = 2'000'000;
  config.trace = TraceLevel::Full;
  return run_broadcast(net, factory, adversary, config);
}

TEST(Audit, CleanExecutionsPass) {
  const DualGraph net = duals::gray_zone({.n = 32, .seed = 6});
  for (CollisionRule rule :
       {CollisionRule::CR1, CollisionRule::CR2, CollisionRule::CR3,
        CollisionRule::CR4}) {
    GreedyBlockerAdversary adversary;
    const SimResult result = run_traced(
        net, make_harmonic_factory(net.node_count()), adversary, rule);
    const auto report = audit::audit_execution(net, result, rule);
    EXPECT_TRUE(report.ok) << to_string(rule) << ": "
                           << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
  }
}

TEST(Audit, StrongSelectPasses) {
  const DualGraph net = duals::layered_complete_gprime(5, 3);
  BernoulliAdversary adversary(0.4, 3);
  const SimResult result =
      run_traced(net, make_strong_select_factory(net.node_count()), adversary,
                 CollisionRule::CR4);
  EXPECT_TRUE(audit::audit_execution(net, result, CollisionRule::CR4).ok);
}

TEST(Audit, CompressedTraceAuditsTransparently) {
  // TraceLevel::Compressed decodes to the exact Full-mode records, so the
  // audit accepts it unchanged — same pass on clean executions, same
  // violation detection on forged results.
  const DualGraph net = duals::gray_zone({.n = 32, .seed = 6});
  for (CollisionRule rule :
       {CollisionRule::CR1, CollisionRule::CR3, CollisionRule::CR4}) {
    GreedyBlockerAdversary adversary;
    SimConfig config;
    config.rule = rule;
    config.max_rounds = 2'000'000;
    config.trace = TraceLevel::Compressed;
    SimResult result = run_broadcast(
        net, make_harmonic_factory(net.node_count()), adversary, config);
    EXPECT_TRUE(result.trace.rounds.empty());
    EXPECT_GT(result.trace.compressed_rounds(), 0u);
    const auto report = audit::audit_execution(net, result, rule);
    EXPECT_TRUE(report.ok) << to_string(rule) << ": "
                           << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
    // A forged coverage claim is still caught through the compressed trace.
    result.first_token[1] = 1;
    result.token_first[0][1] = 1;
    EXPECT_FALSE(audit::audit_execution(net, result, rule).ok);
  }
}

TEST(Audit, RequiresFullTrace) {
  const DualGraph net = duals::bridge_network(8);
  BenignAdversary adversary;
  SimConfig config;
  config.max_rounds = 10'000;
  const SimResult result =
      run_broadcast(net, make_harmonic_factory(8), adversary, config);
  const auto report =
      audit::audit_execution(net, result, CollisionRule::CR4);
  EXPECT_FALSE(report.ok);
}

TEST(Audit, DetectsTamperedReach) {
  const DualGraph net = duals::bridge_network(8);
  BenignAdversary adversary;
  SimResult result = run_traced(net, make_harmonic_factory(8), adversary,
                                CollisionRule::CR4);
  ASSERT_TRUE(result.completed);
  // Tamper: claim a sender reached a node with no G' edge (self loop is
  // never an edge).
  ASSERT_FALSE(result.trace.rounds.empty());
  for (auto& record : result.trace.rounds) {
    if (!record.senders.empty()) {
      record.senders.front().reached.push_back(record.senders.front().node);
      break;
    }
  }
  EXPECT_FALSE(audit::audit_execution(net, result, CollisionRule::CR4).ok);
}

TEST(Audit, DetectsSkippedReliableEdge) {
  const DualGraph net = duals::bridge_network(8);
  BenignAdversary adversary;
  SimResult result = run_traced(net, make_harmonic_factory(8), adversary,
                                CollisionRule::CR4);
  for (auto& record : result.trace.rounds) {
    if (!record.senders.empty() && !record.senders.front().reached.empty()) {
      record.senders.front().reached.pop_back();
      break;
    }
  }
  EXPECT_FALSE(audit::audit_execution(net, result, CollisionRule::CR4).ok);
}

TEST(Audit, DetectsForgedFirstToken) {
  const DualGraph net = duals::bridge_network(8);
  BenignAdversary adversary;
  SimResult result = run_traced(net, make_harmonic_factory(8), adversary,
                                CollisionRule::CR4);
  result.first_token.back() = 1;  // receiver cannot have it that early
  EXPECT_FALSE(audit::audit_execution(net, result, CollisionRule::CR4).ok);
}

TEST(Audit, DetectsWrongRuleClaim) {
  // An execution under CR1 contains collision notifications, which are
  // illegal under CR4.
  Graph g = gen::clique(3);
  const DualGraph net = make_classical(std::move(g), 0);
  BenignAdversary adversary;
  const auto factory =
      testing::scripted_factory({{0, {1, 2}}, {1, {1}}, {2, {2}}});
  SimConfig config;
  config.rule = CollisionRule::CR1;
  config.start = StartRule::Synchronous;
  config.max_rounds = 4;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  const SimResult result = run_broadcast(net, factory, adversary, config);
  EXPECT_TRUE(audit::audit_execution(net, result, CollisionRule::CR1).ok);
  EXPECT_FALSE(audit::audit_execution(net, result, CollisionRule::CR4).ok);
}

}  // namespace
}  // namespace dualrad
