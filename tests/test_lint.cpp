#include "lint_core.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

/// \file test_lint.cpp
/// The determinism linter's own test coverage: positive and negative cases
/// for every rule, the `// lint: <token>-ok` escape hatch, allowlist
/// handling, the comment/string stripper, and the on-disk fixture corpus
/// under tests/lint_fixtures/. The real src/ tree is linted by the
/// `lint_tree` ctest entry (the dualrad_lint binary itself), so a rule
/// regression fails CI twice: here on semantics, there on the tree.

namespace lint = dualrad::lint;

namespace {

std::vector<lint::Finding> run_lint(std::string_view path,
                                    std::string_view text) {
  lint::Linter linter;
  linter.lint_file(path, text);
  return linter.findings();
}

std::vector<std::string> rules_hit(const std::vector<lint::Finding>& fs) {
  std::vector<std::string> ids;
  ids.reserve(fs.size());
  for (const lint::Finding& f : fs) ids.push_back(f.rule);
  return ids;
}

}  // namespace

// --- stripping -------------------------------------------------------------

TEST(LintStrip, LineCommentsAreBlanked) {
  const auto lines = lint::split_source("int x = 1;  // rand() here\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].raw.find("rand"), std::string::npos);
}

TEST(LintStrip, BlockCommentsSpanLines) {
  const auto lines =
      lint::split_source("int a;\n/* rand()\n   clock() */ int b;\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1].code.find("rand"), std::string::npos);
  EXPECT_EQ(lines[2].code.find("clock"), std::string::npos);
  EXPECT_NE(lines[2].code.find("int b"), std::string::npos);
}

TEST(LintStrip, StringAndCharBodiesAreBlanked) {
  const auto lines = lint::split_source(
      "const char* s = \"rand()\"; char c = 'r'; int rend = 0;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  // Quotes survive so tokens cannot merge across a literal.
  EXPECT_NE(lines[0].code.find('"'), std::string::npos);
  EXPECT_NE(lines[0].code.find("rend"), std::string::npos);
}

TEST(LintStrip, EscapedQuoteDoesNotEndString) {
  const auto lines =
      lint::split_source("const char* s = \"a\\\"rand()\"; int y;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int y"), std::string::npos);
}

TEST(LintStrip, RawStringsAreBlanked) {
  const auto lines = lint::split_source(
      "const char* s = R\"(rand() and .detach())\"; int z;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_EQ(lines[0].code.find("detach"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int z"), std::string::npos);
}

TEST(LintStrip, TokenBoundaries) {
  EXPECT_TRUE(lint::has_call("return rand();", "rand"));
  EXPECT_FALSE(lint::has_call("return operand(x);", "rand"));
  EXPECT_FALSE(lint::has_call("return dualrad_rand;", "rand"));
  EXPECT_FALSE(lint::has_call("start_time(x);", "time"));
  EXPECT_TRUE(lint::has_call("t = time (nullptr);", "time"));
}

// --- raw-random ------------------------------------------------------------

TEST(LintRawRandom, FlagsEverySource) {
  const std::string bad =
      "#include <random>\n"
      "int a() { return rand(); }\n"
      "void b() { srand(7); }\n"
      "std::random_device rd;\n"
      "std::mt19937 gen;\n";
  const auto fs = run_lint("src/core/simulator.cpp", bad);
  ASSERT_EQ(fs.size(), 5u);
  for (const lint::Finding& f : fs) EXPECT_EQ(f.rule, "raw-random");
  EXPECT_EQ(fs[0].line, 1u);
  EXPECT_EQ(fs[1].line, 2u);
}

TEST(LintRawRandom, RngHeaderAndObsAreExempt) {
  const std::string text = "int a() { return rand(); }\n";
  EXPECT_TRUE(run_lint("src/core/rng.hpp", text).empty());
  EXPECT_TRUE(run_lint("src/obs/rss.cpp", text).empty());
  EXPECT_FALSE(run_lint("src/core/rng_extras.hpp", text).empty());
}

TEST(LintRawRandom, NoEscapeAnnotation) {
  // raw-random accepts only the allowlist, never an inline annotation.
  const std::string text =
      "// lint: random-ok\n"
      "int a() { return rand(); }  // lint: random-ok\n";
  EXPECT_EQ(run_lint("src/core/x.cpp", text).size(), 1u);
}

// --- wall-clock ------------------------------------------------------------

TEST(LintWallClock, FlagsResultPathsOnly) {
  const std::string text = "long t = time(nullptr);\n";
  EXPECT_EQ(rules_hit(run_lint("src/core/x.cpp", text)),
            std::vector<std::string>{"wall-clock"});
  EXPECT_TRUE(run_lint("src/serve/worker.cpp", text).empty());
  EXPECT_TRUE(run_lint("src/obs/telemetry.cpp", text).empty());
  EXPECT_TRUE(run_lint("tools/dualrad_campaign.cpp", text).empty());
}

TEST(LintWallClock, SteadyClockIsFine) {
  const std::string text =
      "auto t = std::chrono::steady_clock::now();\n"
      "auto e = t.time_since_epoch();\n";
  EXPECT_TRUE(run_lint("src/campaign/engine.cpp", text).empty());
}

TEST(LintWallClock, AnnotationOnLineOrAbove) {
  const std::string same_line =
      "long t = time(nullptr);  // lint: wallclock-ok (log only)\n";
  EXPECT_TRUE(run_lint("src/core/x.cpp", same_line).empty());
  const std::string line_above =
      "// lint: wallclock-ok (log only)\n"
      "long t = time(nullptr);\n";
  EXPECT_TRUE(run_lint("src/core/x.cpp", line_above).empty());
  const std::string too_far =
      "// lint: wallclock-ok (log only)\n"
      "int pad;\n"
      "long t = time(nullptr);\n";
  EXPECT_EQ(run_lint("src/core/x.cpp", too_far).size(), 1u);
}

// --- unordered-iter --------------------------------------------------------

TEST(LintUnorderedIter, RangeForOverTrackedIdent) {
  const std::string text =
      "std::unordered_map<int, int> counts;\n"
      "int f() { int s = 0; for (auto& [k, v] : counts) s += v; return s; }\n";
  const auto fs = run_lint("src/graph/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unordered-iter");
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(LintUnorderedIter, BeginOnTrackedIdent) {
  const std::string text =
      "std::unordered_set<int> seen;\n"
      "int f() { return *seen.begin(); }\n";
  EXPECT_EQ(rules_hit(run_lint("src/core/x.cpp", text)),
            std::vector<std::string>{"unordered-iter"});
}

TEST(LintUnorderedIter, NestedTemplateDeclaration) {
  // The declarator after a nested template argument list is still found.
  const std::string text =
      "std::vector<std::unordered_map<int, std::vector<int>>> reach;\n"
      "int f() { int n = 0; for (auto& m : reach[0]) ++n; return n; }\n";
  const auto fs = run_lint("src/adversary/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(LintUnorderedIter, LookupIsNotIteration) {
  const std::string text =
      "std::unordered_map<int, int> index;\n"
      "bool f(int k) { return index.find(k) != index.end(); }\n"
      "bool g(int k) { return index.contains(k); }\n";
  EXPECT_TRUE(run_lint("src/core/x.cpp", text).empty());
}

TEST(LintUnorderedIter, OrderedOkEscape) {
  const std::string text =
      "std::unordered_set<int> pool;\n"
      "// lint: ordered-ok (xor fold is order-insensitive)\n"
      "int f() { int p = 0; for (int v : pool) p ^= v; return p; }\n";
  EXPECT_TRUE(run_lint("src/core/x.cpp", text).empty());
}

TEST(LintUnorderedIter, OutsideResultPathsIsFine) {
  const std::string text =
      "std::unordered_map<int, int> counts;\n"
      "int f() { int s = 0; for (auto& [k, v] : counts) s += v; return s; }\n";
  EXPECT_TRUE(run_lint("src/serve/coordinator.cpp", text).empty());
}

// --- ptr-key-order ---------------------------------------------------------

TEST(LintPtrKeyOrder, FlagsPointerKeys) {
  EXPECT_EQ(rules_hit(run_lint("src/core/x.cpp",
                               "std::map<Node*, int> rank;\n")),
            std::vector<std::string>{"ptr-key-order"});
  EXPECT_EQ(rules_hit(run_lint("src/core/x.cpp",
                               "std::set<const Node*> visited;\n")),
            std::vector<std::string>{"ptr-key-order"});
  EXPECT_EQ(rules_hit(run_lint("src/serve/x.cpp",
                               "std::set<int, std::less<Node*>> s;\n")),
            std::vector<std::string>{"ptr-key-order"});
}

TEST(LintPtrKeyOrder, PointerValuesAreFine) {
  const std::string text =
      "std::map<std::string, const Scenario*, std::less<>> by_name;\n"
      "std::map<int, Node*> node_by_id;\n";
  EXPECT_TRUE(run_lint("src/serve/worker.cpp", text).empty());
}

// --- fp-accumulate ---------------------------------------------------------

TEST(LintFpAccumulate, FlagsCompoundAssignInHotPaths) {
  const std::string text =
      "double sum = 0.0;\n"
      "void f(double x) { sum += x; }\n";
  const auto fs = run_lint("src/core/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "fp-accumulate");
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(LintFpAccumulate, DeclarationChains) {
  // Both names in a `double a = 0, b = 0;` chain are tracked. (The linter
  // reports at most one fp finding per line, so accumulate on two lines.)
  const std::string text =
      "void f() {\n"
      "  double a = 0.0, b = 0.0;\n"
      "  a += 1.0;\n"
      "  b -= 2.0;\n"
      "}\n";
  const auto fs = run_lint("src/mac/x.cpp", text);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].line, 3u);
  EXPECT_EQ(fs[1].line, 4u);
}

TEST(LintFpAccumulate, IntegersAndColdPathsAreFine) {
  const std::string ints =
      "std::uint64_t n = 0;\n"
      "void f() { n += 3; }\n";
  EXPECT_TRUE(run_lint("src/core/x.cpp", ints).empty());
  const std::string fp =
      "double sum = 0.0;\n"
      "void f(double x) { sum += x; }\n";
  // stats/ and campaign/ aggregate after the engine has produced results.
  EXPECT_TRUE(run_lint("src/stats/stats.cpp", fp).empty());
  EXPECT_TRUE(run_lint("src/campaign/engine.cpp", fp).empty());
}

TEST(LintFpAccumulate, FpOkEscape) {
  const std::string text =
      "double sum = 0.0;\n"
      "// lint: fp-ok (serial order)\n"
      "void f(double x) { sum += x; }\n";
  EXPECT_TRUE(run_lint("src/core/x.cpp", text).empty());
}

// --- thread-detach ---------------------------------------------------------

TEST(LintThreadDetach, FlagsDetachEverywhere) {
  const std::string text = "void f(std::thread& t) { t.detach(); }\n";
  EXPECT_EQ(rules_hit(run_lint("src/serve/server.cpp", text)),
            std::vector<std::string>{"thread-detach"});
  EXPECT_EQ(rules_hit(run_lint("tools/dualrad_serve.cpp", text)),
            std::vector<std::string>{"thread-detach"});
  EXPECT_TRUE(run_lint("src/core/x.cpp",
                       "void f(std::thread& t) { t.join(); }\n")
                  .empty());
}

// --- checkpoint-durability -------------------------------------------------

TEST(LintCheckpointDurability, BufferedWritesFlagged) {
  const std::string text = "std::ofstream out(path);\n";
  EXPECT_EQ(rules_hit(run_lint("src/serve/checkpoint.cpp", text)),
            std::vector<std::string>{"checkpoint-durability"});
  // Outside the checkpoint files the rule does not apply.
  EXPECT_TRUE(run_lint("src/serve/wire.cpp", text).empty());
}

TEST(LintCheckpointDurability, WriteNeedsAppendAndFsync) {
  const std::string bare =
      "void append(int fd, const char* p, long n) { ::write(fd, p, n); }\n";
  const auto fs = run_lint("src/serve/checkpoint.cpp", bare);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "checkpoint-durability");

  const std::string disciplined =
      "int open_journal(const char* p) {\n"
      "  return ::open(p, O_WRONLY | O_CREAT | O_APPEND, 0644);\n"
      "}\n"
      "void append(int fd, const char* p, long n) {\n"
      "  ::write(fd, p, n);\n"
      "  ::fsync(fd);\n"
      "}\n";
  EXPECT_TRUE(run_lint("src/serve/checkpoint.cpp", disciplined).empty());
}

// --- unbounded-retry -------------------------------------------------------

TEST(LintUnboundedRetry, FlagsRawSleepsInServe) {
  const std::string text =
      "void f() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n"
      "void g() { ::usleep(1000); }\n"
      "void h() { sleep(1); }\n";
  const auto fs = run_lint("src/serve/worker.cpp", text);
  ASSERT_EQ(fs.size(), 3u);
  for (const lint::Finding& f : fs) EXPECT_EQ(f.rule, "unbounded-retry");
}

TEST(LintUnboundedRetry, OnlyAppliesToServe) {
  const std::string text =
      "void f() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n";
  EXPECT_TRUE(run_lint("src/obs/heartbeat.cpp", text).empty());
  EXPECT_TRUE(run_lint("tools/dualrad_serve.cpp", text).empty());
  EXPECT_FALSE(run_lint("src/serve/wire.cpp", text).empty());
}

TEST(LintUnboundedRetry, AnnotationAndWrappersEscape) {
  // The annotation on the line (or the line above) silences the rule, and
  // identifiers merely containing "sleep" are not sleep calls.
  const std::string ok =
      "// bounded, jittered delay from the caller. lint: backoff-ok\n"
      "void f() { std::this_thread::sleep_for(chunk); }\n"
      "void g() { sleep_checking_stop(delay, stop); }\n";
  EXPECT_TRUE(run_lint("src/serve/worker.cpp", ok).empty());
}

// --- allowlist -------------------------------------------------------------

TEST(LintAllowlist, ParseSkipsCommentsAndBlanks) {
  const auto entries = lint::parse_allowlist(
      "# header comment\n"
      "\n"
      "raw-random src/legacy/old.cpp  # grandfathered\n"
      "* src/generated/\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "raw-random");
  EXPECT_EQ(entries[0].path_suffix, "src/legacy/old.cpp");
  EXPECT_EQ(entries[1].rule, "*");
}

TEST(LintAllowlist, SuffixAndWildcardMatching) {
  lint::AllowEntry exact{"raw-random", "src/legacy/old.cpp"};
  EXPECT_TRUE(lint::allow_matches(exact, "raw-random", "src/legacy/old.cpp"));
  EXPECT_FALSE(lint::allow_matches(exact, "wall-clock", "src/legacy/old.cpp"));
  EXPECT_FALSE(lint::allow_matches(exact, "raw-random", "src/core/old.cpp"));
  lint::AllowEntry any_rule{"*", "old.cpp"};
  EXPECT_TRUE(lint::allow_matches(any_rule, "thread-detach",
                                  "src/legacy/old.cpp"));
}

TEST(LintAllowlist, AllowedFindingsDoNotFail) {
  lint::Linter linter;
  linter.set_allowlist(
      lint::parse_allowlist("raw-random src/core/legacy.cpp\n"));
  linter.lint_file("src/core/legacy.cpp", "int a() { return rand(); }\n");
  linter.lint_file("src/core/fresh.cpp", "int b() { return rand(); }\n");
  ASSERT_EQ(linter.findings().size(), 2u);
  EXPECT_TRUE(linter.findings()[0].allowed);
  EXPECT_FALSE(linter.findings()[1].allowed);
  EXPECT_EQ(linter.unallowed_count(), 1u);
}

// --- rule table ------------------------------------------------------------

TEST(LintRules, TableIsComplete) {
  ASSERT_EQ(lint::rules().size(), 8u);
  for (const lint::Rule& r : lint::rules()) {
    EXPECT_FALSE(r.id.empty());
    EXPECT_FALSE(r.summary.empty());
    EXPECT_FALSE(r.rationale.empty());
    EXPECT_FALSE(r.hint.empty());
    EXPECT_NE(lint::find_rule(r.id), nullptr);
  }
  EXPECT_EQ(lint::find_rule("no-such-rule"), nullptr);
}

// --- fixture corpus --------------------------------------------------------

#ifdef DUALRAD_LINT_FIXTURES

namespace {

/// Expected unallowed finding count per fixture file (repo-relative path as
/// the linter sees it). Every rule has at least one positive fixture; the
/// negatives inside each file are covered by the exact counts.
const std::map<std::string, std::size_t> kFixtureExpectations = {
    {"src/core/raw_random.cpp", 5},
    {"src/core/wall_clock.cpp", 3},
    {"src/core/unordered_iter.cpp", 2},
    {"src/adversary/ptr_key.cpp", 3},
    {"src/mac/fp_accum.cpp", 2},
    {"src/campaign/thread_detach.cpp", 1},
    {"src/serve/checkpoint_buffered.cpp", 2},
    {"src/serve/retry_sleep.cpp", 2},
    {"src/obs/sampling_ok.cpp", 0},
    {"src/core/clean.cpp", 0},
};

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << p;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

TEST(LintFixtures, CorpusMatchesExpectations) {
  const std::filesystem::path root = DUALRAD_LINT_FIXTURES;
  ASSERT_TRUE(std::filesystem::is_directory(root)) << root;
  std::size_t seen = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".cpp") continue;
    const std::string rel =
        std::filesystem::relative(entry.path(), root).generic_string();
    const auto it = kFixtureExpectations.find(rel);
    ASSERT_NE(it, kFixtureExpectations.end())
        << "fixture file without an expectation: " << rel;
    lint::Linter linter;
    linter.lint_file(rel, read_file(entry.path()));
    EXPECT_EQ(linter.unallowed_count(), it->second) << rel;
    ++seen;
  }
  EXPECT_EQ(seen, kFixtureExpectations.size())
      << "expectation without a fixture file";
}

#endif  // DUALRAD_LINT_FIXTURES
