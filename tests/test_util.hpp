#pragma once

#include <set>
#include <utility>
#include <vector>

#include "algorithms/broadcast_algorithm.hpp"
#include "core/process.hpp"

/// Test helpers: tiny controllable processes.

namespace dualrad::testing {

/// Sends (token iff it has it) in exactly the given rounds, regardless of
/// state. Useful for steering the simulator from tests.
class ScriptedSender final : public TokenProcess {
 public:
  ScriptedSender(ProcessId id, std::set<Round> send_rounds)
      : TokenProcess(id), send_rounds_(std::move(send_rounds)) {}
  ScriptedSender(const ScriptedSender&) = default;

  [[nodiscard]] Action next_action(Round round) const override {
    if (!send_rounds_.contains(round)) return Action::silent();
    return Action::transmit(Message{has_token(), id(), round, 0});
  }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<ScriptedSender>(*this);
  }

 private:
  std::set<Round> send_rounds_;
};

/// Never sends; records everything it receives.
class Recorder final : public TokenProcess {
 public:
  explicit Recorder(ProcessId id,
                    std::vector<std::pair<Round, Reception>>* sink = nullptr)
      : TokenProcess(id), sink_(sink) {}
  Recorder(const Recorder&) = default;

  [[nodiscard]] Action next_action(Round) const override {
    return Action::silent();
  }

  void on_receive(Round round, const Reception& reception) override {
    TokenProcess::on_receive(round, reception);
    if (sink_ != nullptr) sink_->emplace_back(round, reception);
  }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<Recorder>(*this);
  }

 private:
  std::vector<std::pair<Round, Reception>>* sink_;
};

/// Factory over per-id scripts; ids missing from the table are Recorders.
inline ProcessFactory scripted_factory(
    std::vector<std::pair<ProcessId, std::set<Round>>> scripts,
    std::vector<std::pair<Round, Reception>>* recorder_sink = nullptr,
    ProcessId recorded_id = -1) {
  return [scripts = std::move(scripts), recorder_sink, recorded_id](
             ProcessId id, NodeId, std::uint64_t) -> std::unique_ptr<Process> {
    for (const auto& [pid, rounds] : scripts) {
      if (pid == id) return std::make_unique<ScriptedSender>(id, rounds);
    }
    return std::make_unique<Recorder>(
        id, id == recorded_id ? recorder_sink : nullptr);
  };
}

}  // namespace dualrad::testing
