#include <gtest/gtest.h>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "adversary/scripted_adversary.hpp"
#include "adversary/theorem2_adversary.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace dualrad {
namespace {

using testing::scripted_factory;

AdversaryView make_view(const DualGraph& net,
                        const std::vector<ProcessId>& mapping,
                        const NodeFlags& covered, Round round) {
  return AdversaryView::of(net, mapping, covered, {}, round);
}

/// Drive one choose_unreliable_reach call through a fresh ReachSink and
/// return the per-sender rows (the old vector-of-vectors shape, for easy
/// assertions).
std::vector<std::vector<NodeId>> collect_reach(
    Adversary& adversary, const AdversaryView& view,
    const std::vector<NodeId>& senders) {
  ReachSink sink;
  sink.begin_round(senders.size());
  adversary.choose_unreliable_reach(view, senders, sink);
  sink.seal();
  std::vector<std::vector<NodeId>> out(senders.size());
  for (std::size_t i = 0; i < senders.size(); ++i) {
    const auto row = sink.extras(i);
    out[i].assign(row.begin(), row.end());
  }
  return out;
}

// --------------------------------------------------------------- Bernoulli

TEST(Bernoulli, FiresSubsetOfUnreliableEdges) {
  const DualGraph net = duals::bridge_network(10);
  BernoulliAdversary adversary(0.5, 3);
  adversary.on_execution_start(net);
  std::vector<ProcessId> mapping(10);
  std::iota(mapping.begin(), mapping.end(), 0);
  NodeFlags covered(10, 0);
  const auto view = make_view(net, mapping, covered, 1);
  const std::vector<NodeId> senders = {2, 3};
  const auto reach = collect_reach(adversary, view, senders);
  ASSERT_EQ(reach.size(), 2u);
  for (std::size_t i = 0; i < senders.size(); ++i) {
    for (NodeId v : reach[i]) {
      EXPECT_TRUE(net.g_prime().has_edge(senders[i], v));
      EXPECT_FALSE(net.g().has_edge(senders[i], v));
    }
  }
}

TEST(Bernoulli, IsDeterministicGivenSeed) {
  const DualGraph net = duals::bridge_network(12);
  const ProcessFactory factory = make_round_robin_factory(12);
  SimConfig config;
  config.max_rounds = 10'000;
  BernoulliAdversary a1(0.3, 42), a2(0.3, 42);
  const SimResult r1 = run_broadcast(net, factory, a1, config);
  const SimResult r2 = run_broadcast(net, factory, a2, config);
  EXPECT_EQ(r1.completion_round, r2.completion_round);
  EXPECT_EQ(r1.total_sends, r2.total_sends);
  EXPECT_EQ(r1.first_token, r2.first_token);
}

TEST(Bernoulli, ZeroProbabilityEqualsBenign) {
  const DualGraph net = duals::bridge_network(12);
  const ProcessFactory factory = make_round_robin_factory(12);
  SimConfig config;
  config.max_rounds = 10'000;
  BernoulliAdversary bern(0.0, 42);
  BenignAdversary benign;
  const SimResult r1 = run_broadcast(net, factory, bern, config);
  const SimResult r2 = run_broadcast(net, factory, benign, config);
  EXPECT_EQ(r1.completion_round, r2.completion_round);
  EXPECT_EQ(r1.first_token, r2.first_token);
}

// ----------------------------------------------------------- GreedyBlocker

TEST(GreedyBlocker, JamsSoloDeliveryToUncoveredNode) {
  // Path 0-1-2 with unreliable 0-2: when 1 sends alone toward uncovered 2
  // while 0 also sends, the blocker fires 0->2 to collide... construct:
  // senders {0, 1}; node 2 reliable arrivals: from 1 only (=1); 0 has
  // unreliable edge to 2 => jam.
  Graph g = gen::path(3);
  Graph gp = gen::path(3);
  gp.add_undirected_edge(0, 2);
  const DualGraph net(std::move(g), std::move(gp), 0);
  GreedyBlockerAdversary adversary;
  std::vector<ProcessId> mapping = {0, 1, 2};
  NodeFlags covered = {1, 1, 0};
  const auto view = make_view(net, mapping, covered, 5);
  const auto reach = collect_reach(adversary, view, {0, 1});
  ASSERT_EQ(reach.size(), 2u);
  ASSERT_EQ(reach[0].size(), 1u);  // 0 jams node 2
  EXPECT_EQ(reach[0].front(), 2);
  EXPECT_TRUE(reach[1].empty());
}

TEST(GreedyBlocker, LeavesCoveredNodesAlone) {
  Graph g = gen::path(3);
  Graph gp = gen::path(3);
  gp.add_undirected_edge(0, 2);
  const DualGraph net(std::move(g), std::move(gp), 0);
  GreedyBlockerAdversary adversary;
  std::vector<ProcessId> mapping = {0, 1, 2};
  NodeFlags covered = {1, 1, 1};
  const auto view = make_view(net, mapping, covered, 5);
  const auto reach = collect_reach(adversary, view, {0, 1});
  EXPECT_TRUE(reach[0].empty());
  EXPECT_TRUE(reach[1].empty());
}

TEST(GreedyBlocker, CannotJamLoneSender) {
  Graph g = gen::path(3);
  Graph gp = gen::path(3);
  gp.add_undirected_edge(0, 2);
  const DualGraph net(std::move(g), std::move(gp), 0);
  GreedyBlockerAdversary adversary;
  std::vector<ProcessId> mapping = {0, 1, 2};
  NodeFlags covered = {1, 1, 0};
  const auto view = make_view(net, mapping, covered, 5);
  const auto reach = collect_reach(adversary, view, {1});
  EXPECT_TRUE(reach[0].empty());  // progress is unavoidable
}

TEST(GreedyBlocker, DelaysBroadcastRelativeToBenign) {
  // Round robin has a single sender per round, so the blocker is powerless
  // against it (jamming needs a second sender). Harmonic broadcast has many
  // simultaneous senders, which is exactly what the blocker weaponizes.
  const DualGraph net = duals::layered_complete_gprime(6, 4);
  const ProcessFactory factory = make_harmonic_factory(net.node_count());
  SimConfig config;
  config.max_rounds = 3'000'000;
  config.seed = 5;
  BenignAdversary benign;
  GreedyBlockerAdversary greedy;
  const SimResult fast = run_broadcast(net, factory, benign, config);
  const SimResult slow = run_broadcast(net, factory, greedy, config);
  ASSERT_TRUE(fast.completed);
  ASSERT_TRUE(slow.completed);
  EXPECT_GT(slow.completion_round, fast.completion_round);
  EXPECT_GT(slow.total_collision_events, fast.total_collision_events);
}

TEST(GreedyBlocker, PowerlessAgainstSingleSenderSchedules) {
  // The flip side: round robin isolates every informed node once per n
  // rounds and the blocker cannot interfere with a lone sender.
  const DualGraph net = duals::layered_complete_gprime(6, 4);
  const ProcessFactory factory = make_round_robin_factory(net.node_count());
  SimConfig config;
  config.max_rounds = 1'000'000;
  BenignAdversary benign;
  GreedyBlockerAdversary greedy;
  const SimResult fast = run_broadcast(net, factory, benign, config);
  const SimResult slow = run_broadcast(net, factory, greedy, config);
  ASSERT_TRUE(fast.completed);
  ASSERT_TRUE(slow.completed);
  EXPECT_EQ(slow.completion_round, fast.completion_round);
}

TEST(GreedyBlocker, Cr4HandsOverTokenlessMessage) {
  GreedyBlockerAdversary adversary;
  const DualGraph net = duals::bridge_network(5);
  std::vector<ProcessId> mapping = {0, 1, 2, 3, 4};
  NodeFlags covered(5, 0);
  const auto view = make_view(net, mapping, covered, 1);
  const Message with_token{true, 0, 1, 0};
  const Message without{false, 1, 1, 0};
  const Reception rec = adversary.resolve_cr4(view, 3, {with_token, without});
  ASSERT_TRUE(rec.is_message());
  EXPECT_FALSE(rec.message->token);
  const Reception rec2 = adversary.resolve_cr4(view, 3, {with_token});
  EXPECT_TRUE(rec2.is_silence());
}

// ---------------------------------------------------------------- Theorem2

TEST(Theorem2Adversary, SingleCliqueSenderReachesOnlyClique) {
  const NodeId n = 8;
  const DualGraph net = duals::bridge_network(n);
  const auto layout = duals::bridge_layout(n);
  Theorem2Adversary rules(layout);
  FixedAssignmentAdversary adversary(theorem2_assignment(n, 3), rules);
  // Clique node 2 (not source, not bridge) sends alone in round 1.
  std::vector<std::pair<Round, Reception>> received;
  const auto factory = scripted_factory({{theorem2_assignment(n, 3)[2], {1}}},
                                        &received, n - 1);
  SimConfig config;
  config.rule = CollisionRule::CR1;
  config.start = StartRule::Synchronous;
  config.max_rounds = 1;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  const SimResult result = run_broadcast(net, factory, adversary, config);
  // Receiver heard silence; clique nodes heard the message.
  const auto& recs = result.trace.rounds[0].receptions;
  EXPECT_TRUE(recs[static_cast<std::size_t>(layout.receiver)].is_silence());
  EXPECT_TRUE(recs[0].is_message());
  EXPECT_TRUE(recs[static_cast<std::size_t>(layout.bridge)].is_message());
}

TEST(Theorem2Adversary, BridgeSoloReachesEveryone) {
  const NodeId n = 8;
  const DualGraph net = duals::bridge_network(n);
  const auto layout = duals::bridge_layout(n);
  Theorem2Adversary rules(layout);
  const auto assignment = theorem2_assignment(n, 4);
  FixedAssignmentAdversary adversary(assignment, rules);
  const auto factory = scripted_factory(
      {{assignment[static_cast<std::size_t>(layout.bridge)], {1}}});
  SimConfig config;
  config.rule = CollisionRule::CR1;
  config.start = StartRule::Synchronous;
  config.max_rounds = 1;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  const SimResult result = run_broadcast(net, factory, adversary, config);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_TRUE(result.trace.rounds[0]
                    .receptions[static_cast<std::size_t>(v)]
                    .is_message())
        << v;
  }
}

TEST(Theorem2Adversary, MultiSenderGivesEveryoneCollision) {
  const NodeId n = 8;
  const DualGraph net = duals::bridge_network(n);
  Theorem2Adversary rules(duals::bridge_layout(n));
  const auto assignment = theorem2_assignment(n, 2);
  FixedAssignmentAdversary adversary(assignment, rules);
  const auto factory =
      scripted_factory({{assignment[2], {1}}, {assignment[3], {1}}});
  SimConfig config;
  config.rule = CollisionRule::CR1;
  config.start = StartRule::Synchronous;
  config.max_rounds = 1;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  const SimResult result = run_broadcast(net, factory, adversary, config);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_TRUE(result.trace.rounds[0]
                    .receptions[static_cast<std::size_t>(v)]
                    .is_collision())
        << v;
  }
}

TEST(Theorem2Assignment, IsPermutationWithPins) {
  const NodeId n = 10;
  for (ProcessId i = 1; i <= n - 2; ++i) {
    const auto assignment = theorem2_assignment(n, i);
    EXPECT_EQ(assignment[0], 0);
    EXPECT_EQ(assignment[1], i);
    EXPECT_EQ(assignment[static_cast<std::size_t>(n - 1)], n - 1);
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (ProcessId p : assignment) {
      ASSERT_FALSE(seen[static_cast<std::size_t>(p)]);
      seen[static_cast<std::size_t>(p)] = true;
    }
  }
  EXPECT_THROW(theorem2_assignment(n, 0), std::invalid_argument);
  EXPECT_THROW(theorem2_assignment(n, n - 1), std::invalid_argument);
}

// ---------------------------------------------------------------- Scripted

TEST(ScriptedAdversary, ReplaysReachChoices) {
  Graph g = gen::path(3);
  Graph gp = gen::path(3);
  gp.add_undirected_edge(0, 2);
  const DualGraph net(std::move(g), std::move(gp), 0);
  AdversaryScript script;
  script.reach.resize(2);
  script.reach[0][0] = {2};  // round 1: sender 0 reaches node 2 unreliably
  ScriptedAdversary adversary(script);
  const auto factory = scripted_factory({{0, {1, 2}}});
  SimConfig config;
  config.rule = CollisionRule::CR1;
  config.start = StartRule::Synchronous;
  config.max_rounds = 2;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  const SimResult result = run_broadcast(net, factory, adversary, config);
  EXPECT_TRUE(result.trace.rounds[0].receptions[2].is_message());  // scripted
  EXPECT_TRUE(result.trace.rounds[1].receptions[2].is_silence());  // beyond
}

TEST(ScriptedAdversary, ForcesCr4Resolution) {
  Graph g = gen::clique(3);
  const DualGraph net = make_classical(std::move(g), 0);
  AdversaryScript script;
  script.cr4.resize(1);
  const Message forced{false, 1, 1, 0};
  script.cr4[0][2] = Reception::of(forced);
  ScriptedAdversary adversary(script);
  const auto factory = scripted_factory({{0, {1}}, {1, {1}}});
  SimConfig config;
  config.rule = CollisionRule::CR4;
  config.start = StartRule::Synchronous;
  config.max_rounds = 1;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  const SimResult result = run_broadcast(net, factory, adversary, config);
  const auto& rec = result.trace.rounds[0].receptions[2];
  ASSERT_TRUE(rec.is_message());
  EXPECT_EQ(rec.message->origin, 1);
}

// --------------------------------------------------------------- Legality

TEST(AdversaryLegality, SimulatorRejectsIllegalReach) {
  // An adversary that fires a reliable edge as if it were unreliable must be
  // caught by the engine's validation.
  class Cheater : public Adversary {
   public:
    void choose_unreliable_reach(const AdversaryView&,
                                 std::span<const NodeId> senders,
                                 ReachSink& sink) override {
      if (!senders.empty()) sink.add(0, 1);  // 0-1 is reliable
    }
  };
  Graph g = gen::path(3);
  Graph gp = gen::path(3);
  gp.add_undirected_edge(0, 2);
  const DualGraph net(std::move(g), std::move(gp), 0);
  Cheater adversary;
  const auto factory = scripted_factory({{0, {1}}});
  SimConfig config;
  config.max_rounds = 1;
  EXPECT_THROW(run_broadcast(net, factory, adversary, config),
               std::logic_error);
}

TEST(AdversaryLegality, SimulatorRejectsBadCr4Resolution) {
  class Cheater : public FullInterferenceAdversary {
   public:
    Reception resolve_cr4(const AdversaryView&, NodeId,
                          const std::vector<Message>&) override {
      return Reception::of(Message{true, 99, 0, 0});  // not an arrival
    }
  };
  Graph g = gen::clique(3);
  const DualGraph net = make_classical(std::move(g), 0);
  Cheater adversary;
  const auto factory = scripted_factory({{0, {1}}, {1, {1}}});
  SimConfig config;
  config.rule = CollisionRule::CR4;
  config.start = StartRule::Synchronous;
  config.max_rounds = 1;
  EXPECT_THROW(run_broadcast(net, factory, adversary, config),
               std::logic_error);
}

}  // namespace
}  // namespace dualrad
