#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "campaign/builtin_scenarios.hpp"
#include "campaign/engine.hpp"
#include "campaign/export.hpp"
#include "campaign/registry.hpp"
#include "graph/dual_builders.hpp"

namespace dualrad::campaign {
namespace {

Scenario cheap_scenario(const std::string& name) {
  Scenario s;
  s.name = name;
  s.network = [] { return duals::layered_complete_gprime(4, 3); };
  s.algorithm = [](const DualGraph& net) {
    return make_harmonic_factory(net.node_count(), {.eps = 0.2});
  };
  s.adversary = make_seeded_adversary_factory<BernoulliAdversary>(0.4);
  s.max_rounds = 500'000;
  s.trials = 4;
  return s;
}

std::vector<Scenario> cheap_campaign() {
  std::vector<Scenario> scenarios;
  scenarios.push_back(cheap_scenario("test/harmonic/bernoulli"));
  Scenario greedy = cheap_scenario("test/harmonic/greedy");
  greedy.adversary = make_adversary_factory<GreedyBlockerAdversary>();
  scenarios.push_back(greedy);
  Scenario rr = cheap_scenario("test/round-robin/benign");
  rr.algorithm = [](const DualGraph& net) {
    return make_round_robin_factory(net.node_count());
  };
  rr.adversary = make_adversary_factory<BenignAdversary>();
  rr.trials = 2;
  scenarios.push_back(rr);
  return scenarios;
}

// --- engine determinism ------------------------------------------------------

TEST(CampaignEngine, JsonlByteIdenticalAcrossWorkerCounts) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  std::string baseline_trials, baseline_summaries;
  for (unsigned threads : {1u, 4u, 8u}) {
    CampaignConfig config;
    config.master_seed = 99;
    config.threads = threads;
    const CampaignResult result = run_campaign(scenarios, config);
    const std::string trials = trials_to_jsonl(result.trials);
    const std::string summaries = summaries_to_jsonl(result.summaries);
    if (threads == 1) {
      baseline_trials = trials;
      baseline_summaries = summaries;
      EXPECT_FALSE(trials.empty());
    } else {
      EXPECT_EQ(trials, baseline_trials) << "threads=" << threads;
      EXPECT_EQ(summaries, baseline_summaries) << "threads=" << threads;
    }
  }
}

// The sharded parallel round kernel inside a trial (SimConfig::threads via
// CampaignConfig::threads_per_trial) must not move a byte of campaign
// output either — its shard merge is deterministic and every observable is
// per-node independent.
TEST(CampaignEngine, JsonlByteIdenticalAcrossThreadsPerTrial) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  std::string baseline_trials, baseline_summaries;
  for (unsigned threads_per_trial : {1u, 4u}) {
    CampaignConfig config;
    config.master_seed = 123;
    config.threads = 2;
    config.threads_per_trial = threads_per_trial;
    const CampaignResult result = run_campaign(scenarios, config);
    const std::string trials = trials_to_jsonl(result.trials);
    const std::string summaries = summaries_to_jsonl(result.summaries);
    const std::string trials_csv = trials_to_csv(result.trials);
    if (threads_per_trial == 1) {
      baseline_trials = trials + trials_csv;
      baseline_summaries = summaries;
      EXPECT_FALSE(trials.empty());
    } else {
      EXPECT_EQ(trials + trials_csv, baseline_trials)
          << "threads_per_trial=" << threads_per_trial;
      EXPECT_EQ(summaries, baseline_summaries)
          << "threads_per_trial=" << threads_per_trial;
    }
  }
}

TEST(CampaignEngine, RowOrderIsScenarioThenTrial) {
  const CampaignResult result = run_campaign(cheap_campaign(), {});
  ASSERT_EQ(result.trials.size(), 4u + 4u + 2u);
  std::size_t i = 0;
  for (const char* name : {"test/harmonic/bernoulli", "test/harmonic/greedy",
                           "test/round-robin/benign"}) {
    for (std::uint32_t t = 0;
         i < result.trials.size() && result.trials[i].scenario == name;
         ++t, ++i) {
      EXPECT_EQ(result.trials[i].trial, t);
    }
  }
  EXPECT_EQ(i, result.trials.size());
}

TEST(CampaignEngine, TrialSeedsAreDerivedStreams) {
  const CampaignResult result = run_campaign(cheap_campaign(), {});
  std::set<std::uint64_t> seeds;
  for (const TrialRow& row : result.trials) {
    EXPECT_EQ(row.seed, trial_seed(1, row.scenario, row.trial));
    seeds.insert(row.seed);
  }
  EXPECT_EQ(seeds.size(), result.trials.size()) << "trial seeds must differ";
  // A scenario's stream does not depend on which other scenarios run.
  EXPECT_EQ(trial_seed(1, "test/harmonic/greedy", 0),
            trial_seed(1, "test/harmonic/greedy", 0));
  EXPECT_NE(trial_seed(1, "test/harmonic/greedy", 0),
            trial_seed(2, "test/harmonic/greedy", 0));
}

TEST(CampaignEngine, MasterSeedChangesRandomizedResults) {
  const std::vector<Scenario> scenarios = {cheap_scenario("test/seeded")};
  CampaignConfig a, b;
  a.master_seed = 1;
  b.master_seed = 2;
  const std::string ja = trials_to_jsonl(run_campaign(scenarios, a).trials);
  const std::string jb = trials_to_jsonl(run_campaign(scenarios, b).trials);
  EXPECT_NE(ja, jb);
}

// Each trial must get a *fresh* adversary: one instance, one execution.
TEST(CampaignEngine, AdversaryFactoryCalledOncePerTrial) {
  struct Counters {
    int constructed = 0;
    int reused = 0;  // instances whose on_execution_start ran twice
  };
  struct CountingAdversary : BenignAdversary {
    explicit CountingAdversary(Counters* c) : counters(c) { ++c->constructed; }
    void on_execution_start(const DualGraph& net) override {
      BenignAdversary::on_execution_start(net);
      if (++starts > 1) ++counters->reused;
    }
    Counters* counters;
    int starts = 0;
  };

  Counters counters;
  Scenario s = cheap_scenario("test/fresh-adversary");
  s.trials = 6;
  s.adversary = [&counters](std::uint64_t) {
    return std::make_unique<CountingAdversary>(&counters);
  };
  (void)run_campaign({s}, {});
  EXPECT_EQ(counters.constructed, 6);
  EXPECT_EQ(counters.reused, 0);
}

TEST(CampaignEngine, TrialsOverrideAndSummaryAccounting) {
  CampaignConfig config;
  config.trials_override = 2;
  const CampaignResult result = run_campaign(cheap_campaign(), config);
  EXPECT_EQ(result.trials.size(), 3u * 2u);
  ASSERT_EQ(result.summaries.size(), 3u);
  for (const ScenarioSummary& summary : result.summaries) {
    EXPECT_EQ(summary.trials, 2u);
    EXPECT_EQ(summary.rounds.count + summary.failures, summary.trials);
  }
  EXPECT_NE(find_summary(result, "test/harmonic/greedy"), nullptr);
  EXPECT_EQ(find_summary(result, "no/such/scenario"), nullptr);
}

TEST(CampaignEngine, ObserverSeesEveryTrialWithFullSimResult) {
  Scenario s = cheap_scenario("test/observed");
  s.trials = 3;
  CampaignConfig config;
  config.threads = 4;
  std::set<std::uint32_t> seen;
  config.observer = [&seen](const Scenario& scenario, const TrialRow& row,
                            const SimResult& result) {
    EXPECT_EQ(scenario.name, "test/observed");
    EXPECT_EQ(result.completed, row.completed);
    EXPECT_FALSE(result.first_token.empty());
    seen.insert(row.trial);
  };
  (void)run_campaign({s}, config);
  EXPECT_EQ(seen.size(), 3u);
}

// Duplicate names would share a seed stream and collide in find_summary;
// the engine rejects them even when the caller bypassed a registry.
TEST(CampaignEngine, RejectsDuplicateScenarioNames) {
  const std::vector<Scenario> scenarios = {cheap_scenario("test/twin"),
                                           cheap_scenario("test/twin")};
  EXPECT_THROW((void)run_campaign(scenarios, {}), std::invalid_argument);
}

TEST(CampaignEngine, TrialExceptionsPropagate) {
  Scenario s = cheap_scenario("test/throwing");
  s.adversary = [](std::uint64_t) -> std::unique_ptr<Adversary> {
    throw std::runtime_error("adversary construction failed");
  };
  EXPECT_THROW((void)run_campaign({s}, {}), std::runtime_error);
}

// --- registry ----------------------------------------------------------------

TEST(ScenarioRegistry, RejectsDuplicateNames) {
  ScenarioRegistry registry;
  registry.add(cheap_scenario("test/unique"));
  EXPECT_THROW(registry.add(cheap_scenario("test/unique")),
               std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ScenarioRegistry, RejectsInvalidNamesAndMissingBuilders) {
  ScenarioRegistry registry;
  EXPECT_THROW(registry.add(cheap_scenario("")), std::invalid_argument);
  EXPECT_THROW(registry.add(cheap_scenario("has space")),
               std::invalid_argument);
  EXPECT_THROW(registry.add(cheap_scenario("has\"quote")),
               std::invalid_argument);
  Scenario no_adversary = cheap_scenario("test/no-adversary");
  no_adversary.adversary = nullptr;
  EXPECT_THROW(registry.add(no_adversary), std::invalid_argument);
}

TEST(ScenarioRegistry, MatchFiltersByNameAndTag) {
  ScenarioRegistry registry;
  Scenario a = cheap_scenario("test/alpha");
  a.tags = {"quick"};
  Scenario b = cheap_scenario("test/beta");
  b.tags = {"slow"};
  registry.add(a);
  registry.add(b);
  EXPECT_EQ(registry.match("").size(), 2u);
  EXPECT_EQ(registry.match("alpha").size(), 1u);
  EXPECT_EQ(registry.match("slow").size(), 1u);
  EXPECT_EQ(registry.match("slow").front().name, "test/beta");
  EXPECT_TRUE(registry.match("nope").empty());
  EXPECT_EQ(registry.at("test/alpha").name, "test/alpha");
  EXPECT_THROW((void)registry.at("test/gamma"), std::invalid_argument);
}

TEST(BuiltinScenarios, CatalogueHasAtLeastTwelveValidScenarios) {
  const ScenarioRegistry registry = builtin_registry();
  EXPECT_GE(registry.size(), 12u);
  for (const Scenario& s : registry.all()) {
    EXPECT_TRUE(is_valid_scenario_name(s.name)) << s.name;
    EXPECT_TRUE(static_cast<bool>(s.network)) << s.name;
    EXPECT_TRUE(static_cast<bool>(s.algorithm)) << s.name;
    EXPECT_TRUE(static_cast<bool>(s.adversary)) << s.name;
  }
}

TEST(BuiltinScenarios, QuickSubsetRunsToCompletion) {
  const ScenarioRegistry registry = builtin_registry();
  CampaignConfig config;
  config.trials_override = 1;
  const CampaignResult result = run_campaign(registry.match("quick"), config);
  ASSERT_GE(result.summaries.size(), 4u);
  for (const ScenarioSummary& summary : result.summaries) {
    EXPECT_EQ(summary.failures, 0u) << summary.scenario;
  }
}

// --- export round trips ------------------------------------------------------

TEST(CampaignExport, JsonlRoundTripsTrialRows) {
  const CampaignResult result = run_campaign(cheap_campaign(), {});
  const std::string jsonl = trials_to_jsonl(result.trials);
  EXPECT_EQ(trials_from_jsonl(jsonl), result.trials);
}

TEST(CampaignExport, CsvRoundTripsTrialRows) {
  const CampaignResult result = run_campaign(cheap_campaign(), {});
  const std::string csv = trials_to_csv(result.trials);
  EXPECT_EQ(trials_from_csv(csv), result.trials);
}

TEST(CampaignExport, RoundTripsIncompleteTrials) {
  // kNever (= -1) rounds of an uncompleted trial must survive both formats.
  std::vector<TrialRow> rows(1);
  rows[0].scenario = "test/failed";
  rows[0].trial = 7;
  rows[0].seed = 0xFFFF'FFFF'FFFF'FFFFULL;
  rows[0].completed = false;
  rows[0].rounds = kNever;
  rows[0].rounds_executed = 100'000;
  rows[0].sends = 123;
  rows[0].collisions = 45;
  EXPECT_EQ(trials_from_jsonl(trials_to_jsonl(rows)), rows);
  EXPECT_EQ(trials_from_csv(trials_to_csv(rows)), rows);
  const std::vector<TrialRow> parsed = trials_from_jsonl(trials_to_jsonl(rows));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].rounds, kNever);
}

TEST(CampaignExport, RoundTripsMultiTokenAndTimedTrials) {
  std::vector<TrialRow> rows(1);
  rows[0].scenario = "test/mac";
  rows[0].trial = 2;
  rows[0].seed = 99;
  rows[0].completed = true;
  rows[0].rounds = 1234;
  rows[0].rounds_executed = 1234;
  rows[0].sends = 500;
  rows[0].collisions = 7;
  rows[0].tokens = 16;
  rows[0].wall_us = 98765;
  // With timing the full row round-trips.
  EXPECT_EQ(trials_from_jsonl(trials_to_jsonl(rows, /*include_timing=*/true)),
            rows);
  EXPECT_EQ(trials_from_csv(trials_to_csv(rows, /*include_timing=*/true)),
            rows);
  // Without timing, wall_us is deliberately dropped (determinism contract);
  // everything else survives.
  std::vector<TrialRow> untimed = rows;
  untimed[0].wall_us = -1;
  EXPECT_EQ(trials_from_jsonl(trials_to_jsonl(rows)), untimed);
  EXPECT_EQ(trials_from_csv(trials_to_csv(rows)), untimed);
}

TEST(CampaignExport, EmptyCampaignsExportAndParseCleanly) {
  // No scenarios at all: the engine returns an empty result...
  const CampaignResult result = run_campaign({}, {});
  EXPECT_TRUE(result.trials.empty());
  EXPECT_TRUE(result.summaries.empty());
  // ...JSONL is the empty string, CSV is header-only, and both parse back
  // to zero rows instead of garbage.
  EXPECT_EQ(trials_to_jsonl(result.trials), "");
  EXPECT_TRUE(trials_from_jsonl("").empty());
  const std::string csv = trials_to_csv(result.trials);
  EXPECT_EQ(csv,
            "scenario,trial,seed,completed,rounds,rounds_executed,sends,"
            "collisions,tokens\n");
  EXPECT_TRUE(trials_from_csv(csv).empty());
  EXPECT_EQ(summaries_to_jsonl(result.summaries), "");
}

TEST(CampaignExport, LegacyExportsWithoutTokensStillParse) {
  // Files written before the tokens / wall_us columns existed.
  const std::vector<TrialRow> jsonl_rows = trials_from_jsonl(
      "{\"scenario\":\"old/row\",\"trial\":0,\"seed\":5,\"completed\":true,"
      "\"rounds\":10,\"rounds_executed\":10,\"sends\":3,\"collisions\":0}\n");
  ASSERT_EQ(jsonl_rows.size(), 1u);
  EXPECT_EQ(jsonl_rows[0].tokens, 1);
  EXPECT_EQ(jsonl_rows[0].wall_us, -1);
  const std::vector<TrialRow> csv_rows = trials_from_csv(
      "scenario,trial,seed,completed,rounds,rounds_executed,sends,"
      "collisions\nold/row,0,5,1,10,10,3,0\n");
  ASSERT_EQ(csv_rows.size(), 1u);
  EXPECT_EQ(csv_rows[0].tokens, 1);
  EXPECT_EQ(csv_rows[0].wall_us, -1);
}

TEST(CampaignExport, ParsersRejectMalformedInput) {
  EXPECT_THROW((void)trials_from_jsonl("{\"scenario\":\"x\"}\n"),
               std::invalid_argument);
  EXPECT_THROW((void)trials_from_csv("not,the,header\n1,2,3\n"),
               std::invalid_argument);
  EXPECT_THROW((void)trials_from_csv(
                   "scenario,trial,seed,completed,rounds,rounds_executed,"
                   "sends,collisions\na,0,1,1,2\n"),
               std::invalid_argument);
}

TEST(CampaignExport, ParsersRejectTruncatedAndNonNumericRows) {
  // A JSONL line cut off mid-object must throw, not yield a garbage row.
  const std::string good =
      "{\"scenario\":\"test/x\",\"trial\":0,\"seed\":5,\"completed\":true,"
      "\"rounds\":10,\"rounds_executed\":10,\"sends\":3,\"collisions\":0,"
      "\"tokens\":1}";
  EXPECT_EQ(trials_from_jsonl(good + "\n").size(), 1u);
  EXPECT_THROW((void)trials_from_jsonl(good.substr(0, good.size() / 2) + "\n"),
               std::invalid_argument);
  // Non-numeric fields must throw in both formats.
  EXPECT_THROW(
      (void)trials_from_jsonl(
          "{\"scenario\":\"test/x\",\"trial\":zero,\"seed\":5,"
          "\"completed\":true,\"rounds\":10,\"rounds_executed\":10,"
          "\"sends\":3,\"collisions\":0,\"tokens\":1}\n"),
      std::invalid_argument);
  EXPECT_THROW((void)trials_from_csv(
                   "scenario,trial,seed,completed,rounds,rounds_executed,"
                   "sends,collisions,tokens\ntest/x,0,5,1,ten,10,3,0,1\n"),
               std::invalid_argument);
  // A row with more cells than the header announced is malformed too.
  EXPECT_THROW((void)trials_from_csv(
                   "scenario,trial,seed,completed,rounds,rounds_executed,"
                   "sends,collisions,tokens\ntest/x,0,5,1,10,10,3,0,1,42\n"),
               std::invalid_argument);
}

TEST(CampaignEngine, WallTimeMeasuredOnlyOnRequest) {
  const std::vector<Scenario> scenarios = {cheap_scenario("test/timed")};
  CampaignConfig off;
  const CampaignResult untimed = run_campaign(scenarios, off);
  for (const TrialRow& row : untimed.trials) EXPECT_EQ(row.wall_us, -1);
  EXPECT_EQ(untimed.summaries.front().mean_wall_ms, -1.0);

  CampaignConfig on;
  on.measure_wall_time = true;
  const CampaignResult timed = run_campaign(scenarios, on);
  for (const TrialRow& row : timed.trials) EXPECT_GE(row.wall_us, 0);
  EXPECT_GE(timed.summaries.front().mean_wall_ms, 0.0);

  // Timing sits OUTSIDE the determinism contract: the default exports of a
  // timed run are byte-identical to an untimed run's.
  EXPECT_EQ(trials_to_jsonl(timed.trials), trials_to_jsonl(untimed.trials));
  EXPECT_EQ(trials_to_csv(timed.trials), trials_to_csv(untimed.trials));
}

TEST(CampaignExport, TelemetryRowsRoundTripThroughJsonl) {
  CampaignConfig config;
  config.collect_telemetry = true;
  const CampaignResult result = run_campaign(cheap_campaign(), config);
  ASSERT_EQ(result.telemetry.size(), result.trials.size());
  // Every row carries wall time and mirrors its trial's aggregates.
  for (std::size_t i = 0; i < result.telemetry.size(); ++i) {
    const TelemetryRow& row = result.telemetry[i];
    EXPECT_EQ(row.scenario, result.trials[i].scenario);
    EXPECT_EQ(row.trial, result.trials[i].trial);
    EXPECT_GE(row.wall_us, 0);
    EXPECT_EQ(row.senders,
              static_cast<std::uint64_t>(result.trials[i].sends));
    EXPECT_EQ(row.collisions,
              static_cast<std::uint64_t>(result.trials[i].collisions));
  }
  const std::string jsonl = telemetry_to_jsonl(result.telemetry);
  EXPECT_EQ(telemetry_from_jsonl(jsonl), result.telemetry);
}

TEST(CampaignExport, TelemetryParserAcceptsLegacyTimingOnlyRows) {
  // Rows written by a plain wall-time export (no counter columns) still
  // parse; the missing counters default to zero.
  const std::vector<TelemetryRow> rows = telemetry_from_jsonl(
      "{\"scenario\":\"old/timed\",\"trial\":3,\"wall_us\":4200}\n"
      "{\"scenario\":\"old/untimed\",\"trial\":0}\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].scenario, "old/timed");
  EXPECT_EQ(rows[0].trial, 3u);
  EXPECT_EQ(rows[0].wall_us, 4200);
  EXPECT_EQ(rows[0].deliveries, 0u);
  EXPECT_EQ(rows[0].poll_ns, 0u);
  EXPECT_EQ(rows[1].wall_us, -1);
  EXPECT_THROW((void)telemetry_from_jsonl("{\"trial\":0}\n"),
               std::invalid_argument);
}

TEST(CampaignEngine, TelemetryCollectionKeepsDefaultExportsByteIdentical) {
  // Telemetry, like wall time, lives OUTSIDE the determinism contract: the
  // canonical trial/summary exports of an instrumented run match an
  // uninstrumented run byte for byte.
  const std::vector<Scenario> scenarios = cheap_campaign();
  CampaignConfig off;
  off.master_seed = 77;
  const CampaignResult plain = run_campaign(scenarios, off);
  EXPECT_TRUE(plain.telemetry.empty());

  CampaignConfig on;
  on.master_seed = 77;
  on.collect_telemetry = true;
  on.threads = 4;
  const CampaignResult instrumented = run_campaign(scenarios, on);
  EXPECT_EQ(trials_to_jsonl(instrumented.trials),
            trials_to_jsonl(plain.trials));
  EXPECT_EQ(trials_to_csv(instrumented.trials), trials_to_csv(plain.trials));
  EXPECT_EQ(summaries_to_jsonl(instrumented.summaries),
            summaries_to_jsonl(plain.summaries));
}

TEST(CampaignEngine, HeartbeatCampaignRunsClean) {
  // A sub-second campaign with a long heartbeat period: the reporter thread
  // must start, idle, and shut down without emitting or deadlocking.
  CampaignConfig config;
  config.heartbeat_secs = 3600;
  config.threads = 2;
  const CampaignResult result = run_campaign(cheap_campaign(), config);
  EXPECT_EQ(result.trials.size(), 10u);
}

TEST(CampaignExport, SummariesSerializeFailuresAsMinusOne) {
  ScenarioSummary all_failed;
  all_failed.scenario = "test/all-failed";
  all_failed.trials = 3;
  all_failed.failures = 3;
  const std::string jsonl = summaries_to_jsonl({all_failed});
  EXPECT_NE(jsonl.find("\"mean_rounds\":-1"), std::string::npos);
  const std::string csv = summaries_to_csv({all_failed});
  EXPECT_NE(csv.find("test/all-failed,3,3,-1"), std::string::npos);
}

}  // namespace
}  // namespace dualrad::campaign
