#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "selectors/gf.hpp"
#include "selectors/kautz_singleton.hpp"
#include "selectors/randomized_ssf.hpp"
#include "selectors/round_robin_family.hpp"
#include "selectors/ssf.hpp"

namespace dualrad {
namespace {

// ------------------------------------------------------------------- GF(q)

TEST(Gf, Primality) {
  EXPECT_FALSE(gf::is_prime(0));
  EXPECT_FALSE(gf::is_prime(1));
  EXPECT_TRUE(gf::is_prime(2));
  EXPECT_TRUE(gf::is_prime(3));
  EXPECT_FALSE(gf::is_prime(4));
  EXPECT_TRUE(gf::is_prime(97));
  EXPECT_FALSE(gf::is_prime(91));  // 7 * 13
  EXPECT_TRUE(gf::is_prime(7919));
}

TEST(Gf, NextPrime) {
  EXPECT_EQ(gf::next_prime(2), 2u);
  EXPECT_EQ(gf::next_prime(8), 11u);
  EXPECT_EQ(gf::next_prime(97), 97u);
  EXPECT_EQ(gf::next_prime(98), 101u);
}

TEST(Gf, FieldArithmetic) {
  const gf::PrimeField f(7);
  EXPECT_EQ(f.add(5, 4), 2u);
  EXPECT_EQ(f.mul(5, 4), 6u);
  EXPECT_EQ(f.mul(0, 6), 0u);
}

TEST(Gf, PolynomialEvaluationHorner) {
  const gf::PrimeField f(11);
  // p(x) = 3 + 2x + x^2; p(4) = 3 + 8 + 16 = 27 = 5 (mod 11)
  EXPECT_EQ(f.eval({3, 2, 1}, 4), 5u);
  EXPECT_EQ(f.eval({3, 2, 1}, 0), 3u);
}

TEST(Gf, BaseQDigits) {
  const auto d = gf::base_q_digits(23, 5, 3);  // 23 = 3 + 4*5
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], 3u);
  EXPECT_EQ(d[1], 4u);
  EXPECT_EQ(d[2], 0u);
  EXPECT_THROW(gf::base_q_digits(125, 5, 3), std::invalid_argument);
}

TEST(Gf, FieldRejectsComposite) {
  EXPECT_THROW(gf::PrimeField(10), std::invalid_argument);
}

// --------------------------------------------------------------- SsfFamily

TEST(SsfFamily, MembershipAndSets) {
  const SsfFamily f(5, {{0, 2}, {1, 3, 4}, {2}});
  EXPECT_EQ(f.size(), 3u);
  EXPECT_TRUE(f.contains(0, 2));
  EXPECT_FALSE(f.contains(0, 1));
  EXPECT_EQ(f.max_set_size(), 3u);
  EXPECT_EQ(f.sets_containing(2).size(), 2u);
}

TEST(SsfFamily, RejectsBadElements) {
  EXPECT_THROW(SsfFamily(3, {{0, 5}}), std::invalid_argument);
  EXPECT_THROW(SsfFamily(3, {{1, 1}}), std::invalid_argument);
}

TEST(SsfVerify, RoundRobinIsNNSsf) {
  for (NodeId n : {2, 5, 9}) {
    const SsfFamily f = round_robin_family(n);
    EXPECT_TRUE(is_strongly_selective(f, n)) << n;
  }
}

TEST(SsfVerify, SingleSetIsOnlyN1Ssf) {
  const SsfFamily f(4, {{0, 1, 2, 3}});
  EXPECT_TRUE(is_strongly_selective(f, 1));
  EXPECT_FALSE(is_strongly_selective(f, 2));
}

TEST(SsfVerify, DetectsMissingElement) {
  // Element 3 is in no set: even Z = {3} fails.
  const SsfFamily f(4, {{0}, {1}, {2}});
  EXPECT_FALSE(is_strongly_selective(f, 1));
}

TEST(SsfVerify, DetectsCoverableElement) {
  // z = 0 appears only with 1 or with 2: Z = {0,1,2} never isolates 0.
  const SsfFamily f(3, {{0, 1}, {0, 2}, {1}, {2}});
  EXPECT_TRUE(is_strongly_selective(f, 2));
  EXPECT_FALSE(is_strongly_selective(f, 3));
}

TEST(SsfVerify, UnselectedInReportsExactFailures) {
  const SsfFamily f(3, {{0, 1}, {0, 2}, {1}, {2}});
  const auto failures = unselected_in(f, {0, 1, 2});
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures.front(), 0);
  EXPECT_TRUE(unselected_in(f, {0, 1}).empty());
}

TEST(SsfVerify, SampleViolationsSeesPlantedFailure) {
  const SsfFamily bad(3, {{0, 1}, {0, 2}, {1}, {2}});
  EXPECT_GT(sample_violations(bad, 3, 200, 7), 0u);
  const SsfFamily good = round_robin_family(3);
  EXPECT_EQ(sample_violations(good, 3, 200, 7), 0u);
}

// ---------------------------------------------------------- KautzSingleton

TEST(KautzSingleton, PlanSatisfiesConstraints) {
  const auto plan = kautz_singleton_plan(100, 4);
  ASSERT_FALSE(plan.round_robin_fallback);
  EXPECT_TRUE(gf::is_prime(plan.q));
  // q^m >= n and q > (k-1)(m-1)
  double power = 1;
  for (std::uint32_t i = 0; i < plan.m; ++i) power *= plan.q;
  EXPECT_GE(power, 100);
  EXPECT_GT(plan.q, 3u * (plan.m - 1));
}

class KautzSingletonExact
    : public ::testing::TestWithParam<std::tuple<NodeId, NodeId>> {};

TEST_P(KautzSingletonExact, IsStronglySelective) {
  const auto [n, k] = GetParam();
  const SsfFamily f = kautz_singleton_ssf(n, k);
  EXPECT_TRUE(is_strongly_selective(f, k)) << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    SmallExhaustive, KautzSingletonExact,
    ::testing::Values(std::tuple{8, 2}, std::tuple{8, 3}, std::tuple{12, 2},
                      std::tuple{16, 2}, std::tuple{16, 3}, std::tuple{16, 4},
                      std::tuple{20, 3}, std::tuple{24, 2}, std::tuple{32, 4},
                      std::tuple{10, 1}, std::tuple{6, 6}, std::tuple{9, 8}));

TEST(KautzSingleton, LargeSampledVerification) {
  for (const auto& [n, k] :
       {std::tuple<NodeId, NodeId>{256, 8}, {512, 4}, {1024, 16}}) {
    const SsfFamily f = kautz_singleton_ssf(n, k);
    EXPECT_EQ(sample_violations(f, k, 300, 17), 0u) << n << " " << k;
  }
}

TEST(KautzSingleton, SizeIsMinNOrPolyKLog) {
  // For large k relative to n, fall back to round robin of size n.
  const SsfFamily big_k = kautz_singleton_ssf(64, 64);
  EXPECT_EQ(big_k.size(), 64u);
  // For small k, size q^2 should beat n when n is large enough.
  const SsfFamily small_k = kautz_singleton_ssf(4096, 2);
  EXPECT_LT(small_k.size(), 4096u);
}

TEST(KautzSingleton, K1IsSingleSet) {
  const SsfFamily f = kautz_singleton_ssf(50, 1);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_TRUE(is_strongly_selective(f, 1));
}

// ------------------------------------------------------------- Randomized

TEST(RandomizedSsf, SmallInstancesVerifyExactly) {
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    const SsfFamily f = randomized_ssf(24, 2, {.factor = 6.0, .seed = seed});
    EXPECT_TRUE(is_strongly_selective(f, 2)) << "seed " << seed;
  }
}

TEST(RandomizedSsf, MatchesExistentialSizeShape) {
  const NodeId n = 1024;
  const NodeId k = 8;
  const SsfFamily f = randomized_ssf(n, k, {.factor = 4.0});
  // O(k^2 log n): within small constants of k^2 ln n.
  EXPECT_LE(f.size(), static_cast<std::size_t>(5.0 * k * k * std::log(n)));
  EXPECT_EQ(sample_violations(f, k, 200, 23), 0u);
}

TEST(RandomizedSsf, FallsBackToRoundRobinWhenCheaper) {
  const SsfFamily f = randomized_ssf(32, 30, {.factor = 4.0});
  EXPECT_EQ(f.size(), 32u);
  EXPECT_TRUE(is_strongly_selective(f, 30));
}

TEST(RandomizedSsf, ProviderIsDeterministicGivenSeed) {
  const auto provider = make_randomized_ssf_provider({.factor = 4.0, .seed = 9});
  const SsfFamily a = provider(64, 4);
  const SsfFamily b = provider(64, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.set(i), b.set(i));
  }
}

}  // namespace
}  // namespace dualrad
