// Remaining edge coverage: config validation, reception helpers, message
// semantics, factory misuse, and direct CR semantics in the interference
// model.

#include <gtest/gtest.h>

#include "adversary/basic_adversaries.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/strong_select.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"
#include "interference/interference.hpp"
#include "test_util.hpp"

namespace dualrad {
namespace {

using testing::scripted_factory;

TEST(ModelEdges, ReceptionHelpers) {
  const Reception silence = Reception::silence();
  EXPECT_TRUE(silence.is_silence());
  EXPECT_FALSE(silence.has_token());
  const Reception top = Reception::collision();
  EXPECT_TRUE(top.is_collision());
  EXPECT_FALSE(top.has_token());
  const Message m{true, 3, 7, 9};
  const Reception msg = Reception::of(m);
  EXPECT_TRUE(msg.is_message());
  EXPECT_TRUE(msg.has_token());
  EXPECT_EQ(msg.message->origin, 3);
  const Message plain{false, 3, 7, 9};
  EXPECT_FALSE(Reception::of(plain).has_token());
}

TEST(ModelEdges, MessageValueEquality) {
  const Message a{true, 1, 2, 3};
  Message b = a;
  EXPECT_EQ(a, b);
  b.payload = 4;
  EXPECT_NE(a, b);
}

TEST(ModelEdges, SimulatorRejectsBadConfig) {
  const DualGraph net = duals::bridge_network(8);
  BenignAdversary adversary;
  SimConfig config;
  config.max_rounds = 0;
  EXPECT_THROW(Simulator(net, make_harmonic_factory(8), adversary, config),
               std::invalid_argument);
  SimConfig ok;
  EXPECT_THROW(Simulator(net, ProcessFactory{}, adversary, ok),
               std::invalid_argument);
}

TEST(ModelEdges, FactoryRejectsWrongN) {
  const auto factory = make_strong_select_factory(16);
  EXPECT_THROW(factory(0, 17, 0), std::invalid_argument);
}

TEST(ModelEdges, DualGraphRequiresAtLeastTwoNodes) {
  Graph g(1), gp(1);
  EXPECT_THROW(DualGraph(std::move(g), std::move(gp), 0),
               std::invalid_argument);
}

TEST(ModelEdges, CollisionRuleNames) {
  EXPECT_EQ(to_string(CollisionRule::CR1), "CR1");
  EXPECT_EQ(to_string(CollisionRule::CR4), "CR4");
  EXPECT_EQ(to_string(StartRule::Synchronous), "sync-start");
  EXPECT_EQ(to_string(StartRule::Asynchronous), "async-start");
}

TEST(ModelEdges, TokenProcessRejectsDoubleActivation) {
  const auto factory = make_harmonic_factory(8);
  auto p = factory(1, 8, 0);
  p->on_activate(0, std::nullopt);
  EXPECT_THROW(p->on_activate(1, std::nullopt), std::logic_error);
}

TEST(ModelEdges, LayerOffsetsRejectEmptyLayers) {
  EXPECT_THROW(gen::layer_offsets({1, 0, 2}), std::invalid_argument);
}

TEST(InterferenceEdges, Cr2SenderHearsOwnDespiteInterference) {
  // Sender u with an interfering G_I neighbor still hears its own message
  // under CR2 (cannot sense the medium while sending).
  Graph gt = gen::path(3);
  Graph gi = gen::path(3);
  gi.add_undirected_edge(0, 2);
  const InterferenceNetwork net(std::move(gt), std::move(gi), 0);
  const auto factory = scripted_factory({{0, {1}}, {2, {1}}});
  InterferenceConfig config;
  config.rule = CollisionRule::CR2;
  config.max_rounds = 1;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  const auto result = run_interference_broadcast(net, factory, config);
  const auto& recs = result.trace.rounds[0].receptions;
  ASSERT_TRUE(recs[0].is_message());
  EXPECT_EQ(recs[0].message->origin, 0);
  ASSERT_TRUE(recs[2].is_message());
  EXPECT_EQ(recs[2].message->origin, 2);
  // Node 1 is reached by both (each over G_T): collision notification.
  EXPECT_TRUE(recs[1].is_collision());
}

TEST(InterferenceEdges, Cr3CollisionMasksAsSilence) {
  Graph gt = gen::path(3);
  Graph gi = gen::path(3);
  gi.add_undirected_edge(0, 2);
  const InterferenceNetwork net(std::move(gt), std::move(gi), 0);
  const auto factory = scripted_factory({{0, {1}}, {2, {1}}});
  InterferenceConfig config;
  config.rule = CollisionRule::CR3;
  config.max_rounds = 1;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  const auto result = run_interference_broadcast(net, factory, config);
  EXPECT_TRUE(result.trace.rounds[0].receptions[1].is_silence());
}

TEST(InterferenceEdges, AsyncStartWakesOnGtDeliveryOnly) {
  // Node 2's only incoming message travels a G_I-only edge: it must not
  // wake (the message cannot be received).
  Graph gt = gen::path(3);
  Graph gi = gen::path(3);
  gi.add_undirected_edge(0, 2);
  const InterferenceNetwork net(std::move(gt), std::move(gi), 0);
  const auto factory = scripted_factory({{0, {1}}, {2, {2}}});
  InterferenceConfig config;
  config.rule = CollisionRule::CR1;
  config.start = StartRule::Asynchronous;
  config.max_rounds = 3;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  const auto result = run_interference_broadcast(net, factory, config);
  // Round 2: node 2 is still asleep, so its scripted send cannot happen.
  EXPECT_TRUE(result.trace.rounds[1].senders.empty());
}

TEST(ModelEdges, StrongSelectSourceBroadcastsEventually) {
  // The source participates even if nobody else ever sends.
  const NodeId n = 32;
  const auto factory = make_strong_select_factory(n);
  auto p = factory(7, n, 0);
  p->on_activate(0, Message{true, kInvalidProcess, 0, 0});
  bool sent = false;
  const auto schedule = make_strong_select_schedule(n);
  for (Round r = 1; r <= schedule->done_round_bound(0); ++r) {
    if (p->next_action(r).send) {
      sent = true;
      break;
    }
    p->on_receive(r, Reception::silence());
  }
  EXPECT_TRUE(sent);
}

TEST(ModelEdges, HarmonicRejectsBadOptions) {
  EXPECT_THROW((void)harmonic_T(32, {.T = 0, .eps = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(make_harmonic_factory(1), std::invalid_argument);
}

}  // namespace
}  // namespace dualrad
