#include <gtest/gtest.h>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/cms_oblivious.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/scheduled.hpp"
#include "core/simulator.hpp"
#include "graph/broadcastability.hpp"
#include "graph/dual_builders.hpp"
#include "repeated/repeated.hpp"

namespace dualrad {
namespace {

// ------------------------------------------------------------ scheduled

TEST(Scheduled, OracleScheduleCompletesInOnePeriod) {
  const DualGraph net = duals::bridge_network(12);
  const auto schedule = broadcastability::greedy_oracle_schedule(net);
  std::vector<ProcessId> slots(schedule.senders.begin(),
                               schedule.senders.end());
  GreedyBlockerAdversary adversary;  // powerless against single senders
  SimConfig config;
  config.max_rounds = 10'000;
  config.start = StartRule::Synchronous;
  config.rule = CollisionRule::CR1;
  const SimResult result = run_broadcast(
      net, make_scheduled_factory(12, slots), adversary, config);
  ASSERT_TRUE(result.completed);
  EXPECT_LE(result.completion_round, schedule.rounds());
  EXPECT_EQ(result.total_collision_events, 0u);
}

TEST(Scheduled, RejectsBadSlots) {
  EXPECT_THROW(make_scheduled_factory(4, {}), std::invalid_argument);
  EXPECT_THROW(make_scheduled_factory(4, {0, 7}), std::invalid_argument);
}

TEST(Scheduled, UninformedSlotOwnerStaysSilent) {
  const NodeId n = 4;
  const auto factory = make_scheduled_factory(n, {2, 0});
  auto p = factory(2, n, 0);
  p->on_activate(0, std::nullopt);  // no token
  EXPECT_FALSE(p->next_action(1).send);
}

// --------------------------------------------------------------- cms [11]

TEST(CmsOblivious, CompletesOnDualNetworks) {
  const DualGraph nets[] = {
      duals::bridge_network(16),
      duals::layered_complete_gprime(4, 3),
      duals::gray_zone({.n = 32, .seed = 8}),
  };
  for (const DualGraph& net : nets) {
    const auto delta = static_cast<NodeId>(net.g_prime().max_in_degree());
    GreedyBlockerAdversary adversary;
    SimConfig config;
    config.max_rounds = 5'000'000;
    const SimResult result = run_broadcast(
        net, make_cms_oblivious_factory(net.node_count(), {.delta = delta}),
        adversary, config);
    EXPECT_TRUE(result.completed);
  }
}

TEST(CmsOblivious, RequiresDelta) {
  EXPECT_THROW(make_cms_oblivious_factory(8, {}), std::invalid_argument);
}

TEST(CmsOblivious, UnderestimatedDeltaCanBreakIsolation) {
  // With delta = 1 on a clique-dense G', the family is too weak to isolate
  // among many contenders; the greedy blocker then starves the receiver.
  // (Not guaranteed to fail in general — this documents the known hazard on
  // the bridge topology where the clique floods itself.)
  const DualGraph net = duals::bridge_network(16);
  GreedyBlockerAdversary adversary;
  SimConfig config;
  config.max_rounds = 50'000;
  const SimResult weak = run_broadcast(
      net, make_cms_oblivious_factory(16, {.delta = 1}), adversary, config);
  const SimResult strong = run_broadcast(
      net,
      make_cms_oblivious_factory(
          16, {.delta = static_cast<NodeId>(net.g_prime().max_in_degree())}),
      adversary, config);
  EXPECT_TRUE(strong.completed);
  if (weak.completed) {
    EXPECT_GE(weak.completion_round, strong.completion_round);
  }
}

// ------------------------------------------------------- link estimation

TEST(LinkEstimation, RecoversReliableGraphUnderBernoulli) {
  const DualGraph net = duals::backbone_plus_unreliable(
      {.n = 24, .p_reliable = 0.1, .p_unreliable = 0.4, .seed = 5});
  std::vector<Trace> traces;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    // Fresh link noise per run: a fixed-seed adversary replays the same
    // delivery pattern every execution (reproducibility by design), which
    // would correlate the samples and defeat the estimator.
    BernoulliAdversary adversary(0.25, 77 + seed);
    SimConfig config;
    config.max_rounds = 1'000'000;
    config.trace = TraceLevel::Full;
    config.seed = seed;
    const SimResult result = run_broadcast(
        net, make_harmonic_factory(net.node_count()), adversary, config);
    ASSERT_TRUE(result.completed);
    traces.push_back(result.trace);
  }
  // Soundness: an unreliable link (fires w.p. 0.25) surviving 8 observed
  // sends unscathed has probability 0.25^8 ~ 1.5e-5; every estimated link
  // should be truly reliable.
  const auto learned = repeated::estimate_reliable_links(net, traces, 8);
  EXPECT_TRUE(learned.sound);
  // Every estimated link is a real G' link at minimum.
  for (const auto& [u, v] : learned.estimated_reliable.edges()) {
    EXPECT_TRUE(net.g_prime().has_edge(u, v));
  }
}

TEST(LinkEstimation, FullInterferenceMakesEverythingLookReliable) {
  // The cautionary tale: an adversary that delivers everything during
  // training poisons the estimate with unreliable links.
  const DualGraph net = duals::bridge_network(10);
  FullInterferenceAdversary adversary;
  SimConfig config;
  // Full interference completes in round 1; keep the execution running so
  // the estimator actually observes repeated (always-successful) deliveries
  // over the unreliable links.
  config.max_rounds = 50;
  config.stop_on_completion = false;
  config.trace = TraceLevel::Full;
  const SimResult result = run_broadcast(
      net, make_harmonic_factory(net.node_count()), adversary, config);
  ASSERT_TRUE(result.completed);
  const auto learned =
      repeated::estimate_reliable_links(net, {result.trace}, 2);
  EXPECT_FALSE(learned.sound);
}

// ------------------------------------------------------ repeated driver

TEST(RepeatedBroadcast, LearningBeatsNaiveUnderBenignConditions) {
  const DualGraph net = duals::gray_zone(
      {.n = 32, .r_reliable = 0.3, .r_gray = 0.6, .seed = 4});
  BenignAdversary adversary;
  repeated::RepeatedOptions options;
  options.broadcasts = 8;
  options.training = 2;
  options.config.max_rounds = 2'000'000;
  const auto report = repeated::run_repeated_broadcast(
      net, make_harmonic_factory(net.node_count()), adversary, options);
  ASSERT_TRUE(report.all_completed);
  ASSERT_TRUE(report.topology.usable);
  EXPECT_TRUE(report.topology.sound);  // benign: only reliable links deliver
  EXPECT_LT(report.learned_total(), report.naive_total());
  // Post-training broadcasts finish within one TDMA period.
  for (std::size_t b = 2; b < report.learned_rounds.size(); ++b) {
    EXPECT_LE(report.learned_rounds[b], report.tdma_period);
  }
}

TEST(RepeatedBroadcast, ReportsPerBroadcastRounds) {
  const DualGraph net = duals::bridge_network(12);
  BernoulliAdversary adversary(0.3, 9);
  repeated::RepeatedOptions options;
  options.broadcasts = 5;
  options.training = 2;
  options.config.max_rounds = 1'000'000;
  const auto report = repeated::run_repeated_broadcast(
      net, make_harmonic_factory(12), adversary, options);
  EXPECT_EQ(report.naive_rounds.size(), 5u);
  EXPECT_EQ(report.learned_rounds.size(), 5u);
}

}  // namespace
}  // namespace dualrad
