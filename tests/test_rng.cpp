#include <gtest/gtest.h>

#include <set>

#include "core/rng.hpp"

namespace dualrad {
namespace {

TEST(CounterRng, IsPure) {
  const CounterRng rng(42);
  for (Round r : {Round{1}, Round{17}, Round{100000}}) {
    EXPECT_EQ(rng.bits(r), rng.bits(r));
    EXPECT_EQ(rng.uniform(r, 3), rng.uniform(r, 3));
  }
}

TEST(CounterRng, DistinctRoundsDiffer) {
  const CounterRng rng(42);
  std::set<std::uint64_t> values;
  for (Round r = 1; r <= 100; ++r) values.insert(rng.bits(r));
  EXPECT_EQ(values.size(), 100u);
}

TEST(CounterRng, DistinctKeysDiffer) {
  EXPECT_NE(CounterRng(1).bits(5), CounterRng(2).bits(5));
}

TEST(CounterRng, UniformIsInUnitInterval) {
  const CounterRng rng(7);
  for (Round r = 1; r <= 1000; ++r) {
    const double u = rng.uniform(r);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, BernoulliFrequencyRoughlyMatches) {
  const CounterRng rng(11);
  int hits = 0;
  const int trials = 10000;
  for (Round r = 1; r <= trials; ++r) {
    if (rng.bernoulli(0.25, r)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(CounterRng, BelowStaysInRange) {
  const CounterRng rng(13);
  for (Round r = 1; r <= 1000; ++r) {
    EXPECT_LT(rng.below(7, r), 7u);
  }
  EXPECT_THROW((void)rng.below(0, 1), std::invalid_argument);
}

TEST(StreamRng, ReproducibleStreams) {
  StreamRng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(StreamRng, UniformCoverage) {
  StreamRng rng(3);
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(MixSeed, SeparatesStreams) {
  EXPECT_NE(mix_seed(1, 0), mix_seed(1, 1));
  EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
  EXPECT_EQ(mix_seed(9, 9), mix_seed(9, 9));
}

}  // namespace
}  // namespace dualrad
