#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/rng.hpp"
#include "stats/fit.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"

namespace dualrad {
namespace {

TEST(Stats, SummaryBasics) {
  const auto s = stats::summarize({3, 1, 2, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, EvenCountMedianAveragesMiddlePair) {
  // Regression: the median of an even-sized sample is the average of the
  // two middle elements, not the upper one.
  const auto s = stats::summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  const auto t = stats::summarize({10, 20});
  EXPECT_DOUBLE_EQ(t.median, 15.0);
}

TEST(Stats, P90IsNearestRank) {
  // Regression: for n = 10 the nearest-rank 90th percentile is the 9th
  // sorted value (rank ceil(0.9 * 10) = 9), not the maximum.
  std::vector<double> ten;
  for (int i = 1; i <= 10; ++i) ten.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(stats::summarize(ten).p90, 9.0);
  // n = 5: rank ceil(4.5) = 5 -> the maximum.
  EXPECT_DOUBLE_EQ(stats::summarize({1, 2, 3, 4, 5}).p90, 5.0);
  // n = 1: the only sample.
  EXPECT_DOUBLE_EQ(stats::summarize({7}).p90, 7.0);
  // n = 20: rank 18.
  std::vector<double> twenty;
  for (int i = 1; i <= 20; ++i) twenty.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(stats::summarize(twenty).p90, 18.0);
}

TEST(Stats, SummaryEmptyAndSingle) {
  EXPECT_EQ(stats::summarize({}).count, 0u);
  const auto s = stats::summarize({7});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, SummaryRounds) {
  const auto s = stats::summarize_rounds({Round{10}, Round{20}});
  EXPECT_DOUBLE_EQ(s.mean, 15.0);
}

TEST(Stats, WilsonHalfWidthShrinksWithTrials) {
  const double w100 = stats::wilson_half_width(50, 100);
  const double w10000 = stats::wilson_half_width(5000, 10000);
  EXPECT_GT(w100, w10000);
  EXPECT_LT(w100, 0.15);
}

TEST(Fit, RecoversPlantedShape) {
  std::vector<double> n, y;
  for (double x : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
    n.push_back(x);
    y.push_back(3.5 * x * std::sqrt(x * std::log2(x)));  // n^1.5 sqrt(log n)
  }
  const auto fits = stats::fit_all_shapes(n, y);
  EXPECT_EQ(fits.front().shape, "n^1.5 sqrt(log n)");
  EXPECT_NEAR(fits.front().scale, 3.5, 1e-9);
  EXPECT_NEAR(fits.front().r2, 1.0, 1e-12);
  EXPECT_NEAR(fits.front().ratio_spread, 1.0, 1e-12);
}

TEST(Fit, DistinguishesNLogNFromN) {
  std::vector<double> n, y;
  for (double x : {64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0}) {
    n.push_back(x);
    y.push_back(2.0 * x * std::log2(x));
  }
  const auto fits = stats::fit_all_shapes(n, y);
  EXPECT_EQ(fits.front().shape, "n log n");
  const auto fit_n = stats::fit_shape("n", n, y);
  EXPECT_LT(fit_n.r2, fits.front().r2);
  EXPECT_GT(fit_n.ratio_spread, 1.3);
}

TEST(Fit, NoisyDataStillRanksCorrectly) {
  StreamRng rng(5);
  std::vector<double> n, y;
  for (double x : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
    n.push_back(x);
    y.push_back(x * x * (0.9 + 0.2 * rng.uniform()));
  }
  const auto fits = stats::fit_all_shapes(n, y);
  EXPECT_EQ(fits.front().shape, "n^2");
}

TEST(Fit, RejectsUnknownShape) {
  EXPECT_THROW((void)stats::shape_value("n^3", 10.0), std::invalid_argument);
  EXPECT_THROW((void)stats::fit_shape("n", {}, {}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  stats::Table table({"algo", "rounds"});
  table.add_row({"strong select", "123"});
  table.add_row({"rr", "7"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| algo          | rounds |"), std::string::npos);
  EXPECT_NE(out.find("| strong select | 123    |"), std::string::npos);
  EXPECT_NE(out.find("| rr            | 7      |"), std::string::npos);
}

TEST(Table, RejectsBadArity) {
  stats::Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(stats::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(stats::Table::num(12345LL), "12345");
}

}  // namespace
}  // namespace dualrad
