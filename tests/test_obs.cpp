#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <string>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "algorithms/decay.hpp"
#include "campaign/engine.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "obs/perfetto_writer.hpp"
#include "obs/rss.hpp"
#include "obs/telemetry.hpp"

/// Tests of the observability layer (src/obs): the RoundTelemetry counter
/// registry against SimResult aggregates, the per-shard merge totals, the
/// Perfetto JSON exporter (through a minimal JSON scanner), and the RSS
/// sampler. Bit-identity of results with telemetry attached is pinned in
/// tests/test_engine_equivalence.cpp.

namespace dualrad {
namespace {

SimResult run_decay(const DualGraph& net, SimConfig config,
                    obs::RoundTelemetry* telemetry, double p = 0.5) {
  config.telemetry = telemetry;
  BernoulliAdversary adversary(p, mix_seed(config.seed, 0xAD));
  return run_broadcast(net, make_decay_factory(net.node_count()), adversary,
                       config);
}

TEST(Telemetry, WindowRingAndTotals) {
  obs::RoundTelemetry t(4);
  t.begin_execution(10, 2);
  for (Round r = 1; r <= 10; ++r) {
    t.begin_round(r);
    t.counters().deliveries = static_cast<std::uint64_t>(r);
    t.add_phase_ns(obs::Phase::Poll, 100);
    t.end_round();
  }
  EXPECT_EQ(t.rounds_recorded(), 10);
  EXPECT_EQ(t.totals().deliveries, 55u);
  EXPECT_EQ(t.total_phase_ns(obs::Phase::Poll), 1000u);
  EXPECT_EQ(t.total_ns(), 1000u);
  EXPECT_EQ(t.max_round_deliveries(), 10u);
  EXPECT_EQ(t.max_round_deliveries_round(), 10);
  // Only the last `window` rounds remain addressable.
  EXPECT_FALSE(t.in_window(6));
  EXPECT_TRUE(t.in_window(7));
  EXPECT_EQ(t.sample_at(7).counters.deliveries, 7u);
  const std::vector<obs::RoundSample> samples = t.window_samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().round, 7);
  EXPECT_EQ(samples.back().round, 10);
  // begin_execution resets everything.
  t.begin_execution(5, 1);
  EXPECT_EQ(t.rounds_recorded(), 0);
  EXPECT_EQ(t.totals().deliveries, 0u);
}

TEST(Telemetry, CountersMatchSimResultAggregates) {
  // On randomized grid workloads the counter registry must reproduce the
  // engine's own aggregates exactly: senders == total_sends, collisions ==
  // total_collision_events, rounds == rounds_executed, and the coverage
  // delta total == covered nodes minus the round-0 source.
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const DualGraph net = duals::gray_zone({.n = 48, .seed = 7});
    SimConfig config;
    config.rule = CollisionRule::CR2;
    config.start = StartRule::Asynchronous;
    config.max_rounds = 30'000;
    config.seed = seed;
    obs::RoundTelemetry telemetry(16);
    const SimResult result = run_decay(net, config, &telemetry);
    ASSERT_TRUE(result.completed);

    EXPECT_EQ(telemetry.rounds_recorded(), result.rounds_executed);
    EXPECT_EQ(telemetry.totals().senders, result.total_sends);
    EXPECT_EQ(telemetry.totals().collisions, result.total_collision_events);
    std::uint64_t covered = 0;
    for (const Round r : result.first_token) covered += (r != kNever) ? 1 : 0;
    EXPECT_EQ(telemetry.totals().newly_covered, covered - 1);  // minus source
    // Deliveries bound the senders from below (each sender deposits at least
    // its self-arrival) and polled bounds senders.
    EXPECT_GE(telemetry.totals().deliveries, telemetry.totals().senders);
    EXPECT_GE(telemetry.totals().polled, telemetry.totals().senders);
    EXPECT_GT(telemetry.totals().replans, 0u);
  }
}

TEST(Telemetry, ShardTotalsMergeEqualsSerial) {
  // The per-shard sub-counters are folded during the deterministic serial
  // merge, so their sums — and every whole-execution counter — must be equal
  // for any thread count.
  const DualGraph net = duals::layered_sparse({.layers = 40,
                                               .width = 60,
                                               .fwd_degree = 3,
                                               .unreliable_degree = 2,
                                               .seed = 3});
  SimConfig config;
  config.rule = CollisionRule::CR3;
  config.start = StartRule::Asynchronous;
  config.max_rounds = 30'000;
  config.seed = 21;

  obs::RoundTelemetry serial(8);
  const SimResult base = run_decay(net, config, &serial);
  ASSERT_TRUE(base.completed);
  const auto shard_sums = [](const obs::RoundTelemetry& t) {
    obs::ShardTotals sum;
    for (const obs::ShardTotals& s : t.shard_totals()) {
      sum.touched += s.touched;
      sum.collided += s.collided;
      sum.replans += s.replans;
      sum.rounds += s.rounds;
    }
    return sum;
  };
  const obs::ShardTotals serial_sum = shard_sums(serial);
  EXPECT_EQ(serial.shards(), 1u);

  for (const unsigned threads : {2u, 4u}) {
    SimConfig parallel = config;
    parallel.threads = threads;
    obs::RoundTelemetry sharded(8);
    const SimResult result = run_decay(net, parallel, &sharded);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(sharded.shards(), threads);
    EXPECT_EQ(sharded.totals(), serial.totals()) << threads << " threads";
    const obs::ShardTotals sum = shard_sums(sharded);
    EXPECT_EQ(sum.touched, serial_sum.touched) << threads << " threads";
    EXPECT_EQ(sum.collided, serial_sum.collided) << threads << " threads";
    EXPECT_EQ(sum.replans, serial_sum.replans) << threads << " threads";
  }
}

/// Minimal JSON scanner for the Perfetto export: tokenizes the structure
/// (objects, arrays, strings, numbers, literals) and rejects anything
/// malformed. Good enough to prove the trace is well-formed JSON and to
/// extract the "ph" event kinds — without a JSON library dependency.
class MiniJson {
 public:
  explicit MiniJson(const std::string& text) : s_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return at_ == s_.size();
  }

  const std::vector<std::string>& strings() const { return strings_; }

 private:
  bool value() {
    if (at_ >= s_.size()) return false;
    const char c = s_[at_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++at_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      if (!string_value()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++at_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string_value() {
    if (at_ >= s_.size() || s_[at_] != '"') return false;
    const std::size_t begin = ++at_;
    while (at_ < s_.size() && s_[at_] != '"') {
      if (s_[at_] == '\\') return false;  // exporter never escapes
      ++at_;
    }
    if (at_ >= s_.size()) return false;
    strings_.push_back(s_.substr(begin, at_ - begin));
    ++at_;
    return true;
  }
  bool number() {
    const std::size_t begin = at_;
    if (at_ < s_.size() && (s_[at_] == '-' || s_[at_] == '+')) ++at_;
    while (at_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[at_])) ||
            s_[at_] == '.' || s_[at_] == 'e' || s_[at_] == 'E' ||
            s_[at_] == '-' || s_[at_] == '+')) {
      ++at_;
    }
    return at_ > begin;
  }
  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (s_.compare(at_, len, word) != 0) return false;
    at_ += len;
    return true;
  }
  bool peek(char c) {
    if (at_ < s_.size() && s_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }
  void skip_ws() {
    while (at_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[at_]))) {
      ++at_;
    }
  }

  const std::string& s_;
  std::size_t at_ = 0;
  std::vector<std::string> strings_;
};

TEST(PerfettoWriter, ExportIsWellFormedAndCoversPhases) {
  const DualGraph net = duals::gray_zone({.n = 48, .seed = 7});
  SimConfig config;
  config.rule = CollisionRule::CR2;
  config.start = StartRule::Asynchronous;
  config.max_rounds = 30'000;
  config.seed = 5;
  // Small window: the execution outruns it, so the export must also emit
  // the folded "earlier-rounds" slice.
  obs::RoundTelemetry telemetry(8);
  const SimResult result = run_decay(net, config, &telemetry);
  ASSERT_TRUE(result.completed);
  ASSERT_GT(result.rounds_executed, 8);

  const std::string json = to_perfetto_json(telemetry, "test-trace");
  MiniJson parser(json);
  ASSERT_TRUE(parser.parse()) << json.substr(0, 400);

  // The scanner records every string token in order; count event kinds and
  // phase-slice names from them.
  int slices = 0, counters = 0, metadata = 0;
  bool saw_earlier = false, saw_process_name = false;
  for (std::size_t i = 0; i < parser.strings().size(); ++i) {
    const std::string& s = parser.strings()[i];
    if (s == "ph" && i + 1 < parser.strings().size()) {
      const std::string& kind = parser.strings()[i + 1];
      slices += kind == "X";
      counters += kind == "C";
      metadata += kind == "M";
      EXPECT_TRUE(kind == "X" || kind == "C" || kind == "M") << kind;
    }
    saw_earlier = saw_earlier || s == "earlier-rounds";
    saw_process_name = saw_process_name || s == "test-trace";
  }
  EXPECT_EQ(metadata, 2);  // process_name + thread_name
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_earlier);
  // 8 ringed rounds x (>= poll/deliver slices) and 3 counter tracks each.
  EXPECT_GE(slices, 16);
  EXPECT_EQ(counters, 8 * 3);
  for (const char* phase : {"poll", "adversary", "propagate", "deliver"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(phase) + "\""),
              std::string::npos)
        << phase;
  }

  EXPECT_THROW((void)to_perfetto_json(telemetry, "bad\"name"),
               std::exception);
}

TEST(Rss, SamplerReportsAndResets) {
  const std::uint64_t current = obs::current_rss_bytes();
  ASSERT_GT(current, 0u);
  EXPECT_GE(obs::peak_rss_bytes(), current);
  if (!obs::reset_peak()) GTEST_SKIP() << "clear_refs unavailable";
  // After a reset the peak re-arms near the current RSS and must track a
  // fresh allocation touching every page.
  const std::uint64_t base = obs::peak_rss_bytes();
  constexpr std::size_t kBytes = 64u << 20;
  std::vector<unsigned char> hog(kBytes, 1);
  for (std::size_t i = 0; i < hog.size(); i += 4096) hog[i] = 2;
  EXPECT_GE(obs::peak_rss_bytes(), base + kBytes / 2);
}

TEST(CampaignTelemetry, RowsMatchStandaloneRun) {
  // CampaignConfig::collect_telemetry fills one TelemetryRow per trial whose
  // deterministic counter fields reproduce a standalone run with the same
  // derived seed.
  campaign::Scenario scenario;
  scenario.name = "obs/grayzone";
  scenario.trials = 2;
  scenario.rule = CollisionRule::CR2;
  scenario.start = StartRule::Asynchronous;
  scenario.max_rounds = 30'000;
  scenario.network = [] { return duals::gray_zone({.n = 48, .seed = 7}); };
  scenario.algorithm = [](const DualGraph& net) {
    return make_decay_factory(net.node_count());
  };
  scenario.adversary =
      campaign::make_seeded_adversary_factory<BernoulliAdversary>(0.5);

  campaign::CampaignConfig config;
  config.collect_telemetry = true;
  config.threads = 2;
  const campaign::CampaignResult result =
      campaign::run_campaign({scenario}, config);
  ASSERT_EQ(result.telemetry.size(), 2u);

  const DualGraph net = duals::gray_zone({.n = 48, .seed = 7});
  for (std::uint32_t trial = 0; trial < 2; ++trial) {
    SimConfig sim;
    sim.rule = scenario.rule;
    sim.start = scenario.start;
    sim.max_rounds = scenario.max_rounds;
    sim.seed = campaign::trial_seed(1, scenario.name, trial);
    obs::RoundTelemetry telemetry(1);
    (void)run_decay(net, sim, &telemetry);

    const campaign::TelemetryRow& row = result.telemetry[trial];
    EXPECT_EQ(row.scenario, scenario.name);
    EXPECT_EQ(row.trial, trial);
    EXPECT_GE(row.wall_us, 0);
    EXPECT_EQ(row.senders, telemetry.totals().senders);
    EXPECT_EQ(row.deliveries, telemetry.totals().deliveries);
    EXPECT_EQ(row.collisions, telemetry.totals().collisions);
    EXPECT_EQ(row.polled, telemetry.totals().polled);
    EXPECT_EQ(row.replans, telemetry.totals().replans);
    EXPECT_EQ(row.newly_covered, telemetry.totals().newly_covered);
    EXPECT_EQ(row.max_round_deliveries, telemetry.max_round_deliveries());
  }
}

}  // namespace
}  // namespace dualrad
