#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "algorithms/harmonic.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/strong_select.hpp"
#include "core/simulator.hpp"
#include "graph/generators.hpp"
#include "interference/interference.hpp"
#include "test_util.hpp"

namespace dualrad {
namespace {

using testing::scripted_factory;

/// Path 0-1-2 where G_I adds the 0-2 interference edge.
InterferenceNetwork tiny_inet() {
  Graph gt = gen::path(3);
  Graph gi = gen::path(3);
  gi.add_undirected_edge(0, 2);
  return InterferenceNetwork(std::move(gt), std::move(gi), 0);
}

TEST(InterferenceNetwork, ValidatesInputs) {
  Graph gt(3), gi(3);
  gt.add_undirected_edge(0, 1);
  gt.add_undirected_edge(1, 2);
  gi.add_undirected_edge(0, 1);
  // G_T not a subgraph of G_I:
  EXPECT_THROW(InterferenceNetwork(gt, gi, 0), std::invalid_argument);
}

TEST(InterferenceModel, MessagesOnlyConveyOverGt) {
  // Node 0 sends alone: node 1 (G_T neighbor) receives; node 2 (G_I-only
  // neighbor) hears silence even though the message "reached" it.
  const InterferenceNetwork net = tiny_inet();
  const auto factory = scripted_factory({{0, {1}}});
  InterferenceConfig config;
  config.rule = CollisionRule::CR1;
  config.max_rounds = 1;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  const auto result = run_interference_broadcast(net, factory, config);
  const auto& recs = result.trace.rounds[0].receptions;
  EXPECT_TRUE(recs[1].has_token());
  EXPECT_TRUE(recs[2].is_silence());
}

TEST(InterferenceModel, GiOnlyEdgeStillCollides) {
  // Nodes 0 and 1 send: node 2 is reached by 1 (G_T) and 0 (G_I-only):
  // two messages reach it, so CR1 reports a collision.
  const InterferenceNetwork net = tiny_inet();
  const auto factory = scripted_factory({{0, {1}}, {1, {1}}});
  InterferenceConfig config;
  config.rule = CollisionRule::CR1;
  config.max_rounds = 1;
  config.trace = TraceLevel::Full;
  config.stop_on_completion = false;
  const auto result = run_interference_broadcast(net, factory, config);
  EXPECT_TRUE(result.trace.rounds[0].receptions[2].is_collision());
}

TEST(InterferenceModel, CompletesWithClassicalGraphs) {
  // With G_T == G_I the model degenerates to the classical radio model.
  Graph gt = gen::path(6);
  Graph gi = gen::path(6);
  const InterferenceNetwork net(std::move(gt), std::move(gi), 0);
  const auto factory = make_round_robin_factory(6);
  InterferenceConfig config;
  config.rule = CollisionRule::CR3;
  config.max_rounds = 10'000;
  const auto result = run_interference_broadcast(net, factory, config);
  EXPECT_TRUE(result.completed);
}

// ------------------------------------------------- Lemma 1 equivalence

struct Lemma1Param {
  std::string algorithm;
  std::string topology;
  CollisionRule rule;
  StartRule start;
};

std::string lemma1_name(const ::testing::TestParamInfo<Lemma1Param>& info) {
  return info.param.algorithm + "_" + info.param.topology + "_" +
         to_string(info.param.rule) + "_" +
         (info.param.start == StartRule::Synchronous ? "sync" : "async");
}

InterferenceNetwork make_inet(const std::string& topology) {
  if (topology == "pathPlus") {
    Graph gt = gen::path(8);
    Graph gi = gen::path(8);
    for (NodeId u = 0; u < 8; ++u) {
      for (NodeId v = u + 2; v < std::min<NodeId>(8, u + 4); ++v) {
        gi.add_undirected_edge(u, v);
      }
    }
    return InterferenceNetwork(std::move(gt), std::move(gi), 0);
  }
  if (topology == "starOverRing") {
    Graph gt = gen::cycle(9);
    Graph gi = gen::cycle(9);
    for (NodeId v = 2; v < 9; v += 2) gi.add_undirected_edge(0, v);
    return InterferenceNetwork(std::move(gt), std::move(gi), 0);
  }
  if (topology == "bridgeLike") {
    Graph gt = gen::clique(7);
    Graph gi = gen::clique(8);
    Graph gt8(8);
    for (const auto& [u, v] : gt.edges()) gt8.add_edge(u, v);
    gt8.add_undirected_edge(1, 7);
    return InterferenceNetwork(std::move(gt8), std::move(gi), 0);
  }
  throw std::invalid_argument("unknown topology " + topology);
}

ProcessFactory lemma1_factory(const std::string& algorithm, NodeId n) {
  if (algorithm == "strongSelect") return make_strong_select_factory(n);
  if (algorithm == "harmonic") return make_harmonic_factory(n, {.T = 6});
  if (algorithm == "roundRobin") return make_round_robin_factory(n);
  throw std::invalid_argument("unknown algorithm " + algorithm);
}

class Lemma1Equivalence : public ::testing::TestWithParam<Lemma1Param> {};

TEST_P(Lemma1Equivalence, DualSimulationMatchesRoundByRound) {
  const auto& param = GetParam();
  const InterferenceNetwork inet = make_inet(param.topology);
  const NodeId n = inet.node_count();
  const ProcessFactory factory = lemma1_factory(param.algorithm, n);
  const Round horizon = 4096;

  InterferenceConfig iconfig;
  iconfig.rule = param.rule;
  iconfig.start = param.start;
  iconfig.max_rounds = horizon;
  iconfig.trace = TraceLevel::Full;
  iconfig.seed = 11;
  const InterferenceResult iresult =
      run_interference_broadcast(inet, factory, iconfig);

  const DualGraph dual = inet.to_dual();
  InterferenceSimAdversary adversary(inet, param.rule);
  SimConfig dconfig;
  dconfig.rule = param.rule;
  dconfig.start = param.start;
  dconfig.max_rounds = horizon;
  dconfig.trace = TraceLevel::Full;
  dconfig.seed = 11;
  const SimResult dresult = run_broadcast(dual, factory, adversary, dconfig);

  // Lemma 1: identical feedback at every node in every round, hence the
  // same completion round.
  EXPECT_EQ(iresult.completed, dresult.completed);
  EXPECT_EQ(iresult.completion_round, dresult.completion_round);
  ASSERT_EQ(iresult.trace.rounds.size(), dresult.trace.rounds.size());
  for (std::size_t r = 0; r < iresult.trace.rounds.size(); ++r) {
    const auto& irecs = iresult.trace.rounds[r].receptions;
    const auto& drecs = dresult.trace.rounds[r].receptions;
    ASSERT_EQ(irecs.size(), drecs.size());
    for (std::size_t v = 0; v < irecs.size(); ++v) {
      EXPECT_EQ(irecs[v], drecs[v])
          << "round " << (r + 1) << " node " << v;
    }
  }
}

std::vector<Lemma1Param> lemma1_params() {
  std::vector<Lemma1Param> params;
  for (const char* algorithm : {"strongSelect", "harmonic", "roundRobin"}) {
    for (const char* topology : {"pathPlus", "starOverRing", "bridgeLike"}) {
      for (CollisionRule rule :
           {CollisionRule::CR1, CollisionRule::CR2, CollisionRule::CR3,
            CollisionRule::CR4}) {
        params.push_back({algorithm, topology, rule, StartRule::Synchronous});
      }
      params.push_back({algorithm, topology, CollisionRule::CR4,
                        StartRule::Asynchronous});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Lemma1Equivalence,
                         ::testing::ValuesIn(lemma1_params()), lemma1_name);

}  // namespace
}  // namespace dualrad
