#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <tuple>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/cms_oblivious.hpp"
#include "algorithms/decay.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/scheduled.hpp"
#include "algorithms/strong_select.hpp"
#include "algorithms/uniform_gossip.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"

namespace dualrad {
namespace {

// ----------------------------------------------- Strong Select schedule math

TEST(StrongSelectSchedule, EpochGeometry) {
  const auto schedule = make_strong_select_schedule(256);
  // s_max = log2(sqrt(256 / 8)) = log2(sqrt(32)) = 2 (floor).
  EXPECT_EQ(schedule->s_max(), 2);
  EXPECT_EQ(schedule->epoch_length(), 3);
  // Round 1 -> F_1 slot 0; rounds 2,3 -> F_2 slots 0,1; round 4 -> F_1
  // slot 1 (second epoch)...
  EXPECT_EQ(schedule->slot_of_round(1).s, 1);
  EXPECT_EQ(schedule->slot_of_round(1).index, 0);
  EXPECT_EQ(schedule->slot_of_round(2).s, 2);
  EXPECT_EQ(schedule->slot_of_round(2).index, 0);
  EXPECT_EQ(schedule->slot_of_round(3).s, 2);
  EXPECT_EQ(schedule->slot_of_round(3).index, 1);
  EXPECT_EQ(schedule->slot_of_round(4).s, 1);
  EXPECT_EQ(schedule->slot_of_round(4).index, 1);
  EXPECT_EQ(schedule->slot_of_round(5).s, 2);
  EXPECT_EQ(schedule->slot_of_round(5).index, 2);
}

TEST(StrongSelectSchedule, PerEpochSlotCounts) {
  const auto schedule = make_strong_select_schedule(4096);
  const int s_max = schedule->s_max();
  ASSERT_GE(s_max, 3);
  const Round L = schedule->epoch_length();
  EXPECT_EQ(L, (Round{1} << s_max) - 1);
  // In rounds [1, L], family s gets exactly 2^{s-1} slots.
  for (int s = 1; s <= s_max; ++s) {
    EXPECT_EQ(schedule->slots_before(L, s), Round{1} << (s - 1)) << s;
  }
  // Slot indices are consistent with slots_before.
  for (Round r = 1; r <= 3 * L; ++r) {
    const auto slot = schedule->slot_of_round(r);
    EXPECT_EQ(slot.index, schedule->slots_before(r - 1, slot.s)) << r;
  }
}

TEST(StrongSelectSchedule, LargestFamilyIsRoundRobin) {
  const auto schedule = make_strong_select_schedule(128);
  const auto& top = schedule->family(schedule->s_max());
  EXPECT_EQ(top.size(), 128u);
  for (std::size_t i = 0; i < top.size(); ++i) {
    ASSERT_EQ(top.set(i).size(), 1u);
    EXPECT_EQ(top.set(i).front(), static_cast<NodeId>(i));
  }
}

TEST(StrongSelectSchedule, ParticipationStartIsAligned) {
  const auto schedule = make_strong_select_schedule(1024);
  for (int s = 1; s <= schedule->s_max(); ++s) {
    const Round l = schedule->ell(s);
    for (Round t : {Round{0}, Round{5}, Round{97}, Round{1000}}) {
      const Round start = schedule->participation_start(t, s);
      EXPECT_EQ(start % l, 0) << "family " << s << " token round " << t;
      EXPECT_GE(start, schedule->slots_before(t, s));
      EXPECT_LT(start, schedule->slots_before(t, s) + l);
    }
  }
}

TEST(StrongSelectSchedule, IterationRoundsMatchDefinition) {
  const auto schedule = make_strong_select_schedule(4096);
  for (int s = 1; s <= schedule->s_max(); ++s) {
    const Round per_epoch = Round{1} << (s - 1);
    const Round expect =
        (schedule->ell(s) + per_epoch - 1) / per_epoch * schedule->epoch_length();
    EXPECT_EQ(schedule->iteration_rounds(s), expect);
  }
}

// ------------------------------------------- Strong Select process behavior

TEST(StrongSelect, SilentUntilTokenArrives) {
  const NodeId n = 64;
  const auto factory = make_strong_select_factory(n);
  auto p = factory(5, n, 0);
  p->on_activate(0, std::nullopt);
  for (Round r = 1; r <= 50; ++r) {
    EXPECT_FALSE(p->next_action(r).send);
    p->on_receive(r, Reception::silence());
  }
}

TEST(StrongSelect, ParticipatesExactlyOncePerFamily) {
  const NodeId n = 64;
  const auto schedule = make_strong_select_schedule(n);
  const auto factory = make_strong_select_factory(n);
  auto p = factory(7, n, 0);
  p->on_activate(0, std::nullopt);
  const Round token_round = 3;
  std::vector<Round> send_count(static_cast<std::size_t>(schedule->s_max()) + 1,
                                0);
  const Round horizon = schedule->done_round_bound(token_round) + 64;
  for (Round r = 1; r <= horizon; ++r) {
    const Reception rec =
        r == token_round
            ? Reception::of(Message{true, 0, r, 0})
            : Reception::silence();
    if (r > token_round) {
      const Action a = p->next_action(r);
      if (a.send) {
        ++send_count[static_cast<std::size_t>(schedule->slot_of_round(r).s)];
      }
    }
    p->on_receive(r, rec);
  }
  // Sends in family s = number of sets of F_s containing id 7 in one
  // iteration: exactly |sets_containing(7)|.
  for (int s = 1; s <= schedule->s_max(); ++s) {
    EXPECT_EQ(send_count[static_cast<std::size_t>(s)],
              static_cast<Round>(schedule->family(s).sets_containing(7).size()))
        << "family " << s;
  }
  // And after the horizon the process is silent forever (spot check).
  for (Round r = horizon + 1; r <= horizon + 200; ++r) {
    EXPECT_FALSE(p->next_action(r).send);
    p->on_receive(r, Reception::silence());
  }
}

TEST(StrongSelect, ForeverVariantKeepsSending) {
  const NodeId n = 64;
  StrongSelectOptions options;
  options.participate_forever = true;
  const auto schedule = make_strong_select_schedule(n, options);
  const auto factory = make_strong_select_factory(n, options);
  auto p = factory(7, n, 0);
  p->on_activate(0, Message{true, 0, 0, 0});  // source-like: token at round 0
  Round sends_late = 0;
  const Round horizon = schedule->done_round_bound(0) + 64;
  for (Round r = 1; r <= horizon + 3000; ++r) {
    if (r > horizon && p->next_action(r).send) ++sends_late;
    p->on_receive(r, Reception::silence());
  }
  EXPECT_GT(sends_late, 0);
}

TEST(StrongSelect, NextActionIsIdempotent) {
  const NodeId n = 32;
  const auto factory = make_strong_select_factory(n);
  auto p = factory(3, n, 0);
  p->on_activate(0, Message{true, 0, 0, 0});
  for (Round r = 1; r <= 200; ++r) {
    const Action a1 = p->next_action(r);
    const Action a2 = p->next_action(r);
    EXPECT_EQ(a1.send, a2.send);
    p->on_receive(r, Reception::silence());
  }
}

// ------------------------------------------------------- Harmonic behavior

TEST(Harmonic, ProbabilitySchedule) {
  const Round T = 4;
  EXPECT_EQ(harmonic_probability(0, kNever, T), 0.0);
  EXPECT_EQ(harmonic_probability(3, 5, T), 0.0);  // t <= t_v
  // First T rounds after receipt: probability 1.
  for (Round t = 6; t <= 9; ++t) {
    EXPECT_DOUBLE_EQ(harmonic_probability(t, 5, T), 1.0) << t;
  }
  for (Round t = 10; t <= 13; ++t) {
    EXPECT_DOUBLE_EQ(harmonic_probability(t, 5, T), 0.5) << t;
  }
  EXPECT_DOUBLE_EQ(harmonic_probability(14, 5, T), 1.0 / 3.0);
}

TEST(Harmonic, DefaultTMatchesPaperFormula) {
  const NodeId n = 100;
  HarmonicOptions options;
  options.eps = 0.01;
  const Round expect = static_cast<Round>(
      std::ceil(12.0 * std::log(100.0 / 0.01)));
  EXPECT_EQ(harmonic_T(n, options), expect);
}

TEST(Harmonic, SendsWithProbabilityOneInitially) {
  const NodeId n = 32;
  const auto factory = make_harmonic_factory(n, {.T = 5});
  auto p = factory(1, n, 42);
  p->on_activate(0, Message{true, 0, 0, 0});
  for (Round r = 1; r <= 5; ++r) {
    EXPECT_TRUE(p->next_action(r).send) << r;
    p->on_receive(r, Reception::silence());
  }
}

TEST(Harmonic, NextActionIsIdempotentDespiteRandomness) {
  const NodeId n = 32;
  const auto factory = make_harmonic_factory(n, {.T = 2});
  auto p = factory(1, n, 42);
  p->on_activate(0, Message{true, 0, 0, 0});
  for (Round r = 1; r <= 100; ++r) {
    EXPECT_EQ(p->next_action(r).send, p->next_action(r).send);
    p->on_receive(r, Reception::silence());
  }
}

TEST(Harmonic, RoundBoundFormula) {
  // 2 n T H(n) for n = 4, T = 10: H(4) = 25/12; bound = ceil(2*4*10*25/12).
  EXPECT_EQ(harmonic_round_bound(4, 10), static_cast<Round>(
      std::ceil(80.0 * 25.0 / 12.0)));
}

// ------------------------------------------------------------ Decay / RR

TEST(Decay, PhaseLength) {
  EXPECT_EQ(decay_phase_length(16), 5);
  EXPECT_EQ(decay_phase_length(17), 6);
  EXPECT_EQ(decay_phase_length(16, {.phase_length = 3}), 3);
}

TEST(Decay, SendsDeterministicallyAtPhaseStart) {
  // Offset 0 has probability 2^0 = 1: informed nodes always send there.
  const NodeId n = 16;
  const auto factory = make_decay_factory(n);
  auto p = factory(2, n, 99);
  p->on_activate(0, Message{true, 0, 0, 0});
  const Round phase = decay_phase_length(n);
  bool sent_at_phase_start = false;
  for (Round r = 1; r <= phase + 1; ++r) {
    if ((r - 1) % phase == 0 && p->next_action(r).send) {
      sent_at_phase_start = true;
    }
    p->on_receive(r, Reception::silence());
  }
  EXPECT_TRUE(sent_at_phase_start);
}

TEST(RoundRobin, SendsOnlyOnOwnSlot) {
  const NodeId n = 8;
  const auto factory = make_round_robin_factory(n);
  auto p = factory(3, n, 0);
  p->on_activate(0, Message{true, 0, 0, 0});
  for (Round r = 1; r <= 40; ++r) {
    EXPECT_EQ(p->next_action(r).send, r % n == 3) << r;
    p->on_receive(r, Reception::silence());
  }
}

TEST(RoundRobin, UninformedNeverSends) {
  const NodeId n = 8;
  const auto factory = make_round_robin_factory(n);
  auto p = factory(3, n, 0);
  p->on_activate(0, std::nullopt);
  for (Round r = 1; r <= 24; ++r) {
    EXPECT_FALSE(p->next_action(r).send);
    p->on_receive(r, Reception::silence());
  }
}

// -------------------------------------------- completion sweeps (TEST_P)

struct SweepParam {
  std::string algorithm;
  std::string network;
  CollisionRule rule;
  StartRule start;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  return p.algorithm + "_" + p.network + "_" + to_string(p.rule) + "_" +
         (p.start == StartRule::Synchronous ? "sync" : "async");
}

DualGraph make_network(const std::string& name) {
  if (name == "bridge") return duals::bridge_network(24);
  if (name == "layered") return duals::layered_complete_gprime(5, 4);
  if (name == "grayzone") {
    return duals::gray_zone({.n = 32, .r_reliable = 0.25, .r_gray = 0.6,
                             .seed = 4});
  }
  if (name == "backbone") {
    return duals::backbone_plus_unreliable(
        {.n = 32, .p_reliable = 0.05, .p_unreliable = 0.3, .seed = 4});
  }
  if (name == "classicalClique") return make_classical(gen::clique(24), 0);
  throw std::invalid_argument("unknown network " + name);
}

ProcessFactory make_algorithm(const std::string& name, NodeId n) {
  if (name == "strongSelect") return make_strong_select_factory(n);
  if (name == "harmonic") return make_harmonic_factory(n, {.eps = 0.05});
  if (name == "roundRobin") return make_round_robin_factory(n);
  if (name == "decay") return make_decay_factory(n);
  throw std::invalid_argument("unknown algorithm " + name);
}

class BroadcastCompletes : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BroadcastCompletes, AgainstAllBasicAdversaries) {
  const auto& param = GetParam();
  const DualGraph net = make_network(param.network);
  const ProcessFactory factory = make_algorithm(param.algorithm,
                                                net.node_count());
  BenignAdversary benign;
  FullInterferenceAdversary full;
  BernoulliAdversary bernoulli(0.4, 77);
  GreedyBlockerAdversary greedy;
  Adversary* adversaries[] = {&benign, &full, &bernoulli, &greedy};
  for (Adversary* adversary : adversaries) {
    SimConfig config;
    config.rule = param.rule;
    config.start = param.start;
    config.max_rounds = 3'000'000;
    config.seed = 13;
    const SimResult result = run_broadcast(net, factory, *adversary, config);
    EXPECT_TRUE(result.completed)
        << param.algorithm << " on " << param.network;
    // Everyone got the token, in order of a valid broadcast:
    for (Round r : result.first_token) EXPECT_NE(r, kNever);
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (const char* algorithm : {"strongSelect", "harmonic"}) {
    for (const char* network :
         {"bridge", "layered", "grayzone", "backbone", "classicalClique"}) {
      // The paper's upper bounds: CR4 + async (weakest); also check CR1 +
      // sync (strongest) since guarantees only improve.
      params.push_back({algorithm, network, CollisionRule::CR4,
                        StartRule::Asynchronous});
      params.push_back({algorithm, network, CollisionRule::CR1,
                        StartRule::Synchronous});
    }
  }
  // Baselines complete too (round robin everywhere; decay only classical —
  // in dual graphs it has no guarantee but runs; we only sweep classical).
  for (const char* network : {"bridge", "layered", "classicalClique"}) {
    params.push_back({"roundRobin", network, CollisionRule::CR4,
                      StartRule::Asynchronous});
  }
  params.push_back({"decay", "classicalClique", CollisionRule::CR4,
                    StartRule::Asynchronous});
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BroadcastCompletes,
                         ::testing::ValuesIn(sweep_params()), param_name);

// ------------------------------------------------ Lemma 15 busy-round audit

TEST(Harmonic, BusyRoundsBoundedByNTHn) {
  // Lemma 15: for any wake-up pattern, busy rounds (sum of sending
  // probabilities >= 1) number at most n * T * H(n). Audit real executions.
  const DualGraph net = duals::layered_complete_gprime(6, 4);
  GreedyBlockerAdversary adversary;
  SimConfig config;
  config.max_rounds = 2'000'000;
  const ProcessFactory factory = make_harmonic_factory(net.node_count());
  const SimResult result = run_broadcast(net, factory, adversary, config);
  ASSERT_TRUE(result.completed);

  const Round t_used = harmonic_T(net.node_count(), {});
  Round busy = 0;
  for (Round t = 1; t <= result.completion_round; ++t) {
    double total = 0;
    for (NodeId v = 0; v < net.node_count(); ++v) {
      total += harmonic_probability(
          t, result.first_token[static_cast<std::size_t>(v)], t_used);
    }
    if (total >= 1.0) ++busy;
  }
  EXPECT_LE(busy, harmonic_round_bound(net.node_count(), t_used) / 2);
}

// --------------------------------------------- scheduling-hint soundness

/// The Process::next_send_round contract: walking the hints from any round
/// must probe every round at which next_action would transmit, assuming no
/// intervening state transition. (Over-promising is legal — the engine just
/// re-asks — so the hint walk must cover, not equal, the true send set.)
void expect_hints_cover_sends(const Process& proc, Round from, Round window,
                              const std::string& label) {
  std::set<Round> sends;
  for (Round r = from; r < from + window; ++r) {
    if (proc.next_action(r).send) sends.insert(r);  // idempotent probe
  }
  std::set<Round> probed;
  for (Round r = from;;) {
    const Round hint = proc.next_send_round(r);
    ASSERT_TRUE(hint == kNever || hint >= r)
        << label << ": hint " << hint << " before from " << r;
    if (hint == kNever || hint >= from + window) break;
    probed.insert(hint);
    r = hint + 1;
  }
  for (const Round s : sends) {
    EXPECT_TRUE(probed.contains(s))
        << label << ": hint walk from " << from << " skipped send round " << s;
  }
}

/// silence_transparent() claims silence receptions are no-ops: feeding one
/// must leave the observable schedule (actions and hints) unchanged.
void expect_silence_transparent(const Process& proc, Round at, Round window,
                                const std::string& label) {
  if (!proc.silence_transparent()) return;
  const auto muted = proc.clone();
  muted->on_receive(at, Reception::silence());
  for (Round r = at + 1; r < at + 1 + window; ++r) {
    const Action a = proc.next_action(r);
    const Action b = muted->next_action(r);
    EXPECT_EQ(a.send, b.send) << label << " round " << r;
    if (a.send && b.send) {
      EXPECT_EQ(a.message, b.message) << label;
    }
  }
  EXPECT_EQ(proc.next_send_round(at + 1), muted->next_send_round(at + 1))
      << label;
}

/// Property harness: drive processes of every algorithm through randomized
/// histories — activation with or without the token, token arrival at a
/// random later round, collision and silence receptions in between — and
/// after every transition check hint soundness over a lookahead window.
void check_hint_soundness(const std::string& name,
                          const ProcessFactory& factory, NodeId n,
                          std::uint64_t seed) {
  StreamRng rng(seed);
  constexpr Round kWindow = 160;
  for (int history = 0; history < 10; ++history) {
    const auto id = static_cast<ProcessId>(
        rng.below(static_cast<std::uint64_t>(n)));
    const std::string label = name + "/id=" + std::to_string(id) +
                              "/history=" + std::to_string(history);
    const auto proc =
        factory(id, n, mix_seed(seed, static_cast<std::uint64_t>(id)));

    // Uninformed hint must already be sound (typically kNever).
    const bool source_like = rng.bernoulli(0.3);
    const Round wake = source_like
                           ? 0
                           : static_cast<Round>(1 + rng.below(7));
    const Message token_msg{/*token=*/true, /*origin=*/0,
                            /*round_tag=*/wake, /*payload=*/1};
    if (source_like) {
      proc->on_activate(0, token_msg);  // the source: token from round 0
    } else {
      proc->on_activate(wake, std::nullopt);  // sync start, no token yet
    }
    Round now = wake + 1;
    expect_hints_cover_sends(*proc, now, kWindow, label + "/awake");
    expect_silence_transparent(*proc, now, kWindow / 2, label + "/awake");

    // A few receptions: collisions and silences (no-ops for token state),
    // then the token, then more noise — re-verifying after each.
    for (int step = 0; step < 4; ++step) {
      now += static_cast<Round>(1 + rng.below(9));
      const std::uint64_t kind = rng.below(3);
      Reception rec = Reception::silence();
      if (kind == 0) {
        rec = Reception::collision();
      } else if (kind == 1) {
        rec = Reception::of(Message{/*token=*/true, /*origin=*/1,
                                    /*round_tag=*/now, /*payload=*/2});
      }
      proc->on_receive(now, rec);
      expect_hints_cover_sends(*proc, now + 1, kWindow,
                               label + "/step=" + std::to_string(step));
      expect_silence_transparent(*proc, now + 1, kWindow / 2,
                                 label + "/step=" + std::to_string(step));
      // Also from a later round than the transition (memo fast paths).
      const Round later = now + 1 + static_cast<Round>(rng.below(40));
      expect_hints_cover_sends(*proc, later, kWindow / 2,
                               label + "/later=" + std::to_string(step));
    }
  }
}

TEST(SchedulingHints, SoundForEveryAlgorithmOverRandomHistories) {
  constexpr NodeId n = 24;
  std::vector<ProcessId> schedule(static_cast<std::size_t>(n) + 5);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    schedule[i] = static_cast<ProcessId>((i * 5) % static_cast<std::size_t>(n));
  }
  const std::vector<std::pair<std::string, ProcessFactory>> factories = {
      {"round-robin", make_round_robin_factory(n)},
      {"scheduled", make_scheduled_factory(n, schedule)},
      {"harmonic", make_harmonic_factory(n, {.eps = 0.2})},
      {"cms-oblivious", make_cms_oblivious_factory(n, {.delta = 5})},
      {"decay", make_decay_factory(n)},
      {"decay-windowed",
       make_decay_factory(n, {.active_phases = 2, .rebroadcast_period = 8})},
      {"decay-windowed-final",
       make_decay_factory(n, {.active_phases = 1, .rebroadcast_period = 0})},
      {"strong-select", make_strong_select_factory(n)},
      {"strong-select-forever",
       make_strong_select_factory(n, {.participate_forever = true})},
      {"gossip", make_uniform_gossip_factory(n)},
      {"gossip-dense", make_uniform_gossip_factory(n, {.p = 0.35})},
  };
  std::uint64_t seed = 0x9E55;
  for (const auto& [name, factory] : factories) {
    check_hint_soundness(name, factory, n, seed++);
  }
}

TEST(SchedulingHints, GossipHintScanIsCapped) {
  // A vanishing p must not make one hint call scan ~1/p coins: after the
  // cap the hint conservatively names the first unscanned round (legal —
  // the engine re-asks there) instead of hunting for the exact hit.
  const auto factory = make_uniform_gossip_factory(8, {.p = 1e-9});
  const auto proc = factory(3, 8, 99);
  proc->on_activate(0, Message{/*token=*/true, /*origin=*/0,
                               /*round_tag=*/0, /*payload=*/1});
  const Round hint = proc->next_send_round(1);
  ASSERT_GE(hint, 1);
  EXPECT_LE(hint, 5000);  // one chunk, not a ~10^9 scan
  // Soundness of the capped answer: every skipped round is truly silent.
  for (Round r = 1; r < hint; r += 997) {
    EXPECT_FALSE(proc->next_action(r).send) << r;
  }
}

TEST(SchedulingHints, StrongSelectEpochWalkIsExact) {
  // The strong-select hint is a closed-form epoch walk, so beyond the
  // soundness contract (cover every send) it should be *exact*: every round
  // the walk probes is a genuine send. Use an n whose geometry has several
  // SSF families (n = 600 gives s_max = 3: F_1, F_2, and the round-robin
  // tail), so the walk crosses real epoch structure in both participation
  // modes.
  constexpr NodeId n = 600;
  constexpr Round kWindow = 4000;
  for (const bool forever : {false, true}) {
    const auto factory =
        make_strong_select_factory(n, {.participate_forever = forever});
    StreamRng rng(0xE90C + static_cast<std::uint64_t>(forever));
    for (int trial = 0; trial < 6; ++trial) {
      const auto id = static_cast<ProcessId>(
          rng.below(static_cast<std::uint64_t>(n)));
      const auto proc = factory(id, n, 0);
      const Round token_round = static_cast<Round>(rng.below(50));
      const Message token_msg{/*token=*/true, /*origin=*/0,
                              /*round_tag=*/token_round, /*payload=*/1};
      if (token_round == 0) {
        proc->on_activate(0, token_msg);
      } else {
        proc->on_activate(0, std::nullopt);
        proc->on_receive(token_round, Reception::of(token_msg));
      }
      const std::string label = std::string("forever=") +
                                (forever ? "1" : "0") +
                                "/id=" + std::to_string(id) +
                                "/t=" + std::to_string(token_round);
      std::set<Round> sends;
      for (Round r = token_round + 1; r < token_round + 1 + kWindow; ++r) {
        if (proc->next_action(r).send) sends.insert(r);
      }
      std::set<Round> probed;
      for (Round r = token_round + 1;;) {
        const Round hint = proc->next_send_round(r);
        if (hint == kNever || hint >= token_round + 1 + kWindow) break;
        EXPECT_TRUE(proc->next_action(hint).send)
            << label << ": walk probed silent round " << hint;
        probed.insert(hint);
        r = hint + 1;
      }
      EXPECT_EQ(probed, sends) << label;
      if (!forever) {
        // Once every family's single iteration is over, the plan is kNever.
        const auto schedule = make_strong_select_schedule(n);
        EXPECT_EQ(proc->next_send_round(
                      schedule->done_round_bound(token_round) + 1),
                  kNever)
            << label;
      }
    }
  }
}

}  // namespace
}  // namespace dualrad
