#!/usr/bin/env bash
# Serve-mode crash/resume smoke test. Exercises, with REAL processes and
# kill -9, what tests/test_serve.cpp pins in-process:
#
#   1. a reference batch run of the same grid and master seed;
#   2. serve mode with worker pools of 1, 2, and 4 — merged exports must be
#      byte-identical (cmp) to the batch run;
#   3. a worker kill -9 mid-campaign: its lease expires, the unit is
#      reissued to a healthy worker, merged export still byte-identical;
#   4. a coordinator kill -9 mid-campaign: a fresh coordinator resumes from
#      the journal and the merged export is still byte-identical;
#   5. batch-mode SIGINT: dualrad_campaign exits nonzero, leaves a durable
#      journal (trial rows AND telemetry rows), and --resume reproduces the
#      uninterrupted bytes plus a complete telemetry export;
#   6. chaos soak: the same campaign under a deterministic --faults plan
#      (drops, corruption, delays, resets, worker crashes, stalls) across
#      worker pools of 1, 2, and 4 — the merged exports must STILL be
#      byte-identical to the clean batch run, and nothing may quarantine
#      under transient faults (the serve process exits 3 if anything did).
#
# Timing tolerance: kill points are chosen so interruptions land
# mid-campaign on any plausible machine, but every leg also passes if a
# campaign happens to finish early — byte-identity is the invariant, the
# kills are best-effort fault injection.
#
# Usage: tests/serve_smoke.sh <build-dir>
set -euo pipefail

BUILD=${1:?usage: serve_smoke.sh <build-dir>}
CAMPAIGN=$BUILD/dualrad_campaign
SERVE=$BUILD/dualrad_serve
WORK=$(mktemp -d)
cleanup() {
  local pids
  pids=$(jobs -p)
  [ -n "$pids" ] && kill $pids 2>/dev/null
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

FILTER=harmonic       # 4 scenarios
SEED=20260808
# x4 scenarios = 1000 rows, ~1s per serve leg. The TSan CI job overrides
# this down (instrumented binaries are ~10x slower); byte-identity stays
# the invariant at any trial count.
TRIALS=${SERVE_SMOKE_TRIALS:-250}

wait_for_socket() { # path, seconds
  for _ in $(seq 1 $((10 * $2))); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "socket $1 never appeared" >&2
  return 1
}

echo "== reference batch run"
"$CAMPAIGN" --filter=$FILTER --seed=$SEED --trials=$TRIALS \
  --jsonl="$WORK/batch.jsonl" --summary-csv="$WORK/batch.csv" --quiet

echo "== serve mode, worker pools {1, 2, 4}"
for n in 1 2 4; do
  "$SERVE" serve --listen="$WORK/pool$n.sock" --filter=$FILTER --seed=$SEED \
    --trials=$TRIALS --unit-trials=8 --spawn=$n \
    --journal="$WORK/pool$n.journal" \
    --jsonl="$WORK/pool$n.jsonl" --summary-csv="$WORK/pool$n.csv" --quiet \
    2>"$WORK/pool$n.log"
  cmp "$WORK/batch.jsonl" "$WORK/pool$n.jsonl"
  cmp "$WORK/batch.csv" "$WORK/pool$n.csv"
  echo "   $n worker(s): byte-identical"
done

echo "== worker kill -9 mid-campaign (lease expiry + reissue)"
"$SERVE" serve --listen="$WORK/kill.sock" --filter=$FILTER --seed=$SEED \
  --trials=$TRIALS --unit-trials=4 --lease-secs=1 \
  --journal="$WORK/kill.journal" \
  --jsonl="$WORK/kill.jsonl" --quiet 2>"$WORK/kill-serve.log" &
SERVE_PID=$!
wait_for_socket "$WORK/kill.sock" 10
"$SERVE" worker --connect="$WORK/kill.sock" --id=victim --quiet \
  2>/dev/null &
VICTIM_PID=$!
sleep 0.4
kill -9 $VICTIM_PID 2>/dev/null || true
wait $VICTIM_PID 2>/dev/null || true
# Survivor finishes whatever the victim left behind; tolerate a campaign
# that the victim already completed (the serve process then exits on its
# own and the late survivor fails to connect).
"$SERVE" worker --connect="$WORK/kill.sock" --id=survivor --quiet \
  2>"$WORK/kill-worker.log" || true
wait $SERVE_PID
cmp "$WORK/batch.jsonl" "$WORK/kill.jsonl"
echo "   lease reissued after kill -9: byte-identical"

echo "== coordinator kill -9, then journal resume"
"$SERVE" serve --listen="$WORK/crash.sock" --filter=$FILTER --seed=$SEED \
  --trials=$TRIALS --unit-trials=4 --spawn=2 \
  --journal="$WORK/crash.journal" --quiet 2>"$WORK/crash1.log" &
SERVE_PID=$!
# Let some commits reach the journal, then kill the coordinator hard.
for _ in $(seq 1 100); do
  [ -s "$WORK/crash.journal" ] && break
  sleep 0.05
done
kill -9 $SERVE_PID 2>/dev/null || true
wait $SERVE_PID 2>/dev/null || true
# Orphaned forked workers keep retrying the dead socket; reap them.
pkill -9 -f "connect=$WORK/crash.sock" 2>/dev/null || true
LINES=$(wc -l <"$WORK/crash.journal")
echo "   journal survived with $LINES committed row(s)"
"$SERVE" serve --listen="$WORK/crash2.sock" --filter=$FILTER --seed=$SEED \
  --trials=$TRIALS --unit-trials=4 --spawn=2 \
  --journal="$WORK/crash.journal" --resume \
  --jsonl="$WORK/crash.jsonl" --quiet 2>"$WORK/crash2.log"
grep -q "resumed" "$WORK/crash2.log" || [ "$LINES" -eq 0 ]
cmp "$WORK/batch.jsonl" "$WORK/crash.jsonl"
echo "   resumed from journal: byte-identical"

echo "== batch SIGINT + --resume (rows and telemetry through the journal)"
set +e
"$CAMPAIGN" --filter=$FILTER --seed=$SEED --trials=1000 \
  --journal="$WORK/int.journal" --telemetry-jsonl="$WORK/int.telem.partial" \
  --quiet 2>"$WORK/int.log" &
BATCH_PID=$!
sleep 0.4
kill -INT $BATCH_PID 2>/dev/null
wait $BATCH_PID
RC=$?
set -e
if [ $RC -eq 0 ]; then
  # The campaign beat the signal — rerun is pointless, but the resume path
  # below still must reproduce the reference bytes from a complete journal.
  echo "   (campaign finished before SIGINT landed; resume from full journal)"
else
  echo "   SIGINT exit code $RC, $(wc -l <"$WORK/int.journal") row(s) journaled"
fi
"$CAMPAIGN" --filter=$FILTER --seed=$SEED --trials=1000 \
  --resume="$WORK/int.journal" --jsonl="$WORK/int.jsonl" \
  --telemetry-jsonl="$WORK/int.telem.jsonl" --quiet \
  2>>"$WORK/int.log"
"$CAMPAIGN" --filter=$FILTER --seed=$SEED --trials=1000 \
  --jsonl="$WORK/int-ref.jsonl" --quiet
cmp "$WORK/int-ref.jsonl" "$WORK/int.jsonl"
# Telemetry carries wall times (not byte-reproducible), but the resumed
# export must be COMPLETE: journal-replayed rows fill the trials that were
# skipped, one row per trial.
ROWS=$(wc -l <"$WORK/int.jsonl")
TELEM=$(wc -l <"$WORK/int.telem.jsonl")
[ "$ROWS" -eq "$TELEM" ] || {
  echo "telemetry resume incomplete: $TELEM row(s) for $ROWS trial(s)" >&2
  exit 1
}
echo "   batch resume: byte-identical, telemetry complete ($TELEM rows)"

echo "== chaos soak: --faults plan across worker pools {1, 2, 4}"
FAULTS="seed=77;drop=0.03;corrupt=0.02;delay=0.05:25;reset=0.02;crash=0.01;stall=0.01:300"
for n in 1 2 4; do
  "$SERVE" serve --listen="$WORK/chaos$n.sock" --filter=$FILTER --seed=$SEED \
    --trials=$TRIALS --unit-trials=8 --spawn=$n --lease-secs=2 \
    --faults="$FAULTS" \
    --journal="$WORK/chaos$n.journal" \
    --quarantine-jsonl="$WORK/chaos$n.quarantine" \
    --jsonl="$WORK/chaos$n.jsonl" --summary-csv="$WORK/chaos$n.csv" --quiet \
    2>"$WORK/chaos$n.log"
  # Exit 0 (set -e) already proves nothing quarantined; pin it explicitly.
  [ ! -s "$WORK/chaos$n.quarantine" ]
  cmp "$WORK/batch.jsonl" "$WORK/chaos$n.jsonl"
  cmp "$WORK/batch.csv" "$WORK/chaos$n.csv"
  grep -q "faults" "$WORK/chaos$n.log"
  echo "   $n worker(s) under chaos: byte-identical"
done

echo "serve smoke: all legs passed"
