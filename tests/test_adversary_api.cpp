#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "adversary/scripted_adversary.hpp"
#include "adversary/theorem2_adversary.hpp"
#include "algorithms/decay.hpp"
#include "byz/plan.hpp"
#include "core/reference_engine.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"

/// Conformance suite for the sparse batch adversary API (core/adversary.hpp):
/// ReachSink mechanics, and a property harness asserting that every shipped
/// adversary writes only *legal* reach choices — rows parallel to the
/// senders span, G'-only out-neighbors of the slot's sender, no duplicates —
/// when fuzzed over randomized dual networks, sender sets, and coverage
/// histories. A second harness pins the AdversaryView v2 delta plumbing:
/// accumulating newly_covered spans reproduces the dense covered array,
/// identically in both engines and for every thread count.

namespace dualrad {
namespace {

// ------------------------------------------------------------- ReachSink

TEST(ReachSink, RowsAreParallelToSlots) {
  ReachSink sink;
  sink.begin_round(4);
  sink.add(0, 7);
  sink.add(0, 9);
  sink.add(2, 3);
  sink.add_span(3, std::vector<NodeId>{1, 2, 5});
  sink.seal();
  EXPECT_EQ(sink.slot_count(), 4u);
  EXPECT_EQ(sink.total(), 6u);
  EXPECT_EQ(std::vector<NodeId>(sink.extras(0).begin(), sink.extras(0).end()),
            (std::vector<NodeId>{7, 9}));
  EXPECT_TRUE(sink.extras(1).empty());
  EXPECT_EQ(std::vector<NodeId>(sink.extras(2).begin(), sink.extras(2).end()),
            (std::vector<NodeId>{3}));
  EXPECT_EQ(std::vector<NodeId>(sink.extras(3).begin(), sink.extras(3).end()),
            (std::vector<NodeId>{1, 2, 5}));
}

TEST(ReachSink, EnforcesNondecreasingSlotOrder) {
  ReachSink sink;
  sink.begin_round(3);
  sink.add(1, 4);
  EXPECT_THROW(sink.add(0, 5), std::logic_error);  // decreasing slot
  sink.add(1, 6);                                  // same slot is fine
  sink.add(2, 7);
  sink.seal();
  EXPECT_EQ(sink.total(), 3u);
}

TEST(ReachSink, RejectsOutOfRangeAndSealMisuse) {
  ReachSink sink;
  sink.begin_round(2);
  EXPECT_THROW(sink.add(2, 0), std::logic_error);   // slot out of range
  EXPECT_THROW((void)sink.extras(0), std::logic_error);  // read before seal
  sink.add(0, 1);
  sink.seal();
  EXPECT_THROW(sink.add(1, 2), std::logic_error);   // write after seal
  EXPECT_THROW((void)sink.extras(2), std::logic_error);  // slot out of range
  // Empty rounds seal cleanly.
  sink.begin_round(0);
  sink.seal();
  EXPECT_EQ(sink.total(), 0u);
}

TEST(ReachSink, ReusedAcrossRoundsWithoutStaleRows) {
  ReachSink sink;
  sink.begin_round(3);
  sink.add(0, 10);
  sink.add(2, 11);
  sink.seal();
  // Next round shrinks the slot space; nothing from round 1 may survive.
  sink.begin_round(2);
  sink.add(1, 4);
  sink.seal();
  EXPECT_EQ(sink.slot_count(), 2u);
  EXPECT_TRUE(sink.extras(0).empty());
  EXPECT_EQ(std::vector<NodeId>(sink.extras(1).begin(), sink.extras(1).end()),
            (std::vector<NodeId>{4}));
}

TEST(ReachSink, MergeFromConcatenatesSlotWise) {
  ReachSink a, b;
  a.begin_round(3);
  a.add(0, 1);
  a.add(2, 2);
  a.seal();
  b.begin_round(3);
  b.add(0, 3);
  b.add(1, 4);
  b.seal();
  a.merge_from(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(std::vector<NodeId>(a.extras(0).begin(), a.extras(0).end()),
            (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(std::vector<NodeId>(a.extras(1).begin(), a.extras(1).end()),
            (std::vector<NodeId>{4}));
  EXPECT_EQ(std::vector<NodeId>(a.extras(2).begin(), a.extras(2).end()),
            (std::vector<NodeId>{2}));
  ReachSink wrong;
  wrong.begin_round(2);
  wrong.seal();
  EXPECT_THROW(a.merge_from(wrong), std::logic_error);
  EXPECT_THROW(a.merge_from(a), std::logic_error);  // self-merge
}

// --------------------------------------------------- legality conformance

/// Every row written through the sink must be legal for the model: parallel
/// to `senders`, G'-only out-neighbors of the slot's sender, no duplicates.
void expect_legal_rows(const DualGraph& net, const std::vector<NodeId>& senders,
                       const ReachSink& sink, const std::string& label) {
  ASSERT_EQ(sink.slot_count(), senders.size()) << label;
  for (std::size_t i = 0; i < senders.size(); ++i) {
    std::set<NodeId> seen;
    for (const NodeId v : sink.extras(i)) {
      EXPECT_TRUE(net.g_prime_csr().contains(senders[i], v))
          << label << ": " << senders[i] << "->" << v << " not in G'";
      EXPECT_FALSE(net.g_csr().contains(senders[i], v))
          << label << ": " << senders[i] << "->" << v << " is reliable";
      EXPECT_TRUE(seen.insert(v).second)
          << label << ": duplicate extra " << senders[i] << "->" << v;
    }
  }
}

/// Drive one adversary through randomized rounds: random ascending sender
/// sets, an evolving coverage state fed back through newly_covered and
/// on_round_end — the shape of a real execution, minus the processes.
void fuzz_adversary(const std::string& name, Adversary& adversary,
                    const DualGraph& net, std::uint64_t seed) {
  adversary.on_execution_start(net);
  const NodeId n = net.node_count();
  StreamRng rng(seed);
  std::vector<ProcessId> mapping(static_cast<std::size_t>(n));
  std::iota(mapping.begin(), mapping.end(), 0);
  NodeFlags covered(static_cast<std::size_t>(n), 0);
  covered[static_cast<std::size_t>(net.source())] = 1;
  std::vector<NodeId> delta{net.source()};
  ReachSink sink;
  std::vector<NodeId> senders;
  for (Round round = 1; round <= 32; ++round) {
    senders.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (rng.bernoulli(0.25)) senders.push_back(v);  // ascending by build
    }
    AdversaryView view =
        AdversaryView::of(net, mapping, covered, delta, round);
    sink.begin_round(senders.size());
    adversary.choose_unreliable_reach(view, senders, sink);
    sink.seal();
    expect_legal_rows(net, senders, sink,
                      name + "/seed=" + std::to_string(seed) +
                          "/round=" + std::to_string(round));
    // Advance coverage at random and close the round like the engines do.
    delta.clear();
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      if (!covered[uv] && rng.bernoulli(0.08)) {
        covered[uv] = 1;
        delta.push_back(v);
      }
    }
    view.newly_covered = delta;
    adversary.on_round_end(view);
  }
}

TEST(AdversaryConformance, ShippedAdversariesWriteOnlyLegalReach) {
  const std::vector<std::pair<const char*, DualGraph>> networks = {
      {"bridge", duals::bridge_network(14)},
      {"grayzone", duals::gray_zone({.n = 40, .seed = 9})},
      {"backbone", duals::backbone_plus_unreliable({.n = 48, .seed = 4})},
      {"layered-sparse",
       duals::layered_sparse({.layers = 8, .width = 6, .fwd_degree = 2,
                              .unreliable_degree = 2, .seed = 5})},
  };
  std::uint64_t seed = 0xC04F;
  for (const auto& [net_name, net] : networks) {
    BenignAdversary benign;
    fuzz_adversary(std::string("benign/") + net_name, benign, net, seed++);
    FullInterferenceAdversary full(/*deliver_on_cr4=*/true);
    fuzz_adversary(std::string("full/") + net_name, full, net, seed++);
    BernoulliAdversary bernoulli(0.5, seed);
    fuzz_adversary(std::string("bernoulli/") + net_name, bernoulli, net,
                   seed++);
    GreedyBlockerAdversary greedy;
    fuzz_adversary(std::string("greedy/") + net_name, greedy, net, seed++);
  }
  // The proof-rule adversaries live on their own topologies.
  {
    const NodeId n = 14;
    const DualGraph net = duals::bridge_network(n);
    Theorem2Adversary rules(duals::bridge_layout(n));
    FixedAssignmentAdversary pinned(theorem2_assignment(n, 3), rules);
    fuzz_adversary("theorem2/bridge", pinned, net, seed++);
  }
  {
    // A scripted adversary replaying a random legal (G'-only) script.
    const DualGraph net = duals::gray_zone({.n = 32, .seed = 11});
    StreamRng rng(0x5C21);
    AdversaryScript script;
    script.reach.resize(24);
    for (auto& plan : script.reach) {
      for (NodeId u = 0; u < net.node_count(); ++u) {
        if (!rng.bernoulli(0.3)) continue;
        std::vector<NodeId> extras;
        for (const NodeId v : net.unreliable_out(u)) {
          if (rng.bernoulli(0.5)) extras.push_back(v);
        }
        if (!extras.empty()) plan[u] = std::move(extras);
      }
    }
    ScriptedAdversary scripted(std::move(script));
    fuzz_adversary("scripted/grayzone", scripted, net, seed++);
  }
}

TEST(AdversaryConformance, GreedyFrontierMatchesDenseOracle) {
  // The frontier rewrite must make exactly the decisions the dense O(n)
  // formulation makes: jam v iff v is uncovered, not a sender, expects
  // exactly one reliable arrival, and no earlier sender already jammed it —
  // rows in sender order, targets in unreliable-row order.
  const std::vector<DualGraph> networks = {
      duals::gray_zone({.n = 48, .seed = 21}),
      duals::layered_sparse({.layers = 10, .width = 5, .fwd_degree = 2,
                             .unreliable_degree = 2, .seed = 3}),
      duals::backbone_plus_unreliable({.n = 40, .seed = 8}),
  };
  StreamRng rng(0x6EED);
  for (const DualGraph& net : networks) {
    const NodeId n = net.node_count();
    const auto un = static_cast<std::size_t>(n);
    GreedyBlockerAdversary greedy;
    greedy.on_execution_start(net);
    std::vector<ProcessId> mapping(un);
    std::iota(mapping.begin(), mapping.end(), 0);
    NodeFlags covered(un, 0);
    ReachSink sink;
    for (Round round = 1; round <= 24; ++round) {
      for (NodeId v = 0; v < n; ++v) {
        const auto uv = static_cast<std::size_t>(v);
        if (!covered[uv] && rng.bernoulli(0.1)) covered[uv] = 1;
      }
      std::vector<NodeId> senders;
      for (NodeId v = 0; v < n; ++v) {
        if (rng.bernoulli(0.3)) senders.push_back(v);
      }
      const AdversaryView view =
          AdversaryView::of(net, mapping, covered, {}, round);
      sink.begin_round(senders.size());
      greedy.choose_unreliable_reach(view, senders, sink);
      sink.seal();

      // Dense oracle (the pre-rewrite algorithm, verbatim).
      std::vector<int> reliable_arrivals(un, 0);
      std::vector<bool> is_sender(un, false);
      for (const NodeId u : senders) {
        is_sender[static_cast<std::size_t>(u)] = true;
        ++reliable_arrivals[static_cast<std::size_t>(u)];
        for (const NodeId v : net.g_csr().row(u)) {
          ++reliable_arrivals[static_cast<std::size_t>(v)];
        }
      }
      std::vector<std::vector<NodeId>> expected(senders.size());
      if (senders.size() >= 2) {
        std::vector<int> planned(un, 0);
        for (std::size_t i = 0; i < senders.size(); ++i) {
          for (const NodeId v : net.unreliable_out(senders[i])) {
            const auto uv = static_cast<std::size_t>(v);
            if (covered[uv] || is_sender[uv]) continue;
            if (reliable_arrivals[uv] == 1 && planned[uv] == 0) {
              expected[i].push_back(v);
              planned[uv] = 1;
            }
          }
        }
      }
      for (std::size_t i = 0; i < senders.size(); ++i) {
        EXPECT_EQ(std::vector<NodeId>(sink.extras(i).begin(),
                                      sink.extras(i).end()),
                  expected[i])
            << "round " << round << " sender " << senders[i];
      }
    }
  }
}

// ------------------------------------------------- delta / on_round_end

/// Wraps a Bernoulli inner adversary and checks, every round, that the
/// incremental newly_covered spans reconstruct the dense covered array
/// exactly: sorted, duplicate-free deltas whose accumulation equals the
/// flags both at choose time and across on_round_end calls. Also logs the
/// deltas so engine/thread runs can be compared bit-for-bit.
class DeltaTrackingAdversary : public Adversary {
 public:
  explicit DeltaTrackingAdversary(std::uint64_t seed) : inner_(0.4, seed) {}

  std::vector<std::vector<NodeId>> log;

  void on_execution_start(const DualGraph& net) override {
    inner_.on_execution_start(net);
    acc_.assign(static_cast<std::size_t>(net.node_count()), 0);
    log.clear();
    primed_ = false;
  }

  void choose_unreliable_reach(const AdversaryView& view,
                               std::span<const NodeId> senders,
                               ReachSink& sink) override {
    if (!primed_) {
      apply(view.newly_covered);  // round 1: the environment's sources
      primed_ = true;
    }
    EXPECT_EQ(acc_, *view.covered)
        << "delta accumulation diverged from dense flags at round "
        << view.round;
    inner_.choose_unreliable_reach(view, senders, sink);
  }

  Reception resolve_cr4(const AdversaryView& view, NodeId node,
                        const std::vector<Message>& arrivals) override {
    return inner_.resolve_cr4(view, node, arrivals);
  }

  void on_round_end(const AdversaryView& view) override {
    EXPECT_TRUE(std::is_sorted(view.newly_covered.begin(),
                               view.newly_covered.end()))
        << "round " << view.round;
    apply(view.newly_covered);
    EXPECT_EQ(acc_, *view.covered) << "round " << view.round;
    log.emplace_back(view.newly_covered.begin(), view.newly_covered.end());
  }

 private:
  void apply(std::span<const NodeId> delta) {
    for (const NodeId v : delta) {
      auto& flag = acc_[static_cast<std::size_t>(v)];
      EXPECT_EQ(flag, 0) << "node " << v << " covered twice";
      flag = 1;
    }
  }

  BernoulliAdversary inner_;
  NodeFlags acc_;
  bool primed_ = false;
};

TEST(AdversaryConformance, CoverageDeltaMatchesDenseFlagsInBothEngines) {
  const DualGraph net =
      duals::layered_sparse({.layers = 12, .width = 8, .fwd_degree = 2,
                             .unreliable_degree = 2, .seed = 13});
  const ProcessFactory factory = make_decay_factory(net.node_count());
  SimConfig config;
  config.rule = CollisionRule::CR3;
  config.start = StartRule::Asynchronous;
  config.max_rounds = 50'000;
  config.seed = 2024;

  DeltaTrackingAdversary serial(config.seed);
  const SimResult base = run_broadcast(net, factory, serial, config);
  ASSERT_TRUE(base.completed);
  ASSERT_FALSE(serial.log.empty());

  DeltaTrackingAdversary reference(config.seed);
  const SimResult ref =
      run_broadcast_reference(net, factory, reference, config);
  EXPECT_EQ(ref.completion_round, base.completion_round);
  EXPECT_EQ(reference.log, serial.log)
      << "reference engine saw different coverage deltas";

  for (const unsigned threads : {2u, 4u}) {
    SimConfig parallel = config;
    parallel.threads = threads;
    DeltaTrackingAdversary sharded(config.seed);
    const SimResult par = run_broadcast(net, factory, sharded, parallel);
    EXPECT_EQ(par.completion_round, base.completion_round);
    EXPECT_EQ(sharded.log, serial.log)
        << "threads=" << threads << " saw different coverage deltas";
  }
}

TEST(AdversaryConformance, CoverageDeltaMatchesUnderByzantineNodeFaults) {
  // Same delta-accumulation property with a Byzantine node-fault plan
  // active: silenced nodes drop their protocol sends, which reshapes the
  // coverage frontier, and the newly_covered spans must still reconstruct
  // the dense flags identically across both engines and thread counts.
  const DualGraph net =
      duals::layered_sparse({.layers = 12, .width = 8, .fwd_degree = 2,
                             .unreliable_degree = 2, .seed = 13});
  const ProcessFactory factory = make_decay_factory(net.node_count());
  const byz::ByzantinePlan plan = byz::make_random_plan(
      net, /*f=*/1, /*count=*/6, byz::ByzBehavior::Silent, {}, 909);
  ASSERT_GE(plan.faults().size(), 1u);

  SimConfig config;
  config.rule = CollisionRule::CR3;
  config.start = StartRule::Asynchronous;
  config.max_rounds = 50'000;
  config.seed = 2024;
  config.byzantine = &plan;

  DeltaTrackingAdversary serial(config.seed);
  const SimResult base = run_broadcast(net, factory, serial, config);
  ASSERT_FALSE(serial.log.empty());

  DeltaTrackingAdversary reference(config.seed);
  const SimResult ref =
      run_broadcast_reference(net, factory, reference, config);
  EXPECT_EQ(ref.rounds_executed, base.rounds_executed);
  EXPECT_EQ(ref.completed, base.completed);
  EXPECT_EQ(reference.log, serial.log)
      << "reference engine saw different coverage deltas under byz faults";

  for (const unsigned threads : {2u, 4u}) {
    SimConfig parallel = config;
    parallel.threads = threads;
    DeltaTrackingAdversary sharded(config.seed);
    const SimResult par = run_broadcast(net, factory, sharded, parallel);
    EXPECT_EQ(par.rounds_executed, base.rounds_executed);
    EXPECT_EQ(par.completed, base.completed);
    EXPECT_EQ(sharded.log, serial.log)
        << "threads=" << threads
        << " saw different coverage deltas under byz faults";
  }
}

}  // namespace
}  // namespace dualrad
