#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "campaign/contract.hpp"
#include "campaign/engine.hpp"
#include "campaign/export.hpp"
#include "campaign/registry.hpp"
#include "graph/dual_builders.hpp"
#include "obs/heartbeat.hpp"
#include "serve/checkpoint.hpp"
#include "serve/coordinator.hpp"
#include "serve/faultline.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"

namespace dualrad::serve {
namespace {

using campaign::CampaignConfig;
using campaign::CampaignResult;
using campaign::Scenario;
using campaign::TrialRow;

Scenario cheap_scenario(const std::string& name) {
  Scenario s;
  s.name = name;
  s.network = [] { return duals::layered_complete_gprime(4, 3); };
  s.algorithm = [](const DualGraph& net) {
    return make_harmonic_factory(net.node_count(), {.eps = 0.2});
  };
  s.adversary = campaign::make_seeded_adversary_factory<BernoulliAdversary>(0.4);
  s.max_rounds = 500'000;
  s.trials = 4;
  return s;
}

std::vector<Scenario> cheap_campaign() {
  std::vector<Scenario> scenarios;
  scenarios.push_back(cheap_scenario("serve/harmonic/bernoulli"));
  Scenario greedy = cheap_scenario("serve/harmonic/greedy");
  greedy.adversary = campaign::make_adversary_factory<GreedyBlockerAdversary>();
  scenarios.push_back(greedy);
  Scenario rr = cheap_scenario("serve/round-robin/benign");
  rr.algorithm = [](const DualGraph& net) {
    return make_round_robin_factory(net.node_count());
  };
  rr.adversary = campaign::make_adversary_factory<BenignAdversary>();
  rr.trials = 2;
  scenarios.push_back(rr);
  return scenarios;
}

/// RAII temp file path (the file itself may or may not be created).
struct TempPath {
  std::string path;
  explicit TempPath(const char* tag) {
    path = testing::TempDir() + "dualrad_" + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  ~TempPath() { std::remove(path.c_str()); }
};

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// The batch-engine reference output the serve stack must reproduce
/// byte-for-byte.
[[nodiscard]] std::pair<std::string, std::string> batch_reference(
    const std::vector<Scenario>& scenarios, std::uint64_t seed) {
  CampaignConfig config;
  config.master_seed = seed;
  config.threads = 2;
  const CampaignResult result = run_campaign(scenarios, config);
  return {campaign::trials_to_jsonl(result.trials),
          campaign::summaries_to_jsonl(result.summaries)};
}

// --- wire framing ------------------------------------------------------------

TEST(ServeWire, Crc32MatchesIeeeVectors) {
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string_view("\0", 1)), 0xD202EF8Du);
}

TEST(ServeWire, FrameRoundTripsThroughArbitraryChunking) {
  const std::vector<std::string> payloads = {
      "{\"type\":\"hello\"}", "", std::string(10'000, 'x'),
      std::string("\x01\xff\n{}", 5)};
  std::string stream;
  for (const std::string& p : payloads) stream += encode_frame(p);

  for (std::size_t chunk = 1; chunk <= 7; chunk += 3) {
    FrameReader reader;
    std::vector<std::string> decoded;
    for (std::size_t at = 0; at < stream.size(); at += chunk) {
      reader.feed(stream.substr(at, chunk));
      while (auto payload = reader.next()) decoded.push_back(*payload);
    }
    EXPECT_EQ(decoded, payloads) << "chunk size " << chunk;
    EXPECT_FALSE(reader.corrupt());
  }
}

TEST(ServeWire, CorruptedPayloadPoisonsTheReader) {
  std::string stream = encode_frame("{\"type\":\"lease\",\"worker\":\"w0\"}");
  stream[stream.size() / 2] ^= 0x20;  // flip a payload bit
  stream += encode_frame("{\"type\":\"status\"}");  // valid frame behind it

  FrameReader reader;
  reader.feed(stream);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupt());
  // Sticky: the valid frame after the corruption is never surfaced.
  EXPECT_FALSE(reader.next().has_value());
}

TEST(ServeWire, OversizedLengthPoisonsTheReader) {
  std::string stream = "\xff\xff\xff\xff";  // 4 GiB length prefix
  stream.append(8, '\0');
  FrameReader reader;
  reader.feed(stream);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupt());
}

// --- checkpoint journal ------------------------------------------------------

[[nodiscard]] TrialRow sample_row(std::uint32_t trial, std::uint64_t seed) {
  TrialRow row;
  row.scenario = "serve/journal/demo";
  row.trial = trial;
  row.seed = seed;
  row.completed = true;
  row.rounds = 10 + static_cast<Round>(trial);
  row.rounds_executed = row.rounds;
  row.sends = 100;
  row.collisions = 7;
  return row;
}

TEST(ServeCheckpoint, JournalRoundTripsAndDropsOnlyTheTornTail) {
  const TrialRow a = sample_row(0, 11), b = sample_row(1, 22);
  const std::string text = journal_line(a) + journal_line(b);
  const JournalLoad clean = parse_journal(text);
  EXPECT_EQ(clean.rows.size(), 2u);
  EXPECT_EQ(clean.dropped_torn_tail, 0u);
  EXPECT_EQ(clean.rows[0].seed, 11u);
  EXPECT_EQ(clean.rows[1].rounds, 11);

  // A torn final line — half a journal_line — is dropped and reported.
  const std::string torn_line = journal_line(sample_row(2, 33));
  const JournalLoad torn =
      parse_journal(text + torn_line.substr(0, torn_line.size() / 2));
  EXPECT_EQ(torn.rows.size(), 2u);
  EXPECT_EQ(torn.dropped_torn_tail, 1u);

  // The same damage mid-file is corruption, not a torn tail.
  EXPECT_THROW(
      parse_journal(torn_line.substr(0, torn_line.size() / 2) + "\n" + text),
      std::invalid_argument);
}

TEST(ServeCheckpoint, JournalDedupesReplaysAndRejectsConflicts) {
  const TrialRow a = sample_row(0, 11);
  const JournalLoad duped = parse_journal(journal_line(a) + journal_line(a));
  EXPECT_EQ(duped.rows.size(), 1u);
  EXPECT_EQ(duped.duplicates, 1u);

  TrialRow conflicting = a;
  conflicting.rounds = 999;  // same (scenario, trial), different bytes
  EXPECT_THROW(parse_journal(journal_line(a) + journal_line(conflicting)),
               std::invalid_argument);
}

TEST(ServeCheckpoint, WriterAppendsLoadableLines) {
  const TempPath journal("journal");
  {
    JournalWriter writer;
    writer.open(journal.path);
    writer.append(sample_row(0, 11));
    writer.append(sample_row(1, 22));
  }
  {
    JournalWriter writer;  // reopen appends, never truncates
    writer.open(journal.path);
    writer.append(sample_row(2, 33));
  }
  const JournalLoad load = load_journal(journal.path);
  EXPECT_EQ(load.rows.size(), 3u);
  EXPECT_EQ(load.rows[2].trial, 2u);
}

// --- export parsers under torn writes ---------------------------------------

TEST(ServeCheckpoint, ExportParsersFailLoudlyOnTornAndInterleavedLines) {
  CampaignConfig config;
  config.master_seed = 5;
  const CampaignResult result =
      run_campaign({cheap_scenario("serve/torn/demo")}, config);
  const std::string good = campaign::trials_to_jsonl(result.trials);
  ASSERT_EQ(campaign::trials_from_jsonl(good).size(), result.trials.size());

  // Truncated final line: must throw, never silently drop the row.
  EXPECT_THROW((void)campaign::trials_from_jsonl(
                   good.substr(0, good.size() - good.size() / 3)),
               std::invalid_argument);

  // Two writers' torn lines interleaved on one line: key-based scanning
  // could pick fields from either row, so the parser must refuse.
  const std::size_t first_nl = good.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  std::string interleaved = good;
  interleaved.erase(first_nl, 1);  // "{...}{...}" on one line
  EXPECT_THROW((void)campaign::trials_from_jsonl(interleaved),
               std::invalid_argument);

  // Same guards on the telemetry parser.
  EXPECT_THROW((void)campaign::telemetry_from_jsonl(
                   "{\"scenario\":\"a\",\"trial\":0}{\"scenario\":\"b\"\n"),
               std::invalid_argument);
}

// --- TrialExecutor -----------------------------------------------------------

TEST(ServeExecutor, MatchesTheBatchEnginePerTrial) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  CampaignConfig config;
  config.master_seed = 77;
  const CampaignResult batch = run_campaign(scenarios, config);

  std::vector<TrialRow> rows;
  for (const Scenario& s : scenarios) {
    const campaign::TrialExecutor executor(s, 77);
    for (std::uint32_t t = 0; t < s.trials; ++t) {
      rows.push_back(executor.run(t).row);
    }
  }
  EXPECT_EQ(campaign::trials_to_jsonl(rows),
            campaign::trials_to_jsonl(batch.trials));
}

// --- coordinator -------------------------------------------------------------

/// Drain a coordinator in-process: lease units and run them on a
/// TrialExecutor, committing every row. Exercises the library API without
/// sockets.
void drain(Coordinator& coordinator, const std::vector<Scenario>& scenarios,
           const std::string& worker) {
  std::map<std::string, const Scenario*> by_name;
  for (const Scenario& s : scenarios) by_name.emplace(s.name, &s);
  while (!coordinator.done()) {
    const std::optional<JobSpec> job = coordinator.lease(worker);
    ASSERT_TRUE(job.has_value()) << "units leased out but campaign not done";
    const campaign::TrialExecutor executor(*by_name.at(job->scenario),
                                           job->master_seed);
    for (std::uint32_t t = job->trial_begin; t < job->trial_end; ++t) {
      (void)coordinator.commit(executor.run(t).row);
    }
  }
}

TEST(ServeCoordinator, FinalizeIsByteIdenticalToBatchRun) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  const auto [ref_trials, ref_summaries] = batch_reference(scenarios, 123);

  for (const std::uint32_t unit_trials : {1u, 3u, 0u}) {
    Coordinator::Config config;
    config.master_seed = 123;
    config.unit_trials = unit_trials;
    Coordinator coordinator(config);
    coordinator.load_campaign(scenarios);
    drain(coordinator, scenarios, "w0");
    const CampaignResult result = coordinator.finalize();
    EXPECT_EQ(campaign::trials_to_jsonl(result.trials), ref_trials);
    EXPECT_EQ(campaign::summaries_to_jsonl(result.summaries), ref_summaries);
  }
}

TEST(ServeCoordinator, ExpiredLeasesAreReissuedAndReplaysDedupe) {
  const std::vector<Scenario> scenarios = {cheap_scenario("serve/lease/one")};
  Coordinator::Config config;
  config.master_seed = 9;
  config.unit_trials = 2;
  config.lease_secs = 0.05;
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);

  // Worker A leases a unit, commits ONE of its two trials, then dies.
  const std::optional<JobSpec> first = coordinator.lease("a");
  ASSERT_TRUE(first.has_value());
  const campaign::TrialExecutor executor(scenarios[0], 9);
  EXPECT_EQ(coordinator.commit(executor.run(first->trial_begin).row),
            Coordinator::Commit::Accepted);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  // The sweep requeues the unit for worker B...
  const std::optional<JobSpec> second = coordinator.lease("b");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->unit, first->unit);
  // ...whose re-run of the committed trial dedupes, and whose fresh trial
  // commits.
  EXPECT_EQ(coordinator.commit(executor.run(second->trial_begin).row),
            Coordinator::Commit::Duplicate);
  EXPECT_EQ(coordinator.commit(executor.run(second->trial_begin + 1).row),
            Coordinator::Commit::Accepted);
  EXPECT_EQ(coordinator.status().units_done, 1u);
}

TEST(ServeCoordinator, RejectsConflictingAndForeignCommits) {
  const std::vector<Scenario> scenarios = {cheap_scenario("serve/strict/one")};
  Coordinator::Config config;
  config.master_seed = 9;
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);
  (void)coordinator.lease("w");

  const campaign::TrialExecutor executor(scenarios[0], 9);
  const TrialRow row = executor.run(0).row;
  EXPECT_EQ(coordinator.commit(row), Coordinator::Commit::Accepted);

  TrialRow conflicting = row;
  conflicting.sends += 1;  // different bytes for the same (scenario, trial)
  EXPECT_THROW((void)coordinator.commit(conflicting), std::runtime_error);

  TrialRow wrong_seed = executor.run(1).row;
  wrong_seed.seed ^= 1;  // not the derived trial seed
  EXPECT_THROW((void)coordinator.commit(wrong_seed), std::invalid_argument);

  TrialRow unknown = row;
  unknown.scenario = "serve/strict/other";
  EXPECT_THROW((void)coordinator.commit(unknown), std::invalid_argument);
}

TEST(ServeCoordinator, ResumeSkipsJournaledTrialsAndStaysByteIdentical) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  const auto [ref_trials, ref_summaries] = batch_reference(scenarios, 321);

  // First run journals everything, then "crashes" after 4 commits: keep a
  // 4-line prefix plus a torn partial line, as a real crash would leave.
  const TempPath journal("resume");
  {
    Coordinator::Config config;
    config.master_seed = 321;
    config.journal_path = journal.path;
    Coordinator coordinator(config);
    coordinator.load_campaign(scenarios);
    drain(coordinator, scenarios, "w0");
  }
  const std::string full = read_file(journal.path);
  std::size_t cut = 0;
  for (int lines = 0; lines < 4; ++lines) cut = full.find('\n', cut) + 1;
  std::ofstream(journal.path, std::ios::binary | std::ios::trunc)
      << full.substr(0, cut) << full.substr(cut, 20);

  Coordinator::Config config;
  config.master_seed = 321;
  config.journal_path = journal.path;
  config.resume = true;
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);
  EXPECT_EQ(coordinator.status().resumed, 4u);
  EXPECT_EQ(coordinator.status().committed, 4u);
  drain(coordinator, scenarios, "w1");

  const CampaignResult result = coordinator.finalize();
  EXPECT_EQ(campaign::trials_to_jsonl(result.trials), ref_trials);
  EXPECT_EQ(campaign::summaries_to_jsonl(result.summaries), ref_summaries);

  // The continued journal alone now reconstructs the whole campaign.
  EXPECT_EQ(load_journal(journal.path).rows.size(), result.trials.size());
}

// --- socket stack: server + worker ------------------------------------------

/// In-process "network": every connect() call makes a fresh socketpair and a
/// server thread for its far end — exactly the per-connection model the
/// accept loop provides, minus the listening socket.
class LoopbackNet {
 public:
  explicit LoopbackNet(Server& server) : server_(server) {}

  ~LoopbackNet() {
    server_.request_stop();
    for (std::thread& t : handlers_) t.join();
  }

  [[nodiscard]] std::function<int()> connector() {
    return [this] {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return -1;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        handlers_.emplace_back(
            [this, fd = sv[1]] { server_.handle_connection(fd); });
      }
      return sv[0];
    };
  }

 private:
  Server& server_;
  std::mutex mutex_;
  std::vector<std::thread> handlers_;
};

TEST(ServeSocket, WorkerPoolsOfOneTwoFourAreByteIdentical) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  const auto [ref_trials, ref_summaries] = batch_reference(scenarios, 2024);

  for (const unsigned workers : {1u, 2u, 4u}) {
    Coordinator::Config config;
    config.master_seed = 2024;
    config.unit_trials = 1;  // maximum contention across the pool
    Coordinator coordinator(config);
    coordinator.load_campaign(scenarios);
    Server server(coordinator, {});
    LoopbackNet net(server);

    std::vector<std::thread> pool;
    std::vector<WorkerStats> stats(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        WorkerOptions options;
        options.poll = std::chrono::milliseconds(10);
        stats[w] = run_worker(net.connector(), scenarios, options);
      });
    }
    for (std::thread& t : pool) t.join();

    std::size_t trials_run = 0;
    for (const WorkerStats& s : stats) {
      EXPECT_FALSE(s.stopped);
      trials_run += s.trials;
    }
    EXPECT_GE(trials_run, coordinator.status().total_trials);

    const CampaignResult result = coordinator.finalize();
    EXPECT_EQ(campaign::trials_to_jsonl(result.trials), ref_trials)
        << workers << " workers";
    EXPECT_EQ(campaign::summaries_to_jsonl(result.summaries), ref_summaries)
        << workers << " workers";
  }
}

TEST(ServeSocket, StoppedWorkerIsReplacedWithoutChangingTheBytes) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  const auto [ref_trials, ref_summaries] = batch_reference(scenarios, 55);

  Coordinator::Config config;
  config.master_seed = 55;
  config.unit_trials = 2;
  config.lease_secs = 0.2;  // fast reissue of the dead worker's unit
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);
  Server server(coordinator, {});
  LoopbackNet net(server);

  // Worker A runs a slowed copy of the catalogue — a sleep in the adversary
  // factory delays each trial without changing its bytes — so the stop
  // (cooperative, standing in for kill -9, which the CI smoke test does on
  // real processes) deterministically lands mid-campaign.
  std::vector<Scenario> slowed = scenarios;
  for (Scenario& s : slowed) {
    s.adversary = [inner = s.adversary](std::uint64_t seed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      return inner(seed);
    };
  }
  std::atomic<bool> kill_a{false};
  std::thread a([&] {
    WorkerOptions options;
    options.poll = std::chrono::milliseconds(10);
    options.stop = &kill_a;
    (void)run_worker(net.connector(), slowed, options);
  });
  while (coordinator.status().committed == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  kill_a.store(true);
  a.join();
  ASSERT_FALSE(coordinator.done());

  WorkerOptions options;
  options.poll = std::chrono::milliseconds(10);
  const WorkerStats b_stats = run_worker(net.connector(), scenarios, options);
  EXPECT_FALSE(b_stats.stopped);

  const CampaignResult result = coordinator.finalize();
  EXPECT_EQ(campaign::trials_to_jsonl(result.trials), ref_trials);
  EXPECT_EQ(campaign::summaries_to_jsonl(result.summaries), ref_summaries);
}

TEST(ServeSocket, SubmitAndStatusDriveAnIdleCoordinator) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  campaign::ScenarioRegistry registry;
  for (const Scenario& s : scenarios) registry.add(s);

  Coordinator::Config config;
  config.unit_trials = 2;
  Coordinator coordinator(config);  // idle: no campaign loaded
  Server::Options server_options;
  server_options.registry = &registry;
  Server server(coordinator, server_options);
  LoopbackNet net(server);

  const auto rpc = [&](const std::string& payload) {
    const int fd = net.connector()();
    EXPECT_GE(fd, 0);
    EXPECT_TRUE(send_frame(fd, payload));
    FrameReader reader;
    bool timed_out = false;
    const std::optional<std::string> reply =
        recv_frame(fd, reader, 2000, &timed_out);
    ::close(fd);
    EXPECT_TRUE(reply.has_value());
    return reply.value_or("");
  };

  EXPECT_NE(rpc("{\"type\":\"status\"}").find("\"loaded\":false"),
            std::string::npos);
  const std::string submitted =
      rpc("{\"type\":\"submit\",\"filter\":\"harmonic\",\"seed\":7}");
  EXPECT_NE(submitted.find("\"type\":\"submitted\""), std::string::npos);
  EXPECT_NE(submitted.find("\"scenarios\":2"), std::string::npos);
  EXPECT_NE(rpc("{\"type\":\"status\"}").find("\"loaded\":true"),
            std::string::npos);
  EXPECT_NE(rpc("{\"type\":\"submit\",\"filter\":\"no-such-scenario\"}")
                .find("\"type\":\"error\""),
            std::string::npos);

  WorkerOptions options;
  options.poll = std::chrono::milliseconds(10);
  const WorkerStats stats = run_worker(net.connector(), scenarios, options);
  EXPECT_EQ(stats.trials, 8u);  // the two harmonic scenarios, 4 trials each
  EXPECT_TRUE(coordinator.done());
}

// --- engine cancel + resume --------------------------------------------------

TEST(ServeEngine, CancelStopsBetweenTrialsAndResumeRowsCompleteTheRun) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  CampaignConfig reference_config;
  reference_config.master_seed = 8;
  const CampaignResult reference = run_campaign(scenarios, reference_config);

  // A pre-raised cancel flag stops the run before any trial executes.
  std::atomic<bool> cancel{true};
  CampaignConfig cancelled_config;
  cancelled_config.master_seed = 8;
  cancelled_config.cancel = &cancel;
  const CampaignResult cancelled = run_campaign(scenarios, cancelled_config);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_TRUE(cancelled.summaries.empty());

  // Resume with half the reference rows: the engine skips them and the
  // merged output is byte-identical to the uninterrupted run.
  const std::vector<TrialRow> half(
      reference.trials.begin(),
      reference.trials.begin() +
          static_cast<std::ptrdiff_t>(reference.trials.size() / 2));
  std::atomic<std::size_t> executed{0};
  CampaignConfig resume_config;
  resume_config.master_seed = 8;
  resume_config.resume_rows = &half;
  resume_config.observer = [&](const Scenario&, const TrialRow&,
                               const SimResult&) { ++executed; };
  const CampaignResult resumed = run_campaign(scenarios, resume_config);
  EXPECT_EQ(executed.load(), reference.trials.size() - half.size());
  EXPECT_EQ(campaign::trials_to_jsonl(resumed.trials),
            campaign::trials_to_jsonl(reference.trials));
  EXPECT_EQ(campaign::summaries_to_jsonl(resumed.summaries),
            campaign::summaries_to_jsonl(reference.summaries));

  // Rows whose seed does not match the derived stream are rejected.
  std::vector<TrialRow> forged = half;
  forged[0].seed ^= 1;
  CampaignConfig forged_config;
  forged_config.master_seed = 8;
  forged_config.resume_rows = &forged;
  EXPECT_THROW((void)run_campaign(scenarios, forged_config),
               std::invalid_argument);
}

// --- broadcast contract ------------------------------------------------------

TEST(ServeContract, CleanCampaignsSatisfyTheBroadcastContract) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  CampaignConfig config;
  config.master_seed = 3;
  campaign::ContractObserver contract;
  contract.attach(config);
  const CampaignResult result = run_campaign(scenarios, config);
  EXPECT_EQ(contract.trials_checked(), result.trials.size());
  EXPECT_TRUE(contract.violations().empty()) << contract.violations().front();
}

TEST(ServeContract, SyntheticViolationsAreDetected) {
  const Scenario scenario = cheap_scenario("serve/contract/synthetic");

  // Run trial 0 for a genuine SimResult, then tamper with it.
  const campaign::TrialExecutor executor(scenario, 3);
  const campaign::TrialExecutor::Outcome outcome = executor.run(0);
  ASSERT_TRUE(
      campaign::check_broadcast_contract(scenario, outcome.row, outcome.sim)
          .empty());

  SimResult created = outcome.sim;  // a token out of thin air
  created.token_first.push_back(created.token_first.front());
  SimResult duplicated = outcome.sim;  // first delivery after the horizon
  duplicated.token_first[0][1] = duplicated.rounds_executed + 5;
  duplicated.first_token = duplicated.token_first[0];
  SimResult lying = outcome.sim;  // completion claim without delivery
  lying.token_first[0][1] = kNever;
  lying.first_token = lying.token_first[0];
  SimResult disagreeing = outcome.sim;  // wrong completion round
  disagreeing.completion_round += 1;

  const std::vector<std::pair<const SimResult*, std::string>> tampered = {
      {&created, "no-creation"},
      {&duplicated, "no-duplication"},
      {&lying, "validity"},
      {&disagreeing, "agreement"}};
  for (const auto& [result, property] : tampered) {
    const std::vector<std::string> violations =
        campaign::check_broadcast_contract(scenario, outcome.row, *result);
    ASSERT_FALSE(violations.empty()) << property;
    EXPECT_NE(violations.front().find(property), std::string::npos)
        << violations.front();
  }
}

// --- heartbeat promptness ----------------------------------------------------

TEST(ServeHeartbeat, StopReturnsPromptlyMidInterval) {
  obs::Heartbeat heartbeat;
  std::atomic<int> ticks{0};
  heartbeat.start(std::chrono::milliseconds(60'000), [&] { ++ticks; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto t0 = std::chrono::steady_clock::now();
  heartbeat.stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // A sleep-based loop would block for the rest of the 60 s interval; the
  // condition-variable wait returns immediately.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            std::chrono::milliseconds(1'000));
  EXPECT_EQ(ticks.load(), 0);
  heartbeat.stop();  // idempotent
}

// Regression (found while wiring the TSan CI job): running() used to read
// thread_.joinable() while stop() concurrently joined and start() assigned
// the std::thread — a data race — and two racing stop() calls could both
// reach thread_.join(). The lifecycle mutex + atomic running_ flag make
// every combination safe; this test is the TSan witness for that contract.
TEST(ServeHeartbeat, ConcurrentObserversAndStop) {
  for (int iteration = 0; iteration < 20; ++iteration) {
    obs::Heartbeat heartbeat;
    std::atomic<int> ticks{0};
    heartbeat.start(std::chrono::milliseconds(1), [&] { ++ticks; });
    std::atomic<bool> quit{false};
    std::thread observer([&] {
      while (!quit.load()) {
        (void)heartbeat.running();
      }
    });
    std::thread racing_stop([&] { heartbeat.stop(); });
    heartbeat.stop();
    racing_stop.join();
    EXPECT_FALSE(heartbeat.running());
    quit.store(true);
    observer.join();
    const int after_stop = ticks.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    // The callback is never invoked again after stop() returns.
    EXPECT_EQ(ticks.load(), after_stop);
  }
}

// Coordinator status snapshots race against lease/commit traffic in serve
// mode (one thread per connection); hammer them concurrently so TSan can
// prove the locking, and check the final snapshot is coherent.
TEST(ServeCoordinator, ConcurrentStatusDuringCommits) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  std::map<std::string, const Scenario*> by_name;
  for (const Scenario& s : scenarios) by_name.emplace(s.name, &s);

  Coordinator::Config config;
  config.master_seed = 99;
  config.unit_trials = 2;
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);

  std::atomic<bool> quit{false};
  std::thread status_poller([&] {
    while (!quit.load()) {
      const Coordinator::Status s = coordinator.status();
      EXPECT_LE(s.committed, s.total_trials);
      (void)coordinator.done();
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&] {
      // lease() hands out nullopt once no unit is Pending, so workers
      // drain whatever they hold and exit; the union of all workers'
      // commits covers the campaign.
      while (const std::optional<JobSpec> job = coordinator.lease("stress")) {
        const campaign::TrialExecutor executor(*by_name.at(job->scenario),
                                               job->master_seed);
        for (std::uint32_t t = job->trial_begin; t < job->trial_end; ++t) {
          (void)coordinator.commit(executor.run(t).row);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  quit.store(true);
  status_poller.join();

  EXPECT_TRUE(coordinator.done());
  const Coordinator::Status s = coordinator.status();
  EXPECT_TRUE(s.finished);
  EXPECT_EQ(s.committed, s.total_trials);
  EXPECT_EQ(s.units_pending, 0u);
  EXPECT_EQ(s.units_leased, 0u);
}

// --- faultline: plan parsing and schedule determinism ------------------------

TEST(ServeFaultline, SpecParsesAndRoundTrips) {
  const FaultPlan plan = parse_fault_plan(
      "seed=7;drop=0.03;corrupt=0.02;delay=0.05:25;torn=0.1;crash=0.01;"
      "stall=0.01:300");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.drop, 0.03);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.02);
  EXPECT_DOUBLE_EQ(plan.delay, 0.05);
  EXPECT_EQ(plan.delay_ms, 25);
  EXPECT_DOUBLE_EQ(plan.torn_write, 0.1);
  EXPECT_DOUBLE_EQ(plan.crash, 0.01);
  EXPECT_DOUBLE_EQ(plan.stall, 0.01);
  EXPECT_EQ(plan.stall_ms, 300);
  EXPECT_TRUE(plan.any_wire());
  EXPECT_TRUE(plan.any_journal());
  EXPECT_TRUE(plan.any_lifecycle());

  // Canonical spec round-trips to the same plan (commas also accepted).
  const FaultPlan again = parse_fault_plan(fault_plan_to_spec(plan));
  EXPECT_EQ(fault_plan_to_spec(again), fault_plan_to_spec(plan));
  EXPECT_EQ(parse_fault_plan("drop=0.5,reset=0.25").reset, 0.25);
  EXPECT_FALSE(parse_fault_plan("").any_wire());
}

TEST(ServeFaultline, SpecRejectsMalformedInput) {
  EXPECT_THROW((void)parse_fault_plan("dorp=0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("drop=1.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("drop=abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("drop"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("delay=0.1:-5"), std::invalid_argument);
  // A category's probabilities must sum to <= 1.
  EXPECT_THROW((void)parse_fault_plan("drop=0.6;corrupt=0.6"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("torn=0.7;enospc=0.7"),
               std::invalid_argument);
}

TEST(ServeFaultline, ScheduleIsAPureFunctionOfSeedSiteAndIndex) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop = 0.2;
  plan.corrupt = 0.2;
  plan.delay = 0.2;
  plan.crash = 0.3;
  FaultInjector a(plan), b(plan);

  // Same plan => identical decision sequences, and the stateful draw agrees
  // with the side-effect-free replay of the same index.
  for (std::uint64_t k = 0; k < 256; ++k) {
    int ms = 0;
    EXPECT_EQ(a.next_wire(&ms), b.wire_decision(k)) << k;
    EXPECT_EQ(a.lifecycle_decision(k), b.lifecycle_decision(k)) << k;
  }

  // A different seed produces a different schedule.
  FaultPlan other = plan;
  other.seed = 43;
  const FaultInjector c(other);
  bool differs = false;
  for (std::uint64_t k = 0; k < 256 && !differs; ++k) {
    differs = b.wire_decision(k) != c.wire_decision(k);
  }
  EXPECT_TRUE(differs);

  // Totals track what actually fired.
  const FaultTotals totals = a.totals();
  EXPECT_GT(totals.total(), 0u);
  EXPECT_EQ(totals.total(),
            totals.drops + totals.corruptions + totals.delays);
}

// --- faultline: wire chaos stays byte-identical -------------------------------

TEST(ServeFaultline, WireChaosPoolsAreByteIdenticalToBatch) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  const auto [ref_trials, ref_summaries] = batch_reference(scenarios, 777);

  FaultPlan plan;
  plan.seed = 99;
  plan.drop = 0.05;
  plan.corrupt = 0.05;
  plan.partial = 0.03;
  plan.reset = 0.02;
  plan.delay = 0.10;
  plan.delay_ms = 2;
  FaultInjector injector(plan);
  const ScopedFaultInjector guard(injector);

  for (const unsigned workers : {1u, 2u, 4u}) {
    Coordinator::Config config;
    config.master_seed = 777;
    config.unit_trials = 1;
    config.lease_secs = 2.0;
    Coordinator coordinator(config);
    coordinator.load_campaign(scenarios);
    Server server(coordinator, {});
    LoopbackNet net(server);

    std::vector<std::thread> pool;
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        WorkerOptions options;
        options.poll = std::chrono::milliseconds(10);
        options.backoff_base = std::chrono::milliseconds(2);
        options.backoff_max = std::chrono::milliseconds(40);
        (void)run_worker(net.connector(), scenarios, options);
      });
    }
    for (std::thread& t : pool) t.join();

    ASSERT_TRUE(coordinator.done()) << workers << " workers";
    const CampaignResult result = coordinator.finalize();
    EXPECT_EQ(campaign::trials_to_jsonl(result.trials), ref_trials)
        << workers << " workers";
    EXPECT_EQ(campaign::summaries_to_jsonl(result.summaries), ref_summaries)
        << workers << " workers";
  }
  // The plan's probabilities guarantee traffic was actually disturbed.
  EXPECT_GT(injector.totals().total(), 0u);
}

TEST(ServeFaultline, InjectedCrashesHealThroughRestartAndRequeue) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  const auto [ref_trials, ref_summaries] = batch_reference(scenarios, 31);

  FaultPlan plan;
  plan.seed = 5;
  plan.crash = 0.3;
  FaultInjector injector(plan);
  const ScopedFaultInjector guard(injector);

  Coordinator::Config config;
  config.master_seed = 31;
  config.unit_trials = 2;
  config.lease_secs = 0.05;  // requeue the crashed worker's unit quickly
  config.adaptive_lease = false;
  config.max_unit_expiries = 0;  // never quarantine: the run must complete
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);
  Server server(coordinator, {});
  LoopbackNet net(server);

  // The default WorkerOptions::crash handler throws InjectedCrash; the
  // harness plays supervisor and restarts the worker until the campaign
  // drains. Every crash loses an uncommitted trial, re-run after requeue.
  WorkerOptions options;
  options.poll = std::chrono::milliseconds(10);
  int restarts = 0;
  for (;;) {
    try {
      (void)run_worker(net.connector(), scenarios, options);
      break;
    } catch (const InjectedCrash&) {
      ASSERT_LT(++restarts, 500) << "crash loop did not converge";
    }
  }
  EXPECT_TRUE(coordinator.done());
  EXPECT_GT(injector.totals().crashes, 0u);
  EXPECT_EQ(restarts, static_cast<int>(injector.totals().crashes));

  const CampaignResult result = coordinator.finalize();
  EXPECT_EQ(campaign::trials_to_jsonl(result.trials), ref_trials);
  EXPECT_EQ(campaign::summaries_to_jsonl(result.summaries), ref_summaries);
}

// --- coordinator self-healing -------------------------------------------------

TEST(ServeCoordinator, PoisonUnitsAreQuarantinedAndLateCommitsHeal) {
  const std::vector<Scenario> scenarios = {cheap_scenario("serve/poison/one")};
  const auto [ref_trials, ref_summaries] = batch_reference(scenarios, 13);

  Coordinator::Config config;
  config.master_seed = 13;
  config.unit_trials = 0;  // one unit covering all four trials
  config.lease_secs = 0.01;
  config.adaptive_lease = false;
  config.max_unit_expiries = 2;
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);

  // Two leases expire without a single commit: the unit is poison.
  for (int round = 0; round < 2; ++round) {
    const std::optional<JobSpec> job = coordinator.lease("doomed");
    ASSERT_TRUE(job.has_value()) << round;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_FALSE(coordinator.lease("doomed").has_value());

  // Quarantined, the campaign settles instead of livelocking.
  EXPECT_TRUE(coordinator.done());
  const Coordinator::Status status = coordinator.status();
  EXPECT_EQ(status.units_quarantined, 1u);
  EXPECT_EQ(status.trials_quarantined, 4u);
  EXPECT_GE(status.lease_expiries, 2u);
  EXPECT_TRUE(status.finished);

  const std::vector<Coordinator::QuarantinedUnit> manifest =
      coordinator.quarantined();
  ASSERT_EQ(manifest.size(), 1u);
  EXPECT_EQ(manifest[0].scenario, "serve/poison/one");
  EXPECT_EQ(manifest[0].trial_begin, 0u);
  EXPECT_EQ(manifest[0].trial_end, 4u);
  EXPECT_EQ(manifest[0].committed, 0u);
  EXPECT_EQ(manifest[0].expiries, 2u);
  EXPECT_EQ(manifest[0].last_worker, "doomed");

  // finalize() exports the committed subset — here, nothing.
  const CampaignResult partial = coordinator.finalize();
  EXPECT_TRUE(partial.trials.empty());
  EXPECT_TRUE(partial.summaries.empty());

  // Late commits are still accepted and heal the unit back to Done.
  const campaign::TrialExecutor executor(scenarios[0], 13);
  for (std::uint32_t t = 0; t < 4; ++t) {
    EXPECT_EQ(coordinator.commit(executor.run(t).row),
              Coordinator::Commit::Accepted);
  }
  EXPECT_EQ(coordinator.status().units_quarantined, 0u);
  EXPECT_TRUE(coordinator.quarantined().empty());
  const CampaignResult healed = coordinator.finalize();
  EXPECT_EQ(campaign::trials_to_jsonl(healed.trials), ref_trials);
  EXPECT_EQ(campaign::summaries_to_jsonl(healed.summaries), ref_summaries);
}

TEST(ServeCoordinator, PartialQuarantineExportsTheCommittedSubset) {
  // Two scenarios; one completes, the other is quarantined half-committed.
  const std::vector<Scenario> scenarios = {
      cheap_scenario("serve/subset/done"),
      cheap_scenario("serve/subset/poison")};
  Coordinator::Config config;
  config.master_seed = 17;
  config.unit_trials = 0;
  config.lease_secs = 0.01;
  config.adaptive_lease = false;
  config.max_unit_expiries = 1;
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);

  const campaign::TrialExecutor done_exec(scenarios[0], 17);
  const campaign::TrialExecutor poison_exec(scenarios[1], 17);
  const std::optional<JobSpec> first = coordinator.lease("w");
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->scenario, "serve/subset/done");
  for (std::uint32_t t = 0; t < 4; ++t) {
    (void)coordinator.commit(done_exec.run(t).row);
  }
  const std::optional<JobSpec> second = coordinator.lease("w");
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(second->scenario, "serve/subset/poison");
  (void)coordinator.commit(poison_exec.run(0).row);  // half-done, then stuck
  (void)coordinator.commit(poison_exec.run(1).row);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_FALSE(coordinator.lease("w").has_value());  // sweep quarantines

  ASSERT_TRUE(coordinator.done());
  const std::vector<Coordinator::QuarantinedUnit> manifest =
      coordinator.quarantined();
  ASSERT_EQ(manifest.size(), 1u);
  EXPECT_EQ(manifest[0].scenario, "serve/subset/poison");
  EXPECT_EQ(manifest[0].committed, 2u);
  EXPECT_EQ(coordinator.status().trials_quarantined, 2u);

  // The export carries the complete scenario plus the committed half of the
  // quarantined one, with per-scenario summary counts to match.
  const CampaignResult result = coordinator.finalize();
  EXPECT_EQ(result.trials.size(), 6u);
  ASSERT_EQ(result.summaries.size(), 2u);
  EXPECT_EQ(result.summaries[0].trials, 4u);
  EXPECT_EQ(result.summaries[1].trials, 2u);
}

TEST(ServeCoordinator, SpeculativeRedispatchHandsStragglersToIdleWorkers) {
  const std::vector<Scenario> scenarios = {cheap_scenario("serve/spec/one")};
  Coordinator::Config config;
  config.master_seed = 19;
  config.unit_trials = 0;  // one unit: the straggler
  config.lease_secs = 0.2;
  config.adaptive_lease = false;
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);

  const std::optional<JobSpec> slow = coordinator.lease("slow");
  ASSERT_TRUE(slow.has_value());

  // Too early: the lease is under half its window, and the holder itself
  // never gets a speculative copy of its own unit.
  EXPECT_FALSE(coordinator.lease("idle").has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(coordinator.lease("slow").has_value());

  // Past the half-window mark an idle worker is handed a second copy...
  const std::optional<JobSpec> copy = coordinator.lease("idle");
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(copy->unit, slow->unit);
  EXPECT_EQ(coordinator.status().speculative_dispatches, 1u);
  // ...but only one copy per lease term.
  EXPECT_FALSE(coordinator.lease("idle2").has_value());

  // Either holder finishing the unit finishes the campaign (commit dedup
  // makes the duplicate execution harmless).
  const campaign::TrialExecutor executor(scenarios[0], 19);
  for (std::uint32_t t = 0; t < 4; ++t) {
    (void)coordinator.commit(executor.run(t).row);
  }
  EXPECT_TRUE(coordinator.done());
  EXPECT_EQ(coordinator.status().units_done, 1u);
}

TEST(ServeCoordinator, AdaptiveLeaseTracksObservedUnitTimes) {
  const std::vector<Scenario> scenarios = cheap_campaign();
  Coordinator::Config config;
  config.master_seed = 23;
  config.unit_trials = 1;  // 10 units: enough adaptive observations
  config.lease_secs = 30.0;
  config.lease_observations = 4;
  config.lease_floor_secs = 0.05;
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);

  // Before any unit completes, the window is the static lease_secs.
  EXPECT_EQ(coordinator.status().lease_ms_effective, 30'000u);
  drain(coordinator, scenarios, "w0");
  // After the campaign, it is derived from observed unit seconds: p90 x
  // slack for millisecond-scale units lands far below 30 s (clamped to the
  // 50 ms floor when the trials are fast enough).
  const std::size_t adapted = coordinator.status().lease_ms_effective;
  EXPECT_LT(adapted, 30'000u);
  EXPECT_GE(adapted, 50u);
}

TEST(ServeWorker, ReconnectBackoffIsBoundedJitteredAndDeterministic) {
  WorkerOptions options;
  options.backoff_base = std::chrono::milliseconds(100);
  options.backoff_max = std::chrono::milliseconds(2000);

  // Attempt 0: base x jitter in [0.5, 1.5) of 100 ms.
  const auto first = reconnect_backoff_delay(options, "w0", 0, 0);
  EXPECT_GE(first.count(), 50);
  EXPECT_LT(first.count(), 150);

  // Replays are deterministic; the cap binds every attempt, even absurd ones.
  EXPECT_EQ(reconnect_backoff_delay(options, "w0", 3, 7),
            reconnect_backoff_delay(options, "w0", 3, 7));
  for (const std::uint64_t attempt : {5u, 10u, 63u, 1000u}) {
    const auto d = reconnect_backoff_delay(options, "w0", attempt, attempt);
    EXPECT_LE(d.count(), 2000) << attempt;
    EXPECT_GE(d.count(), 1) << attempt;
  }

  // Jitter varies with the lifetime attempt and with the worker identity, so
  // two workers that died together do not retry in lockstep forever.
  bool attempt_varies = false;
  for (std::uint64_t k = 1; k < 8 && !attempt_varies; ++k) {
    attempt_varies = reconnect_backoff_delay(options, "w0", 0, k) !=
                     reconnect_backoff_delay(options, "w0", 0, 0);
  }
  EXPECT_TRUE(attempt_varies);
  bool worker_varies = false;
  for (std::uint64_t k = 0; k < 8 && !worker_varies; ++k) {
    worker_varies = reconnect_backoff_delay(options, "w0", 0, k) !=
                    reconnect_backoff_delay(options, "w1", 0, k);
  }
  EXPECT_TRUE(worker_varies);
}

// --- wire: poisoned-reader contract ------------------------------------------

TEST(ServeWire, PoisonedReaderReportsReasonAndRefusesReuse) {
  std::string stream = encode_frame("{\"type\":\"status\"}");
  stream[stream.size() - 1] ^= 0x01;  // corrupt the payload
  FrameReader reader;
  reader.feed(stream);
  EXPECT_FALSE(reader.next().has_value());
  ASSERT_TRUE(reader.corrupt());
  EXPECT_FALSE(reader.corrupt_reason().empty());
  EXPECT_NE(reader.corrupt_reason().find("CRC"), std::string::npos);

  // Feeding more data is discarded: recovery is reconnect-only.
  reader.feed(encode_frame("{\"type\":\"status\"}"));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupt());

  // Reusing a poisoned reader on a live socket is a caller bug, not a hang:
  // recv_frame refuses it loudly.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  bool timed_out = false;
  EXPECT_THROW((void)recv_frame(sv[0], reader, 100, &timed_out),
               std::logic_error);
  ::close(sv[0]);
  ::close(sv[1]);
}

// --- checkpoint: write-failure paths ------------------------------------------

TEST(ServeCheckpoint, InjectedWriteFailuresFailLoudlyAndKeepThePrefix) {
  // Torn write: half a line reaches disk, the append throws, and the loader
  // recovers the prefix by dropping the torn tail.
  {
    const TempPath journal("torn");
    JournalWriter writer;
    writer.open(journal.path);
    writer.append(sample_row(0, 11));
    {
      FaultPlan plan;
      plan.torn_write = 1.0;
      FaultInjector injector(plan);
      const ScopedFaultInjector guard(injector);
      EXPECT_THROW(writer.append(sample_row(1, 22)), std::runtime_error);
      EXPECT_EQ(injector.totals().torn_writes, 1u);
    }
    writer.close();
    const JournalLoad load = load_journal(journal.path);
    EXPECT_EQ(load.rows.size(), 1u);
    EXPECT_EQ(load.dropped_torn_tail, 1u);

    // truncate_torn_tail makes the file appendable again.
    truncate_torn_tail(journal.path, load);
    JournalWriter again;
    again.open(journal.path);
    again.append(sample_row(2, 33));
    again.close();
    const JournalLoad healed = load_journal(journal.path);
    EXPECT_EQ(healed.rows.size(), 2u);
    EXPECT_EQ(healed.dropped_torn_tail, 0u);
  }

  // fsync EIO: the line is durable-unknown — the append throws even though
  // the bytes made it out, and the journal stays fully parseable.
  {
    const TempPath journal("eio");
    JournalWriter writer;
    writer.open(journal.path);
    writer.append(sample_row(0, 11));
    {
      FaultPlan plan;
      plan.fsync_eio = 1.0;
      FaultInjector injector(plan);
      const ScopedFaultInjector guard(injector);
      EXPECT_THROW(writer.append(sample_row(1, 22)), std::runtime_error);
    }
    writer.close();
    const JournalLoad load = load_journal(journal.path);
    EXPECT_EQ(load.rows.size(), 2u);
    EXPECT_EQ(load.dropped_torn_tail, 0u);
  }

  // ENOSPC: nothing reaches disk; the valid prefix is untouched.
  {
    const TempPath journal("enospc");
    JournalWriter writer;
    writer.open(journal.path);
    writer.append(sample_row(0, 11));
    {
      FaultPlan plan;
      plan.append_enospc = 1.0;
      FaultInjector injector(plan);
      const ScopedFaultInjector guard(injector);
      EXPECT_THROW(writer.append(sample_row(1, 22)), std::runtime_error);
    }
    writer.append(sample_row(1, 22));  // injector gone: the retry commits
    writer.close();
    const JournalLoad load = load_journal(journal.path);
    EXPECT_EQ(load.rows.size(), 2u);
    EXPECT_EQ(load.dropped_torn_tail, 0u);
  }
}

TEST(ServeCoordinator, JournalFailureDegradesButCommitsSurvive) {
  const std::vector<Scenario> scenarios = {cheap_scenario("serve/degrade/one")};
  const auto [ref_trials, ref_summaries] = batch_reference(scenarios, 29);

  const TempPath journal("degrade");
  Coordinator::Config config;
  config.master_seed = 29;
  config.unit_trials = 0;
  config.journal_path = journal.path;
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);
  ASSERT_TRUE(coordinator.lease("w").has_value());

  const campaign::TrialExecutor executor(scenarios[0], 29);
  EXPECT_EQ(coordinator.commit(executor.run(0).row),
            Coordinator::Commit::Accepted);
  {
    // Disk dies: the commit still succeeds (availability over durability),
    // checkpointing is disabled and counted.
    FaultPlan plan;
    plan.append_enospc = 1.0;
    FaultInjector injector(plan);
    const ScopedFaultInjector guard(injector);
    EXPECT_EQ(coordinator.commit(executor.run(1).row),
              Coordinator::Commit::Accepted);
  }
  EXPECT_EQ(coordinator.status().journal_errors, 1u);
  for (std::uint32_t t = 2; t < 4; ++t) {
    (void)coordinator.commit(executor.run(t).row);
  }
  EXPECT_TRUE(coordinator.done());
  const CampaignResult result = coordinator.finalize();
  EXPECT_EQ(campaign::trials_to_jsonl(result.trials), ref_trials);
  EXPECT_EQ(campaign::summaries_to_jsonl(result.summaries), ref_summaries);

  // The journal holds exactly the pre-failure prefix, still loadable.
  EXPECT_EQ(load_journal(journal.path).rows.size(), 1u);
}

// --- checkpoint: telemetry journaling -----------------------------------------

[[nodiscard]] campaign::TelemetryRow sample_telemetry(const std::string& name,
                                                      std::uint32_t trial) {
  campaign::TelemetryRow row;
  row.scenario = name;
  row.trial = trial;
  row.wall_us = 1000 + trial;
  row.polled = 10 * trial;
  row.deliveries = 3;
  return row;
}

TEST(ServeCheckpoint, TelemetryLinesRoundTripAndDedupeFirstWins) {
  const TrialRow trial = sample_row(0, 11);
  const campaign::TelemetryRow t0 = sample_telemetry(trial.scenario, 0);
  campaign::TelemetryRow t0_later = t0;
  t0_later.wall_us = 9999;  // a replayed row with different (wall) bytes

  const JournalLoad load =
      parse_journal(journal_line(trial) + journal_line(t0) +
                    journal_line(t0_later) + journal_line(sample_row(1, 22)));
  EXPECT_EQ(load.rows.size(), 2u);
  ASSERT_EQ(load.telemetry.size(), 1u);
  // First-wins: telemetry is nondeterministic, so replays never conflict.
  EXPECT_EQ(load.telemetry[0].wall_us, 1000);
  EXPECT_EQ(load.telemetry[0].polled, 0u);

  // A telemetry line with a corrupted CRC still poisons the journal.
  std::string bad = journal_line(t0);
  bad[0] = bad[0] == '0' ? '1' : '0';
  EXPECT_THROW((void)parse_journal(bad + journal_line(trial)),
               std::invalid_argument);
}

TEST(ServeCoordinator, ResumeReplaysJournaledTelemetry) {
  const std::vector<Scenario> scenarios = {cheap_scenario("serve/telem/one")};
  const TempPath journal("telem");

  std::string first_run_telemetry;
  {
    Coordinator::Config config;
    config.master_seed = 37;
    config.unit_trials = 0;
    config.journal_path = journal.path;
    config.collect_telemetry = true;
    Coordinator coordinator(config);
    coordinator.load_campaign(scenarios);
    ASSERT_TRUE(coordinator.lease("w").has_value());
    const campaign::TrialExecutor executor(scenarios[0], 37);
    for (std::uint32_t t = 0; t < 4; ++t) {
      (void)coordinator.commit(executor.run(t).row);
      coordinator.add_telemetry(sample_telemetry(scenarios[0].name, t));
    }
    ASSERT_TRUE(coordinator.done());
    first_run_telemetry =
        campaign::telemetry_to_jsonl(coordinator.finalize().telemetry);
    EXPECT_FALSE(first_run_telemetry.empty());
  }

  // A fresh coordinator resuming the journal recovers rows AND telemetry.
  Coordinator::Config config;
  config.master_seed = 37;
  config.unit_trials = 0;
  config.journal_path = journal.path;
  config.resume = true;
  config.collect_telemetry = true;
  Coordinator coordinator(config);
  coordinator.load_campaign(scenarios);
  EXPECT_EQ(coordinator.status().resumed, 4u);
  EXPECT_TRUE(coordinator.done());
  EXPECT_EQ(campaign::telemetry_to_jsonl(coordinator.finalize().telemetry),
            first_run_telemetry);
}

}  // namespace
}  // namespace dualrad::serve
