#include <gtest/gtest.h>

#include "algorithms/harmonic.hpp"
#include "algorithms/wakeup_analysis.hpp"

namespace dualrad {
namespace {

TEST(Wakeup, ProbabilitySumMatchesManualComputation) {
  // Two nodes woken at 0 and 2, T = 2. Round 3: node 1 has
  // p = 1/(1 + floor(2/2)) = 1/2, node 2 has p = 1 (first T rounds).
  const std::vector<Round> pattern = {0, 2};
  EXPECT_DOUBLE_EQ(wakeup::probability_sum(pattern, 3, 2), 0.5 + 1.0);
  // Round 1: only node 1 awake and within its first T rounds.
  EXPECT_DOUBLE_EQ(wakeup::probability_sum(pattern, 1, 2), 1.0);
}

TEST(Wakeup, Lemma15BoundFormula) {
  // n = 3, T = 2: H(3) = 11/6 -> bound = ceil(3 * 2 * 11/6) = 11.
  EXPECT_EQ(wakeup::lemma15_bound(3, 2), 11);
}

TEST(Wakeup, BusyRoundsWithinLemma15Bound) {
  for (NodeId n : {2, 4, 8, 16}) {
    for (Round T : {1, 2, 4}) {
      const auto pattern = wakeup::stacked_pattern(n);
      EXPECT_LE(wakeup::busy_rounds(pattern, T), wakeup::lemma15_bound(n, T))
          << "n=" << n << " T=" << T;
    }
  }
}

TEST(Wakeup, ExhaustiveSmallInstancesRespectLemma15) {
  // Every wake-up pattern with n <= 4 nodes and wake rounds <= 8.
  for (NodeId n : {2, 3, 4}) {
    for (Round T : {1, 2}) {
      const Round max_busy = wakeup::max_busy_rounds_exhaustive(n, T, 8);
      EXPECT_LE(max_busy, wakeup::lemma15_bound(n, T))
          << "n=" << n << " T=" << T;
      EXPECT_GT(max_busy, 0);
    }
  }
}

TEST(Wakeup, SingleNodeBusyExactlyT) {
  // One node woken at 0: p = 1 for rounds 1..T, then 1/2 for T rounds etc.
  // Busy (sum >= 1) iff p = 1, i.e. exactly the first T rounds.
  for (Round T : {1, 3, 7}) {
    EXPECT_EQ(wakeup::busy_rounds({0}, T), T);
  }
}

TEST(Wakeup, FirstFreeRoundAfterInitialBurst) {
  // Single node: rounds 1..T busy, T+1 free.
  EXPECT_EQ(wakeup::first_free_round({0}, 4), 5);
  // Two simultaneous wakers: sum = 2/(1+step) with step = floor((t-1)/2);
  // busy while step <= 1 (rounds 1..4), first free at round 5.
  EXPECT_EQ(wakeup::first_free_round({0, 0}, 2), 5);
}

TEST(Wakeup, StackedPatternShape) {
  const auto pattern = wakeup::stacked_pattern(5);
  ASSERT_EQ(pattern.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(pattern[i], static_cast<Round>(i));
  }
}

TEST(Wakeup, RejectsUnsortedPattern) {
  EXPECT_THROW((void)wakeup::busy_rounds({3, 1}, 2), std::invalid_argument);
  EXPECT_THROW((void)wakeup::max_busy_rounds_exhaustive(12, 1, 3),
               std::invalid_argument);
}

TEST(Wakeup, DenserPatternsAreBusier) {
  // All nodes waking together should be at least as busy as fully spread.
  const NodeId n = 6;
  const Round T = 2;
  const std::vector<Round> together(static_cast<std::size_t>(n), 0);
  std::vector<Round> spread;
  for (NodeId i = 0; i < n; ++i) {
    spread.push_back(static_cast<Round>(i) * 50);
  }
  EXPECT_GE(wakeup::busy_rounds(together, T) + 5 * 50,
            wakeup::busy_rounds(spread, T));
  // Spread nodes each contribute ~T busy rounds of their own.
  EXPECT_GE(wakeup::busy_rounds(spread, T), n * T - 1);
}

}  // namespace
}  // namespace dualrad
