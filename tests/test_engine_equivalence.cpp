#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "adversary/scripted_adversary.hpp"
#include "adversary/theorem2_adversary.hpp"
#include "algorithms/cms_oblivious.hpp"
#include "algorithms/decay.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/scheduled.hpp"
#include "algorithms/strong_select.hpp"
#include "algorithms/uniform_gossip.hpp"
#include "byz/cpa.hpp"
#include "byz/plan.hpp"
#include "campaign/builtin_scenarios.hpp"
#include "campaign/engine.hpp"
#include "campaign/export.hpp"
#include "core/reference_engine.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"
#include "mac/bmmb.hpp"
#include "obs/telemetry.hpp"

/// The sparse CSR engine (run_broadcast) must be *bit-identical* to the
/// dense reference engine (run_broadcast_reference) — same SimResult down to
/// trace vectors and process metrics — for every network, algorithm,
/// adversary, collision rule, start rule, token count, AND thread count of
/// the sharded parallel round kernel (SimConfig::threads). These tests sweep
/// randomized small executions across the full model surface (each also
/// replayed under threads in {2, 4}) and then replay the entire builtin
/// campaign grid through both engines with the campaign's own trial seeds.

namespace dualrad {
namespace {

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.completion_round, b.completion_round) << label;
  EXPECT_EQ(a.rounds_executed, b.rounds_executed) << label;
  EXPECT_EQ(a.first_token, b.first_token) << label;
  EXPECT_EQ(a.token_first, b.token_first) << label;
  EXPECT_EQ(a.process_of_node, b.process_of_node) << label;
  EXPECT_EQ(a.total_sends, b.total_sends) << label;
  EXPECT_EQ(a.total_collision_events, b.total_collision_events) << label;
  EXPECT_EQ(a.forged_tokens, b.forged_tokens) << label;
  EXPECT_EQ(a.trace.level, b.trace.level) << label;
  EXPECT_EQ(a.trace.senders_per_round, b.trace.senders_per_round) << label;
  EXPECT_EQ(a.trace.collisions_per_round, b.trace.collisions_per_round)
      << label;
  EXPECT_EQ(a.trace.window, b.trace.window) << label;
  EXPECT_EQ(a.trace.rounds_recorded, b.trace.rounds_recorded) << label;
  EXPECT_EQ(a.trace.ring_senders, b.trace.ring_senders) << label;
  EXPECT_EQ(a.trace.ring_collisions, b.trace.ring_collisions) << label;
  EXPECT_EQ(a.trace.agg, b.trace.agg) << label;
  EXPECT_EQ(a.trace.blob, b.trace.blob) << label;
  EXPECT_EQ(a.trace.blob_offsets, b.trace.blob_offsets) << label;
  ASSERT_EQ(a.trace.rounds.size(), b.trace.rounds.size()) << label;
  for (std::size_t r = 0; r < a.trace.rounds.size(); ++r) {
    const RoundRecord& ra = a.trace.rounds[r];
    const RoundRecord& rb = b.trace.rounds[r];
    EXPECT_EQ(ra.round, rb.round) << label;
    EXPECT_EQ(ra.receptions, rb.receptions) << label << " round " << ra.round;
    ASSERT_EQ(ra.senders.size(), rb.senders.size())
        << label << " round " << ra.round;
    for (std::size_t s = 0; s < ra.senders.size(); ++s) {
      EXPECT_EQ(ra.senders[s].node, rb.senders[s].node) << label;
      EXPECT_EQ(ra.senders[s].message, rb.senders[s].message) << label;
      EXPECT_EQ(ra.senders[s].reached, rb.senders[s].reached) << label;
    }
  }
  ASSERT_EQ(a.process_metrics.size(), b.process_metrics.size()) << label;
  for (std::size_t i = 0; i < a.process_metrics.size(); ++i) {
    EXPECT_EQ(a.process_metrics[i].node, b.process_metrics[i].node) << label;
    EXPECT_EQ(a.process_metrics[i].pid, b.process_metrics[i].pid) << label;
    EXPECT_EQ(a.process_metrics[i].name, b.process_metrics[i].name) << label;
    EXPECT_EQ(a.process_metrics[i].value, b.process_metrics[i].value) << label;
  }
}

/// Run one spec through the production engine (serial), the production
/// engine under the sharded parallel kernel (threads in {2, 4}), and the
/// reference engine — each with its own fresh adversary — and require all
/// four SimResults identical.
void run_both(const DualGraph& net, const ProcessFactory& factory,
              const campaign::AdversaryFactory& adversary,
              const SimConfig& config, const std::string& label) {
  const auto adv_a = adversary(mix_seed(config.seed, 0xAD));
  const SimResult fast = run_broadcast(net, factory, *adv_a, config);
  for (const unsigned threads : {2u, 4u}) {
    SimConfig parallel = config;
    parallel.threads = threads;
    const auto adv_p = adversary(mix_seed(config.seed, 0xAD));
    const SimResult sharded = run_broadcast(net, factory, *adv_p, parallel);
    expect_identical(sharded, fast,
                     label + "/threads=" + std::to_string(threads));
  }
  const auto adv_b = adversary(mix_seed(config.seed, 0xAD));
  const SimResult reference =
      run_broadcast_reference(net, factory, *adv_b, config);
  expect_identical(fast, reference, label);
}

using AlgorithmFactory = ProcessFactory (*)(const DualGraph&);

ProcessFactory decay_algo(const DualGraph& net) {
  return make_decay_factory(net.node_count());
}
ProcessFactory harmonic_algo(const DualGraph& net) {
  return make_harmonic_factory(net.node_count(), {.eps = 0.2});
}
ProcessFactory gossip_algo(const DualGraph& net) {
  return make_uniform_gossip_factory(net.node_count());
}
ProcessFactory round_robin_algo(const DualGraph& net) {
  return make_round_robin_factory(net.node_count());
}
ProcessFactory strong_select_algo(const DualGraph& net) {
  return make_strong_select_factory(net.node_count());
}
ProcessFactory scheduled_algo(const DualGraph& net) {
  // A non-trivial TDMA schedule: period n + 3, ids rotated by stride 3, so
  // some ids own several slots per period and (for n not coprime with 3)
  // others own none — exercising both multi-slot hints and kNever plans.
  const NodeId n = net.node_count();
  std::vector<ProcessId> slots(static_cast<std::size_t>(n) + 3);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i] = static_cast<ProcessId>((i * 3) % static_cast<std::size_t>(n));
  }
  return make_scheduled_factory(n, std::move(slots));
}
ProcessFactory cms_algo(const DualGraph& net) {
  return make_cms_oblivious_factory(
      net.node_count(),
      {.delta = static_cast<NodeId>(net.g_prime_csr().max_in_degree())});
}

TEST(EngineEquivalence, RandomSmallScenarios) {
  // Sweep: every collision rule x start rule, cycling through algorithms,
  // adversaries, and randomized small dual networks (n <= 64). Full traces,
  // so divergence anywhere in delivery, reception, or accounting is caught.
  const std::vector<std::pair<const char*, AlgorithmFactory>> algorithms = {
      {"decay", decay_algo},
      {"harmonic", harmonic_algo},
      {"gossip", gossip_algo},
      {"round-robin", round_robin_algo},
      {"strong-select", strong_select_algo},
      {"scheduled", scheduled_algo},
      {"cms", cms_algo},
  };
  const std::vector<std::pair<const char*, campaign::AdversaryFactory>>
      adversaries = {
          {"benign", campaign::make_adversary_factory<BenignAdversary>()},
          {"full-interference",
           campaign::make_adversary_factory<FullInterferenceAdversary>(
               /*deliver_on_cr4=*/true)},
          {"bernoulli",
           campaign::make_seeded_adversary_factory<BernoulliAdversary>(0.5)},
          {"greedy", campaign::make_adversary_factory<GreedyBlockerAdversary>()},
      };
  const std::vector<std::pair<const char*, DualGraph>> networks = {
      {"layered", duals::layered_complete_gprime(5, 4)},
      {"grayzone", duals::gray_zone({.n = 40, .seed = 9})},
      {"backbone", duals::backbone_plus_unreliable({.n = 64, .seed = 4})},
      {"layered-sparse",
       duals::layered_sparse(
           {.layers = 8, .width = 6, .fwd_degree = 2, .unreliable_degree = 1,
            .seed = 5})},
      {"grayzone-grid",
       duals::gray_zone_grid({.n = 48, .mean_degree = 6.0, .seed = 11})},
      {"bridge", duals::bridge_network(12)},
  };

  std::size_t combo = 0;
  for (const CollisionRule rule : {CollisionRule::CR1, CollisionRule::CR2,
                                   CollisionRule::CR3, CollisionRule::CR4}) {
    for (const StartRule start :
         {StartRule::Synchronous, StartRule::Asynchronous}) {
      for (std::size_t i = 0; i < 4; ++i, ++combo) {
        const auto& [algo_name, algo] = algorithms[combo % algorithms.size()];
        const auto& [adv_name, adversary] =
            adversaries[(combo / 2) % adversaries.size()];
        const auto& [net_name, net] = networks[(combo / 3) % networks.size()];
        SimConfig config;
        config.rule = rule;
        config.start = start;
        config.max_rounds = 30'000;
        config.seed = mix_seed(1234, combo);
        config.trace = TraceLevel::Full;
        run_both(net, algo(net), adversary, config,
                 std::string(algo_name) + "/" + net_name + "/" + adv_name +
                     "/" + to_string(rule) + "/" + to_string(start));
      }
    }
  }
}

TEST(EngineEquivalence, MultiTokenExecutions) {
  // k in {1, 4} tokens via BMMB-over-DecayMac — the layered MAC processes
  // use neither scheduling hint, so this exercises the engine's
  // per-round-polling fallback path with multi-token bookkeeping.
  const DualGraph layered = duals::layered_complete_gprime(6, 4);
  const DualGraph grayzone = duals::gray_zone({.n = 32, .seed = 6});
  for (const DualGraph* net : {&layered, &grayzone}) {
    for (const TokenId k : {TokenId{1}, TokenId{4}}) {
      for (const StartRule start :
           {StartRule::Synchronous, StartRule::Asynchronous}) {
        SimConfig config;
        config.start = start;
        config.max_rounds = 200'000;
        config.seed = mix_seed(77, static_cast<std::uint64_t>(k));
        config.trace = TraceLevel::Counts;
        config.token_sources = mac::spread_token_sources(*net, k);
        run_both(*net, mac::make_bmmb_factory(net->node_count()),
                 campaign::make_seeded_adversary_factory<BernoulliAdversary>(0.3),
                 config,
                 "bmmb/k=" + std::to_string(k) + "/" + to_string(start));
      }
    }
  }
}

TEST(EngineEquivalence, ProofRuleAndScriptedAdversaries) {
  // The remaining migrated implementations — the Theorem 2 fixed-rule
  // adversary (with its pinned proc mapping) and a scripted replay — must
  // round-trip both engines and the parallel kernel bit-identically too.
  {
    const NodeId n = 12;
    const DualGraph net = duals::bridge_network(n);
    // Owns the rule adversary and the pinned assignment in one object so a
    // campaign-style factory can mint fresh ones per engine run.
    class PinnedTheorem2 : public Theorem2Adversary {
     public:
      explicit PinnedTheorem2(NodeId n)
          : Theorem2Adversary(duals::bridge_layout(n)),
            map_(theorem2_assignment(n, 4)) {}
      std::vector<ProcessId> assign_processes(const DualGraph&) override {
        return map_;
      }

     private:
      std::vector<ProcessId> map_;
    };
    SimConfig config;
    config.rule = CollisionRule::CR1;
    config.start = StartRule::Synchronous;
    config.max_rounds = 5'000;
    config.seed = 31;
    config.trace = TraceLevel::Full;
    run_both(net, make_harmonic_factory(n, {.eps = 0.2}),
             [n](std::uint64_t) { return std::make_unique<PinnedTheorem2>(n); },
             config, "theorem2/bridge");
  }
  {
    const DualGraph net = duals::gray_zone({.n = 28, .seed = 15});
    // A random legal (G'-only) script, replayed identically per run.
    AdversaryScript script;
    script.reach.resize(64);
    StreamRng rng(0x5C12);
    for (auto& plan : script.reach) {
      for (NodeId u = 0; u < net.node_count(); ++u) {
        if (!rng.bernoulli(0.4)) continue;
        std::vector<NodeId> extras;
        for (const NodeId v : net.unreliable_out(u)) {
          if (rng.bernoulli(0.5)) extras.push_back(v);
        }
        if (!extras.empty()) plan[u] = std::move(extras);
      }
    }
    SimConfig config;
    config.rule = CollisionRule::CR3;
    config.start = StartRule::Asynchronous;
    config.max_rounds = 20'000;
    config.seed = 77;
    config.trace = TraceLevel::Full;
    run_both(net, make_decay_factory(net.node_count()),
             [&script](std::uint64_t) {
               return std::make_unique<ScriptedAdversary>(script);
             },
             config, "scripted/grayzone");
  }
}

TEST(EngineEquivalence, StopOnCompletionOffMatchesToo) {
  // Running past completion (termination experiments) must agree as well.
  const DualGraph net = duals::layered_complete_gprime(4, 3);
  SimConfig config;
  config.max_rounds = 2'000;
  config.stop_on_completion = false;
  config.seed = 5;
  config.trace = TraceLevel::Full;
  run_both(net, make_decay_factory(net.node_count()),
           campaign::make_adversary_factory<BenignAdversary>(), config,
           "decay/no-stop");
}

TEST(EngineEquivalence, BoundedTraceMatchesAndFoldsCounts) {
  // Bounded mode must agree between engines and thread counts (run_both),
  // and its ring + aggregates must be exactly the tail + fold of what
  // Counts mode records for the same execution.
  const DualGraph net = duals::layered_sparse(
      {.layers = 10, .width = 8, .fwd_degree = 2, .unreliable_degree = 1,
       .seed = 21});
  SimConfig config;
  config.rule = CollisionRule::CR3;
  config.max_rounds = 50'000;
  config.seed = 99;
  config.trace = TraceLevel::Bounded;
  config.trace_window = 16;
  const auto factory = make_decay_factory(net.node_count());
  const auto adversary =
      campaign::make_seeded_adversary_factory<BernoulliAdversary>(0.4);
  run_both(net, factory, adversary, config, "decay/bounded");

  const auto adv_bounded = adversary(mix_seed(config.seed, 0xAD));
  const SimResult bounded = run_broadcast(net, factory, *adv_bounded, config);
  SimConfig counts_config = config;
  counts_config.trace = TraceLevel::Counts;
  const auto adv_counts = adversary(mix_seed(config.seed, 0xAD));
  const SimResult counts =
      run_broadcast(net, factory, *adv_counts, counts_config);

  const auto rounds = static_cast<Round>(counts.trace.senders_per_round.size());
  ASSERT_GT(rounds, static_cast<Round>(config.trace_window))
      << "execution too short to wrap the ring";
  EXPECT_EQ(bounded.trace.rounds_recorded, rounds);
  EXPECT_EQ(bounded.trace.window, config.trace_window);
  std::uint64_t sends = 0, collisions = 0;
  std::uint32_t max_senders = 0;
  for (Round r = 1; r <= rounds; ++r) {
    const auto s = counts.trace.senders_per_round[static_cast<std::size_t>(r - 1)];
    sends += s;
    collisions +=
        counts.trace.collisions_per_round[static_cast<std::size_t>(r - 1)];
    max_senders = std::max(max_senders, s);
    if (bounded.trace.in_window(r)) {
      EXPECT_EQ(bounded.trace.ring_senders_at(r), s) << "round " << r;
      EXPECT_EQ(
          bounded.trace.ring_collisions_at(r),
          counts.trace.collisions_per_round[static_cast<std::size_t>(r - 1)])
          << "round " << r;
    }
  }
  EXPECT_FALSE(bounded.trace.in_window(0));
  EXPECT_FALSE(bounded.trace.in_window(rounds - static_cast<Round>(config.trace_window)));
  EXPECT_TRUE(bounded.trace.in_window(rounds));
  EXPECT_EQ(bounded.trace.agg.total_sends, sends);
  EXPECT_EQ(bounded.trace.agg.total_sends, bounded.total_sends);
  EXPECT_EQ(bounded.trace.agg.total_collision_events, collisions);
  EXPECT_EQ(bounded.trace.agg.max_senders, max_senders);
  EXPECT_EQ(counts.trace.senders_per_round[static_cast<std::size_t>(
                bounded.trace.agg.max_senders_round - 1)],
            max_senders);
  // Bounded mode allocates no per-round vectors.
  EXPECT_TRUE(bounded.trace.senders_per_round.empty());
  EXPECT_TRUE(bounded.trace.rounds.empty());
}

TEST(EngineEquivalence, BuiltinCampaignGridIsBitIdentical) {
  // Replay the builtin catalogue through both engines — and the parallel
  // kernel at 4 threads — with the campaign's own derived trial seeds
  // (master seed 1, trial 0 — exactly what run_campaign hands the
  // simulator), proving the production engine swap does not shift a single
  // campaign number. The 100k/1m "slow" points are exercised by
  // bench_engine_scaling instead; everything else runs here.
  const campaign::ScenarioRegistry registry = campaign::builtin_registry();
  std::size_t checked = 0;
  for (const campaign::Scenario& s : registry.all()) {
    bool slow = false;
    for (const std::string& tag : s.tags) slow = slow || tag == "slow";
    if (slow) continue;
    // Scenarios with a custom trial runner (the byz/* family wraps the run
    // in a ByzantinePlan) are replayed by ByzantineExecutionsAreBitIdentical
    // and ByzCampaignExportsAreThreadInvariant instead.
    if (s.runner) continue;
    const DualGraph net = s.network();
    const ProcessFactory factory = s.algorithm(net);
    SimConfig config;
    config.rule = s.rule;
    config.start = s.start;
    config.max_rounds = s.max_rounds;
    config.seed = campaign::trial_seed(1, s.name, 0);
    config.token_sources = s.token_sources;
    const auto adv_a = s.adversary(mix_seed(config.seed, 0xAD));
    const auto adv_p = s.adversary(mix_seed(config.seed, 0xAD));
    const auto adv_b = s.adversary(mix_seed(config.seed, 0xAD));
    const SimResult fast = run_broadcast(net, factory, *adv_a, config);
    SimConfig parallel = config;
    parallel.threads = 4;
    const SimResult sharded = run_broadcast(net, factory, *adv_p, parallel);
    expect_identical(sharded, fast, s.name + "/threads=4");
    const SimResult reference =
        run_broadcast_reference(net, factory, *adv_b, config);
    expect_identical(fast, reference, s.name);
    ++checked;
  }
  EXPECT_GE(checked, 20u);
}

TEST(EngineEquivalence, ByzantineExecutionsAreBitIdentical) {
  // Byzantine node faults (src/byz/) run through the same hot paths —
  // silenced protocol sends, injected forged sends, forged-delivery masks —
  // and every byproduct including SimResult::forged_tokens must stay
  // bit-identical across both engines and the sharded kernel.
  const DualGraph layered = duals::layered_sparse(
      {.layers = 8, .width = 6, .fwd_degree = 3, .unreliable_degree = 2,
       .seed = 5});
  const DualGraph grayzone = duals::gray_zone({.n = 40, .seed = 9});
  const auto adversary =
      campaign::make_seeded_adversary_factory<BernoulliAdversary>(0.4);
  for (const DualGraph* net : {&layered, &grayzone}) {
    const auto src = static_cast<ProcessId>(net->source());
    const ProcessFactory cpa = byz::make_cpa_factory(
        net->node_count(), {.f = 1,
                            .trusted_origins = {src},
                            .relay_p = 0.5,
                            .active_rounds = 64,
                            .rebroadcast_period = 16});
    const ProcessFactory relay = byz::make_uncertified_relay_factory(
        net->node_count(),
        {.relay_p = 0.5, .active_rounds = 64, .rebroadcast_period = 16});
    for (const byz::ByzBehavior behavior :
         {byz::ByzBehavior::Silent, byz::ByzBehavior::Forge}) {
      const byz::ByzantinePlan plan = byz::make_random_plan(
          *net, /*f=*/1, /*count=*/5, behavior, {}, 0xBEEF);
      ASSERT_GE(plan.faults().size(), 1u);
      SimConfig config;
      config.rule = CollisionRule::CR3;
      config.start = StartRule::Asynchronous;
      config.max_rounds = 20'000;
      config.seed = mix_seed(4711, static_cast<std::uint64_t>(behavior));
      config.trace = TraceLevel::Full;
      config.byzantine = &plan;
      const std::string tag = (net == &layered ? "layered" : "grayzone");
      const std::string mode =
          behavior == byz::ByzBehavior::Silent ? "silent" : "forge";
      run_both(*net, cpa, adversary, config, "byz/" + tag + "/cpa/" + mode);
      run_both(*net, relay, adversary, config,
               "byz/" + tag + "/relay/" + mode);
    }
  }
}

TEST(EngineEquivalence, ByzCampaignExportsAreThreadInvariant) {
  // The byz/* scenario family must export byte-identical JSONL/CSV for any
  // intra-trial thread count — the acceptance pin for the node-fault
  // subsystem riding the campaign engine's determinism contract.
  const campaign::ScenarioRegistry registry = campaign::builtin_registry();
  const std::vector<campaign::Scenario> scenarios =
      registry.match("byz/layered-1k");
  ASSERT_GE(scenarios.size(), 4u);
  std::string base_jsonl, base_csv;
  for (const unsigned threads_per_trial : {1u, 2u, 4u}) {
    campaign::CampaignConfig config;
    config.master_seed = 7;
    config.threads = 2;
    config.threads_per_trial = threads_per_trial;
    config.trials_override = 1;
    const campaign::CampaignResult result =
        campaign::run_campaign(scenarios, config);
    const std::string jsonl = campaign::trials_to_jsonl(result.trials, false);
    const std::string csv = campaign::trials_to_csv(result.trials, false);
    ASSERT_FALSE(jsonl.empty());
    if (threads_per_trial == 1u) {
      base_jsonl = jsonl;
      base_csv = csv;
    } else {
      EXPECT_EQ(jsonl, base_jsonl)
          << "threads_per_trial=" << threads_per_trial;
      EXPECT_EQ(csv, base_csv) << "threads_per_trial=" << threads_per_trial;
    }
  }
}

TEST(EngineEquivalence, TelemetryDoesNotPerturbResults) {
  // The telemetry layer is strictly out-of-band: attaching an
  // obs::RoundTelemetry must leave the SimResult bit-identical — both
  // engines, serial and sharded (threads in {1, 2, 4}), with a full trace so
  // any perturbation anywhere in delivery or accounting would surface.
  const DualGraph net = duals::gray_zone({.n = 40, .seed = 9});
  const ProcessFactory factory = make_decay_factory(net.node_count());
  const auto adversary =
      campaign::make_seeded_adversary_factory<BernoulliAdversary>(0.5);
  for (const CollisionRule rule : {CollisionRule::CR2, CollisionRule::CR4}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      SimConfig config;
      config.rule = rule;
      config.start = StartRule::Asynchronous;
      config.max_rounds = 30'000;
      config.seed = 4242;
      config.trace = TraceLevel::Full;
      config.threads = threads;
      const auto adv_off = adversary(mix_seed(config.seed, 0xAD));
      const SimResult off = run_broadcast(net, factory, *adv_off, config);

      obs::RoundTelemetry telemetry(8);
      config.telemetry = &telemetry;
      const auto adv_on = adversary(mix_seed(config.seed, 0xAD));
      const SimResult on = run_broadcast(net, factory, *adv_on, config);
      const std::string label = "telemetry/" + std::string(to_string(rule)) +
                                "/threads=" + std::to_string(threads);
      expect_identical(on, off, label);
      EXPECT_EQ(telemetry.rounds_recorded(), off.rounds_executed) << label;

      const auto adv_ref = adversary(mix_seed(config.seed, 0xAD));
      obs::RoundTelemetry ref_telemetry(8);
      SimConfig ref_config = config;
      ref_config.telemetry = &ref_telemetry;
      const SimResult ref =
          run_broadcast_reference(net, factory, *adv_ref, ref_config);
      expect_identical(ref, off, label + "/reference");
    }
  }
}

TEST(EngineEquivalence, CompressedTraceDecodesToFullTrace) {
  // TraceLevel::Compressed must store the exact same per-round records as
  // Full, only delta/varint-encoded: decoding round i yields a value-equal
  // RoundRecord, and the encoded blob is bit-identical across engines and
  // thread counts (expect_identical covers the blob on the compressed runs).
  const DualGraph net = duals::gray_zone({.n = 40, .seed = 9});
  const ProcessFactory factory = make_decay_factory(net.node_count());
  const auto adversary =
      campaign::make_seeded_adversary_factory<BernoulliAdversary>(0.4);
  for (const CollisionRule rule :
       {CollisionRule::CR1, CollisionRule::CR2, CollisionRule::CR4}) {
    SimConfig config;
    config.rule = rule;
    config.start = StartRule::Asynchronous;
    config.max_rounds = 30'000;
    config.seed = 99;
    config.trace = TraceLevel::Full;
    const auto adv_full = adversary(mix_seed(config.seed, 0xAD));
    const SimResult full = run_broadcast(net, factory, *adv_full, config);

    config.trace = TraceLevel::Compressed;
    const auto adv_comp = adversary(mix_seed(config.seed, 0xAD));
    const SimResult compressed = run_broadcast(net, factory, *adv_comp, config);
    const std::string label = "compressed/" + std::string(to_string(rule));

    EXPECT_TRUE(compressed.trace.rounds.empty()) << label;
    ASSERT_EQ(compressed.trace.compressed_rounds(), full.trace.rounds.size())
        << label;
    RoundRecord decoded;
    for (std::size_t i = 0; i < full.trace.rounds.size(); ++i) {
      compressed.trace.decode_compressed(i, net.node_count(), decoded);
      const RoundRecord& want = full.trace.rounds[i];
      EXPECT_EQ(decoded.round, want.round) << label;
      EXPECT_EQ(decoded.receptions, want.receptions) << label;
      ASSERT_EQ(decoded.senders.size(), want.senders.size()) << label;
      for (std::size_t s = 0; s < want.senders.size(); ++s) {
        EXPECT_EQ(decoded.senders[s].node, want.senders[s].node) << label;
        EXPECT_EQ(decoded.senders[s].message, want.senders[s].message) << label;
        EXPECT_EQ(decoded.senders[s].reached, want.senders[s].reached) << label;
      }
    }
    // Compressed counts mirror Full's per-round counters.
    EXPECT_EQ(compressed.trace.senders_per_round, full.trace.senders_per_round)
        << label;

    // Cross-engine and cross-thread-count: blobs bit-identical.
    run_both(net, factory, adversary, config, label);
  }
}

}  // namespace
}  // namespace dualrad
