#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/dual_builders.hpp"
#include "graph/dual_graph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace dualrad {
namespace {

TEST(Graph, EmptyGraphHasNoEdges) {
  Graph g(5);
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, AddEdgeIsDirected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_FALSE(g.is_undirected());
}

TEST(Graph, AddUndirectedEdgeAddsBoth) {
  Graph g(3);
  g.add_undirected_edge(1, 2);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_TRUE(g.is_undirected());
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRange) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(g.add_edge(-1, 0), std::invalid_argument);
}

TEST(Graph, SubgraphDetection) {
  Graph small(4), big(4);
  small.add_edge(0, 1);
  big.add_edge(0, 1);
  big.add_edge(1, 2);
  EXPECT_TRUE(small.is_subgraph_of(big));
  EXPECT_FALSE(big.is_subgraph_of(small));
}

TEST(Graph, MaxDegrees) {
  Graph g = gen::star(5);
  EXPECT_EQ(g.max_out_degree(), 4u);
  EXPECT_EQ(g.max_in_degree(), 4u);
}

TEST(CsrGraph, SnapshotPreservesInsertionOrder) {
  Graph g(5);
  g.add_edge(0, 3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  const CsrGraph csr(g);
  EXPECT_EQ(csr.node_count(), 5);
  EXPECT_EQ(csr.edge_count(), 4u);
  // Rows must mirror Graph::out_neighbors exactly — the round engine's
  // arrival order (and thus bit-identical execution) depends on it.
  for (NodeId u = 0; u < 5; ++u) {
    const auto row = csr.row(u);
    ASSERT_EQ(row.size(), g.out_neighbors(u).size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(row[i], g.out_neighbors(u)[i]);
    }
    EXPECT_EQ(csr.out_degree(u), g.out_degree(u));
  }
}

TEST(CsrGraph, ContainsMatchesHasEdge) {
  const Graph g = gen::gnp_connected(40, 0.15, 3);
  const CsrGraph csr(g);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(csr.contains(u, v), g.has_edge(u, v)) << u << "->" << v;
    }
  }
  EXPECT_FALSE(csr.contains(-1, 0));
  EXPECT_FALSE(csr.contains(0, 40));
}

TEST(CsrGraph, EmptyAndIsolatedNodes) {
  const CsrGraph empty{};
  EXPECT_EQ(empty.node_count(), 0);
  Graph g(3);  // no edges at all
  const CsrGraph csr(g);
  EXPECT_EQ(csr.edge_count(), 0u);
  EXPECT_TRUE(csr.row(1).empty());
  EXPECT_FALSE(csr.contains(0, 1));
}

TEST(ScaleFamilies, LayeredSparseIsValidAndBoundedDegree) {
  const duals::LayeredSparseParams params{
      .layers = 20, .width = 10, .fwd_degree = 3, .unreliable_degree = 2,
      .seed = 7};
  // DualGraph construction validates E subset of E' and source reachability.
  const DualGraph net = duals::layered_sparse(params);
  EXPECT_EQ(net.node_count(), 201);
  EXPECT_TRUE(net.is_undirected());
  // Degrees stay O(fwd + unreliable) regardless of n: each node draws at
  // most 3 parents, receives expected 3 child links, and 2+2 skip links.
  EXPECT_LE(net.g_prime().max_in_degree(), 60u);
  EXPECT_GT(net.unreliable_edge_count(), 0u);
  // Deterministic: same params, same network.
  EXPECT_TRUE(net.g() == duals::layered_sparse(params).g());
}

TEST(ScaleFamilies, GrayZoneGridIsValidAndDeterministic) {
  const duals::GrayZoneGridParams params{.n = 300, .mean_degree = 9.0,
                                         .seed = 13};
  const DualGraph net = duals::gray_zone_grid(params);
  EXPECT_EQ(net.node_count(), 300);
  EXPECT_TRUE(net.is_undirected());
  EXPECT_GT(net.unreliable_edge_count(), 0u);
  EXPECT_TRUE(net.g() == duals::gray_zone_grid(params).g());
  // Every node reachable (the constructor asserts it; double-check here).
  const auto d = graphalg::bfs_distances(net.g(), 0);
  for (Round dist : d) EXPECT_NE(dist, kNever);
}

TEST(GraphAlg, BfsDistancesOnPath) {
  Graph g = gen::path(5);
  const auto d = graphalg::bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[static_cast<std::size_t>(v)], v);
}

TEST(GraphAlg, UnreachableIsNever) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = graphalg::bfs_distances(g, 0);
  EXPECT_EQ(d[2], kNever);
  EXPECT_FALSE(graphalg::all_reachable(g, 0));
}

TEST(GraphAlg, DiameterOfCycle) {
  EXPECT_EQ(graphalg::diameter(gen::cycle(6)), 3);
  EXPECT_EQ(graphalg::diameter(gen::clique(6)), 1);
}

TEST(GraphAlg, EccentricityOfStarCenter) {
  EXPECT_EQ(graphalg::eccentricity(gen::star(9), 0), 1);
  EXPECT_EQ(graphalg::eccentricity(gen::star(9), 3), 2);
}

TEST(GraphAlg, WeaklyConnected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(graphalg::weakly_connected(g));
  g.add_edge(2, 1);
  EXPECT_TRUE(graphalg::weakly_connected(g));
}

TEST(Generators, CliqueEdgeCount) {
  const Graph g = gen::clique(7);
  EXPECT_EQ(g.edge_count(), 7u * 6u);  // directed count
  EXPECT_TRUE(g.is_undirected());
}

TEST(Generators, GridShape) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_TRUE(g.is_undirected());
  EXPECT_EQ(graphalg::diameter(g), 2 + 3);
}

TEST(Generators, RandomTreeIsConnectedAndAcyclic) {
  const Graph g = gen::random_tree(40, 7);
  EXPECT_TRUE(graphalg::all_reachable(g, 0));
  EXPECT_EQ(g.edge_count(), 2u * 39u);
}

TEST(Generators, GnpConnected) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Graph g = gen::gnp_connected(30, 0.05, seed);
    EXPECT_TRUE(graphalg::all_reachable(g, 0));
  }
}

TEST(Generators, CompleteLayeredStructure) {
  const Graph g = gen::complete_layered({1, 2, 2});
  // node 0 - layer 0; nodes 1,2 - layer 1; nodes 3,4 - layer 2.
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));   // intra-layer
  EXPECT_TRUE(g.has_edge(2, 4));   // adjacent layers
  EXPECT_FALSE(g.has_edge(0, 3));  // non-adjacent layers
}

TEST(Generators, DirectedLayeredIsForwardOnly) {
  const Graph g = gen::directed_layered({1, 2, 2});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(1, 2));  // no intra-layer edges
}

TEST(DualGraph, ValidatesSubsetAndReachability) {
  Graph g(3), gp(3);
  g.add_undirected_edge(0, 1);
  gp.add_undirected_edge(0, 1);
  gp.add_undirected_edge(1, 2);
  // node 2 unreachable in G:
  EXPECT_THROW(DualGraph(g, gp, 0), std::invalid_argument);
  g.add_undirected_edge(1, 2);
  gp.add_undirected_edge(0, 2);
  const DualGraph net(g, gp, 0);
  EXPECT_EQ(net.node_count(), 3);
  EXPECT_FALSE(net.is_classical());
  EXPECT_TRUE(net.is_undirected());
}

TEST(DualGraph, RejectsEdgeNotInGPrime) {
  Graph g(3), gp(3);
  g.add_undirected_edge(0, 1);
  g.add_undirected_edge(1, 2);
  gp.add_undirected_edge(0, 1);
  EXPECT_THROW(DualGraph(g, gp, 0), std::invalid_argument);
}

TEST(DualGraph, UnreliableOutIsGPrimeMinusG) {
  const DualGraph net = duals::bridge_network(6);
  const auto layout = duals::bridge_layout(6);
  // A clique node (not bridge) has exactly one unreliable target: receiver.
  const auto& extra = net.unreliable_out(2);
  ASSERT_EQ(extra.size(), 1u);
  EXPECT_EQ(extra.front(), layout.receiver);
  EXPECT_TRUE(net.unreliable_out(layout.bridge).empty());
}

TEST(DualGraph, ClassicalHasNoUnreliableEdges) {
  const DualGraph net = make_classical(gen::clique(5), 0);
  EXPECT_TRUE(net.is_classical());
  EXPECT_EQ(net.unreliable_edge_count(), 0u);
}

TEST(DualBuilders, BridgeNetworkIs2Broadcastable) {
  const DualGraph net = duals::bridge_network(8);
  const auto layout = duals::bridge_layout(8);
  // Source can reach everyone within 2 hops in G via the bridge.
  const auto d = graphalg::bfs_distances(net.g(), net.source());
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_LE(d[static_cast<std::size_t>(v)], 2);
  }
  EXPECT_EQ(d[static_cast<std::size_t>(layout.receiver)], 2);
}

TEST(DualBuilders, Theorem12NetworkLayers) {
  const NodeId n = 17;  // n-1 = 16
  const DualGraph net = duals::theorem12_network(n);
  const auto layer = duals::theorem12_layers(n);
  EXPECT_EQ(layer[0], 0);
  EXPECT_EQ(layer[1], 1);
  EXPECT_EQ(layer[2], 1);
  EXPECT_EQ(layer[3], 2);
  // Edges: same layer or adjacent layers only in G.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      const auto lu = layer[static_cast<std::size_t>(u)];
      const auto lv = layer[static_cast<std::size_t>(v)];
      EXPECT_EQ(net.g().has_edge(u, v), std::abs(lu - lv) <= 1) << u << " " << v;
      EXPECT_TRUE(net.g_prime().has_edge(u, v));
    }
  }
}

TEST(DualBuilders, Theorem12RequiresPowerOfTwo) {
  EXPECT_THROW(duals::theorem12_network(12), std::invalid_argument);
}

TEST(DualBuilders, GrayZoneIsValidDual) {
  for (std::uint64_t seed : {1, 5, 9}) {
    duals::GrayZoneParams params;
    params.n = 40;
    params.seed = seed;
    const DualGraph net = duals::gray_zone(params);
    EXPECT_TRUE(net.g().is_subgraph_of(net.g_prime()));
    EXPECT_TRUE(graphalg::all_reachable(net.g(), net.source()));
    EXPECT_TRUE(net.is_undirected());
  }
}

TEST(DualBuilders, BackbonePlusUnreliable) {
  duals::BackboneParams params;
  params.n = 50;
  params.p_unreliable = 0.3;
  params.seed = 11;
  const DualGraph net = duals::backbone_plus_unreliable(params);
  EXPECT_TRUE(graphalg::all_reachable(net.g(), 0));
  EXPECT_GT(net.unreliable_edge_count(), 0u);
}

TEST(DualBuilders, StripUnreliableGivesClassical) {
  const DualGraph net = duals::bridge_network(10);
  const DualGraph classical = duals::strip_unreliable(net);
  EXPECT_TRUE(classical.is_classical());
  EXPECT_EQ(classical.g().edge_count(), net.g().edge_count());
}

TEST(DualBuilders, LayeredCompleteGPrime) {
  const DualGraph net = duals::layered_complete_gprime(4, 3);
  EXPECT_EQ(net.node_count(), 1 + 3 * 3);
  EXPECT_TRUE(graphalg::all_reachable(net.g(), 0));
  EXPECT_FALSE(net.is_classical());
}

// ------------------------------------------------------- CsrGraphBuilder

TEST(CsrGraphBuilder, DedupsAndSortsRows) {
  CsrGraphBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 1);
  b.add_edge(2, 4);  // duplicate collapses at freeze
  b.add_undirected_edge(0, 3);
  b.add_undirected_edge(0, 3);  // both directions duplicated
  const CsrGraph csr = b.freeze();
  EXPECT_EQ(csr.edge_count(), 4u);
  EXPECT_TRUE(csr.rows_sorted());
  ASSERT_EQ(csr.out_degree(2), 2u);
  EXPECT_EQ(csr.row(2)[0], 1);
  EXPECT_EQ(csr.row(2)[1], 4);
  EXPECT_TRUE(csr.contains(2, 4));
  EXPECT_TRUE(csr.contains(0, 3));
  EXPECT_TRUE(csr.contains(3, 0));
  EXPECT_FALSE(csr.contains(4, 2));
  EXPECT_FALSE(csr.contains(2, 2));
  EXPECT_FALSE(csr.contains(-1, 2));
  EXPECT_EQ(b.emitted(), 0u) << "freeze leaves the builder empty";
}

TEST(CsrGraphBuilder, RejectsSelfLoopsAndOutOfRange) {
  CsrGraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(b.add_edge(-1, 0), std::invalid_argument);
}

TEST(CsrGraphBuilder, MatchesGraphFrozenSnapshotUpToRowOrder) {
  // The same generator emitted into both sinks must give the same edge
  // sets; builder rows are the sorted version of the Graph rows.
  const Graph g = gen::complete_layered({1, 3, 2});
  const CsrGraph from_graph(g);
  const CsrGraph streamed = gen::complete_layered_csr({1, 3, 2});
  ASSERT_EQ(streamed.node_count(), from_graph.node_count());
  ASSERT_EQ(streamed.edge_count(), from_graph.edge_count());
  for (NodeId u = 0; u < streamed.node_count(); ++u) {
    auto row = from_graph.row(u);
    std::vector<NodeId> sorted(row.begin(), row.end());
    std::sort(sorted.begin(), sorted.end());
    const auto srow = streamed.row(u);
    EXPECT_TRUE(std::equal(srow.begin(), srow.end(), sorted.begin(),
                           sorted.end()))
        << "row " << u;
  }
  // Same for the other deterministic classics.
  EXPECT_EQ(gen::clique_csr(7).edge_count(), gen::clique(7).edge_count());
  EXPECT_EQ(gen::path_csr(9).edge_count(), gen::path(9).edge_count());
  EXPECT_EQ(gen::cycle_csr(6).edge_count(), gen::cycle(6).edge_count());
  EXPECT_EQ(gen::star_csr(8).edge_count(), gen::star(8).edge_count());
  EXPECT_EQ(gen::grid_csr(4, 3).edge_count(), gen::grid(4, 3).edge_count());
}

TEST(CsrGraphBuilder, BacksCsrConstructedDualGraph) {
  // A DualGraph built straight from frozen CSRs: validation, unreliable
  // adjacency, and the lazy Graph view must all agree with the Graph path.
  CsrGraphBuilder gb(4);
  gb.add_undirected_edge(0, 1);
  gb.add_undirected_edge(1, 2);
  gb.add_undirected_edge(2, 3);
  CsrGraphBuilder gpb(4);
  gpb.add_undirected_edge(0, 1);
  gpb.add_undirected_edge(1, 2);
  gpb.add_undirected_edge(2, 3);
  gpb.add_undirected_edge(0, 3);  // unreliable extra
  const DualGraph net(gb.freeze(), gpb.freeze(), /*source=*/0);
  EXPECT_EQ(net.node_count(), 4);
  EXPECT_FALSE(net.is_classical());
  EXPECT_TRUE(net.is_undirected());
  EXPECT_EQ(net.unreliable_edge_count(), 2u);
  ASSERT_EQ(net.unreliable_out(0).size(), 1u);
  EXPECT_EQ(net.unreliable_out(0)[0], 3);
  // Lazy Graph view materializes on demand and matches the CSR.
  EXPECT_EQ(net.g().edge_count(), net.g_csr().edge_count());
  EXPECT_TRUE(net.g_prime().has_edge(0, 3));
  EXPECT_FALSE(net.g().has_edge(0, 3));
}

TEST(CsrGraphBuilder, CsrDualGraphValidatesLikeGraphPath) {
  // E not a subset of E'.
  CsrGraphBuilder g1(3);
  g1.add_undirected_edge(0, 1);
  g1.add_undirected_edge(1, 2);
  CsrGraphBuilder gp1(3);
  gp1.add_undirected_edge(0, 1);
  EXPECT_THROW(DualGraph(g1.freeze(), gp1.freeze(), 0),
               std::invalid_argument);
  // Unreachable node in G.
  CsrGraphBuilder g2(3);
  g2.add_undirected_edge(0, 1);
  CsrGraphBuilder gp2(3);
  gp2.add_undirected_edge(0, 1);
  gp2.add_undirected_edge(1, 2);
  EXPECT_THROW(DualGraph(g2.freeze(), gp2.freeze(), 0),
               std::invalid_argument);
}

TEST(Graph, ReleaseEdgeIndexKeepsSemantics) {
  Graph g(5);
  g.reserve_edges(8);
  g.add_undirected_edge(0, 1);
  g.add_undirected_edge(1, 2);
  Graph indexed = g;
  g.release_edge_index();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);  // dup still caught
  g.add_undirected_edge(0, 2);  // adding after release stays legal
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 6u);
  // Equality works across indexed/released representations.
  EXPECT_FALSE(g == indexed);
  indexed.add_undirected_edge(0, 2);
  EXPECT_TRUE(g == indexed);
}

TEST(GraphAlg, CsrBfsMatchesGraphBfs) {
  const Graph g = gen::gnp_connected(40, 0.08, 7);
  const CsrGraph csr(g);
  EXPECT_EQ(graphalg::bfs_distances(csr, 0), graphalg::bfs_distances(g, 0));
  EXPECT_TRUE(graphalg::all_reachable(csr, 0));
}

TEST(CsrGraph, OffsetOverflowGuardFailsLoudlyPast32Bit) {
  // Every freeze path (Graph snapshot, builder freeze) funnels its
  // post-dedup edge count through require_edges_fit; offsets are 32-bit, so
  // one edge past kMaxEdges must be a clear error, never a silent wrap. The
  // guard is exercised directly — materializing 2^32 edges (32+ GB) in a
  // unit test is not an option, which is exactly why it is a testable
  // seam.
  EXPECT_NO_THROW(CsrGraph::require_edges_fit(0));
  EXPECT_NO_THROW(CsrGraph::require_edges_fit(CsrGraph::kMaxEdges));
  EXPECT_THROW(CsrGraph::require_edges_fit(CsrGraph::kMaxEdges + 1),
               std::invalid_argument);
  EXPECT_THROW(CsrGraph::require_edges_fit(std::size_t{1} << 33),
               std::invalid_argument);
  try {
    CsrGraph::require_edges_fit(std::uint64_t{1} << 32);
    FAIL() << "guard accepted 2^32 edges";
  } catch (const std::invalid_argument& e) {
    // The message must say what overflowed and name the way forward.
    EXPECT_NE(std::string(e.what()).find("32-bit"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("64-bit"), std::string::npos)
        << e.what();
  }
  // Normal freezes are untouched by the guard.
  CsrGraphBuilder builder(3);
  builder.add_undirected_edge(0, 1);
  builder.add_undirected_edge(1, 2);
  EXPECT_EQ(builder.freeze().edge_count(), 4u);
}

}  // namespace
}  // namespace dualrad
