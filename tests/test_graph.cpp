#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/dual_builders.hpp"
#include "graph/dual_graph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace dualrad {
namespace {

TEST(Graph, EmptyGraphHasNoEdges) {
  Graph g(5);
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, AddEdgeIsDirected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_FALSE(g.is_undirected());
}

TEST(Graph, AddUndirectedEdgeAddsBoth) {
  Graph g(3);
  g.add_undirected_edge(1, 2);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_TRUE(g.is_undirected());
}

TEST(Graph, RejectsSelfLoop) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRange) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(g.add_edge(-1, 0), std::invalid_argument);
}

TEST(Graph, SubgraphDetection) {
  Graph small(4), big(4);
  small.add_edge(0, 1);
  big.add_edge(0, 1);
  big.add_edge(1, 2);
  EXPECT_TRUE(small.is_subgraph_of(big));
  EXPECT_FALSE(big.is_subgraph_of(small));
}

TEST(Graph, MaxDegrees) {
  Graph g = gen::star(5);
  EXPECT_EQ(g.max_out_degree(), 4u);
  EXPECT_EQ(g.max_in_degree(), 4u);
}

TEST(CsrGraph, SnapshotPreservesInsertionOrder) {
  Graph g(5);
  g.add_edge(0, 3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  const CsrGraph csr(g);
  EXPECT_EQ(csr.node_count(), 5);
  EXPECT_EQ(csr.edge_count(), 4u);
  // Rows must mirror Graph::out_neighbors exactly — the round engine's
  // arrival order (and thus bit-identical execution) depends on it.
  for (NodeId u = 0; u < 5; ++u) {
    const auto row = csr.row(u);
    ASSERT_EQ(row.size(), g.out_neighbors(u).size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(row[i], g.out_neighbors(u)[i]);
    }
    EXPECT_EQ(csr.out_degree(u), g.out_degree(u));
  }
}

TEST(CsrGraph, ContainsMatchesHasEdge) {
  const Graph g = gen::gnp_connected(40, 0.15, 3);
  const CsrGraph csr(g);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(csr.contains(u, v), g.has_edge(u, v)) << u << "->" << v;
    }
  }
  EXPECT_FALSE(csr.contains(-1, 0));
  EXPECT_FALSE(csr.contains(0, 40));
}

TEST(CsrGraph, EmptyAndIsolatedNodes) {
  const CsrGraph empty{};
  EXPECT_EQ(empty.node_count(), 0);
  Graph g(3);  // no edges at all
  const CsrGraph csr(g);
  EXPECT_EQ(csr.edge_count(), 0u);
  EXPECT_TRUE(csr.row(1).empty());
  EXPECT_FALSE(csr.contains(0, 1));
}

TEST(ScaleFamilies, LayeredSparseIsValidAndBoundedDegree) {
  const duals::LayeredSparseParams params{
      .layers = 20, .width = 10, .fwd_degree = 3, .unreliable_degree = 2,
      .seed = 7};
  // DualGraph construction validates E subset of E' and source reachability.
  const DualGraph net = duals::layered_sparse(params);
  EXPECT_EQ(net.node_count(), 201);
  EXPECT_TRUE(net.is_undirected());
  // Degrees stay O(fwd + unreliable) regardless of n: each node draws at
  // most 3 parents, receives expected 3 child links, and 2+2 skip links.
  EXPECT_LE(net.g_prime().max_in_degree(), 60u);
  EXPECT_GT(net.unreliable_edge_count(), 0u);
  // Deterministic: same params, same network.
  EXPECT_TRUE(net.g() == duals::layered_sparse(params).g());
}

TEST(ScaleFamilies, GrayZoneGridIsValidAndDeterministic) {
  const duals::GrayZoneGridParams params{.n = 300, .mean_degree = 9.0,
                                         .seed = 13};
  const DualGraph net = duals::gray_zone_grid(params);
  EXPECT_EQ(net.node_count(), 300);
  EXPECT_TRUE(net.is_undirected());
  EXPECT_GT(net.unreliable_edge_count(), 0u);
  EXPECT_TRUE(net.g() == duals::gray_zone_grid(params).g());
  // Every node reachable (the constructor asserts it; double-check here).
  const auto d = graphalg::bfs_distances(net.g(), 0);
  for (Round dist : d) EXPECT_NE(dist, kNever);
}

TEST(GraphAlg, BfsDistancesOnPath) {
  Graph g = gen::path(5);
  const auto d = graphalg::bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[static_cast<std::size_t>(v)], v);
}

TEST(GraphAlg, UnreachableIsNever) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = graphalg::bfs_distances(g, 0);
  EXPECT_EQ(d[2], kNever);
  EXPECT_FALSE(graphalg::all_reachable(g, 0));
}

TEST(GraphAlg, DiameterOfCycle) {
  EXPECT_EQ(graphalg::diameter(gen::cycle(6)), 3);
  EXPECT_EQ(graphalg::diameter(gen::clique(6)), 1);
}

TEST(GraphAlg, EccentricityOfStarCenter) {
  EXPECT_EQ(graphalg::eccentricity(gen::star(9), 0), 1);
  EXPECT_EQ(graphalg::eccentricity(gen::star(9), 3), 2);
}

TEST(GraphAlg, WeaklyConnected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(graphalg::weakly_connected(g));
  g.add_edge(2, 1);
  EXPECT_TRUE(graphalg::weakly_connected(g));
}

TEST(Generators, CliqueEdgeCount) {
  const Graph g = gen::clique(7);
  EXPECT_EQ(g.edge_count(), 7u * 6u);  // directed count
  EXPECT_TRUE(g.is_undirected());
}

TEST(Generators, GridShape) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_TRUE(g.is_undirected());
  EXPECT_EQ(graphalg::diameter(g), 2 + 3);
}

TEST(Generators, RandomTreeIsConnectedAndAcyclic) {
  const Graph g = gen::random_tree(40, 7);
  EXPECT_TRUE(graphalg::all_reachable(g, 0));
  EXPECT_EQ(g.edge_count(), 2u * 39u);
}

TEST(Generators, GnpConnected) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Graph g = gen::gnp_connected(30, 0.05, seed);
    EXPECT_TRUE(graphalg::all_reachable(g, 0));
  }
}

TEST(Generators, CompleteLayeredStructure) {
  const Graph g = gen::complete_layered({1, 2, 2});
  // node 0 - layer 0; nodes 1,2 - layer 1; nodes 3,4 - layer 2.
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));   // intra-layer
  EXPECT_TRUE(g.has_edge(2, 4));   // adjacent layers
  EXPECT_FALSE(g.has_edge(0, 3));  // non-adjacent layers
}

TEST(Generators, DirectedLayeredIsForwardOnly) {
  const Graph g = gen::directed_layered({1, 2, 2});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(1, 2));  // no intra-layer edges
}

TEST(DualGraph, ValidatesSubsetAndReachability) {
  Graph g(3), gp(3);
  g.add_undirected_edge(0, 1);
  gp.add_undirected_edge(0, 1);
  gp.add_undirected_edge(1, 2);
  // node 2 unreachable in G:
  EXPECT_THROW(DualGraph(g, gp, 0), std::invalid_argument);
  g.add_undirected_edge(1, 2);
  gp.add_undirected_edge(0, 2);
  const DualGraph net(g, gp, 0);
  EXPECT_EQ(net.node_count(), 3);
  EXPECT_FALSE(net.is_classical());
  EXPECT_TRUE(net.is_undirected());
}

TEST(DualGraph, RejectsEdgeNotInGPrime) {
  Graph g(3), gp(3);
  g.add_undirected_edge(0, 1);
  g.add_undirected_edge(1, 2);
  gp.add_undirected_edge(0, 1);
  EXPECT_THROW(DualGraph(g, gp, 0), std::invalid_argument);
}

TEST(DualGraph, UnreliableOutIsGPrimeMinusG) {
  const DualGraph net = duals::bridge_network(6);
  const auto layout = duals::bridge_layout(6);
  // A clique node (not bridge) has exactly one unreliable target: receiver.
  const auto& extra = net.unreliable_out(2);
  ASSERT_EQ(extra.size(), 1u);
  EXPECT_EQ(extra.front(), layout.receiver);
  EXPECT_TRUE(net.unreliable_out(layout.bridge).empty());
}

TEST(DualGraph, ClassicalHasNoUnreliableEdges) {
  const DualGraph net = make_classical(gen::clique(5), 0);
  EXPECT_TRUE(net.is_classical());
  EXPECT_EQ(net.unreliable_edge_count(), 0u);
}

TEST(DualBuilders, BridgeNetworkIs2Broadcastable) {
  const DualGraph net = duals::bridge_network(8);
  const auto layout = duals::bridge_layout(8);
  // Source can reach everyone within 2 hops in G via the bridge.
  const auto d = graphalg::bfs_distances(net.g(), net.source());
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_LE(d[static_cast<std::size_t>(v)], 2);
  }
  EXPECT_EQ(d[static_cast<std::size_t>(layout.receiver)], 2);
}

TEST(DualBuilders, Theorem12NetworkLayers) {
  const NodeId n = 17;  // n-1 = 16
  const DualGraph net = duals::theorem12_network(n);
  const auto layer = duals::theorem12_layers(n);
  EXPECT_EQ(layer[0], 0);
  EXPECT_EQ(layer[1], 1);
  EXPECT_EQ(layer[2], 1);
  EXPECT_EQ(layer[3], 2);
  // Edges: same layer or adjacent layers only in G.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      const auto lu = layer[static_cast<std::size_t>(u)];
      const auto lv = layer[static_cast<std::size_t>(v)];
      EXPECT_EQ(net.g().has_edge(u, v), std::abs(lu - lv) <= 1) << u << " " << v;
      EXPECT_TRUE(net.g_prime().has_edge(u, v));
    }
  }
}

TEST(DualBuilders, Theorem12RequiresPowerOfTwo) {
  EXPECT_THROW(duals::theorem12_network(12), std::invalid_argument);
}

TEST(DualBuilders, GrayZoneIsValidDual) {
  for (std::uint64_t seed : {1, 5, 9}) {
    duals::GrayZoneParams params;
    params.n = 40;
    params.seed = seed;
    const DualGraph net = duals::gray_zone(params);
    EXPECT_TRUE(net.g().is_subgraph_of(net.g_prime()));
    EXPECT_TRUE(graphalg::all_reachable(net.g(), net.source()));
    EXPECT_TRUE(net.is_undirected());
  }
}

TEST(DualBuilders, BackbonePlusUnreliable) {
  duals::BackboneParams params;
  params.n = 50;
  params.p_unreliable = 0.3;
  params.seed = 11;
  const DualGraph net = duals::backbone_plus_unreliable(params);
  EXPECT_TRUE(graphalg::all_reachable(net.g(), 0));
  EXPECT_GT(net.unreliable_edge_count(), 0u);
}

TEST(DualBuilders, StripUnreliableGivesClassical) {
  const DualGraph net = duals::bridge_network(10);
  const DualGraph classical = duals::strip_unreliable(net);
  EXPECT_TRUE(classical.is_classical());
  EXPECT_EQ(classical.g().edge_count(), net.g().edge_count());
}

TEST(DualBuilders, LayeredCompleteGPrime) {
  const DualGraph net = duals::layered_complete_gprime(4, 3);
  EXPECT_EQ(net.node_count(), 1 + 3 * 3);
  EXPECT_TRUE(graphalg::all_reachable(net.g(), 0));
  EXPECT_FALSE(net.is_classical());
}

}  // namespace
}  // namespace dualrad
