#include <gtest/gtest.h>

#include "graph/broadcastability.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"
#include "lowerbound/theorem11_network.hpp"

namespace dualrad {
namespace {

namespace bc = broadcastability;

TEST(Broadcastability, BridgeNetworkIs2Broadcastable) {
  const DualGraph net = duals::bridge_network(10);
  EXPECT_EQ(bc::broadcastability_lower_bound(net), 2);
  const auto exact = bc::exact_oracle_schedule(net);
  EXPECT_EQ(exact.rounds(), 2);  // source, then bridge
  EXPECT_EQ(bc::coverage_after(net, exact), 10);
}

TEST(Broadcastability, ExactMatchesTheProofSchedule) {
  const DualGraph net = duals::bridge_network(8);
  const auto layout = duals::bridge_layout(8);
  const auto exact = bc::exact_oracle_schedule(net);
  ASSERT_EQ(exact.senders.size(), 2u);
  EXPECT_EQ(exact.senders[0], layout.source);
  EXPECT_EQ(exact.senders[1], layout.bridge);
}

TEST(Broadcastability, GreedyIsValidOnAllFamilies) {
  const DualGraph nets[] = {
      duals::bridge_network(16),
      duals::theorem12_network(17),
      duals::layered_complete_gprime(5, 3),
      duals::gray_zone({.n = 40, .seed = 2}),
      lowerbound::theorem11_network(36),
  };
  for (const DualGraph& net : nets) {
    const auto greedy = bc::greedy_oracle_schedule(net);
    EXPECT_EQ(bc::coverage_after(net, greedy), net.node_count());
    EXPECT_GE(greedy.rounds(), bc::broadcastability_lower_bound(net));
  }
}

TEST(Broadcastability, GreedyNeverWorseThanNodeCount) {
  // One new node per round minimum: schedule length <= n - 1.
  for (NodeId n : {8, 16, 24}) {
    const DualGraph net = duals::bridge_network(n);
    EXPECT_LE(bc::greedy_oracle_schedule(net).rounds(), n - 1);
  }
}

TEST(Broadcastability, ExactNoLongerThanGreedy) {
  const DualGraph nets[] = {
      duals::bridge_network(8),
      make_classical(gen::path(7), 0),
      make_classical(gen::star(7), 0),
  };
  for (const DualGraph& net : nets) {
    const auto exact = bc::exact_oracle_schedule(net, 10);
    const auto greedy = bc::greedy_oracle_schedule(net);
    EXPECT_LE(exact.rounds(), greedy.rounds());
    EXPECT_EQ(bc::coverage_after(net, exact), net.node_count());
  }
}

TEST(Broadcastability, PathNeedsNMinus1Rounds) {
  const DualGraph net = make_classical(gen::path(6), 0);
  EXPECT_EQ(bc::broadcastability_lower_bound(net), 5);
  EXPECT_EQ(bc::exact_oracle_schedule(net).rounds(), 5);
}

TEST(Broadcastability, StarNeeds1Round) {
  const DualGraph net = make_classical(gen::star(9), 0);
  EXPECT_EQ(bc::exact_oracle_schedule(net).rounds(), 1);
}

TEST(Broadcastability, Theorem12NetworkDepth) {
  // Layers 0..(n-1)/2: lower bound is the number of layers.
  const DualGraph net = duals::theorem12_network(9);
  EXPECT_EQ(bc::broadcastability_lower_bound(net), 4);
}

TEST(Broadcastability, CoverageRejectsUncoveredSender) {
  const DualGraph net = duals::bridge_network(8);
  bc::OracleSchedule bad;
  bad.senders = {duals::bridge_layout(8).receiver};  // uncovered at round 1
  EXPECT_THROW((void)bc::coverage_after(net, bad), std::invalid_argument);
}

}  // namespace
}  // namespace dualrad
