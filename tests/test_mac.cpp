#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "adversary/basic_adversaries.hpp"
#include "algorithms/decay.hpp"
#include "campaign/builtin_scenarios.hpp"
#include "campaign/engine.hpp"
#include "campaign/export.hpp"
#include "graph/dual_builders.hpp"
#include "mac/bmmb.hpp"
#include "mac/decay_mac.hpp"
#include "mac/mac_latency.hpp"

namespace dualrad {
namespace {

// --- k=1 regression: BMMB over DecayMac reproduces plain Decay ---------------

// With one token, BMMB's idle cycling re-broadcasts the token back to back,
// so the DecayMac transmission schedule is *identical* to plain Decay (same
// per-round coin stream, same probabilities, no gap between runs) for any
// run length. The whole execution — completion round, every first-reception
// round, every send — must therefore match.
void expect_matches_plain_decay(StartRule start, std::uint64_t seed) {
  const NodeId n = 33;
  const DualGraph net = duals::strip_unreliable(duals::bridge_network(n));
  SimConfig config;
  config.rule = CollisionRule::CR3;
  config.start = start;
  config.max_rounds = 100'000;
  config.seed = seed;

  BenignAdversary adversary;
  const SimResult plain =
      run_broadcast(net, make_decay_factory(n), adversary, config);
  ASSERT_TRUE(plain.completed);

  const SimResult layered =
      run_broadcast(net, mac::make_bmmb_factory(n), adversary, config);

  EXPECT_TRUE(layered.completed);
  EXPECT_EQ(layered.completion_round, plain.completion_round);
  EXPECT_EQ(layered.first_token, plain.first_token);
  EXPECT_EQ(layered.total_sends, plain.total_sends);
}

TEST(BmmbDecayRegression, MatchesPlainDecaySynchronousStart) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    expect_matches_plain_decay(StartRule::Synchronous, seed);
  }
}

TEST(BmmbDecayRegression, MatchesPlainDecayAsynchronousStart) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    expect_matches_plain_decay(StartRule::Asynchronous, seed);
  }
}

// --- multi-token machinery ---------------------------------------------------

TEST(MultiMessage, FourTokensCompleteOnLayeredBenign) {
  const DualGraph net = duals::layered_complete_gprime(6, 3);
  const NodeId n = net.node_count();
  SimConfig config;
  config.max_rounds = 200'000;
  config.token_sources = mac::spread_token_sources(net, 4);
  BenignAdversary adversary;
  const SimResult result =
      run_broadcast(net, mac::make_bmmb_factory(n), adversary, config);

  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.token_count(), 4);
  for (std::size_t t = 0; t < 4; ++t) {
    const auto src = static_cast<std::size_t>(config.token_sources[t]);
    EXPECT_EQ(result.token_first[t][src], 0) << "token " << t + 1;
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_NE(result.token_first[t][static_cast<std::size_t>(v)], kNever)
          << "token " << t + 1 << " node " << v;
    }
  }
  // The single-token view is the first token's coverage.
  EXPECT_EQ(result.first_token, result.token_first.front());
  // Completion is the last first-reception over all (token, node) pairs.
  Round last = 0;
  for (const auto& first : result.token_first) {
    for (Round r : first) last = std::max(last, r);
  }
  EXPECT_EQ(result.completion_round, last);
}

TEST(MultiMessage, SingleTokenResultKeepsLegacyShape) {
  const DualGraph net = duals::layered_complete_gprime(4, 3);
  BenignAdversary adversary;
  SimConfig config;
  config.max_rounds = 100'000;
  const SimResult result = run_broadcast(
      net, mac::make_bmmb_factory(net.node_count()), adversary, config);
  EXPECT_EQ(result.token_count(), 1);
  EXPECT_EQ(result.first_token, result.token_first.front());
}

TEST(MultiMessage, RejectsInvalidTokenSources) {
  const DualGraph net = duals::layered_complete_gprime(4, 3);
  BenignAdversary adversary;
  SimConfig config;
  config.token_sources = {0, 0};
  EXPECT_THROW((void)run_broadcast(net, mac::make_bmmb_factory(net.node_count()),
                                   adversary, config),
               std::invalid_argument);
  config.token_sources = {0, net.node_count()};
  EXPECT_THROW((void)run_broadcast(net, mac::make_bmmb_factory(net.node_count()),
                                   adversary, config),
               std::invalid_argument);
}

TEST(MultiMessage, SpreadSourcesAreDistinctAndStartAtTheSource) {
  const DualGraph net = duals::layered_complete_gprime(8, 4);
  for (TokenId k : {1, 4, 16}) {
    const std::vector<NodeId> sources = mac::spread_token_sources(net, k);
    ASSERT_EQ(sources.size(), static_cast<std::size_t>(k));
    EXPECT_EQ(sources.front(), net.source());
    std::set<NodeId> distinct(sources.begin(), sources.end());
    EXPECT_EQ(distinct.size(), sources.size());
    for (NodeId s : sources) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, net.node_count());
    }
  }
}

// --- measured ack / progress latencies ---------------------------------------

TEST(MacLatency, AckAndProgressLatenciesAreMeasured) {
  const DualGraph net = duals::layered_complete_gprime(6, 3);
  const NodeId n = net.node_count();
  SimConfig config;
  config.max_rounds = 200'000;
  config.token_sources = mac::spread_token_sources(net, 4);
  BenignAdversary adversary;
  const SimResult result =
      run_broadcast(net, mac::make_bmmb_factory(n), adversary, config);
  ASSERT_TRUE(result.completed);
  EXPECT_FALSE(result.process_metrics.empty());

  const mac::MacLatencySummary latency = mac::measure_mac_latency(net, result);
  EXPECT_GT(latency.acks, 0u);
  // An immediately-active message acks exactly one run after bcast; queue
  // wait only adds to that.
  EXPECT_GE(latency.ack_max, static_cast<double>(mac::decay_mac_run_length(n)));
  EXPECT_GE(latency.ack_mean, static_cast<double>(mac::decay_mac_run_length(n)));
  EXPECT_GT(latency.prog_samples, 0u);
  EXPECT_GE(latency.prog_max, 1);
  EXPECT_GE(latency.prog_mean, 1.0);
  EXPECT_EQ(latency.unreached, 0u);
}

TEST(MacLatency, NonMacWorkloadsReportNoAcks) {
  const DualGraph net = duals::strip_unreliable(duals::bridge_network(9));
  BenignAdversary adversary;
  SimConfig config;
  config.rule = CollisionRule::CR3;
  config.start = StartRule::Synchronous;
  const SimResult result =
      run_broadcast(net, make_decay_factory(9), adversary, config);
  const mac::MacLatencySummary latency = mac::measure_mac_latency(net, result);
  EXPECT_EQ(latency.acks, 0u);
  EXPECT_EQ(latency.ack_max, -1.0);
  EXPECT_EQ(latency.ack_mean, -1.0);
}

// --- campaign integration ----------------------------------------------------

TEST(MacScenarios, CatalogueHasTheMultiMessageSuite) {
  const campaign::ScenarioRegistry registry = campaign::builtin_registry();
  const std::vector<campaign::Scenario> mac_scenarios = registry.match("mac");
  EXPECT_GE(mac_scenarios.size(), 6u);
  std::set<std::int32_t> ks;
  bool layered = false, grayzone = false;
  for (const campaign::Scenario& s : mac_scenarios) {
    EXPECT_EQ(s.name.rfind("mac/", 0), 0u) << s.name;
    EXPECT_FALSE(s.token_sources.empty()) << s.name;
    ks.insert(static_cast<std::int32_t>(s.token_sources.size()));
    layered = layered || s.name.find("/layered/") != std::string::npos;
    grayzone = grayzone || s.name.find("/grayzone/") != std::string::npos;
  }
  EXPECT_TRUE(ks.contains(1));
  EXPECT_TRUE(ks.contains(4));
  EXPECT_TRUE(ks.contains(16));
  EXPECT_TRUE(layered);
  EXPECT_TRUE(grayzone);
}

// Acceptance: the byte-identity determinism contract holds with the mac/*
// scenarios in the catalogue, and the rows carry the right token counts.
TEST(MacScenarios, MacCampaignByteIdenticalAcrossWorkerCounts) {
  const campaign::ScenarioRegistry registry = campaign::builtin_registry();
  const std::vector<campaign::Scenario> scenarios = registry.match("mac");
  ASSERT_FALSE(scenarios.empty());
  std::string baseline;
  for (unsigned threads : {1u, 4u, 8u}) {
    campaign::CampaignConfig config;
    config.master_seed = 2026;
    config.threads = threads;
    config.trials_override = 1;
    const campaign::CampaignResult result =
        campaign::run_campaign(scenarios, config);
    const std::string jsonl = campaign::trials_to_jsonl(result.trials);
    if (threads == 1u) {
      baseline = jsonl;
      for (const campaign::TrialRow& row : result.trials) {
        const campaign::Scenario* spec = nullptr;
        for (const campaign::Scenario& s : scenarios) {
          if (s.name == row.scenario) spec = &s;
        }
        ASSERT_NE(spec, nullptr) << row.scenario;
        EXPECT_EQ(static_cast<std::size_t>(row.tokens),
                  spec->token_sources.size())
            << row.scenario;
      }
    } else {
      EXPECT_EQ(jsonl, baseline) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dualrad
