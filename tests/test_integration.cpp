#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/decay.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/strong_select.hpp"
#include "algorithms/uniform_gossip.hpp"
#include "core/simulator.hpp"
#include "graph/algorithms.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"
#include "lowerbound/theorem11_network.hpp"

namespace dualrad {
namespace {

/// A legal but erratic adversary: fires random subsets of unreliable edges
/// and resolves CR4 to random legal outcomes. Used for failure-injection
/// sweeps: algorithms must tolerate *any* legal adversary.
class FuzzAdversary : public Adversary {
 public:
  explicit FuzzAdversary(std::uint64_t seed) : rng_(seed) {}

  void choose_unreliable_reach(const AdversaryView& view,
                               std::span<const NodeId> senders,
                               ReachSink& sink) override {
    for (std::size_t i = 0; i < senders.size(); ++i) {
      for (NodeId v : view.unreliable->row(senders[i])) {
        // Heavily biased coin that changes flavor every few rounds.
        const double p = (view.round / 7) % 3 == 0   ? 0.9
                         : (view.round / 7) % 3 == 1 ? 0.1
                                                     : 0.5;
        if (rng_.bernoulli(p)) sink.add(i, v);
      }
    }
  }

  Reception resolve_cr4(const AdversaryView&, NodeId,
                        const std::vector<Message>& arrivals) override {
    const auto roll = rng_.below(arrivals.size() + 1);
    if (roll == arrivals.size()) return Reception::silence();
    return Reception::of(arrivals[static_cast<std::size_t>(roll)]);
  }

 private:
  StreamRng rng_;
};

/// Audit a full trace against the model's delivery rules.
void audit_trace(const DualGraph& net, const SimResult& result) {
  std::vector<Round> token_seen(static_cast<std::size_t>(net.node_count()),
                                kNever);
  token_seen[static_cast<std::size_t>(net.source())] = 0;
  for (const auto& record : result.trace.rounds) {
    for (const auto& sender : record.senders) {
      // Every reached node is a G'-out-neighbor...
      std::set<NodeId> reached(sender.reached.begin(), sender.reached.end());
      EXPECT_EQ(reached.size(), sender.reached.size()) << "duplicate reach";
      for (NodeId v : sender.reached) {
        EXPECT_TRUE(net.g_prime().has_edge(sender.node, v))
            << sender.node << "->" << v;
      }
      // ...and all G-out-neighbors are reached.
      for (NodeId v : net.g().out_neighbors(sender.node)) {
        EXPECT_TRUE(reached.contains(v))
            << "reliable edge skipped: " << sender.node << "->" << v;
      }
      // Token honesty: nobody transmits the token before holding it.
      if (sender.message.token) {
        EXPECT_NE(token_seen[static_cast<std::size_t>(sender.node)], kNever);
      }
    }
    // Token causality: a token reception requires a token sender that
    // reached this node in this round.
    for (NodeId v = 0; v < net.node_count(); ++v) {
      const auto& rec = record.receptions[static_cast<std::size_t>(v)];
      if (!rec.has_token()) continue;
      const bool justified = std::any_of(
          record.senders.begin(), record.senders.end(),
          [&](const SenderRecord& s) {
            return s.message.token &&
                   (s.node == v ||
                    std::find(s.reached.begin(), s.reached.end(), v) !=
                        s.reached.end());
          });
      EXPECT_TRUE(justified) << "round " << record.round << " node " << v;
      auto& seen = token_seen[static_cast<std::size_t>(v)];
      if (seen == kNever) seen = record.round;
    }
  }
  // first_token matches the audit's reconstruction.
  for (NodeId v = 0; v < net.node_count(); ++v) {
    EXPECT_EQ(result.first_token[static_cast<std::size_t>(v)],
              token_seen[static_cast<std::size_t>(v)])
        << v;
  }
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, TraceInvariantsHoldUnderErraticAdversary) {
  const std::uint64_t seed = GetParam();
  const DualGraph net = duals::backbone_plus_unreliable(
      {.n = 24, .p_reliable = 0.08, .p_unreliable = 0.25, .seed = seed});
  for (const CollisionRule rule :
       {CollisionRule::CR1, CollisionRule::CR4}) {
    FuzzAdversary adversary(seed * 7 + 1);
    SimConfig config;
    config.rule = rule;
    config.start = StartRule::Asynchronous;
    config.max_rounds = 500'000;
    config.seed = seed;
    config.trace = TraceLevel::Full;
    const ProcessFactory factory =
        make_harmonic_factory(net.node_count(), {.T = 8});
    const SimResult result = run_broadcast(net, factory, adversary, config);
    EXPECT_TRUE(result.completed);
    audit_trace(net, result);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Integration, StrongSelectTraceAudit) {
  const DualGraph net = duals::layered_complete_gprime(5, 3);
  GreedyBlockerAdversary adversary;
  SimConfig config;
  config.max_rounds = 500'000;
  config.trace = TraceLevel::Full;
  const SimResult result = run_broadcast(
      net, make_strong_select_factory(net.node_count()), adversary, config);
  ASSERT_TRUE(result.completed);
  audit_trace(net, result);
}

TEST(Integration, SameSeedSameExecution) {
  const DualGraph net = duals::gray_zone({.n = 40, .seed = 3});
  const ProcessFactory factory = make_harmonic_factory(net.node_count());
  SimConfig config;
  config.max_rounds = 1'000'000;
  config.seed = 99;
  BernoulliAdversary a1(0.3, 5), a2(0.3, 5);
  const SimResult r1 = run_broadcast(net, factory, a1, config);
  const SimResult r2 = run_broadcast(net, factory, a2, config);
  EXPECT_EQ(r1.completion_round, r2.completion_round);
  EXPECT_EQ(r1.first_token, r2.first_token);
  EXPECT_EQ(r1.total_sends, r2.total_sends);
}

TEST(Integration, DifferentSeedsDiffer) {
  const DualGraph net = duals::gray_zone({.n = 40, .seed = 3});
  const ProcessFactory factory = make_harmonic_factory(net.node_count());
  SimConfig c1, c2;
  c1.max_rounds = c2.max_rounds = 1'000'000;
  c1.seed = 1;
  c2.seed = 2;
  BenignAdversary benign;
  const SimResult r1 = run_broadcast(net, factory, benign, c1);
  const SimResult r2 = run_broadcast(net, factory, benign, c2);
  EXPECT_NE(r1.total_sends, r2.total_sends);
}

TEST(Integration, DeterministicAlgorithmIgnoresSeed) {
  const DualGraph net = duals::bridge_network(16);
  const ProcessFactory factory = make_strong_select_factory(16);
  SimConfig c1, c2;
  c1.max_rounds = c2.max_rounds = 1'000'000;
  c1.seed = 1;
  c2.seed = 424242;
  GreedyBlockerAdversary g1, g2;
  const SimResult r1 = run_broadcast(net, factory, g1, c1);
  const SimResult r2 = run_broadcast(net, factory, g2, c2);
  EXPECT_EQ(r1.completion_round, r2.completion_round);
  EXPECT_EQ(r1.first_token, r2.first_token);
}

TEST(Integration, UniformGossipCompletesOnBridge) {
  const NodeId n = 20;
  const DualGraph net = duals::bridge_network(n);
  GreedyBlockerAdversary adversary;
  SimConfig config;
  config.max_rounds = 2'000'000;
  const SimResult result = run_broadcast(
      net, make_uniform_gossip_factory(n), adversary, config);
  EXPECT_TRUE(result.completed);
}

TEST(Integration, HarmonicWithinPaperBound) {
  // Theorem 18: with T = ceil(12 ln(n/eps)), completion within 2 n T H(n)
  // w.p. >= 1 - eps. Check across seeds with eps = 0.1: allow at most 2/12
  // misses of the *bound* (still expect completion).
  const DualGraph net = duals::layered_complete_gprime(8, 4);
  const NodeId n = net.node_count();
  const Round bound = harmonic_round_bound(n, harmonic_T(n, {.eps = 0.1}));
  int over_bound = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    GreedyBlockerAdversary adversary;
    SimConfig config;
    config.max_rounds = 4 * bound;
    config.seed = seed;
    const SimResult result = run_broadcast(
        net, make_harmonic_factory(n, {.eps = 0.1}), adversary, config);
    ASSERT_TRUE(result.completed) << "seed " << seed;
    if (result.completion_round > bound) ++over_bound;
  }
  EXPECT_LE(over_bound, 2);
}

TEST(Integration, StrongSelectTerminationBound) {
  // Every node stops sending by done_round_bound(token round): after the
  // last first_token plus that horizon, no sends occur.
  const DualGraph net = duals::bridge_network(16);
  const auto schedule = make_strong_select_schedule(16);
  GreedyBlockerAdversary adversary;
  SimConfig config;
  config.max_rounds = schedule->done_round_bound(2'000) + 2'000;
  config.trace = TraceLevel::Counts;
  config.stop_on_completion = false;
  const SimResult result = run_broadcast(net, make_strong_select_factory(16),
                                         adversary, config);
  ASSERT_TRUE(result.completed);
  Round last_token = 0;
  for (Round r : result.first_token) last_token = std::max(last_token, r);
  const Round horizon = schedule->done_round_bound(last_token);
  for (std::size_t r = static_cast<std::size_t>(horizon);
       r < result.trace.senders_per_round.size(); ++r) {
    EXPECT_EQ(result.trace.senders_per_round[r], 0u) << "round " << (r + 1);
  }
}

TEST(Integration, Theorem11NetworkBroadcastCompletes) {
  const DualGraph net = lowerbound::theorem11_network(64);
  GreedyBlockerAdversary adversary;
  SimConfig config;
  config.max_rounds = 5'000'000;
  const SimResult ss = run_broadcast(
      net, make_strong_select_factory(net.node_count()), adversary, config);
  EXPECT_TRUE(ss.completed);
  const SimResult rr = run_broadcast(
      net, make_round_robin_factory(net.node_count()), adversary, config);
  EXPECT_TRUE(rr.completed);
}

TEST(Integration, AsyncStartNeverBeatsOracleDistance) {
  // first_token[v] >= BFS distance in G' from the source (no causal
  // shortcut exists, even with adversary help).
  const DualGraph net = duals::gray_zone({.n = 48, .seed = 6});
  FullInterferenceAdversary adversary(true);
  SimConfig config;
  config.max_rounds = 2'000'000;
  const SimResult result = run_broadcast(
      net, make_harmonic_factory(net.node_count()), adversary, config);
  ASSERT_TRUE(result.completed);
  const auto dist = graphalg::bfs_distances(net.g_prime(), net.source());
  for (NodeId v = 0; v < net.node_count(); ++v) {
    EXPECT_GE(result.first_token[static_cast<std::size_t>(v)],
              dist[static_cast<std::size_t>(v)])
        << v;
  }
}

}  // namespace
}  // namespace dualrad
