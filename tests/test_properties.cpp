// Deeper property sweeps: schedule geometry invariants for Strong Select
// across many n, Theorem 12 against additional deterministic algorithms,
// empirical send-rate checks for the randomized algorithms, and clone
// equivalence (the contract the lower-bound builders rely on).

#include <gtest/gtest.h>

#include <cmath>

#include "adversary/basic_adversaries.hpp"
#include "algorithms/cms_oblivious.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/scheduled.hpp"
#include "algorithms/strong_select.hpp"
#include "algorithms/uniform_gossip.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"
#include "lowerbound/theorem12.hpp"
#include "selectors/ssf.hpp"

namespace dualrad {
namespace {

// ------------------------------------------- schedule geometry properties

class ScheduleGeometry : public ::testing::TestWithParam<NodeId> {};

TEST_P(ScheduleGeometry, EveryRoundBelongsToExactlyOneFamilySlot) {
  const NodeId n = GetParam();
  const auto schedule = make_strong_select_schedule(n);
  const Round L = schedule->epoch_length();
  // Per epoch, family s owns exactly 2^{s-1} rounds; slots increase by one
  // per owned round, never skipping.
  std::vector<Round> last_slot(static_cast<std::size_t>(schedule->s_max()) + 1,
                               -1);
  for (Round r = 1; r <= 4 * L; ++r) {
    const auto slot = schedule->slot_of_round(r);
    ASSERT_GE(slot.s, 1);
    ASSERT_LE(slot.s, schedule->s_max());
    EXPECT_EQ(slot.index, last_slot[static_cast<std::size_t>(slot.s)] + 1)
        << "family " << slot.s << " at round " << r;
    last_slot[static_cast<std::size_t>(slot.s)] = slot.index;
  }
  for (int s = 1; s <= schedule->s_max(); ++s) {
    EXPECT_EQ(last_slot[static_cast<std::size_t>(s)] + 1,
              4 * (Round{1} << (s - 1)));
  }
}

TEST_P(ScheduleGeometry, FamiliesAreStronglySelectiveSampled) {
  const NodeId n = GetParam();
  const auto schedule = make_strong_select_schedule(n);
  for (int s = 1; s <= schedule->s_max(); ++s) {
    const auto k = static_cast<NodeId>(
        std::min<Round>(Round{1} << s, static_cast<Round>(n)));
    EXPECT_EQ(sample_violations(schedule->family(s), k, 150,
                                static_cast<std::uint64_t>(n) * 31 + s),
              0u)
        << "family " << s << " n " << n;
  }
}

TEST_P(ScheduleGeometry, ParticipationWindowsDisjointPerToken) {
  const NodeId n = GetParam();
  const auto schedule = make_strong_select_schedule(n);
  for (const Round token : {Round{0}, Round{13}, Round{200}}) {
    for (int s = 1; s <= schedule->s_max(); ++s) {
      const Round start = schedule->participation_start(token, s);
      // The window [start, start + ell) starts at or after the first slot
      // following the token round.
      EXPECT_GE(start, schedule->slots_before(token, s));
      EXPECT_EQ(start % schedule->ell(s), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ManyN, ScheduleGeometry,
                         ::testing::Values(8, 16, 31, 64, 100, 256, 777, 1024));

// --------------------------------------------- Theorem 12, more algorithms

TEST(Theorem12More, CmsObliviousForcedPastBound) {
  const NodeId n = 17;
  const DualGraph net = duals::theorem12_network(n);
  const auto delta = static_cast<NodeId>(net.g_prime().max_in_degree());
  const auto result = lowerbound::run_theorem12(
      n, make_cms_oblivious_factory(n, {.delta = delta}));
  ASSERT_TRUE(result.valid);
  if (!result.stalled) {
    EXPECT_GE(result.total_rounds, result.guaranteed_bound);
    EXPECT_LT(result.covered_processes, n);
  }
}

TEST(Theorem12More, TdmaScheduleIsAlsoForced) {
  // Even a "perfect" id-ordered TDMA schedule is deterministic, so the
  // construction defeats it: the adversary controls the proc mapping, so
  // schedule position gives no node an exemption.
  const NodeId n = 17;
  std::vector<ProcessId> slots(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) slots[static_cast<std::size_t>(i)] = i;
  const auto result =
      lowerbound::run_theorem12(n, make_scheduled_factory(n, slots));
  ASSERT_TRUE(result.valid);
  if (!result.stalled) {
    EXPECT_GE(result.total_rounds, result.guaranteed_bound);
  }
}

TEST(Theorem12More, StrongSelectReplayIsLegal) {
  const NodeId n = 17;
  lowerbound::Theorem12Options options;
  options.build_script = true;
  const auto result =
      lowerbound::run_theorem12(n, make_strong_select_factory(n), options);
  ASSERT_TRUE(result.valid);
  if (result.stalled) GTEST_SKIP() << "stalled: nothing to replay";
  const DualGraph net = duals::theorem12_network(n);
  ScriptedAdversary adversary(result.script);
  SimConfig config;
  config.rule = CollisionRule::CR1;
  config.start = StartRule::Synchronous;
  config.max_rounds = result.total_rounds;
  config.stop_on_completion = false;
  const SimResult sim = run_broadcast(net, make_strong_select_factory(n),
                                      adversary, config);
  EXPECT_FALSE(sim.completed);
}

// --------------------------------------------------- empirical send rates

TEST(SendRates, HarmonicMatchesSchedule) {
  // A lone process with the token from round 0: over rounds in probability
  // step k the empirical send frequency should be ~1/(k+1).
  const NodeId n = 64;
  const Round T = 200;
  const auto factory = make_harmonic_factory(n, {.T = T});
  auto p = factory(1, n, 12345);
  p->on_activate(0, Message{true, 0, 0, 0});
  for (int step = 0; step < 4; ++step) {
    int sends = 0;
    for (Round r = step * T + 1; r <= (step + 1) * T; ++r) {
      if (p->next_action(r).send) ++sends;
      p->on_receive(r, Reception::silence());
    }
    const double expect = 1.0 / (step + 1);
    EXPECT_NEAR(static_cast<double>(sends) / static_cast<double>(T), expect,
                0.12)
        << "step " << step;
  }
}

TEST(SendRates, UniformGossipFrequency) {
  const NodeId n = 32;
  const auto factory = make_uniform_gossip_factory(n, {.p = 0.2});
  auto p = factory(3, n, 777);
  p->on_activate(0, Message{true, 0, 0, 0});
  int sends = 0;
  const int rounds = 5000;
  for (Round r = 1; r <= rounds; ++r) {
    if (p->next_action(r).send) ++sends;
    p->on_receive(r, Reception::silence());
  }
  EXPECT_NEAR(static_cast<double>(sends) / rounds, 0.2, 0.02);
}

// ------------------------------------------------------ clone equivalence

class CloneEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(CloneEquivalence, CloneBehavesIdentically) {
  const std::string algo = GetParam();
  const NodeId n = 32;
  ProcessFactory factory;
  if (algo == "strong_select") {
    factory = make_strong_select_factory(n);
  } else if (algo == "harmonic") {
    factory = make_harmonic_factory(n, {.T = 4});
  } else if (algo == "gossip") {
    factory = make_uniform_gossip_factory(n);
  } else {
    factory = make_cms_oblivious_factory(n, {.delta = 4});
  }
  auto original = factory(5, n, 42);
  original->on_activate(0, std::nullopt);
  // Drive through a prefix with mixed receptions, clone, then verify both
  // copies evolve identically for a long suffix.
  const CounterRng mixer(9);
  for (Round r = 1; r <= 20; ++r) {
    (void)original->next_action(r);
    const Reception rec = mixer.bernoulli(0.3, r)
                              ? Reception::of(Message{true, 2, r, 0})
                              : Reception::silence();
    original->on_receive(r, rec);
  }
  auto copy = original->clone();
  ASSERT_EQ(copy->id(), original->id());
  for (Round r = 21; r <= 500; ++r) {
    const Action a = original->next_action(r);
    const Action b = copy->next_action(r);
    ASSERT_EQ(a.send, b.send) << algo << " diverged at round " << r;
    if (a.send) {
      ASSERT_EQ(a.message, b.message);
    }
    const Reception rec = mixer.bernoulli(0.1, r)
                              ? Reception::collision()
                              : Reception::silence();
    original->on_receive(r, rec);
    copy->on_receive(r, rec);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CloneEquivalence,
                         ::testing::Values("strong_select", "harmonic",
                                           "gossip", "cms"));

// ---------------------------------------- edge-case simulator behaviors

TEST(EdgeCases, TwoNodeNetwork) {
  Graph g(2);
  g.add_undirected_edge(0, 1);
  const DualGraph net = make_classical(std::move(g), 0);
  BenignAdversary adversary;
  SimConfig config;
  config.max_rounds = 100;
  const SimResult result =
      run_broadcast(net, make_round_robin_factory(2), adversary, config);
  EXPECT_TRUE(result.completed);
  EXPECT_LE(result.completion_round, 2);
}

TEST(EdgeCases, MaxRoundsOne) {
  const DualGraph net = duals::bridge_network(8);
  BenignAdversary adversary;
  SimConfig config;
  config.max_rounds = 1;
  const SimResult result =
      run_broadcast(net, make_harmonic_factory(8), adversary, config);
  EXPECT_EQ(result.rounds_executed, 1);
}

TEST(EdgeCases, RunToMaxRoundsAfterCompletion) {
  const DualGraph net = duals::bridge_network(8);
  FullInterferenceAdversary adversary;
  SimConfig config;
  config.max_rounds = 50;
  config.stop_on_completion = false;
  const SimResult result =
      run_broadcast(net, make_harmonic_factory(8), adversary, config);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds_executed, 50);
  EXPECT_EQ(result.completion_round, 1);  // full interference: round 1
}

TEST(EdgeCases, SourceChoiceRespected) {
  Graph g = gen::path(4);
  Graph gp = gen::path(4);
  const DualGraph net(std::move(g), std::move(gp), 3);  // source at the end
  BenignAdversary adversary;
  SimConfig config;
  config.max_rounds = 1000;
  const SimResult result =
      run_broadcast(net, make_round_robin_factory(4), adversary, config);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.first_token[3], 0);
}

}  // namespace
}  // namespace dualrad
