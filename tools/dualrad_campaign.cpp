// dualrad_campaign — run registered experiment campaigns on the parallel
// trial executor.
//
// Examples:
//   dualrad_campaign --list
//   dualrad_campaign --list --filter=harmonic
//   dualrad_campaign --filter=dual --threads=8 --seed=42
//               --jsonl=trials.jsonl --summary-csv=summary.csv
//
// Runs the cross product (scenario x trial) across worker threads with
// deterministic per-trial seeding: for a fixed --seed, all output files are
// byte-identical regardless of --threads.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "campaign/builtin_scenarios.hpp"
#include "campaign/contract.hpp"
#include "campaign/engine.hpp"
#include "campaign/export.hpp"
#include "core/audit.hpp"
#include "core/rng.hpp"
#include "graph/dual_graph.hpp"
#include "mac/mac_latency.hpp"
#include "obs/perfetto_writer.hpp"
#include "obs/telemetry.hpp"
#include "serve/checkpoint.hpp"
#include "stats/table.hpp"

namespace {

using namespace dualrad;

struct Options {
  bool list = false;
  bool quiet = false;
  bool help = false;
  bool timing = false;
  bool audit = false;
  bool fail_on_contract = false;
  std::string filter;
  std::uint64_t seed = 1;
  unsigned threads = 0;
  unsigned threads_per_trial = 1;
  std::size_t trials = 0;  // 0 = per-scenario default
  std::string jsonl_path;
  std::string csv_path;
  std::string summary_jsonl_path;
  std::string summary_csv_path;
  std::string mac_jsonl_path;
  std::string telemetry_jsonl_path;
  std::string perfetto_path;
  std::string perfetto_scenario;
  unsigned heartbeat_secs = 0;
  std::string journal_path;
  std::string resume_path;
};

// SIGINT/SIGTERM raise this; the engine checks it between trials, so a ^C
// mid-campaign flushes the journal (every committed row is already fsynced)
// and exits nonzero instead of dying with partial in-memory state.
std::atomic<bool> g_cancel{false};

extern "C" void on_cancel_signal(int) {
  g_cancel.store(true, std::memory_order_relaxed);
}

void usage() {
  std::puts(
      "usage: dualrad_campaign [options]\n"
      "  --list              list matching scenarios instead of running\n"
      "  --filter=SUBSTR     restrict to scenarios whose name or tags\n"
      "                      contain SUBSTR (default: all)\n"
      "  --seed=N            master seed (default 1)\n"
      "  --threads=N         worker threads (default: hardware concurrency;\n"
      "                      output is identical for any value)\n"
      "  --threads-per-trial=N  sharded parallel round kernel inside each\n"
      "                      trial (SimConfig::threads; default 1). Output\n"
      "                      is identical for any value\n"
      "  --trials=N          override every scenario's trial count\n"
      "  --jsonl=PATH        write per-trial rows as JSONL\n"
      "  --csv=PATH          write per-trial rows as CSV\n"
      "  --summary-jsonl=PATH  write per-scenario summaries as JSONL\n"
      "  --summary-csv=PATH    write per-scenario summaries as CSV\n"
      "  --mac-jsonl=PATH    write per-trial MAC ack/progress latencies as\n"
      "                      JSONL (measured f_ack / f_prog; rows sorted by\n"
      "                      scenario and trial, so output is deterministic)\n"
      "  --timing            measure per-trial wall time and include it in\n"
      "                      trial/summary exports (wall_us / mean_wall_ms;\n"
      "                      timed exports are NOT byte-reproducible)\n"
      "  --telemetry-jsonl=PATH  attach the engine telemetry layer to every\n"
      "                      trial and write per-trial phase times + counter\n"
      "                      totals as JSONL. Opt-in; the default exports\n"
      "                      above stay byte-identical either way\n"
      "  --heartbeat=SECS    print a progress line to stderr every SECS\n"
      "                      seconds (trials done/total, rounds/s, eta, rss)\n"
      "  --journal=PATH      append every completed trial row to a crash-safe\n"
      "                      checkpoint journal (whole-line writes + fsync).\n"
      "                      With --telemetry-jsonl, telemetry rows are\n"
      "                      journaled alongside their trial rows.\n"
      "                      On SIGINT/SIGTERM the campaign stops cleanly,\n"
      "                      exits nonzero, and can be continued later\n"
      "  --resume=PATH       load a checkpoint journal and skip its trials;\n"
      "                      continues appending to the same file unless\n"
      "                      --journal names another. Journaled telemetry\n"
      "                      rows are replayed into --telemetry-jsonl. The\n"
      "                      merged output is byte-identical to an\n"
      "                      uninterrupted run\n"
      "  --perfetto=PATH     after the campaign, deterministically re-run one\n"
      "                      trial (trial 0 of --perfetto-scenario, default\n"
      "                      the first matching scenario) with telemetry and\n"
      "                      write a Chrome/Perfetto trace (ui.perfetto.dev)\n"
      "  --perfetto-scenario=NAME  scenario to trace (see --perfetto)\n"
      "  --audit             record a compressed trace of every trial and\n"
      "                      re-verify it with the execution auditor\n"
      "                      (core/audit.hpp). Forged-token wins (Byzantine\n"
      "                      scenarios, src/byz/) are reported on stderr; any\n"
      "                      model violation exits 4. Results and exports are\n"
      "                      byte-identical with or without this flag\n"
      "  --fail-on-contract  check the broadcast contract (validity /\n"
      "                      no-duplication / no-creation, including forged-\n"
      "                      token wins) on every trial; any violation is\n"
      "                      printed to stderr and the run exits 3\n"
      "  --quiet             suppress the summary table on stdout\n");
}

std::optional<Options> parse(int argc, char** argv) try {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> std::optional<std::string> {
      const std::string p(prefix);
      if (arg.rfind(p, 0) == 0) return arg.substr(p.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--timing") {
      options.timing = true;
    } else if (arg == "--audit") {
      options.audit = true;
    } else if (arg == "--fail-on-contract") {
      options.fail_on_contract = true;
    } else if (auto v = value("--mac-jsonl=")) {
      options.mac_jsonl_path = *v;
    } else if (auto v = value("--telemetry-jsonl=")) {
      options.telemetry_jsonl_path = *v;
    } else if (auto v = value("--heartbeat=")) {
      options.heartbeat_secs = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value("--journal=")) {
      options.journal_path = *v;
    } else if (auto v = value("--resume=")) {
      options.resume_path = *v;
    } else if (auto v = value("--perfetto-scenario=")) {
      options.perfetto_scenario = *v;
    } else if (auto v = value("--perfetto=")) {
      options.perfetto_path = *v;
    } else if (auto v = value("--filter=")) {
      options.filter = *v;
    } else if (auto v = value("--seed=")) {
      options.seed = std::stoull(*v);
    } else if (auto v = value("--threads-per-trial=")) {
      options.threads_per_trial = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value("--threads=")) {
      options.threads = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value("--trials=")) {
      options.trials = std::stoul(*v);
    } else if (auto v = value("--jsonl=")) {
      options.jsonl_path = *v;
    } else if (auto v = value("--csv=")) {
      options.csv_path = *v;
    } else if (auto v = value("--summary-jsonl=")) {
      options.summary_jsonl_path = *v;
    } else if (auto v = value("--summary-csv=")) {
      options.summary_csv_path = *v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  return options;
} catch (const std::exception&) {
  std::fprintf(stderr, "malformed numeric argument\n");
  return std::nullopt;
}

void list_scenarios(const std::vector<campaign::Scenario>& scenarios) {
  stats::Table table({"scenario", "trials", "rule", "start", "tags"});
  for (const campaign::Scenario& s : scenarios) {
    std::string tags;
    for (const std::string& t : s.tags) {
      if (!tags.empty()) tags += ',';
      tags += t;
    }
    table.add_row({s.name, std::to_string(s.trials), to_string(s.rule),
                   to_string(s.start), tags});
  }
  table.print(std::cout);
  std::cout << "\n" << scenarios.size() << " scenario(s)\n";
}

void print_summaries(const campaign::CampaignResult& result, bool timing) {
  std::vector<std::string> header = {"scenario", "trials",     "failed",
                                     "mean rounds", "median", "p90",
                                     "mean sends"};
  if (timing) header.push_back("mean ms");
  stats::Table table(header);
  for (const campaign::ScenarioSummary& s : result.summaries) {
    const bool any = s.rounds.count > 0;
    std::vector<std::string> row = {
        s.scenario, std::to_string(s.trials), std::to_string(s.failures),
        any ? stats::Table::num(s.rounds.mean, 1) : "-",
        any ? stats::Table::num(s.rounds.median, 1) : "-",
        any ? stats::Table::num(s.rounds.p90, 1) : "-",
        stats::Table::num(s.mean_sends, 1)};
    if (timing) row.push_back(stats::Table::num(s.mean_wall_ms, 2));
    table.add_row(row);
  }
  table.print(std::cout);
}

std::string mac_rows_to_jsonl(const std::vector<mac::TrialLatencyRow>& rows) {
  const auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return std::string(buf);
  };
  std::string out;
  for (const mac::TrialLatencyRow& r : rows) {
    const mac::MacLatencySummary& l = r.latency;
    out += "{\"scenario\":\"" + r.scenario + "\"";
    out += ",\"trial\":" + std::to_string(r.trial);
    out += ",\"acks\":" + std::to_string(l.acks);
    out += ",\"ack_max\":" + num(l.ack_max);
    out += ",\"ack_mean\":" + num(l.ack_mean);
    out += ",\"prog_samples\":" + std::to_string(l.prog_samples);
    out += ",\"prog_max\":" + std::to_string(l.prog_max);
    out += ",\"prog_mean\":" + num(l.prog_mean);
    out += ",\"unreached\":" + std::to_string(l.unreached);
    out += "}\n";
  }
  return out;
}

// Deterministically re-run one trial with telemetry attached and write a
// Chrome/Perfetto trace. Mirrors the engine's per-trial setup exactly
// (trial_seed, mix_seed(seed, 0xAD) adversary), so the traced execution is
// the same one the campaign ran.
void write_perfetto_for(const campaign::Scenario& scenario,
                        std::uint64_t master_seed, unsigned threads_per_trial,
                        const std::string& path) {
  const DualGraph net = scenario.network();
  const ProcessFactory factory = scenario.algorithm(net);
  const std::uint64_t seed = campaign::trial_seed(master_seed, scenario.name, 0);
  const std::unique_ptr<Adversary> adversary =
      scenario.adversary(mix_seed(seed, 0xAD));

  SimConfig sim;
  sim.rule = scenario.rule;
  sim.start = scenario.start;
  sim.max_rounds = scenario.max_rounds;
  sim.seed = seed;
  sim.token_sources = scenario.token_sources;
  sim.threads = threads_per_trial;
  obs::RoundTelemetry telemetry;  // default window: last 4096 rounds
  sim.telemetry = &telemetry;
  if (scenario.runner) {
    (void)scenario.runner(net, factory, *adversary, sim);
  } else {
    (void)run_broadcast(net, factory, *adversary, sim);
  }
  obs::write_perfetto_trace(telemetry, path, scenario.name);
  std::fprintf(stderr, "[campaign] perfetto trace of %s trial 0 -> %s\n",
               scenario.name.c_str(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) {
    usage();
    return 2;
  }
  Options options = *parsed;
  if (options.help) {
    usage();
    return 0;
  }
  // Resuming implies continuing the same journal unless told otherwise.
  if (!options.resume_path.empty() && options.journal_path.empty()) {
    options.journal_path = options.resume_path;
  }
  try {
    const campaign::ScenarioRegistry registry = campaign::builtin_registry();
    const std::vector<campaign::Scenario> scenarios =
        registry.match(options.filter);
    if (scenarios.empty()) {
      std::fprintf(stderr, "no scenario matches filter '%s'\n",
                   options.filter.c_str());
      return 1;
    }
    if (options.list) {
      list_scenarios(scenarios);
      return 0;
    }

    campaign::CampaignConfig config;
    config.master_seed = options.seed;
    config.threads = options.threads;
    config.threads_per_trial = options.threads_per_trial;
    config.trials_override = options.trials;
    config.measure_wall_time = options.timing;
    config.collect_telemetry = !options.telemetry_jsonl_path.empty();
    config.heartbeat_secs = options.heartbeat_secs;

    // Checkpoint/resume plumbing. The journal sees each row as it commits
    // (under the engine's serialization lock); resume rows fill their slots
    // without re-execution, and the engine validates their seeds so a wrong
    // --seed or grid fails loudly instead of merging foreign rows.
    std::vector<campaign::TrialRow> resume_rows;
    std::vector<campaign::TelemetryRow> journal_telemetry;
    if (!options.resume_path.empty()) {
      const serve::JournalLoad loaded = serve::load_journal(options.resume_path);
      serve::truncate_torn_tail(options.resume_path, loaded);
      resume_rows = loaded.rows;
      journal_telemetry = loaded.telemetry;
      std::fprintf(stderr,
                   "[campaign] resume: %zu committed trial(s) from %s%s\n",
                   resume_rows.size(), options.resume_path.c_str(),
                   loaded.dropped_torn_tail ? " (dropped torn tail line)" : "");
      config.resume_rows = &resume_rows;
    }
    serve::JournalWriter journal;
    if (!options.journal_path.empty()) {
      journal.open(options.journal_path);
      config.row_sink = [&journal](const campaign::TrialRow& row,
                                   const campaign::TelemetryRow* telemetry) {
        campaign::TrialRow untimed = row;
        untimed.wall_us = -1;
        journal.append(untimed);
        // Telemetry rides the same crash-safe journal so --resume can
        // reconstruct the full --telemetry-jsonl without re-running trials.
        if (telemetry != nullptr) journal.append(*telemetry);
      };
    }
    std::signal(SIGINT, on_cancel_signal);
    std::signal(SIGTERM, on_cancel_signal);
    config.cancel = &g_cancel;

    // --audit: re-verify every trial's execution trace out-of-band. The
    // auditor needs a recorded trace, so trials run with compressed traces —
    // rows and exports stay byte-identical; the trace is dropped after the
    // observer fires. Installed by direct assignment, so it must come before
    // the chaining attach() observers below.
    std::map<std::string, DualGraph> audit_nets;
    std::vector<std::string> audit_failures;
    std::vector<std::string> audit_forged_wins;
    if (options.audit) {
      config.trial_trace = TraceLevel::Compressed;
      config.observer = [&](const campaign::Scenario& scenario,
                            const campaign::TrialRow& row,
                            const SimResult& result) {
        // The engine keeps its networks private; rebuild one per scenario
        // (builders are deterministic) and cache it. The engine serializes
        // observers, so the cache needs no lock.
        auto it = audit_nets.find(scenario.name);
        if (it == audit_nets.end()) {
          it = audit_nets.emplace(scenario.name, scenario.network()).first;
        }
        const audit::AuditReport report = audit::audit_execution(
            it->second, result, scenario.rule, scenario.token_sources);
        const std::string tag = scenario.name + "#" + std::to_string(row.trial);
        for (const std::string& v : report.violations) {
          audit_failures.push_back(tag + " " + v);
        }
        for (const std::string& w : report.forged_wins) {
          audit_forged_wins.push_back(tag + " " + w);
        }
      };
    }

    // --fail-on-contract: the broadcast-contract checker (attach() chains
    // the audit observer above, if any).
    std::optional<campaign::ContractObserver> contract;
    if (options.fail_on_contract) {
      contract.emplace();
      contract->attach(config);
    }

    // --mac-jsonl: measure f_ack / f_prog per trial from the full SimResult
    // (progress latency is meaningful for any broadcast scenario; the ack
    // columns are -1 outside MAC workloads).
    std::optional<mac::LatencyCollector> collector;
    if (!options.mac_jsonl_path.empty()) {
      collector.emplace(scenarios);
      collector->attach(config);
    }

    const campaign::CampaignResult result =
        campaign::run_campaign(scenarios, config);

    if (result.cancelled) {
      if (!options.journal_path.empty()) {
        std::fprintf(stderr,
                     "[campaign] interrupted — journal %s is durable; "
                     "continue with --resume=%s\n",
                     options.journal_path.c_str(),
                     options.journal_path.c_str());
      } else {
        std::fprintf(stderr,
                     "[campaign] interrupted — no --journal, partial results "
                     "discarded\n");
      }
      return 130;
    }

    if (!options.jsonl_path.empty()) {
      campaign::write_file(
          options.jsonl_path,
          campaign::trials_to_jsonl(result.trials, options.timing));
    }
    if (!options.csv_path.empty()) {
      campaign::write_file(
          options.csv_path,
          campaign::trials_to_csv(result.trials, options.timing));
    }
    if (!options.summary_jsonl_path.empty()) {
      campaign::write_file(
          options.summary_jsonl_path,
          campaign::summaries_to_jsonl(result.summaries, options.timing));
    }
    if (!options.summary_csv_path.empty()) {
      campaign::write_file(
          options.summary_csv_path,
          campaign::summaries_to_csv(result.summaries, options.timing));
    }
    if (collector.has_value()) {
      campaign::write_file(options.mac_jsonl_path,
                           mac_rows_to_jsonl(collector->sorted_rows()));
    }
    if (!options.telemetry_jsonl_path.empty()) {
      // Resumed trials skip execution, so their telemetry slots are empty;
      // fill them from rows replayed out of the journal (keyed by scenario
      // and trial), then drop any still-empty slot — a journal written
      // without --telemetry-jsonl has trial rows but no telemetry.
      std::vector<campaign::TelemetryRow> rows = result.telemetry;
      if (!journal_telemetry.empty()) {
        std::map<std::pair<std::string, std::uint32_t>,
                 const campaign::TelemetryRow*>
            replay;
        for (const campaign::TelemetryRow& t : journal_telemetry) {
          replay.emplace(std::make_pair(t.scenario, t.trial), &t);
        }
        for (std::size_t i = 0; i < rows.size() && i < result.trials.size();
             ++i) {
          if (!rows[i].scenario.empty()) continue;  // ran this session
          const campaign::TrialRow& trial = result.trials[i];
          const auto it =
              replay.find(std::make_pair(trial.scenario, trial.trial));
          if (it != replay.end()) rows[i] = *it->second;
        }
      }
      rows.erase(std::remove_if(rows.begin(), rows.end(),
                                [](const campaign::TelemetryRow& t) {
                                  return t.scenario.empty();
                                }),
                 rows.end());
      campaign::write_file(options.telemetry_jsonl_path,
                           campaign::telemetry_to_jsonl(rows));
    }
    if (!options.perfetto_path.empty()) {
      const campaign::Scenario* traced = &scenarios.front();
      if (!options.perfetto_scenario.empty()) {
        traced = nullptr;
        for (const campaign::Scenario& s : scenarios) {
          if (s.name == options.perfetto_scenario) traced = &s;
        }
        if (traced == nullptr) {
          std::fprintf(stderr, "--perfetto-scenario '%s' matches no scenario\n",
                       options.perfetto_scenario.c_str());
          return 1;
        }
      }
      write_perfetto_for(*traced, options.seed, options.threads_per_trial,
                         options.perfetto_path);
    }
    if (!options.quiet) print_summaries(result, options.timing);

    // Verification verdicts come last so exports above are written either
    // way (a failing campaign's rows are still evidence). Contract trumps
    // audit in the exit code when both trip.
    if (options.audit) {
      for (const std::string& w : audit_forged_wins) {
        std::fprintf(stderr, "[audit] forged-token win: %s\n", w.c_str());
      }
      for (const std::string& v : audit_failures) {
        std::fprintf(stderr, "[audit] FAIL: %s\n", v.c_str());
      }
      if (audit_failures.empty()) {
        std::fprintf(stderr, "[audit] %zu trial trace(s) verified clean\n",
                     result.trials.size());
      }
    }
    if (contract.has_value()) {
      for (const std::string& v : contract->violations()) {
        std::fprintf(stderr, "[contract] FAIL: %s\n", v.c_str());
      }
      if (contract->violations().empty()) {
        std::fprintf(stderr,
                     "[contract] %zu trial(s) satisfy the broadcast contract\n",
                     contract->trials_checked());
      }
    }
    if (contract.has_value() && !contract->violations().empty()) return 3;
    if (!audit_failures.empty()) return 4;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
