#pragma once

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// \file lint_core.hpp
/// The dualrad determinism linter: a token/line-based static checker for the
/// project's determinism ruleset.
///
/// Every correctness claim this repository makes rests on SimResults being
/// bit-identical across the reference engine, the CSR engine, and every
/// thread count (pinned in test_engine_equivalence). The runtime equivalence
/// tests catch violations *after* they happen; this linter refuses the
/// classic sources of nondeterminism before the code ever runs:
///
///   raw-random             rand()/std::random_device/<random> outside
///                          core/rng.hpp and obs/ — all engine randomness
///                          must flow through the counter-based CounterRng /
///                          StreamRng so draws are pure in (seed, round).
///   wall-clock             time()/clock()/system_clock in result-affecting
///                          paths — wall time may only be observed
///                          out-of-band (obs/, serve/, timing columns).
///   unordered-iter         iteration over std::unordered_{map,set} in
///                          result-affecting paths — bucket order depends on
///                          libstdc++ version, seed and allocation history.
///   ptr-key-order          std::map/std::set keyed on pointers (or
///                          std::less over pointers) — address order changes
///                          run to run under ASLR.
///   fp-accumulate          += / -= / *= on float/double in engine hot
///                          paths — reassociation under different shard
///                          splits changes low bits.
///   thread-detach          naked std::thread::detach() — detached threads
///                          outlive their data and cannot be flushed at
///                          checkpoint time.
///   checkpoint-durability  serve/checkpoint.* must keep the whole-line
///                          O_APPEND + fsync discipline and never write
///                          through buffered streams.
///   unbounded-retry        raw sleep primitives in src/serve/ — every wait
///                          in the serve stack must be a bounded, jittered
///                          backoff (or a cooperative stop-checking wait),
///                          never a naked sleep inside a retry loop.
///
/// Deliberately lightweight: a comment/string-stripping scanner plus a small
/// amount of per-file identifier tracking — no libclang, no build, runs over
/// the whole tree in milliseconds so it can gate CI before the first compile.
///
/// Escapes: a justified annotation on the offending line (e.g.
/// `// lint: ordered-ok (membership only, never iterated)`) or an entry in
/// tools/lint_allow.txt (`<rule-id> <path-suffix>` per line) for
/// grandfathered hits. Rules marked without an annotation token accept only
/// the allowlist.

namespace dualrad::lint {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

struct Rule {
  std::string_view id;
  /// Annotation token that silences the rule on the offending raw line
  /// (matched as a substring, e.g. "lint: ordered-ok"); empty = allowlist
  /// only.
  std::string_view annotation;
  std::string_view summary;
  std::string_view rationale;
  std::string_view hint;
};

inline const std::vector<Rule>& rules() {
  static const std::vector<Rule> table = {
      {"raw-random", "",
       "raw randomness source outside core/rng.hpp and obs/",
       "engine randomness must be a pure function of (seed, round, salt) so "
       "trials replay bit-identically; rand()/std::random_device/<random> "
       "draw from hidden global state",
       "route the draw through CounterRng/StreamRng (core/rng.hpp), seeded "
       "from the trial seed stream"},
      {"wall-clock", "lint: wallclock-ok",
       "wall-clock read in a result-affecting path",
       "time()/clock()/system_clock values differ across runs and machines, "
       "so any result derived from them breaks the bit-identity contract",
       "use std::chrono::steady_clock, keep the measurement out-of-band "
       "(obs/ telemetry, the --timing wall_us column), or annotate with "
       "'// lint: wallclock-ok (<why it cannot affect results>)'"},
      {"unordered-iter", "lint: ordered-ok",
       "iteration over an unordered container in a result-affecting path",
       "unordered_{map,set} bucket order depends on the standard library "
       "version, hash seed and insertion history — iterating one feeds "
       "nondeterministic order into results",
       "iterate a sorted copy / a parallel vector, switch to std::map, or "
       "annotate with '// lint: ordered-ok (<why order cannot leak>)'"},
      {"ptr-key-order", "lint: ordered-ok",
       "pointer-keyed ordered container or pointer comparator",
       "pointer order is allocation order under ASLR: two identical runs "
       "disagree, so any iteration or min/max over it is nondeterministic",
       "key the container by a stable id (NodeId, scenario name, index) "
       "instead of an address"},
      {"fp-accumulate", "lint: fp-ok",
       "floating-point accumulation in an engine hot path",
       "float/double addition is non-associative; a different shard split or "
       "vectorization width changes the low bits, which the byte-identity "
       "pins would surface as corruption",
       "accumulate in integers where possible, or annotate with "
       "'// lint: fp-ok (<why the order is fixed>)' when the reduction "
       "order is deterministic"},
      {"thread-detach", "",
       "naked std::thread::detach()",
       "a detached thread cannot be joined at shutdown, keeps mutating after "
       "main() starts tearing down, and is invisible to checkpoint flushes",
       "keep the std::thread joinable and join it on every exit path "
       "(see obs::Heartbeat for the stop-flag + join pattern)"},
      {"checkpoint-durability", "lint: durability-ok",
       "checkpoint write path violating the O_APPEND+fsync discipline",
       "crash-safe resume needs whole-line O_APPEND appends with explicit "
       "fsync; buffered streams tear lines on kill -9 and lose the torn-tail "
       "recovery guarantee",
       "write through JournalWriter (::write on an O_APPEND fd, fsync per "
       "line); never std::ofstream/fopen/fprintf in serve/checkpoint.*"},
      {"unbounded-retry", "lint: backoff-ok",
       "raw sleep primitive in the serve stack",
       "a naked sleep inside a reconnect/poll loop is an unbounded retry: no "
       "exponential backoff, no jitter, no stop-flag check — workers hammer "
       "a dead coordinator in lockstep and ignore shutdown",
       "wait via sleep_checking_stop with a reconnect_backoff_delay (bounded "
       "exponential + deterministic jitter), or annotate the primitive with "
       "'// lint: backoff-ok (<why the wait is bounded>)'"},
  };
  return table;
}

inline const Rule* find_rule(std::string_view id) {
  for (const Rule& r : rules()) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Findings and allowlist
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;
  std::string path;
  std::size_t line = 0;  ///< 1-based
  std::string message;
  bool allowed = false;  ///< matched tools/lint_allow.txt
};

struct AllowEntry {
  std::string rule;  ///< "*" matches every rule
  std::string path_suffix;
};

/// Parse the allowlist format: one `<rule-id> <path-suffix>` pair per line,
/// '#' starts a comment, blank lines ignored. Unknown rule ids are kept —
/// they match nothing, and the CLI warns about them.
inline std::vector<AllowEntry> parse_allowlist(std::string_view text) {
  std::vector<AllowEntry> entries;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t nl = text.find('\n', begin);
    std::string_view line = text.substr(
        begin, (nl == std::string_view::npos ? text.size() : nl) - begin);
    begin = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    std::vector<std::string> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i])) != 0)
        ++i;
      const std::size_t start = i;
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i])) == 0)
        ++i;
      if (i > start) tokens.emplace_back(line.substr(start, i - start));
    }
    if (tokens.empty()) continue;
    AllowEntry e;
    e.rule = tokens[0];
    if (tokens.size() >= 2) e.path_suffix = tokens[1];
    entries.push_back(std::move(e));
  }
  return entries;
}

inline bool allow_matches(const AllowEntry& e, std::string_view rule,
                          std::string_view path) {
  if (e.rule != "*" && e.rule != rule) return false;
  if (e.path_suffix.empty()) return true;
  return path.size() >= e.path_suffix.size() &&
         path.substr(path.size() - e.path_suffix.size()) == e.path_suffix;
}

// ---------------------------------------------------------------------------
// Source model: comment/string stripping
// ---------------------------------------------------------------------------

struct SourceLine {
  std::string code;  ///< comments and string/char literal bodies blanked
  std::string raw;   ///< verbatim, used for `// lint: ...-ok` annotations
};

/// Split a translation unit into lines, blanking comments and the *bodies*
/// of string/char literals in the `code` view (quotes are kept so token
/// boundaries survive). Handles line and block comments, escape sequences,
/// and raw string literals R"delim(...)delim". The `raw` view is untouched.
inline std::vector<SourceLine> split_source(std::string_view text) {
  std::vector<SourceLine> lines;
  enum class State { Code, Line, Block, Str, Chr, Raw };
  State state = State::Code;
  std::string raw_delim;  // for Raw: ")delim\"" to search for
  std::string code, raw;
  auto flush = [&] {
    lines.push_back(SourceLine{code, raw});
    code.clear();
    raw.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::Line) state = State::Code;
      // Unterminated string/char literals do not span lines.
      if (state == State::Str || state == State::Chr) state = State::Code;
      flush();
      continue;
    }
    raw.push_back(c);
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::Line;
          code.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::Block;
          code.push_back(' ');
          raw.push_back(next);
          code.push_back(' ');
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) == 0 &&
                               text[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          std::string delim;
          while (j < text.size() && text[j] != '(' && text[j] != '\n') {
            delim.push_back(text[j]);
            ++j;
          }
          raw_delim = ")" + delim + "\"";
          state = State::Raw;
          code.push_back('"');
          // Copy the delimiter + '(' into raw, blank in code.
          for (std::size_t k = i + 1; k < j + 1 && k < text.size(); ++k) {
            raw.push_back(text[k]);
            code.push_back(' ');
          }
          i = j;  // at '(' (or line end)
        } else if (c == '"') {
          state = State::Str;
          code.push_back('"');
        } else if (c == '\'') {
          state = State::Chr;
          code.push_back('\'');
        } else {
          code.push_back(c);
        }
        break;
      case State::Line:
        code.push_back(' ');
        break;
      case State::Block:
        if (c == '*' && next == '/') {
          state = State::Code;
          raw.push_back(next);
          code.push_back(' ');
          code.push_back(' ');
          ++i;
        } else {
          code.push_back(' ');
        }
        break;
      case State::Str:
        if (c == '\\' && next != '\0' && next != '\n') {
          raw.push_back(next);
          code.push_back(' ');
          code.push_back(' ');
          ++i;
        } else if (c == '"') {
          state = State::Code;
          code.push_back('"');
        } else {
          code.push_back(' ');
        }
        break;
      case State::Chr:
        if (c == '\\' && next != '\0' && next != '\n') {
          raw.push_back(next);
          code.push_back(' ');
          code.push_back(' ');
          ++i;
        } else if (c == '\'') {
          state = State::Code;
          code.push_back('\'');
        } else {
          code.push_back(' ');
        }
        break;
      case State::Raw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          // Copy the closing delimiter; we already pushed text[i] into raw.
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            raw.push_back(text[i + k]);
            code.push_back(' ');
          }
          code.push_back('"');
          i += raw_delim.size() - 1;
          state = State::Code;
        } else {
          code.push_back(' ');
        }
        break;
    }
  }
  if (!code.empty() || !raw.empty()) flush();
  return lines;
}

// --- token helpers ---------------------------------------------------------

inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Find `token` in `code` at a position where it is not part of a larger
/// identifier. Returns npos if absent.
inline std::size_t find_token(std::string_view code, std::string_view token,
                              std::size_t from = 0) {
  for (std::size_t pos = code.find(token, from);
       pos != std::string_view::npos; pos = code.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

/// True when `code` contains a call of `name` — the token followed by an
/// optional run of spaces and an opening parenthesis.
inline bool has_call(std::string_view code, std::string_view name) {
  for (std::size_t pos = find_token(code, name); pos != std::string_view::npos;
       pos = find_token(code, name, pos + 1)) {
    std::size_t j = pos + name.size();
    while (j < code.size() && code[j] == ' ') ++j;
    if (j < code.size() && code[j] == '(') return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

/// Directories whose code feeds exported results (SimResult, trial rows,
/// summaries): determinism rules apply in full.
inline bool is_result_path(std::string_view path) {
  static constexpr std::string_view kDirs[] = {
      "src/core/",       "src/adversary/", "src/algorithms/",
      "src/graph/",      "src/mac/",       "src/campaign/",
      "src/selectors/",  "src/lowerbound/", "src/interference/",
      "src/repeated/",   "src/stats/"};
  for (const std::string_view d : kDirs) {
    if (path.rfind(d, 0) == 0) return true;
  }
  return false;
}

/// Engine hot paths where fp accumulation order could differ across shard
/// splits.
inline bool is_hot_path(std::string_view path) {
  static constexpr std::string_view kDirs[] = {
      "src/core/", "src/adversary/", "src/algorithms/", "src/graph/",
      "src/mac/"};
  for (const std::string_view d : kDirs) {
    if (path.rfind(d, 0) == 0) return true;
  }
  return false;
}

/// Paths allowed to hold raw randomness: the deterministic RNG itself and
/// the out-of-band observability layer.
inline bool is_random_exempt(std::string_view path) {
  return path == "src/core/rng.hpp" || path.rfind("src/obs/", 0) == 0;
}

inline bool is_checkpoint_path(std::string_view path) {
  return path.find("serve/checkpoint") != std::string_view::npos;
}

// ---------------------------------------------------------------------------
// The linter
// ---------------------------------------------------------------------------

class Linter {
 public:
  void set_allowlist(std::vector<AllowEntry> entries) {
    allow_ = std::move(entries);
  }

  /// Lint one file's contents under its repo-relative path (forward
  /// slashes). Appends to findings().
  void lint_file(std::string_view path, std::string_view text) {
    const std::vector<SourceLine> lines = split_source(text);
    check_raw_random(path, lines);
    check_wall_clock(path, lines);
    check_unordered_iter(path, lines);
    check_ptr_key_order(path, lines);
    check_fp_accumulate(path, lines);
    check_thread_detach(path, lines);
    check_checkpoint_durability(path, lines);
    check_unbounded_retry(path, lines);
  }

  [[nodiscard]] const std::vector<Finding>& findings() const {
    return findings_;
  }

  [[nodiscard]] std::size_t unallowed_count() const {
    std::size_t n = 0;
    for (const Finding& f : findings_) {
      if (!f.allowed) ++n;
    }
    return n;
  }

 private:
  /// Record a finding at `lines[line - 1]` unless the rule's annotation
  /// token appears on that raw line or the one immediately above it.
  void report(std::string_view rule, std::string_view path, std::size_t line,
              const std::vector<SourceLine>& lines, std::string message) {
    const Rule* r = find_rule(rule);
    if (r != nullptr && !r->annotation.empty() && line >= 1) {
      const std::string& here = lines[line - 1].raw;
      if (here.find(r->annotation) != std::string::npos) return;
      if (line >= 2 &&
          lines[line - 2].raw.find(r->annotation) != std::string::npos) {
        return;
      }
    }
    Finding f;
    f.rule = std::string(rule);
    f.path = std::string(path);
    f.line = line;
    f.message = std::move(message);
    for (const AllowEntry& e : allow_) {
      if (allow_matches(e, rule, path)) {
        f.allowed = true;
        break;
      }
    }
    findings_.push_back(std::move(f));
  }

  // --- raw-random ----------------------------------------------------------

  void check_raw_random(std::string_view path,
                        const std::vector<SourceLine>& lines) {
    if (path.rfind("src/", 0) != 0 || is_random_exempt(path)) return;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      const char* what = nullptr;
      if (has_call(code, "rand") || has_call(code, "srand") ||
          has_call(code, "random") || has_call(code, "srandom") ||
          has_call(code, "drand48")) {
        what = "C library rand()";
      } else if (code.find("std::random_device") != std::string::npos) {
        what = "std::random_device";
      } else if (find_token(code, "mt19937") != std::string::npos ||
                 find_token(code, "mt19937_64") != std::string::npos) {
        what = "std::mt19937";
      } else if (code.find("include") != std::string::npos &&
                 code.find("<random>") != std::string::npos) {
        what = "#include <random>";
      }
      if (what != nullptr) {
        report("raw-random", path, i + 1, lines,
               std::string(what) + " outside core/rng.hpp");
      }
    }
  }

  // --- wall-clock ----------------------------------------------------------

  void check_wall_clock(std::string_view path,
                        const std::vector<SourceLine>& lines) {
    if (!is_result_path(path)) return;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      const char* what = nullptr;
      if (has_call(code, "time") || has_call(code, "clock")) {
        what = "time()/clock()";
      } else if (has_call(code, "gettimeofday") ||
                 has_call(code, "clock_gettime")) {
        what = "gettimeofday()/clock_gettime()";
      } else if (code.find("system_clock") != std::string::npos) {
        what = "std::chrono::system_clock";
      }
      if (what != nullptr) {
        report("wall-clock", path, i + 1, lines,
               std::string(what) + " in a result-affecting path");
      }
    }
  }

  // --- unordered-iter ------------------------------------------------------

  /// Collect identifiers declared (anywhere in the file) with an unordered
  /// container type, by scanning past the balanced template argument list.
  static std::vector<std::string> unordered_idents(
      const std::vector<SourceLine>& lines) {
    std::string joined;
    for (const SourceLine& l : lines) {
      joined += l.code;
      joined += '\n';
    }
    std::vector<std::string> idents;
    for (const std::string_view needle :
         {std::string_view("unordered_map"), std::string_view("unordered_set"),
          std::string_view("unordered_multimap"),
          std::string_view("unordered_multiset")}) {
      for (std::size_t pos = find_token(joined, needle);
           pos != std::string::npos;
           pos = find_token(joined, needle, pos + 1)) {
        std::size_t j = pos + needle.size();
        while (j < joined.size() &&
               std::isspace(static_cast<unsigned char>(joined[j])) != 0)
          ++j;
        if (j >= joined.size() || joined[j] != '<') continue;
        int depth = 0;
        while (j < joined.size()) {
          if (joined[j] == '<') ++depth;
          if (joined[j] == '>') {
            --depth;
            if (depth == 0) {
              ++j;
              break;
            }
          }
          ++j;
        }
        // Skip trailing '>' of enclosing templates, refs, pointers, spaces.
        while (j < joined.size() &&
               (joined[j] == '>' || joined[j] == '&' || joined[j] == '*' ||
                std::isspace(static_cast<unsigned char>(joined[j])) != 0))
          ++j;
        const std::size_t start = j;
        while (j < joined.size() && ident_char(joined[j])) ++j;
        if (j > start) {
          std::string name = joined.substr(start, j - start);
          if (name != "const" && name != "static" && name != "constexpr" &&
              std::find(idents.begin(), idents.end(), name) == idents.end()) {
            idents.push_back(std::move(name));
          }
        }
      }
    }
    return idents;
  }

  void check_unordered_iter(std::string_view path,
                            const std::vector<SourceLine>& lines) {
    if (!is_result_path(path)) return;
    const std::vector<std::string> idents = unordered_idents(lines);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      const bool is_for = find_token(code, "for") != std::string::npos &&
                          code.find(':') != std::string::npos;
      // Direct iteration over an unordered temporary / member in a range-for.
      if (is_for && code.find("unordered_") != std::string::npos) {
        report("unordered-iter", path, i + 1, lines,
               "range-for over an unordered container");
        continue;
      }
      for (const std::string& id : idents) {
        const std::size_t pos = find_token(code, id);
        if (pos == std::string::npos) continue;
        // `for (... : ident)` — the identifier appears after the colon.
        if (is_for) {
          const std::size_t colon = code.rfind(':', pos);
          if (colon != std::string::npos && colon < pos) {
            report("unordered-iter", path, i + 1, lines,
                   "range-for over unordered container '" + id + "'");
            break;
          }
        }
        // `ident.begin()` / `ident[k].begin()` / cbegin/rbegin — explicit
        // iteration. Lookup idioms compare against .end() only, so .end()
        // alone is not flagged.
        std::size_t j = pos + id.size();
        if (j < code.size() && code[j] == '[') {
          int depth = 0;
          while (j < code.size()) {
            if (code[j] == '[') ++depth;
            if (code[j] == ']') {
              --depth;
              if (depth == 0) {
                ++j;
                break;
              }
            }
            ++j;
          }
        }
        const std::string_view rest = std::string_view(code).substr(j);
        if (rest.rfind(".begin(", 0) == 0 || rest.rfind(".cbegin(", 0) == 0 ||
            rest.rfind(".rbegin(", 0) == 0) {
          report("unordered-iter", path, i + 1, lines,
                 "iterator over unordered container '" + id + "'");
          break;
        }
      }
    }
  }

  // --- ptr-key-order -------------------------------------------------------

  void check_ptr_key_order(std::string_view path,
                           const std::vector<SourceLine>& lines) {
    if (path.rfind("src/", 0) != 0) return;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      bool hit = false;
      for (const std::string_view opener :
           {std::string_view("std::map<"), std::string_view("std::set<"),
            std::string_view("std::multimap<"),
            std::string_view("std::multiset<")}) {
        for (std::size_t pos = code.find(opener); pos != std::string::npos;
             pos = code.find(opener, pos + 1)) {
          // Scan the first template argument (up to a top-level ',' or '>').
          std::size_t j = pos + opener.size();
          int depth = 0;
          while (j < code.size()) {
            const char c = code[j];
            if (c == '<' || c == '(') ++depth;
            if (c == '>' || c == ')') {
              if (depth == 0) break;
              --depth;
            }
            if (c == ',' && depth == 0) break;
            if (c == '*') {
              hit = true;
              break;
            }
            ++j;
          }
          if (hit) break;
        }
        if (hit) break;
      }
      if (!hit) {
        // std::less<T*> comparators order by address wherever they appear.
        for (std::size_t pos = code.find("std::less<");
             pos != std::string::npos; pos = code.find("std::less<", pos + 1)) {
          std::size_t j = pos + 10;
          int depth = 1;
          while (j < code.size() && depth > 0) {
            if (code[j] == '<') ++depth;
            if (code[j] == '>') --depth;
            if (depth == 1 && code[j] == '*') {
              hit = true;
              break;
            }
            ++j;
          }
          if (hit) break;
        }
      }
      if (hit) {
        report("ptr-key-order", path, i + 1, lines,
               "ordered container keyed by pointer value");
      }
    }
  }

  // --- fp-accumulate -------------------------------------------------------

  /// Identifiers declared `double x` / `float x` (simple declarators and
  /// `double a = 0, b = 0;` chains with literal initializers).
  static std::vector<std::string> fp_idents(
      const std::vector<SourceLine>& lines) {
    std::vector<std::string> idents;
    for (const SourceLine& l : lines) {
      const std::string& code = l.code;
      for (const std::string_view type :
           {std::string_view("double"), std::string_view("float")}) {
        for (std::size_t pos = find_token(code, type);
             pos != std::string::npos;
             pos = find_token(code, type, pos + 1)) {
          std::size_t j = pos + type.size();
          while (j < code.size() &&
                 (code[j] == ' ' || code[j] == '&' || code[j] == '*'))
            ++j;
          bool more = true;
          while (more && j < code.size()) {
            const std::size_t start = j;
            while (j < code.size() && ident_char(code[j])) ++j;
            if (j == start) break;
            std::string name = code.substr(start, j - start);
            if (name == "const") {
              while (j < code.size() && code[j] == ' ') ++j;
              continue;
            }
            if (std::find(idents.begin(), idents.end(), name) ==
                idents.end()) {
              idents.push_back(std::move(name));
            }
            // Continue through `= <literal>, next` chains; stop at anything
            // structurally complex (calls, parens) to stay conservative.
            more = false;
            int depth = 0;
            while (j < code.size()) {
              const char c = code[j];
              if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
              if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
              if (c == ';' && depth == 0) break;
              if (c == ',' && depth == 0) {
                ++j;
                while (j < code.size() && code[j] == ' ') ++j;
                more = true;
                break;
              }
              ++j;
            }
          }
        }
      }
    }
    return idents;
  }

  void check_fp_accumulate(std::string_view path,
                           const std::vector<SourceLine>& lines) {
    if (!is_hot_path(path)) return;
    const std::vector<std::string> idents = fp_idents(lines);
    if (idents.empty()) return;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      for (const std::string& id : idents) {
        for (std::size_t pos = find_token(code, id);
             pos != std::string::npos; pos = find_token(code, id, pos + 1)) {
          std::size_t j = pos + id.size();
          while (j < code.size() && code[j] == ' ') ++j;
          if (j + 1 < code.size() && code[j + 1] == '=' &&
              (code[j] == '+' || code[j] == '-' || code[j] == '*')) {
            report("fp-accumulate", path, i + 1, lines,
                   "compound assignment on floating-point '" + id + "'");
            pos = std::string::npos;
            break;
          }
        }
        if (pos_reported_last(i)) break;
      }
    }
  }

  [[nodiscard]] bool pos_reported_last(std::size_t line_index) const {
    return !findings_.empty() && findings_.back().line == line_index + 1 &&
           findings_.back().rule == "fp-accumulate";
  }

  // --- thread-detach -------------------------------------------------------

  void check_thread_detach(std::string_view path,
                           const std::vector<SourceLine>& lines) {
    if (path.rfind("src/", 0) != 0 && path.rfind("tools/", 0) != 0) return;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].code.find(".detach(") != std::string::npos ||
          lines[i].code.find("->detach(") != std::string::npos) {
        report("thread-detach", path, i + 1, lines,
               "std::thread::detach()");
      }
    }
  }

  // --- checkpoint-durability ----------------------------------------------

  void check_checkpoint_durability(std::string_view path,
                                   const std::vector<SourceLine>& lines) {
    if (!is_checkpoint_path(path)) return;
    bool has_write = false;
    std::size_t first_write_line = 0;
    bool has_append = false;
    bool has_fsync = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      if (has_call(code, "write")) {
        if (!has_write) first_write_line = i + 1;
        has_write = true;
      }
      if (find_token(code, "O_APPEND") != std::string::npos) has_append = true;
      if (has_call(code, "fsync") || has_call(code, "fdatasync")) {
        has_fsync = true;
      }
      const char* buffered = nullptr;
      if (code.find("std::ofstream") != std::string::npos ||
          find_token(code, "ofstream") != std::string::npos) {
        buffered = "std::ofstream";
      } else if (has_call(code, "fopen") || has_call(code, "fprintf") ||
                 has_call(code, "fwrite")) {
        buffered = "stdio buffered write";
      }
      if (buffered != nullptr) {
        report("checkpoint-durability", path, i + 1, lines,
               std::string(buffered) +
                   " in the checkpoint path (torn lines on crash)");
      }
    }
    if (has_write && (!has_append || !has_fsync)) {
      report("checkpoint-durability", path, first_write_line, lines,
             std::string("::write() without ") +
                 (!has_append ? "O_APPEND" : "fsync") +
                 " discipline in this file");
    }
  }

  // --- unbounded-retry -----------------------------------------------------

  void check_unbounded_retry(std::string_view path,
                             const std::vector<SourceLine>& lines) {
    if (path.rfind("src/serve/", 0) != 0) return;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      const char* what = nullptr;
      if (find_token(code, "sleep_for") != std::string::npos ||
          find_token(code, "sleep_until") != std::string::npos) {
        what = "std::this_thread::sleep_for/sleep_until";
      } else if (has_call(code, "usleep") || has_call(code, "nanosleep") ||
                 has_call(code, "sleep")) {
        what = "C library sleep()";
      }
      if (what != nullptr) {
        report("unbounded-retry", path, i + 1, lines,
               std::string(what) + " without bounded backoff");
      }
    }
  }

  std::vector<AllowEntry> allow_;
  std::vector<Finding> findings_;
};

}  // namespace dualrad::lint
