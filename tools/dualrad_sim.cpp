// dualrad_sim — command-line driver for the dual graph radio network
// simulator.
//
// Examples:
//   dualrad_sim --network=grayzone --n=64 --algorithm=harmonic
//               --adversary=greedy --rule=cr4 --start=async --trials=5
//   dualrad_sim --network=bridge --n=32 --algorithm=strong_select
//               --adversary=bernoulli:0.5 --csv
//
// Prints one line per trial (or CSV with --csv): completion round, sends,
// collision events; then a summary.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/cms_oblivious.hpp"
#include "algorithms/decay.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/strong_select.hpp"
#include "algorithms/uniform_gossip.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"
#include "lowerbound/theorem11_network.hpp"
#include "stats/stats.hpp"

namespace {

using namespace dualrad;

struct Options {
  std::string network = "grayzone";
  NodeId n = 64;
  std::string algorithm = "harmonic";
  std::string adversary = "greedy";
  std::string rule = "cr4";
  std::string start = "async";
  std::uint64_t seed = 1;
  int trials = 1;
  Round max_rounds = 10'000'000;
  bool csv = false;
  bool help = false;
};

void usage() {
  std::puts(
      "usage: dualrad_sim [--key=value ...]\n"
      "  --network=  bridge | layered | grayzone | backbone | theorem11 |\n"
      "              theorem12 | clique (classical G=G')\n"
      "  --n=        network size (default 64)\n"
      "  --algorithm= strong_select | strong_select_forever | harmonic |\n"
      "              round_robin | decay | gossip | cms\n"
      "  --adversary= benign | full | greedy | bernoulli:<p>\n"
      "  --rule=     cr1 | cr2 | cr3 | cr4\n"
      "  --start=    sync | async\n"
      "  --seed=     master seed (default 1)\n"
      "  --trials=   repetitions with derived seeds (default 1)\n"
      "  --max-rounds= cap (default 10'000'000)\n"
      "  --csv       machine-readable output\n");
}

std::optional<Options> parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> std::optional<std::string> {
      const std::string p(prefix);
      if (arg.rfind(p, 0) == 0) return arg.substr(p.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (auto v = value("--network=")) {
      options.network = *v;
    } else if (auto v = value("--n=")) {
      options.n = static_cast<NodeId>(std::stol(*v));
    } else if (auto v = value("--algorithm=")) {
      options.algorithm = *v;
    } else if (auto v = value("--adversary=")) {
      options.adversary = *v;
    } else if (auto v = value("--rule=")) {
      options.rule = *v;
    } else if (auto v = value("--start=")) {
      options.start = *v;
    } else if (auto v = value("--seed=")) {
      options.seed = std::stoull(*v);
    } else if (auto v = value("--trials=")) {
      options.trials = std::stoi(*v);
    } else if (auto v = value("--max-rounds=")) {
      options.max_rounds = std::stoll(*v);
    } else if (arg == "--csv") {
      options.csv = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  return options;
}

DualGraph build_network(const Options& options) {
  const NodeId n = options.n;
  if (options.network == "bridge") return duals::bridge_network(n);
  if (options.network == "layered") {
    return duals::layered_complete_gprime(std::max<NodeId>(3, (n - 1) / 4), 4);
  }
  if (options.network == "grayzone") {
    return duals::gray_zone({.n = n, .r_reliable = 0.22, .r_gray = 0.55,
                             .seed = options.seed});
  }
  if (options.network == "backbone") {
    return duals::backbone_plus_unreliable(
        {.n = n, .p_reliable = 0.05, .p_unreliable = 0.2,
         .seed = options.seed});
  }
  if (options.network == "theorem11") {
    return lowerbound::theorem11_network(n);
  }
  if (options.network == "theorem12") return duals::theorem12_network(n);
  if (options.network == "clique") return make_classical(gen::clique(n), 0);
  throw std::invalid_argument("unknown network: " + options.network);
}

ProcessFactory build_algorithm(const Options& options, const DualGraph& net) {
  const NodeId n = net.node_count();
  if (options.algorithm == "strong_select") {
    return make_strong_select_factory(n);
  }
  if (options.algorithm == "strong_select_forever") {
    StrongSelectOptions opts;
    opts.participate_forever = true;
    return make_strong_select_factory(n, opts);
  }
  if (options.algorithm == "harmonic") return make_harmonic_factory(n);
  if (options.algorithm == "round_robin") return make_round_robin_factory(n);
  if (options.algorithm == "decay") return make_decay_factory(n);
  if (options.algorithm == "gossip") return make_uniform_gossip_factory(n);
  if (options.algorithm == "cms") {
    return make_cms_oblivious_factory(
        n, {.delta = static_cast<NodeId>(net.g_prime().max_in_degree())});
  }
  throw std::invalid_argument("unknown algorithm: " + options.algorithm);
}

std::unique_ptr<Adversary> build_adversary(const Options& options) {
  if (options.adversary == "benign") return std::make_unique<BenignAdversary>();
  if (options.adversary == "full") {
    return std::make_unique<FullInterferenceAdversary>();
  }
  if (options.adversary == "greedy") {
    return std::make_unique<GreedyBlockerAdversary>();
  }
  if (options.adversary.rfind("bernoulli:", 0) == 0) {
    const double p = std::stod(options.adversary.substr(10));
    return std::make_unique<BernoulliAdversary>(p, options.seed + 0xADu);
  }
  throw std::invalid_argument("unknown adversary: " + options.adversary);
}

CollisionRule parse_rule(const std::string& rule) {
  if (rule == "cr1") return CollisionRule::CR1;
  if (rule == "cr2") return CollisionRule::CR2;
  if (rule == "cr3") return CollisionRule::CR3;
  if (rule == "cr4") return CollisionRule::CR4;
  throw std::invalid_argument("unknown rule: " + rule);
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) {
    usage();
    return 2;
  }
  const Options& options = *parsed;
  if (options.help) {
    usage();
    return 0;
  }
  try {
    const DualGraph net = build_network(options);
    const ProcessFactory factory = build_algorithm(options, net);
    const auto adversary = build_adversary(options);

    SimConfig config;
    config.rule = parse_rule(options.rule);
    config.start = options.start == "sync" ? StartRule::Synchronous
                                           : StartRule::Asynchronous;
    config.max_rounds = options.max_rounds;

    if (options.csv) {
      std::puts("trial,seed,completed,rounds,sends,collision_events");
    } else {
      std::printf("network=%s n=%d (|E|=%zu unreliable=%zu) algorithm=%s "
                  "adversary=%s %s %s\n",
                  options.network.c_str(), net.node_count(),
                  net.g().edge_count(), net.unreliable_edge_count(),
                  options.algorithm.c_str(), options.adversary.c_str(),
                  to_string(config.rule).c_str(),
                  to_string(config.start).c_str());
    }

    std::vector<Round> rounds;
    for (int t = 0; t < options.trials; ++t) {
      config.seed = mix_seed(options.seed, static_cast<std::uint64_t>(t));
      const SimResult result =
          run_broadcast(net, factory, *adversary, config);
      if (options.csv) {
        std::printf("%d,%llu,%d,%lld,%llu,%llu\n", t,
                    static_cast<unsigned long long>(config.seed),
                    result.completed ? 1 : 0,
                    static_cast<long long>(result.completion_round),
                    static_cast<unsigned long long>(result.total_sends),
                    static_cast<unsigned long long>(
                        result.total_collision_events));
      } else {
        std::printf("trial %2d: completed=%s rounds=%lld sends=%llu "
                    "collisions=%llu\n",
                    t, result.completed ? "yes" : "no",
                    static_cast<long long>(result.completion_round),
                    static_cast<unsigned long long>(result.total_sends),
                    static_cast<unsigned long long>(
                        result.total_collision_events));
      }
      if (result.completed) rounds.push_back(result.completion_round);
    }
    if (!options.csv && options.trials > 1 && !rounds.empty()) {
      const auto summary = dualrad::stats::summarize_rounds(rounds);
      std::printf("summary: mean=%.1f median=%.0f min=%.0f max=%.0f "
                  "(%zu/%d completed)\n",
                  summary.mean, summary.median, summary.min, summary.max,
                  rounds.size(), options.trials);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
