#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

/// \file dualrad_lint.cpp
/// CLI for the dualrad determinism linter (tools/lint_core.hpp).
///
/// Deliberately self-contained (no dualrad library, no third-party deps):
/// `g++ -std=c++20 -O2 tools/dualrad_lint.cpp -o dualrad_lint` builds it in
/// a couple of seconds, so CI runs it as a first-stage gate before the main
/// build ever configures.
///
///   dualrad_lint [--root=DIR] [paths...]   lint src/ (or the given paths)
///   dualrad_lint --list-rules              print the ruleset with rationale
///   dualrad_lint --fix-hints               append a fix hint per finding
///   dualrad_lint --allowlist=FILE          override tools/lint_allow.txt
///
/// Exit status: 0 clean (allowed findings are reported but do not fail),
/// 1 unallowed findings, 2 usage or I/O error.

namespace fs = std::filesystem;
namespace lint = dualrad::lint;

namespace {

struct Options {
  std::string root = ".";
  std::string allowlist;  // empty: <root>/tools/lint_allow.txt if present
  std::vector<std::string> paths;
  bool fix_hints = false;
  bool list_rules = false;
  bool quiet = false;
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: dualrad_lint [--root=DIR] [--allowlist=FILE] [--fix-hints]\n"
      "                    [--list-rules] [--quiet] [paths...]\n"
      "\n"
      "Static determinism checker for the dualrad tree. Lints .cpp/.hpp\n"
      "files under the given paths (default: src/) relative to --root and\n"
      "exits non-zero on any finding not covered by an allowlist entry or\n"
      "an inline '// lint: <token>' justification.\n");
}

[[nodiscard]] std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + p.string());
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Repo-relative path with forward slashes, for rule scoping and output.
[[nodiscard]] std::string rel_path(const fs::path& root, const fs::path& p) {
  std::string s = fs::relative(p, root).generic_string();
  return s;
}

void collect_files(const fs::path& root, const std::string& arg,
                   std::vector<fs::path>& files) {
  const fs::path p = root / arg;
  if (fs::is_regular_file(p)) {
    files.push_back(p);
    return;
  }
  if (!fs::is_directory(p)) {
    throw std::runtime_error("no such file or directory: " + p.string());
  }
  for (const auto& entry : fs::recursive_directory_iterator(p)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h") {
      files.push_back(entry.path());
    }
  }
}

void print_rules() {
  std::printf("dualrad_lint ruleset:\n\n");
  for (const lint::Rule& r : lint::rules()) {
    std::printf("%-22s %.*s\n", std::string(r.id).c_str(),
                static_cast<int>(r.summary.size()), r.summary.data());
    std::printf("%-22s why: %.*s\n", "",
                static_cast<int>(r.rationale.size()), r.rationale.data());
    std::printf("%-22s fix: %.*s\n", "",
                static_cast<int>(r.hint.size()), r.hint.data());
    if (!r.annotation.empty()) {
      std::printf("%-22s escape: '// %.*s (<justification>)'\n", "",
                  static_cast<int>(r.annotation.size()), r.annotation.data());
    } else {
      std::printf("%-22s escape: tools/lint_allow.txt only\n", "");
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::string(prefix).size();
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg == "--fix-hints") {
      opt.fix_hints = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (const char* v = value("--root=")) {
      opt.root = v;
    } else if (const char* v = value("--allowlist=")) {
      opt.allowlist = v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "dualrad_lint: unknown option %s\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      opt.paths.push_back(arg);
    }
  }

  if (opt.list_rules) {
    print_rules();
    return 0;
  }
  if (opt.paths.empty()) opt.paths.emplace_back("src");

  try {
    const fs::path root = fs::canonical(opt.root);

    lint::Linter linter;
    fs::path allow_path;
    if (!opt.allowlist.empty()) {
      allow_path = opt.allowlist;
    } else if (fs::exists(root / "tools" / "lint_allow.txt")) {
      allow_path = root / "tools" / "lint_allow.txt";
    }
    if (!allow_path.empty()) {
      const std::vector<lint::AllowEntry> entries =
          lint::parse_allowlist(read_file(allow_path));
      for (const lint::AllowEntry& e : entries) {
        if (e.rule != "*" && lint::find_rule(e.rule) == nullptr) {
          std::fprintf(stderr,
                       "dualrad_lint: warning: allowlist names unknown rule "
                       "'%s'\n",
                       e.rule.c_str());
        }
      }
      linter.set_allowlist(entries);
    }

    std::vector<fs::path> files;
    for (const std::string& p : opt.paths) collect_files(root, p, files);
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    for (const fs::path& f : files) {
      linter.lint_file(rel_path(root, f), read_file(f));
    }

    std::size_t allowed = 0;
    for (const lint::Finding& f : linter.findings()) {
      if (f.allowed) {
        ++allowed;
        if (!opt.quiet) {
          std::printf("%s:%zu: [%s] %s (allowlisted)\n", f.path.c_str(),
                      f.line, f.rule.c_str(), f.message.c_str());
        }
        continue;
      }
      std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
      const lint::Rule* r = lint::find_rule(f.rule);
      if (opt.fix_hints && r != nullptr) {
        std::printf("    hint: %.*s\n", static_cast<int>(r->hint.size()),
                    r->hint.data());
      }
    }

    const std::size_t bad = linter.unallowed_count();
    if (!opt.quiet || bad != 0) {
      std::printf("dualrad_lint: %zu file(s), %zu finding(s), %zu allowed\n",
                  files.size(), linter.findings().size(), allowed);
    }
    return bad == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dualrad_lint: %s\n", e.what());
    return 2;
  }
}
