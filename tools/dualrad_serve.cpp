// dualrad_serve — campaign service mode: a persistent coordinator that
// dispatches work units to a pool of worker processes over Unix-domain or
// TCP sockets, with a crash-safe checkpoint journal.
//
// Examples:
//   # coordinator with an in-process listener, 4 forked workers, journal:
//   dualrad_serve serve --listen=/tmp/dualrad.sock --filter=dual
//       --journal=camp.journal --spawn=4 --jsonl=trials.jsonl
//
//   # external workers (any mix of machines for TCP endpoints):
//   dualrad_serve serve --listen=:7421 --filter=dual --journal=camp.journal
//   dualrad_serve worker --connect=:7421
//   dualrad_serve status --connect=:7421
//
//   # after a coordinator crash, resume from the journal — the merged
//   # export is byte-identical to an uninterrupted run:
//   dualrad_serve serve --listen=:7421 --filter=dual
//       --journal=camp.journal --resume --jsonl=trials.jsonl
//
// Determinism contract: every trial is a pure function of (scenario, master
// seed, trial index), so the coordinator's merged output is byte-identical
// for ANY worker count, any unit size, any interleaving, and any number of
// crashes/retries — the tests pin this.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "campaign/builtin_scenarios.hpp"
#include "campaign/export.hpp"
#include "campaign/jsonl.hpp"
#include "obs/heartbeat.hpp"
#include "serve/coordinator.hpp"
#include "serve/faultline.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"
#include "stats/table.hpp"

namespace {

using namespace dualrad;
namespace jsonl = campaign::jsonl;

std::atomic<bool> g_stop{false};

extern "C" void on_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

void install_signal_handlers() {
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
}

struct Options {
  std::string command;
  std::string listen;
  std::string connect;
  std::string filter;
  std::uint64_t seed = 1;
  std::size_t trials = 0;
  std::uint32_t unit_trials = 4;
  double lease_secs = 30.0;
  std::string journal_path;
  bool resume = false;
  bool idle = false;
  unsigned threads_per_trial = 0;
  unsigned spawn = 0;
  unsigned heartbeat_secs = 0;
  std::string worker_id;
  std::string jsonl_path;
  std::string csv_path;
  std::string summary_jsonl_path;
  std::string summary_csv_path;
  std::string telemetry_jsonl_path;
  std::string quarantine_jsonl_path;
  std::string faults;  ///< fault-injection spec (faultline.hpp grammar)
  bool telemetry_wanted = false;
  bool quiet = false;
  bool help = false;
};

void usage() {
  std::puts(
      "usage: dualrad_serve <serve|worker|submit|status> [options]\n"
      "\n"
      "serve — run the coordinator\n"
      "  --listen=EP         endpoint: a path => Unix socket, host:port or\n"
      "                      :port => TCP (required)\n"
      "  --filter=SUBSTR     scenarios to run (default: all); with --idle,\n"
      "                      wait for a `submit` instead\n"
      "  --seed=N            master seed (default 1)\n"
      "  --trials=N          override every scenario's trial count\n"
      "  --unit-trials=N     trials per work unit / lease (default 4;\n"
      "                      0 = one unit per scenario)\n"
      "  --lease-secs=S      requeue a unit not committed within S seconds\n"
      "                      (default 30)\n"
      "  --journal=PATH      crash-safe checkpoint journal (recommended)\n"
      "  --resume            load --journal first and skip committed trials\n"
      "  --threads-per-trial=N  dispatched to workers in every unit\n"
      "  --telemetry         collect per-trial telemetry rows from workers\n"
      "  --spawn=N           fork N worker processes connected to --listen\n"
      "  --heartbeat=SECS    print coordinator status every SECS seconds\n"
      "  --jsonl/--csv/--summary-jsonl/--summary-csv/--telemetry-jsonl=PATH\n"
      "                      exports, byte-identical to a batch run\n"
      "  --quarantine-jsonl=PATH  write the quarantined-unit manifest (one\n"
      "                      JSON object per quarantined unit)\n"
      "  --faults=SPEC       deterministic fault injection, e.g.\n"
      "                      'seed=7;drop=0.03;corrupt=0.02;delay=0.05:25;\n"
      "                      crash=0.01;stall=0.01:300' — propagated to\n"
      "                      --spawn'ed workers; exit 3 if units were\n"
      "                      quarantined\n"
      "  --quiet             suppress the summary table\n"
      "\n"
      "worker — run one worker process\n"
      "  --connect=EP        coordinator endpoint (required)\n"
      "  --id=NAME           stable worker id (default: assigned)\n"
      "  --threads-per-trial=N  override the coordinator's value\n"
      "  --faults=SPEC       inject wire/lifecycle faults in this worker\n"
      "\n"
      "submit — load a campaign into an --idle coordinator\n"
      "  --connect=EP --filter=SUBSTR [--seed=N --trials=N]\n"
      "\n"
      "status — print coordinator status\n"
      "  --connect=EP\n");
}

std::optional<Options> parse(int argc, char** argv) try {
  Options options;
  if (argc < 2) return std::nullopt;
  options.command = argv[1];
  if (options.command == "--help" || options.command == "-h") {
    options.help = true;
    return options;
  }
  bool telemetry = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> std::optional<std::string> {
      const std::string p(prefix);
      if (arg.rfind(p, 0) == 0) return arg.substr(p.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--idle") {
      options.idle = true;
    } else if (arg == "--telemetry") {
      telemetry = true;
    } else if (auto v = value("--listen=")) {
      options.listen = *v;
    } else if (auto v = value("--connect=")) {
      options.connect = *v;
    } else if (auto v = value("--filter=")) {
      options.filter = *v;
    } else if (auto v = value("--seed=")) {
      options.seed = std::stoull(*v);
    } else if (auto v = value("--trials=")) {
      options.trials = std::stoul(*v);
    } else if (auto v = value("--unit-trials=")) {
      options.unit_trials = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (auto v = value("--lease-secs=")) {
      options.lease_secs = std::stod(*v);
    } else if (auto v = value("--journal=")) {
      options.journal_path = *v;
    } else if (auto v = value("--threads-per-trial=")) {
      options.threads_per_trial = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value("--spawn=")) {
      options.spawn = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value("--heartbeat=")) {
      options.heartbeat_secs = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value("--id=")) {
      options.worker_id = *v;
    } else if (auto v = value("--jsonl=")) {
      options.jsonl_path = *v;
    } else if (auto v = value("--csv=")) {
      options.csv_path = *v;
    } else if (auto v = value("--summary-jsonl=")) {
      options.summary_jsonl_path = *v;
    } else if (auto v = value("--summary-csv=")) {
      options.summary_csv_path = *v;
    } else if (auto v = value("--telemetry-jsonl=")) {
      options.telemetry_jsonl_path = *v;
    } else if (auto v = value("--quarantine-jsonl=")) {
      options.quarantine_jsonl_path = *v;
    } else if (auto v = value("--faults=")) {
      options.faults = *v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  options.telemetry_wanted = telemetry || !options.telemetry_jsonl_path.empty();
  return options;
} catch (const std::exception&) {
  std::fprintf(stderr, "malformed numeric argument\n");
  return std::nullopt;
}

/// One-shot request/response for the submit/status clients.
std::optional<std::string> rpc(const std::string& endpoint,
                               const std::string& payload) {
  const int fd = serve::connect_endpoint(endpoint);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s\n", endpoint.c_str());
    return std::nullopt;
  }
  std::optional<std::string> reply;
  if (serve::send_frame(fd, payload)) {
    serve::FrameReader reader;
    bool timed_out = false;
    reply = serve::recv_frame(fd, reader, /*timeout_ms=*/10'000, &timed_out);
    if (!reply.has_value()) {
      std::fprintf(stderr, timed_out ? "request timed out\n"
                                     : "connection closed mid-request\n");
    }
  } else {
    std::fprintf(stderr, "send failed\n");
  }
  ::close(fd);
  return reply;
}

void print_summaries(const campaign::CampaignResult& result) {
  stats::Table table({"scenario", "trials", "failed", "mean rounds", "median",
                      "p90", "mean sends"});
  for (const campaign::ScenarioSummary& s : result.summaries) {
    const bool any = s.rounds.count > 0;
    table.add_row({s.scenario, std::to_string(s.trials),
                   std::to_string(s.failures),
                   any ? stats::Table::num(s.rounds.mean, 1) : "-",
                   any ? stats::Table::num(s.rounds.median, 1) : "-",
                   any ? stats::Table::num(s.rounds.p90, 1) : "-",
                   stats::Table::num(s.mean_sends, 1)});
  }
  table.print(std::cout);
}

/// JSONL manifest of quarantined units (explicit, machine-readable: the
/// campaign "completed" but these trial ranges are missing from the export).
std::string quarantine_to_jsonl(
    const std::vector<serve::Coordinator::QuarantinedUnit>& units) {
  std::string out;
  for (const auto& q : units) {
    out += "{\"scenario\":\"" + q.scenario + "\"";
    out += ",\"trial_begin\":" + std::to_string(q.trial_begin);
    out += ",\"trial_end\":" + std::to_string(q.trial_end);
    out += ",\"committed\":" + std::to_string(q.committed);
    out += ",\"expiries\":" + std::to_string(q.expiries);
    out += ",\"last_worker\":\"" + q.last_worker + "\"}\n";
  }
  return out;
}

int run_serve(const Options& options) {
  if (options.listen.empty()) {
    std::fprintf(stderr, "serve requires --listen=ENDPOINT\n");
    return 2;
  }
  const campaign::ScenarioRegistry registry = campaign::builtin_registry();

  // Fault injection in the serve process covers the coordinator's journal
  // writes and the server-side reply sends; workers get the same spec via
  // --spawn propagation and inject on their side of the wire.
  std::optional<serve::FaultInjector> injector;
  std::optional<serve::ScopedFaultInjector> injector_guard;
  if (!options.faults.empty()) {
    injector.emplace(serve::parse_fault_plan(options.faults));
    injector_guard.emplace(*injector);
    std::fprintf(stderr, "[serve] fault injection armed: %s\n",
                 serve::fault_plan_to_spec(injector->plan()).c_str());
  }

  serve::Coordinator::Config config;
  config.master_seed = options.seed;
  config.trials_override = options.trials;
  config.unit_trials = options.unit_trials;
  config.lease_secs = options.lease_secs;
  config.journal_path = options.journal_path;
  config.resume = options.resume;
  config.threads_per_trial =
      options.threads_per_trial != 0 ? options.threads_per_trial : 1;
  config.collect_telemetry = options.telemetry_wanted;
  serve::Coordinator coordinator(config);

  if (!options.idle) {
    const std::vector<campaign::Scenario> scenarios =
        registry.match(options.filter);
    if (scenarios.empty()) {
      std::fprintf(stderr, "no scenario matches filter '%s'\n",
                   options.filter.c_str());
      return 1;
    }
    coordinator.load_campaign(scenarios);
    const serve::Coordinator::Status s = coordinator.status();
    std::fprintf(stderr,
                 "[serve] campaign loaded: %zu scenario(s), %zu trial(s)%s\n",
                 s.scenarios, s.total_trials,
                 s.resumed != 0
                     ? (" (" + std::to_string(s.resumed) + " resumed)").c_str()
                     : "");
  }

  const int listen_fd = serve::listen_endpoint(options.listen);
  if (listen_fd < 0) {
    std::fprintf(stderr, "cannot listen on %s\n", options.listen.c_str());
    return 1;
  }
  std::fprintf(stderr, "[serve] listening on %s\n", options.listen.c_str());

  serve::Server::Options server_options;
  server_options.registry = &registry;
  serve::Server server(coordinator, server_options);
  std::thread accept_thread([&] { server.run_accept_loop(listen_fd); });

  // --spawn: fork workers exec'ing this binary's worker subcommand, so the
  // one-machine case needs a single command line. Each child is a full
  // process (own address space, own sockets) — kill -9 on one exercises the
  // same lease-requeue path as losing a remote machine. The fault spec is
  // propagated so injected wire/lifecycle faults happen worker-side too.
  const auto spawn_worker = [&options]() -> pid_t {
    const pid_t pid = ::fork();
    if (pid == 0) {
      const std::string connect_arg = "--connect=" + options.listen;
      const std::string faults_arg = "--faults=" + options.faults;
      if (options.faults.empty()) {
        ::execl("/proc/self/exe", "dualrad_serve", "worker",
                connect_arg.c_str(), static_cast<char*>(nullptr));
      } else {
        ::execl("/proc/self/exe", "dualrad_serve", "worker",
                connect_arg.c_str(), faults_arg.c_str(),
                static_cast<char*>(nullptr));
      }
      std::perror("execl");
      ::_exit(127);
    }
    return pid;
  };
  std::vector<pid_t> children;
  for (unsigned i = 0; i < options.spawn; ++i) {
    const pid_t pid = spawn_worker();
    if (pid > 0) children.push_back(pid);
  }

  install_signal_handlers();

  obs::Heartbeat heartbeat;
  if (options.heartbeat_secs > 0) {
    heartbeat.start(std::chrono::seconds(options.heartbeat_secs), [&] {
      const serve::Coordinator::Status s = coordinator.status();
      std::string extra;
      if (s.lease_expiries != 0) {
        extra += " | " + std::to_string(s.lease_expiries) + " expiry(ies)";
      }
      if (s.speculative_dispatches != 0) {
        extra += " | " + std::to_string(s.speculative_dispatches) +
                 " speculative";
      }
      if (s.units_quarantined != 0) {
        extra += " | " + std::to_string(s.units_quarantined) + " quarantined";
      }
      if (s.journal_errors != 0) {
        extra +=
            " | " + std::to_string(s.journal_errors) + " journal error(s)";
      }
      if (injector.has_value()) {
        extra += " | faults: " + injector->totals().summary();
      }
      std::fprintf(stderr,
                   "[serve] %zu/%zu trials | units %zu pending %zu leased "
                   "%zu done | %zu worker(s) | lease %zu ms%s\n",
                   s.committed, s.total_trials, s.units_pending,
                   s.units_leased, s.units_done, s.workers,
                   s.lease_ms_effective, extra.c_str());
    });
  }

  // Supervision loop: besides waiting for completion, reap exited workers
  // (WNOHANG) and respawn replacements while the campaign is unfinished — a
  // worker lost to an injected crash (or a real one) must not shrink the
  // pool. Bounded so a worker dying instantly on startup cannot fork-bomb.
  bool interrupted = false;
  unsigned respawns = 0;
  constexpr unsigned kMaxRespawns = 512;
  for (;;) {
    if (g_stop.load(std::memory_order_relaxed)) {
      interrupted = true;
      break;
    }
    if (coordinator.campaign_loaded() &&
        coordinator.wait_done(std::chrono::milliseconds(200))) {
      break;
    }
    if (!coordinator.campaign_loaded()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    for (pid_t& pid : children) {
      if (pid <= 0) continue;
      int wstatus = 0;
      if (::waitpid(pid, &wstatus, WNOHANG) != pid) continue;
      pid = -1;
      if (coordinator.campaign_loaded() && !coordinator.done() &&
          !g_stop.load(std::memory_order_relaxed) && respawns < kMaxRespawns) {
        const pid_t fresh = spawn_worker();
        if (fresh > 0) {
          pid = fresh;
          ++respawns;
          std::fprintf(stderr,
                       "[serve] worker exited (status %d) — respawned "
                       "(%u respawn(s))\n",
                       wstatus, respawns);
        }
      }
    }
  }
  heartbeat.stop();

  if (!interrupted) {
    // Let workers hear "done" on their next lease poll before the listener
    // goes away; spawned children are reaped so their exit is observable.
    bool any_child = false;
    for (const pid_t pid : children) {
      if (pid <= 0) continue;
      any_child = true;
      int wstatus = 0;
      (void)::waitpid(pid, &wstatus, 0);
    }
    if (!any_child && options.spawn == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
  } else {
    for (const pid_t pid : children) {
      if (pid > 0) (void)::kill(pid, SIGTERM);
    }
    for (const pid_t pid : children) {
      if (pid <= 0) continue;
      int wstatus = 0;
      (void)::waitpid(pid, &wstatus, 0);
    }
  }

  server.request_stop();
  accept_thread.join();
  ::close(listen_fd);

  if (interrupted) {
    if (!options.journal_path.empty()) {
      std::fprintf(stderr,
                   "[serve] interrupted — journal %s is durable; restart with "
                   "--resume to continue\n",
                   options.journal_path.c_str());
    } else {
      std::fprintf(stderr, "[serve] interrupted — no --journal, progress "
                           "discarded\n");
    }
    return 130;
  }

  const campaign::CampaignResult result = coordinator.finalize();
  const std::vector<serve::Coordinator::QuarantinedUnit> quarantined =
      coordinator.quarantined();
  if (!quarantined.empty()) {
    // Explicit manifest: the campaign completed (no livelock), but these
    // units never committed fully — exports below contain only committed
    // rows.
    std::fprintf(stderr,
                 "[serve] WARNING: %zu unit(s) quarantined (exports contain "
                 "the committed subset):\n",
                 quarantined.size());
    for (const auto& q : quarantined) {
      std::fprintf(stderr,
                   "[serve]   %s trials [%u,%u): %u/%u committed, "
                   "%u lease expiries, last worker '%s'\n",
                   q.scenario.c_str(), q.trial_begin, q.trial_end, q.committed,
                   q.trial_end - q.trial_begin, q.expiries,
                   q.last_worker.c_str());
    }
  }
  if (!options.quarantine_jsonl_path.empty()) {
    campaign::write_file(options.quarantine_jsonl_path,
                         quarantine_to_jsonl(quarantined));
  }
  if (!options.jsonl_path.empty()) {
    campaign::write_file(options.jsonl_path,
                         campaign::trials_to_jsonl(result.trials));
  }
  if (!options.csv_path.empty()) {
    campaign::write_file(options.csv_path,
                         campaign::trials_to_csv(result.trials));
  }
  if (!options.summary_jsonl_path.empty()) {
    campaign::write_file(options.summary_jsonl_path,
                         campaign::summaries_to_jsonl(result.summaries));
  }
  if (!options.summary_csv_path.empty()) {
    campaign::write_file(options.summary_csv_path,
                         campaign::summaries_to_csv(result.summaries));
  }
  if (!options.telemetry_jsonl_path.empty()) {
    campaign::write_file(options.telemetry_jsonl_path,
                         campaign::telemetry_to_jsonl(result.telemetry));
  }
  if (!options.quiet) print_summaries(result);
  // Exit 3 distinguishes "completed with quarantined gaps" from clean
  // success — scripted callers must not treat a partial export as whole.
  return quarantined.empty() ? 0 : 3;
}

int run_worker_command(const Options& options) {
  if (options.connect.empty()) {
    std::fprintf(stderr, "worker requires --connect=ENDPOINT\n");
    return 2;
  }
  install_signal_handlers();

  std::optional<serve::FaultInjector> injector;
  std::optional<serve::ScopedFaultInjector> injector_guard;
  if (!options.faults.empty()) {
    injector.emplace(serve::parse_fault_plan(options.faults));
    injector_guard.emplace(*injector);
  }

  const campaign::ScenarioRegistry registry = campaign::builtin_registry();
  serve::WorkerOptions worker_options;
  worker_options.worker_id = options.worker_id;
  worker_options.threads_per_trial = options.threads_per_trial;
  worker_options.stop = &g_stop;
  if (!options.quiet) {
    worker_options.log = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
  // An injected crash kills the whole process (exit 137, like kill -9 would
  // report), so the serve supervisor's respawn path is what heals it.
  worker_options.crash = [] { ::_exit(137); };
  const std::string endpoint = options.connect;
  const serve::WorkerStats stats = serve::run_worker(
      [&endpoint] { return serve::connect_endpoint(endpoint); },
      registry.all(), worker_options);
  std::fprintf(stderr,
               "[worker %s] %s: %zu unit(s), %zu trial(s), %zu duplicate "
               "commit(s), %zu reconnect(s)\n",
               stats.worker_id.c_str(), stats.stopped ? "stopped" : "done",
               stats.units, stats.trials, stats.duplicates, stats.reconnects);
  if (injector.has_value()) {
    std::fprintf(stderr, "[worker %s] faults injected: %s\n",
                 stats.worker_id.c_str(),
                 injector->totals().summary().c_str());
  }
  return stats.stopped ? 130 : 0;
}

int run_submit(const Options& options) {
  if (options.connect.empty()) {
    std::fprintf(stderr, "submit requires --connect=ENDPOINT\n");
    return 2;
  }
  std::string payload = "{\"type\":\"submit\"";
  payload += ",\"filter\":\"" + options.filter + "\"";
  payload += ",\"seed\":" + std::to_string(options.seed);
  payload += ",\"trials\":" + std::to_string(options.trials);
  payload += "}";
  const std::optional<std::string> reply = rpc(options.connect, payload);
  if (!reply.has_value()) return 1;
  if (jsonl::field(*reply, "type") == "error") {
    std::fprintf(stderr, "submit rejected: %s\n",
                 std::string(jsonl::field(*reply, "message")).c_str());
    return 1;
  }
  std::printf("submitted: %s scenario(s), %s trial(s)\n",
              std::string(jsonl::field(*reply, "scenarios")).c_str(),
              std::string(jsonl::field(*reply, "total_trials")).c_str());
  return 0;
}

int run_status(const Options& options) {
  if (options.connect.empty()) {
    std::fprintf(stderr, "status requires --connect=ENDPOINT\n");
    return 2;
  }
  const std::optional<std::string> reply =
      rpc(options.connect, "{\"type\":\"status\"}");
  if (!reply.has_value()) return 1;
  if (jsonl::field(*reply, "type") != "state") {
    std::fprintf(stderr, "unexpected reply: %s\n", reply->c_str());
    return 1;
  }
  const auto show = [&](const char* key) {
    std::printf("%-14s %s\n", key,
                std::string(jsonl::field(*reply, key)).c_str());
  };
  show("loaded");
  show("finished");
  show("scenarios");
  show("total_trials");
  show("committed");
  show("resumed");
  show("units_pending");
  show("units_leased");
  show("units_done");
  show("units_quarantined");
  show("trials_quarantined");
  show("workers");
  show("lease_expiries");
  show("speculative_dispatches");
  show("journal_errors");
  show("lease_ms_effective");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> parsed = parse(argc, argv);
  if (!parsed.has_value()) {
    usage();
    return 2;
  }
  const Options& options = *parsed;
  if (options.help) {
    usage();
    return 0;
  }
  try {
    if (options.command == "serve") return run_serve(options);
    if (options.command == "worker") return run_worker_command(options);
    if (options.command == "submit") return run_submit(options);
    if (options.command == "status") return run_status(options);
    std::fprintf(stderr, "unknown command: %s\n", options.command.c_str());
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
