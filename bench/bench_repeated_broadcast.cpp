// X1 — extension experiment: repeated broadcast with topology learning
// (the paper's future-work direction, Section 8).
//
// Compares, over a sequence of broadcasts on the same network:
//   naive    — rerun the topology-oblivious algorithm every time;
//   learned  — train for a few broadcasts, ETX-style-estimate the reliable
//              subgraph from the traces, then switch to a collision-free
//              TDMA schedule on the learned graph.
//
// Against a *hostile* adversary (greedy blocker) the payoff is structural:
// the TDMA schedule has one sender per round, so no unreliable link can
// jam it — post-training broadcasts cost one period regardless of the
// adversary, while the oblivious algorithm pays the adversarial price every
// time. Against pure channel noise (non-resetting Bernoulli) the estimator
// risk shows: an unreliable link that happened to deliver throughout
// training poisons the schedule (the gray-zone trap ETX deployments face) —
// reported in the "estimate sound" column.

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"
#include "repeated/repeated.hpp"

using namespace dualrad;

namespace {

void run_block(const char* adversary_name, Adversary& adversary,
               stats::Table& table) {
  const DualGraph nets[] = {
      duals::gray_zone({.n = 48, .r_reliable = 0.25, .r_gray = 0.6, .seed = 7}),
      duals::backbone_plus_unreliable(
          {.n = 48, .p_reliable = 0.06, .p_unreliable = 0.25, .seed = 7}),
  };
  const char* net_names[] = {"grayzone", "backbone"};
  for (std::size_t i = 0; i < 2; ++i) {
    const DualGraph& net = nets[i];
    const NodeId n = net.node_count();
    struct AlgoSpec {
      const char* name;
      ProcessFactory factory;
    };
    const AlgoSpec algorithms[] = {
        {"harmonic", make_harmonic_factory(n)},
        {"strong select", make_strong_select_factory(n)},
    };
    for (const auto& algo : algorithms) {
      repeated::RepeatedOptions options;
      options.broadcasts = 10;
      options.training = 4;
      options.min_samples = 5;
      options.config.max_rounds = 10'000'000;
      const auto report = repeated::run_repeated_broadcast(
          net, algo.factory, adversary, options);
      table.add_row({adversary_name, net_names[i], algo.name,
                     std::to_string(report.naive_total()),
                     std::to_string(report.learned_total()),
                     report.tdma_period > 0 ? std::to_string(report.tdma_period)
                                            : std::string("(fallback)"),
                     report.topology.sound ? "yes" : "NO (gray-zone trap)",
                     report.all_completed ? "yes" : "NO"});
    }
  }
}

}  // namespace

int main() {
  benchutil::print_header(
      "X1", "Repeated broadcast with topology learning (future work, §8)",
      "learning the reliable topology amortizes: post-training broadcasts "
      "run on a collision-free, adversary-proof schedule");

  stats::Table table({"adversary", "network", "algorithm", "naive total",
                      "learned total", "tdma period", "estimate sound",
                      "all completed"});
  GreedyBlockerAdversary greedy;
  run_block("greedy blocker", greedy, table);
  BernoulliAdversary noise(0.3, 123, /*reset_each_execution=*/false);
  run_block("bernoulli(0.3)", noise, table);
  table.print(std::cout);

  std::cout << "\nper-broadcast breakdown (grayzone / harmonic / greedy "
               "blocker; training = first 4):\n";
  {
    const DualGraph net = duals::gray_zone(
        {.n = 48, .r_reliable = 0.25, .r_gray = 0.6, .seed = 7});
    GreedyBlockerAdversary adversary;
    repeated::RepeatedOptions options;
    options.broadcasts = 10;
    options.training = 4;
    options.min_samples = 5;
    options.config.max_rounds = 10'000'000;
    const auto report = repeated::run_repeated_broadcast(
        net, make_harmonic_factory(net.node_count()), adversary, options);
    stats::Table detail({"broadcast", "naive rounds", "learned rounds"});
    for (std::size_t b = 0; b < report.naive_rounds.size(); ++b) {
      detail.add_row({std::to_string(b + 1),
                      benchutil::rounds_str(report.naive_rounds[b]),
                      benchutil::rounds_str(report.learned_rounds[b])});
    }
    detail.print(std::cout);
  }
  return 0;
}
