// X1 — extension experiment: repeated broadcast with topology learning
// (the paper's future-work direction, Section 8).
//
// Compares, over a sequence of broadcasts on the same network:
//   naive    — rerun the topology-oblivious algorithm every time;
//   learned  — train for a few broadcasts, ETX-style-estimate the reliable
//              subgraph from the traces, then switch to a collision-free
//              TDMA schedule on the learned graph.
//
// Against a *hostile* adversary (greedy blocker) the payoff is structural:
// the TDMA schedule has one sender per round, so no unreliable link can
// jam it — post-training broadcasts cost one period regardless of the
// adversary, while the oblivious algorithm pays the adversarial price every
// time. Against pure channel noise (non-resetting Bernoulli) the estimator
// risk shows: an unreliable link that happened to deliver throughout
// training poisons the schedule (the gray-zone trap ETX deployments face) —
// reported in the "estimate sound" column.
//
// The (adversary x network x algorithm) combos run as ONE campaign: each
// combo is a scenario whose TrialRunner wraps the whole learning pipeline
// (a logical trial = 2 x broadcasts executions against one adversary
// instance), so the engine parallelizes the combos and derives every
// combo's seeds and adversary from its own deterministic stream — the old
// hand-rolled loop shared one Bernoulli noise stream across combos, making
// results depend on combo order.

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"
#include "repeated/repeated.hpp"

using namespace dualrad;

namespace {

struct Combo {
  const char* adversary_name;
  const char* net_name;
  const char* algo_name;
  campaign::AdversaryFactory adversary;
  campaign::NetworkBuilder network;
  campaign::AlgorithmBuilder algorithm;

  [[nodiscard]] std::string scenario_name() const {
    return std::string("x1/") + adversary_name + "/" + net_name + "/" +
           algo_name;
  }
};

campaign::NetworkBuilder grayzone() {
  return [] {
    return duals::gray_zone(
        {.n = 48, .r_reliable = 0.25, .r_gray = 0.6, .seed = 7});
  };
}

campaign::NetworkBuilder backbone() {
  return [] {
    return duals::backbone_plus_unreliable(
        {.n = 48, .p_reliable = 0.06, .p_unreliable = 0.25, .seed = 7});
  };
}

campaign::AlgorithmBuilder harmonic() {
  return [](const DualGraph& net) {
    return make_harmonic_factory(net.node_count());
  };
}

campaign::AlgorithmBuilder strong_select() {
  return [](const DualGraph& net) {
    return make_strong_select_factory(net.node_count());
  };
}

campaign::AdversaryFactory greedy() {
  return campaign::make_adversary_factory<GreedyBlockerAdversary>();
}

campaign::AdversaryFactory noise() {
  // Non-resetting: the noise stream flows across the broadcast sequence, so
  // link-quality samples are not correlated replays. Seeded per trial by
  // the engine.
  return [](std::uint64_t seed) {
    return std::make_unique<BernoulliAdversary>(0.3, seed,
                                                /*reset_each_execution=*/false);
  };
}

}  // namespace

int main() {
  benchutil::print_header(
      "X1", "Repeated broadcast with topology learning (future work, §8)",
      "learning the reliable topology amortizes: post-training broadcasts "
      "run on a collision-free, adversary-proof schedule");

  std::vector<Combo> combos;
  for (const auto& [adv_name, adv] :
       {std::pair<const char*, campaign::AdversaryFactory>{"greedy", greedy()},
        {"bernoulli:0.3", noise()}}) {
    combos.push_back({adv_name, "grayzone", "harmonic", adv, grayzone(),
                      harmonic()});
    combos.push_back({adv_name, "grayzone", "strong-select", adv, grayzone(),
                      strong_select()});
    combos.push_back({adv_name, "backbone", "harmonic", adv, backbone(),
                      harmonic()});
    combos.push_back({adv_name, "backbone", "strong-select", adv, backbone(),
                      strong_select()});
  }

  // One scenario per combo; the runner executes the whole learning pipeline
  // and parks the full report in the combo's slot (one trial per scenario,
  // so each slot is written exactly once).
  std::vector<repeated::RepeatedReport> reports(combos.size());
  std::vector<campaign::Scenario> scenarios;
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const Combo& combo = combos[i];
    campaign::Scenario s;
    s.name = combo.scenario_name();
    s.network = combo.network;
    s.algorithm = combo.algorithm;
    s.adversary = combo.adversary;
    s.max_rounds = 10'000'000;
    s.trials = 1;
    s.runner = [slot = &reports[i]](const DualGraph& net,
                                    const ProcessFactory& factory,
                                    Adversary& adversary,
                                    const SimConfig& config) {
      repeated::RepeatedOptions options;
      options.broadcasts = 10;
      options.training = 4;
      options.min_samples = 5;
      options.config = config;
      *slot = repeated::run_repeated_broadcast(net, factory, adversary, options);
      // Digest for the TrialRow: the learned strategy's totals.
      SimResult digest;
      digest.completed = slot->all_completed;
      digest.completion_round = slot->learned_total();
      digest.rounds_executed = slot->naive_total();
      return digest;
    };
    scenarios.push_back(std::move(s));
  }
  (void)campaign::run_campaign(scenarios);

  stats::Table table({"adversary", "network", "algorithm", "naive total",
                      "learned total", "tdma period", "estimate sound",
                      "all completed"});
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const Combo& combo = combos[i];
    const repeated::RepeatedReport& report = reports[i];
    table.add_row(
        {combo.adversary_name, combo.net_name, combo.algo_name,
         std::to_string(report.naive_total()),
         std::to_string(report.learned_total()),
         report.tdma_period > 0 ? std::to_string(report.tdma_period)
                                : std::string("(fallback)"),
         report.topology.sound ? "yes" : "NO (gray-zone trap)",
         report.all_completed ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nper-broadcast breakdown (grayzone / harmonic / greedy "
               "blocker; training = first 4):\n";
  {
    // Reuse the campaign's report for that combo — no extra serial rerun.
    const repeated::RepeatedReport& report = reports[0];
    stats::Table detail({"broadcast", "naive rounds", "learned rounds"});
    for (std::size_t b = 0; b < report.naive_rounds.size(); ++b) {
      detail.add_row({std::to_string(b + 1),
                      benchutil::rounds_str(report.naive_rounds[b]),
                      benchutil::rounds_str(report.learned_rounds[b])});
    }
    detail.print(std::cout);
  }
  return 0;
}
