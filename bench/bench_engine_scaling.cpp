// Engine-scaling bench: the sparse CSR round engine vs the dense reference
// engine on the scale/* workloads (Decay broadcast, sparse layered and
// gray-zone families, n in {1k, 10k, 100k}).
//
// For every scale scenario this runs one campaign-seeded trial (master seed
// 1, trial 0 — the exact execution dualrad_campaign would run) under the
// production engine, and under the reference engine where n makes that
// tolerable (n <= 10^4; the reference's O(n)-per-round scans are the point
// of the comparison). Emits BENCH_engine.json: per (scenario, engine) the
// completion round, wall time, rounds/sec, and the process peak RSS sampled
// after the run (Linux ru_maxrss is a high-water mark, so points run in
// ascending n and the 100k entries dominate the tail), plus a speedup map
// for every scenario measured under both engines.
//
// Usage: bench_engine_scaling [--quick] [--out=PATH]
//   --quick   skip the n=100k points (CI-friendly, ~seconds)
//   --out     output path for the JSON report (default BENCH_engine.json)

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "campaign/builtin_scenarios.hpp"
#include "campaign/engine.hpp"
#include "core/reference_engine.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"

namespace dualrad {
namespace {

struct Measurement {
  std::string scenario;
  std::string engine;
  NodeId n = 0;
  bool completed = false;
  Round rounds = 0;
  std::uint64_t sends = 0;
  double wall_ms = 0.0;
  double rounds_per_sec = 0.0;
  double peak_rss_mb = 0.0;
};

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB -> MiB (Linux)
}

Measurement run_one(const campaign::Scenario& spec, const DualGraph& net,
                    const ProcessFactory& factory, bool reference) {
  SimConfig config;
  config.rule = spec.rule;
  config.start = spec.start;
  config.max_rounds = spec.max_rounds;
  config.seed = campaign::trial_seed(1, spec.name, 0);
  config.token_sources = spec.token_sources;
  const auto adversary = spec.adversary(mix_seed(config.seed, 0xAD));

  const auto started = std::chrono::steady_clock::now();
  const SimResult result =
      reference ? run_broadcast_reference(net, factory, *adversary, config)
                : run_broadcast(net, factory, *adversary, config);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  Measurement m;
  m.scenario = spec.name;
  m.engine = reference ? "reference" : "csr";
  m.n = net.node_count();
  m.completed = result.completed;
  m.rounds = result.rounds_executed;
  m.sends = result.total_sends;
  m.wall_ms = seconds * 1e3;
  m.rounds_per_sec =
      seconds > 0 ? static_cast<double>(result.rounds_executed) / seconds : 0;
  m.peak_rss_mb = peak_rss_mb();
  return m;
}

// Scenario names are [A-Za-z0-9._/+:=-], so they embed in JSON unescaped.
void write_json(const std::string& path,
                const std::vector<Measurement>& measurements,
                const std::map<std::string, double>& speedups) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"engine_scaling\",\n  \"measurements\": [\n";
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"scenario\": \"%s\", \"engine\": \"%s\", \"n\": %d, "
                  "\"completed\": %s, \"rounds\": %lld, \"sends\": %llu, "
                  "\"wall_ms\": %.3f, \"rounds_per_sec\": %.1f, "
                  "\"peak_rss_mb\": %.1f}%s\n",
                  m.scenario.c_str(), m.engine.c_str(),
                  m.n, m.completed ? "true" : "false",
                  static_cast<long long>(m.rounds),
                  static_cast<unsigned long long>(m.sends), m.wall_ms,
                  m.rounds_per_sec, m.peak_rss_mb,
                  i + 1 < measurements.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"speedup_rounds_per_sec\": {\n";
  std::size_t i = 0;
  for (const auto& [name, speedup] : speedups) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "    \"%s\": %.2f%s\n", name.c_str(),
                  speedup, i + 1 < speedups.size() ? "," : "");
    out << buf;
    ++i;
  }
  out << "  }\n}\n";
}

}  // namespace
}  // namespace dualrad

int main(int argc, char** argv) {
  using namespace dualrad;

  bool quick = false;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_engine_scaling [--quick] [--out=PATH]\n";
      return 2;
    }
  }

  benchutil::print_header(
      "ENGINE", "sparse CSR engine vs dense reference engine",
      "rounds/sec gap grows with n; >= 5x on the 10k benign points");

  const campaign::ScenarioRegistry registry = campaign::builtin_registry();
  std::vector<campaign::Scenario> points = registry.match("scale");
  // Run the smallest n first so the peak-RSS column (a process-wide
  // high-water mark) attributes growth to the right point.
  const auto size_rank = [](const campaign::Scenario& s) {
    if (s.name.find("-100k/") != std::string::npos) return 2;
    if (s.name.find("-10k/") != std::string::npos) return 1;
    return 0;
  };
  std::stable_sort(points.begin(), points.end(),
                   [&](const auto& a, const auto& b) {
                     return size_rank(a) < size_rank(b);
                   });

  std::vector<Measurement> measurements;
  std::map<std::string, double> speedups;
  stats::Table table({"scenario", "n", "engine", "rounds", "wall ms",
                      "rounds/s", "peak RSS MB"});
  for (const campaign::Scenario& spec : points) {
    bool slow = false;
    for (const std::string& tag : spec.tags) slow = slow || tag == "slow";
    if (quick && slow) continue;

    const DualGraph net = spec.network();
    const ProcessFactory factory = spec.algorithm(net);

    const Measurement fast = run_one(spec, net, factory, /*reference=*/false);
    measurements.push_back(fast);
    table.add_row({fast.scenario, std::to_string(fast.n), fast.engine,
                   std::to_string(fast.rounds),
                   stats::Table::num(fast.wall_ms, 1),
                   stats::Table::num(fast.rounds_per_sec, 0),
                   stats::Table::num(fast.peak_rss_mb, 1)});
    if (!fast.completed) {
      std::cerr << "warning: " << fast.scenario
                << " hit the round cap under the csr engine\n";
    }

    // The dense engine's O(n) rounds make 100k points minutes-slow; the
    // comparison points are the 1k and 10k grid.
    if (size_rank(spec) <= 1) {
      const Measurement ref = run_one(spec, net, factory, /*reference=*/true);
      measurements.push_back(ref);
      table.add_row({ref.scenario, std::to_string(ref.n), ref.engine,
                     std::to_string(ref.rounds),
                     stats::Table::num(ref.wall_ms, 1),
                     stats::Table::num(ref.rounds_per_sec, 0),
                     stats::Table::num(ref.peak_rss_mb, 1)});
      if (ref.rounds_per_sec > 0) {
        speedups[spec.name] = fast.rounds_per_sec / ref.rounds_per_sec;
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nspeedup (csr rounds/sec over reference):\n";
  for (const auto& [name, speedup] : speedups) {
    std::printf("  %-45s %.2fx\n", name.c_str(), speedup);
  }

  write_json(out_path, measurements, speedups);
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
