// Engine-scaling bench: the sparse CSR round engine vs the dense reference
// engine, and the serial round loop vs the sharded parallel kernel, on the
// scale/* workloads (Decay broadcast, sparse layered and gray-zone families,
// n in {1k, 10k, 100k, 1m}, benign / bernoulli / greedy-blocker channels —
// the greedy points exercise the sparse batch adversary API at scale).
//
// For every scale scenario this runs one campaign-seeded trial (master seed
// 1, trial 0 — the exact execution dualrad_campaign would run):
//   * under the production engine ("csr");
//   * under the reference engine where n makes that tolerable (n <= 10^4;
//     the reference's O(n)-per-round scans are the point of the comparison);
//   * at n >= 10^5, additionally under the sharded parallel kernel
//     ("csr-mt4", SimConfig::threads = 4) — bit-identical results, measured
//     separately. The 10^6 points run under TraceLevel::Bounded, proving the
//     memory-capped trace mode on the workloads it exists for.
// Emits BENCH_engine.json: per (scenario, engine) the completion round, wall
// time (min over --repeat runs), rounds/sec, and the *per-measurement* peak
// RSS (the kernel high-water mark is reset before each measurement via
// obs::reset_peak, so a row's peak is its own, not inherited from earlier
// rows; where /proc/self/clear_refs is unavailable the column degrades to
// the monotone process-wide peak and the JSON flags it with
// "rss_per_scenario": false), plus speedup maps for engine-vs-reference and
// parallel-vs-serial.
//
// Usage: bench_engine_scaling [--quick] [--repeat=N] [--filter=SUBSTR]
//                             [--max-rss-mb=N] [--min-parallel-speedup=X]
//                             [--telemetry] [--out=PATH]
//   --quick       skip the "slow"-tagged points (n >= 10^5; CI-friendly)
//   --repeat=N    run each measurement N times and report the minimum wall
//                 time (de-noises the committed baseline; simulation output
//                 is identical across repeats). Slow-tagged points always
//                 run once.
//   --filter=S    restrict to scenarios whose name contains S
//   --max-rss-mb=N  exit nonzero if peak RSS ever exceeds N MiB (the CI
//                 memory-regression gate for the 10^6 smoke)
//   --min-parallel-speedup=X  exit nonzero if the best csr-mt4 vs csr
//                 rounds/sec ratio falls below X (only meaningful on
//                 multi-core hosts; the CI runners gate on it)
//   --telemetry   attach the obs::RoundTelemetry layer to every timed run
//                 and print the per-phase wall-time breakdown per row.
//                 Off by default: committed baselines measure the
//                 telemetry-disabled (branch-on-null) hot path
//   --out         output path for the JSON report (default BENCH_engine.json)

#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "campaign/builtin_scenarios.hpp"
#include "campaign/engine.hpp"
#include "core/reference_engine.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "obs/rss.hpp"
#include "obs/telemetry.hpp"

namespace dualrad {
namespace {

enum class EngineKind { Csr, CsrParallel, Reference };

constexpr unsigned kParallelThreads = 4;

struct Measurement {
  std::string scenario;
  std::string engine;
  NodeId n = 0;
  unsigned threads = 1;
  bool completed = false;
  Round rounds = 0;
  std::uint64_t sends = 0;
  double wall_ms = 0.0;
  double rounds_per_sec = 0.0;
  double peak_rss_mb = 0.0;
  std::array<std::uint64_t, obs::kPhaseCount> phase_ns{};  // --telemetry only
};

// False once any obs::reset_peak() fails: the peak_rss_mb column is then the
// monotone process-wide high-water mark, and the JSON says so.
bool g_rss_per_scenario = true;

Measurement run_one(const campaign::Scenario& spec, const DualGraph& net,
                    const ProcessFactory& factory, EngineKind kind,
                    std::size_t repeat, bool bounded_trace,
                    obs::RoundTelemetry* telemetry) {
  SimConfig config;
  config.rule = spec.rule;
  config.start = spec.start;
  config.max_rounds = spec.max_rounds;
  config.seed = campaign::trial_seed(1, spec.name, 0);
  config.token_sources = spec.token_sources;
  if (kind == EngineKind::CsrParallel) config.threads = kParallelThreads;
  if (bounded_trace) config.trace = TraceLevel::Bounded;
  config.telemetry = telemetry;

  // Per-measurement RSS: reset the kernel high-water mark so this row's peak
  // covers exactly this measurement's allocations (plus whatever is already
  // resident — the true working set it runs against).
  g_rss_per_scenario = obs::reset_peak() && g_rss_per_scenario;

  double best_seconds = 0.0;
  SimResult result;
  for (std::size_t rep = 0; rep < std::max<std::size_t>(repeat, 1); ++rep) {
    // Fresh adversary per run: stateful adversaries replay the same stream.
    const auto adversary = spec.adversary(mix_seed(config.seed, 0xAD));
    const auto started = std::chrono::steady_clock::now();
    result = kind == EngineKind::Reference
                 ? run_broadcast_reference(net, factory, *adversary, config)
                 : run_broadcast(net, factory, *adversary, config);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - started)
                               .count();
    if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
  }

  Measurement m;
  m.scenario = spec.name;
  switch (kind) {
    case EngineKind::Csr: m.engine = "csr"; break;
    case EngineKind::CsrParallel:
      m.engine = "csr-mt" + std::to_string(kParallelThreads);
      m.threads = kParallelThreads;
      break;
    case EngineKind::Reference: m.engine = "reference"; break;
  }
  m.n = net.node_count();
  m.completed = result.completed;
  m.rounds = result.rounds_executed;
  m.sends = result.total_sends;
  m.wall_ms = best_seconds * 1e3;
  m.rounds_per_sec =
      best_seconds > 0
          ? static_cast<double>(result.rounds_executed) / best_seconds
          : 0;
  m.peak_rss_mb = obs::peak_rss_mb();
  if (telemetry != nullptr) {
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
      m.phase_ns[p] = telemetry->total_phase_ns(static_cast<obs::Phase>(p));
    }
  }
  return m;
}

// Scenario names are [A-Za-z0-9._/+:=-], so they embed in JSON unescaped.
void write_json(const std::string& path,
                const std::vector<Measurement>& measurements,
                const std::map<std::string, double>& speedups,
                const std::map<std::string, double>& parallel_speedups) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"engine_scaling\",\n  \"rss_per_scenario\": "
      << (g_rss_per_scenario ? "true" : "false") << ",\n  \"measurements\": [\n";
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"scenario\": \"%s\", \"engine\": \"%s\", \"n\": %d, "
                  "\"threads\": %u, \"completed\": %s, \"rounds\": %lld, "
                  "\"sends\": %llu, \"wall_ms\": %.3f, "
                  "\"rounds_per_sec\": %.1f, \"peak_rss_mb\": %.1f}%s\n",
                  m.scenario.c_str(), m.engine.c_str(), m.n, m.threads,
                  m.completed ? "true" : "false",
                  static_cast<long long>(m.rounds),
                  static_cast<unsigned long long>(m.sends), m.wall_ms,
                  m.rounds_per_sec, m.peak_rss_mb,
                  i + 1 < measurements.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"speedup_rounds_per_sec\": {\n";
  std::size_t i = 0;
  for (const auto& [name, speedup] : speedups) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "    \"%s\": %.2f%s\n", name.c_str(),
                  speedup, i + 1 < speedups.size() ? "," : "");
    out << buf;
    ++i;
  }
  out << "  },\n  \"parallel_speedup_rounds_per_sec\": {\n";
  i = 0;
  for (const auto& [name, speedup] : parallel_speedups) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "    \"%s\": %.2f%s\n", name.c_str(),
                  speedup, i + 1 < parallel_speedups.size() ? "," : "");
    out << buf;
    ++i;
  }
  out << "  }\n}\n";
}

}  // namespace
}  // namespace dualrad

int main(int argc, char** argv) {
  using namespace dualrad;

  bool quick = false;
  bool with_telemetry = false;
  std::size_t repeat = 1;
  double max_rss_mb = 0.0;            // 0 = no ceiling
  double min_parallel_speedup = 0.0;  // 0 = no floor
  std::string filter;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--telemetry") {
      with_telemetry = true;
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::stoul(arg.substr(9));
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(9);
    } else if (arg.rfind("--max-rss-mb=", 0) == 0) {
      max_rss_mb = std::stod(arg.substr(13));
    } else if (arg.rfind("--min-parallel-speedup=", 0) == 0) {
      min_parallel_speedup = std::stod(arg.substr(23));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_engine_scaling [--quick] [--repeat=N] "
                   "[--filter=SUBSTR] [--max-rss-mb=N] "
                   "[--min-parallel-speedup=X] [--telemetry] [--out=PATH]\n";
      return 2;
    }
  }

  benchutil::print_header(
      "ENGINE", "sparse CSR engine vs dense reference; serial vs sharded",
      "rounds/sec gap grows with n; >= 5x on the 10k benign points");

  const campaign::ScenarioRegistry registry = campaign::builtin_registry();
  std::vector<campaign::Scenario> points = registry.match("scale");
  // Run the smallest n first: the peak-RSS reset keeps rows independent, but
  // ascending n still keeps already-resident footprint (the reset's floor)
  // minimal for the small points, and the output order stable.
  const auto size_rank = [](const campaign::Scenario& s) {
    if (s.name.find("-1m/") != std::string::npos) return 3;
    if (s.name.find("-100k/") != std::string::npos) return 2;
    if (s.name.find("-10k/") != std::string::npos) return 1;
    return 0;
  };
  std::stable_sort(points.begin(), points.end(),
                   [&](const auto& a, const auto& b) {
                     return size_rank(a) < size_rank(b);
                   });

  std::vector<Measurement> measurements;
  std::map<std::string, double> speedups;
  std::map<std::string, double> parallel_speedups;
  bool gates_ok = true;
  stats::Table table({"scenario", "n", "engine", "rounds", "wall ms",
                      "rounds/s", "peak RSS MB"});
  const auto record = [&](const Measurement& m) {
    measurements.push_back(m);
    table.add_row({m.scenario, std::to_string(m.n), m.engine,
                   std::to_string(m.rounds), stats::Table::num(m.wall_ms, 1),
                   stats::Table::num(m.rounds_per_sec, 0),
                   stats::Table::num(m.peak_rss_mb, 1)});
    if (max_rss_mb > 0 && m.peak_rss_mb > max_rss_mb) {
      std::cerr << "error: " << m.scenario << "/" << m.engine
                << " peak RSS " << m.peak_rss_mb << " MB exceeds ceiling "
                << max_rss_mb << " MB\n";
      gates_ok = false;
    }
    if (!m.completed) {
      std::cerr << "warning: " << m.scenario << " hit the round cap under "
                << m.engine << "\n";
    }
  };

  // One registry reused across measurements (each run resets it); attached
  // only under --telemetry so default baselines measure the disabled path.
  obs::RoundTelemetry telemetry(1);
  obs::RoundTelemetry* const tel = with_telemetry ? &telemetry : nullptr;

  for (const campaign::Scenario& spec : points) {
    bool slow = false;
    for (const std::string& tag : spec.tags) slow = slow || tag == "slow";
    if (quick && slow) continue;
    if (!filter.empty() && spec.name.find(filter) == std::string::npos) {
      continue;
    }
    const int rank = size_rank(spec);
    // The 10^6 points run under the memory-capped Bounded trace — the mode
    // exists exactly for them — and always once (their wall times are far
    // above the noise floor --repeat exists for).
    const bool bounded = rank >= 3;
    const std::size_t reps = slow ? 1 : repeat;

    const DualGraph net = spec.network();
    const ProcessFactory factory = spec.algorithm(net);

    const Measurement fast =
        run_one(spec, net, factory, EngineKind::Csr, reps, bounded, tel);
    record(fast);

    // Serial vs sharded-parallel on the 100k+ points (heavy rounds; the
    // small grid's rounds sit below the kernel's work cutoff anyway). The
    // kernel's results must be identical at these scales too — sizes the
    // unit-test grid cannot reach — so a mismatch fails the run.
    if (rank >= 2) {
      const Measurement par = run_one(spec, net, factory,
                                      EngineKind::CsrParallel, reps, bounded,
                                      tel);
      record(par);
      if (par.completed != fast.completed || par.rounds != fast.rounds ||
          par.sends != fast.sends) {
        std::cerr << "error: " << spec.name
                  << ": parallel kernel diverged from serial (rounds "
                  << par.rounds << " vs " << fast.rounds << ", sends "
                  << par.sends << " vs " << fast.sends << ")\n";
        gates_ok = false;  // fail the run like a gate violation
      }
      if (fast.rounds_per_sec > 0) {
        parallel_speedups[spec.name] = par.rounds_per_sec / fast.rounds_per_sec;
      }
    }

    // The dense engine's O(n) rounds make 100k+ points minutes-slow; the
    // comparison points are the 1k and 10k grid.
    if (rank <= 1) {
      const Measurement ref = run_one(spec, net, factory,
                                      EngineKind::Reference, reps, bounded,
                                      tel);
      record(ref);
      if (ref.rounds_per_sec > 0) {
        speedups[spec.name] = fast.rounds_per_sec / ref.rounds_per_sec;
      }
    }
  }
  table.print(std::cout);
  if (!g_rss_per_scenario) {
    std::cout << "note: /proc/self/clear_refs unavailable; peak RSS is the "
                 "monotone process-wide high-water mark\n";
  }

  if (with_telemetry && !measurements.empty()) {
    std::cout << "\nphase breakdown (--telemetry; % of phase-timed wall, "
                 "last run):\n";
    for (const Measurement& m : measurements) {
      std::uint64_t total = 0;
      for (const std::uint64_t ns : m.phase_ns) total += ns;
      if (total == 0) continue;
      std::printf("  %-45s %-10s", m.scenario.c_str(), m.engine.c_str());
      for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
        std::printf(" %s %4.1f%%",
                    obs::phase_name(static_cast<obs::Phase>(p)),
                    100.0 * static_cast<double>(m.phase_ns[p]) /
                        static_cast<double>(total));
      }
      std::printf("\n");
    }
  }

  if (measurements.empty()) {
    // A filter typo must not turn the CI gates into a vacuous pass.
    std::cerr << "error: no scale scenario matched (quick=" << quick
              << ", filter='" << filter << "')\n";
    return 1;
  }

  std::cout << "\nspeedup (csr rounds/sec over reference):\n";
  for (const auto& [name, speedup] : speedups) {
    std::printf("  %-45s %.2fx\n", name.c_str(), speedup);
  }
  std::cout << "\nparallel speedup (csr-mt" << kParallelThreads
            << " rounds/sec over csr serial):\n";
  double best_parallel = 0.0;
  for (const auto& [name, speedup] : parallel_speedups) {
    std::printf("  %-45s %.2fx\n", name.c_str(), speedup);
    best_parallel = std::max(best_parallel, speedup);
  }
  if (min_parallel_speedup > 0.0) {
    if (parallel_speedups.empty()) {
      std::cerr << "error: --min-parallel-speedup set but no 100k+ point "
                   "produced a parallel measurement\n";
      gates_ok = false;
    } else if (best_parallel < min_parallel_speedup) {
      std::cerr << "error: best parallel speedup " << best_parallel
                << "x is below the required " << min_parallel_speedup
                << "x floor\n";
      gates_ok = false;
    }
  }

  write_json(out_path, measurements, speedups, parallel_speedups);
  std::cout << "\nwrote " << out_path << "\n";
  return gates_ok ? 0 : 1;
}
