// A2 — ablation of the SSF substrate: constructive Kautz-Singleton
// (O(k^2 log^2 n), the paper's constructive note) vs randomized families
// matching the existential O(k^2 log n) bound (Theorem 7) vs round-robin
// only (every family = the (n,n)-SSF).
//
// Expected: family sizes ordered randomized <= Kautz-Singleton <= n per the
// bounds; Strong Select completes with all providers, with schedule length
// tracking the family sizes (the sqrt(log n)-factor note of Section 5).

#include "adversary/greedy_blocker.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"
#include "selectors/kautz_singleton.hpp"
#include "selectors/randomized_ssf.hpp"
#include "selectors/round_robin_family.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "A2", "Ablation — SSF construction",
      "existential O(k^2 log n) vs constructive O(k^2 log^2 n) vs trivial n; "
      "the constructive swap costs only a sqrt(log n) factor (Section 5)");

  // Family sizes at fixed n across k.
  const NodeId n_sizes = 1024;
  stats::Table sizes({"k", "randomized (Thm 7 shape)", "kautz-singleton",
                      "round robin (n)"});
  for (NodeId k : {2, 4, 8, 16, 32}) {
    const auto rnd = randomized_ssf(n_sizes, k, {.factor = 4.0, .seed = 1});
    const auto ks = kautz_singleton_ssf(n_sizes, k);
    sizes.add_row({std::to_string(k), std::to_string(rnd.size()),
                   std::to_string(ks.size()), std::to_string(n_sizes)});
  }
  sizes.print(std::cout);
  std::cout << "\n";

  // End-to-end effect on Strong Select. Note: s_max = log2(sqrt(n/log n))
  // grows very slowly, so small networks degenerate to the round-robin
  // family alone (epoch length 1) and all providers coincide; the wider
  // networks below exercise multi-family schedules.
  stats::Table table({"n", "provider", "rounds (greedy)", "epoch len",
                      "sum of family sizes"});
  for (NodeId layers : {16, 32, 48}) {
    const DualGraph net = duals::layered_complete_gprime(layers, 8);
    const NodeId n = net.node_count();
    struct ProviderSpec {
      const char* name;
      SsfProvider provider;
    };
    const ProviderSpec providers[] = {
        {"kautz-singleton",
         [](NodeId nn, NodeId k) { return kautz_singleton_ssf(nn, k); }},
        {"randomized", make_randomized_ssf_provider({.factor = 4.0, .seed = 2})},
        {"round-robin-only", round_robin_provider},
    };
    for (const auto& spec : providers) {
      StrongSelectOptions options;
      options.provider = spec.provider;
      const auto schedule = make_strong_select_schedule(n, options);
      Round total_sets = 0;
      for (int s = 1; s <= schedule->s_max(); ++s) total_sets += schedule->ell(s);
      GreedyBlockerAdversary greedy;
      SimConfig config;
      config.rule = CollisionRule::CR4;
      config.start = StartRule::Asynchronous;
      config.max_rounds = 20'000'000;
      const Round rounds = benchutil::measure_rounds(
          net, make_strong_select_factory(n, options), greedy, config);
      table.add_row({std::to_string(n), spec.name,
                     benchutil::rounds_str(rounds),
                     std::to_string(schedule->epoch_length()),
                     std::to_string(total_sets)});
    }
  }
  table.print(std::cout);
  return 0;
}
