// E6 — Theorem 11 workload: the directed sqrt(n)-broadcastable family behind
// the Omega(n^{3/2}) lower bound of [9]/[11] (cited by the paper; the bound
// itself is combinatorial and not re-derived here — see DESIGN.md).
//
// The bench measures Strong Select and round robin on the family under the
// benign and greedy-blocker adversaries. Expected: completion well above the
// sqrt(n)-round broadcastability floor and growth consistent with the
// super-linear regime the paper's Table 1 places between Omega(n^{3/2}) and
// O(n^{3/2} sqrt(log n)).

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "lowerbound/theorem11_network.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "E6", "Theorem 11 family — directed sqrt(n)-broadcastable networks",
      "directed dual graphs where depth is sqrt(n): deterministic broadcast "
      "sits in the Omega(n^{3/2}) .. O(n^{3/2} sqrt(log n)) band");

  const std::vector<NodeId> ns = {16, 36, 64, 100, 196};

  stats::Table table({"n (actual)", "layers", "SS benign", "SS greedy",
                      "RR greedy"});
  std::vector<double> xs, ss_greedy;
  for (NodeId n : ns) {
    const DualGraph net = lowerbound::theorem11_network(n);
    const NodeId actual = net.node_count();
    const auto layout = lowerbound::theorem11_layout(n);
    BenignAdversary benign;
    GreedyBlockerAdversary greedy;
    SimConfig config;
    config.rule = CollisionRule::CR4;
    config.start = StartRule::Asynchronous;
    config.max_rounds = 10'000'000;
    const Round ss_b = benchutil::measure_rounds(
        net, make_strong_select_factory(actual), benign, config);
    const Round ss_g = benchutil::measure_rounds(
        net, make_strong_select_factory(actual), greedy, config);
    const Round rr_g = benchutil::measure_rounds(
        net, make_round_robin_factory(actual), greedy, config);
    table.add_row({std::to_string(actual), std::to_string(layout.num_layers),
                   benchutil::rounds_str(ss_b), benchutil::rounds_str(ss_g),
                   benchutil::rounds_str(rr_g)});
    xs.push_back(static_cast<double>(actual));
    ss_greedy.push_back(static_cast<double>(ss_g));
  }
  table.print(std::cout);
  std::cout << "\n";
  benchutil::print_fits(xs, ss_greedy, "strong select vs greedy blocker");
  return 0;
}
