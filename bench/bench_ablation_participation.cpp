// A1 — ablation of Section 5's key design choice: participate in each SSF
// exactly once versus forever (the classical reliable-model strategy of
// [6, 7], which never stops broadcasting).
//
// The paper's argument: in dual graphs, a node whose reliable neighbors are
// all covered can still jam uncovered G'-neighbors, so unlimited
// participation extends the interference window. Expected: the forever
// variant suffers more collisions and (on adversarial networks) completes no
// faster / sends far more; the Theorem 12 construction exploits it at least
// as badly.

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"
#include "lowerbound/theorem12.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "A1", "Ablation — participate once vs forever (Strong Select)",
      "participate-once bounds each node's interference window; forever "
      "keeps old layers jamming new ones and nodes never terminate");

  stats::Table table({"n", "adversary", "once rounds", "once sends",
                      "forever rounds", "forever sends", "forever/once sends"});
  for (NodeId layers : {8, 16, 32}) {
    const DualGraph net = duals::layered_complete_gprime(layers, 4);
    const NodeId n = net.node_count();
    StrongSelectOptions once;
    StrongSelectOptions forever;
    forever.participate_forever = true;
    const ProcessFactory f_once = make_strong_select_factory(n, once);
    const ProcessFactory f_forever = make_strong_select_factory(n, forever);

    struct AdvSpec {
      const char* name;
      Adversary* adversary;
    };
    GreedyBlockerAdversary greedy;
    FullInterferenceAdversary full;
    for (const AdvSpec& spec :
         {AdvSpec{"greedy", &greedy}, AdvSpec{"full", &full}}) {
      SimConfig config;
      config.rule = CollisionRule::CR4;
      config.start = StartRule::Asynchronous;
      config.max_rounds = 20'000'000;
      const SimResult once_result =
          run_broadcast(net, f_once, *spec.adversary, config);
      const SimResult forever_result =
          run_broadcast(net, f_forever, *spec.adversary, config);
      const double ratio =
          once_result.total_sends > 0
              ? static_cast<double>(forever_result.total_sends) /
                    static_cast<double>(once_result.total_sends)
              : 0.0;
      table.add_row(
          {std::to_string(n), spec.name,
           benchutil::rounds_str(once_result.completed
                                     ? once_result.completion_round
                                     : kNever),
           std::to_string(once_result.total_sends),
           benchutil::rounds_str(forever_result.completed
                                     ? forever_result.completion_round
                                     : kNever),
           std::to_string(forever_result.total_sends),
           stats::Table::num(ratio, 2)});
    }
  }
  table.print(std::cout);

  std::cout << "\nTheorem 12 construction against both variants:\n";
  stats::Table lb({"n", "bound", "once", "forever"});
  for (NodeId n : {17, 33, 65}) {
    const auto once = lowerbound::run_theorem12(n, make_strong_select_factory(n));
    StrongSelectOptions opt;
    opt.participate_forever = true;
    const auto forever =
        lowerbound::run_theorem12(n, make_strong_select_factory(n, opt));
    const auto show = [](const lowerbound::Theorem12Result& r) {
      if (!r.valid) return std::string("INVALID");
      if (r.stalled) return std::string("stalled(never completes)");
      return std::to_string(r.total_rounds);
    };
    lb.add_row({std::to_string(n),
                std::to_string(lowerbound::theorem12_bound(n)), show(once),
                show(forever)});
  }
  lb.print(std::cout);
  return 0;
}
