// F1 — scaling "figure" for Section 5: Strong Select completion rounds vs n.
//
// The paper proves O(n^{3/2} sqrt(log n)) against *any* adversary. The bench
// sweeps n over two dual-graph families and four adversaries and fits the
// measured curves against candidate shapes. Expected: growth strictly faster
// than the classical O(n) baseline, bounded by the n^{3/2} sqrt(log n)
// envelope (the worst computable adversary here does not achieve the exact
// worst case; see DESIGN.md substitutions).

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "F1", "Strong Select scaling",
      "completes on every dual network under every adversary; rounds grow "
      "super-linearly, within the O(n^{3/2} sqrt(log n)) envelope");

  const std::vector<NodeId> layer_counts = {4, 8, 16, 32, 64};

  // Note on the friendly extremes: the "full" adversary fires every G'-only
  // edge every round, so a lone sender on a complete G' reaches everyone
  // immediately — unreliable links can only *hurt* when scheduled to collide,
  // which is what the greedy column isolates.
  stats::Table table({"n", "benign", "bernoulli(0.5)", "full", "greedy",
                      "envelope n^1.5 sqrt(log n)"});
  std::vector<double> xs, greedy_rounds, benign_rounds;
  for (NodeId layers : layer_counts) {
    const DualGraph net = duals::layered_complete_gprime(layers, 4);
    const NodeId n = net.node_count();
    const ProcessFactory factory = make_strong_select_factory(n);
    SimConfig config;
    config.rule = CollisionRule::CR4;
    config.start = StartRule::Asynchronous;
    config.max_rounds = 20'000'000;

    BenignAdversary benign;
    BernoulliAdversary bernoulli(0.5, 99);
    FullInterferenceAdversary full;
    GreedyBlockerAdversary greedy;
    const Round r_benign = benchutil::measure_rounds(net, factory, benign, config);
    const Round r_bern = benchutil::measure_rounds(net, factory, bernoulli, config);
    const Round r_full = benchutil::measure_rounds(net, factory, full, config);
    const Round r_greedy = benchutil::measure_rounds(net, factory, greedy, config);
    const double envelope = stats::shape_value("n^1.5 sqrt(log n)",
                                               static_cast<double>(n));
    table.add_row({std::to_string(n), benchutil::rounds_str(r_benign),
                   benchutil::rounds_str(r_bern), benchutil::rounds_str(r_full),
                   benchutil::rounds_str(r_greedy),
                   stats::Table::num(envelope, 0)});
    xs.push_back(static_cast<double>(n));
    benign_rounds.push_back(static_cast<double>(r_benign));
    greedy_rounds.push_back(static_cast<double>(r_greedy));
  }
  table.print(std::cout);
  std::cout << "\n";
  benchutil::print_fits(xs, benign_rounds, "strong select / benign");
  benchutil::print_fits(xs, greedy_rounds, "strong select / greedy blocker");

  // Second family: gray-zone geometric networks (averaged over seeds).
  std::cout << "gray-zone family (CR4, async, greedy blocker, 3 seeds):\n";
  stats::Table gz({"n", "mean rounds"});
  for (NodeId n : {32, 64, 128, 256}) {
    double total = 0;
    for (std::uint64_t seed : {1, 2, 3}) {
      const DualGraph net = duals::gray_zone(
          {.n = n, .r_reliable = 0.25, .r_gray = 0.6, .seed = seed});
      GreedyBlockerAdversary greedy;
      SimConfig config;
      config.rule = CollisionRule::CR4;
      config.start = StartRule::Asynchronous;
      config.max_rounds = 20'000'000;
      total += static_cast<double>(benchutil::measure_rounds(
          net, make_strong_select_factory(n), greedy, config));
    }
    gz.add_row({std::to_string(n), stats::Table::num(total / 3.0, 1)});
  }
  gz.print(std::cout);
  return 0;
}
