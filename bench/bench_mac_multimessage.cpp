// M1 — multi-message broadcast over the abstract MAC layer (src/mac/).
//
// Runs the mac/* catalogue (BMMB over DecayMac, k in {1, 4, 16} tokens at
// spread sources, layered and gray-zone families, benign / Bernoulli /
// greedy-blocker adversaries) through the campaign engine and reports, per
// scenario, the completion statistics plus the *measured* abstract-MAC
// latencies: f_ack (bcast-to-ack, from the processes' exported metrics) and
// f_prog (first-reception lag behind the reliable neighborhood, from the
// per-token coverage data). The expectation from the abstract MAC layer
// literature: f_prog stays polylogarithmic-ish under benign contention while
// f_ack scales with the Decay run length, and completion degrades gracefully
// with k; the greedy blocker row shows the no-guarantee contrast.

#include <algorithm>
#include <map>

#include "bench_util.hpp"
#include "campaign/builtin_scenarios.hpp"
#include "mac/mac_latency.hpp"

using namespace dualrad;

namespace {

struct LatencyAgg {
  std::uint64_t trials = 0;
  Round prog_max = 0;
  double prog_mean_sum = 0.0;
  double ack_max = -1.0;
  double ack_mean_sum = 0.0;
  std::uint64_t unreached = 0;
};

}  // namespace

int main() {
  benchutil::print_header(
      "M1", "Multi-message broadcast over the abstract MAC layer",
      "BMMB/DecayMac completes for k in {1,4,16} under benign and stochastic "
      "adversaries with measured f_ack ~ Decay run length; the greedy "
      "blocker can starve the layer (no dual-graph guarantee)");

  const campaign::ScenarioRegistry registry = campaign::builtin_registry();
  const std::vector<campaign::Scenario> scenarios = registry.match("mac");

  campaign::CampaignConfig config;
  mac::LatencyCollector collector(scenarios);
  collector.attach(config);
  const campaign::CampaignResult result =
      campaign::run_campaign(scenarios, config);

  std::map<std::string, LatencyAgg> latencies;
  for (const mac::TrialLatencyRow& row : collector.sorted_rows()) {
    const mac::MacLatencySummary& lat = row.latency;
    LatencyAgg& agg = latencies[row.scenario];
    ++agg.trials;
    agg.prog_max = std::max(agg.prog_max, lat.prog_max);
    agg.prog_mean_sum += lat.prog_mean > 0 ? lat.prog_mean : 0.0;
    agg.ack_max = std::max(agg.ack_max, lat.ack_max);
    agg.ack_mean_sum += lat.ack_mean > 0 ? lat.ack_mean : 0.0;
    agg.unreached += lat.unreached;
  }

  stats::Table table({"scenario", "k", "failed", "mean rounds", "p90",
                      "mean sends", "f_prog max", "f_prog mean", "f_ack max",
                      "f_ack mean"});
  for (const campaign::ScenarioSummary& s : result.summaries) {
    const LatencyAgg& agg = latencies[s.scenario];
    const bool any = s.rounds.count > 0;
    const double trials = agg.trials > 0 ? static_cast<double>(agg.trials) : 1.0;
    std::size_t k = 0;
    for (const campaign::Scenario& spec : scenarios) {
      if (spec.name == s.scenario) k = spec.token_sources.size();
    }
    table.add_row({s.scenario, std::to_string(k), std::to_string(s.failures),
                   any ? stats::Table::num(s.rounds.mean, 1) : "-",
                   any ? stats::Table::num(s.rounds.p90, 1) : "-",
                   stats::Table::num(s.mean_sends, 1),
                   std::to_string(agg.prog_max),
                   stats::Table::num(agg.prog_mean_sum / trials, 1),
                   stats::Table::num(agg.ack_max, 0),
                   stats::Table::num(agg.ack_mean_sum / trials, 1)});
  }
  table.print(std::cout);

  std::cout << "\nwho wins: the MAC decomposition holds its contract under "
               "benign and Bernoulli channels (every token reaches every "
               "process; f_ack tracks the Decay run length, f_prog stays far "
               "below it), while the greedy blocker starves DecayMac — the "
               "dual-graph no-guarantee contrast, lifted to the MAC layer.\n";
  return 0;
}
