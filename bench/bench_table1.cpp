// T1 — Table 1 of the paper: deterministic broadcast bounds, classical model
// (G == G') versus dual graphs (G != G').
//
// Paper rows (undirected, synchronous start):
//   classical:  O(n) upper [5], Omega(n) lower [21]
//   dual graph: O(n^{3/2} sqrt(log n)) upper (Section 5),
//               Omega(n log n) lower (Section 6),
//               Omega(n^{3/2}) directed lower [11].
//
// This bench regenerates the empirical counterparts: round-robin on classical
// cliques/layered graphs completes in ~n rounds; Strong Select on dual
// networks against the greedy blocker; the Theorem 2 and Theorem 12 executors
// force the lower-bound shapes on *every* deterministic algorithm we run.
//
// The simulator-driven columns run as one campaign over the parallel trial
// executor (src/campaign/); the lower-bound columns stay direct calls because
// the executors are replay harnesses, not simulator runs.

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"
#include "graph/generators.hpp"
#include "lowerbound/theorem12.hpp"
#include "lowerbound/theorem2.hpp"

using namespace dualrad;

namespace {

std::string classical_name(NodeId n) {
  return "t1/classical-rr/n=" + std::to_string(n);
}

std::string dual_name(NodeId n) {
  return "t1/dual-strong-select/n=" + std::to_string(n);
}

/// Completion round of a deterministic single-trial scenario, or kNever.
Round scenario_rounds(const campaign::CampaignResult& result,
                      const std::string& name) {
  const campaign::ScenarioSummary* summary =
      campaign::find_summary(result, name);
  if (summary == nullptr || summary->rounds.count == 0) return kNever;
  return static_cast<Round>(summary->rounds.mean);
}

}  // namespace

int main() {
  benchutil::print_header(
      "T1", "Table 1 — deterministic broadcast",
      "classical O(n) vs dual-graph O(n^{3/2} sqrt(log n)) upper bounds; "
      "Omega(n) (Thm 2) and Omega(n log n) (Thm 12) dual-graph lower bounds");

  const std::vector<NodeId> ns = {17, 33, 65, 129, 257};

  // Both deterministic upper-bound columns, for every n, as one campaign.
  std::vector<campaign::Scenario> scenarios;
  for (NodeId n : ns) {
    // Classical model: round robin on a diameter-2 undirected graph (the
    // bridge topology with G' = G), synchronous start. O(n).
    scenarios.push_back(
        {.name = classical_name(n),
         .network = [n] {
           return duals::strip_unreliable(duals::bridge_network(n));
         },
         .algorithm =
             [](const DualGraph& net) {
               return make_round_robin_factory(net.node_count());
             },
         .adversary = campaign::make_adversary_factory<BenignAdversary>(),
         .rule = CollisionRule::CR3,
         .start = StartRule::Synchronous,
         .max_rounds = 1'000'000,
         .trials = 1});

    // Dual graphs: Strong Select against the greedy blocker on the layered
    // complete-G' family, CR4 + async start (the paper's weakest setting).
    scenarios.push_back(
        {.name = dual_name(n),
         .network =
             [n] {
               return duals::layered_complete_gprime(
                   std::max<NodeId>(3, (n - 1) / 4), 4);
             },
         .algorithm =
             [](const DualGraph& net) {
               return make_strong_select_factory(net.node_count());
             },
         .adversary =
             campaign::make_adversary_factory<GreedyBlockerAdversary>(),
         .rule = CollisionRule::CR4,
         .start = StartRule::Asynchronous,
         .max_rounds = 10'000'000,
         .trials = 1});
  }
  const campaign::CampaignResult result = campaign::run_campaign(scenarios);

  stats::Table table({"n", "classical RR (G=G')", "dual StrongSelect (greedy)",
                      "Thm2 LB (>= n-2)", "Thm12 LB (>= (n-1)/4(log-2))"});
  std::vector<double> xs, classical_rr, dual_ss, lb2, lb12;

  for (NodeId n : ns) {
    const Round rr_rounds = scenario_rounds(result, classical_name(n));
    const Round ss_rounds = scenario_rounds(result, dual_name(n));

    // Lower bounds: the paper's executors against round robin (the
    // strongest deterministic baseline here; Strong Select is also forced,
    // see bench_lb_theorem12).
    const auto thm2 = lowerbound::run_theorem2(n, make_round_robin_factory(n),
                                               1'000'000);
    Round thm12_rounds = kNever;
    if (n >= 9) {
      const auto thm12 =
          lowerbound::run_theorem12(n, make_round_robin_factory(n));
      if (thm12.valid && !thm12.stalled) thm12_rounds = thm12.total_rounds;
    }

    table.add_row({std::to_string(n), benchutil::rounds_str(rr_rounds),
                   benchutil::rounds_str(ss_rounds),
                   benchutil::rounds_str(thm2.worst_rounds),
                   benchutil::rounds_str(thm12_rounds)});
    xs.push_back(static_cast<double>(n));
    classical_rr.push_back(static_cast<double>(rr_rounds));
    dual_ss.push_back(static_cast<double>(ss_rounds));
    lb2.push_back(static_cast<double>(thm2.worst_rounds));
    if (thm12_rounds != kNever) lb12.push_back(static_cast<double>(thm12_rounds));
  }
  table.print(std::cout);
  std::cout << "\n";

  benchutil::print_fits(xs, classical_rr, "classical round robin");
  benchutil::print_fits(xs, dual_ss, "dual-graph strong select");
  benchutil::print_fits(xs, lb2, "theorem 2 executor");
  if (lb12.size() == xs.size()) {
    benchutil::print_fits(xs, lb12, "theorem 12 executor");
  }

  std::cout << "who wins: classical round robin stays ~linear; the dual-graph "
               "rows grow strictly faster, and the lower-bound executors "
               "force every deterministic algorithm past n-2 resp. "
               "(n-1)/4 (log2(n-1)-2) rounds.\n";
  return 0;
}
