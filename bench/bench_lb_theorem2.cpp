// E3 — Theorem 2: Omega(n) deterministic lower bound on a 2-broadcastable
// undirected network.
//
// The executor enumerates the proof's executions alpha_i (bridge id i,
// fixed-rule adversary, CR1, synchronous start) and reports the worst case.
// The theorem: no deterministic algorithm finishes all alpha_i within n-3
// rounds. Expected: worst-case rounds >= n-2 for every algorithm, growing
// linearly in n, even though the network is 2-broadcastable (a scripted
// schedule finishes it in 2 rounds).

#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "lowerbound/theorem2.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "E3", "Theorem 2 executor — Omega(n) on 2-broadcastable networks",
      "every deterministic algorithm needs > n-3 rounds on the bridge "
      "network; round robin matches with O(n)");

  const std::vector<NodeId> ns = {9, 17, 33, 65, 129};

  stats::Table table({"n", "bound n-2", "round robin worst", "worst bridge id",
                      "strong select worst", "bound respected"});
  std::vector<double> xs, rr_worst;
  for (NodeId n : ns) {
    const auto rr =
        lowerbound::run_theorem2(n, make_round_robin_factory(n), 1'000'000);
    const auto ss = lowerbound::run_theorem2(n, make_strong_select_factory(n),
                                             1'000'000);
    table.add_row({std::to_string(n), std::to_string(rr.theorem_bound),
                   benchutil::rounds_str(rr.worst_rounds),
                   std::to_string(rr.worst_bridge_id),
                   benchutil::rounds_str(ss.worst_rounds),
                   rr.bound_respected && ss.bound_respected ? "yes" : "NO"});
    xs.push_back(static_cast<double>(n));
    rr_worst.push_back(static_cast<double>(rr.worst_rounds));
  }
  table.print(std::cout);
  std::cout << "\n";
  benchutil::print_fits(xs, rr_worst, "round robin worst-case (expect ~n)");
  return 0;
}
