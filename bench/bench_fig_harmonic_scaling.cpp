// F2 — scaling "figure" for Section 7: Harmonic Broadcast rounds vs n, with
// the paper's T = ceil(12 ln(n/eps)), plus the Lemma 15 busy-round audit.
//
// Expected: completion within the 2 n T H(n) bound of Theorem 18 with the
// measured busy-round count below n T H(n) (Lemma 15); the fitted shape sits
// in the ~n log^2 n family, clearly below n^{3/2}.

#include "adversary/greedy_blocker.hpp"
#include "algorithms/harmonic.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "F2", "Harmonic Broadcast scaling",
      "completes w.h.p. within 2 n T H(n) (Thm 18); busy rounds <= n T H(n) "
      "(Lemma 15); shape ~ n log^2 n");

  const std::vector<NodeId> layer_counts = {4, 8, 16, 32, 64};
  const double eps = 0.1;

  stats::Table table({"n", "T", "mean rounds (greedy)", "busy rounds",
                      "Lemma15 bound nTH(n)", "Thm18 bound 2nTH(n)"});
  std::vector<double> xs, mean_rounds;
  for (NodeId layers : layer_counts) {
    const DualGraph net = duals::layered_complete_gprime(layers, 4);
    const NodeId n = net.node_count();
    const Round T = harmonic_T(n, {.eps = eps});
    const ProcessFactory factory = make_harmonic_factory(n, {.eps = eps});
    GreedyBlockerAdversary greedy;
    SimConfig config;
    config.rule = CollisionRule::CR4;
    config.start = StartRule::Asynchronous;
    config.max_rounds = 20'000'000;

    double total = 0;
    Round busy_worst = 0;
    const int trials = 3;
    for (int t = 0; t < trials; ++t) {
      config.seed = mix_seed(5, static_cast<std::uint64_t>(t));
      const SimResult result = run_broadcast(net, factory, greedy, config);
      total += static_cast<double>(result.completion_round);
      // Busy-round audit: count rounds whose total sending probability >= 1
      // under the realized wake-up pattern (Lemma 15's quantity).
      Round busy = 0;
      for (Round round = 1; round <= result.completion_round; ++round) {
        double p = 0;
        for (NodeId v = 0; v < n; ++v) {
          p += harmonic_probability(
              round, result.first_token[static_cast<std::size_t>(v)], T);
        }
        if (p >= 1.0) ++busy;
      }
      busy_worst = std::max(busy_worst, busy);
    }
    const double mean = total / trials;
    const Round bound = harmonic_round_bound(n, T);
    table.add_row({std::to_string(n), std::to_string(T),
                   stats::Table::num(mean, 1), std::to_string(busy_worst),
                   std::to_string(bound / 2), std::to_string(bound)});
    xs.push_back(static_cast<double>(n));
    mean_rounds.push_back(mean);
  }
  table.print(std::cout);
  std::cout << "\n";
  benchutil::print_fits(xs, mean_rounds, "harmonic mean completion");
  return 0;
}
