// F2 — scaling "figure" for Section 7: Harmonic Broadcast rounds vs n, with
// the paper's T = ceil(12 ln(n/eps)), plus the Lemma 15 busy-round audit.
//
// Expected: completion within the 2 n T H(n) bound of Theorem 18 with the
// measured busy-round count below n T H(n) (Lemma 15); the fitted shape sits
// in the ~n log^2 n family, clearly below n^{3/2}.
//
// All (n x trial) runs execute as one campaign on the parallel trial
// executor; the busy-round audit rides along as a campaign observer, since
// it needs each trial's full first_token vector, which the exported rows
// deliberately do not carry.

#include <map>

#include "adversary/greedy_blocker.hpp"
#include "algorithms/harmonic.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "F2", "Harmonic Broadcast scaling",
      "completes w.h.p. within 2 n T H(n) (Thm 18); busy rounds <= n T H(n) "
      "(Lemma 15); shape ~ n log^2 n");

  const std::vector<NodeId> layer_counts = {4, 8, 16, 32, 64};
  const double eps = 0.1;
  const int trials = 3;

  struct Params {
    NodeId n = 0;
    Round T = 0;
  };
  std::vector<campaign::Scenario> scenarios;
  std::map<std::string, Params> params_of;  // scenario name -> (n, T)
  for (NodeId layers : layer_counts) {
    const NodeId n = duals::layered_complete_gprime(layers, 4).node_count();
    const std::string name = "f2/harmonic/layers=" + std::to_string(layers);
    params_of[name] = {n, harmonic_T(n, {.eps = eps})};
    scenarios.push_back(
        {.name = name,
         .network = [layers] {
           return duals::layered_complete_gprime(layers, 4);
         },
         .algorithm =
             [eps](const DualGraph& net) {
               return make_harmonic_factory(net.node_count(), {.eps = eps});
             },
         .adversary =
             campaign::make_adversary_factory<GreedyBlockerAdversary>(),
         .rule = CollisionRule::CR4,
         .start = StartRule::Asynchronous,
         .max_rounds = 20'000'000,
         .trials = trials});
  }

  // Busy-round audit (Lemma 15): count rounds whose total sending
  // probability >= 1 under the realized wake-up pattern. Folded as a
  // per-scenario max, so completion order across workers cannot matter.
  std::map<std::string, Round> busy_of;
  campaign::CampaignConfig config;
  config.master_seed = 5;
  config.observer = [&](const campaign::Scenario& scenario,
                        const campaign::TrialRow& row,
                        const SimResult& result) {
    if (!row.completed) return;
    const Round T = params_of.at(scenario.name).T;
    const auto n = static_cast<NodeId>(result.first_token.size());
    Round busy = 0;
    for (Round round = 1; round <= result.completion_round; ++round) {
      double p = 0;
      for (NodeId v = 0; v < n; ++v) {
        p += harmonic_probability(
            round, result.first_token[static_cast<std::size_t>(v)], T);
      }
      if (p >= 1.0) ++busy;
    }
    Round& worst = busy_of[scenario.name];
    worst = std::max(worst, busy);
  };

  const campaign::CampaignResult result =
      campaign::run_campaign(scenarios, config);

  stats::Table table({"n", "T", "mean rounds (greedy)", "busy rounds",
                      "Lemma15 bound nTH(n)", "Thm18 bound 2nTH(n)"});
  std::vector<double> xs, mean_rounds;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const campaign::ScenarioSummary& summary = result.summaries[i];
    const auto [n, T] = params_of.at(summary.scenario);
    const Round bound = harmonic_round_bound(n, T);
    table.add_row({std::to_string(n), std::to_string(T),
                   stats::Table::num(summary.rounds.mean, 1),
                   std::to_string(busy_of[summary.scenario]),
                   std::to_string(bound / 2), std::to_string(bound)});
    xs.push_back(static_cast<double>(n));
    mean_rounds.push_back(summary.rounds.mean);
  }
  table.print(std::cout);
  std::cout << "\n";
  benchutil::print_fits(xs, mean_rounds, "harmonic mean completion");
  return 0;
}
