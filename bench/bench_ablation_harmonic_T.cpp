// A3 — ablation of the Harmonic Broadcast parameter T.
//
// The proof needs T >= 12 ln(n/eps) (Lemma 17) so that each node is isolated
// w.h.p. before its probability decays. The bench sweeps the constant in
// T = ceil(c ln(n/eps)). Expected: completion time grows ~linearly with c
// (the 2 n T H(n) bound), while very small c starts to risk failures /
// retries under adversarial interference; the paper's c = 12 is safe but
// conservative.

#include "adversary/greedy_blocker.hpp"
#include "algorithms/harmonic.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "A3", "Ablation — Harmonic Broadcast constant in T = ceil(c ln(n/eps))",
      "larger T slows completion linearly (bound 2 n T H(n)); the proof "
      "constant c = 12 is conservative");

  const DualGraph net = duals::layered_complete_gprime(16, 4);
  const NodeId n = net.node_count();
  const double eps = 0.1;
  const std::size_t trials = 5;

  stats::Table table({"c", "T", "mean rounds (greedy)", "failures",
                      "bound 2nTH(n)"});
  for (double c : {1.0, 2.0, 4.0, 8.0, 12.0, 16.0}) {
    const HarmonicOptions options{.T = 0, .eps = eps, .constant = c};
    const Round T = harmonic_T(n, options);
    SimConfig config;
    config.rule = CollisionRule::CR4;
    config.start = StartRule::Asynchronous;
    // Cap at ~4x the bound: trials that exceed it count as failures.
    config.max_rounds = 4 * harmonic_round_bound(n, T);
    std::size_t failures = 0;
    const double mean = benchutil::mean_rounds(
        net, make_harmonic_factory(n, options),
        campaign::make_adversary_factory<GreedyBlockerAdversary>(), config,
        trials, &failures);
    table.add_row({stats::Table::num(c, 0), std::to_string(T),
                   stats::Table::num(mean, 1), std::to_string(failures),
                   std::to_string(harmonic_round_bound(n, T))});
  }
  table.print(std::cout);
  return 0;
}
