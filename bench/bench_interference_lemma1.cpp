// F3 — Lemma 1 / Appendix A: dual-graph algorithms run unchanged on
// explicit-interference networks, in exactly the same number of rounds.
//
// The bench runs Strong Select and Harmonic on (G_T, G_I) networks twice:
// natively in the interference simulator, and on the dual graph
// (G = G_T, G' = G_I) driven by the Appendix A simulating adversary.
// Expected: identical completion rounds, all collision rules.

#include "algorithms/harmonic.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "interference/interference.hpp"

using namespace dualrad;

namespace {

InterferenceNetwork make_network(NodeId n, std::uint64_t seed) {
  // G_T: connected random backbone; G_I: G_T plus longer-range interference.
  Graph gt = gen::gnp_connected(n, 0.04, seed);
  Graph gi(n);
  for (const auto& [u, v] : gt.edges()) {
    if (!gi.has_edge(u, v)) gi.add_undirected_edge(u, v);
  }
  StreamRng rng(mix_seed(seed, 0x1f));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (!gi.has_edge(u, v) && rng.bernoulli(0.1)) {
        gi.add_undirected_edge(u, v);
      }
    }
  }
  return InterferenceNetwork(std::move(gt), std::move(gi), 0);
}

}  // namespace

int main() {
  benchutil::print_header(
      "F3", "Lemma 1 — explicit-interference equivalence",
      "any dual-graph T(n)-round algorithm broadcasts in T(n) rounds on "
      "explicit-interference graphs under the corresponding collision rule");

  stats::Table table({"algorithm", "rule", "n", "interference rounds",
                      "dual-sim rounds", "equal"});
  bool all_equal = true;
  for (const NodeId n : {32, 64, 128}) {
    const InterferenceNetwork inet = make_network(n, 7);
    const DualGraph dual = inet.to_dual();
    struct AlgoSpec {
      const char* name;
      ProcessFactory factory;
    };
    const AlgoSpec algorithms[] = {
        {"strong select", make_strong_select_factory(n)},
        {"harmonic", make_harmonic_factory(n, {.eps = 0.1})},
    };
    for (const auto& algo : algorithms) {
      for (CollisionRule rule : {CollisionRule::CR1, CollisionRule::CR4}) {
        InterferenceConfig iconfig;
        iconfig.rule = rule;
        iconfig.start = StartRule::Synchronous;
        iconfig.max_rounds = 10'000'000;
        iconfig.seed = 3;
        const auto iresult =
            run_interference_broadcast(inet, algo.factory, iconfig);

        InterferenceSimAdversary adversary(inet, rule);
        SimConfig dconfig;
        dconfig.rule = rule;
        dconfig.start = StartRule::Synchronous;
        dconfig.max_rounds = 10'000'000;
        dconfig.seed = 3;
        const SimResult dresult =
            run_broadcast(dual, algo.factory, adversary, dconfig);

        const bool equal = iresult.completion_round == dresult.completion_round;
        all_equal = all_equal && equal;
        table.add_row({algo.name, to_string(rule), std::to_string(n),
                       benchutil::rounds_str(iresult.completion_round),
                       benchutil::rounds_str(dresult.completion_round),
                       equal ? "yes" : "NO"});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nlemma holds on all rows: " << (all_equal ? "yes" : "NO")
            << "\n";
  return 0;
}
