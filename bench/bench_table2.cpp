// T2 — Table 2 of the paper: randomized broadcast bounds.
//
// Paper row: classical O(D log(n/D) + log^2 n) [12] vs dual-graph
// O(n log^2 n) (Section 7), with the Omega(n) 2-broadcastable lower bound
// (Theorem 4, bench_lb_theorem4) separating the models at constant diameter.
//
// Empirical counterparts: Decay on classical constant-diameter networks
// completes in polylog rounds; Harmonic Broadcast on dual networks against
// the greedy blocker needs ~n polylog rounds.

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/decay.hpp"
#include "algorithms/harmonic.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"
#include "lowerbound/theorem4.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "T2", "Table 2 — randomized broadcast",
      "classical polylog (constant D) vs dual-graph ~n log^2 n; randomized "
      "success within k rounds <= k/(n-2) on the bridge network");

  const std::vector<NodeId> ns = {17, 33, 65, 129, 257};
  const std::size_t trials = 5;

  stats::Table table({"n", "classical Decay (G=G', D=2)",
                      "dual Harmonic (greedy blocker)",
                      "paper bound 2nT H(n)", "Thm4 min P[success<=n-3]"});
  std::vector<double> xs, decay_rounds, harmonic_rounds;

  for (NodeId n : ns) {
    // Classical: Decay on the diameter-2 bridge topology with G' = G.
    const DualGraph classical =
        duals::strip_unreliable(duals::bridge_network(n));
    SimConfig config;
    config.rule = CollisionRule::CR3;
    config.start = StartRule::Synchronous;
    config.max_rounds = 1'000'000;
    const double decay_mean = benchutil::mean_rounds(
        classical, make_decay_factory(n),
        campaign::make_adversary_factory<BenignAdversary>(), config, trials);

    // Dual: Harmonic against the greedy blocker, CR4 + async start.
    const DualGraph dual = duals::layered_complete_gprime(
        std::max<NodeId>(3, (n - 1) / 4), 4);
    const NodeId dual_n = dual.node_count();
    SimConfig weak;
    weak.rule = CollisionRule::CR4;
    weak.start = StartRule::Asynchronous;
    weak.max_rounds = 10'000'000;
    const double harmonic_mean = benchutil::mean_rounds(
        dual, make_harmonic_factory(dual_n, {.eps = 0.1}),
        campaign::make_adversary_factory<GreedyBlockerAdversary>(), weak,
        trials);
    const Round bound =
        harmonic_round_bound(dual_n, harmonic_T(dual_n, {.eps = 0.1}));

    // Theorem 4 point at k = n-3 (the largest k the theorem covers).
    double thm4 = -1.0;
    if (n <= 65) {  // Monte-Carlo cost grows as (n-2) * trials
      const auto t4 = lowerbound::run_theorem4(
          n, make_harmonic_factory(n, {.eps = 0.1}), {n - 3}, 40, 7);
      thm4 = t4.points.front().min_success_prob;
    }

    table.add_row({std::to_string(n), stats::Table::num(decay_mean, 1),
                   stats::Table::num(harmonic_mean, 1),
                   std::to_string(bound),
                   thm4 < 0 ? std::string("-") : stats::Table::num(thm4, 3)});
    xs.push_back(static_cast<double>(n));
    decay_rounds.push_back(decay_mean);
    harmonic_rounds.push_back(harmonic_mean);
  }
  table.print(std::cout);
  std::cout << "\n";

  benchutil::print_fits(xs, decay_rounds, "classical decay (D=2)");
  benchutil::print_fits(xs, harmonic_rounds, "dual-graph harmonic");

  std::cout << "who wins: classical Decay stays polylogarithmic at constant "
               "diameter while dual-graph Harmonic grows ~n polylog, and the "
               "Theorem 4 column shows success probability capped near "
               "k/(n-2) even at k = n-3.\n";
  return 0;
}
