// T2 — Table 2 of the paper: randomized broadcast bounds.
//
// Paper row: classical O(D log(n/D) + log^2 n) [12] vs dual-graph
// O(n log^2 n) (Section 7), with the Omega(n) 2-broadcastable lower bound
// (Theorem 4, bench_lb_theorem4) separating the models at constant diameter.
//
// Empirical counterparts: Decay on classical constant-diameter networks
// completes in polylog rounds; Harmonic Broadcast on dual networks against
// the greedy blocker needs ~n polylog rounds.
//
// Both simulator-driven columns run as ONE campaign over the parallel trial
// executor (src/campaign/) — every (n, model) sweep point is a named
// scenario, so all trials across all points fan out together. The Theorem 4
// column stays a direct call: the executor is a replay harness, not a
// simulator sweep.

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "algorithms/decay.hpp"
#include "algorithms/harmonic.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"
#include "lowerbound/theorem4.hpp"

using namespace dualrad;

namespace {

std::string classical_name(NodeId n) {
  return "t2/classical-decay/n=" + std::to_string(n);
}

std::string dual_name(NodeId n) {
  return "t2/dual-harmonic/n=" + std::to_string(n);
}

double scenario_mean(const campaign::CampaignResult& result,
                     const std::string& name) {
  const campaign::ScenarioSummary* summary =
      campaign::find_summary(result, name);
  if (summary == nullptr || summary->rounds.count == 0) return -1.0;
  return summary->rounds.mean;
}

}  // namespace

int main() {
  benchutil::print_header(
      "T2", "Table 2 — randomized broadcast",
      "classical polylog (constant D) vs dual-graph ~n log^2 n; randomized "
      "success within k rounds <= k/(n-2) on the bridge network");

  const std::vector<NodeId> ns = {17, 33, 65, 129, 257};
  const std::size_t trials = 5;

  // Both randomized upper-bound columns, for every n, as one campaign. The
  // dual network is built once per sweep point — the scenario serves the
  // prebuilt graph, and the bound column below reads the same node count.
  std::vector<campaign::Scenario> scenarios;
  std::vector<NodeId> dual_node_counts;
  for (NodeId n : ns) {
    // Classical: Decay on the diameter-2 bridge topology with G' = G.
    scenarios.push_back(
        {.name = classical_name(n),
         .network =
             [n] { return duals::strip_unreliable(duals::bridge_network(n)); },
         .algorithm =
             [](const DualGraph& net) {
               return make_decay_factory(net.node_count());
             },
         .adversary = campaign::make_adversary_factory<BenignAdversary>(),
         .rule = CollisionRule::CR3,
         .start = StartRule::Synchronous,
         .max_rounds = 1'000'000,
         .trials = trials});

    // Dual: Harmonic against the greedy blocker, CR4 + async start.
    DualGraph dual =
        duals::layered_complete_gprime(std::max<NodeId>(3, (n - 1) / 4), 4);
    dual_node_counts.push_back(dual.node_count());
    scenarios.push_back(
        {.name = dual_name(n),
         .network = [dual = std::move(dual)] { return dual; },
         .algorithm =
             [](const DualGraph& net) {
               return make_harmonic_factory(net.node_count(), {.eps = 0.1});
             },
         .adversary =
             campaign::make_adversary_factory<GreedyBlockerAdversary>(),
         .rule = CollisionRule::CR4,
         .start = StartRule::Asynchronous,
         .max_rounds = 10'000'000,
         .trials = trials});
  }
  const campaign::CampaignResult result = campaign::run_campaign(scenarios);

  stats::Table table({"n", "classical Decay (G=G', D=2)",
                      "dual Harmonic (greedy blocker)",
                      "paper bound 2nT H(n)", "Thm4 min P[success<=n-3]"});
  std::vector<double> xs, decay_rounds, harmonic_rounds;

  for (std::size_t i = 0; i < ns.size(); ++i) {
    const NodeId n = ns[i];
    const double decay_mean = scenario_mean(result, classical_name(n));
    const double harmonic_mean = scenario_mean(result, dual_name(n));
    const NodeId dual_n = dual_node_counts[i];
    const Round bound =
        harmonic_round_bound(dual_n, harmonic_T(dual_n, {.eps = 0.1}));

    // Theorem 4 point at k = n-3 (the largest k the theorem covers).
    double thm4 = -1.0;
    if (n <= 65) {  // Monte-Carlo cost grows as (n-2) * trials
      const auto t4 = lowerbound::run_theorem4(
          n, make_harmonic_factory(n, {.eps = 0.1}), {n - 3}, 40, 7);
      thm4 = t4.points.front().min_success_prob;
    }

    table.add_row({std::to_string(n), stats::Table::num(decay_mean, 1),
                   stats::Table::num(harmonic_mean, 1),
                   std::to_string(bound),
                   thm4 < 0 ? std::string("-") : stats::Table::num(thm4, 3)});
    xs.push_back(static_cast<double>(n));
    decay_rounds.push_back(decay_mean);
    harmonic_rounds.push_back(harmonic_mean);
  }
  table.print(std::cout);
  std::cout << "\n";

  benchutil::print_fits(xs, decay_rounds, "classical decay (D=2)");
  benchutil::print_fits(xs, harmonic_rounds, "dual-graph harmonic");

  std::cout << "who wins: classical Decay stays polylogarithmic at constant "
               "diameter while dual-graph Harmonic grows ~n polylog, and the "
               "Theorem 4 column shows success probability capped near "
               "k/(n-2) even at k = n-3.\n";
  return 0;
}
