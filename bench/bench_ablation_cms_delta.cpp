// A4 — ablation: the CMS oblivious baseline's dependence on knowing Delta
// (Section 2.2). The [11] algorithm needs an upper bound on the in-degree
// of G'; Strong Select needs no topology knowledge.
//
// Expected: with the true Delta the baseline completes and beats Strong
// Select when Delta is small (sparse G'); underestimates break or slow the
// isolation guarantee; large overestimates waste schedule length. This is
// exactly the knowledge-vs-robustness trade Section 2.2 describes.

#include "adversary/greedy_blocker.hpp"
#include "algorithms/cms_oblivious.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "graph/dual_builders.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "A4", "Ablation — CMS oblivious [11] needs Delta; Strong Select does not",
      "knowledge of the interference in-degree buys speed at small Delta; "
      "wrong knowledge costs completeness or time");

  // Sparse-G' family where CMS shines: backbone with few unreliable links.
  stats::Table table({"network", "n", "true Delta", "delta used",
                      "cms rounds", "strong select rounds"});
  for (std::uint64_t seed : {3, 4}) {
    const DualGraph net = duals::backbone_plus_unreliable(
        {.n = 64, .p_reliable = 0.02, .p_unreliable = 0.05, .seed = seed});
    const NodeId n = net.node_count();
    const auto true_delta = static_cast<NodeId>(net.g_prime().max_in_degree());
    GreedyBlockerAdversary greedy;
    SimConfig config;
    config.rule = CollisionRule::CR4;
    config.start = StartRule::Asynchronous;
    config.max_rounds = 5'000'000;
    const Round ss = benchutil::measure_rounds(
        net, make_strong_select_factory(n), greedy, config);
    for (const NodeId delta :
         {static_cast<NodeId>(1), static_cast<NodeId>(true_delta / 2),
          true_delta, static_cast<NodeId>(2 * true_delta)}) {
      if (delta < 1) continue;
      const Round cms = benchutil::measure_rounds(
          net, make_cms_oblivious_factory(n, {.delta = delta}), greedy,
          config);
      table.add_row({"backbone seed=" + std::to_string(seed),
                     std::to_string(n), std::to_string(true_delta),
                     std::to_string(delta), benchutil::rounds_str(cms),
                     benchutil::rounds_str(ss)});
    }
  }
  table.print(std::cout);
  return 0;
}
