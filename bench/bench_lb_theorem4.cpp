// E4 — Theorem 4: the randomized lower bound on the 2-broadcastable bridge
// network. Against the restricted fixed-rule adversary class, no algorithm
// solves broadcast within k rounds with probability > k/(n-2).
//
// The bench sweeps k and prints the Monte-Carlo success probability of
// Harmonic Broadcast (and Decay, as a second randomized algorithm) next to
// the k/(n-2) line. Expected: measured curves at or below the line (up to
// Monte-Carlo noise).

#include "algorithms/decay.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/uniform_gossip.hpp"
#include "bench_util.hpp"
#include "lowerbound/theorem4.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "E4", "Theorem 4 executor — randomized success probability",
      "P[success within k] <= k/(n-2) for 1 <= k <= n-3");

  const NodeId n = 34;
  const std::size_t trials = 150;
  std::vector<Round> ks;
  for (Round k = 1; k <= n - 3; k += 4) ks.push_back(k);
  ks.push_back(n - 3);

  // Harmonic's first T rounds are deterministic all-send, which the
  // fixed-rule adversary jams completely (min P = 0: legal, but degenerate).
  // Uniform gossip (send w.p. ~1/n) traces the informative curve ~k/(e n)
  // strictly under the theorem's ceiling.
  const auto harmonic = lowerbound::run_theorem4(
      n, make_harmonic_factory(n, {.eps = 0.1}), ks, trials, 11);
  const auto decay =
      lowerbound::run_theorem4(n, make_decay_factory(n), ks, trials, 13);
  const auto gossip = lowerbound::run_theorem4(
      n, make_uniform_gossip_factory(n), ks, trials, 17);

  stats::Table table({"k", "bound k/(n-2)", "gossip min P", "gossip worst id",
                      "decay min P", "harmonic min P"});
  for (std::size_t i = 0; i < harmonic.points.size(); ++i) {
    const auto& hp = harmonic.points[i];
    const auto& dp = decay.points[i];
    const auto& gp = gossip.points[i];
    table.add_row({std::to_string(hp.k), stats::Table::num(hp.bound, 3),
                   stats::Table::num(gp.min_success_prob, 3),
                   std::to_string(gp.worst_bridge_id),
                   stats::Table::num(dp.min_success_prob, 3),
                   stats::Table::num(hp.min_success_prob, 3)});
  }
  table.print(std::cout);
  std::cout << "\nbound respected: gossip="
            << (gossip.bound_respected ? "yes" : "NO")
            << " decay=" << (decay.bound_respected ? "yes" : "NO")
            << " harmonic=" << (harmonic.bound_respected ? "yes" : "NO")
            << " (n=" << n << ", " << trials << " trials per bridge id)\n";
  return 0;
}
