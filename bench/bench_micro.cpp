// M1: micro benchmarks — simulator round throughput and SSF construction
// cost (google-benchmark).

#include <benchmark/benchmark.h>

#include "adversary/basic_adversaries.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/strong_select.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "selectors/kautz_singleton.hpp"
#include "selectors/randomized_ssf.hpp"

namespace {

using namespace dualrad;

void BM_SimulatorRounds(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const DualGraph net = duals::layered_complete_gprime(8, std::max(2, n / 8));
  const ProcessFactory factory = make_harmonic_factory(net.node_count());
  FullInterferenceAdversary adversary;
  SimConfig config;
  config.max_rounds = 256;
  config.stop_on_completion = false;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const SimResult result = run_broadcast(net, factory, adversary, config);
    rounds += static_cast<std::uint64_t>(result.rounds_executed);
    benchmark::DoNotOptimize(result.total_sends);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_SimulatorRounds)->Arg(32)->Arg(128);

void BM_KautzSingletonConstruction(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto k = static_cast<NodeId>(state.range(1));
  for (auto _ : state) {
    const SsfFamily family = kautz_singleton_ssf(n, k);
    benchmark::DoNotOptimize(family.size());
  }
}
BENCHMARK(BM_KautzSingletonConstruction)
    ->Args({256, 4})
    ->Args({1024, 8})
    ->Args({4096, 16});

void BM_RandomizedSsfConstruction(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const auto k = static_cast<NodeId>(state.range(1));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const SsfFamily family = randomized_ssf(n, k, {.factor = 4.0, .seed = seed++});
    benchmark::DoNotOptimize(family.size());
  }
}
BENCHMARK(BM_RandomizedSsfConstruction)->Args({1024, 8});

void BM_StrongSelectSchedule(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  for (auto _ : state) {
    const auto schedule = make_strong_select_schedule(n);
    benchmark::DoNotOptimize(schedule->epoch_length());
  }
}
BENCHMARK(BM_StrongSelectSchedule)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
