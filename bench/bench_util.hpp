#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "stats/fit.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"

/// Shared helpers for the bench binaries. Each bench prints one or more
/// paper-style tables plus the growth-shape fits used by EXPERIMENTS.md.
///
/// Repeated-trial measurement goes through the campaign engine
/// (src/campaign/), which parallelizes trials across worker threads and
/// gives every trial a *fresh* adversary from a factory — one shared
/// Adversary& across trials would let stateful adversaries (Bernoulli noise
/// streams, blockers with caches) leak state between samples.

namespace dualrad::benchutil {

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& expectation) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
  std::cout << "paper expectation: " << expectation << "\n\n";
}

inline std::string rounds_str(Round r) {
  return r == kNever ? std::string("never") : std::to_string(r);
}

/// Completion round of a single execution, or kNever. (Single-execution
/// measurement may share an adversary: the simulator resets it via
/// on_execution_start.)
inline Round measure_rounds(const DualGraph& net, const ProcessFactory& factory,
                            Adversary& adversary, const SimConfig& config) {
  const SimResult result = run_broadcast(net, factory, adversary, config);
  return result.completed ? result.completion_round : kNever;
}

/// One-scenario campaign over `trials` derived seeds; config.seed is the
/// master seed. Each trial draws a fresh adversary from `adversary`.
inline campaign::ScenarioSummary sample_rounds(
    const DualGraph& net, const ProcessFactory& factory,
    const campaign::AdversaryFactory& adversary, const SimConfig& config,
    std::size_t trials, const std::string& name = "bench/sample") {
  campaign::Scenario scenario;
  scenario.name = name;
  scenario.network = [&net] { return net; };
  scenario.algorithm = [&factory](const DualGraph&) { return factory; };
  scenario.adversary = adversary;
  scenario.rule = config.rule;
  scenario.start = config.start;
  scenario.max_rounds = config.max_rounds;
  scenario.trials = trials;
  campaign::CampaignConfig cc;
  cc.master_seed = config.seed;
  return campaign::run_campaign({scenario}, cc).summaries.front();
}

/// Mean completion round over `trials` derived seeds (kNever trials
/// excluded; `failures` counts them). -1 if no trial completed.
inline double mean_rounds(const DualGraph& net, const ProcessFactory& factory,
                          const campaign::AdversaryFactory& adversary,
                          const SimConfig& config, std::size_t trials,
                          std::size_t* failures = nullptr) {
  const campaign::ScenarioSummary summary =
      sample_rounds(net, factory, adversary, config, trials);
  if (failures != nullptr) *failures = summary.failures;
  return summary.rounds.count == 0 ? -1.0 : summary.rounds.mean;
}

inline void print_fits(const std::vector<double>& n,
                       const std::vector<double>& rounds,
                       const std::string& label) {
  if (n.size() < 3) return;
  const auto fits = stats::fit_all_shapes(n, rounds);
  std::cout << "shape fit for " << label << " (best first):\n";
  stats::Table table({"shape", "scale", "R^2", "ratio spread"});
  for (std::size_t i = 0; i < std::min<std::size_t>(3, fits.size()); ++i) {
    table.add_row({fits[i].shape, stats::Table::num(fits[i].scale, 4),
                   stats::Table::num(fits[i].r2, 4),
                   stats::Table::num(fits[i].ratio_spread, 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace dualrad::benchutil
