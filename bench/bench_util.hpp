#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "stats/fit.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"

/// Shared helpers for the bench binaries. Each bench prints one or more
/// paper-style tables plus the growth-shape fits used by EXPERIMENTS.md.

namespace dualrad::benchutil {

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& expectation) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
  std::cout << "paper expectation: " << expectation << "\n\n";
}

inline std::string rounds_str(Round r) {
  return r == kNever ? std::string("never") : std::to_string(r);
}

/// Completion round, or kNever.
inline Round measure_rounds(const DualGraph& net, const ProcessFactory& factory,
                            Adversary& adversary, const SimConfig& config) {
  const SimResult result = run_broadcast(net, factory, adversary, config);
  return result.completed ? result.completion_round : kNever;
}

/// Mean completion round over `trials` seeds (kNever trials excluded;
/// `failures` counts them).
inline double mean_rounds(const DualGraph& net, const ProcessFactory& factory,
                          Adversary& adversary, SimConfig config,
                          std::size_t trials, std::size_t* failures = nullptr) {
  std::vector<double> samples;
  std::size_t failed = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    config.seed = mix_seed(0xBE9C, t);
    const Round r = measure_rounds(net, factory, adversary, config);
    if (r == kNever) {
      ++failed;
    } else {
      samples.push_back(static_cast<double>(r));
    }
  }
  if (failures != nullptr) *failures = failed;
  return samples.empty() ? -1.0 : stats::summarize(std::move(samples)).mean;
}

inline void print_fits(const std::vector<double>& n,
                       const std::vector<double>& rounds,
                       const std::string& label) {
  if (n.size() < 3) return;
  const auto fits = stats::fit_all_shapes(n, rounds);
  std::cout << "shape fit for " << label << " (best first):\n";
  stats::Table table({"shape", "scale", "R^2", "ratio spread"});
  for (std::size_t i = 0; i < std::min<std::size_t>(3, fits.size()); ++i) {
    table.add_row({fits[i].shape, stats::Table::num(fits[i].scale, 4),
                   stats::Table::num(fits[i].r2, 4),
                   stats::Table::num(fits[i].ratio_spread, 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace dualrad::benchutil
