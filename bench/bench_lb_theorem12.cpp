// E5 — Theorem 12: the Omega(n log n) deterministic lower bound for
// undirected dual graphs, via the constructive stage adversary.
//
// For each n (n-1 a power of two) the builder runs the proof's construction
// against a deterministic algorithm and reports the committed execution
// length, which the theorem guarantees to be >= (n-1)/4 (log2(n-1) - 2)
// rounds while at most half the processes are covered. Expected: measured
// rounds above the bound for every algorithm, with the round-robin curve
// fitting ~n log n; a "stalled" verdict means the algorithm never again
// isolates the frontier — broadcast never completes, an even stronger
// witness.

#include "algorithms/round_robin_bcast.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "lowerbound/theorem12.hpp"

using namespace dualrad;

namespace {

std::string describe(const lowerbound::Theorem12Result& result) {
  if (!result.valid) return "INVALID";
  if (result.stalled) return "stalled(never completes)";
  return std::to_string(result.total_rounds);
}

}  // namespace

int main() {
  benchutil::print_header(
      "E5", "Theorem 12 executor — Omega(n log n) undirected lower bound",
      "construction forces >= (n-1)/4 (log2(n-1)-2) rounds with <= half the "
      "processes covered, for every deterministic algorithm");

  const std::vector<NodeId> ns = {9, 17, 33, 65, 129, 257};

  stats::Table table({"n", "bound", "round robin rounds", "covered/n",
                      "strong select", "participate-forever SS"});
  std::vector<double> xs, rr_rounds;
  for (NodeId n : ns) {
    const auto rr = lowerbound::run_theorem12(n, make_round_robin_factory(n));
    const auto ss =
        lowerbound::run_theorem12(n, make_strong_select_factory(n));
    StrongSelectOptions forever;
    forever.participate_forever = true;
    const auto ssf =
        lowerbound::run_theorem12(n, make_strong_select_factory(n, forever));
    table.add_row({std::to_string(n),
                   std::to_string(lowerbound::theorem12_bound(n)),
                   describe(rr),
                   std::to_string(rr.covered_processes) + "/" +
                       std::to_string(n),
                   describe(ss), describe(ssf)});
    if (rr.valid && !rr.stalled) {
      xs.push_back(static_cast<double>(n));
      rr_rounds.push_back(static_cast<double>(rr.total_rounds));
    }
  }
  table.print(std::cout);
  std::cout << "\n";
  benchutil::print_fits(xs, rr_rounds, "round robin under the construction");
  std::cout << "note: the classical model completes broadcast on these "
               "topologies in O(n) rounds (Table 1 row); the construction "
               "separates the models by a log factor.\n";
  return 0;
}
