// X2 — extension experiment: the price of unreliability vs the
// k-broadcastability oracle (Section 3).
//
// For each network: the oracle single-sender schedule length (what a
// topology-aware, contention-free scheduler achieves, adversary-proof) next
// to what the paper's topology-oblivious algorithms need against the greedy
// blocker. The Theorem 2/12 networks make the gap extreme by design: the
// bridge network is 2-broadcastable yet costs every deterministic algorithm
// ~n rounds.

#include "adversary/greedy_blocker.hpp"
#include "algorithms/harmonic.hpp"
#include "algorithms/strong_select.hpp"
#include "bench_util.hpp"
#include "graph/broadcastability.hpp"
#include "graph/dual_builders.hpp"
#include "lowerbound/theorem2.hpp"

using namespace dualrad;

int main() {
  benchutil::print_header(
      "X2", "Oracle schedule vs oblivious algorithms (price of unreliability)",
      "k-broadcastable networks admit k-round oracle schedules; oblivious "
      "algorithms pay the adversarial price (Thm 2: factor ~n/2 on the "
      "bridge)");

  stats::Table table({"network", "n", "depth LB", "greedy oracle",
                      "strong select (greedy adv)", "harmonic (greedy adv)",
                      "thm2 worst (det)"});
  struct Spec {
    std::string name;
    DualGraph net;
    bool run_thm2;
  };
  std::vector<Spec> specs;
  specs.push_back({"bridge n=33", duals::bridge_network(33), true});
  specs.push_back({"bridge n=65", duals::bridge_network(65), true});
  specs.push_back({"thm12 n=33", duals::theorem12_network(33), false});
  specs.push_back({"layered 16x4", duals::layered_complete_gprime(16, 4),
                   false});
  specs.push_back(
      {"grayzone 64", duals::gray_zone({.n = 64, .seed = 3}), false});

  for (const auto& spec : specs) {
    const NodeId n = spec.net.node_count();
    const auto oracle = broadcastability::greedy_oracle_schedule(spec.net);
    GreedyBlockerAdversary greedy;
    SimConfig config;
    config.rule = CollisionRule::CR4;
    config.start = StartRule::Asynchronous;
    config.max_rounds = 10'000'000;
    const Round ss = benchutil::measure_rounds(
        spec.net, make_strong_select_factory(n), greedy, config);
    const Round harm = benchutil::measure_rounds(
        spec.net, make_harmonic_factory(n), greedy, config);
    std::string thm2 = "-";
    if (spec.run_thm2) {
      const auto result =
          lowerbound::run_theorem2(n, make_strong_select_factory(n), 1'000'000);
      thm2 = benchutil::rounds_str(result.worst_rounds);
    }
    table.add_row(
        {spec.name, std::to_string(n),
         std::to_string(broadcastability::broadcastability_lower_bound(spec.net)),
         std::to_string(oracle.rounds()), benchutil::rounds_str(ss),
         benchutil::rounds_str(harm), thm2});
  }
  table.print(std::cout);
  std::cout << "\nreading: 'greedy oracle' is what topology knowledge buys "
               "(collision-free single-sender schedule, immune to the "
               "adversary); the oblivious columns pay the dual-graph price "
               "the paper quantifies.\n";
  return 0;
}
