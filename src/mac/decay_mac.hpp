#pragma once

#include "algorithms/decay.hpp"
#include "core/process.hpp"
#include "mac/abstract_mac.hpp"

/// \file decay_mac.hpp
/// DecayMac: a concrete abstract-MAC-layer implementation that runs
/// Bar-Yehuda-Goldreich-Itai Decay as the contention manager over the dual
/// graph round engine.
///
/// The layer broadcasts one client message at a time. While a message is on
/// the air, the hosting process transmits it in round r with probability
/// 2^{-((r-1) mod phase)} — byte-for-byte the schedule of
/// algorithms/decay.cpp, including the randomness stream, so that
/// single-token BMMB-over-DecayMac reproduces plain Decay transmissions
/// exactly until a run expires (the regression cross-check in
/// tests/test_mac.cpp relies on this). A run lasts `phases_per_run` phases;
/// when it ends the layer delivers the ack and starts the next queued
/// message. There is no feedback channel in the radio model, so the ack is
/// time-triggered — the standard construction for Decay-based MAC layers.
///
/// Measured f_ack: the layer records the latency (bcast round -> ack round,
/// queue wait included) of every ack and exports count/max/sum through
/// Process::final_metrics under the kMacAck* names below. Measured f_prog
/// is reconstructed globally from SimResult::token_first (mac_latency.hpp).

namespace dualrad::mac {

/// Metric names DecayMac exports via Process::final_metrics.
inline constexpr const char* kMacAckCountMetric = "mac.acks";
inline constexpr const char* kMacAckMaxMetric = "mac.ack_max";
inline constexpr const char* kMacAckSumMetric = "mac.ack_sum";
/// Messages handed to bcast() but not acked when the execution ended.
inline constexpr const char* kMacPendingMetric = "mac.pending";

struct DecayMacOptions {
  /// Phase length; 0 derives ceil(log2 n) + 1 (decay_phase_length).
  Round phase_length = 0;
  /// Phases per broadcast run (bcast -> ack); 0 derives ceil(log2 n) + 1.
  Round phases_per_run = 0;
};

/// Rounds from the start of a message's run to its ack.
[[nodiscard]] Round decay_mac_run_length(NodeId n,
                                         const DecayMacOptions& options = {});

/// Process factory hosting `client_factory`'s clients over DecayMac.
[[nodiscard]] ProcessFactory make_decay_mac_factory(
    NodeId n, MacClientFactory client_factory,
    const DecayMacOptions& options = {});

}  // namespace dualrad::mac
