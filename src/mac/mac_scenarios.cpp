#include "mac/mac_scenarios.hpp"

#include <string>

#include "adversary/basic_adversaries.hpp"
#include "adversary/greedy_blocker.hpp"
#include "graph/dual_builders.hpp"
#include "mac/bmmb.hpp"

namespace dualrad::mac {

namespace {

using campaign::Scenario;

/// A BMMB-over-DecayMac scenario with k tokens at spread sources. The
/// network builder is invoked once here to compute the (deterministic)
/// source list; builders are pure, so the trial-time build yields the same
/// graph.
[[nodiscard]] Scenario bmmb_scenario(std::string name,
                                     campaign::NetworkBuilder network,
                                     TokenId k) {
  Scenario s;
  s.name = std::move(name);
  s.description = "BMMB over DecayMac: " + std::to_string(k) +
                  " token(s) at spread sources; completion = every process "
                  "holds every token";
  s.tags = {"mac", "multi-message", "randomized",
            "k=" + std::to_string(k)};
  const DualGraph net = network();
  s.token_sources = spread_token_sources(net, k);
  s.network = std::move(network);
  s.algorithm = [](const DualGraph& built) {
    return make_bmmb_factory(built.node_count());
  };
  s.max_rounds = 500'000;
  s.trials = 3;
  return s;
}

[[nodiscard]] campaign::NetworkBuilder layered() {
  return [] { return duals::layered_complete_gprime(8, 4); };
}

[[nodiscard]] campaign::NetworkBuilder grayzone() {
  return [] {
    return duals::gray_zone(
        {.n = 48, .r_reliable = 0.22, .r_gray = 0.55, .seed = 7});
  };
}

}  // namespace

void register_mac_scenarios(campaign::ScenarioRegistry& registry) {
  {
    Scenario s = bmmb_scenario("mac/bmmb-decay/layered/k=1/benign", layered(), 1);
    s.adversary = campaign::make_adversary_factory<BenignAdversary>();
    registry.add(std::move(s));
  }
  {
    Scenario s = bmmb_scenario("mac/bmmb-decay/layered/k=4/benign", layered(), 4);
    s.adversary = campaign::make_adversary_factory<BenignAdversary>();
    registry.add(std::move(s));
  }
  {
    Scenario s = bmmb_scenario("mac/bmmb-decay/layered/k=16/bernoulli:0.5",
                               layered(), 16);
    s.adversary = campaign::make_seeded_adversary_factory<BernoulliAdversary>(0.5);
    registry.add(std::move(s));
  }
  {
    // Decay carries no dual-graph guarantee, so the greedy blocker can
    // starve the MAC layer; trials may hit the round cap (Table 2's
    // contrast, now at the MAC layer).
    Scenario s = bmmb_scenario("mac/bmmb-decay/layered/k=4/greedy", layered(), 4);
    s.adversary = campaign::make_adversary_factory<GreedyBlockerAdversary>();
    s.tags.push_back("negative");
    s.max_rounds = 100'000;
    s.trials = 2;
    registry.add(std::move(s));
  }
  {
    Scenario s = bmmb_scenario("mac/bmmb-decay/grayzone/k=4/bernoulli:0.3",
                               grayzone(), 4);
    s.adversary = campaign::make_seeded_adversary_factory<BernoulliAdversary>(0.3);
    registry.add(std::move(s));
  }
  {
    Scenario s = bmmb_scenario("mac/bmmb-decay/grayzone/k=16/benign",
                               grayzone(), 16);
    s.adversary = campaign::make_adversary_factory<BenignAdversary>();
    registry.add(std::move(s));
  }
}

}  // namespace dualrad::mac
