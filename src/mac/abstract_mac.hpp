#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/message.hpp"
#include "core/types.hpp"

/// \file abstract_mac.hpp
/// The abstract MAC layer interface, after Kuhn, Lynch & Newport's abstract
/// MAC layer line of work (and its unreliable-link instantiation in
/// Ghaffari-Kantor-Lynch-Newport, "Multi-Message Broadcast with Abstract MAC
/// Layers and Unreliable Links" — see PAPERS.md).
///
/// The layer decomposes multi-message protocols into
///   * a *client* (the high-level algorithm, e.g. basic multi-message
///     broadcast) that hands messages to the MAC layer and reacts to
///     deliveries, and
///   * a *MAC implementation* (e.g. DecayMac, decay_mac.hpp) that resolves
///     contention on the radio channel and provides two callbacks:
///       - receive: a message from some nearby process arrived;
///       - ack: the layer finished broadcasting the client's message to its
///         reliable neighborhood and is ready for the next one.
///
/// The contract is characterized by two latency bounds the client may rely
/// on: f_ack, the maximum rounds between bcast() and the matching ack, and
/// f_prog, the maximum rounds a process waits for *some* message while a
/// reliable neighbor is contending with one it lacks. Implementations in
/// this repo measure both per execution instead of assuming them: ack
/// latencies are exported through Process::final_metrics (see
/// decay_mac.hpp), progress latencies are reconstructed from the
/// simulator's per-token coverage data (mac_latency.hpp).

namespace dualrad::mac {

/// The MAC layer as seen by its client. Passed into every client callback;
/// clients must not retain the reference beyond the callback.
class AbstractMac {
 public:
  virtual ~AbstractMac() = default;

  /// Identifier of the process this MAC instance runs on.
  [[nodiscard]] virtual ProcessId mac_id() const = 0;
  /// Number of processes in the network.
  [[nodiscard]] virtual NodeId mac_n() const = 0;

  /// Hand a message to the layer for broadcast to the (reliable)
  /// neighborhood. Messages are queued FIFO; the layer broadcasts one at a
  /// time and delivers on_mac_ack when a message's broadcast completes.
  virtual void bcast(const Message& message) = 0;

  /// Messages handed to bcast() whose ack has not been delivered yet
  /// (including the one currently on the air).
  [[nodiscard]] virtual std::size_t pending() const = 0;
};

/// The algorithm running above the MAC layer. Implementations hold all
/// client state; they are cloned alongside the hosting process (execution
/// branching in the lower-bound harnesses).
class MacClient {
 public:
  virtual ~MacClient() = default;

  /// Called once when the hosting process activates. `initial` is the
  /// environment input (a token message for token sources, nullopt
  /// otherwise) or, under asynchronous start, the message that woke the
  /// process — which is *also* delivered here, not via on_mac_receive.
  virtual void on_mac_start(AbstractMac& mac, Round round,
                            const std::optional<Message>& initial) = 0;

  /// A message from the network was delivered to this process.
  virtual void on_mac_receive(AbstractMac& mac, Round round,
                              const Message& message) = 0;

  /// The layer finished broadcasting `message` (handed to bcast earlier).
  virtual void on_mac_ack(AbstractMac& mac, Round round,
                          const Message& message) = 0;

  [[nodiscard]] virtual std::unique_ptr<MacClient> clone() const = 0;

 protected:
  MacClient() = default;
  MacClient(const MacClient&) = default;
};

/// Creates the client for process `id` of `n` with randomness key `seed`.
/// Must be pure, like ProcessFactory.
using MacClientFactory = std::function<std::unique_ptr<MacClient>(
    ProcessId id, NodeId n, std::uint64_t seed)>;

}  // namespace dualrad::mac
