#pragma once

#include "campaign/registry.hpp"

/// \file mac_scenarios.hpp
/// The multi-message broadcast workloads: BMMB over DecayMac with k tokens
/// at k spread sources, on the layered and gray-zone families, under the
/// benign / Bernoulli / greedy-blocker adversaries. Registered into the
/// built-in catalogue (campaign/builtin_scenarios.cpp) under `mac/...`
/// names with the "mac" and "multi-message" tags, so
/// `dualrad_campaign --filter=mac` selects exactly this suite.

namespace dualrad::mac {

/// Register the mac/* scenarios (>= 6) into `registry`.
void register_mac_scenarios(campaign::ScenarioRegistry& registry);

}  // namespace dualrad::mac
