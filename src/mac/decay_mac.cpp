#include "mac/decay_mac.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "core/rng.hpp"

namespace dualrad::mac {

Round decay_mac_run_length(NodeId n, const DecayMacOptions& options) {
  const Round phase = decay_phase_length(n, {.phase_length = options.phase_length});
  const Round phases = options.phases_per_run > 0 ? options.phases_per_run
                                                  : decay_phase_length(n, {});
  return phase * phases;
}

namespace {

/// The Process that hosts a MacClient over the Decay contention manager.
/// All mutable state changes in on_activate / on_receive, keeping
/// next_action pure (the core purity contract).
class DecayMacProcess final : public Process, public AbstractMac {
 public:
  DecayMacProcess(ProcessId id, NodeId n, std::uint64_t seed, Round phase,
                  Round run_length, std::unique_ptr<MacClient> client)
      : Process(id),
        n_(n),
        phase_(phase),
        run_length_(run_length),
        rng_(seed),
        client_(std::move(client)) {
    DUALRAD_CHECK(client_ != nullptr, "DecayMac needs a client");
  }

  DecayMacProcess(const DecayMacProcess& other)
      : Process(other),
        n_(other.n_),
        phase_(other.phase_),
        run_length_(other.run_length_),
        rng_(other.rng_),
        client_(other.client_->clone()),
        queue_(other.queue_),
        active_(other.active_),
        active_bcast_round_(other.active_bcast_round_),
        run_start_(other.run_start_),
        callback_round_(other.callback_round_),
        acks_(other.acks_),
        ack_max_(other.ack_max_),
        ack_sum_(other.ack_sum_) {}

  // --- Process ---------------------------------------------------------

  void on_activate(Round round, const std::optional<Message>& initial) override {
    callback_round_ = round;
    client_->on_mac_start(*this, round, initial);
  }

  [[nodiscard]] Action next_action(Round round) const override {
    if (!active_.has_value() || round < run_start_ ||
        round >= run_start_ + run_length_) {
      return Action::silent();
    }
    // Decay schedule, identical to algorithms/decay.cpp: probability
    // 2^{-offset} at global-round offset (round-1) mod phase, coin drawn
    // from the same counter stream.
    const auto offset = static_cast<int>((round - 1) % phase_);
    const double p = std::ldexp(1.0, -offset);
    if (!rng_.bernoulli(p, round)) return Action::silent();
    return Action::transmit(*active_);
  }

  void on_receive(Round round, const Reception& reception) override {
    callback_round_ = round;
    // Deliver the reception first (it may enqueue new bcasts), then close
    // out a run that ends this round.
    if (reception.is_message() && reception.message->origin != id()) {
      client_->on_mac_receive(*this, round, *reception.message);
    }
    if (active_.has_value() && round == run_start_ + run_length_ - 1) {
      const Message done = *active_;
      const auto latency = static_cast<double>(round - active_bcast_round_);
      ++acks_;
      ack_max_ = std::max(ack_max_, latency);
      // lint: fp-ok (per-process state, updated in round order by one shard)
      ack_sum_ += latency;
      if (queue_.empty()) {
        active_.reset();
      } else {
        active_ = queue_.front().first;
        active_bcast_round_ = queue_.front().second;
        queue_.pop_front();
        run_start_ = round + 1;
      }
      client_->on_mac_ack(*this, round, done);
    }
  }

  [[nodiscard]] std::unique_ptr<Process> clone() const override {
    return std::make_unique<DecayMacProcess>(*this);
  }

  [[nodiscard]] std::vector<ProcessMetric> final_metrics() const override {
    return {{kMacAckCountMetric, static_cast<double>(acks_)},
            {kMacAckMaxMetric, acks_ > 0 ? ack_max_ : -1.0},
            {kMacAckSumMetric, ack_sum_},
            {kMacPendingMetric, static_cast<double>(pending())}};
  }

  // --- AbstractMac ------------------------------------------------------

  [[nodiscard]] ProcessId mac_id() const override { return id(); }
  [[nodiscard]] NodeId mac_n() const override { return n_; }

  void bcast(const Message& message) override {
    if (active_.has_value()) {
      queue_.emplace_back(message, callback_round_);
    } else {
      active_ = message;
      active_bcast_round_ = callback_round_;
      run_start_ = callback_round_ + 1;
    }
  }

  [[nodiscard]] std::size_t pending() const override {
    return queue_.size() + (active_.has_value() ? 1 : 0);
  }

 private:
  NodeId n_;
  Round phase_;
  Round run_length_;
  CounterRng rng_;
  std::unique_ptr<MacClient> client_;
  /// Queued (message, bcast round) pairs behind the active one.
  std::deque<std::pair<Message, Round>> queue_{};
  std::optional<Message> active_{};
  Round active_bcast_round_ = kNever;
  Round run_start_ = kNever;
  /// Round of the callback currently executing; bcast() may only be called
  /// from inside client callbacks.
  Round callback_round_ = kNever;
  std::uint64_t acks_ = 0;
  double ack_max_ = 0.0;
  double ack_sum_ = 0.0;
};

}  // namespace

ProcessFactory make_decay_mac_factory(NodeId n, MacClientFactory client_factory,
                                      const DecayMacOptions& options) {
  DUALRAD_REQUIRE(static_cast<bool>(client_factory),
                  "DecayMac needs a client factory");
  const Round phase =
      decay_phase_length(n, {.phase_length = options.phase_length});
  const Round run_length = decay_mac_run_length(n, options);
  return [n, phase, run_length, client_factory = std::move(client_factory)](
             ProcessId id, NodeId n_arg,
             std::uint64_t seed) -> std::unique_ptr<Process> {
    DUALRAD_REQUIRE(n_arg == n, "factory built for a different n");
    return std::make_unique<DecayMacProcess>(
        id, n, seed, phase, run_length,
        client_factory(id, n, mix_seed(seed, 0xC11E)));
  };
}

}  // namespace dualrad::mac
