#include "mac/bmmb.hpp"

#include <algorithm>

namespace dualrad::mac {

namespace {

class BmmbClient final : public MacClient {
 public:
  BmmbClient() = default;
  BmmbClient(const BmmbClient&) = default;

  void on_mac_start(AbstractMac& mac, Round round,
                    const std::optional<Message>& initial) override {
    if (initial.has_value()) learn(mac, round, *initial);
  }

  void on_mac_receive(AbstractMac& mac, Round round,
                      const Message& message) override {
    learn(mac, round, message);
  }

  void on_mac_ack(AbstractMac& mac, Round round, const Message&) override {
    // Fresh relays queue ahead by themselves; when the layer goes idle,
    // keep cycling re-broadcasts of held tokens. This is the liveness rule:
    // a time-triggered MAC ack cannot guarantee the neighborhood actually
    // received the message (no feedback channel in the radio model), so a
    // relay-once BMMB can strand a token forever. Cycling makes completion
    // a.s. under benign/stochastic channels — and makes the k = 1 case
    // transmit in exactly plain Decay's schedule, with no gap between runs.
    if (mac.pending() == 0 && !held_.empty()) {
      const TokenId token = held_[cycle_ % held_.size()];
      ++cycle_;
      mac.bcast(Message{token, /*origin=*/mac.mac_id(), /*round_tag=*/round,
                        /*payload=*/0});
    }
  }

  [[nodiscard]] std::unique_ptr<MacClient> clone() const override {
    return std::make_unique<BmmbClient>(*this);
  }

 private:
  void learn(AbstractMac& mac, Round round, const Message& message) {
    const TokenId token = message.token;
    if (token == kNoToken) return;
    if (std::find(held_.begin(), held_.end(), token) != held_.end()) return;
    held_.push_back(token);
    mac.bcast(Message{token, /*origin=*/mac.mac_id(), /*round_tag=*/round,
                      /*payload=*/0});
  }

  std::vector<TokenId> held_{};
  std::size_t cycle_ = 0;
};

}  // namespace

MacClientFactory make_bmmb_client_factory() {
  return [](ProcessId, NodeId, std::uint64_t) {
    return std::make_unique<BmmbClient>();
  };
}

ProcessFactory make_bmmb_factory(NodeId n, const BmmbOptions& options) {
  return make_decay_mac_factory(n, make_bmmb_client_factory(), options.mac);
}

std::vector<NodeId> spread_token_sources(const DualGraph& net, TokenId k) {
  const NodeId n = net.node_count();
  DUALRAD_REQUIRE(k >= 1 && k <= n, "token count must be in [1, n]");
  std::vector<bool> chosen(static_cast<std::size_t>(n), false);
  std::vector<NodeId> sources;
  sources.reserve(static_cast<std::size_t>(k));
  sources.push_back(net.source());
  chosen[static_cast<std::size_t>(net.source())] = true;
  for (TokenId i = 1; i < k; ++i) {
    NodeId candidate = static_cast<NodeId>(
        (static_cast<std::int64_t>(net.source()) +
         static_cast<std::int64_t>(i) * n / k) %
        n);
    while (chosen[static_cast<std::size_t>(candidate)]) {
      candidate = (candidate + 1) % n;
    }
    chosen[static_cast<std::size_t>(candidate)] = true;
    sources.push_back(candidate);
  }
  return sources;
}

}  // namespace dualrad::mac
