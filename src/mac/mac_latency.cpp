#include "mac/mac_latency.hpp"

#include <algorithm>
#include <map>
#include <string_view>
#include <utility>

#include "mac/decay_mac.hpp"

namespace dualrad::mac {

MacLatencySummary measure_mac_latency(const DualGraph& net,
                                      const SimResult& result) {
  MacLatencySummary summary;
  const NodeId n = net.node_count();
  DUALRAD_REQUIRE(
      result.token_first.empty() ||
          result.token_first.front().size() == static_cast<std::size_t>(n),
      "result does not match the network");

  double prog_sum = 0.0;
  for (const std::vector<Round>& first : result.token_first) {
    for (NodeId v = 0; v < n; ++v) {
      const Round got = first[static_cast<std::size_t>(v)];
      if (got == kNever) {
        ++summary.unreached;
        continue;
      }
      if (got == 0) continue;  // the token's source
      Round avail = kNever;
      for (NodeId u : net.g().in_neighbors(v)) {
        const Round r = first[static_cast<std::size_t>(u)];
        if (r != kNever && (avail == kNever || r < avail)) avail = r;
      }
      // Excluded: no reliable in-neighbor ever held it, or the node beat
      // them to it over an unreliable link.
      if (avail == kNever || avail >= got) continue;
      const Round latency = got - avail;
      ++summary.prog_samples;
      // lint: fp-ok (post-run analysis in fixed token/node order)
      prog_sum += static_cast<double>(latency);
      summary.prog_max = std::max(summary.prog_max, latency);
    }
  }
  if (summary.prog_samples > 0) {
    summary.prog_mean = prog_sum / static_cast<double>(summary.prog_samples);
  }

  double ack_sum = 0.0;
  double ack_max = -1.0;
  for (const ProcessMetricSample& metric : result.process_metrics) {
    const std::string_view name = metric.name;
    if (name == kMacAckCountMetric) {
      summary.acks += static_cast<std::uint64_t>(metric.value);
    } else if (name == kMacAckMaxMetric) {
      ack_max = std::max(ack_max, metric.value);
    } else if (name == kMacAckSumMetric) {
      // lint: fp-ok (post-run reduction in SimResult metric order)
      ack_sum += metric.value;
    } else if (name == kMacPendingMetric) {
      summary.pending += static_cast<std::uint64_t>(metric.value);
    }
  }
  if (summary.acks > 0) {
    summary.ack_max = ack_max;
    summary.ack_mean = ack_sum / static_cast<double>(summary.acks);
  }
  return summary;
}

struct LatencyCollector::State {
  std::map<std::string, DualGraph> nets;
  std::vector<TrialLatencyRow> rows;
};

LatencyCollector::LatencyCollector(
    const std::vector<campaign::Scenario>& scenarios)
    : state_(std::make_shared<State>()) {
  for (const campaign::Scenario& s : scenarios) {
    state_->nets.emplace(s.name, s.network());
  }
}

void LatencyCollector::attach(campaign::CampaignConfig& config) {
  config.observer = [state = state_](const campaign::Scenario& scenario,
                                     const campaign::TrialRow& row,
                                     const SimResult& result) {
    state->rows.push_back(
        {scenario.name, row.trial,
         measure_mac_latency(state->nets.at(scenario.name), result)});
  };
}

std::vector<TrialLatencyRow> LatencyCollector::sorted_rows() const {
  std::vector<TrialLatencyRow> rows = state_->rows;
  std::sort(rows.begin(), rows.end(),
            [](const TrialLatencyRow& a, const TrialLatencyRow& b) {
              return a.scenario != b.scenario ? a.scenario < b.scenario
                                              : a.trial < b.trial;
            });
  return rows;
}

}  // namespace dualrad::mac
