#pragma once

#include <vector>

#include "core/process.hpp"
#include "graph/dual_graph.hpp"
#include "mac/decay_mac.hpp"

/// \file bmmb.hpp
/// BMMB — basic multi-message broadcast over an abstract MAC layer
/// (Ghaffari-Kantor-Lynch-Newport, PAPERS.md).
///
/// k tokens originate at k distinct source nodes (SimConfig::token_sources);
/// completion means every process holds every token. The client logic is the
/// canonical flooding rule — when a process first obtains a token, from the
/// environment or from a received message, it hands a relay for it to the
/// MAC layer — plus a liveness rule: whenever the layer goes idle, the
/// client cycles re-broadcasts of the tokens it holds. The cycling is what
/// makes completion almost-sure under benign and stochastic channels: a
/// time-triggered ack cannot certify neighborhood delivery, so relay-once
/// BMMB could strand a token. All contention management lives below the MAC
/// interface, which is the point of the decomposition.
///
/// With k = 1 and DecayMac as the layer, idle cycling closes every gap
/// between runs, so the transmission schedule is *identical* to plain Decay
/// broadcast for the entire execution — the regression cross-check
/// tests/test_mac.cpp pins this down exactly.

namespace dualrad::mac {

struct BmmbOptions {
  DecayMacOptions mac{};
};

/// MacClientFactory for the BMMB client (reusable over any MAC layer).
[[nodiscard]] MacClientFactory make_bmmb_client_factory();

/// ProcessFactory running BMMB over DecayMac.
[[nodiscard]] ProcessFactory make_bmmb_factory(NodeId n,
                                               const BmmbOptions& options = {});

/// k distinct token source nodes for `net`, deterministically spread over
/// the id space: token 1 originates at net.source(), the rest at evenly
/// spaced nodes. Suitable for SimConfig::token_sources.
[[nodiscard]] std::vector<NodeId> spread_token_sources(const DualGraph& net,
                                                       TokenId k);

}  // namespace dualrad::mac
