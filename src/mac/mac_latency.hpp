#pragma once

#include <memory>
#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "core/simulator.hpp"
#include "graph/dual_graph.hpp"

/// \file mac_latency.hpp
/// Measured ack/progress latencies of a MAC-layer execution.
///
/// The abstract MAC layer contract is parameterized by f_ack (bcast-to-ack
/// latency) and f_prog (how long a process can wait for *some* message while
/// a reliable neighbor holds one it lacks). Rather than assuming the bounds,
/// this module measures both for a finished execution:
///
///  - ack latencies are whatever the MAC processes exported through
///    Process::final_metrics (the kMacAck* names of decay_mac.hpp),
///    aggregated over all processes;
///  - progress latency of a (token, node) pair is
///        token_first[t][v] - min over G-in-neighbors u of token_first[t][u],
///    the rounds between the token first becoming available next door over a
///    reliable link and the node first holding it. Pairs where the node is
///    the token's source, never got the token, or got it before any reliable
///    in-neighbor (i.e. over an unreliable link) are excluded from the
///    latency statistics; the never-covered pairs are counted in
///    `unreached`.
///
/// The computation only needs (network, SimResult), so campaign observers
/// can export it per trial (tools/dualrad_campaign.cpp --mac-jsonl).

namespace dualrad::mac {

struct MacLatencySummary {
  /// (token, node) pairs contributing a progress latency sample.
  std::uint64_t prog_samples = 0;
  Round prog_max = 0;
  double prog_mean = -1.0;  ///< -1 when no sample
  /// (token, node) pairs never covered (incomplete executions).
  std::uint64_t unreached = 0;

  /// Ack statistics over all processes; ack_max/ack_mean are -1 when no
  /// process exported MAC metrics (non-MAC workloads) or no ack fired.
  std::uint64_t acks = 0;
  double ack_max = -1.0;
  double ack_mean = -1.0;
  /// bcast() calls still unacked at the end of the execution.
  std::uint64_t pending = 0;
};

[[nodiscard]] MacLatencySummary measure_mac_latency(const DualGraph& net,
                                                    const SimResult& result);

/// One trial's measured latencies, as collected by LatencyCollector.
/// Progress latencies are meaningful for any broadcast scenario; the ack
/// fields are zero/-1 outside MAC workloads.
struct TrialLatencyRow {
  std::string scenario;
  std::uint32_t trial = 0;
  MacLatencySummary latency{};
};

/// Collects measure_mac_latency for every trial of a campaign. Builds each
/// scenario's network once up front (builders are pure) and installs a
/// CampaignConfig::observer; the engine serializes observer calls, but
/// completion order is scheduling-dependent, so read results through
/// sorted_rows() for a deterministic (scenario, trial) order.
class LatencyCollector {
 public:
  explicit LatencyCollector(const std::vector<campaign::Scenario>& scenarios);

  /// Install the collecting observer (overwrites any previous one).
  void attach(campaign::CampaignConfig& config);

  [[nodiscard]] std::vector<TrialLatencyRow> sorted_rows() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace dualrad::mac
