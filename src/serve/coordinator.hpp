#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "campaign/scenario.hpp"
#include "serve/checkpoint.hpp"

/// \file coordinator.hpp
/// The persistent campaign coordinator: a job queue of scenario x trial-range
/// work units with lease/ack/requeue semantics.
///
/// Dispatch is at-least-once: a unit leased to a worker that dies or stalls
/// past the lease timeout is requeued and reissued to the next worker that
/// asks. Commit is exactly-once, keyed by (scenario, trial): the first commit
/// of a trial is journaled and counted; a replay (from a requeued unit or a
/// reconnecting worker retransmitting unacked commits) must be byte-identical
/// to the committed row — it dedupes silently — while a conflicting row
/// throws, because under the engine's determinism contract two honest
/// executions of one trial can never differ.
///
/// All public methods are thread-safe; the socket server calls them from one
/// thread per connection.

namespace dualrad::serve {

/// One work unit: a slice of a scenario's deterministic trial stream.
/// Every trial inside is individually addressable (and thus individually
/// retryable) as (scenario, trial index) under the campaign master seed.
struct JobSpec {
  std::uint64_t unit = 0;  ///< coordinator-local unit id
  std::string scenario;
  std::uint32_t trial_begin = 0;
  std::uint32_t trial_end = 0;  ///< exclusive
  std::uint64_t master_seed = 1;
  unsigned threads_per_trial = 1;
  bool collect_telemetry = false;
};

class Coordinator {
 public:
  struct Config {
    std::uint64_t master_seed = 1;
    /// When nonzero, overrides every scenario's trial count.
    std::size_t trials_override = 0;
    /// Trials per work unit (lease granularity). 0 means one unit per
    /// scenario; 1 maximizes retry granularity.
    std::uint32_t unit_trials = 4;
    /// Lease timeout: a unit not fully committed within this window is
    /// requeued. Sweeps run on every lease request, so expiry needs no
    /// dedicated thread.
    double lease_secs = 30.0;
    /// Append-only journal path; empty disables checkpointing.
    std::string journal_path;
    /// Load the journal before dispatching and skip committed trials.
    bool resume = false;
    /// Propagated to workers in every JobSpec.
    unsigned threads_per_trial = 1;
    bool collect_telemetry = false;
  };

  explicit Coordinator(Config config);

  /// Adjust per-campaign parameters ahead of load_campaign (used by the
  /// submit path). Throws if a campaign is in progress.
  void configure_campaign(std::uint64_t master_seed,
                          std::size_t trials_override);

  /// Install the campaign grid. Validates like run_campaign (duplicate
  /// names, trial counts); with Config::resume, loads the journal and
  /// pre-commits its rows. Throws if a campaign is already loaded and not
  /// yet finished.
  void load_campaign(const std::vector<campaign::Scenario>& scenarios);

  [[nodiscard]] bool campaign_loaded() const;

  /// Register a worker (empty id requests a fresh one) and return its id.
  [[nodiscard]] std::string register_worker(const std::string& requested);

  /// Lease the next available unit; nullopt when nothing is leasable right
  /// now (all units leased or done — callers should retry or finish).
  [[nodiscard]] std::optional<JobSpec> lease(const std::string& worker);

  enum class Commit { Accepted, Duplicate };

  /// Commit one trial row. Validates the seed against the derived stream,
  /// journals first commits, dedupes byte-identical replays; throws
  /// std::invalid_argument on unknown trials and std::runtime_error on a
  /// conflicting replay (byte-identity violation).
  Commit commit(const campaign::TrialRow& row);

  /// Record an out-of-band telemetry row (first one per trial wins).
  void add_telemetry(const campaign::TelemetryRow& row);

  [[nodiscard]] bool done() const;

  /// Block until the campaign completes (or `deadline` passes; zero waits
  /// forever). Returns done().
  bool wait_done(std::chrono::milliseconds timeout = {});

  struct Status {
    bool loaded = false;
    bool finished = false;
    std::size_t scenarios = 0;
    std::size_t total_trials = 0;
    std::size_t committed = 0;
    std::size_t resumed = 0;  ///< of `committed`, satisfied from the journal
    std::size_t units_pending = 0;
    std::size_t units_leased = 0;
    std::size_t units_done = 0;
    std::size_t workers = 0;
  };
  [[nodiscard]] Status status() const;

  /// Assemble the finished campaign: rows in canonical (scenario
  /// registration order, trial) order, summaries via the shared
  /// summarize_trials — byte-identical exports to a batch run_campaign of
  /// the same grid and master seed. Throws if !done().
  [[nodiscard]] campaign::CampaignResult finalize() const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  enum class UnitState { Pending, Leased, Done };

  struct Unit {
    std::size_t scenario = 0;
    std::uint32_t trial_begin = 0;
    std::uint32_t trial_end = 0;
    UnitState state = UnitState::Pending;
    std::chrono::steady_clock::time_point lease_deadline{};
    std::string worker;
    std::uint32_t remaining = 0;  ///< uncommitted trials in range
  };

  struct ScenarioSlot {
    std::string name;
    std::size_t trials = 0;
    std::size_t first_job = 0;
  };

  void sweep_expired_leases_locked();
  Commit commit_locked(const campaign::TrialRow& row, bool from_journal);

  Config config_;
  mutable std::mutex mutex_;
  std::condition_variable done_cv_;

  bool loaded_ = false;
  std::vector<ScenarioSlot> scenarios_;
  std::map<std::string, std::size_t, std::less<>> scenario_index_;
  std::vector<Unit> units_;
  std::vector<std::size_t> unit_of_job_;
  std::vector<campaign::TrialRow> rows_;
  std::vector<std::string> row_bytes_;  ///< canonical JSONL per committed slot
  std::vector<campaign::TelemetryRow> telemetry_;
  std::vector<char> telemetry_present_;
  std::size_t committed_ = 0;
  std::size_t resumed_ = 0;
  std::size_t next_worker_ = 0;
  std::size_t workers_seen_ = 0;
  JournalWriter journal_;
};

}  // namespace dualrad::serve
