#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "campaign/scenario.hpp"
#include "serve/checkpoint.hpp"

/// \file coordinator.hpp
/// The persistent campaign coordinator: a job queue of scenario x trial-range
/// work units with lease/ack/requeue semantics.
///
/// Dispatch is at-least-once: a unit leased to a worker that dies or stalls
/// past the lease timeout is requeued and reissued to the next worker that
/// asks. Commit is exactly-once, keyed by (scenario, trial): the first commit
/// of a trial is journaled and counted; a replay (from a requeued unit or a
/// reconnecting worker retransmitting unacked commits) must be byte-identical
/// to the committed row — it dedupes silently — while a conflicting row
/// throws, because under the engine's determinism contract two honest
/// executions of one trial can never differ.
///
/// Self-healing (PR 9):
///  - Adaptive leases: once enough units have completed, the lease window is
///    re-derived from observed unit wall times (p90 x slack, clamped), so a
///    slow scenario doesn't thrash on a static timeout and a fast one
///    doesn't wait 30 s to reissue after a worker dies.
///  - Poison quarantine: a unit whose lease expires `max_unit_expiries`
///    times is quarantined instead of requeued forever — the campaign
///    completes with an explicit quarantined manifest (finalize() exports
///    the committed subset) rather than livelocking. A late commit for a
///    quarantined unit is still accepted and can heal it back to Done.
///  - Speculative re-dispatch: when every unit is leased out, an idle worker
///    is handed a second copy of the unit closest to lease expiry (commit
///    dedup makes duplicate execution safe), cutting the straggler tail.
///  - Journal degradation: a journal write failure disables checkpointing
///    (counted and reported in status) but never fails the commit —
///    availability over durability; the on-disk prefix stays recoverable.
///
/// All public methods are thread-safe; the socket server calls them from one
/// thread per connection.

namespace dualrad::serve {

/// One work unit: a slice of a scenario's deterministic trial stream.
/// Every trial inside is individually addressable (and thus individually
/// retryable) as (scenario, trial index) under the campaign master seed.
struct JobSpec {
  std::uint64_t unit = 0;  ///< coordinator-local unit id
  std::string scenario;
  std::uint32_t trial_begin = 0;
  std::uint32_t trial_end = 0;  ///< exclusive
  std::uint64_t master_seed = 1;
  unsigned threads_per_trial = 1;
  bool collect_telemetry = false;
};

class Coordinator {
 public:
  struct Config {
    std::uint64_t master_seed = 1;
    /// When nonzero, overrides every scenario's trial count.
    std::size_t trials_override = 0;
    /// Trials per work unit (lease granularity). 0 means one unit per
    /// scenario; 1 maximizes retry granularity.
    std::uint32_t unit_trials = 4;
    /// Lease timeout: a unit not fully committed within this window is
    /// requeued. Sweeps run on every lease request, so expiry needs no
    /// dedicated thread. With `adaptive_lease`, this is only the STARTING
    /// window — once `lease_observations` units have completed, the window
    /// becomes p90(observed unit seconds) x lease_slack, clamped to
    /// [lease_floor_secs, lease_ceil_secs].
    double lease_secs = 30.0;
    bool adaptive_lease = true;
    double lease_slack = 4.0;
    std::size_t lease_observations = 8;
    double lease_floor_secs = 0.05;
    double lease_ceil_secs = 3600.0;
    /// Quarantine threshold: a unit whose lease expires this many times is
    /// quarantined (reported, not requeued). 0 disables quarantine.
    std::uint32_t max_unit_expiries = 5;
    /// Hand stragglers to idle workers before their lease expires (safe:
    /// commit is exactly-once). At most one speculative copy per lease term.
    bool speculative_redispatch = true;
    /// Append-only journal path; empty disables checkpointing.
    std::string journal_path;
    /// Load the journal before dispatching and skip committed trials.
    bool resume = false;
    /// Propagated to workers in every JobSpec.
    unsigned threads_per_trial = 1;
    bool collect_telemetry = false;
  };

  explicit Coordinator(Config config);

  /// Adjust per-campaign parameters ahead of load_campaign (used by the
  /// submit path). Throws if a campaign is in progress.
  void configure_campaign(std::uint64_t master_seed,
                          std::size_t trials_override);

  /// Install the campaign grid. Validates like run_campaign (duplicate
  /// names, trial counts); with Config::resume, loads the journal and
  /// pre-commits its rows. Throws if a campaign is already loaded and not
  /// yet finished.
  void load_campaign(const std::vector<campaign::Scenario>& scenarios);

  [[nodiscard]] bool campaign_loaded() const;

  /// Register a worker (empty id requests a fresh one) and return its id.
  [[nodiscard]] std::string register_worker(const std::string& requested);

  /// Lease the next available unit; nullopt when nothing is leasable right
  /// now (all units leased or done — callers should retry or finish).
  [[nodiscard]] std::optional<JobSpec> lease(const std::string& worker);

  enum class Commit { Accepted, Duplicate };

  /// Commit one trial row. Validates the seed against the derived stream,
  /// journals first commits, dedupes byte-identical replays; throws
  /// std::invalid_argument on unknown trials and std::runtime_error on a
  /// conflicting replay (byte-identity violation).
  Commit commit(const campaign::TrialRow& row);

  /// Record an out-of-band telemetry row (first one per trial wins). Also
  /// journaled (when a journal is open and telemetry collection is on) so
  /// `--resume` can replay telemetry of crashed runs.
  void add_telemetry(const campaign::TelemetryRow& row);

  /// True when every unit is settled: Done, or Quarantined. A campaign with
  /// quarantined units is "done" in the liveness sense — nothing further
  /// will be dispatched — but finalize() reports the gap explicitly.
  [[nodiscard]] bool done() const;

  /// Block until the campaign completes (or `deadline` passes; zero waits
  /// forever). Returns done().
  bool wait_done(std::chrono::milliseconds timeout = {});

  struct Status {
    bool loaded = false;
    bool finished = false;
    std::size_t scenarios = 0;
    std::size_t total_trials = 0;
    std::size_t committed = 0;
    std::size_t resumed = 0;  ///< of `committed`, satisfied from the journal
    std::size_t units_pending = 0;
    std::size_t units_leased = 0;
    std::size_t units_done = 0;
    std::size_t units_quarantined = 0;
    std::size_t trials_quarantined = 0;  ///< uncommitted trials stuck there
    std::size_t workers = 0;
    std::size_t lease_expiries = 0;
    std::size_t speculative_dispatches = 0;
    std::size_t journal_errors = 0;
    /// The lease window new leases get right now, in milliseconds (adaptive
    /// once enough observations accumulate, else the static lease_secs).
    std::size_t lease_ms_effective = 0;
  };
  [[nodiscard]] Status status() const;

  /// One quarantined unit, for the explicit end-of-campaign manifest.
  struct QuarantinedUnit {
    std::string scenario;
    std::uint32_t trial_begin = 0;
    std::uint32_t trial_end = 0;   ///< exclusive
    std::uint32_t committed = 0;   ///< trials in range that DID commit
    std::uint32_t expiries = 0;    ///< lease expiries that condemned it
    std::string last_worker;       ///< last worker it was leased to
  };
  [[nodiscard]] std::vector<QuarantinedUnit> quarantined() const;

  /// Assemble the finished campaign: rows in canonical (scenario
  /// registration order, trial) order, summaries via the shared
  /// summarize_trials — byte-identical exports to a batch run_campaign of
  /// the same grid and master seed. Throws if !done(). With quarantined
  /// units, exports the committed subset (per-scenario grid counts shrink to
  /// the committed rows; scenarios with none are omitted from summaries) —
  /// the quarantined() manifest names exactly what is missing.
  [[nodiscard]] campaign::CampaignResult finalize() const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  enum class UnitState { Pending, Leased, Done, Quarantined };

  struct Unit {
    std::size_t scenario = 0;
    std::uint32_t trial_begin = 0;
    std::uint32_t trial_end = 0;
    UnitState state = UnitState::Pending;
    std::chrono::steady_clock::time_point lease_start{};
    std::chrono::steady_clock::time_point lease_deadline{};
    std::string worker;
    std::uint32_t remaining = 0;  ///< uncommitted trials in range
    std::uint32_t expiries = 0;   ///< lease expiries so far (poison counter)
    bool speculated = false;      ///< a second copy is out this lease term
  };

  struct ScenarioSlot {
    std::string name;
    std::size_t trials = 0;
    std::size_t first_job = 0;
  };

  void sweep_expired_leases_locked();
  Commit commit_locked(const campaign::TrialRow& row, bool from_journal);
  [[nodiscard]] bool settled_locked() const;
  [[nodiscard]] double lease_window_secs_locked() const;
  void journal_append_guarded_locked(const campaign::TrialRow& row);
  void journal_append_guarded_locked(const campaign::TelemetryRow& row);

  Config config_;
  mutable std::mutex mutex_;
  std::condition_variable done_cv_;

  bool loaded_ = false;
  std::vector<ScenarioSlot> scenarios_;
  std::map<std::string, std::size_t, std::less<>> scenario_index_;
  std::vector<Unit> units_;
  std::vector<std::size_t> unit_of_job_;
  std::vector<campaign::TrialRow> rows_;
  std::vector<std::string> row_bytes_;  ///< canonical JSONL per committed slot
  std::vector<campaign::TelemetryRow> telemetry_;
  std::vector<char> telemetry_present_;
  std::size_t committed_ = 0;
  std::size_t resumed_ = 0;
  std::size_t next_worker_ = 0;
  std::size_t workers_seen_ = 0;
  std::size_t lease_expiries_ = 0;
  std::size_t speculative_ = 0;
  std::size_t journal_errors_ = 0;
  std::string journal_error_;  ///< first journal failure, for status logs
  /// Wall seconds of completed units, for the adaptive lease p90.
  std::vector<double> unit_secs_;
  JournalWriter journal_;
};

}  // namespace dualrad::serve
