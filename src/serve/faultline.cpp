#include "serve/faultline.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace dualrad::serve {

namespace {

// Site salts for the counter RNG: one stream per injection site, all derived
// from the plan seed.
constexpr std::uint64_t kFaultDomain = 0xFA171FE0ull;
constexpr std::uint64_t kWireSalt = 1;
constexpr std::uint64_t kJournalSalt = 2;
constexpr std::uint64_t kLifecycleSalt = 3;

[[nodiscard]] double parse_probability(const std::string& key,
                                       const std::string& text) {
  std::size_t pos = 0;
  double p = 0.0;
  try {
    p = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("dualrad: fault spec: bad number for '" + key +
                                "': " + text);
  }
  if (pos != text.size()) {
    throw std::invalid_argument("dualrad: fault spec: trailing junk in '" +
                                key + "=" + text + "'");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("dualrad: fault spec: probability for '" +
                                key + "' must be in [0,1], got " + text);
  }
  return p;
}

[[nodiscard]] int parse_millis(const std::string& key,
                               const std::string& text) {
  std::size_t pos = 0;
  long ms = 0;
  try {
    ms = std::stol(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("dualrad: fault spec: bad millis for '" + key +
                                "': " + text);
  }
  if (pos != text.size() || ms < 0 || ms > 60'000) {
    throw std::invalid_argument("dualrad: fault spec: millis for '" + key +
                                "' must be in [0,60000], got " + text);
  }
  return static_cast<int>(ms);
}

/// "P" or "P:MILLIS" for delay= / stall=.
void parse_prob_with_millis(const std::string& key, const std::string& text,
                            double& p, int& ms) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) {
    p = parse_probability(key, text);
    return;
  }
  p = parse_probability(key, text.substr(0, colon));
  ms = parse_millis(key, text.substr(colon + 1));
}

void check_category_sum(const char* category, double sum) {
  if (sum > 1.0 + 1e-12) {
    throw std::invalid_argument(
        std::string("dualrad: fault spec: ") + category +
        " fault probabilities sum past 1 (at most one fault fires per "
        "decision)");
  }
}

[[nodiscard]] std::string format_probability(double p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", p);
  return buf;
}

/// Cumulative-threshold pick: uniform draw u against a fault ladder.
template <typename Enum, std::size_t N>
[[nodiscard]] Enum pick(double u,
                        const std::pair<double, Enum> (&ladder)[N],
                        Enum none) {
  double acc = 0.0;
  for (const auto& [p, fault] : ladder) {
    acc += p;
    if (u < acc) return fault;
  }
  return none;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", begin);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(begin, end - begin);
    begin = end + 1;
    // Trim surrounding whitespace.
    const std::size_t first = item.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const std::size_t last = item.find_last_not_of(" \t");
    item = item.substr(first, last - first + 1);

    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(
          "dualrad: fault spec: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      try {
        plan.seed = std::stoull(value);
      } catch (const std::exception&) {
        throw std::invalid_argument("dualrad: fault spec: bad seed: " + value);
      }
    } else if (key == "drop") {
      plan.drop = parse_probability(key, value);
    } else if (key == "corrupt") {
      plan.corrupt = parse_probability(key, value);
    } else if (key == "partial") {
      plan.partial = parse_probability(key, value);
    } else if (key == "reset") {
      plan.reset = parse_probability(key, value);
    } else if (key == "delay") {
      parse_prob_with_millis(key, value, plan.delay, plan.delay_ms);
    } else if (key == "torn") {
      plan.torn_write = parse_probability(key, value);
    } else if (key == "fsync_eio") {
      plan.fsync_eio = parse_probability(key, value);
    } else if (key == "enospc") {
      plan.append_enospc = parse_probability(key, value);
    } else if (key == "crash") {
      plan.crash = parse_probability(key, value);
    } else if (key == "stall") {
      parse_prob_with_millis(key, value, plan.stall, plan.stall_ms);
    } else {
      throw std::invalid_argument("dualrad: fault spec: unknown key '" + key +
                                  "'");
    }
  }
  check_category_sum("wire", plan.drop + plan.corrupt + plan.partial +
                                 plan.reset + plan.delay);
  check_category_sum("journal",
                     plan.torn_write + plan.fsync_eio + plan.append_enospc);
  check_category_sum("lifecycle", plan.crash + plan.stall);
  return plan;
}

std::string fault_plan_to_spec(const FaultPlan& plan) {
  std::string out = "seed=" + std::to_string(plan.seed);
  const auto add = [&](const char* key, double p) {
    if (p > 0.0) out += std::string(";") + key + "=" + format_probability(p);
  };
  add("drop", plan.drop);
  add("corrupt", plan.corrupt);
  add("partial", plan.partial);
  add("reset", plan.reset);
  if (plan.delay > 0.0) {
    out += ";delay=" + format_probability(plan.delay) + ":" +
           std::to_string(plan.delay_ms);
  }
  add("torn", plan.torn_write);
  add("fsync_eio", plan.fsync_eio);
  add("enospc", plan.append_enospc);
  add("crash", plan.crash);
  if (plan.stall > 0.0) {
    out += ";stall=" + format_probability(plan.stall) + ":" +
           std::to_string(plan.stall_ms);
  }
  return out;
}

std::string FaultTotals::summary() const {
  std::string out;
  const auto add = [&](const char* name, std::uint64_t n) {
    if (n == 0) return;
    if (!out.empty()) out += " ";
    out += std::string(name) + "=" + std::to_string(n);
  };
  add("drops", drops);
  add("corruptions", corruptions);
  add("partials", partials);
  add("resets", resets);
  add("delays", delays);
  add("torn_writes", torn_writes);
  add("fsync_errors", fsync_errors);
  add("enospc_errors", enospc_errors);
  add("crashes", crashes);
  add("stalls", stalls);
  if (out.empty()) out = "none";
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan), rng_(mix_seed(plan.seed, kFaultDomain)) {}

WireFault FaultInjector::wire_decision(std::uint64_t k) const {
  if (!plan_.any_wire()) return WireFault::None;
  const double u = rng_.uniform(k, kWireSalt);
  const std::pair<double, WireFault> ladder[] = {
      {plan_.drop, WireFault::Drop},
      {plan_.corrupt, WireFault::Corrupt},
      {plan_.partial, WireFault::Partial},
      {plan_.reset, WireFault::Reset},
      {plan_.delay, WireFault::Delay},
  };
  return pick(u, ladder, WireFault::None);
}

JournalFault FaultInjector::journal_decision(std::uint64_t k) const {
  if (!plan_.any_journal()) return JournalFault::None;
  const double u = rng_.uniform(k, kJournalSalt);
  const std::pair<double, JournalFault> ladder[] = {
      {plan_.torn_write, JournalFault::TornWrite},
      {plan_.fsync_eio, JournalFault::FsyncEio},
      {plan_.append_enospc, JournalFault::AppendEnospc},
  };
  return pick(u, ladder, JournalFault::None);
}

LifecycleFault FaultInjector::lifecycle_decision(std::uint64_t k) const {
  if (!plan_.any_lifecycle()) return LifecycleFault::None;
  const double u = rng_.uniform(k, kLifecycleSalt);
  const std::pair<double, LifecycleFault> ladder[] = {
      {plan_.crash, LifecycleFault::Crash},
      {plan_.stall, LifecycleFault::Stall},
  };
  return pick(u, ladder, LifecycleFault::None);
}

WireFault FaultInjector::next_wire(int* delay_ms) {
  if (!plan_.any_wire()) return WireFault::None;
  const std::uint64_t k = wire_seq_.fetch_add(1, std::memory_order_relaxed);
  const WireFault fault = wire_decision(k);
  switch (fault) {
    case WireFault::None: break;
    case WireFault::Drop: drops_.fetch_add(1, std::memory_order_relaxed); break;
    case WireFault::Corrupt:
      corruptions_.fetch_add(1, std::memory_order_relaxed);
      break;
    case WireFault::Partial:
      partials_.fetch_add(1, std::memory_order_relaxed);
      break;
    case WireFault::Reset:
      resets_.fetch_add(1, std::memory_order_relaxed);
      break;
    case WireFault::Delay:
      delays_.fetch_add(1, std::memory_order_relaxed);
      if (delay_ms != nullptr) *delay_ms = plan_.delay_ms;
      break;
  }
  return fault;
}

JournalFault FaultInjector::next_journal() {
  if (!plan_.any_journal()) return JournalFault::None;
  const std::uint64_t k = journal_seq_.fetch_add(1, std::memory_order_relaxed);
  const JournalFault fault = journal_decision(k);
  switch (fault) {
    case JournalFault::None: break;
    case JournalFault::TornWrite:
      torn_writes_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JournalFault::FsyncEio:
      fsync_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JournalFault::AppendEnospc:
      enospc_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return fault;
}

LifecycleFault FaultInjector::next_lifecycle(int* stall_ms) {
  if (!plan_.any_lifecycle()) return LifecycleFault::None;
  const std::uint64_t k =
      lifecycle_seq_.fetch_add(1, std::memory_order_relaxed);
  const LifecycleFault fault = lifecycle_decision(k);
  switch (fault) {
    case LifecycleFault::None: break;
    case LifecycleFault::Crash:
      crashes_.fetch_add(1, std::memory_order_relaxed);
      break;
    case LifecycleFault::Stall:
      stalls_.fetch_add(1, std::memory_order_relaxed);
      if (stall_ms != nullptr) *stall_ms = plan_.stall_ms;
      break;
  }
  return fault;
}

FaultTotals FaultInjector::totals() const {
  FaultTotals t;
  t.drops = drops_.load(std::memory_order_relaxed);
  t.corruptions = corruptions_.load(std::memory_order_relaxed);
  t.partials = partials_.load(std::memory_order_relaxed);
  t.resets = resets_.load(std::memory_order_relaxed);
  t.delays = delays_.load(std::memory_order_relaxed);
  t.torn_writes = torn_writes_.load(std::memory_order_relaxed);
  t.fsync_errors = fsync_errors_.load(std::memory_order_relaxed);
  t.enospc_errors = enospc_errors_.load(std::memory_order_relaxed);
  t.crashes = crashes_.load(std::memory_order_relaxed);
  t.stalls = stalls_.load(std::memory_order_relaxed);
  return t;
}

namespace {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace

void install_fault_injector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* fault_injector() {
  return g_injector.load(std::memory_order_acquire);
}

}  // namespace dualrad::serve
