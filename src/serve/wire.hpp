#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

/// \file wire.hpp
/// The serve-mode framing layer: length-prefixed, CRC-checked frames over a
/// byte stream (Unix-domain or TCP socket).
///
/// Frame layout (all integers little-endian):
///   u32 payload length | u32 CRC-32 (IEEE) of payload | payload bytes
///
/// Payloads are single-line JSON messages (campaign/jsonl.hpp flat objects)
/// with a "type" key. The CRC turns any torn or corrupted stream into a hard
/// framing error — the connection is dropped and the worker retransmits
/// unacknowledged commits after reconnecting (the perfect-link idiom:
/// at-least-once delivery below, exactly-once commit above, keyed by
/// (scenario, trial) in the coordinator).

namespace dualrad::serve {

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) of `data`.
/// crc32("123456789") == 0xCBF43926.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Maximum accepted payload size. Generous for JSONL rows; a length above
/// this means the stream is garbage (or hostile) and the connection dies.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 24;  // 16 MiB

/// Serialize one frame.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame decoder: feed() arbitrary chunks, next() yields decoded
/// payloads in order. A CRC mismatch or oversized length puts the reader
/// into a sticky corrupt state: next() returns nullopt forever and feed()
/// discards further input (once framing is lost, resynchronizing on a byte
/// stream is guesswork — any suffix could be mid-frame).
///
/// Recovery is reconnect-only, by design: a poisoned reader cannot be
/// resumed or reset — the caller must drop the connection and build a fresh
/// FrameReader for the replacement socket (the worker's retransmit dedup
/// makes this lossless). recv_frame enforces the contract: calling it with
/// an already-poisoned reader throws std::logic_error rather than spinning
/// forever on a reader that can never produce a frame.
class FrameReader {
 public:
  void feed(const char* data, std::size_t size) {
    if (corrupt_) return;  // poisoned: drop input, don't grow the buffer
    buffer_.append(data, size);
  }
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// Next complete, CRC-valid payload; nullopt if more bytes are needed or
  /// the stream is corrupt.
  [[nodiscard]] std::optional<std::string> next();

  [[nodiscard]] bool corrupt() const { return corrupt_; }

  /// Why the reader poisoned itself (empty while healthy).
  [[nodiscard]] const std::string& corrupt_reason() const {
    return corrupt_reason_;
  }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool corrupt_ = false;
  std::string corrupt_reason_;
};

// --- blocking socket I/O -----------------------------------------------------

/// Send one frame; returns false on any send error (EPIPE included — SIGPIPE
/// is suppressed). This is also the wire fault-injection seam: when a
/// faultline::FaultInjector is installed, an injected Drop/Partial/Reset
/// reports failure (the caller tears the connection down and retransmits
/// after reconnecting), Corrupt flips a CRC byte in flight (the receiver's
/// FrameReader poisons itself), and Delay sleeps before delivering.
[[nodiscard]] bool send_frame(int fd, std::string_view payload);

/// Receive the next frame. Blocks up to `timeout_ms` (0 = forever); returns:
///  - a payload on success,
///  - nullopt with *timed_out = true on timeout,
///  - nullopt with *timed_out = false on EOF / error / a stream that just
///    turned corrupt (the caller must drop the connection).
/// Throws std::logic_error if `reader` was ALREADY poisoned on entry: a
/// corrupt reader can never yield another frame, so looping on it is a
/// caller bug (reconnect with a fresh FrameReader instead).
[[nodiscard]] std::optional<std::string> recv_frame(int fd, FrameReader& reader,
                                                    int timeout_ms,
                                                    bool* timed_out);

// --- endpoints ---------------------------------------------------------------
//
// An endpoint string containing '/' is a Unix-domain socket path; otherwise
// it is host:port (or :port / bare port for 127.0.0.1). All functions return
// a connected/listening fd or -1 (with errno set).

[[nodiscard]] int listen_endpoint(const std::string& endpoint);
[[nodiscard]] int connect_endpoint(const std::string& endpoint);
[[nodiscard]] int accept_connection(int listen_fd, int timeout_ms,
                                    bool* timed_out);

}  // namespace dualrad::serve
