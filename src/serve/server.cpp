#include "serve/server.hpp"

#include <unistd.h>

#include <cstdio>
#include <exception>
#include <utility>

#include "campaign/export.hpp"
#include "campaign/jsonl.hpp"
#include "serve/wire.hpp"

namespace dualrad::serve {

namespace jsonl = campaign::jsonl;

namespace {

/// Escape a string for embedding in a reply. Scenario and worker names are
/// charset-restricted and never need this; exception messages might.
[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

[[nodiscard]] std::string error_reply(std::string_view message) {
  return "{\"type\":\"error\",\"message\":\"" + json_escape(message) + "\"}";
}

}  // namespace

Server::Server(Coordinator& coordinator, Options options)
    : coordinator_(coordinator), options_(std::move(options)) {}

std::string Server::handle_message(const std::string& payload,
                                   bool& close_connection) {
  jsonl::require_flat_object(payload);
  const std::string_view type = jsonl::field(payload, "type");

  if (type == "hello") {
    const std::string requested(
        jsonl::field_opt(payload, "worker").value_or(""));
    const std::string id = coordinator_.register_worker(requested);
    return "{\"type\":\"welcome\",\"worker\":\"" + id + "\"}";
  }

  if (type == "lease") {
    const std::string worker(jsonl::field(payload, "worker"));
    if (!coordinator_.campaign_loaded()) return "{\"type\":\"idle\"}";
    if (const std::optional<JobSpec> job = coordinator_.lease(worker)) {
      std::string reply = "{\"type\":\"unit\"";
      reply += ",\"unit\":" + std::to_string(job->unit);
      reply += ",\"scenario\":\"" + job->scenario + "\"";
      reply += ",\"trial_begin\":" + std::to_string(job->trial_begin);
      reply += ",\"trial_end\":" + std::to_string(job->trial_end);
      reply += ",\"master_seed\":" + std::to_string(job->master_seed);
      reply +=
          ",\"threads_per_trial\":" + std::to_string(job->threads_per_trial);
      reply += ",\"collect_telemetry\":";
      reply += job->collect_telemetry ? "true" : "false";
      reply += "}";
      return reply;
    }
    if (coordinator_.done()) return "{\"type\":\"done\"}";
    // Everything is leased out; tell the worker to poll again shortly (a
    // lease may expire and requeue, or the campaign may finish).
    return "{\"type\":\"wait\",\"millis\":300}";
  }

  if (type == "commit") {
    // The commit payload carries the trial-row fields at top level, so the
    // canonical key-based row parser reads it directly ("type"/"unit" are
    // ignored like any unknown key).
    const std::vector<campaign::TrialRow> rows =
        campaign::trials_from_jsonl(payload + "\n");
    DUALRAD_REQUIRE(rows.size() == 1, "commit carries exactly one row");
    const Coordinator::Commit outcome = coordinator_.commit(rows.front());
    std::string reply = "{\"type\":\"ack\"";
    reply += ",\"scenario\":\"" + rows.front().scenario + "\"";
    reply += ",\"trial\":" + std::to_string(rows.front().trial);
    reply += ",\"dup\":";
    reply += outcome == Coordinator::Commit::Duplicate ? "1" : "0";
    reply += "}";
    return reply;
  }

  if (type == "telemetry") {
    const std::vector<campaign::TelemetryRow> rows =
        campaign::telemetry_from_jsonl(payload + "\n");
    if (rows.size() == 1) coordinator_.add_telemetry(rows.front());
    return {};  // fire-and-forget
  }

  if (type == "status") {
    const Coordinator::Status s = coordinator_.status();
    std::string reply = "{\"type\":\"state\"";
    reply += ",\"loaded\":";
    reply += s.loaded ? "true" : "false";
    reply += ",\"finished\":";
    reply += s.finished ? "true" : "false";
    reply += ",\"scenarios\":" + std::to_string(s.scenarios);
    reply += ",\"total_trials\":" + std::to_string(s.total_trials);
    reply += ",\"committed\":" + std::to_string(s.committed);
    reply += ",\"resumed\":" + std::to_string(s.resumed);
    reply += ",\"units_pending\":" + std::to_string(s.units_pending);
    reply += ",\"units_leased\":" + std::to_string(s.units_leased);
    reply += ",\"units_done\":" + std::to_string(s.units_done);
    reply += ",\"units_quarantined\":" + std::to_string(s.units_quarantined);
    reply += ",\"trials_quarantined\":" + std::to_string(s.trials_quarantined);
    reply += ",\"workers\":" + std::to_string(s.workers);
    reply += ",\"lease_expiries\":" + std::to_string(s.lease_expiries);
    reply += ",\"speculative_dispatches\":" +
             std::to_string(s.speculative_dispatches);
    reply += ",\"journal_errors\":" + std::to_string(s.journal_errors);
    reply += ",\"lease_ms_effective\":" + std::to_string(s.lease_ms_effective);
    reply += "}";
    return reply;
  }

  if (type == "submit") {
    if (options_.registry == nullptr) {
      return error_reply("this coordinator does not accept submissions");
    }
    const std::string filter(jsonl::field_opt(payload, "filter").value_or(""));
    const std::vector<campaign::Scenario> scenarios =
        options_.registry->match(filter);
    if (scenarios.empty()) {
      return error_reply("no scenarios match filter '" + filter + "'");
    }
    std::uint64_t seed = coordinator_.config().master_seed;
    if (const auto v = jsonl::field_opt(payload, "seed")) {
      seed = jsonl::to_u64(*v);
    }
    std::size_t trials = coordinator_.config().trials_override;
    if (const auto v = jsonl::field_opt(payload, "trials")) {
      trials = static_cast<std::size_t>(jsonl::to_u64(*v));
    }
    coordinator_.configure_campaign(seed, trials);
    coordinator_.load_campaign(scenarios);
    const Coordinator::Status s = coordinator_.status();
    return "{\"type\":\"submitted\",\"scenarios\":" +
           std::to_string(s.scenarios) +
           ",\"total_trials\":" + std::to_string(s.total_trials) + "}";
  }

  close_connection = true;
  return error_reply("unknown message type: " + std::string(type));
}

void Server::handle_connection(int fd) {
  FrameReader reader;
  for (;;) {
    bool timed_out = false;
    const std::optional<std::string> payload =
        recv_frame(fd, reader, /*timeout_ms=*/500, &timed_out);
    if (!payload.has_value()) {
      if (timed_out && !stopping()) continue;
      break;  // EOF, error, corrupt stream, or shutdown
    }
    bool close_connection = false;
    std::string reply;
    try {
      reply = handle_message(*payload, close_connection);
    } catch (const std::exception& e) {
      // Commit conflicts and malformed messages both land here: report and
      // keep serving (the worker decides whether the error is fatal).
      reply = error_reply(e.what());
    }
    if (!reply.empty() && !send_frame(fd, reply)) break;
    if (close_connection) break;
  }
  ::close(fd);
}

void Server::run_accept_loop(int listen_fd) {
  std::vector<std::thread> handlers;
  while (!stopping()) {
    bool timed_out = false;
    const int fd = accept_connection(listen_fd, /*timeout_ms=*/200, &timed_out);
    if (fd < 0) {
      if (timed_out) continue;
      break;  // listener error
    }
    handlers.emplace_back([this, fd] { handle_connection(fd); });
  }
  for (std::thread& t : handlers) t.join();
}

}  // namespace dualrad::serve
