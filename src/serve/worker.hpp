#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "campaign/scenario.hpp"

/// \file worker.hpp
/// The serve-mode worker: connects to a coordinator, pulls work units, runs
/// their trials through campaign::TrialExecutor, and streams committed rows
/// back over the wire.
///
/// Reliability: requests are strict request/response; any socket failure
/// (drop, timeout, CRC corruption) tears the connection down and the worker
/// reconnects and retries the in-flight request. Commits are the only
/// request with side effects, and the coordinator dedupes them byte-wise, so
/// retransmit-on-reconnect is safe — at-least-once below, exactly-once
/// above. A commit answered with `error` is fatal: it means this worker
/// produced different bytes for a trial than an earlier commit, which under
/// the determinism contract means a mismatched binary or grid.

namespace dualrad::serve {

struct WorkerOptions {
  /// Requested worker id; empty asks the coordinator to assign one.
  std::string worker_id;
  /// Overrides the coordinator-provided threads_per_trial when nonzero.
  unsigned threads_per_trial = 0;
  /// Pause between lease polls when the coordinator says `wait` or `idle`.
  std::chrono::milliseconds poll{300};
  /// Pause between reconnection attempts.
  std::chrono::milliseconds reconnect_backoff{200};
  /// Give up (throw) after this long without a successful connection.
  double reconnect_window_secs = 15.0;
  /// Receive timeout for each expected reply.
  int reply_timeout_ms = 30'000;
  /// Optional cooperative stop: checked between trials and between
  /// requests; when set, the worker returns early (its lease expires and
  /// the unit is reissued elsewhere).
  const std::atomic<bool>* stop = nullptr;
  /// Optional progress logger (one line per event).
  std::function<void(const std::string&)> log;
};

struct WorkerStats {
  std::string worker_id;
  std::size_t units = 0;
  std::size_t trials = 0;
  std::size_t duplicates = 0;  ///< commits the coordinator had already seen
  std::size_t reconnects = 0;
  bool stopped = false;  ///< true if options.stop ended the run early
};

/// Run the worker loop until the coordinator reports the campaign done (or
/// `options.stop` is raised). `connect` must return a connected socket fd or
/// -1; it is invoked for the initial connection and after every drop.
/// `catalogue` must contain every scenario the coordinator may dispatch
/// (unknown scenarios throw). Throws std::runtime_error when the
/// reconnection window is exhausted or a commit is rejected.
WorkerStats run_worker(const std::function<int()>& connect,
                       const std::vector<campaign::Scenario>& catalogue,
                       const WorkerOptions& options = {});

}  // namespace dualrad::serve
