#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/scenario.hpp"

/// \file worker.hpp
/// The serve-mode worker: connects to a coordinator, pulls work units, runs
/// their trials through campaign::TrialExecutor, and streams committed rows
/// back over the wire.
///
/// Reliability: requests are strict request/response; any socket failure
/// (drop, timeout, CRC corruption) tears the connection down and the worker
/// reconnects and retries the in-flight request. Commits are the only
/// request with side effects, and the coordinator dedupes them byte-wise, so
/// retransmit-on-reconnect is safe — at-least-once below, exactly-once
/// above. A commit answered with `error` is fatal: it means this worker
/// produced different bytes for a trial than an earlier commit, which under
/// the determinism contract means a mismatched binary or grid.

namespace dualrad::serve {

struct WorkerOptions {
  /// Requested worker id; empty asks the coordinator to assign one.
  std::string worker_id;
  /// Overrides the coordinator-provided threads_per_trial when nonzero.
  unsigned threads_per_trial = 0;
  /// Pause between lease polls when the coordinator says `wait` or `idle`.
  std::chrono::milliseconds poll{300};
  /// Reconnect backoff: attempt k (within one disconnected episode) waits
  /// min(backoff_max, backoff_base * 2^k) scaled by a deterministic jitter
  /// factor in [0.5, 1.5) keyed by (worker id, lifetime attempt count) — so
  /// a replayed run backs off identically, and two workers that died
  /// together never hammer the coordinator in lockstep.
  std::chrono::milliseconds backoff_base{100};
  std::chrono::milliseconds backoff_max{2000};
  /// Give up (throw) after this long without a successful connection.
  double reconnect_window_secs = 15.0;
  /// Receive timeout for each expected reply.
  int reply_timeout_ms = 30'000;
  /// Optional cooperative stop: checked between trials and between
  /// requests; when set, the worker returns early (its lease expires and
  /// the unit is reissued elsewhere).
  const std::atomic<bool>* stop = nullptr;
  /// Optional progress logger (one line per event).
  std::function<void(const std::string&)> log;
  /// Invoked when an installed faultline injector decrees a mid-unit crash.
  /// Defaults to throwing (in-process tests catch and restart); the CLI
  /// worker overrides with _exit so the supervisor's respawn path is the
  /// one exercised.
  std::function<void()> crash;
};

struct WorkerStats {
  std::string worker_id;
  std::size_t units = 0;
  std::size_t trials = 0;
  std::size_t duplicates = 0;  ///< commits the coordinator had already seen
  std::size_t reconnects = 0;
  bool stopped = false;  ///< true if options.stop ended the run early
};

/// Thrown by the default WorkerOptions::crash handler when an installed
/// faultline injector kills the worker mid-unit. In-process harnesses catch
/// it and restart run_worker; the campaign heals via lease expiry + commit
/// dedup.
struct InjectedCrash : std::runtime_error {
  InjectedCrash() : std::runtime_error("dualrad: injected worker crash") {}
};

/// The reconnect delay for `attempt` (0-based, within one disconnected
/// episode), jittered deterministically by (worker_id, lifetime_attempt).
/// Exposed for tests: bounded by backoff_max, monotone in expectation.
[[nodiscard]] std::chrono::milliseconds reconnect_backoff_delay(
    const WorkerOptions& options, std::string_view worker_id,
    std::uint64_t episode_attempt, std::uint64_t lifetime_attempt);

/// Run the worker loop until the coordinator reports the campaign done (or
/// `options.stop` is raised). `connect` must return a connected socket fd or
/// -1; it is invoked for the initial connection and after every drop.
/// `catalogue` must contain every scenario the coordinator may dispatch
/// (unknown scenarios throw). Throws std::runtime_error when the
/// reconnection window is exhausted or a commit is rejected.
WorkerStats run_worker(const std::function<int()>& connect,
                       const std::vector<campaign::Scenario>& catalogue,
                       const WorkerOptions& options = {});

}  // namespace dualrad::serve
