#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/engine.hpp"

/// \file checkpoint.hpp
/// The append-only campaign journal behind checkpoint/resume.
///
/// One line per committed trial:
///
///   xxxxxxxx {"scenario":"...","trial":0,...}\n
///
/// and (since telemetry journaling) one optional line per telemetry row,
/// marked with a "t " payload prefix:
///
///   xxxxxxxx t {"scenario":"...","trial":0,"wall_us":...}\n
///
/// where xxxxxxxx is the lower-case hex CRC-32 of everything after the
/// separating space (for telemetry lines that includes the "t " marker). The
/// trial JSON is the canonical untimed trial row (campaign/export.hpp
/// trials_to_jsonl), so a journal is itself a readable JSONL file modulo the
/// CRC column, and the byte equality used for exactly-once dedup is the same
/// byte equality the export contract pins. Journals without telemetry lines
/// are exactly the pre-telemetry format, so old journals load unchanged.
///
/// Torn-write tolerance: a crash can tear at most the FINAL line (the writer
/// appends whole lines and fsyncs). load_journal() therefore drops a trailing
/// line that is incomplete or fails its CRC — reporting it — but treats any
/// earlier damage as corruption and throws. Re-journaled duplicates (the
/// at-least-once window between commit and crash) are byte-compared: equal
/// rows dedupe silently, conflicting rows for the same (scenario, trial)
/// throw. Telemetry rows carry wall times and are inherently
/// nondeterministic, so they dedupe first-wins and never conflict.

namespace dualrad::serve {

struct JournalLoad {
  /// Deduplicated committed rows, in journal (= commit) order.
  std::vector<campaign::TrialRow> rows;
  /// Journaled telemetry rows, deduplicated first-wins per (scenario, trial),
  /// in journal order.
  std::vector<campaign::TelemetryRow> telemetry;
  /// 1 if a torn trailing line was dropped, else 0.
  std::size_t dropped_torn_tail = 0;
  /// Byte-identical duplicate lines skipped.
  std::size_t duplicates = 0;
  /// Length of the valid prefix (everything before a torn tail). A resuming
  /// writer MUST truncate the file here first (truncate_torn_tail), or its
  /// first append would concatenate onto the torn fragment and corrupt it.
  std::size_t valid_bytes = 0;
};

/// Parse journal text. Throws std::invalid_argument on mid-file corruption
/// or conflicting rows for one (scenario, trial).
[[nodiscard]] JournalLoad parse_journal(const std::string& text);

/// Read and parse a journal file. Throws std::runtime_error if unreadable.
[[nodiscard]] JournalLoad load_journal(const std::string& path);

/// Cut a torn trailing line off the file (no-op when `load` reports none),
/// so subsequent appends start on a fresh line. Throws on I/O failure.
void truncate_torn_tail(const std::string& path, const JournalLoad& load);

/// Serialize one row as a journal line (CRC column, trailing newline).
[[nodiscard]] std::string journal_line(const campaign::TrialRow& row);

/// Serialize one telemetry row as a journal line ("t " marker, CRC column,
/// trailing newline).
[[nodiscard]] std::string journal_line(const campaign::TelemetryRow& row);

/// Append-only journal writer. Lines are written with a single write(2) to
/// an O_APPEND descriptor and fsynced, so concurrent writers cannot
/// interleave within a line and a crash tears at most the tail.
///
/// Failure contract: every append throws std::runtime_error on any write or
/// fsync error — a commit whose durability is unknown must fail loudly, not
/// limp on. Because lines are whole-line appends, a failed append leaves the
/// journal's valid prefix intact (at worst a torn tail, which the loader
/// already recovers via valid_bytes). This is also the checkpoint
/// fault-injection seam: an installed faultline::FaultInjector can simulate
/// torn writes, fsync EIO, and ENOSPC here.
class JournalWriter {
 public:
  JournalWriter() = default;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter() { close(); }

  /// Open (creating or appending). Throws std::runtime_error on failure.
  /// `fsync_each` trades one fsync per trial for crash-durability; trials
  /// are orders of magnitude more expensive than an fsync, so default on.
  void open(const std::string& path, bool fsync_each = true);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  /// Append one committed row. Throws std::runtime_error on I/O failure.
  void append(const campaign::TrialRow& row);

  /// Append one telemetry row. Throws std::runtime_error on I/O failure.
  void append(const campaign::TelemetryRow& row);

  void close();

 private:
  void append_line(const std::string& line);

  int fd_ = -1;
  bool fsync_each_ = true;
};

}  // namespace dualrad::serve
