#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/rng.hpp"

/// \file faultline.hpp
/// Deterministic fault injection for the serve stack.
///
/// The paper's premise is correctness under adversarial unreliability; this
/// layer turns our own transport and checkpoint substrate into such an
/// adversary — on purpose, and reproducibly. A `FaultPlan` (parsed from a
/// `--faults` spec string) carries per-category fault probabilities plus its
/// own seed stream, and a `FaultInjector` converts it into a schedule of
/// fault decisions using the same counter-based RNG discipline as
/// `core/rng.hpp`:
///
///   the k-th decision at an injection site is a pure function of
///   (plan seed, site, k).
///
/// Replaying a fault plan therefore replays the exact same decision sequence
/// at every site. (Which *operation* draws decision k can still vary with
/// thread interleaving — determinism holds per-site, not per-operation; the
/// exports stay byte-identical regardless, which is the invariant the chaos
/// soak pins.)
///
/// Injection sites:
///   wire      — send_frame(): frame drop, CRC corruption, partial write,
///               connection reset, delivery delay
///   journal   — JournalWriter::append*(): torn write, fsync EIO, ENOSPC
///   lifecycle — worker trial loop: mid-unit crash, stall
///
/// The injector is installed process-globally (install_fault_injector) so
/// the wire and checkpoint layers need no plumbing changes at call sites;
/// production builds simply never install one and pay a single relaxed
/// atomic load per potential site.

namespace dualrad::serve {

/// Per-category fault probabilities and the schedule seed. All probabilities
/// are in [0, 1]; within a category they are cumulative (at most one fault
/// fires per decision), so each category's probabilities must sum to <= 1.
struct FaultPlan {
  std::uint64_t seed = 1;

  // Wire faults (send_frame).
  double drop = 0.0;     ///< frame never leaves; sender sees a dead socket
  double corrupt = 0.0;  ///< CRC byte flipped in flight; receiver poisons
  double partial = 0.0;  ///< torn half-frame, then the connection dies
  double reset = 0.0;    ///< hard shutdown(SHUT_RDWR) of the socket
  double delay = 0.0;    ///< frame delivered late by delay_ms
  int delay_ms = 10;

  // Checkpoint journal faults (JournalWriter).
  double torn_write = 0.0;    ///< half a line reaches disk, then EIO
  double fsync_eio = 0.0;     ///< line written, fsync fails
  double append_enospc = 0.0; ///< nothing written, ENOSPC

  // Worker lifecycle faults (run_worker trial loop).
  double crash = 0.0;  ///< worker dies mid-unit (before commit)
  double stall = 0.0;  ///< worker freezes for stall_ms
  int stall_ms = 100;

  [[nodiscard]] bool any_wire() const {
    return drop + corrupt + partial + reset + delay > 0.0;
  }
  [[nodiscard]] bool any_journal() const {
    return torn_write + fsync_eio + append_enospc > 0.0;
  }
  [[nodiscard]] bool any_lifecycle() const { return crash + stall > 0.0; }
};

/// Parse a fault spec string: semicolon- (or comma-) separated key=value
/// pairs. Probabilities are doubles in [0,1]; `delay` and `stall` accept
/// `P` or `P:MILLIS`.
///
///   "seed=7;drop=0.03;corrupt=0.02;delay=0.05:25;crash=0.01;stall=0.01:300"
///
/// Keys: seed, drop, corrupt, partial, reset, delay, torn, fsync_eio,
/// enospc, crash, stall. Throws std::invalid_argument on unknown keys,
/// malformed numbers, probabilities outside [0,1], or a category summing
/// past 1.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

/// Canonical round-trip of a plan back to spec form (for logs and replays).
[[nodiscard]] std::string fault_plan_to_spec(const FaultPlan& plan);

enum class WireFault { None, Drop, Corrupt, Partial, Reset, Delay };
enum class JournalFault { None, TornWrite, FsyncEio, AppendEnospc };
enum class LifecycleFault { None, Crash, Stall };

/// Running totals of injected faults, readable from any thread (heartbeat /
/// worker exit reporting).
struct FaultTotals {
  std::uint64_t drops = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t partials = 0;
  std::uint64_t resets = 0;
  std::uint64_t delays = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t fsync_errors = 0;
  std::uint64_t enospc_errors = 0;
  std::uint64_t crashes = 0;
  std::uint64_t stalls = 0;

  [[nodiscard]] std::uint64_t total() const {
    return drops + corruptions + partials + resets + delays + torn_writes +
           fsync_errors + enospc_errors + crashes + stalls;
  }
  [[nodiscard]] std::string summary() const;
};

/// Draws the fault schedule. Thread-safe: each site keeps one atomic decision
/// counter, and every decision is a pure CounterRng draw keyed by
/// (plan seed, site, counter value).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Decision k at the wire site. Sets *delay_ms for WireFault::Delay.
  [[nodiscard]] WireFault next_wire(int* delay_ms);
  /// Decision k at the journal site.
  [[nodiscard]] JournalFault next_journal();
  /// Decision k at the lifecycle site. Sets *stall_ms for Stall.
  [[nodiscard]] LifecycleFault next_lifecycle(int* stall_ms);

  /// Schedule replay without side effects: the decision the injector would
  /// make for draw `k` at each site (used by determinism tests).
  [[nodiscard]] WireFault wire_decision(std::uint64_t k) const;
  [[nodiscard]] JournalFault journal_decision(std::uint64_t k) const;
  [[nodiscard]] LifecycleFault lifecycle_decision(std::uint64_t k) const;

  [[nodiscard]] FaultTotals totals() const;

 private:
  FaultPlan plan_;
  CounterRng rng_;
  std::atomic<std::uint64_t> wire_seq_{0};
  std::atomic<std::uint64_t> journal_seq_{0};
  std::atomic<std::uint64_t> lifecycle_seq_{0};
  // Totals, one counter per FaultTotals field.
  std::atomic<std::uint64_t> drops_{0}, corruptions_{0}, partials_{0},
      resets_{0}, delays_{0}, torn_writes_{0}, fsync_errors_{0},
      enospc_errors_{0}, crashes_{0}, stalls_{0};
};

/// Install (or clear, with nullptr) the process-global injector consulted by
/// send_frame and JournalWriter. The injector must outlive its installation;
/// tests use a scoped guard. Not reference-counted — last install wins.
void install_fault_injector(FaultInjector* injector);

/// The installed injector, or nullptr (the common, fault-free case).
[[nodiscard]] FaultInjector* fault_injector();

/// RAII installation for tests: installs on construction, clears on scope
/// exit.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector& injector) {
    install_fault_injector(&injector);
  }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;
  ~ScopedFaultInjector() { install_fault_injector(nullptr); }
};

}  // namespace dualrad::serve
