#include "serve/coordinator.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "campaign/export.hpp"

namespace dualrad::serve {

Coordinator::Coordinator(Config config) : config_(std::move(config)) {
  DUALRAD_REQUIRE(config_.lease_secs > 0.0, "lease_secs must be positive");
}

void Coordinator::configure_campaign(std::uint64_t master_seed,
                                     std::size_t trials_override) {
  const std::lock_guard<std::mutex> lock(mutex_);
  DUALRAD_REQUIRE(!loaded_ || committed_ == rows_.size(),
                  "cannot reconfigure mid-campaign");
  config_.master_seed = master_seed;
  config_.trials_override = trials_override;
}

void Coordinator::load_campaign(
    const std::vector<campaign::Scenario>& scenarios) {
  // Journal load happens outside the lock (file I/O), before the grid is
  // published; commits cannot arrive for an unloaded campaign anyway.
  JournalLoad journal_rows;
  if (config_.resume) {
    DUALRAD_REQUIRE(!config_.journal_path.empty(),
                    "resume requires a journal path");
    journal_rows = load_journal(config_.journal_path);
    // Cut any torn final line before reopening for append, or the next
    // commit would concatenate onto the fragment and corrupt it.
    truncate_torn_tail(config_.journal_path, journal_rows);
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  DUALRAD_REQUIRE(!loaded_ || committed_ == rows_.size(),
                  "a campaign is already in progress");

  scenarios_.clear();
  scenario_index_.clear();
  units_.clear();
  std::set<std::string> names;
  std::size_t total = 0;
  for (const campaign::Scenario& s : scenarios) {
    DUALRAD_REQUIRE(names.insert(s.name).second,
                    "duplicate scenario name in campaign: " + s.name);
    const std::size_t trials =
        config_.trials_override != 0 ? config_.trials_override : s.trials;
    DUALRAD_REQUIRE(trials >= 1,
                    "scenario '" + s.name + "' needs at least one trial");
    DUALRAD_REQUIRE(trials <= 0xFFFFFFFFull,
                    "scenario '" + s.name + "' trial count exceeds 2^32");
    scenario_index_.emplace(s.name, scenarios_.size());
    scenarios_.push_back(ScenarioSlot{s.name, trials, total});
    total += trials;
  }

  rows_.assign(total, {});
  row_bytes_.assign(total, {});
  telemetry_.assign(config_.collect_telemetry ? total : 0, {});
  telemetry_present_.assign(config_.collect_telemetry ? total : 0, 0);
  unit_of_job_.assign(total, 0);
  committed_ = 0;
  resumed_ = 0;

  for (std::size_t si = 0; si < scenarios_.size(); ++si) {
    const ScenarioSlot& slot = scenarios_[si];
    const std::uint32_t trials = static_cast<std::uint32_t>(slot.trials);
    const std::uint32_t step =
        config_.unit_trials == 0 ? trials : config_.unit_trials;
    for (std::uint32_t begin = 0; begin < trials; begin += step) {
      const std::uint32_t end = std::min(trials, begin + step);
      Unit unit;
      unit.scenario = si;
      unit.trial_begin = begin;
      unit.trial_end = end;
      unit.remaining = end - begin;
      for (std::uint32_t t = begin; t < end; ++t) {
        unit_of_job_[slot.first_job + t] = units_.size();
      }
      units_.push_back(std::move(unit));
    }
  }

  loaded_ = true;

  // Open (or create) the journal before replaying: replayed rows are already
  // in the file, so commit_locked(from_journal=true) skips re-appending.
  if (!config_.journal_path.empty()) {
    journal_.open(config_.journal_path);
  }
  for (const campaign::TrialRow& row : journal_rows.rows) {
    const Commit outcome = commit_locked(row, /*from_journal=*/true);
    DUALRAD_CHECK(outcome == Commit::Accepted,
                  "journal replay produced a duplicate");
    ++resumed_;
  }
  if (committed_ == rows_.size()) done_cv_.notify_all();
}

bool Coordinator::campaign_loaded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return loaded_;
}

std::string Coordinator::register_worker(const std::string& requested) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++workers_seen_;
  if (!requested.empty()) return requested;
  return "w" + std::to_string(next_worker_++);
}

void Coordinator::sweep_expired_leases_locked() {
  const auto now = std::chrono::steady_clock::now();
  for (Unit& unit : units_) {
    if (unit.state == UnitState::Leased && now >= unit.lease_deadline) {
      // The worker died or stalled: requeue. Trials it already committed
      // stay committed; a later worker re-running them dedupes byte-wise.
      unit.state = UnitState::Pending;
      unit.worker.clear();
    }
  }
}

std::optional<JobSpec> Coordinator::lease(const std::string& worker) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!loaded_) return std::nullopt;
  sweep_expired_leases_locked();
  for (std::size_t ui = 0; ui < units_.size(); ++ui) {
    Unit& unit = units_[ui];
    if (unit.state != UnitState::Pending) continue;
    unit.state = UnitState::Leased;
    unit.worker = worker;
    unit.lease_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(
            static_cast<std::int64_t>(config_.lease_secs * 1e6));
    JobSpec job;
    job.unit = ui;
    job.scenario = scenarios_[unit.scenario].name;
    job.trial_begin = unit.trial_begin;
    job.trial_end = unit.trial_end;
    job.master_seed = config_.master_seed;
    job.threads_per_trial = config_.threads_per_trial;
    job.collect_telemetry = config_.collect_telemetry;
    return job;
  }
  return std::nullopt;
}

Coordinator::Commit Coordinator::commit_locked(const campaign::TrialRow& row,
                                               bool from_journal) {
  DUALRAD_REQUIRE(loaded_, "commit before a campaign was loaded");
  const auto it = scenario_index_.find(row.scenario);
  DUALRAD_REQUIRE(it != scenario_index_.end(),
                  "commit for unknown scenario: " + row.scenario);
  const ScenarioSlot& slot = scenarios_[it->second];
  DUALRAD_REQUIRE(row.trial < slot.trials,
                  "commit trial out of range in " + row.scenario);
  DUALRAD_REQUIRE(
      row.seed ==
          campaign::trial_seed(config_.master_seed, row.scenario, row.trial),
      "commit seed mismatch (different master seed?) in " + row.scenario);

  const std::size_t job = slot.first_job + row.trial;
  // Canonical untimed bytes: the same bytes the final export will contain,
  // and the byte-identity key of exactly-once commit.
  campaign::TrialRow canonical = row;
  canonical.wall_us = -1;
  const std::string bytes = campaign::trials_to_jsonl({canonical});

  if (!row_bytes_[job].empty()) {
    if (row_bytes_[job] == bytes) return Commit::Duplicate;
    throw std::runtime_error(
        "dualrad: conflicting commit for " + row.scenario + "#" +
        std::to_string(row.trial) +
        " — byte-identity contract violated (mismatched binary or grid?)");
  }

  if (!from_journal && journal_.is_open()) journal_.append(canonical);
  rows_[job] = std::move(canonical);
  row_bytes_[job] = bytes;
  ++committed_;

  Unit& unit = units_[unit_of_job_[job]];
  DUALRAD_CHECK(unit.remaining > 0, "unit committed more trials than it has");
  if (--unit.remaining == 0) {
    unit.state = UnitState::Done;
    unit.worker.clear();
  }
  return Commit::Accepted;
}

Coordinator::Commit Coordinator::commit(const campaign::TrialRow& row) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Commit outcome = commit_locked(row, /*from_journal=*/false);
  if (committed_ == rows_.size()) done_cv_.notify_all();
  return outcome;
}

void Coordinator::add_telemetry(const campaign::TelemetryRow& row) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!loaded_ || !config_.collect_telemetry) return;
  const auto it = scenario_index_.find(row.scenario);
  if (it == scenario_index_.end()) return;
  const ScenarioSlot& slot = scenarios_[it->second];
  if (row.trial >= slot.trials) return;
  const std::size_t job = slot.first_job + row.trial;
  // First report wins: a requeued unit's re-run may report again, and
  // telemetry (being nondeterministic) has no byte-identity to arbitrate.
  if (telemetry_present_[job]) return;
  telemetry_[job] = row;
  telemetry_present_[job] = 1;
}

bool Coordinator::done() const {
  // Callers hold no lock (done is const); the engine reads are benign but
  // lock anyway for a clean contract — this is never on a hot path.
  const std::lock_guard<std::mutex> lock(mutex_);
  return loaded_ && committed_ == rows_.size();
}

bool Coordinator::wait_done(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto is_done = [&] { return loaded_ && committed_ == rows_.size(); };
  if (timeout.count() <= 0) {
    done_cv_.wait(lock, is_done);
    return true;
  }
  return done_cv_.wait_for(lock, timeout, is_done);
}

Coordinator::Status Coordinator::status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Status s;
  s.loaded = loaded_;
  s.finished = loaded_ && committed_ == rows_.size();
  s.scenarios = scenarios_.size();
  s.total_trials = rows_.size();
  s.committed = committed_;
  s.resumed = resumed_;
  for (const Unit& unit : units_) {
    switch (unit.state) {
      case UnitState::Pending: ++s.units_pending; break;
      case UnitState::Leased: ++s.units_leased; break;
      case UnitState::Done: ++s.units_done; break;
    }
  }
  s.workers = workers_seen_;
  return s;
}

campaign::CampaignResult Coordinator::finalize() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  DUALRAD_REQUIRE(loaded_ && committed_ == rows_.size(),
                  "finalize before the campaign completed");
  campaign::CampaignResult result;
  result.trials = rows_;
  campaign::CampaignGrid grid;
  grid.reserve(scenarios_.size());
  for (const ScenarioSlot& slot : scenarios_) {
    grid.emplace_back(slot.name, slot.trials);
  }
  // Serve-mode rows are always untimed (the canonicalization in commit), so
  // summaries carry no wall-time column — matching an untimed batch run.
  result.summaries = campaign::summarize_trials(result.trials, grid, false);
  if (config_.collect_telemetry) {
    result.telemetry.reserve(rows_.size());
    for (std::size_t job = 0; job < telemetry_.size(); ++job) {
      if (telemetry_present_[job]) result.telemetry.push_back(telemetry_[job]);
    }
  }
  return result;
}

}  // namespace dualrad::serve
