#include "serve/coordinator.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "campaign/export.hpp"

namespace dualrad::serve {

Coordinator::Coordinator(Config config) : config_(std::move(config)) {
  DUALRAD_REQUIRE(config_.lease_secs > 0.0, "lease_secs must be positive");
  DUALRAD_REQUIRE(config_.lease_slack >= 1.0, "lease_slack must be >= 1");
  DUALRAD_REQUIRE(config_.lease_floor_secs > 0.0 &&
                      config_.lease_floor_secs <= config_.lease_ceil_secs,
                  "lease floor/ceil must satisfy 0 < floor <= ceil");
}

void Coordinator::configure_campaign(std::uint64_t master_seed,
                                     std::size_t trials_override) {
  const std::lock_guard<std::mutex> lock(mutex_);
  DUALRAD_REQUIRE(!loaded_ || settled_locked(),
                  "cannot reconfigure mid-campaign");
  config_.master_seed = master_seed;
  config_.trials_override = trials_override;
}

void Coordinator::load_campaign(
    const std::vector<campaign::Scenario>& scenarios) {
  // Journal load happens outside the lock (file I/O), before the grid is
  // published; commits cannot arrive for an unloaded campaign anyway.
  JournalLoad journal_rows;
  if (config_.resume) {
    DUALRAD_REQUIRE(!config_.journal_path.empty(),
                    "resume requires a journal path");
    journal_rows = load_journal(config_.journal_path);
    // Cut any torn final line before reopening for append, or the next
    // commit would concatenate onto the fragment and corrupt it.
    truncate_torn_tail(config_.journal_path, journal_rows);
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  DUALRAD_REQUIRE(!loaded_ || settled_locked(),
                  "a campaign is already in progress");

  scenarios_.clear();
  scenario_index_.clear();
  units_.clear();
  std::set<std::string> names;
  std::size_t total = 0;
  for (const campaign::Scenario& s : scenarios) {
    DUALRAD_REQUIRE(names.insert(s.name).second,
                    "duplicate scenario name in campaign: " + s.name);
    const std::size_t trials =
        config_.trials_override != 0 ? config_.trials_override : s.trials;
    DUALRAD_REQUIRE(trials >= 1,
                    "scenario '" + s.name + "' needs at least one trial");
    DUALRAD_REQUIRE(trials <= 0xFFFFFFFFull,
                    "scenario '" + s.name + "' trial count exceeds 2^32");
    scenario_index_.emplace(s.name, scenarios_.size());
    scenarios_.push_back(ScenarioSlot{s.name, trials, total});
    total += trials;
  }

  rows_.assign(total, {});
  row_bytes_.assign(total, {});
  telemetry_.assign(config_.collect_telemetry ? total : 0, {});
  telemetry_present_.assign(config_.collect_telemetry ? total : 0, 0);
  unit_of_job_.assign(total, 0);
  committed_ = 0;
  resumed_ = 0;
  lease_expiries_ = 0;
  speculative_ = 0;
  journal_errors_ = 0;
  journal_error_.clear();
  unit_secs_.clear();

  for (std::size_t si = 0; si < scenarios_.size(); ++si) {
    const ScenarioSlot& slot = scenarios_[si];
    const std::uint32_t trials = static_cast<std::uint32_t>(slot.trials);
    const std::uint32_t step =
        config_.unit_trials == 0 ? trials : config_.unit_trials;
    for (std::uint32_t begin = 0; begin < trials; begin += step) {
      const std::uint32_t end = std::min(trials, begin + step);
      Unit unit;
      unit.scenario = si;
      unit.trial_begin = begin;
      unit.trial_end = end;
      unit.remaining = end - begin;
      for (std::uint32_t t = begin; t < end; ++t) {
        unit_of_job_[slot.first_job + t] = units_.size();
      }
      units_.push_back(std::move(unit));
    }
  }

  loaded_ = true;

  // Open (or create) the journal before replaying: replayed rows are already
  // in the file, so commit_locked(from_journal=true) skips re-appending.
  if (!config_.journal_path.empty()) {
    journal_.open(config_.journal_path);
  }
  for (const campaign::TrialRow& row : journal_rows.rows) {
    const Commit outcome = commit_locked(row, /*from_journal=*/true);
    DUALRAD_CHECK(outcome == Commit::Accepted,
                  "journal replay produced a duplicate");
    ++resumed_;
  }
  // Replay journaled telemetry (first-wins, same validation as the live
  // path) so crashed runs keep their telemetry through --resume.
  if (config_.collect_telemetry) {
    for (const campaign::TelemetryRow& row : journal_rows.telemetry) {
      const auto it = scenario_index_.find(row.scenario);
      if (it == scenario_index_.end()) continue;
      const ScenarioSlot& slot = scenarios_[it->second];
      if (row.trial >= slot.trials) continue;
      const std::size_t job = slot.first_job + row.trial;
      if (telemetry_present_[job]) continue;
      telemetry_[job] = row;
      telemetry_present_[job] = 1;
    }
  }
  if (settled_locked()) done_cv_.notify_all();
}

bool Coordinator::campaign_loaded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return loaded_;
}

std::string Coordinator::register_worker(const std::string& requested) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++workers_seen_;
  if (!requested.empty()) return requested;
  return "w" + std::to_string(next_worker_++);
}

bool Coordinator::settled_locked() const {
  if (!loaded_) return false;
  for (const Unit& unit : units_) {
    if (unit.state != UnitState::Done && unit.state != UnitState::Quarantined) {
      return false;
    }
  }
  return true;
}

double Coordinator::lease_window_secs_locked() const {
  if (!config_.adaptive_lease || unit_secs_.size() < config_.lease_observations) {
    return config_.lease_secs;
  }
  // p90 of observed unit wall times, times slack: long enough that an honest
  // slow unit survives, short enough that a dead worker is detected in a few
  // unit-times rather than a static 30 s.
  std::vector<double> secs = unit_secs_;
  const std::size_t k = (secs.size() * 9) / 10;
  const std::size_t idx = std::min(k, secs.size() - 1);
  std::nth_element(secs.begin(),
                   secs.begin() + static_cast<std::ptrdiff_t>(idx), secs.end());
  const double p90 = secs[idx];
  return std::clamp(p90 * config_.lease_slack, config_.lease_floor_secs,
                    config_.lease_ceil_secs);
}

void Coordinator::sweep_expired_leases_locked() {
  const auto now = std::chrono::steady_clock::now();
  bool newly_settled = false;
  for (Unit& unit : units_) {
    if (unit.state != UnitState::Leased || now < unit.lease_deadline) continue;
    // The worker died or stalled. Trials it already committed stay
    // committed; a later worker re-running them dedupes byte-wise.
    ++lease_expiries_;
    ++unit.expiries;
    unit.speculated = false;
    if (config_.max_unit_expiries != 0 &&
        unit.expiries >= config_.max_unit_expiries) {
      // Poison quarantine: this unit has now killed (or outlived) N leases.
      // Requeueing it forever would livelock the campaign; park it and let
      // finalize() report the gap explicitly. A late commit can still heal
      // it back to Done. `worker` is kept for the manifest — the last
      // holder is the first place to look for the poison.
      unit.state = UnitState::Quarantined;
      newly_settled = true;
    } else {
      unit.worker.clear();
      unit.state = UnitState::Pending;
    }
  }
  if (newly_settled && settled_locked()) done_cv_.notify_all();
}

std::optional<JobSpec> Coordinator::lease(const std::string& worker) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!loaded_) return std::nullopt;
  sweep_expired_leases_locked();
  const auto now = std::chrono::steady_clock::now();
  const auto window = std::chrono::microseconds(
      static_cast<std::int64_t>(lease_window_secs_locked() * 1e6));
  const auto make_job = [&](std::size_t ui, Unit& unit) {
    unit.worker = worker;
    unit.lease_start = now;
    unit.lease_deadline = now + window;
    JobSpec job;
    job.unit = ui;
    job.scenario = scenarios_[unit.scenario].name;
    job.trial_begin = unit.trial_begin;
    job.trial_end = unit.trial_end;
    job.master_seed = config_.master_seed;
    job.threads_per_trial = config_.threads_per_trial;
    job.collect_telemetry = config_.collect_telemetry;
    return job;
  };
  for (std::size_t ui = 0; ui < units_.size(); ++ui) {
    Unit& unit = units_[ui];
    if (unit.state != UnitState::Pending) continue;
    unit.state = UnitState::Leased;
    return make_job(ui, unit);
  }
  if (!config_.speculative_redispatch) return std::nullopt;
  // Straggler speculation: nothing is pending but the campaign isn't done,
  // so this worker would otherwise idle-poll while the tail unit finishes
  // (or times out). Hand it a second copy of the leased unit that has been
  // out the longest past half its window — exactly-once commit makes the
  // duplicate execution safe, and whichever copy commits first wins. At most
  // one speculative copy per lease term, and never to the holder itself.
  std::size_t best = units_.size();
  for (std::size_t ui = 0; ui < units_.size(); ++ui) {
    Unit& unit = units_[ui];
    if (unit.state != UnitState::Leased || unit.speculated) continue;
    if (unit.worker == worker) continue;
    const auto elapsed = now - unit.lease_start;
    if (elapsed * 2 < unit.lease_deadline - unit.lease_start) continue;
    if (best == units_.size() ||
        units_[best].lease_start > unit.lease_start) {
      best = ui;
    }
  }
  if (best == units_.size()) return std::nullopt;
  Unit& unit = units_[best];
  unit.speculated = true;
  ++speculative_;
  // The re-dispatch extends the deadline for both copies — the original
  // holder may still commit, and the sweep must give the speculative copy a
  // full window too.
  return make_job(best, unit);
}

Coordinator::Commit Coordinator::commit_locked(const campaign::TrialRow& row,
                                               bool from_journal) {
  DUALRAD_REQUIRE(loaded_, "commit before a campaign was loaded");
  const auto it = scenario_index_.find(row.scenario);
  DUALRAD_REQUIRE(it != scenario_index_.end(),
                  "commit for unknown scenario: " + row.scenario);
  const ScenarioSlot& slot = scenarios_[it->second];
  DUALRAD_REQUIRE(row.trial < slot.trials,
                  "commit trial out of range in " + row.scenario);
  DUALRAD_REQUIRE(
      row.seed ==
          campaign::trial_seed(config_.master_seed, row.scenario, row.trial),
      "commit seed mismatch (different master seed?) in " + row.scenario);

  const std::size_t job = slot.first_job + row.trial;
  // Canonical untimed bytes: the same bytes the final export will contain,
  // and the byte-identity key of exactly-once commit.
  campaign::TrialRow canonical = row;
  canonical.wall_us = -1;
  const std::string bytes = campaign::trials_to_jsonl({canonical});

  if (!row_bytes_[job].empty()) {
    if (row_bytes_[job] == bytes) return Commit::Duplicate;
    throw std::runtime_error(
        "dualrad: conflicting commit for " + row.scenario + "#" +
        std::to_string(row.trial) +
        " — byte-identity contract violated (mismatched binary or grid?)");
  }

  if (!from_journal) journal_append_guarded_locked(canonical);
  rows_[job] = std::move(canonical);
  row_bytes_[job] = bytes;
  ++committed_;

  Unit& unit = units_[unit_of_job_[job]];
  DUALRAD_CHECK(unit.remaining > 0, "unit committed more trials than it has");
  if (--unit.remaining == 0) {
    // A late commit heals a quarantined unit: the work arrived after all, so
    // the campaign is whole again for this range.
    if (unit.state == UnitState::Leased && !from_journal) {
      const auto elapsed = std::chrono::steady_clock::now() - unit.lease_start;
      unit_secs_.push_back(
          std::chrono::duration<double>(elapsed).count());
    }
    unit.state = UnitState::Done;
    unit.worker.clear();
    unit.speculated = false;
  }
  return Commit::Accepted;
}

void Coordinator::journal_append_guarded_locked(const campaign::TrialRow& row) {
  if (!journal_.is_open()) return;
  try {
    journal_.append(row);
  } catch (const std::exception& e) {
    // Availability over durability: a failing journal device must not take
    // a running campaign down. Disable checkpointing (the on-disk prefix is
    // still a valid journal — whole-line appends tear at most the tail, and
    // a later --resume re-runs whatever wasn't durable), count it, and let
    // the commit succeed.
    journal_.close();
    ++journal_errors_;
    if (journal_error_.empty()) journal_error_ = e.what();
  }
}

void Coordinator::journal_append_guarded_locked(
    const campaign::TelemetryRow& row) {
  if (!journal_.is_open()) return;
  try {
    journal_.append(row);
  } catch (const std::exception& e) {
    journal_.close();
    ++journal_errors_;
    if (journal_error_.empty()) journal_error_ = e.what();
  }
}

Coordinator::Commit Coordinator::commit(const campaign::TrialRow& row) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Commit outcome = commit_locked(row, /*from_journal=*/false);
  if (settled_locked()) done_cv_.notify_all();
  return outcome;
}

void Coordinator::add_telemetry(const campaign::TelemetryRow& row) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!loaded_ || !config_.collect_telemetry) return;
  const auto it = scenario_index_.find(row.scenario);
  if (it == scenario_index_.end()) return;
  const ScenarioSlot& slot = scenarios_[it->second];
  if (row.trial >= slot.trials) return;
  const std::size_t job = slot.first_job + row.trial;
  // First report wins: a requeued unit's re-run may report again, and
  // telemetry (being nondeterministic) has no byte-identity to arbitrate.
  if (telemetry_present_[job]) return;
  telemetry_[job] = row;
  telemetry_present_[job] = 1;
  journal_append_guarded_locked(row);
}

bool Coordinator::done() const {
  // Callers hold no lock (done is const); the engine reads are benign but
  // lock anyway for a clean contract — this is never on a hot path.
  const std::lock_guard<std::mutex> lock(mutex_);
  return settled_locked();
}

bool Coordinator::wait_done(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto is_done = [&] { return settled_locked(); };
  if (timeout.count() <= 0) {
    done_cv_.wait(lock, is_done);
    return true;
  }
  return done_cv_.wait_for(lock, timeout, is_done);
}

Coordinator::Status Coordinator::status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Status s;
  s.loaded = loaded_;
  s.finished = settled_locked();
  s.scenarios = scenarios_.size();
  s.total_trials = rows_.size();
  s.committed = committed_;
  s.resumed = resumed_;
  for (const Unit& unit : units_) {
    switch (unit.state) {
      case UnitState::Pending: ++s.units_pending; break;
      case UnitState::Leased: ++s.units_leased; break;
      case UnitState::Done: ++s.units_done; break;
      case UnitState::Quarantined:
        ++s.units_quarantined;
        s.trials_quarantined += unit.remaining;
        break;
    }
  }
  s.workers = workers_seen_;
  s.lease_expiries = lease_expiries_;
  s.speculative_dispatches = speculative_;
  s.journal_errors = journal_errors_;
  s.lease_ms_effective =
      static_cast<std::size_t>(lease_window_secs_locked() * 1e3);
  return s;
}

std::vector<Coordinator::QuarantinedUnit> Coordinator::quarantined() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QuarantinedUnit> out;
  for (const Unit& unit : units_) {
    if (unit.state != UnitState::Quarantined) continue;
    QuarantinedUnit q;
    q.scenario = scenarios_[unit.scenario].name;
    q.trial_begin = unit.trial_begin;
    q.trial_end = unit.trial_end;
    q.committed = (unit.trial_end - unit.trial_begin) - unit.remaining;
    q.expiries = unit.expiries;
    q.last_worker = unit.worker;
    out.push_back(std::move(q));
  }
  return out;
}

campaign::CampaignResult Coordinator::finalize() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  DUALRAD_REQUIRE(settled_locked(), "finalize before the campaign completed");
  campaign::CampaignResult result;
  campaign::CampaignGrid grid;
  grid.reserve(scenarios_.size());
  if (committed_ == rows_.size()) {
    result.trials = rows_;
    for (const ScenarioSlot& slot : scenarios_) {
      grid.emplace_back(slot.name, slot.trials);
    }
  } else {
    // Quarantined units leave holes: export the committed subset with a grid
    // whose per-scenario counts match, so summarize_trials' row-count
    // invariant holds. The quarantined() manifest names the missing ranges.
    result.trials.reserve(committed_);
    for (const ScenarioSlot& slot : scenarios_) {
      std::size_t present = 0;
      for (std::size_t t = 0; t < slot.trials; ++t) {
        const std::size_t job = slot.first_job + t;
        if (row_bytes_[job].empty()) continue;
        result.trials.push_back(rows_[job]);
        ++present;
      }
      if (present > 0) grid.emplace_back(slot.name, present);
    }
  }
  // Serve-mode rows are always untimed (the canonicalization in commit), so
  // summaries carry no wall-time column — matching an untimed batch run.
  result.summaries = campaign::summarize_trials(result.trials, grid, false);
  if (config_.collect_telemetry) {
    result.telemetry.reserve(rows_.size());
    for (std::size_t job = 0; job < telemetry_.size(); ++job) {
      if (telemetry_present_[job]) result.telemetry.push_back(telemetry_[job]);
    }
  }
  return result;
}

}  // namespace dualrad::serve
