#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "campaign/registry.hpp"
#include "serve/coordinator.hpp"

/// \file server.hpp
/// The coordinator's socket front end: one thread per connection, strict
/// request/response over CRC-framed JSONL messages (wire.hpp).
///
/// Requests                         Replies
///   hello {worker}                   welcome {worker}
///   lease {worker}                   unit {...JobSpec} | wait | idle | done
///   commit {unit, ...TrialRow}       ack {scenario, trial, dup} | error
///   telemetry {...TelemetryRow}      (none — fire-and-forget, out-of-band)
///   status                           state {...Coordinator::Status}
///   submit {filter, seed, trials}    submitted {total} | error
///
/// Workers treat `error` on commit as fatal (a byte-identity violation);
/// everything else is retryable. Connection teardown at any point is safe:
/// dispatch is at-least-once (lease expiry requeues), commit is exactly-once
/// (coordinator dedup), so the server never needs connection state beyond
/// the worker id inside each request.

namespace dualrad::serve {

class Server {
 public:
  struct Options {
    /// Scenario catalogue used by `submit` to resolve filters; nullptr
    /// disables submit.
    const campaign::ScenarioRegistry* registry = nullptr;
    /// Used as the trial override when submit passes trials=0.
    bool verbose = false;
  };

  Server(Coordinator& coordinator, Options options);

  /// Serve one established connection until EOF, a framing error, or
  /// request_stop(). Blocking; called from a dedicated thread (or directly
  /// over a socketpair in tests). Closes `fd` before returning.
  void handle_connection(int fd);

  /// Accept connections on `listen_fd` until request_stop(), spawning one
  /// handler thread each. Joins all handlers before returning. Does not
  /// close `listen_fd`.
  void run_accept_loop(int listen_fd);

  /// Ask the accept loop and all connection handlers to wind down promptly.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool stopping() const {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::string handle_message(const std::string& payload,
                                           bool& close_connection);

  Coordinator& coordinator_;
  Options options_;
  std::atomic<bool> stop_{false};
};

}  // namespace dualrad::serve
