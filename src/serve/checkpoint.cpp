#include "serve/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <string_view>
#include <utility>

#include "campaign/export.hpp"
#include "serve/faultline.hpp"
#include "serve/wire.hpp"

namespace dualrad::serve {

namespace {

/// strerror() is not thread-safe (concurrency-mt-unsafe); the error_code
/// formatter is, and journal errors can surface from any worker thread.
[[nodiscard]] std::string errno_message() {
  return std::error_code(errno, std::generic_category()).message();
}

[[nodiscard]] std::string crc_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

/// Parse "xxxxxxxx <json>"; returns the json part or nullopt if the line is
/// structurally broken or fails its CRC.
[[nodiscard]] std::optional<std::string_view> check_line(
    std::string_view line) {
  if (line.size() < 10 || line[8] != ' ') return std::nullopt;
  for (int i = 0; i < 8; ++i) {
    const char c = line[static_cast<std::size_t>(i)];
    const bool hex =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return std::nullopt;
  }
  const std::string_view json = line.substr(9);
  if (crc_hex(crc32(json)) != line.substr(0, 8)) return std::nullopt;
  return json;
}

}  // namespace

std::string journal_line(const campaign::TrialRow& row) {
  // Canonical untimed row: wall time is outside the determinism contract,
  // so journals stay byte-comparable across reruns and machines.
  std::string json = campaign::trials_to_jsonl({row});
  DUALRAD_CHECK(!json.empty() && json.back() == '\n',
                "trials_to_jsonl emitted no line");
  json.pop_back();
  return crc_hex(crc32(json)) + " " + json + "\n";
}

std::string journal_line(const campaign::TelemetryRow& row) {
  std::string json = campaign::telemetry_to_jsonl({row});
  DUALRAD_CHECK(!json.empty() && json.back() == '\n',
                "telemetry_to_jsonl emitted no line");
  json.pop_back();
  // The "t " marker distinguishes telemetry from trial rows; it is part of
  // the CRC-covered payload so a marker torn off cannot misclassify a line.
  const std::string payload = "t " + json;
  return crc_hex(crc32(payload)) + " " + payload + "\n";
}

JournalLoad parse_journal(const std::string& text) {
  JournalLoad load;
  load.valid_bytes = text.size();
  std::map<std::pair<std::string, std::uint32_t>, std::string> seen;
  std::set<std::pair<std::string, std::uint32_t>> telemetry_seen;
  std::size_t begin = 0;
  while (begin < text.size()) {
    const std::size_t nl = text.find('\n', begin);
    const bool complete = nl != std::string::npos;
    const std::string_view line(text.data() + begin,
                                (complete ? nl : text.size()) - begin);
    const std::size_t next = complete ? nl + 1 : text.size();
    const bool is_last = next >= text.size();
    if (line.empty()) {
      begin = next;
      continue;
    }
    const std::optional<std::string_view> payload = check_line(line);
    if (!payload.has_value() || !complete) {
      // Only the final line may be torn (whole-line O_APPEND writes); any
      // earlier damage means the file itself is corrupt.
      if (is_last) {
        ++load.dropped_torn_tail;
        load.valid_bytes = begin;
        break;
      }
      throw std::invalid_argument(
          "dualrad: corrupt journal line (not at tail): " + std::string(line));
    }
    if (payload->rfind("t ", 0) == 0) {
      // Telemetry line. Nondeterministic by nature (wall times), so replays
      // dedupe first-wins and never conflict.
      const std::string_view json = payload->substr(2);
      std::vector<campaign::TelemetryRow> parsed =
          campaign::telemetry_from_jsonl(std::string(json) + "\n");
      DUALRAD_REQUIRE(parsed.size() == 1,
                      "telemetry journal line is not one row");
      campaign::TelemetryRow row = std::move(parsed.front());
      if (telemetry_seen.emplace(row.scenario, row.trial).second) {
        load.telemetry.push_back(std::move(row));
      }
      begin = next;
      continue;
    }
    const std::string_view json = *payload;
    std::vector<campaign::TrialRow> parsed =
        campaign::trials_from_jsonl(std::string(json) + "\n");
    DUALRAD_REQUIRE(parsed.size() == 1, "journal line is not one row");
    campaign::TrialRow row = std::move(parsed.front());
    const auto key = std::make_pair(row.scenario, row.trial);
    const auto it = seen.find(key);
    if (it != seen.end()) {
      // At-least-once journaling: byte-identical replays dedupe, conflicting
      // rows for one trial violate the determinism contract.
      if (it->second == json) {
        ++load.duplicates;
      } else {
        throw std::invalid_argument(
            "dualrad: conflicting journal rows for " + row.scenario + "#" +
            std::to_string(row.trial));
      }
    } else {
      seen.emplace(key, std::string(json));
      load.rows.push_back(std::move(row));
    }
    begin = next;
  }
  return load;
}

JournalLoad load_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("dualrad: cannot open journal " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_journal(text.str());
}

void truncate_torn_tail(const std::string& path, const JournalLoad& load) {
  if (load.dropped_torn_tail == 0) return;
  if (::truncate(path.c_str(), static_cast<off_t>(load.valid_bytes)) != 0) {
    throw std::runtime_error("dualrad: cannot truncate torn journal tail in " +
                             path + ": " + errno_message());
  }
}

void JournalWriter::open(const std::string& path, bool fsync_each) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("dualrad: cannot open journal " + path + ": " +
                             errno_message());
  }
  fsync_each_ = fsync_each;
}

void JournalWriter::append(const campaign::TrialRow& row) {
  append_line(journal_line(row));
}

void JournalWriter::append(const campaign::TelemetryRow& row) {
  append_line(journal_line(row));
}

void JournalWriter::append_line(const std::string& line) {
  DUALRAD_CHECK(fd_ >= 0, "journal writer not open");

  const auto write_all = [&](const char* data, std::size_t size) {
    std::size_t written = 0;
    while (written < size) {
      const ssize_t n = ::write(fd_, data + written, size - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(
            std::string("dualrad: journal write failed: ") + errno_message());
      }
      written += static_cast<std::size_t>(n);
    }
  };

  if (FaultInjector* injector = fault_injector()) {
    switch (injector->next_journal()) {
      case JournalFault::None:
        break;
      case JournalFault::TornWrite:
        // Half the line reaches disk, then the device errors: the classic
        // torn tail. The loader recovers the valid prefix (valid_bytes) and
        // truncate_torn_tail cuts the fragment on resume.
        write_all(line.data(), line.size() / 2);
        throw std::runtime_error(
            "dualrad: journal append failed mid-line (injected EIO; torn "
            "tail left on disk)");
      case JournalFault::FsyncEio:
        // The line is written but its durability is unknown: the commit must
        // still fail loudly (a crash now could lose it).
        write_all(line.data(), line.size());
        throw std::runtime_error(
            "dualrad: journal fsync failed (injected EIO; line durability "
            "unknown)");
      case JournalFault::AppendEnospc:
        throw std::runtime_error(
            "dualrad: journal append failed (injected ENOSPC; nothing "
            "written)");
    }
  }

  write_all(line.data(), line.size());
  if (fsync_each_ && ::fsync(fd_) != 0) {
    // An fsync error means the kernel may have dropped this (or an earlier)
    // write: the only honest outcome is a loud failure. The on-disk prefix
    // is still a valid journal — whole-line appends tear at most the tail.
    throw std::runtime_error(std::string("dualrad: journal fsync failed: ") +
                             errno_message());
  }
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace dualrad::serve
