#include "serve/wire.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "serve/faultline.hpp"

namespace dualrad::serve {

namespace {

[[nodiscard]] std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

[[nodiscard]] std::uint32_t get_u32(const char* p) {
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

/// Wait until `fd` is readable. Returns 1 ready, 0 timeout, -1 error/EOF.
[[nodiscard]] int wait_readable(int fd, int timeout_ms) {
  struct pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

[[nodiscard]] int set_cloexec(int fd) {
  if (fd < 0) return fd;
  // Best effort; a leaked fd into a forked worker is harmless.
  (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
  return fd;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 8);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.append(payload);
  return out;
}

std::optional<std::string> FrameReader::next() {
  if (corrupt_) return std::nullopt;
  // Reclaim consumed prefix lazily, once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 8) return std::nullopt;
  const char* head = buffer_.data() + consumed_;
  const std::uint32_t length = get_u32(head);
  if (length > kMaxFramePayload) {
    corrupt_ = true;
    corrupt_reason_ = "frame length " + std::to_string(length) +
                      " exceeds the " + std::to_string(kMaxFramePayload) +
                      "-byte payload limit";
    buffer_.clear();
    consumed_ = 0;
    return std::nullopt;
  }
  if (available < 8 + static_cast<std::size_t>(length)) return std::nullopt;
  const std::uint32_t expected = get_u32(head + 4);
  std::string payload(head + 8, length);
  if (crc32(payload) != expected) {
    corrupt_ = true;
    corrupt_reason_ = "frame CRC mismatch (stream torn or corrupted)";
    buffer_.clear();
    consumed_ = 0;
    return std::nullopt;
  }
  consumed_ += 8 + static_cast<std::size_t>(length);
  return payload;
}

namespace {

[[nodiscard]] bool send_bytes(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool send_frame(int fd, std::string_view payload) {
  std::string frame = encode_frame(payload);
  if (FaultInjector* injector = fault_injector()) {
    int delay_ms = 0;
    switch (injector->next_wire(&delay_ms)) {
      case WireFault::None:
        break;
      case WireFault::Drop:
        // The frame never leaves. Reporting failure (rather than silently
        // blackholing) models a dead socket: the caller tears the connection
        // down and retransmits after reconnecting instead of blocking a full
        // reply timeout on a frame that will never be answered.
        return false;
      case WireFault::Corrupt:
        // Flip one CRC bit in flight; the receiver's FrameReader poisons
        // itself and the connection dies on that end.
        frame[4] = static_cast<char>(frame[4] ^ 0x01);
        break;
      case WireFault::Partial: {
        // Torn write: half a frame reaches the peer, then the link dies.
        // The receiver discards the fragment when the connection drops.
        (void)send_bytes(fd, frame.data(), frame.size() / 2);
        return false;
      }
      case WireFault::Reset:
        ::shutdown(fd, SHUT_RDWR);
        return false;
      case WireFault::Delay:
        // Late delivery. Bounded by the plan's delay_ms. lint: backoff-ok
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        break;
    }
  }
  return send_bytes(fd, frame.data(), frame.size());
}

std::optional<std::string> recv_frame(int fd, FrameReader& reader,
                                      int timeout_ms, bool* timed_out) {
  if (reader.corrupt()) {
    // A poisoned reader can never produce another frame; a caller that loops
    // on it would hang silently. Recovery is reconnect-only: drop the
    // connection and build a fresh FrameReader.
    throw std::logic_error(
        "dualrad: recv_frame on a poisoned FrameReader (" +
        reader.corrupt_reason() +
        "); a corrupt stream cannot be resumed — reconnect with a fresh "
        "FrameReader");
  }
  if (timed_out != nullptr) *timed_out = false;
  for (;;) {
    if (auto payload = reader.next()) return payload;
    if (reader.corrupt()) return std::nullopt;
    const int ready = wait_readable(fd, timeout_ms);
    if (ready == 0) {
      if (timed_out != nullptr) *timed_out = true;
      return std::nullopt;
    }
    if (ready < 0) return std::nullopt;
    char chunk[16384];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) return std::nullopt;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    reader.feed(chunk, static_cast<std::size_t>(n));
  }
}

namespace {

[[nodiscard]] bool is_unix_endpoint(const std::string& endpoint) {
  return endpoint.find('/') != std::string::npos;
}

[[nodiscard]] bool split_host_port(const std::string& endpoint,
                                   std::string& host, std::uint16_t& port) {
  const std::size_t colon = endpoint.rfind(':');
  std::string port_str;
  if (colon == std::string::npos) {
    host = "127.0.0.1";
    port_str = endpoint;
  } else {
    host = colon == 0 ? "127.0.0.1" : endpoint.substr(0, colon);
    port_str = endpoint.substr(colon + 1);
  }
  if (port_str.empty()) return false;
  unsigned long value = 0;
  for (const char c : port_str) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<unsigned long>(c - '0');
    if (value > 65535) return false;
  }
  port = static_cast<std::uint16_t>(value);
  return true;
}

[[nodiscard]] bool fill_unix_addr(const std::string& path, sockaddr_un& addr) {
  if (path.size() + 1 > sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

int listen_endpoint(const std::string& endpoint) {
  if (is_unix_endpoint(endpoint)) {
    sockaddr_un addr{};
    if (!fill_unix_addr(endpoint, addr)) {
      errno = ENAMETOOLONG;
      return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    ::unlink(endpoint.c_str());  // stale socket from a dead coordinator
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, 64) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      return -1;
    }
    return set_cloexec(fd);
  }
  std::string host;
  std::uint16_t port = 0;
  if (!split_host_port(endpoint, host, port)) {
    errno = EINVAL;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return -1;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return set_cloexec(fd);
}

int connect_endpoint(const std::string& endpoint) {
  if (is_unix_endpoint(endpoint)) {
    sockaddr_un addr{};
    if (!fill_unix_addr(endpoint, addr)) {
      errno = ENAMETOOLONG;
      return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
        0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      return -1;
    }
    return set_cloexec(fd);
  }
  std::string host;
  std::uint16_t port = 0;
  if (!split_host_port(endpoint, host, port)) {
    errno = EINVAL;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return set_cloexec(fd);
}

int accept_connection(int listen_fd, int timeout_ms, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  const int ready = wait_readable(listen_fd, timeout_ms);
  if (ready == 0) {
    if (timed_out != nullptr) *timed_out = true;
    return -1;
  }
  if (ready < 0) return -1;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return set_cloexec(fd);
    if (errno != EINTR) return -1;
  }
}

}  // namespace dualrad::serve
