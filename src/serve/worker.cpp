#include "serve/worker.hpp"

#include <unistd.h>

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "campaign/engine.hpp"
#include "campaign/export.hpp"
#include "campaign/jsonl.hpp"
#include "core/rng.hpp"
#include "serve/faultline.hpp"
#include "serve/wire.hpp"

namespace dualrad::serve {

namespace jsonl = campaign::jsonl;

namespace {

/// Splice row fields into a typed wire message: take the canonical JSONL row
/// and graft `"type":"commit","unit":N` onto the front of the object, so the
/// server can hand the payload straight to the canonical row parser.
[[nodiscard]] std::string commit_payload(std::uint64_t unit,
                                         const campaign::TrialRow& row) {
  std::string json = campaign::trials_to_jsonl({row});
  json.pop_back();  // trailing newline
  return "{\"type\":\"commit\",\"unit\":" + std::to_string(unit) + "," +
         json.substr(1);
}

[[nodiscard]] std::string telemetry_payload(const campaign::TelemetryRow& row) {
  std::string json = campaign::telemetry_to_jsonl({row});
  json.pop_back();
  return "{\"type\":\"telemetry\"," + json.substr(1);
}

void sleep_checking_stop(std::chrono::milliseconds total,
                         const std::atomic<bool>* stop) {
  using namespace std::chrono;
  auto remaining = total;
  while (remaining.count() > 0) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
    const auto chunk = std::min<milliseconds>(remaining, milliseconds(50));
    // Chunked cooperative wait; callers pass bounded, jittered delays
    // (reconnect_backoff_delay / poll). lint: backoff-ok
    std::this_thread::sleep_for(chunk);
    remaining -= chunk;
  }
}

/// FNV-1a over the worker id, to key its private jitter stream.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

constexpr std::uint64_t kBackoffDomain = 0xB0FF0E55ull;

/// One logical session with the coordinator, surviving reconnects. request()
/// is at-least-once: a dropped connection mid-request reconnects (fresh
/// hello handshake under the same worker id) and resends the same payload —
/// which for commits is exactly the retransmit-unacked behaviour the
/// coordinator's dedup expects.
class Session {
 public:
  Session(const std::function<int()>& connect, const WorkerOptions& options,
          WorkerStats& stats)
      : connect_(connect), options_(options), stats_(stats) {
    worker_id_ = options.worker_id;
  }

  ~Session() { drop(); }

  [[nodiscard]] const std::string& worker_id() const { return worker_id_; }

  [[nodiscard]] bool stop_requested() const {
    return options_.stop != nullptr &&
           options_.stop->load(std::memory_order_relaxed);
  }

  /// Send `payload` and return its reply; nullopt only on stop request.
  /// Throws std::runtime_error when the reconnect window is exhausted.
  [[nodiscard]] std::optional<std::string> request(const std::string& payload) {
    for (;;) {
      if (stop_requested()) return std::nullopt;
      if (!ensure_connected()) return std::nullopt;
      if (!send_frame(fd_, payload)) {
        drop();
        continue;
      }
      bool timed_out = false;
      std::optional<std::string> reply =
          recv_frame(fd_, reader_, options_.reply_timeout_ms, &timed_out);
      if (!reply.has_value()) {
        if (reader_.corrupt() && options_.log) {
          // Reconnect-only recovery: the drop() below discards the poisoned
          // reader with the connection (wire.hpp FrameReader contract).
          options_.log("[worker " + worker_id_ + "] dropping connection: " +
                       reader_.corrupt_reason());
        }
        drop();
        continue;
      }
      return reply;
    }
  }

  /// Best-effort one-way send (telemetry): one reconnect attempt, then give
  /// up silently — telemetry is advisory and has no delivery contract.
  void send_oneway(const std::string& payload) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (stop_requested() || !ensure_connected()) return;
      if (send_frame(fd_, payload)) return;
      drop();
    }
  }

 private:
  void drop() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    reader_ = FrameReader{};
  }

  /// Connect + hello handshake; false only on stop request. A fresh
  /// reconnect window opens each time we enter the disconnected state, and
  /// retries back off exponentially (bounded, deterministically jittered —
  /// reconnect_backoff_delay) instead of hammering a dead endpoint at a
  /// fixed cadence.
  [[nodiscard]] bool ensure_connected() {
    if (fd_ >= 0) return true;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<std::int64_t>(
            options_.reconnect_window_secs * 1e6));
    for (std::uint64_t attempt = 0;; ++attempt) {
      if (stop_requested()) return false;
      const int fd = connect_();
      if (fd >= 0 && handshake(fd)) {
        fd_ = fd;
        if (connected_once_) ++stats_.reconnects;
        connected_once_ = true;
        return true;
      }
      if (fd >= 0) ::close(fd);
      if (std::chrono::steady_clock::now() >= deadline) {
        throw std::runtime_error(
            "dualrad: worker lost the coordinator (reconnect window "
            "exhausted)");
      }
      sleep_checking_stop(
          reconnect_backoff_delay(options_, worker_id_, attempt,
                                  lifetime_attempts_++),
          options_.stop);
    }
  }

  [[nodiscard]] bool handshake(int fd) {
    reader_ = FrameReader{};
    const std::string hello =
        "{\"type\":\"hello\",\"worker\":\"" + worker_id_ + "\"}";
    if (!send_frame(fd, hello)) return false;
    bool timed_out = false;
    const std::optional<std::string> reply =
        recv_frame(fd, reader_, options_.reply_timeout_ms, &timed_out);
    if (!reply.has_value()) return false;
    if (jsonl::field(*reply, "type") != "welcome") return false;
    worker_id_ = std::string(jsonl::field(*reply, "worker"));
    return true;
  }

  const std::function<int()>& connect_;
  const WorkerOptions& options_;
  WorkerStats& stats_;
  std::string worker_id_;
  int fd_ = -1;
  FrameReader reader_;
  bool connected_once_ = false;
  std::uint64_t lifetime_attempts_ = 0;
};

}  // namespace

std::chrono::milliseconds reconnect_backoff_delay(
    const WorkerOptions& options, std::string_view worker_id,
    std::uint64_t episode_attempt, std::uint64_t lifetime_attempt) {
  const auto base = static_cast<double>(options.backoff_base.count());
  const auto cap = static_cast<double>(options.backoff_max.count());
  // Exponent is clamped before the shift so long outages can't overflow.
  const std::uint64_t exp = std::min<std::uint64_t>(episode_attempt, 20);
  const double nominal =
      std::min(cap, base * static_cast<double>(std::uint64_t{1} << exp));
  // Deterministic jitter in [0.5, 1.5): keyed by the worker id and the
  // lifetime attempt count, so a replayed run backs off identically while
  // two workers desynchronize (their ids differ).
  const CounterRng rng(mix_seed(kBackoffDomain, fnv1a64(worker_id)));
  const double jitter =
      0.5 + rng.uniform(static_cast<Round>(lifetime_attempt));
  const double ms = std::min(cap, nominal * jitter);
  return std::chrono::milliseconds(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(ms)));
}

WorkerStats run_worker(const std::function<int()>& connect,
                       const std::vector<campaign::Scenario>& catalogue,
                       const WorkerOptions& options) {
  WorkerStats stats;
  Session session(connect, options, stats);

  std::map<std::string, const campaign::Scenario*, std::less<>> by_name;
  for (const campaign::Scenario& s : catalogue) by_name.emplace(s.name, &s);

  // Executors are cached per (scenario, master seed): network construction
  // dominates short trials, and every trial of a unit — and usually many
  // units — shares one.
  std::map<std::pair<std::string, std::uint64_t>, campaign::TrialExecutor>
      executors;

  const auto log = [&](const std::string& line) {
    if (options.log) options.log("[worker " + session.worker_id() + "] " + line);
  };

  for (;;) {
    if (session.stop_requested()) {
      stats.stopped = true;
      break;
    }
    const std::optional<std::string> reply = session.request(
        "{\"type\":\"lease\",\"worker\":\"" + session.worker_id() + "\"}");
    if (!reply.has_value()) {
      stats.stopped = true;
      break;
    }
    const std::string_view type = jsonl::field(*reply, "type");
    if (type == "done") break;
    if (type == "wait" || type == "idle") {
      sleep_checking_stop(options.poll, options.stop);
      continue;
    }
    if (type == "error") {
      throw std::runtime_error("dualrad: coordinator rejected lease: " +
                               std::string(jsonl::field(*reply, "message")));
    }
    DUALRAD_REQUIRE(type == "unit",
                    "unexpected lease reply type: " + std::string(type));

    const std::uint64_t unit = jsonl::to_u64(jsonl::field(*reply, "unit"));
    const std::string scenario_name(jsonl::field(*reply, "scenario"));
    const std::uint32_t trial_begin = static_cast<std::uint32_t>(
        jsonl::to_u64(jsonl::field(*reply, "trial_begin")));
    const std::uint32_t trial_end = static_cast<std::uint32_t>(
        jsonl::to_u64(jsonl::field(*reply, "trial_end")));
    const std::uint64_t master_seed =
        jsonl::to_u64(jsonl::field(*reply, "master_seed"));
    const unsigned threads = options.threads_per_trial != 0
                                 ? options.threads_per_trial
                                 : static_cast<unsigned>(jsonl::to_u64(
                                       jsonl::field(*reply, "threads_per_trial")));
    const bool telemetry =
        jsonl::field(*reply, "collect_telemetry") == "true";

    const auto scenario_it = by_name.find(scenario_name);
    DUALRAD_REQUIRE(scenario_it != by_name.end(),
                    "coordinator dispatched a scenario this worker does not "
                    "know: " + scenario_name);
    const auto exec_it =
        executors.try_emplace(std::make_pair(scenario_name, master_seed),
                              *scenario_it->second, master_seed)
            .first;
    const campaign::TrialExecutor& executor = exec_it->second;

    log("unit " + std::to_string(unit) + ": " + scenario_name + " trials [" +
        std::to_string(trial_begin) + "," + std::to_string(trial_end) + ")");

    campaign::TrialOptions trial_options;
    trial_options.threads_per_trial = threads;
    trial_options.collect_telemetry = telemetry;
    bool unit_complete = true;
    for (std::uint32_t trial = trial_begin; trial < trial_end; ++trial) {
      if (session.stop_requested()) {
        stats.stopped = true;
        unit_complete = false;
        break;
      }
      const campaign::TrialExecutor::Outcome outcome =
          executor.run(trial, trial_options);
      // Lifecycle fault point: crash or stall BEFORE the commit, so the
      // injected failure exercises the at-least-once window (the trial ran
      // but its row never reached the coordinator).
      if (FaultInjector* injector = fault_injector()) {
        int stall_ms = 0;
        switch (injector->next_lifecycle(&stall_ms)) {
          case LifecycleFault::None:
            break;
          case LifecycleFault::Crash:
            log("injected crash before commit of " + scenario_name + "#" +
                std::to_string(trial));
            if (options.crash) {
              options.crash();
            }
            throw InjectedCrash();
          case LifecycleFault::Stall:
            log("injected stall (" + std::to_string(stall_ms) +
                " ms) before commit of " + scenario_name + "#" +
                std::to_string(trial));
            sleep_checking_stop(std::chrono::milliseconds(stall_ms),
                                options.stop);
            break;
        }
      }
      if (telemetry) session.send_oneway(telemetry_payload(outcome.telemetry));
      const std::optional<std::string> ack =
          session.request(commit_payload(unit, outcome.row));
      if (!ack.has_value()) {
        stats.stopped = true;
        unit_complete = false;
        break;
      }
      const std::string_view ack_type = jsonl::field(*ack, "type");
      if (ack_type == "error") {
        throw std::runtime_error("dualrad: commit rejected: " +
                                 std::string(jsonl::field(*ack, "message")));
      }
      DUALRAD_REQUIRE(ack_type == "ack",
                      "unexpected commit reply type: " + std::string(ack_type));
      if (jsonl::field(*ack, "dup") == "1") ++stats.duplicates;
      ++stats.trials;
    }
    if (!unit_complete) break;
    ++stats.units;
  }

  stats.worker_id = session.worker_id();
  return stats;
}

}  // namespace dualrad::serve
