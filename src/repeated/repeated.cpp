#include "repeated/repeated.hpp"

#include <map>
#include <numeric>

#include "algorithms/scheduled.hpp"
#include "adversary/basic_adversaries.hpp"
#include "graph/algorithms.hpp"

namespace dualrad::repeated {

LearnedTopology estimate_reliable_links(const DualGraph& net,
                                        const std::vector<Trace>& traces,
                                        std::size_t min_samples) {
  // For each observed (sender, target) pair over G' edges, count delivery
  // opportunities (sender transmitted) vs actual deliveries.
  std::map<std::pair<NodeId, NodeId>, LinkEstimate> links;
  for (const Trace& trace : traces) {
    DUALRAD_REQUIRE(trace.level == TraceLevel::Full,
                    "learning requires full traces");
    for (const auto& record : trace.rounds) {
      for (const auto& sender : record.senders) {
        for (NodeId v : net.g_prime().out_neighbors(sender.node)) {
          auto& est = links[{sender.node, v}];
          est.from = sender.node;
          est.to = v;
          ++est.sends;
        }
        for (NodeId v : sender.reached) {
          ++links[{sender.node, v}].deliveries;
        }
      }
    }
  }

  LearnedTopology learned;
  learned.estimated_reliable = Graph(net.node_count());
  learned.sound = true;
  for (auto& [key, est] : links) {
    learned.estimates.push_back(est);
    if (est.sends >= min_samples && est.deliveries == est.sends) {
      learned.estimated_reliable.add_edge(est.from, est.to);
      if (!net.g().has_edge(est.from, est.to)) learned.sound = false;
    }
  }
  learned.usable =
      graphalg::all_reachable(learned.estimated_reliable, net.source());
  return learned;
}

Round RepeatedReport::naive_total() const {
  return std::accumulate(naive_rounds.begin(), naive_rounds.end(), Round{0});
}

Round RepeatedReport::learned_total() const {
  return std::accumulate(learned_rounds.begin(), learned_rounds.end(),
                         Round{0});
}

RepeatedReport run_repeated_broadcast(const DualGraph& net,
                                      const ProcessFactory& algorithm,
                                      Adversary& adversary,
                                      const RepeatedOptions& options) {
  DUALRAD_REQUIRE(options.broadcasts >= 1, "need at least one broadcast");
  DUALRAD_REQUIRE(options.training >= 1 &&
                      options.training <= options.broadcasts,
                  "training count out of range");
  RepeatedReport report;

  // Naive strategy: run the oblivious algorithm every time.
  for (int b = 0; b < options.broadcasts; ++b) {
    SimConfig config = options.config;
    config.seed = mix_seed(options.config.seed, 0x6E00 + static_cast<std::uint64_t>(b));
    const SimResult result = run_broadcast(net, algorithm, adversary, config);
    report.naive_rounds.push_back(result.completed ? result.completion_round
                                                   : kNever);
    report.all_completed = report.all_completed && result.completed;
  }

  // Learned strategy: training broadcasts with full traces, then TDMA.
  // The proc mapping must be stable across broadcasts for schedules over
  // process ids to make sense; pin the identity mapping.
  std::vector<ProcessId> identity(static_cast<std::size_t>(net.node_count()));
  std::iota(identity.begin(), identity.end(), 0);
  std::vector<Trace> traces;
  for (int b = 0; b < options.training; ++b) {
    SimConfig config = options.config;
    config.seed = mix_seed(options.config.seed, 0x6C00 + static_cast<std::uint64_t>(b));
    config.trace = TraceLevel::Full;
    FixedAssignmentAdversary pinned(identity, adversary);
    const SimResult result = run_broadcast(net, algorithm, pinned, config);
    report.learned_rounds.push_back(result.completed ? result.completion_round
                                                     : kNever);
    report.all_completed = report.all_completed && result.completed;
    traces.push_back(result.trace);
  }

  report.topology = estimate_reliable_links(net, traces, options.min_samples);

  // Schedule over the learned graph; if the learned graph is unusable
  // (source cannot reach everyone over presumed-reliable links), keep using
  // the oblivious algorithm — a deployment would keep training.
  ProcessFactory follow_up = algorithm;
  if (report.topology.usable) {
    const DualGraph learned_net(report.topology.estimated_reliable,
                                net.g_prime(), net.source());
    const auto schedule =
        broadcastability::greedy_oracle_schedule(learned_net);
    report.tdma_period = schedule.rounds();
    // Node ids == process ids under the pinned identity mapping.
    std::vector<ProcessId> slots(schedule.senders.begin(),
                                 schedule.senders.end());
    follow_up = make_scheduled_factory(net.node_count(), std::move(slots));
  }
  for (int b = options.training; b < options.broadcasts; ++b) {
    SimConfig config = options.config;
    config.seed = mix_seed(options.config.seed, 0x6C00 + static_cast<std::uint64_t>(b));
    FixedAssignmentAdversary pinned(identity, adversary);
    const SimResult result = run_broadcast(net, follow_up, pinned, config);
    report.learned_rounds.push_back(result.completed ? result.completion_round
                                                     : kNever);
    report.all_completed = report.all_completed && result.completed;
  }
  return report;
}

}  // namespace dualrad::repeated
