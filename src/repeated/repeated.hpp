#pragma once

#include <vector>

#include "core/adversary.hpp"
#include "core/process.hpp"
#include "core/simulator.hpp"
#include "core/trace.hpp"
#include "graph/broadcastability.hpp"
#include "graph/dual_graph.hpp"

/// \file repeated.hpp
/// Repeated broadcast with topology learning — the paper's stated future
/// work ("we hope to improve long-term efficiency by learning the topology
/// of the graph", Section 8).
///
/// The pipeline:
///   1. run a few broadcasts with a topology-oblivious algorithm, recording
///      full traces;
///   2. estimate the reliable subgraph ETX-style: an observed link whose
///      delivery never failed over enough samples is presumed reliable
///      (exactly the link-quality-assessment practice the introduction
///      cites [13]);
///   3. compute a greedy single-sender TDMA schedule on the learned graph
///      and run all subsequent broadcasts on it — one sender per round means
///      no collisions, so the schedule is adversary-proof *if* the learned
///      links really are reliable. A mislearned link (an unreliable link the
///      adversary delivered consistently during training) surfaces as a
///      failed scheduled broadcast, which the driver reports: the exact
///      gray-zone trap ETX deployments face.

namespace dualrad::repeated {

struct LinkEstimate {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::size_t deliveries = 0;
  std::size_t sends = 0;  ///< sends by `from` (== opportunities to deliver)
};

struct LearnedTopology {
  /// Links observed to deliver on every opportunity, with at least
  /// `min_samples` opportunities.
  Graph estimated_reliable;
  std::vector<LinkEstimate> estimates{};
  /// True iff the estimate is a subgraph of the true reliable graph (for
  /// evaluation only — a deployment cannot know this).
  bool sound = false;
  /// True iff the estimate preserves source-reachability.
  bool usable = false;
};

/// Estimate reliable links from full execution traces (ETX-style).
[[nodiscard]] LearnedTopology estimate_reliable_links(
    const DualGraph& net, const std::vector<Trace>& traces,
    std::size_t min_samples = 3);

struct RepeatedOptions {
  int broadcasts = 10;       ///< total broadcasts to perform
  int training = 3;          ///< broadcasts run with the oblivious algorithm
  std::size_t min_samples = 3;
  SimConfig config{};        ///< rule/start/max_rounds for every broadcast
};

struct RepeatedReport {
  /// Rounds per broadcast under the naive strategy (re-run the algorithm).
  std::vector<Round> naive_rounds{};
  /// Rounds per broadcast under learn-then-schedule (training broadcasts
  /// use the algorithm; later ones use the TDMA schedule).
  std::vector<Round> learned_rounds{};
  Round tdma_period = 0;
  LearnedTopology topology{};
  bool all_completed = true;

  [[nodiscard]] Round naive_total() const;
  [[nodiscard]] Round learned_total() const;
};

/// Run the experiment: `broadcasts` rounds of naive vs learn-then-schedule,
/// against the same adversary. The adversary is reset per execution via
/// on_execution_start.
[[nodiscard]] RepeatedReport run_repeated_broadcast(
    const DualGraph& net, const ProcessFactory& algorithm,
    Adversary& adversary, const RepeatedOptions& options);

}  // namespace dualrad::repeated
