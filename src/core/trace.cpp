#include "core/trace.hpp"

/// \file trace.cpp
/// TraceLevel::Compressed codec. LEB128 varints; signed fields (origin can
/// be -1, reach lists are unsorted) go through zigzag. Node id lists that
/// the engines emit in ascending order (senders, reception touchers) are
/// stored as unsigned deltas off the previous id. Silence receptions are not
/// encoded at all — decode initializes every node to silence — which is
/// where the compression wins: at sparse densities almost every node hears
/// silence almost every round.

namespace dualrad {

namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

[[nodiscard]] std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

[[nodiscard]] std::uint64_t get_varint(const std::uint8_t*& p,
                                       const std::uint8_t* end) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (true) {
    DUALRAD_REQUIRE(p != end, "truncated compressed trace");
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    DUALRAD_REQUIRE(shift < 64, "malformed varint in compressed trace");
  }
}

void put_message(std::vector<std::uint8_t>& out, const Message& m) {
  put_varint(out, zigzag(m.token));
  put_varint(out, zigzag(m.origin));
  put_varint(out, zigzag(m.round_tag));
  put_varint(out, m.payload);
}

[[nodiscard]] Message get_message(const std::uint8_t*& p,
                                  const std::uint8_t* end) {
  Message m;
  m.token = static_cast<TokenId>(unzigzag(get_varint(p, end)));
  m.origin = static_cast<ProcessId>(unzigzag(get_varint(p, end)));
  m.round_tag = static_cast<Round>(unzigzag(get_varint(p, end)));
  m.payload = get_varint(p, end);
  return m;
}

}  // namespace

void Trace::append_compressed(const RoundRecord& record) {
  blob_offsets.push_back(blob.size());
  put_varint(blob, static_cast<std::uint64_t>(record.round));

  put_varint(blob, record.senders.size());
  std::int64_t prev = 0;
  for (const SenderRecord& s : record.senders) {
    // Senders are emitted in ascending node order by both engines.
    put_varint(blob, static_cast<std::uint64_t>(s.node - prev));
    prev = s.node;
    put_message(blob, s.message);
    put_varint(blob, s.reached.size());
    std::int64_t rprev = 0;
    for (const NodeId v : s.reached) {
      put_varint(blob, zigzag(v - rprev));
      rprev = v;
    }
  }

  std::uint64_t touched = 0;
  for (const Reception& r : record.receptions) {
    if (!r.is_silence()) ++touched;
  }
  put_varint(blob, touched);
  prev = 0;
  for (NodeId v = 0; v < static_cast<NodeId>(record.receptions.size()); ++v) {
    const Reception& r = record.receptions[static_cast<std::size_t>(v)];
    if (r.is_silence()) continue;
    put_varint(blob, static_cast<std::uint64_t>(v - prev));
    prev = v;
    blob.push_back(static_cast<std::uint8_t>(r.kind));
    if (r.is_message()) put_message(blob, *r.message);
  }
}

void Trace::decode_compressed(std::size_t index, NodeId n,
                              RoundRecord& out) const {
  DUALRAD_REQUIRE(index < blob_offsets.size(),
                  "compressed round index out of range");
  const std::uint8_t* p = blob.data() + blob_offsets[index];
  const std::uint8_t* const end =
      index + 1 < blob_offsets.size() ? blob.data() + blob_offsets[index + 1]
                                      : blob.data() + blob.size();

  out.round = static_cast<Round>(get_varint(p, end));

  const std::uint64_t sender_count = get_varint(p, end);
  out.senders.clear();
  out.senders.resize(sender_count);
  std::int64_t prev = 0;
  for (SenderRecord& s : out.senders) {
    prev += static_cast<std::int64_t>(get_varint(p, end));
    s.node = static_cast<NodeId>(prev);
    s.message = get_message(p, end);
    const std::uint64_t reach_count = get_varint(p, end);
    s.reached.clear();
    s.reached.reserve(reach_count);
    std::int64_t rprev = 0;
    for (std::uint64_t i = 0; i < reach_count; ++i) {
      rprev += unzigzag(get_varint(p, end));
      s.reached.push_back(static_cast<NodeId>(rprev));
    }
  }

  out.receptions.assign(static_cast<std::size_t>(n), Reception::silence());
  const std::uint64_t touched = get_varint(p, end);
  prev = 0;
  for (std::uint64_t i = 0; i < touched; ++i) {
    prev += static_cast<std::int64_t>(get_varint(p, end));
    DUALRAD_REQUIRE(prev >= 0 && prev < n,
                    "compressed trace reception out of range");
    DUALRAD_REQUIRE(p != end, "truncated compressed trace");
    const auto kind = static_cast<ReceptionKind>(*p++);
    Reception& r = out.receptions[static_cast<std::size_t>(prev)];
    if (kind == ReceptionKind::Message) {
      r = Reception::of(get_message(p, end));
    } else {
      DUALRAD_REQUIRE(kind == ReceptionKind::Collision,
                      "malformed reception kind in compressed trace");
      r = Reception::collision();
    }
  }
  DUALRAD_REQUIRE(p == end, "trailing bytes in compressed trace round");
}

}  // namespace dualrad
