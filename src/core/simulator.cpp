#include "core/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>

#include "byz/runtime.hpp"
#include "core/rng.hpp"
#include "graph/graph.hpp"
#include "obs/telemetry.hpp"

namespace dualrad {

/// The sparse CSR round engine.
///
/// The dense reference engine (core/reference_engine.cpp) spends O(n) per
/// round scanning every node four times. This engine makes a round cost
/// O(#polled senders + #deliveries) instead:
///
///  * **CSR adjacency snapshots** — message propagation walks the network's
///    frozen `g_csr()` rows (the builder's insertion order, so arrival order
///    is bit-identical to the reference); `g_prime_csr()` backs the
///    G'-membership validation of adversary reach choices.
///  * **Epoch-stamped arrival slots** — one packed slot per node: the
///    arrival round, a saturating arrival count, and the first arriving
///    sender (whose message is sent_msg[sender], so deposits copy no
///    Message). A `touched` list enumerates exactly the nodes reached this
///    round, so nothing is ever cleared; a slot is stale iff its round
///    field is old. Nodes with >= 2 arrivals spill the full arrival list
///    (needed only for CR4 resolution) into a per-node vector.
///  * **Calendar send scheduling** — instead of polling every awake process
///    every round, the engine keeps a bucket-ring calendar keyed by
///    Process::next_send_round. A process is polled only at rounds its hint
///    admits a send; the default hint ("maybe next round") degenerates to
///    per-round polling, so arbitrary processes remain exactly as observable
///    as under the reference engine. Any state transition (activation or a
///    non-silence reception — or any reception, for processes that do not
///    declare silence_transparent) reschedules the process.
///  * **Silence elision** — processes that declare silence_transparent()
///    receive on_receive only for non-silence receptions; everyone else is
///    kept on the reference engine's per-round delivery via a `noisy` list.
///  * **Sharded parallel round kernel** — with SimConfig::threads > 1, the
///    heavy phases of a round (arrival deposits; reception + delivery) fan
///    out over a worker pool. Nodes are partitioned into contiguous shards;
///    each worker deposits into and delivers to only its own shard, so all
///    per-node state writes are disjoint, and everything cross-shard
///    (calendar replans, awake-list growth, token counts) is collected into
///    per-shard buffers and merged serially in shard order. Every
///    observable is per-node independent, so the SimResult is bit-identical
///    for any thread count — tests/test_engine_equivalence.cpp proves it.
///    Rounds with little work skip the pool and run inline (the partition
///    does not change results, so the cutoff is pure scheduling).
///
/// Everything observable — process call sequences modulo elided silent
/// no-ops, adversary call order (one sealed ReachSink batch per round with
/// senders ascending; CR4 resolutions in ascending node order, exactly the
/// reference's node scan; on_round_end with the round's ascending coverage
/// delta), RNG streams, SimResult including full traces — is bit-identical
/// to the reference engine; tests/test_engine_equivalence.cpp enforces this
/// across random small executions and the whole builtin campaign grid.

namespace {

/// Bucket-ring calendar of planned next-send rounds. planned_ is
/// authoritative; bucket entries are hints and may be stale (a node is
/// consulted at round r only if planned_[node] == r). Capacity grows so
/// that every live entry's round is < current + buckets (one ring lap),
/// which guarantees a bucket holds only current-round or stale entries
/// whenever it is visited.
class SendCalendar {
 public:
  explicit SendCalendar(std::size_t n)
      : planned_(n, kNever), buckets_(kInitialBuckets) {}

  void plan(NodeId v, Round r, Round now) {
    auto& slot = planned_[static_cast<std::size_t>(v)];
    if (r == kNever) {
      slot = kNever;
      return;
    }
    // A hint at or before the current round would land in an
    // already-drained bucket and silently never fire (or wrap grow()).
    DUALRAD_CHECK(r > now, "next_send_round hinted a non-future round");
    if (slot == r) return;  // live entry already queued for r
    slot = r;
    if (static_cast<std::size_t>(r - now) >= buckets_.size()) grow(r, now);
    buckets_[static_cast<std::size_t>(r) & (buckets_.size() - 1)].push_back(v);
  }

  /// Nodes whose plan names `round`, deduplicated; the bucket is drained.
  /// Returns the number of bucket entries scanned (live + stale) — the
  /// telemetry layer's calendar-pressure counter.
  std::size_t take_due(Round round, std::vector<NodeId>& out) {
    auto& bucket =
        buckets_[static_cast<std::size_t>(round) & (buckets_.size() - 1)];
    const std::size_t scanned = bucket.size();
    for (NodeId v : bucket) {
      if (planned_[static_cast<std::size_t>(v)] == round) {
        out.push_back(v);
        // A duplicate entry for the same round must not poll twice; mark
        // the plan consumed (the poll loop replans from round + 1).
        planned_[static_cast<std::size_t>(v)] = kNever;
      }
    }
    bucket.clear();
    return scanned;
  }

 private:
  static constexpr std::size_t kInitialBuckets = 64;

  void grow(Round r, Round now) {
    std::size_t size = buckets_.size();
    while (static_cast<std::size_t>(r - now) >= size) size *= 2;
    buckets_.assign(size, {});
    for (std::size_t v = 0; v < planned_.size(); ++v) {
      if (planned_[v] != kNever) {
        buckets_[static_cast<std::size_t>(planned_[v]) & (size - 1)].push_back(
            static_cast<NodeId>(v));
      }
    }
  }

  std::vector<Round> planned_;
  std::vector<std::vector<NodeId>> buckets_;
};

/// Persistent pool for the sharded round kernel: `run(task)` executes
/// task(w) for every shard index w in [0, shards), shard 0 on the calling
/// thread, and returns once all shards finished. Workers sleep on a futex
/// (C++20 atomic wait) between dispatches, so idle phases (polling, the
/// adversary callback) cost nothing. Exceptions thrown inside a shard are
/// captured and rethrown on the calling thread, lowest shard index first.
class ShardPool {
 public:
  explicit ShardPool(unsigned shards)
      : shards_(shards), errors_(shards) {
    threads_.reserve(shards_ - 1);
    for (unsigned w = 1; w < shards_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~ShardPool() {
    stop_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
    generation_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  template <class F>
  void run(F&& task) {
    using Fn = std::remove_reference_t<F>;
    fn_ = [](void* ctx, unsigned w) { (*static_cast<Fn*>(ctx))(w); };
    ctx_ = const_cast<void*>(static_cast<const void*>(std::addressof(task)));
    dispatch();
  }

 private:
  void dispatch() {
    for (auto& e : errors_) e = nullptr;
    pending_.store(shards_ - 1, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
    generation_.notify_all();
    invoke(0);
    unsigned left;
    while ((left = pending_.load(std::memory_order_acquire)) != 0) {
      pending_.wait(left, std::memory_order_acquire);
    }
    for (auto& e : errors_) {
      if (e) std::rethrow_exception(e);
    }
  }

  void invoke(unsigned w) {
    try {
      fn_(ctx_, w);
    } catch (...) {
      errors_[w] = std::current_exception();
    }
  }

  void worker_loop(unsigned w) {
    // Baseline is the construction-time generation: a worker that starts
    // after the first dispatch must still see it as new, not adopt it.
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t gen;
      while ((gen = generation_.load(std::memory_order_acquire)) == seen) {
        generation_.wait(seen, std::memory_order_acquire);
      }
      seen = gen;
      if (stop_.load(std::memory_order_acquire)) return;
      invoke(w);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        pending_.notify_all();
      }
    }
  }

  unsigned shards_;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<unsigned> pending_{0};
  std::atomic<bool> stop_{false};
  void (*fn_)(void*, unsigned) = nullptr;
  void* ctx_ = nullptr;
};

}  // namespace

Simulator::Simulator(const DualGraph& net, ProcessFactory factory,
                     Adversary& adversary, SimConfig config)
    : net_(net),
      factory_(std::move(factory)),
      adversary_(adversary),
      config_(config) {
  DUALRAD_REQUIRE(config_.max_rounds >= 1, "max_rounds must be positive");
  DUALRAD_REQUIRE(static_cast<bool>(factory_), "process factory must be set");
  DUALRAD_REQUIRE(config_.trace != TraceLevel::Bounded ||
                      config_.trace_window >= 1,
                  "bounded trace needs a positive window");
}

SimResult run_broadcast(const DualGraph& net, const ProcessFactory& factory,
                        Adversary& adversary, const SimConfig& config) {
  Simulator sim(net, factory, adversary, config);
  return sim.run();
}

void validate_token_sources(NodeId n, const std::vector<NodeId>& sources) {
  DUALRAD_REQUIRE(
      sources.size() < static_cast<std::size_t>(byz::kForgedTokenBase),
      "too many token sources: legitimate token ids would reach the "
      "forged-token band (byz::kForgedTokenBase)");
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const NodeId s = sources[i];
    DUALRAD_REQUIRE(s >= 0 && s < n,
                    "token source out of range: token_sources[" +
                        std::to_string(i) + "] = " + std::to_string(s) +
                        " is not a node of the " + std::to_string(n) +
                        "-node network");
    DUALRAD_REQUIRE(!seen[static_cast<std::size_t>(s)],
                    "token sources must be distinct: node " +
                        std::to_string(s) + " appears again at token_sources[" +
                        std::to_string(i) + "]");
    seen[static_cast<std::size_t>(s)] = true;
  }
}

SimResult Simulator::run() {
  const NodeId n = net_.node_count();
  const auto un = static_cast<std::size_t>(n);

  // Flat adjacency snapshots for the hot path, frozen once per network (not
  // per execution). csr_g drives propagation; csr_gp backs the
  // G'-membership validation of adversary reach choices.
  const CsrGraph& csr_g = net_.g_csr();
  const CsrGraph& csr_gp = net_.g_prime_csr();

  adversary_.on_execution_start(net_);

  SimResult result;
  result.process_of_node = adversary_.assign_processes(net_);
  DUALRAD_CHECK(result.process_of_node.size() == un,
                "proc mapping has wrong size");
  {
    std::vector<bool> seen(un, false);
    for (ProcessId p : result.process_of_node) {
      DUALRAD_CHECK(p >= 0 && p < n && !seen[static_cast<std::size_t>(p)],
                    "proc mapping must be a permutation");
      seen[static_cast<std::size_t>(p)] = true;
    }
  }

  // Instantiate processes, indexed by node for the rest of the run.
  std::vector<std::unique_ptr<Process>> proc_at(un);
  for (NodeId v = 0; v < n; ++v) {
    const ProcessId pid = result.process_of_node[static_cast<std::size_t>(v)];
    proc_at[static_cast<std::size_t>(v)] =
        factory_(pid, n, mix_seed(config_.seed, static_cast<std::uint64_t>(pid)));
    DUALRAD_CHECK(proc_at[static_cast<std::size_t>(v)] != nullptr,
                  "factory returned null process");
    DUALRAD_CHECK(proc_at[static_cast<std::size_t>(v)]->id() == pid,
                  "factory produced process with wrong id");
  }

  // Token sources: the classic problem injects kBroadcastToken at the
  // network source; multi-message executions inject token i+1 at
  // token_sources[i] (all distinct).
  std::vector<NodeId> sources = config_.token_sources;
  if (sources.empty()) sources.push_back(net_.source());
  const auto k = sources.size();
  validate_token_sources(n, sources);

  // Byzantine node faults (byz/runtime.hpp): constructed after the adversary
  // hooks above so an adaptive adversary's on_execution_start reset is
  // already applied when the runtime syncs the plan's baseline.
  std::optional<byz::ByzRuntime> byzrt;
  if (config_.byzantine != nullptr) {
    byzrt.emplace(*config_.byzantine, result.process_of_node);
  }
  std::vector<NodeId> byz_removed;
  std::vector<NodeId> byz_added;

  // Per-node flags are byte arrays, not vector<bool>: the parallel kernel's
  // workers write disjoint indices concurrently.
  NodeFlags awake(un, 0);
  // covered[v]: the process at v holds at least one token (what the
  // adversary view exposes); holds[t*n + v]: it holds token id t+1.
  NodeFlags covered(un, 0);
  NodeFlags holds(k * un, 0);
  result.token_first.assign(k, std::vector<Round>(un, kNever));
  // covered_delta: nodes first covered by the previous round's deliveries
  // (the AdversaryView::newly_covered span), ascending; next_delta collects
  // the running round's additions from the shard merge.
  std::vector<NodeId> covered_delta;
  std::vector<NodeId> next_delta;

  // Scheduling state. `transparent[v]` caches silence_transparent() of the
  // process at v (queried at activation); non-transparent awake nodes are
  // listed in `noisy` and get the reference engine's per-round delivery.
  SendCalendar calendar(un);
  NodeFlags transparent(un, 0);
  std::vector<NodeId> noisy;
  const auto activate_bookkeeping = [&](NodeId v, Round now) {
    const auto uv = static_cast<std::size_t>(v);
    awake[uv] = 1;
    transparent[uv] = proc_at[uv]->silence_transparent() ? 1 : 0;
    if (!transparent[uv]) noisy.push_back(v);
    calendar.plan(v, proc_at[uv]->next_send_round(now + 1), now);
  };

  // Environment input: each token arrives at its source process prior to
  // round 1 (Section 3).
  std::size_t held_count = 0;
  for (std::size_t t = 0; t < k; ++t) {
    const auto src = static_cast<std::size_t>(sources[t]);
    const Message env_msg{/*token=*/static_cast<TokenId>(t + 1),
                          /*origin=*/kInvalidProcess,
                          /*round_tag=*/0, /*payload=*/0};
    covered[src] = 1;
    holds[t * un + src] = 1;
    result.token_first[t][src] = 0;
    ++held_count;
    proc_at[src]->on_activate(0, env_msg);
    activate_bookkeeping(sources[t], 0);
    covered_delta.push_back(sources[t]);
  }
  std::sort(covered_delta.begin(), covered_delta.end());
  if (config_.start == StartRule::Synchronous) {
    for (NodeId v = 0; v < n; ++v) {
      if (awake[static_cast<std::size_t>(v)]) continue;
      proc_at[static_cast<std::size_t>(v)]->on_activate(0, std::nullopt);
      activate_bookkeeping(v, 0);
    }
  }

  result.trace.level = config_.trace;
  const bool full_trace = config_.trace == TraceLevel::Full;
  const bool compressed_trace = config_.trace == TraceLevel::Compressed;
  // Compressed mode builds the identical per-round scratch record and then
  // delta-encodes it (core/trace.cpp) instead of storing it.
  const bool record_trace = full_trace || compressed_trace;
  const bool counted_trace =
      config_.trace == TraceLevel::Counts || record_trace;
  if (config_.trace == TraceLevel::Bounded) {
    result.trace.window = config_.trace_window;
    result.trace.ring_senders.assign(config_.trace_window, 0);
    result.trace.ring_collisions.assign(config_.trace_window, 0);
  }

  // --- Sharded parallel kernel setup. The node space is cut into
  // `shards` contiguous ranges; results are identical for every shard
  // count (including 1), so rounds below the work cutoff simply run the
  // same kernel inline with a single all-covering shard. ---
  const unsigned shards = std::max(
      1u, std::min({config_.threads == 0 ? 1u : config_.threads, 64u,
                    static_cast<unsigned>(un)}));
  std::optional<ShardPool> pool;
  if (shards > 1) pool.emplace(shards);
  // Deposits + deliveries below this run inline: the fan-out/join of a
  // pool dispatch (~ a few microseconds) must be amortized by real work.
  constexpr std::size_t kParallelGrain = 2048;

  struct alignas(64) ShardState {
    std::vector<NodeId> touched;   // nodes with >= 1 arrival this round
    std::vector<NodeId> collided;  // nodes with >= 2 arrivals this round
    std::vector<NodeId> activated_noisy;  // woke up, not silence-transparent
    std::vector<NodeId> newly_covered;    // covered flag rose this round
    std::vector<std::pair<NodeId, Round>> plans;  // deferred calendar.plan
    std::size_t held_delta = 0;
  };
  std::vector<ShardState> shard(shards);
  // shard_bounds(w, active): the node range of shard w when `active` shards
  // participate this round.
  const auto shard_lo = [un](unsigned w, unsigned active) {
    return static_cast<NodeId>(static_cast<std::uint64_t>(un) * w / active);
  };

  // Reusable per-round buffers. The ReachSink is handed to the adversary
  // every round with capacity retained — no per-round reach allocations.
  std::vector<NodeId> due;            // calendar pops, this round
  std::vector<NodeId> senders;        // ascending, as the reference produces
  ReachSink sink;
  std::vector<Message> sent_msg(un);
  NodeFlags is_sender(un, 0);
  // Arrival slot per node: `mark` packs (round << 2) | count with count
  // saturating at 3 (the model only distinguishes 0 / 1 / >= 2), `from` is
  // the first arriving sender (its message is sent_msg[from], so the slot
  // fits one cache line and deposits copy no Message). A slot is live iff
  // its round field equals the current round — nothing is ever cleared.
  struct ArrivalSlot {
    std::uint64_t mark = 0;
    NodeId from = kInvalidNode;
  };
  std::vector<ArrivalSlot> arrival(un);
  std::vector<NodeId> collided;       // merged from shards; CR4 sorts it
  // Full arrival lists, spilled only on collision and only consumed under
  // CR4 (adversary resolution picks among them).
  std::vector<std::vector<Message>> multi(un);
  std::vector<Reception> rec_of(un);  // CR4 collided non-senders only
  const Reception kSilence = Reception::silence();
  senders.reserve(64);
  collided.reserve(64);

  const std::size_t all_held = k * un;
  const bool spill_arrivals = config_.rule == CollisionRule::CR4;

  // Telemetry (obs/telemetry.hpp) is strictly out-of-band: it reads list
  // sizes the loop already computed and samples a monotonic clock, so the
  // SimResult is bit-identical with or without it. Every telemetry statement
  // below — including the clock samples — branches on this null check.
  obs::RoundTelemetry* const telemetry = config_.telemetry;
  if (telemetry) telemetry->begin_execution(n, shards);

  for (Round round = 1; round <= config_.max_rounds; ++round) {
    result.rounds_executed = round;
    if (telemetry) telemetry->begin_round(round);
    std::uint64_t phase_start = telemetry ? obs::monotonic_ns() : 0;
    const auto end_phase = [&](obs::Phase phase) {
      if (telemetry == nullptr) return;
      const std::uint64_t now = obs::monotonic_ns();
      telemetry->add_phase_ns(phase, now - phase_start);
      phase_start = now;
    };

    // --- Poll: only processes whose hint admits a send this round. ---
    due.clear();
    const std::size_t calendar_scanned = calendar.take_due(round, due);
    senders.clear();
    std::size_t deposit_work = 0;  // upper bound on this round's deliveries
    for (const NodeId v : due) {
      const auto uv = static_cast<std::size_t>(v);
      const Action action = proc_at[uv]->next_action(round);
      // Replan immediately; a reception later this round replans again.
      calendar.plan(v, proc_at[uv]->next_send_round(round + 1), round);
      if (!action.send) continue;
      const TokenId tok = action.message.token;
      if (byzrt && byz::ByzRuntime::is_forged(tok)) {
        // Relaying a forged token you actually heard is protocol-legal (that
        // relay is exactly the forgery "win" the audit reports); inventing
        // a forged id out of thin air is not.
        DUALRAD_CHECK(byzrt->may_transmit(v, tok),
                      "process sent a forged token it never received");
      } else {
        DUALRAD_CHECK(tok >= kNoToken && tok <= static_cast<TokenId>(k),
                      "process sent an unknown token id");
        DUALRAD_CHECK(tok == kNoToken ||
                          holds[static_cast<std::size_t>(tok - 1) * un + uv],
                      "process sent a broadcast token without holding it");
      }
      is_sender[uv] = 1;
      sent_msg[uv] = action.message;
      senders.push_back(v);
      deposit_work += 1 + csr_g.out_degree(v);
    }
    // Calendar pops arrive in bucket order; the adversary interface (and
    // stateful adversaries' RNG streams) see senders in ascending node
    // order, exactly like the reference engine's node scan.
    std::sort(senders.begin(), senders.end());
    if (byzrt) {
      // Byzantine behaviors rewrite the sender set before anything observes
      // it: the adversary, propagation, traces, and total_sends all see the
      // post-fault senders, identically in both engines.
      byz_removed.clear();
      byz_added.clear();
      byzrt->rewrite_senders(round, senders, sent_msg, byz_removed, byz_added);
      for (const NodeId v : byz_removed) {
        is_sender[static_cast<std::size_t>(v)] = 0;
        deposit_work -= 1 + csr_g.out_degree(v);
      }
      for (const NodeId v : byz_added) {
        is_sender[static_cast<std::size_t>(v)] = 1;
        deposit_work += 1 + csr_g.out_degree(v);
      }
    }
    result.total_sends += senders.size();
    end_phase(obs::Phase::Poll);

    // Adversary chooses which unreliable links fire.
    AdversaryView view = AdversaryView::of(net_, result.process_of_node,
                                           covered, covered_delta, round);
    sink.begin_round(senders.size());
    adversary_.choose_unreliable_reach(view, senders, sink);
    sink.seal();
    deposit_work += sink.total();
    end_phase(obs::Phase::Adversary);

    RoundRecord record;
    if (record_trace) record.round = round;

    const std::size_t noisy_before = noisy.size();
    const unsigned active =
        pool && deposit_work + noisy_before >= kParallelGrain ? shards : 1;
    for (unsigned w = 0; w < active; ++w) {
      shard[w].touched.clear();
      shard[w].collided.clear();
      shard[w].activated_noisy.clear();
      shard[w].newly_covered.clear();
      shard[w].plans.clear();
      shard[w].held_delta = 0;
    }

    // --- Propagation: sender itself + G out-neighbors + chosen extras.
    // Each shard scans every sender but deposits only into its own node
    // range; the scan order (ascending senders; self, then reliable row,
    // then extras) matches the serial engine, so per-node arrival order —
    // and with it `from`, the spilled CR4 lists, everything — is identical
    // for any shard count. ---
    const auto live = static_cast<std::uint64_t>(round) << 2;
    const auto propagate_shard = [&](unsigned w) {
      ShardState& s = shard[w];
      const NodeId lo = shard_lo(w, active);
      const NodeId hi = shard_lo(w + 1, active);
      const auto deposit = [&](NodeId v, NodeId sender) {
        const auto uv = static_cast<std::size_t>(v);
        ArrivalSlot& slot = arrival[uv];
        if ((slot.mark & ~std::uint64_t{3}) != live) {
          slot.mark = live | 1;
          slot.from = sender;
          s.touched.push_back(v);
          return;
        }
        if ((slot.mark & 3) == 1) {
          s.collided.push_back(v);
          if (spill_arrivals) {
            multi[uv].clear();
            multi[uv].push_back(sent_msg[static_cast<std::size_t>(slot.from)]);
          }
        }
        if ((slot.mark & 3) < 3) ++slot.mark;
        if (spill_arrivals) {
          multi[uv].push_back(sent_msg[static_cast<std::size_t>(sender)]);
        }
      };
      for (std::size_t i = 0; i < senders.size(); ++i) {
        const NodeId u = senders[i];
        if (u >= lo && u < hi) deposit(u, u);
        for (const NodeId v : csr_g.row(u)) {
          if (v >= lo && v < hi) deposit(v, u);
        }
        for (const NodeId v : sink.extras(i)) {
          if (w == 0 && (v < 0 || v >= n)) {
            DUALRAD_CHECK(false, "adversary chose a non-G'-only edge");
          }
          if (v < lo || v >= hi) continue;
          DUALRAD_CHECK(csr_gp.contains(u, v) && !csr_g.contains(u, v),
                        "adversary chose a non-G'-only edge");
          deposit(v, u);
        }
      }
    };
    if (active == 1) {
      propagate_shard(0);
    } else {
      pool->run(propagate_shard);
    }
    if (record_trace) {
      // Sender records replay the same scan serially (reads only).
      for (std::size_t i = 0; i < senders.size(); ++i) {
        const NodeId u = senders[i];
        SenderRecord srec;
        srec.node = u;
        srec.message = sent_msg[static_cast<std::size_t>(u)];
        const auto row = csr_g.row(u);
        const auto extras = sink.extras(i);
        srec.reached.assign(row.begin(), row.end());
        srec.reached.insert(srec.reached.end(), extras.begin(), extras.end());
        record.senders.push_back(std::move(srec));
      }
    }
    end_phase(obs::Phase::Propagate);

    // --- Receptions under the configured collision rule (touched only:
    // everyone else hears silence). CR4 collisions are resolved in a second
    // pass, in ascending node order — the order the reference engine's node
    // scan consults the adversary in. ---
    std::uint32_t collision_events = 0;
    for (unsigned w = 0; w < active; ++w) {
      for (const NodeId v : shard[w].collided) {
        // Collision events are what processes observe: under CR2-CR4 a
        // sender deterministically hears its own message, so no collision
        // occurs at sender nodes there (CR1 counts senders too).
        if (config_.rule == CollisionRule::CR1 ||
            !is_sender[static_cast<std::size_t>(v)]) {
          ++collision_events;
        }
      }
    }
    result.total_collision_events += collision_events;
    if (config_.rule == CollisionRule::CR4) {
      collided.clear();
      for (unsigned w = 0; w < active; ++w) {
        collided.insert(collided.end(), shard[w].collided.begin(),
                        shard[w].collided.end());
      }
      if (!collided.empty()) {
        std::sort(collided.begin(), collided.end());
        for (const NodeId v : collided) {
          const auto uv = static_cast<std::size_t>(v);
          if (is_sender[uv]) continue;
          Reception rec = adversary_.resolve_cr4(view, v, multi[uv]);
          DUALRAD_CHECK(!rec.is_collision(),
                        "CR4 resolution cannot be collision notification");
          DUALRAD_CHECK(!rec.is_message() ||
                            std::find(multi[uv].begin(), multi[uv].end(),
                                      *rec.message) != multi[uv].end(),
                        "CR4 resolution must pick an arriving message");
          rec_of[uv] = rec;
        }
      }
    }

    // --- Fused reception + delivery over each shard's touched set, plus
    // the round's silence for this shard's slice of the noisy prefix.
    // Receptions are pure functions of this round's (fixed) arrivals and
    // sender flags — CR4 resolutions were fixed above, before any state
    // change, exactly like the reference engine's two-pass order — so
    // computing and delivering per node in one pass is equivalent, and
    // every write (process state, per-node flags, token bookkeeping,
    // trace receptions) lands on nodes this shard owns. Deferred effects
    // (calendar replans, noisy additions, held_count) are collected per
    // shard and merged below in shard order. Processes activated this
    // round consume their reception through on_activate, so only nodes
    // noisy *before* this round's activations get the silence delivery
    // (they are partitioned by index, disjoint from every touched set). ---
    if (record_trace) record.receptions.assign(un, kSilence);
    const auto deliver_shard = [&](unsigned w) {
      ShardState& s = shard[w];
      for (const NodeId v : s.touched) {
        const auto uv = static_cast<std::size_t>(v);
        const ArrivalSlot& slot = arrival[uv];
        const std::uint32_t count = slot.mark & 3;
        const auto first_msg = [&]() -> const Message& {
          return sent_msg[static_cast<std::size_t>(slot.from)];
        };
        Reception rec;
        switch (config_.rule) {
          case CollisionRule::CR1:
            rec = count == 1 ? Reception::of(first_msg())
                             : Reception::collision();
            break;
          case CollisionRule::CR2:
          case CollisionRule::CR3:
          case CollisionRule::CR4:
            if (is_sender[uv]) {
              rec = Reception::of(sent_msg[uv]);
            } else if (count == 1) {
              rec = Reception::of(first_msg());
            } else if (config_.rule == CollisionRule::CR2) {
              rec = Reception::collision();
            } else if (config_.rule == CollisionRule::CR3) {
              rec = Reception::silence();
            } else {
              rec = rec_of[uv];  // CR4: the adversary's resolution
            }
            break;
        }
        if (awake[uv]) {
          if (!transparent[uv] || !rec.is_silence()) {
            proc_at[uv]->on_receive(round, rec);
            s.plans.emplace_back(v, proc_at[uv]->next_send_round(round + 1));
          }
        } else if (rec.is_message()) {
          proc_at[uv]->on_activate(round, rec.message);
          awake[uv] = 1;
          transparent[uv] = proc_at[uv]->silence_transparent() ? 1 : 0;
          if (!transparent[uv]) s.activated_noisy.push_back(v);
          s.plans.emplace_back(v, proc_at[uv]->next_send_round(round + 1));
        }
        if (rec.has_token()) {
          if (byzrt && byz::ByzRuntime::is_forged(rec.message->token)) {
            // Forged tokens never touch covered/holds/token_first — the
            // engine's completion notion counts only environment-injected
            // tokens. Delivery provenance is per-node state (shard-safe).
            byzrt->note_delivery(rec.message->token, v);
          } else {
            const auto t = static_cast<std::size_t>(rec.message->token - 1);
            if (!covered[uv]) {
              covered[uv] = 1;
              s.newly_covered.push_back(v);
            }
            if (!holds[t * un + uv]) {
              holds[t * un + uv] = 1;
              result.token_first[t][uv] = round;
              ++s.held_delta;
            }
          }
        }
        if (record_trace) record.receptions[uv] = std::move(rec);
      }
      // Silence to this shard's slice of the pre-round noisy prefix.
      const std::size_t blo = noisy_before * w / active;
      const std::size_t bhi = noisy_before * (w + 1) / active;
      for (std::size_t i = blo; i < bhi; ++i) {
        const auto uv = static_cast<std::size_t>(noisy[i]);
        if ((arrival[uv].mark & ~std::uint64_t{3}) == live) continue;  // touched
        proc_at[uv]->on_receive(round, kSilence);
        s.plans.emplace_back(noisy[i],
                             proc_at[uv]->next_send_round(round + 1));
      }
    };
    if (active == 1) {
      deliver_shard(0);
    } else {
      pool->run(deliver_shard);
    }
    end_phase(obs::Phase::Deliver);

    // --- Deterministic shard merge: calendar replans, newly-noisy nodes,
    // token counts — all applied in shard order. (Plan application order is
    // unobservable anyway: the calendar dedups by node, and polled actions
    // are sorted before the adversary sees them.) ---
    std::size_t merge_replans = 0;
    for (unsigned w = 0; w < active; ++w) {
      const ShardState& s = shard[w];
      noisy.insert(noisy.end(), s.activated_noisy.begin(),
                   s.activated_noisy.end());
      next_delta.insert(next_delta.end(), s.newly_covered.begin(),
                        s.newly_covered.end());
      for (const auto& [v, r] : s.plans) calendar.plan(v, r, round);
      held_count += s.held_delta;
      if (telemetry) {
        merge_replans += s.plans.size();
        telemetry->add_shard_round(w, s.touched.size(), s.collided.size(),
                                   s.plans.size());
      }
    }

    // Round epilogue for stateful adversaries: this round's coverage delta,
    // ascending (shard ranges are ascending but intra-shard order is deposit
    // order, so sort — the reference engine's node scan is the contract).
    std::sort(next_delta.begin(), next_delta.end());
    covered_delta.swap(next_delta);
    next_delta.clear();
    end_phase(obs::Phase::ShardMerge);
    view.newly_covered = covered_delta;
    adversary_.on_round_end(view);
    end_phase(obs::Phase::Adversary);

    if (telemetry) {
      obs::RoundCounters& c = telemetry->counters();
      c.polled = due.size();
      c.senders = senders.size();
      // Each deposit call lands on exactly one node of exactly one shard, so
      // the poll loop's work estimate IS the delivery count: per sender
      // 1 (self) + |reliable row| + |adversary extras|.
      c.deliveries = deposit_work;
      c.collisions = collision_events;
      c.calendar_scanned = calendar_scanned;
      c.replans = due.size() + merge_replans;
      c.reach_appends = sink.total();
      c.newly_covered = covered_delta.size();
      telemetry->end_round();
    }

    if (counted_trace) {
      result.trace.senders_per_round.push_back(
          static_cast<std::uint32_t>(senders.size()));
      result.trace.collisions_per_round.push_back(collision_events);
    } else if (config_.trace == TraceLevel::Bounded) {
      result.trace.record_bounded_round(
          round, static_cast<std::uint32_t>(senders.size()), collision_events);
    }
    if (full_trace) {
      result.trace.rounds.push_back(std::move(record));
    } else if (compressed_trace) {
      result.trace.append_compressed(record);
    }

    for (const NodeId v : senders) is_sender[static_cast<std::size_t>(v)] = 0;

    if (held_count == all_held && !result.completed) {
      result.completed = true;
      result.completion_round = round;
      if (config_.stop_on_completion) break;
    }
  }

  if (telemetry) telemetry->end_execution();

  if (byzrt) result.forged_tokens = byzrt->finalize();

  result.first_token = result.token_first.front();
  for (NodeId v = 0; v < n; ++v) {
    const auto uv = static_cast<std::size_t>(v);
    for (ProcessMetric& m : proc_at[uv]->final_metrics()) {
      result.process_metrics.push_back(ProcessMetricSample{
          v, result.process_of_node[uv], std::move(m.name), m.value});
    }
  }
  return result;
}

}  // namespace dualrad
