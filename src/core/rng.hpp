#pragma once

#include <cstdint>

#include "core/types.hpp"

/// \file rng.hpp
/// Deterministic, counter-based randomness.
///
/// Processes in randomized algorithms draw per-round coins from a *stateless*
/// counter-based generator keyed by (seed, round, salt). This makes
/// Process::next_action pure (idempotent within a round), which in turn makes
/// processes cheaply cloneable and executions exactly reproducible — a
/// requirement of the lower-bound replay harnesses.

namespace dualrad {

// __extension__ keeps -Wpedantic quiet: __int128 is a GCC/Clang extension,
// used only for overflow-free multiply-shift range reduction.
__extension__ typedef unsigned __int128 uint128_t;

/// SplitMix64 finalizer; a high-quality 64-bit mix.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Combine a seed with additional stream identifiers.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t a,
                                               std::uint64_t b) {
  return splitmix64(a ^ (0x9E3779B97F4A7C15ULL + (b << 6) + (b >> 2)));
}

/// Stateless counter-based RNG. All draws are pure functions of
/// (key, round, salt); repeated calls with the same arguments return the
/// same value.
class CounterRng {
 public:
  CounterRng() = default;
  explicit CounterRng(std::uint64_t key) : key_(key) {}

  [[nodiscard]] std::uint64_t key() const { return key_; }

  /// 64 uniform bits for (round, salt).
  [[nodiscard]] std::uint64_t bits(Round round, std::uint64_t salt = 0) const {
    std::uint64_t h = splitmix64(key_ ^ splitmix64(
        static_cast<std::uint64_t>(round) * 0xD1342543DE82EF95ULL));
    return splitmix64(h ^ (salt * 0x2545F4914F6CDD1DULL + 0x632BE59BD9B4E019ULL));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform(Round round, std::uint64_t salt = 0) const {
    return static_cast<double>(bits(round, salt) >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) coin for (round, salt).
  [[nodiscard]] bool bernoulli(double p, Round round,
                               std::uint64_t salt = 0) const {
    return uniform(round, salt) < p;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound, Round round,
                                    std::uint64_t salt = 0) const {
    DUALRAD_REQUIRE(bound > 0, "below() needs positive bound");
    // Multiply-shift; bias is negligible for the bounds used here.
    return static_cast<std::uint64_t>(
        (static_cast<uint128_t>(bits(round, salt)) * bound) >> 64);
  }

 private:
  std::uint64_t key_ = 0x853C49E6748FEA9BULL;
};

/// A tiny stateful PRNG (xorshift128+) for places where a stream is more
/// natural than a counter (e.g. graph generators, Monte Carlo drivers).
class StreamRng {
 public:
  explicit StreamRng(std::uint64_t seed = 1) {
    s0_ = splitmix64(seed);
    s1_ = splitmix64(s0_);
    if ((s0_ | s1_) == 0) s1_ = 1;
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Uniform integer in [0, bound), bound > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    DUALRAD_REQUIRE(bound > 0, "below() needs positive bound");
    return static_cast<std::uint64_t>(
        (static_cast<uint128_t>((*this)()) * bound) >> 64);
  }

 private:
  std::uint64_t s0_ = 0, s1_ = 0;
};

}  // namespace dualrad
