#pragma once

#include <numeric>
#include <span>
#include <vector>

#include "core/message.hpp"
#include "core/reception.hpp"
#include "core/types.hpp"
#include "graph/dual_graph.hpp"

/// \file adversary.hpp
/// The adversary interface (Section 2.1), sparse batch edition.
///
/// In general an adversary may choose (a) the proc mapping from nodes to
/// processes, (b) for each sender and round, which G'-only out-neighbors the
/// message additionally reaches, and (c) under CR4, how collisions at
/// non-senders resolve. An *adversary class* restricts these choices and the
/// information available; the lower-bound adversaries in this library are
/// heavily restricted (they follow fixed rules from the proofs), while the
/// benchmark adversaries use full knowledge, which only strengthens
/// upper-bound experiments.
///
/// Choice (b) flows through a `ReachSink`: a flat, engine-owned append
/// buffer of (sender slot, extra node) pairs laid out CSR-style per sender.
/// The engines hand the same sink to the adversary every round (capacity is
/// retained), so a round's adversary callback allocates nothing — the
/// property that lets adversarial workloads run at 10^5-10^6 nodes, where
/// the old per-round vector-of-vectors return value dominated the round.

namespace dualrad {

/// Per-node boolean flags as plain bytes. The round engines share these
/// arrays with the sharded parallel kernel, whose workers write disjoint
/// node indices concurrently — legal on byte elements, a data race on
/// std::vector<bool>'s packed words.
using NodeFlags = std::vector<std::uint8_t>;

/// Flat CSR-style append buffer for the adversary's per-round unreliable
/// deliveries: (sender slot, extra node) pairs, where *slot* indexes into
/// the round's `senders` span. The engine calls `begin_round` / `seal` and
/// reads rows back through `extras`; the adversary only appends, in
/// nondecreasing slot order (the natural order of a sweep over `senders` —
/// enforced, because the engines replay rows in slot order to keep delivery
/// order bit-identical to the dense reference engine).
///
/// Rows are two flat arrays (offsets + nodes) with capacity retained across
/// rounds, so steady-state appends are branch + store. Sinks over the same
/// slot space are shard-mergeable: `merge_from` concatenates rows slot-wise
/// (shard order = append order within a slot), which is what a future
/// sharded adversary callback would reduce with.
class ReachSink {
 public:
  /// Engine-side: reset for a round with `sender_count` slots. Keeps
  /// capacity; O(1) plus amortized growth of the offsets array.
  void begin_round(std::size_t sender_count) {
    slot_count_ = sender_count;
    offsets_.resize(sender_count + 1);
    offsets_[0] = 0;
    open_ = 0;
    nodes_.clear();
    sealed_ = false;
  }

  /// Adversary-side: senders[slot]'s message additionally reaches `extra`
  /// (which must be a G'-only out-neighbor of that sender — validated by the
  /// engines at delivery). Slots must be appended in nondecreasing order.
  void add(std::size_t slot, NodeId extra) {
    DUALRAD_CHECK(!sealed_, "ReachSink: add after seal");
    DUALRAD_CHECK(slot < slot_count_, "ReachSink: sender slot out of range");
    DUALRAD_CHECK(slot >= open_,
                  "ReachSink: slots must be appended in nondecreasing order");
    while (open_ < slot) offsets_[++open_] = nodes_.size();
    nodes_.push_back(extra);
  }

  /// Append a whole span for one slot (e.g. an unreliable_out row).
  void add_span(std::size_t slot, std::span<const NodeId> extras) {
    if (extras.empty()) return;
    add(slot, extras.front());
    nodes_.insert(nodes_.end(), extras.begin() + 1, extras.end());
  }

  /// Engine-side: close all remaining rows. After sealing, `extras` is
  /// readable and `add` is rejected until the next begin_round.
  void seal() {
    while (open_ < slot_count_) offsets_[++open_] = nodes_.size();
    sealed_ = true;
  }

  [[nodiscard]] std::size_t slot_count() const { return slot_count_; }
  /// Pairs appended this round.
  [[nodiscard]] std::size_t total() const { return nodes_.size(); }
  [[nodiscard]] bool sealed() const { return sealed_; }

  /// Extras recorded for `slot`, in append order. Requires seal().
  [[nodiscard]] std::span<const NodeId> extras(std::size_t slot) const {
    DUALRAD_CHECK(sealed_, "ReachSink: extras before seal");
    DUALRAD_CHECK(slot < slot_count_, "ReachSink: sender slot out of range");
    return {nodes_.data() + offsets_[slot],
            offsets_[slot + 1] - offsets_[slot]};
  }

  /// Slot-wise concatenation of another sealed sink over the same slot
  /// space: row(slot) becomes this->extras(slot) ++ other.extras(slot).
  /// This is the deterministic shard merge (merge in shard order).
  /// Rebuilds the flat arrays, so spans previously returned by extras()
  /// are invalidated.
  void merge_from(const ReachSink& other) {
    DUALRAD_CHECK(&other != this, "ReachSink: cannot merge a sink into itself");
    DUALRAD_CHECK(sealed_ && other.sealed_,
                  "ReachSink: merge requires sealed sinks");
    DUALRAD_CHECK(slot_count_ == other.slot_count_,
                  "ReachSink: merge requires equal slot counts");
    if (other.nodes_.empty()) return;
    std::vector<NodeId> merged;
    merged.reserve(nodes_.size() + other.nodes_.size());
    std::vector<std::size_t> offsets(slot_count_ + 1, 0);
    for (std::size_t s = 0; s < slot_count_; ++s) {
      const auto a = extras(s);
      const auto b = other.extras(s);
      merged.insert(merged.end(), a.begin(), a.end());
      merged.insert(merged.end(), b.begin(), b.end());
      offsets[s + 1] = merged.size();
    }
    nodes_ = std::move(merged);
    offsets_ = std::move(offsets);
  }

 private:
  std::vector<std::size_t> offsets_;  ///< size slot_count_ + 1 once sealed
  std::vector<NodeId> nodes_;
  std::size_t slot_count_ = 0;
  std::size_t open_ = 0;  ///< highest slot whose row start is recorded
  bool sealed_ = true;
};

/// Read-only view of execution state offered to adversaries. Worst-case
/// adversaries may use all of it; restricted adversaries ignore most fields.
///
/// The frozen CSR snapshots (`g`, `g_prime`, `unreliable`) are the same
/// objects as net->g_csr() etc., hoisted so per-round adversary code walks
/// flat span rows with no DualGraph indirection. `newly_covered` is the
/// *delta* of the dense `covered` array: the nodes whose covered flag rose
/// during the previous round's deliveries (for round 1, the environment's
/// token sources), ascending — stateful adversaries track coverage in
/// O(|delta|) per round instead of rescanning O(n) flags.
struct AdversaryView {
  const DualGraph* net = nullptr;
  const CsrGraph* g = nullptr;
  const CsrGraph* g_prime = nullptr;
  const CsrGraph* unreliable = nullptr;
  /// node -> process id (the proc mapping currently in force).
  const std::vector<ProcessId>* process_of_node = nullptr;
  /// node -> whether the process there already holds at least one broadcast
  /// token (state *before* this round's deliveries). In the single-message
  /// problem this is exactly "holds the broadcast token".
  const NodeFlags* covered = nullptr;
  /// Nodes first covered by the previous round's deliveries, ascending.
  std::span<const NodeId> newly_covered{};
  Round round = 0;

  [[nodiscard]] static AdversaryView of(
      const DualGraph& net, const std::vector<ProcessId>& process_of_node,
      const NodeFlags& covered, std::span<const NodeId> newly_covered,
      Round round) {
    return AdversaryView{&net,
                         &net.g_csr(),
                         &net.g_prime_csr(),
                         &net.unreliable_csr(),
                         &process_of_node,
                         &covered,
                         newly_covered,
                         round};
  }
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Choose the proc mapping: result[node] = process id placed at node.
  /// Must be a permutation of {0..n-1}. Default: identity.
  [[nodiscard]] virtual std::vector<ProcessId> assign_processes(
      const DualGraph& net) {
    std::vector<ProcessId> ids(static_cast<std::size_t>(net.node_count()));
    std::iota(ids.begin(), ids.end(), 0);
    return ids;
  }

  /// For each sending node (senders[i], ascending), append the G'-only
  /// out-neighbors its message additionally reaches this round as
  /// (slot = i, extra) pairs into `sink` (begin_round already called; the
  /// engine seals). Appends must be in nondecreasing slot order and only
  /// name G'-only out-neighbors of the slot's sender; the engines validate
  /// edge legality at delivery, and the conformance suite
  /// (tests/test_adversary_api.cpp) additionally pins no-duplicate rows for
  /// every shipped adversary. Default: no unreliable edge fires.
  virtual void choose_unreliable_reach(const AdversaryView& view,
                                       std::span<const NodeId> senders,
                                       ReachSink& sink) {
    (void)view;
    (void)senders;
    (void)sink;
  }

  /// CR4 only: node `node` (which did not send) is reached by >= 2 messages;
  /// return Silence or one of `arrivals`. Default: silence (which coincides
  /// with CR3).
  [[nodiscard]] virtual Reception resolve_cr4(
      const AdversaryView& view, NodeId node,
      const std::vector<Message>& arrivals) {
    (void)view;
    (void)node;
    (void)arrivals;
    return Reception::silence();
  }

  /// Called once at the start of each execution, so stateful adversaries can
  /// reset. Default: no-op.
  virtual void on_execution_start(const DualGraph& net) { (void)net; }

  /// Called once after each round's deliveries, with view.round = the round
  /// that just finished and view.newly_covered = the nodes that round's
  /// deliveries first covered (view.covered already includes them). Both
  /// engines invoke it identically (after CR4 resolutions, before the next
  /// round's poll), so stateful adversaries may advance incremental state
  /// here without perturbing bit-identical replay. Default: no-op.
  virtual void on_round_end(const AdversaryView& view) { (void)view; }
};

}  // namespace dualrad
