#pragma once

#include <numeric>
#include <vector>

#include "core/message.hpp"
#include "core/reception.hpp"
#include "core/types.hpp"
#include "graph/dual_graph.hpp"

/// \file adversary.hpp
/// The adversary interface (Section 2.1).
///
/// In general an adversary may choose (a) the proc mapping from nodes to
/// processes, (b) for each sender and round, which G'-only out-neighbors the
/// message additionally reaches, and (c) under CR4, how collisions at
/// non-senders resolve. An *adversary class* restricts these choices and the
/// information available; the lower-bound adversaries in this library are
/// heavily restricted (they follow fixed rules from the proofs), while the
/// benchmark adversaries use full knowledge, which only strengthens
/// upper-bound experiments.

namespace dualrad {

/// Per-node boolean flags as plain bytes. The round engines share these
/// arrays with the sharded parallel kernel, whose workers write disjoint
/// node indices concurrently — legal on byte elements, a data race on
/// std::vector<bool>'s packed words.
using NodeFlags = std::vector<std::uint8_t>;

/// Read-only view of execution state offered to adversaries. Worst-case
/// adversaries may use all of it; restricted adversaries ignore most fields.
struct AdversaryView {
  const DualGraph* net = nullptr;
  /// node -> process id (the proc mapping currently in force).
  const std::vector<ProcessId>* process_of_node = nullptr;
  /// node -> whether the process there already holds at least one broadcast
  /// token (state *before* this round's deliveries). In the single-message
  /// problem this is exactly "holds the broadcast token".
  const NodeFlags* covered = nullptr;
  Round round = 0;
};

/// One sender's outgoing delivery choice for a round.
struct ReachChoice {
  /// Subset of the sender's G'-only out-neighbors additionally reached.
  /// (G-out-neighbors are always reached and must not be listed here.)
  std::vector<NodeId> extra{};
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Choose the proc mapping: result[node] = process id placed at node.
  /// Must be a permutation of {0..n-1}. Default: identity.
  [[nodiscard]] virtual std::vector<ProcessId> assign_processes(
      const DualGraph& net) {
    std::vector<ProcessId> ids(static_cast<std::size_t>(net.node_count()));
    std::iota(ids.begin(), ids.end(), 0);
    return ids;
  }

  /// For each sending node (senders[i]), choose the G'-only out-neighbors its
  /// message additionally reaches this round. Returned vector must be
  /// parallel to `senders`. Default: no unreliable edge fires.
  [[nodiscard]] virtual std::vector<ReachChoice> choose_unreliable_reach(
      const AdversaryView& view, const std::vector<NodeId>& senders) {
    (void)view;
    return std::vector<ReachChoice>(senders.size());
  }

  /// CR4 only: node `node` (which did not send) is reached by >= 2 messages;
  /// return Silence or one of `arrivals`. Default: silence (which coincides
  /// with CR3).
  [[nodiscard]] virtual Reception resolve_cr4(
      const AdversaryView& view, NodeId node,
      const std::vector<Message>& arrivals) {
    (void)view;
    (void)node;
    (void)arrivals;
    return Reception::silence();
  }

  /// Called once at the start of each execution, so stateful adversaries can
  /// reset. Default: no-op.
  virtual void on_execution_start(const DualGraph& net) { (void)net; }
};

}  // namespace dualrad
