#pragma once

#include "core/simulator.hpp"

/// \file reference_engine.hpp
/// The original dense O(n)-per-round execution engine, kept verbatim (modulo
/// the collision-accounting fix, which applies to both engines) as the
/// behavioral reference for the sparse CSR engine in simulator.cpp.
///
/// Per round it scans every node: polls awake processes, clears every
/// arrival vector, resolves every reception, and delivers to every process.
/// That is simple and obviously faithful to Section 2.1 — and exactly what
/// tests/test_engine_equivalence.cpp holds the production engine to:
/// `run_broadcast` and `run_broadcast_reference` must return bit-identical
/// SimResults for every network, algorithm, adversary, and config.
///
/// Not for production use: the CSR engine is asymptotically faster and the
/// default everywhere (campaign, benches, tools).

namespace dualrad {

/// One execution under the dense reference engine. Same contract as
/// run_broadcast.
[[nodiscard]] SimResult run_broadcast_reference(const DualGraph& net,
                                                const ProcessFactory& factory,
                                                Adversary& adversary,
                                                const SimConfig& config);

}  // namespace dualrad
