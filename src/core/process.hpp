#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/message.hpp"
#include "core/reception.hpp"
#include "core/types.hpp"

/// \file process.hpp
/// The process automaton interface (Section 2.1).
///
/// An algorithm is a collection of n processes, each a deterministic or
/// probabilistic automaton with a unique id. The adversary maps processes to
/// graph nodes; processes never learn which node they occupy.
///
/// Lifecycle, per execution:
///   1. `on_activate(round, initial)` - exactly once, when the process wakes.
///      Under synchronous start every process is activated before round 1
///      (round = 0, initial = nullopt except for the source, which gets the
///      broadcast token from the environment). Under asynchronous start a
///      non-source process is activated by its first received message
///      (round = that round, initial = the message); activation consumes that
///      round's reception.
///   2. Per round r while awake: `next_action(r)` is queried, then after
///      delivery `on_receive(r, reception)` advances the state.
///
/// Purity contract: `next_action(r)` must be idempotent - calling it any
/// number of times between state transitions returns the same Action. This is
/// what makes executions replayable and lets the lower-bound constructions
/// (Theorem 12) peek at "would this process send next round?" without
/// perturbing it. Randomized processes satisfy the contract by drawing
/// per-round coins from a counter-based RNG (core/rng.hpp) keyed on the
/// round number.
namespace dualrad {

/// One named scalar a process exports at the end of an execution (see
/// Process::final_metrics). Layered protocols (e.g. the abstract MAC layer,
/// src/mac/) use these to surface internal measurements — ack latencies,
/// queue depths — that the plain broadcast result cannot express.
struct ProcessMetric {
  std::string name;
  double value = 0.0;
};

/// What a process does at the start of a round.
struct Action {
  bool send = false;
  Message message{};  ///< meaningful only when send == true

  [[nodiscard]] static Action silent() { return {}; }
  [[nodiscard]] static Action transmit(const Message& m) {
    return Action{true, m};
  }
};

class Process {
 public:
  virtual ~Process() = default;

  Process& operator=(const Process&) = delete;

  [[nodiscard]] ProcessId id() const { return id_; }

  /// Called exactly once when the process wakes up (see file comment).
  virtual void on_activate(Round round, const std::optional<Message>& initial) = 0;

  /// The process's decision for round `round`. Must be idempotent.
  [[nodiscard]] virtual Action next_action(Round round) const = 0;

  /// State transition on the reception at the end of round `round`.
  virtual void on_receive(Round round, const Reception& reception) = 0;

  /// Scheduling hint for the sparse round engine: the smallest round
  /// r >= `from` at which `next_action(r)` may return a send, assuming no
  /// state transition (on_receive with a non-silence reception, or
  /// on_activate) happens before r; kNever if the process will never send
  /// again absent such a transition. The engine promises to query
  /// `next_action` at the hinted round (a conservative hint that
  /// over-promises sends is fine — the engine just re-asks); a hint that
  /// *skips* a round where `next_action(r).send` would be true is a contract
  /// violation. The default — "I might send next round" — degenerates to
  /// per-round polling and is always correct. Counter-RNG processes
  /// (core/rng.hpp) can look ahead because their future coins are pure
  /// functions of the round number.
  [[nodiscard]] virtual Round next_send_round(Round from) const { return from; }

  /// Declares that receiving Silence never changes this process's state or
  /// observable behavior, so the engine may skip `on_receive` calls whose
  /// reception is Silence. Opt-in per concrete class: override to return
  /// true only if `on_receive` provably ignores silence (and the class
  /// exports no metric counting receptions). The default keeps the exact
  /// per-round delivery of the reference engine.
  [[nodiscard]] virtual bool silence_transparent() const { return false; }

  /// Deep copy (same id, same state). Required for execution branching in
  /// the lower-bound harnesses.
  [[nodiscard]] virtual std::unique_ptr<Process> clone() const = 0;

  /// Optional end-of-execution metrics. The simulator collects these into
  /// SimResult::process_metrics after the last round, so observers (campaign
  /// exports, benches) can read protocol-internal measurements without
  /// holding the process objects. Default: none.
  [[nodiscard]] virtual std::vector<ProcessMetric> final_metrics() const {
    return {};
  }

 protected:
  explicit Process(ProcessId id) : id_(id) {
    DUALRAD_REQUIRE(id >= 0, "process id must be non-negative");
  }
  /// Copyable by derived classes only (for implementing clone()).
  Process(const Process&) = default;

 private:
  ProcessId id_;
};

/// Creates the process with identifier `id` out of `n`, with randomness key
/// `seed` (ignored by deterministic algorithms). Factories must be pure:
/// identical arguments produce identically-behaving processes.
using ProcessFactory = std::function<std::unique_ptr<Process>(
    ProcessId id, NodeId n, std::uint64_t seed)>;

}  // namespace dualrad
