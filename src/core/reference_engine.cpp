#include "core/reference_engine.hpp"

#include <algorithm>
#include <optional>

#include "byz/runtime.hpp"
#include "core/rng.hpp"
#include "obs/telemetry.hpp"

namespace dualrad {

SimResult run_broadcast_reference(const DualGraph& net,
                                  const ProcessFactory& factory,
                                  Adversary& adversary,
                                  const SimConfig& config) {
  DUALRAD_REQUIRE(config.max_rounds >= 1, "max_rounds must be positive");
  DUALRAD_REQUIRE(static_cast<bool>(factory), "process factory must be set");

  const NodeId n = net.node_count();
  const auto un = static_cast<std::size_t>(n);
  // Hoisted Graph views: on CSR-built networks g()/g_prime() lock a lazy
  // materialization mutex per call, which must not sit in the round loop.
  const Graph& g = net.g();
  const Graph& gp = net.g_prime();

  adversary.on_execution_start(net);

  SimResult result;
  result.process_of_node = adversary.assign_processes(net);
  DUALRAD_CHECK(result.process_of_node.size() == un,
                "proc mapping has wrong size");
  {
    std::vector<bool> seen(un, false);
    for (ProcessId p : result.process_of_node) {
      DUALRAD_CHECK(p >= 0 && p < n && !seen[static_cast<std::size_t>(p)],
                    "proc mapping must be a permutation");
      seen[static_cast<std::size_t>(p)] = true;
    }
  }

  // Instantiate processes, indexed by node for the rest of the run.
  std::vector<std::unique_ptr<Process>> proc_at(un);
  for (NodeId v = 0; v < n; ++v) {
    const ProcessId pid = result.process_of_node[static_cast<std::size_t>(v)];
    proc_at[static_cast<std::size_t>(v)] =
        factory(pid, n, mix_seed(config.seed, static_cast<std::uint64_t>(pid)));
    DUALRAD_CHECK(proc_at[static_cast<std::size_t>(v)] != nullptr,
                  "factory returned null process");
    DUALRAD_CHECK(proc_at[static_cast<std::size_t>(v)]->id() == pid,
                  "factory produced process with wrong id");
  }

  // Token sources: the classic problem injects kBroadcastToken at the
  // network source; multi-message executions inject token i+1 at
  // token_sources[i] (all distinct).
  std::vector<NodeId> sources = config.token_sources;
  if (sources.empty()) sources.push_back(net.source());
  const auto k = sources.size();
  validate_token_sources(n, sources);

  // Byzantine node faults, applied through the exact same runtime hooks as
  // the sparse engine (byz/runtime.hpp) so both engines stay bit-identical.
  std::optional<byz::ByzRuntime> byzrt;
  if (config.byzantine != nullptr) {
    byzrt.emplace(*config.byzantine, result.process_of_node);
  }
  std::vector<NodeId> byz_removed;
  std::vector<NodeId> byz_added;

  std::vector<bool> awake(un, false);
  // covered[v]: the process at v holds at least one token (what the
  // adversary view exposes — NodeFlags, the type the parallel kernel needs);
  // holds[t*n + v]: it holds token id t+1.
  NodeFlags covered(un, 0);
  std::vector<bool> holds(k * un, false);
  result.token_first.assign(k, std::vector<Round>(un, kNever));
  // covered_delta: nodes first covered by the previous round's deliveries
  // (the AdversaryView::newly_covered span), ascending; next_delta collects
  // the running round's additions.
  std::vector<NodeId> covered_delta;
  std::vector<NodeId> next_delta;

  // Environment input: each token arrives at its source process prior to
  // round 1 (Section 3).
  std::size_t held_count = 0;
  for (std::size_t t = 0; t < k; ++t) {
    const auto src = static_cast<std::size_t>(sources[t]);
    const Message env_msg{/*token=*/static_cast<TokenId>(t + 1),
                          /*origin=*/kInvalidProcess,
                          /*round_tag=*/0, /*payload=*/0};
    covered[src] = 1;
    holds[t * un + src] = true;
    result.token_first[t][src] = 0;
    ++held_count;
    proc_at[src]->on_activate(0, env_msg);
    awake[src] = true;
    covered_delta.push_back(sources[t]);
  }
  std::sort(covered_delta.begin(), covered_delta.end());
  if (config.start == StartRule::Synchronous) {
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      if (awake[uv]) continue;
      proc_at[uv]->on_activate(0, std::nullopt);
      awake[uv] = true;
    }
  }

  result.trace.level = config.trace;
  if (config.trace == TraceLevel::Bounded) {
    DUALRAD_REQUIRE(config.trace_window >= 1,
                    "bounded trace needs a positive window");
    result.trace.window = config.trace_window;
    result.trace.ring_senders.assign(config.trace_window, 0);
    result.trace.ring_collisions.assign(config.trace_window, 0);
  }

  // Reusable per-round buffers. The ReachSink is handed to the adversary
  // every round with capacity retained — no per-round reach allocations.
  std::vector<NodeId> senders;
  std::vector<Message> sent_msg(un);
  std::vector<bool> is_sender(un, false);
  std::vector<std::vector<Message>> arrivals(un);
  std::vector<Reception> receptions(un);
  ReachSink sink;

  const std::size_t all_held = k * un;

  // Telemetry mirrors the sparse engine's (core/simulator.cpp): strictly
  // out-of-band reads + clock samples, all behind one null check. The
  // reference engine has no calendar and no shards, so calendar_scanned and
  // replans stay 0 and ShardMerge is never timed.
  obs::RoundTelemetry* const telemetry = config.telemetry;
  if (telemetry) telemetry->begin_execution(n, 1);

  for (Round round = 1; round <= config.max_rounds; ++round) {
    result.rounds_executed = round;
    if (telemetry) telemetry->begin_round(round);
    std::uint64_t phase_start = telemetry ? obs::monotonic_ns() : 0;
    const auto end_phase = [&](obs::Phase phase) {
      if (telemetry == nullptr) return;
      const std::uint64_t now = obs::monotonic_ns();
      telemetry->add_phase_ns(phase, now - phase_start);
      phase_start = now;
    };
    std::uint64_t polled = 0;
    std::uint64_t deliveries = 0;

    senders.clear();
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      is_sender[uv] = false;
      arrivals[uv].clear();
      if (!awake[uv]) continue;
      if (telemetry) ++polled;
      const Action action = proc_at[uv]->next_action(round);
      if (!action.send) continue;
      const TokenId tok = action.message.token;
      if (byzrt && byz::ByzRuntime::is_forged(tok)) {
        // Relaying a forged token you actually heard is protocol-legal (that
        // relay is exactly the forgery "win" the audit reports); inventing
        // a forged id out of thin air is not.
        DUALRAD_CHECK(byzrt->may_transmit(v, tok),
                      "process sent a forged token it never received");
      } else {
        DUALRAD_CHECK(tok >= kNoToken && tok <= static_cast<TokenId>(k),
                      "process sent an unknown token id");
        DUALRAD_CHECK(tok == kNoToken ||
                          holds[static_cast<std::size_t>(tok - 1) * un + uv],
                      "process sent a broadcast token without holding it");
      }
      is_sender[uv] = true;
      sent_msg[uv] = action.message;
      senders.push_back(v);
    }
    if (byzrt) {
      // Byzantine behaviors rewrite the sender set before anything observes
      // it (the node scan already produced ascending senders).
      byz_removed.clear();
      byz_added.clear();
      byzrt->rewrite_senders(round, senders, sent_msg, byz_removed, byz_added);
      for (const NodeId v : byz_removed) {
        is_sender[static_cast<std::size_t>(v)] = false;
      }
      for (const NodeId v : byz_added) {
        is_sender[static_cast<std::size_t>(v)] = true;
      }
    }
    result.total_sends += senders.size();
    end_phase(obs::Phase::Poll);

    // Adversary chooses which unreliable links fire.
    AdversaryView view = AdversaryView::of(net, result.process_of_node,
                                           covered, covered_delta, round);
    sink.begin_round(senders.size());
    adversary.choose_unreliable_reach(view, senders, sink);
    sink.seal();
    end_phase(obs::Phase::Adversary);

    RoundRecord record;
    const bool full_trace = config.trace == TraceLevel::Full;
    const bool compressed_trace = config.trace == TraceLevel::Compressed;
    const bool record_trace = full_trace || compressed_trace;
    if (record_trace) record.round = round;

    // Message propagation: sender itself + G out-neighbors + chosen extras.
    for (std::size_t i = 0; i < senders.size(); ++i) {
      const NodeId u = senders[i];
      const auto uu = static_cast<std::size_t>(u);
      const Message& m = sent_msg[uu];
      arrivals[uu].push_back(m);
      SenderRecord srec;
      if (record_trace) {
        srec.node = u;
        srec.message = m;
      }
      for (NodeId v : g.out_neighbors(u)) {
        arrivals[static_cast<std::size_t>(v)].push_back(m);
        if (record_trace) srec.reached.push_back(v);
      }
      for (NodeId v : sink.extras(i)) {
        DUALRAD_CHECK(gp.has_edge(u, v) && !g.has_edge(u, v),
                      "adversary chose a non-G'-only edge");
        arrivals[static_cast<std::size_t>(v)].push_back(m);
        if (record_trace) srec.reached.push_back(v);
      }
      if (record_trace) record.senders.push_back(std::move(srec));
      if (telemetry) {
        deliveries += 1 + static_cast<std::uint64_t>(g.out_degree(u)) +
                      sink.extras(i).size();
      }
    }
    end_phase(obs::Phase::Propagate);

    // Receptions under the configured collision rule.
    std::uint32_t collision_events = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      const auto& arr = arrivals[uv];
      // A collision event is a (node, round) pair at which the process
      // observes a collision: >= 2 arrivals, except that under CR2-CR4 a
      // sender deterministically hears its own message, so no collision
      // occurs at sender nodes there (CR1 counts senders too).
      if (arr.size() >= 2 &&
          (config.rule == CollisionRule::CR1 || !is_sender[uv])) {
        ++collision_events;
      }
      Reception rec = Reception::silence();
      switch (config.rule) {
        case CollisionRule::CR1:
          if (arr.size() == 1) {
            rec = Reception::of(arr.front());
          } else if (arr.size() >= 2) {
            rec = Reception::collision();
          }
          break;
        case CollisionRule::CR2:
        case CollisionRule::CR3:
        case CollisionRule::CR4:
          if (is_sender[uv]) {
            rec = Reception::of(sent_msg[uv]);
          } else if (arr.size() == 1) {
            rec = Reception::of(arr.front());
          } else if (arr.size() >= 2) {
            if (config.rule == CollisionRule::CR2) {
              rec = Reception::collision();
            } else if (config.rule == CollisionRule::CR3) {
              rec = Reception::silence();
            } else {
              rec = adversary.resolve_cr4(view, v, arr);
              DUALRAD_CHECK(!rec.is_collision(),
                            "CR4 resolution cannot be collision notification");
              DUALRAD_CHECK(!rec.is_message() ||
                                std::find(arr.begin(), arr.end(),
                                          *rec.message) != arr.end(),
                            "CR4 resolution must pick an arriving message");
            }
          }
          break;
      }
      receptions[uv] = rec;
    }
    result.total_collision_events += collision_events;
    end_phase(obs::Phase::Deliver);

    // Deliver; wake sleeping processes on message reception (async start).
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      const Reception& rec = receptions[uv];
      if (awake[uv]) {
        proc_at[uv]->on_receive(round, rec);
      } else if (rec.is_message()) {
        proc_at[uv]->on_activate(round, rec.message);
        awake[uv] = true;
      }
      if (rec.has_token()) {
        if (byzrt && byz::ByzRuntime::is_forged(rec.message->token)) {
          // Forged tokens never touch covered/holds/token_first — the
          // engine's completion notion counts only environment-injected
          // tokens. Delivery provenance feeds SimResult::forged_tokens.
          byzrt->note_delivery(rec.message->token, v);
        } else {
          const auto t = static_cast<std::size_t>(rec.message->token - 1);
          if (!covered[uv]) {
            covered[uv] = 1;
            next_delta.push_back(v);  // node scan is ascending
          }
          if (!holds[t * un + uv]) {
            holds[t * un + uv] = true;
            result.token_first[t][uv] = round;
            ++held_count;
          }
        }
      }
    }

    // Round epilogue for stateful adversaries: this round's coverage delta,
    // with the covered flags already advanced.
    covered_delta.swap(next_delta);
    next_delta.clear();
    end_phase(obs::Phase::Deliver);
    view.newly_covered = covered_delta;
    adversary.on_round_end(view);
    end_phase(obs::Phase::Adversary);

    if (telemetry) {
      obs::RoundCounters& c = telemetry->counters();
      c.polled = polled;
      c.senders = senders.size();
      c.deliveries = deliveries;
      c.collisions = collision_events;
      c.reach_appends = sink.total();
      c.newly_covered = covered_delta.size();
      telemetry->end_round();
    }

    if (config.trace == TraceLevel::Counts || record_trace) {
      result.trace.senders_per_round.push_back(
          static_cast<std::uint32_t>(senders.size()));
      result.trace.collisions_per_round.push_back(collision_events);
    } else if (config.trace == TraceLevel::Bounded) {
      result.trace.record_bounded_round(
          round, static_cast<std::uint32_t>(senders.size()), collision_events);
    }
    if (record_trace) {
      record.receptions.assign(receptions.begin(), receptions.end());
      if (full_trace) {
        result.trace.rounds.push_back(std::move(record));
      } else {
        result.trace.append_compressed(record);
      }
    }

    if (held_count == all_held && !result.completed) {
      result.completed = true;
      result.completion_round = round;
      if (config.stop_on_completion) break;
    }
  }

  if (telemetry) telemetry->end_execution();

  if (byzrt) result.forged_tokens = byzrt->finalize();

  result.first_token = result.token_first.front();
  for (NodeId v = 0; v < n; ++v) {
    const auto uv = static_cast<std::size_t>(v);
    for (ProcessMetric& m : proc_at[uv]->final_metrics()) {
      result.process_metrics.push_back(ProcessMetricSample{
          v, result.process_of_node[uv], std::move(m.name), m.value});
    }
  }
  return result;
}

}  // namespace dualrad
