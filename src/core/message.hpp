#pragma once

#include <compare>
#include <cstdint>

#include "core/types.hpp"

/// \file message.hpp
/// The message type exchanged by processes.
///
/// The broadcast problem treats the payload as a black box (Section 3): the
/// only distinguished property is whether a message carries the broadcast
/// token. Algorithms may additionally attach a small amount of structured
/// content (a round tag, as in the footnote of Section 5, plus free bits);
/// the simulator and the lower-bound constructions compare messages by value.

namespace dualrad {

struct Message {
  /// True iff this message carries the broadcast payload ("the message" of
  /// the broadcast problem). Receiving any message with token=true makes the
  /// receiver covered.
  bool token = false;

  /// Process id of the sender. Part of the content (processes know their own
  /// ids and may include them in messages).
  ProcessId origin = kInvalidProcess;

  /// Round label, as in the Section 5 footnote: the source labels messages
  /// with its local round counter so that all awakened nodes share a global
  /// round counter even under asynchronous start.
  Round round_tag = 0;

  /// Algorithm-specific free content.
  std::uint64_t payload = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace dualrad
