#pragma once

#include <compare>
#include <cstdint>

#include "core/types.hpp"

/// \file message.hpp
/// The message type exchanged by processes.
///
/// The broadcast problem treats the payload as a black box (Section 3): the
/// only distinguished property is which broadcast token (if any) a message
/// carries. Algorithms may additionally attach a small amount of structured
/// content (a round tag, as in the footnote of Section 5, plus free bits);
/// the simulator and the lower-bound constructions compare messages by value.

namespace dualrad {

struct Message {
  /// The broadcast token this message carries, or kNoToken. In the
  /// single-message broadcast problem the only token is kBroadcastToken
  /// (== 1), so the historical `Message{/*token=*/true, ...}` spelling keeps
  /// working: `true` promotes to token id 1. Multi-message executions
  /// (src/mac/) use ids 1..k. Receiving a message with token id t makes the
  /// receiver covered for t.
  TokenId token = kNoToken;

  /// Process id of the sender. Part of the content (processes know their own
  /// ids and may include them in messages).
  ProcessId origin = kInvalidProcess;

  /// Round label, as in the Section 5 footnote: the source labels messages
  /// with its local round counter so that all awakened nodes share a global
  /// round counter even under asynchronous start.
  Round round_tag = 0;

  /// Algorithm-specific free content.
  std::uint64_t payload = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace dualrad
