#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

/// \file types.hpp
/// Fundamental identifiers and enumerations for the dual graph radio network
/// model of Kuhn, Lynch, Newport, Oshman, Richa: "Broadcasting in Unreliable
/// Radio Networks" (PODC 2010 / MIT-CSAIL-TR-2010-029).

namespace dualrad {

/// Index of a graph node (vertex of the dual graph (G, G')).
using NodeId = std::int32_t;

/// Identifier of a process (automaton). The paper draws ids from a totally
/// ordered set I with |I| = n; we use {0, 1, ..., n-1}. The *adversary*
/// chooses the bijection between processes and nodes.
using ProcessId = std::int32_t;

/// Round number. Rounds are numbered 1, 2, ... during an execution; 0 is
/// "before the first round" (used e.g. for the source's activation time).
using Round = std::int64_t;

/// Identifier of a broadcast token (multi-message broadcast, src/mac/).
/// Token ids are 1-based so that `kNoToken == 0` converts to/from `bool`
/// exactly like the original single-token flag: `Message{/*token=*/true}`
/// yields `kBroadcastToken` and `if (msg.token)` means "carries a token".
/// Single-message executions use the one token `kBroadcastToken`; a
/// k-message execution uses ids 1..k.
using TokenId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr ProcessId kInvalidProcess = -1;
inline constexpr Round kNever = -1;
inline constexpr TokenId kNoToken = 0;
inline constexpr TokenId kBroadcastToken = 1;

/// Collision rules CR1..CR4 from Section 2.1 of the paper, in order of
/// decreasing strength (from the algorithm's point of view).
///
/// - CR1: if two or more messages reach p (including its own, if it sends),
///   p receives collision notification (top).
/// - CR2: a sender always receives its own message; a non-sender reached by
///   two or more messages receives collision notification.
/// - CR3: a sender always receives its own message; a non-sender reached by
///   two or more messages hears silence (bottom).
/// - CR4: a sender always receives its own message; a non-sender reached by
///   two or more messages receives either silence or one of the messages,
///   at the adversary's discretion.
enum class CollisionRule : std::uint8_t { CR1 = 1, CR2 = 2, CR3 = 3, CR4 = 4 };

/// Start rules from Section 2.1.
///
/// - Synchronous: every process is awake from round 1.
/// - Asynchronous: a process is activated the first time it receives a
///   message (from the environment, for the source, or from another process).
enum class StartRule : std::uint8_t { Synchronous, Asynchronous };

[[nodiscard]] std::string to_string(CollisionRule rule);
[[nodiscard]] std::string to_string(StartRule rule);

/// Internal invariant check that throws std::logic_error on failure. Used for
/// conditions that indicate a bug in this library rather than bad user input.
#define DUALRAD_CHECK(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      throw std::logic_error(std::string("dualrad invariant: ") +   \
                             (msg) + " [" #cond "]");                \
    }                                                                \
  } while (false)

/// Precondition check that throws std::invalid_argument on failure. Used for
/// validating user-supplied arguments at public API boundaries.
#define DUALRAD_REQUIRE(cond, msg)                                       \
  do {                                                                   \
    if (!(cond)) {                                                       \
      throw std::invalid_argument(std::string("dualrad precondition: ") \
                                  + (msg) + " [" #cond "]");             \
    }                                                                    \
  } while (false)

inline std::string to_string(CollisionRule rule) {
  switch (rule) {
    case CollisionRule::CR1: return "CR1";
    case CollisionRule::CR2: return "CR2";
    case CollisionRule::CR3: return "CR3";
    case CollisionRule::CR4: return "CR4";
  }
  return "CR?";
}

inline std::string to_string(StartRule rule) {
  return rule == StartRule::Synchronous ? "sync-start" : "async-start";
}

}  // namespace dualrad
