#pragma once

#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "graph/dual_graph.hpp"

/// \file audit.hpp
/// Execution-trace auditing: independent re-verification that a recorded
/// execution obeys the dual graph model's delivery rules. Used by the test
/// suite, the lower-bound replay harnesses, and available to users who write
/// their own adversaries (the simulator validates choices online; the
/// auditor re-checks the whole trace after the fact).

namespace dualrad::audit {

struct AuditReport {
  bool ok = true;
  std::vector<std::string> violations{};
  /// Forgery outcomes, one entry per forged token some correct node relayed
  /// (the "did a forged token win" dimension). A win is a property of the
  /// *algorithm* under Byzantine faults, not a model violation, so wins do
  /// not clear `ok`; provenance that disagrees with the trace does.
  std::vector<std::string> forged_wins{};

  void fail(std::string what) {
    ok = false;
    violations.push_back(std::move(what));
  }

  [[nodiscard]] bool forged_token_won() const { return !forged_wins.empty(); }
};

/// Audit a complete trace (requires SimConfig::trace == TraceLevel::Full or
/// TraceLevel::Compressed — compressed rounds are decoded on the fly):
///  - every reached node of every sender is a G'-out-neighbor;
///  - every G-out-neighbor of every sender is reached (reliable edges
///    always deliver);
///  - no duplicate reach entries;
///  - no process transmits a broadcast token before holding it;
///  - every token reception is justified by a reaching token message;
///  - each token has exactly one round-0 holder — its environment source.
///    Pass `token_sources` (SimConfig::token_sources) to pin which node
///    that must be per token; when empty, the single-token case is checked
///    against net.source() and multi-token sources are only checked for
///    uniqueness;
///  - SimResult::first_token / token_first match the trace;
///  - reception kinds are consistent with arrival counts under the rule
///    (collision notifications only under CR1/CR2; a non-sender message
///    reception requires that message to have arrived);
///  - every out-of-band token id is registered in SimResult::forged_tokens
///    (Byzantine executions, src/byz/), a non-forger transmits a forged
///    token only after receiving it, and each ForgedTokenRecord's provenance
///    (injection rounds and counts, first victim, victim sends, receptions)
///    matches an independent recomputation from the trace. Wins — a correct
///    node relaying a forged token — are reported in AuditReport::forged_wins
///    naming the token, forger, relaying node, and round.
[[nodiscard]] AuditReport audit_execution(
    const DualGraph& net, const SimResult& result, CollisionRule rule,
    const std::vector<NodeId>& token_sources = {});

}  // namespace dualrad::audit
