#pragma once

#include <vector>

#include "core/message.hpp"
#include "core/reception.hpp"
#include "core/types.hpp"

/// \file trace.hpp
/// Execution traces. `TraceLevel::Full` records, per round, the senders, each
/// sender's realized reach (reliable + adversary-chosen unreliable), and the
/// reception of every node — enough to replay and audit an execution.

namespace dualrad {

enum class TraceLevel : std::uint8_t { None, Counts, Full };

struct SenderRecord {
  NodeId node = kInvalidNode;
  Message message{};
  /// Nodes this message reached (excluding the sender itself, which is always
  /// reached), reliable and unreliable combined.
  std::vector<NodeId> reached{};
};

struct RoundRecord {
  Round round = 0;
  std::vector<SenderRecord> senders{};
  /// reception[node] — what the process at each node received. For sleeping
  /// processes (async start, not yet activated) this is what they *would*
  /// have received; a Message reception is what activated them.
  std::vector<Reception> receptions{};
};

struct Trace {
  TraceLevel level = TraceLevel::None;
  std::vector<RoundRecord> rounds{};

  /// Round-indexed counts (filled at Counts and Full levels).
  std::vector<std::uint32_t> senders_per_round{};
  std::vector<std::uint32_t> collisions_per_round{};
};

}  // namespace dualrad
