#pragma once

#include <vector>

#include "core/message.hpp"
#include "core/reception.hpp"
#include "core/types.hpp"

/// \file trace.hpp
/// Execution traces. `TraceLevel::Full` records, per round, the senders, each
/// sender's realized reach (reliable + adversary-chosen unreliable), and the
/// reception of every node — enough to replay and audit an execution.
/// `Counts` keeps only the per-round sender/collision counters (O(rounds)
/// memory). `Bounded` is the memory-capped mode for 10^6-node trials: a ring
/// buffer holds the counters of the last `SimConfig::trace_window` rounds and
/// everything older is folded into streamed aggregates, so memory is
/// O(window) no matter how long the execution runs.
///
/// `Compressed` keeps the *complete* audit-grade history of `Full`, but
/// delta/varint-encoded into one byte blob: sender and toucher node ids are
/// stored as deltas off the previous id (both lists are ascending), reach
/// lists as zigzag deltas, and silence receptions — the overwhelming
/// majority at sparse densities — are omitted entirely because silence is
/// the decode default. Decoding a round reproduces the `Full`-mode
/// RoundRecord *exactly* (value-equal, pinned in tests), so audits consume
/// either level transparently; memory scales with arrivals, not with
/// nodes x rounds, which is what lets audits run past 10^4 nodes inside the
/// CI memory gate.

namespace dualrad {

enum class TraceLevel : std::uint8_t { None, Counts, Full, Bounded, Compressed };

struct SenderRecord {
  NodeId node = kInvalidNode;
  Message message{};
  /// Nodes this message reached (excluding the sender itself, which is always
  /// reached), reliable and unreliable combined.
  std::vector<NodeId> reached{};
};

struct RoundRecord {
  Round round = 0;
  std::vector<SenderRecord> senders{};
  /// reception[node] — what the process at each node received. For sleeping
  /// processes (async start, not yet activated) this is what they *would*
  /// have received; a Message reception is what activated them.
  std::vector<Reception> receptions{};
};

/// Streamed whole-execution aggregates, maintained in Bounded mode: O(1)
/// memory regardless of execution length.
struct TraceAggregates {
  std::uint64_t total_sends = 0;
  std::uint64_t total_collision_events = 0;
  /// Busiest rounds (earliest round wins ties).
  std::uint32_t max_senders = 0;
  Round max_senders_round = 0;
  std::uint32_t max_collisions = 0;
  Round max_collisions_round = 0;

  friend bool operator==(const TraceAggregates&,
                         const TraceAggregates&) = default;
};

struct Trace {
  TraceLevel level = TraceLevel::None;
  std::vector<RoundRecord> rounds{};

  /// Round-indexed counts (filled at Counts and Full levels).
  std::vector<std::uint32_t> senders_per_round{};
  std::vector<std::uint32_t> collisions_per_round{};

  /// Bounded mode: ring buffers over the last `window` rounds. Round r
  /// (1-based) lives at index (r - 1) % window while
  /// r > rounds_recorded - window; older rounds survive only in `agg`.
  std::size_t window = 0;
  Round rounds_recorded = 0;
  std::vector<std::uint32_t> ring_senders{};
  std::vector<std::uint32_t> ring_collisions{};
  TraceAggregates agg{};

  /// Fold one round's counters into the Bounded ring + aggregates. Both
  /// engines record through this, so Bounded traces stay bit-identical
  /// across them.
  void record_bounded_round(Round round, std::uint32_t senders,
                            std::uint32_t collisions) {
    const auto slot = static_cast<std::size_t>(round - 1) % window;
    ring_senders[slot] = senders;
    ring_collisions[slot] = collisions;
    rounds_recorded = round;
    agg.total_sends += senders;
    agg.total_collision_events += collisions;
    if (senders > agg.max_senders) {
      agg.max_senders = senders;
      agg.max_senders_round = round;
    }
    if (collisions > agg.max_collisions) {
      agg.max_collisions = collisions;
      agg.max_collisions_round = round;
    }
  }

  /// True iff round r's counters are still in the Bounded ring.
  [[nodiscard]] bool in_window(Round r) const {
    return window != 0 && r >= 1 && r <= rounds_recorded &&
           r + static_cast<Round>(window) > rounds_recorded;
  }
  [[nodiscard]] std::uint32_t ring_senders_at(Round r) const {
    DUALRAD_REQUIRE(in_window(r), "round not in the Bounded trace window");
    return ring_senders[static_cast<std::size_t>(r - 1) % window];
  }
  [[nodiscard]] std::uint32_t ring_collisions_at(Round r) const {
    DUALRAD_REQUIRE(in_window(r), "round not in the Bounded trace window");
    return ring_collisions[static_cast<std::size_t>(r - 1) % window];
  }

  /// Compressed mode: delta/varint-encoded round records, one byte range per
  /// round. `blob_offsets[i]` is where round i's encoding starts (its end is
  /// the next offset, or blob.size() for the last round). Both engines build
  /// the same scratch RoundRecord as Full mode and encode through
  /// append_compressed, so the blob is bit-identical across engines and
  /// thread counts.
  std::vector<std::uint8_t> blob{};
  std::vector<std::uint64_t> blob_offsets{};

  [[nodiscard]] std::size_t compressed_rounds() const {
    return blob_offsets.size();
  }
  /// Encode one round record onto the blob (Compressed mode).
  void append_compressed(const RoundRecord& record);
  /// Decode round `index` (0-based) into `out`. `n` sizes out.receptions;
  /// nodes without an encoded reception decode to silence. The result is
  /// value-equal to the RoundRecord Full mode would have stored.
  void decode_compressed(std::size_t index, NodeId n, RoundRecord& out) const;
};

}  // namespace dualrad
