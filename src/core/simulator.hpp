#pragma once

#include <memory>
#include <vector>

#include "core/adversary.hpp"
#include "core/process.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "graph/dual_graph.hpp"

/// \file simulator.hpp
/// The synchronous-round execution engine for the dual graph model
/// (Section 2.1).
///
/// Per round: awake processes choose actions; each sender's message reaches
/// all of its G-out-neighbors, an adversary-chosen subset of its G'-only
/// out-neighbors, and the sender itself; receptions are computed under the
/// configured collision rule (CR1-CR4); processes transition. Under
/// asynchronous start, a process is activated by its first received message.
///
/// The broadcast message arrives at the source process from the environment
/// before round 1 (Section 3). Multi-message executions (the MAC-layer
/// workloads of src/mac/) instead inject k tokens, one per configured source
/// node; completion then means every process holds every token.
///
/// Implementation: a sparse engine (simulator.cpp) built on a frozen CSR
/// adjacency snapshot, epoch-stamped arrival slots with a touched-node list,
/// and calendar-based send scheduling driven by the optional
/// Process::next_send_round / silence_transparent hints — a round costs
/// O(#polled senders + #deliveries) rather than O(n), which is what makes
/// 10^5-node executions practical. The original dense engine survives as
/// run_broadcast_reference (core/reference_engine.hpp) and is held
/// bit-identical to this one by tests/test_engine_equivalence.cpp.

namespace dualrad {

namespace obs {
class RoundTelemetry;
}  // namespace obs

namespace byz {
class ByzantinePlan;
}  // namespace byz

struct SimConfig {
  CollisionRule rule = CollisionRule::CR4;
  StartRule start = StartRule::Asynchronous;
  Round max_rounds = 1'000'000;
  /// Master seed; process i receives mix_seed(seed, i).
  std::uint64_t seed = 1;
  TraceLevel trace = TraceLevel::None;
  /// Ring capacity (rounds) of the TraceLevel::Bounded trace.
  std::size_t trace_window = 1024;
  /// Worker threads of the sharded parallel round kernel; 0 or 1 runs the
  /// round loop inline. The SimResult is bit-identical for every value: the
  /// kernel partitions nodes into contiguous shards, all cross-shard state
  /// is merged in deterministic shard order, and every observable (process
  /// call sets, adversary call order, RNG streams) is per-node independent.
  unsigned threads = 1;
  /// Stop as soon as every process holds every token. When false the
  /// execution runs to max_rounds (useful for termination experiments).
  bool stop_on_completion = true;
  /// Multi-message broadcast: token_sources[i] is the node where token id
  /// i+1 originates (distinct nodes; each receives its token from the
  /// environment before round 1). Empty means the classic single-message
  /// problem: kBroadcastToken originates at net.source().
  std::vector<NodeId> token_sources{};
  /// Optional telemetry sink (obs/telemetry.hpp): per-round hot-path
  /// counters, monotonic phase timers, and per-shard sub-counters. Strictly
  /// out-of-band — the SimResult is bit-identical whether or not telemetry
  /// is attached — and compiled to branch-on-null no-ops when nullptr, so
  /// the disabled overhead is a handful of predicted branches per round.
  /// The object must outlive the run; both engines support it.
  obs::RoundTelemetry* telemetry = nullptr;
  /// Optional Byzantine node-fault plan (byz/plan.hpp), bound to the same
  /// network and alive for the whole run. Both engines apply it identically:
  /// active silent/forging nodes have their protocol sends dropped, forgers
  /// inject forged-token messages each active round, and per-token forgery
  /// provenance lands in SimResult::forged_tokens. Adaptive plans are
  /// mutated by the adversary (byz/adaptive.hpp) through its own non-const
  /// reference; the engines only read.
  const byz::ByzantinePlan* byzantine = nullptr;
};

/// One collected Process::final_metrics entry (node identifies the slot,
/// pid the automaton that ran there).
struct ProcessMetricSample {
  NodeId node = kInvalidNode;
  ProcessId pid = kInvalidProcess;
  std::string name;
  double value = 0.0;
};

/// Provenance of one forged token (SimConfig::byzantine executions): who
/// forged it, when it first flew, and whether it *won* — was ever relayed by
/// a protocol-following (non-forger) node. Consumed by the trace auditor
/// (core/audit.hpp), which independently recomputes every field from a Full
/// or Compressed trace, and by the broadcast-contract checker
/// (campaign/contract.hpp), which reports wins as no-creation violations.
struct ForgedTokenRecord {
  TokenId token = kNoToken;
  NodeId forger = kInvalidNode;
  Round first_injected = kNever;
  std::uint64_t injections = 0;
  /// First non-forger node that transmitted the token (kInvalidNode: none).
  NodeId first_victim = kInvalidNode;
  Round first_victim_round = kNever;
  std::uint64_t victim_sends = 0;
  /// Distinct nodes the token was delivered to (forger included).
  std::uint64_t receptions = 0;

  /// "Did this forged token win": some correct node accepted and relayed it.
  [[nodiscard]] bool won() const { return first_victim != kInvalidNode; }

  friend bool operator==(const ForgedTokenRecord&,
                         const ForgedTokenRecord&) = default;
};

struct SimResult {
  /// True iff every process received every broadcast token.
  bool completed = false;
  /// First round at whose end all processes held all tokens (0 if trivial).
  Round completion_round = kNever;
  Round rounds_executed = 0;
  /// first_token[node]: round at whose end the process at `node` first held
  /// token kBroadcastToken (0 for its source), kNever if it never did.
  /// Identical to token_first[0]; kept as the single-message API.
  std::vector<Round> first_token{};
  /// token_first[i][node]: round at whose end the process at `node` first
  /// held token id i+1. token_first.size() == token count (1 when
  /// SimConfig::token_sources is empty).
  std::vector<std::vector<Round>> token_first{};
  /// proc mapping used: process_of_node[node] = process id.
  std::vector<ProcessId> process_of_node{};
  std::uint64_t total_sends = 0;
  /// Number of (node, round) pairs at which the process observed a
  /// collision: >= 2 messages reached the node and the node was not a
  /// sender, except under CR1 where senders collide too (under CR2-CR4 a
  /// sender deterministically hears its own message).
  std::uint64_t total_collision_events = 0;
  /// Process::final_metrics of every process, in node order. Empty unless
  /// some process exports metrics (e.g. the MAC layer's ack latencies).
  std::vector<ProcessMetricSample> process_metrics{};
  /// Forged-token provenance, in fault order; empty unless the execution ran
  /// with a Byzantine plan containing forgers.
  std::vector<ForgedTokenRecord> forged_tokens{};
  Trace trace{};

  [[nodiscard]] TokenId token_count() const {
    return static_cast<TokenId>(token_first.size());
  }
};

class Simulator {
 public:
  Simulator(const DualGraph& net, ProcessFactory factory, Adversary& adversary,
            SimConfig config);

  /// Run a complete execution and return the result.
  [[nodiscard]] SimResult run();

 private:
  const DualGraph& net_;
  ProcessFactory factory_;
  Adversary& adversary_;
  SimConfig config_;
};

/// Convenience wrapper: build a simulator and run one execution.
[[nodiscard]] SimResult run_broadcast(const DualGraph& net,
                                      const ProcessFactory& factory,
                                      Adversary& adversary,
                                      const SimConfig& config);

/// Validate SimConfig::token_sources against an n-node network: every source
/// must be an in-range node id, sources must be pairwise distinct (each
/// token id maps to exactly one origin), and the token count must stay below
/// byz::kForgedTokenBase so legitimate ids can never collide with forged
/// ones. Throws std::invalid_argument with a message naming the offending
/// entry. Shared by both engines; exposed for direct unit testing.
void validate_token_sources(NodeId n, const std::vector<NodeId>& sources);

}  // namespace dualrad
