#pragma once

#include <optional>

#include "core/message.hpp"
#include "core/types.hpp"

/// \file reception.hpp
/// What a process receives at the end of a round: silence (bottom), collision
/// notification (top, only under CR1/CR2), or a single message.

namespace dualrad {

enum class ReceptionKind : std::uint8_t {
  Silence,    ///< bottom: no message reached the process (or CR3/CR4 masking)
  Collision,  ///< top: collision notification (CR1, CR2 only)
  Message,    ///< exactly one message was delivered
};

struct Reception {
  ReceptionKind kind = ReceptionKind::Silence;
  std::optional<Message> message{};  ///< engaged iff kind == Message

  [[nodiscard]] static Reception silence() { return {}; }
  [[nodiscard]] static Reception collision() {
    return Reception{ReceptionKind::Collision, std::nullopt};
  }
  [[nodiscard]] static Reception of(const Message& m) {
    return Reception{ReceptionKind::Message, m};
  }

  [[nodiscard]] bool is_silence() const {
    return kind == ReceptionKind::Silence;
  }
  [[nodiscard]] bool is_collision() const {
    return kind == ReceptionKind::Collision;
  }
  [[nodiscard]] bool is_message() const {
    return kind == ReceptionKind::Message;
  }
  /// True iff a message carrying some broadcast token was delivered.
  [[nodiscard]] bool has_token() const {
    return is_message() && message->token != kNoToken;
  }

  friend bool operator==(const Reception&, const Reception&) = default;
};

}  // namespace dualrad
