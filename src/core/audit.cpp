#include "core/audit.hpp"

#include <algorithm>
#include <sstream>

#include "graph/graph.hpp"

namespace dualrad::audit {
namespace {

std::string at(Round round, NodeId node) {
  std::ostringstream ss;
  ss << "round " << round << " node " << node << ": ";
  return ss.str();
}

}  // namespace

AuditReport audit_execution(const DualGraph& net, const SimResult& result,
                            CollisionRule rule,
                            const std::vector<NodeId>& token_sources) {
  AuditReport report;
  const bool compressed = result.trace.level == TraceLevel::Compressed;
  if (result.trace.level != TraceLevel::Full && !compressed) {
    report.fail("audit requires a full trace");
    return report;
  }
  const NodeId n = net.node_count();
  const auto un = static_cast<std::size_t>(n);
  if (result.token_first.empty()) {
    report.fail("result has no per-token coverage data");
    return report;
  }
  // first_token is the single-message view of token_first[0]; a result where
  // they disagree is internally inconsistent.
  if (result.first_token != result.token_first.front()) {
    report.fail("first_token does not match token_first[0]");
  }
  // Per-token first-reception reconstruction. The only legitimate round-0
  // holder of a token is its environment source — exactly one node per
  // token, and a known one when the caller pins it — so a result claiming
  // extra (or missing) round-0 coverage fails here rather than becoming
  // ground truth. Everything later must be justified by a traced delivery.
  const std::size_t k = result.token_first.size();
  std::vector<std::vector<Round>> token_seen(
      k, std::vector<Round>(un, kNever));
  for (std::size_t t = 0; t < k; ++t) {
    NodeId holder = kInvalidNode;
    int holders = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (result.token_first[t][static_cast<std::size_t>(v)] == 0) {
        holder = v;
        ++holders;
      }
    }
    NodeId expected = kInvalidNode;
    if (t < token_sources.size()) {
      expected = token_sources[t];
    } else if (k == 1 && token_sources.empty()) {
      expected = net.source();
    }
    if (holders != 1) {
      report.fail("token " + std::to_string(t + 1) + " has " +
                  std::to_string(holders) + " round-0 holders (want 1)");
    } else if (expected != kInvalidNode && holder != expected) {
      report.fail("token " + std::to_string(t + 1) + " originates at node " +
                  std::to_string(holder) + ", expected " +
                  std::to_string(expected));
    } else {
      token_seen[t][static_cast<std::size_t>(holder)] = 0;
    }
  }
  const auto holds = [&](TokenId tok, NodeId v) {
    return tok != kNoToken && static_cast<std::size_t>(tok) <= k &&
           token_seen[static_cast<std::size_t>(tok - 1)]
                     [static_cast<std::size_t>(v)] != kNever;
  };

  // Forged-token provenance (Byzantine executions, src/byz/): the result's
  // ForgedTokenRecords name the planted facts — token id and forger — and
  // the audit recomputes every derived field from the trace, plus per-node
  // first-reception rounds so non-forger relays can be checked for
  // having actually received what they transmit.
  const std::size_t kf = result.forged_tokens.size();
  constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::vector<std::pair<TokenId, std::size_t>> forged_index;
  std::vector<ForgedTokenRecord> forged_recomputed(kf);
  std::vector<std::vector<Round>> forged_seen(kf,
                                              std::vector<Round>(un, kNever));
  for (std::size_t i = 0; i < kf; ++i) {
    forged_recomputed[i].token = result.forged_tokens[i].token;
    forged_recomputed[i].forger = result.forged_tokens[i].forger;
    forged_index.emplace_back(result.forged_tokens[i].token, i);
  }
  std::sort(forged_index.begin(), forged_index.end());
  const auto forged_slot = [&](TokenId tok) {
    const auto it = std::lower_bound(
        forged_index.begin(), forged_index.end(), tok,
        [](const std::pair<TokenId, std::size_t>& e, TokenId t) {
          return e.first < t;
        });
    if (it == forged_index.end() || it->first != tok) return kNoSlot;
    return it->second;
  };

  // The network's frozen CSR snapshots drive the per-round reconstruction:
  // g_csr.row for "every reliable edge delivered", gp_csr.contains for
  // "every reached node is a G' neighbor".
  const CsrGraph& g_csr = net.g_csr();
  const CsrGraph& gp_csr = net.g_prime_csr();

  // Epoch-stamped arrival slots (one epoch per trace record): count + first
  // message per node, full list spilled on collision, and a touched list so
  // per-record cost scales with deliveries, not n. reach_seen carries a
  // per-sender epoch for duplicate detection and reliable-edge coverage.
  std::vector<std::int64_t> arr_epoch(un, 0);
  std::vector<std::uint32_t> arr_count(un, 0);
  std::vector<Message> arr_first(un);
  std::vector<std::vector<Message>> multi(un);
  std::vector<std::int64_t> reach_seen(un, 0);
  std::vector<bool> is_sender(un, false);
  std::vector<NodeId> sender_nodes;
  std::int64_t epoch = 0;
  std::int64_t reach_mark = 0;

  // Compressed traces are decoded one round at a time into a reusable
  // scratch record (the decode is value-identical to the Full-mode record),
  // so the audit itself never materializes the whole history.
  RoundRecord scratch;
  const std::size_t round_count = compressed
                                      ? result.trace.compressed_rounds()
                                      : result.trace.rounds.size();
  for (std::size_t ri = 0; ri < round_count; ++ri) {
    if (compressed) result.trace.decode_compressed(ri, n, scratch);
    const RoundRecord& record =
        compressed ? scratch : result.trace.rounds[ri];
    ++epoch;
    const auto deposit = [&](NodeId v, const Message& m) {
      const auto uv = static_cast<std::size_t>(v);
      if (arr_epoch[uv] != epoch) {
        arr_epoch[uv] = epoch;
        arr_count[uv] = 1;
        arr_first[uv] = m;
        return;
      }
      if (arr_count[uv] == 1) {
        multi[uv].clear();
        multi[uv].push_back(arr_first[uv]);
      }
      ++arr_count[uv];
      multi[uv].push_back(m);
    };

    sender_nodes.clear();
    for (const auto& sender : record.senders) {
      is_sender[static_cast<std::size_t>(sender.node)] = true;
      sender_nodes.push_back(sender.node);
      deposit(sender.node, sender.message);

      ++reach_mark;
      bool duplicates = false;
      for (NodeId v : sender.reached) {
        const auto uv = static_cast<std::size_t>(v);
        if (reach_seen[uv] == reach_mark) duplicates = true;
        reach_seen[uv] = reach_mark;
        if (!gp_csr.contains(sender.node, v)) {
          report.fail(at(record.round, sender.node) + "reached non-neighbor " +
                      std::to_string(v));
        }
        deposit(v, sender.message);
      }
      if (duplicates) {
        report.fail(at(record.round, sender.node) + "duplicate reach entries");
      }
      for (NodeId v : g_csr.row(sender.node)) {
        if (reach_seen[static_cast<std::size_t>(v)] != reach_mark) {
          report.fail(at(record.round, sender.node) +
                      "reliable edge skipped to " + std::to_string(v));
        }
      }
      const TokenId stok = sender.message.token;
      if (stok != kNoToken && static_cast<std::size_t>(stok) <= k) {
        if (!holds(stok, sender.node)) {
          report.fail(at(record.round, sender.node) +
                      "transmitted a token without holding it");
        }
      } else if (stok != kNoToken) {
        const std::size_t fi = forged_slot(stok);
        if (fi == kNoSlot) {
          report.fail(at(record.round, sender.node) +
                      "transmitted unregistered token id " +
                      std::to_string(stok));
        } else {
          ForgedTokenRecord& frec = forged_recomputed[fi];
          if (sender.node == frec.forger) {
            ++frec.injections;
            if (frec.first_injected == kNever) {
              frec.first_injected = record.round;
            }
          } else {
            // A correct relay of a forged token is legal only after the
            // token reached the relay (forged_seen holds strictly earlier
            // rounds here: this round's receptions fold in below).
            if (forged_seen[fi][static_cast<std::size_t>(sender.node)] ==
                kNever) {
              report.fail(at(record.round, sender.node) +
                          "transmitted forged token " + std::to_string(stok) +
                          " without having received it");
            }
            ++frec.victim_sends;
            if (frec.first_victim == kInvalidNode) {
              frec.first_victim = sender.node;
              frec.first_victim_round = record.round;
            }
          }
        }
      }
    }

    // Reception consistency.
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      if (uv >= record.receptions.size()) break;
      const Reception& rec = record.receptions[uv];
      const std::uint32_t arrived_count =
          arr_epoch[uv] == epoch ? arr_count[uv] : 0;
      switch (rec.kind) {
        case ReceptionKind::Collision:
          if (rule != CollisionRule::CR1 && rule != CollisionRule::CR2) {
            report.fail(at(record.round, v) +
                        "collision notification under " + to_string(rule));
          }
          if (arrived_count < 2) {
            report.fail(at(record.round, v) +
                        "collision notification without a collision");
          }
          break;
        case ReceptionKind::Message: {
          const bool arrived =
              arrived_count == 1
                  ? arr_first[uv] == *rec.message
                  : arrived_count >= 2 &&
                        std::find(multi[uv].begin(), multi[uv].end(),
                                  *rec.message) != multi[uv].end();
          if (!arrived) {
            report.fail(at(record.round, v) +
                        "received a message that did not arrive");
          }
          if (arrived_count > 1 && !is_sender[uv] &&
              rule != CollisionRule::CR4) {
            report.fail(at(record.round, v) +
                        "non-sender received one of several messages under " +
                        to_string(rule));
          }
          break;
        }
        case ReceptionKind::Silence:
          if (arrived_count == 1 && !is_sender[uv]) {
            report.fail(at(record.round, v) +
                        "heard silence despite a sole arrival");
          }
          // A sender's own message always reaches it, so a sender can never
          // hear silence under any rule (CR1 gives it the message or top).
          if (is_sender[uv]) {
            report.fail(at(record.round, v) + "sender heard silence");
          }
          break;
      }
      if (rec.has_token()) {
        const TokenId tok = rec.message->token;
        if (static_cast<std::size_t>(tok) <= k) {
          auto& seen = token_seen[static_cast<std::size_t>(tok - 1)];
          if (seen[uv] == kNever) seen[uv] = record.round;
        } else {
          const std::size_t fi = forged_slot(tok);
          if (fi == kNoSlot) {
            report.fail(at(record.round, v) +
                        "received unregistered token id " +
                        std::to_string(tok));
          } else if (forged_seen[fi][uv] == kNever) {
            forged_seen[fi][uv] = record.round;
          }
        }
      }
    }

    for (NodeId v : sender_nodes) is_sender[static_cast<std::size_t>(v)] = false;
  }

  for (std::size_t t = 0; t < k; ++t) {
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      if (result.token_first[t][uv] != token_seen[t][uv]) {
        report.fail("token " + std::to_string(t + 1) +
                    " first-reception mismatch at node " + std::to_string(v) +
                    ": result says " +
                    std::to_string(result.token_first[t][uv]) +
                    ", trace says " + std::to_string(token_seen[t][uv]));
      }
    }
  }

  // Forged-token provenance cross-check: every derived field of every
  // ForgedTokenRecord must match the recomputation, then wins are reported.
  const auto field_mismatch = [&](std::size_t i, const char* field,
                                  std::int64_t claimed, std::int64_t traced) {
    report.fail("forged token " +
                std::to_string(result.forged_tokens[i].token) + " " + field +
                " mismatch: result says " + std::to_string(claimed) +
                ", trace says " + std::to_string(traced));
  };
  for (std::size_t i = 0; i < kf; ++i) {
    const ForgedTokenRecord& claimed = result.forged_tokens[i];
    ForgedTokenRecord& traced = forged_recomputed[i];
    for (const Round r : forged_seen[i]) {
      if (r != kNever) ++traced.receptions;
    }
    if (claimed.first_injected != traced.first_injected) {
      field_mismatch(i, "first_injected", claimed.first_injected,
                     traced.first_injected);
    }
    if (claimed.injections != traced.injections) {
      field_mismatch(i, "injections",
                     static_cast<std::int64_t>(claimed.injections),
                     static_cast<std::int64_t>(traced.injections));
    }
    if (claimed.first_victim != traced.first_victim) {
      field_mismatch(i, "first_victim", claimed.first_victim,
                     traced.first_victim);
    }
    if (claimed.first_victim_round != traced.first_victim_round) {
      field_mismatch(i, "first_victim_round", claimed.first_victim_round,
                     traced.first_victim_round);
    }
    if (claimed.victim_sends != traced.victim_sends) {
      field_mismatch(i, "victim_sends",
                     static_cast<std::int64_t>(claimed.victim_sends),
                     static_cast<std::int64_t>(traced.victim_sends));
    }
    if (claimed.receptions != traced.receptions) {
      field_mismatch(i, "receptions",
                     static_cast<std::int64_t>(claimed.receptions),
                     static_cast<std::int64_t>(traced.receptions));
    }
    if (traced.won()) {
      report.forged_wins.push_back(
          "forged token " + std::to_string(traced.token) +
          " (forger node " + std::to_string(traced.forger) +
          ") won: first relayed by node " + std::to_string(traced.first_victim) +
          " at round " + std::to_string(traced.first_victim_round) + " (" +
          std::to_string(traced.victim_sends) + " victim sends, " +
          std::to_string(traced.receptions) + " receptions)");
    }
  }
  return report;
}

}  // namespace dualrad::audit
