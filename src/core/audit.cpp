#include "core/audit.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace dualrad::audit {
namespace {

std::string at(Round round, NodeId node) {
  std::ostringstream ss;
  ss << "round " << round << " node " << node << ": ";
  return ss.str();
}

}  // namespace

AuditReport audit_execution(const DualGraph& net, const SimResult& result,
                            CollisionRule rule) {
  AuditReport report;
  if (result.trace.level != TraceLevel::Full) {
    report.fail("audit requires a full trace");
    return report;
  }
  const NodeId n = net.node_count();
  std::vector<Round> token_seen(static_cast<std::size_t>(n), kNever);
  token_seen[static_cast<std::size_t>(net.source())] = 0;

  for (const auto& record : result.trace.rounds) {
    // Reconstruct arrivals.
    std::vector<std::vector<Message>> arrivals(static_cast<std::size_t>(n));
    std::vector<bool> is_sender(static_cast<std::size_t>(n), false);
    for (const auto& sender : record.senders) {
      is_sender[static_cast<std::size_t>(sender.node)] = true;
      arrivals[static_cast<std::size_t>(sender.node)].push_back(sender.message);

      std::set<NodeId> reached(sender.reached.begin(), sender.reached.end());
      if (reached.size() != sender.reached.size()) {
        report.fail(at(record.round, sender.node) + "duplicate reach entries");
      }
      for (NodeId v : sender.reached) {
        if (!net.g_prime().has_edge(sender.node, v)) {
          report.fail(at(record.round, sender.node) + "reached non-neighbor " +
                      std::to_string(v));
        }
        arrivals[static_cast<std::size_t>(v)].push_back(sender.message);
      }
      for (NodeId v : net.g().out_neighbors(sender.node)) {
        if (!reached.contains(v)) {
          report.fail(at(record.round, sender.node) +
                      "reliable edge skipped to " + std::to_string(v));
        }
      }
      if (sender.message.token &&
          token_seen[static_cast<std::size_t>(sender.node)] == kNever) {
        report.fail(at(record.round, sender.node) +
                    "transmitted the token without holding it");
      }
    }

    // Reception consistency.
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      if (uv >= record.receptions.size()) break;
      const Reception& rec = record.receptions[uv];
      const auto& arr = arrivals[uv];
      switch (rec.kind) {
        case ReceptionKind::Collision:
          if (rule != CollisionRule::CR1 && rule != CollisionRule::CR2) {
            report.fail(at(record.round, v) +
                        "collision notification under " + to_string(rule));
          }
          if (arr.size() < 2) {
            report.fail(at(record.round, v) +
                        "collision notification without a collision");
          }
          break;
        case ReceptionKind::Message: {
          const bool arrived =
              std::find(arr.begin(), arr.end(), *rec.message) != arr.end();
          if (!arrived) {
            report.fail(at(record.round, v) +
                        "received a message that did not arrive");
          }
          if (arr.size() > 1 && !is_sender[uv] &&
              rule != CollisionRule::CR4) {
            report.fail(at(record.round, v) +
                        "non-sender received one of several messages under " +
                        to_string(rule));
          }
          break;
        }
        case ReceptionKind::Silence:
          if (arr.size() == 1 && !is_sender[uv]) {
            report.fail(at(record.round, v) +
                        "heard silence despite a sole arrival");
          }
          // A sender's own message always reaches it, so a sender can never
          // hear silence under any rule (CR1 gives it the message or top).
          if (is_sender[uv]) {
            report.fail(at(record.round, v) + "sender heard silence");
          }
          break;
      }
      if (rec.has_token() && token_seen[uv] == kNever) {
        token_seen[uv] = record.round;
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    const auto uv = static_cast<std::size_t>(v);
    if (result.first_token[uv] != token_seen[uv]) {
      report.fail("first_token mismatch at node " + std::to_string(v) +
                  ": result says " + std::to_string(result.first_token[uv]) +
                  ", trace says " + std::to_string(token_seen[uv]));
    }
  }
  return report;
}

}  // namespace dualrad::audit
