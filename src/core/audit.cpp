#include "core/audit.hpp"

#include <algorithm>
#include <sstream>

#include "graph/graph.hpp"

namespace dualrad::audit {
namespace {

std::string at(Round round, NodeId node) {
  std::ostringstream ss;
  ss << "round " << round << " node " << node << ": ";
  return ss.str();
}

}  // namespace

AuditReport audit_execution(const DualGraph& net, const SimResult& result,
                            CollisionRule rule,
                            const std::vector<NodeId>& token_sources) {
  AuditReport report;
  const bool compressed = result.trace.level == TraceLevel::Compressed;
  if (result.trace.level != TraceLevel::Full && !compressed) {
    report.fail("audit requires a full trace");
    return report;
  }
  const NodeId n = net.node_count();
  const auto un = static_cast<std::size_t>(n);
  if (result.token_first.empty()) {
    report.fail("result has no per-token coverage data");
    return report;
  }
  // first_token is the single-message view of token_first[0]; a result where
  // they disagree is internally inconsistent.
  if (result.first_token != result.token_first.front()) {
    report.fail("first_token does not match token_first[0]");
  }
  // Per-token first-reception reconstruction. The only legitimate round-0
  // holder of a token is its environment source — exactly one node per
  // token, and a known one when the caller pins it — so a result claiming
  // extra (or missing) round-0 coverage fails here rather than becoming
  // ground truth. Everything later must be justified by a traced delivery.
  const std::size_t k = result.token_first.size();
  std::vector<std::vector<Round>> token_seen(
      k, std::vector<Round>(un, kNever));
  for (std::size_t t = 0; t < k; ++t) {
    NodeId holder = kInvalidNode;
    int holders = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (result.token_first[t][static_cast<std::size_t>(v)] == 0) {
        holder = v;
        ++holders;
      }
    }
    NodeId expected = kInvalidNode;
    if (t < token_sources.size()) {
      expected = token_sources[t];
    } else if (k == 1 && token_sources.empty()) {
      expected = net.source();
    }
    if (holders != 1) {
      report.fail("token " + std::to_string(t + 1) + " has " +
                  std::to_string(holders) + " round-0 holders (want 1)");
    } else if (expected != kInvalidNode && holder != expected) {
      report.fail("token " + std::to_string(t + 1) + " originates at node " +
                  std::to_string(holder) + ", expected " +
                  std::to_string(expected));
    } else {
      token_seen[t][static_cast<std::size_t>(holder)] = 0;
    }
  }
  const auto holds = [&](TokenId tok, NodeId v) {
    return tok != kNoToken && static_cast<std::size_t>(tok) <= k &&
           token_seen[static_cast<std::size_t>(tok - 1)]
                     [static_cast<std::size_t>(v)] != kNever;
  };

  // The network's frozen CSR snapshots drive the per-round reconstruction:
  // g_csr.row for "every reliable edge delivered", gp_csr.contains for
  // "every reached node is a G' neighbor".
  const CsrGraph& g_csr = net.g_csr();
  const CsrGraph& gp_csr = net.g_prime_csr();

  // Epoch-stamped arrival slots (one epoch per trace record): count + first
  // message per node, full list spilled on collision, and a touched list so
  // per-record cost scales with deliveries, not n. reach_seen carries a
  // per-sender epoch for duplicate detection and reliable-edge coverage.
  std::vector<std::int64_t> arr_epoch(un, 0);
  std::vector<std::uint32_t> arr_count(un, 0);
  std::vector<Message> arr_first(un);
  std::vector<std::vector<Message>> multi(un);
  std::vector<std::int64_t> reach_seen(un, 0);
  std::vector<bool> is_sender(un, false);
  std::vector<NodeId> sender_nodes;
  std::int64_t epoch = 0;
  std::int64_t reach_mark = 0;

  // Compressed traces are decoded one round at a time into a reusable
  // scratch record (the decode is value-identical to the Full-mode record),
  // so the audit itself never materializes the whole history.
  RoundRecord scratch;
  const std::size_t round_count = compressed
                                      ? result.trace.compressed_rounds()
                                      : result.trace.rounds.size();
  for (std::size_t ri = 0; ri < round_count; ++ri) {
    if (compressed) result.trace.decode_compressed(ri, n, scratch);
    const RoundRecord& record =
        compressed ? scratch : result.trace.rounds[ri];
    ++epoch;
    const auto deposit = [&](NodeId v, const Message& m) {
      const auto uv = static_cast<std::size_t>(v);
      if (arr_epoch[uv] != epoch) {
        arr_epoch[uv] = epoch;
        arr_count[uv] = 1;
        arr_first[uv] = m;
        return;
      }
      if (arr_count[uv] == 1) {
        multi[uv].clear();
        multi[uv].push_back(arr_first[uv]);
      }
      ++arr_count[uv];
      multi[uv].push_back(m);
    };

    sender_nodes.clear();
    for (const auto& sender : record.senders) {
      is_sender[static_cast<std::size_t>(sender.node)] = true;
      sender_nodes.push_back(sender.node);
      deposit(sender.node, sender.message);

      ++reach_mark;
      bool duplicates = false;
      for (NodeId v : sender.reached) {
        const auto uv = static_cast<std::size_t>(v);
        if (reach_seen[uv] == reach_mark) duplicates = true;
        reach_seen[uv] = reach_mark;
        if (!gp_csr.contains(sender.node, v)) {
          report.fail(at(record.round, sender.node) + "reached non-neighbor " +
                      std::to_string(v));
        }
        deposit(v, sender.message);
      }
      if (duplicates) {
        report.fail(at(record.round, sender.node) + "duplicate reach entries");
      }
      for (NodeId v : g_csr.row(sender.node)) {
        if (reach_seen[static_cast<std::size_t>(v)] != reach_mark) {
          report.fail(at(record.round, sender.node) +
                      "reliable edge skipped to " + std::to_string(v));
        }
      }
      if (sender.message.token != kNoToken &&
          !holds(sender.message.token, sender.node)) {
        report.fail(at(record.round, sender.node) +
                    "transmitted a token without holding it");
      }
    }

    // Reception consistency.
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      if (uv >= record.receptions.size()) break;
      const Reception& rec = record.receptions[uv];
      const std::uint32_t arrived_count =
          arr_epoch[uv] == epoch ? arr_count[uv] : 0;
      switch (rec.kind) {
        case ReceptionKind::Collision:
          if (rule != CollisionRule::CR1 && rule != CollisionRule::CR2) {
            report.fail(at(record.round, v) +
                        "collision notification under " + to_string(rule));
          }
          if (arrived_count < 2) {
            report.fail(at(record.round, v) +
                        "collision notification without a collision");
          }
          break;
        case ReceptionKind::Message: {
          const bool arrived =
              arrived_count == 1
                  ? arr_first[uv] == *rec.message
                  : arrived_count >= 2 &&
                        std::find(multi[uv].begin(), multi[uv].end(),
                                  *rec.message) != multi[uv].end();
          if (!arrived) {
            report.fail(at(record.round, v) +
                        "received a message that did not arrive");
          }
          if (arrived_count > 1 && !is_sender[uv] &&
              rule != CollisionRule::CR4) {
            report.fail(at(record.round, v) +
                        "non-sender received one of several messages under " +
                        to_string(rule));
          }
          break;
        }
        case ReceptionKind::Silence:
          if (arrived_count == 1 && !is_sender[uv]) {
            report.fail(at(record.round, v) +
                        "heard silence despite a sole arrival");
          }
          // A sender's own message always reaches it, so a sender can never
          // hear silence under any rule (CR1 gives it the message or top).
          if (is_sender[uv]) {
            report.fail(at(record.round, v) + "sender heard silence");
          }
          break;
      }
      if (rec.has_token() &&
          static_cast<std::size_t>(rec.message->token) <= k) {
        auto& seen = token_seen[static_cast<std::size_t>(rec.message->token - 1)];
        if (seen[uv] == kNever) seen[uv] = record.round;
      }
    }

    for (NodeId v : sender_nodes) is_sender[static_cast<std::size_t>(v)] = false;
  }

  for (std::size_t t = 0; t < k; ++t) {
    for (NodeId v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      if (result.token_first[t][uv] != token_seen[t][uv]) {
        report.fail("token " + std::to_string(t + 1) +
                    " first-reception mismatch at node " + std::to_string(v) +
                    ": result says " +
                    std::to_string(result.token_first[t][uv]) +
                    ", trace says " + std::to_string(token_seen[t][uv]));
      }
    }
  }
  return report;
}

}  // namespace dualrad::audit
