#pragma once

#include <array>
#include <cstdint>
#include <ctime>
#include <string>
#include <vector>

#include "core/types.hpp"

/// \file telemetry.hpp
/// The engine telemetry layer: per-round hot-path counters, monotonic phase
/// timers, and per-shard sub-counters for the sharded parallel kernel.
///
/// Design constraints (and why they hold):
///
///  * **Strictly out-of-band.** Telemetry only *reads* quantities the round
///    loop already computed (list sizes, sink totals, shard buffers) and
///    samples a monotonic clock. It never draws from an RNG, never touches
///    process or adversary state, and has no observable effect on the
///    execution — `SimResult` is bit-identical with telemetry attached or
///    not (pinned in tests/test_engine_equivalence.cpp).
///  * **Branch-on-null when disabled.** Both engines guard every telemetry
///    statement (including the clock samples) behind
///    `if (config.telemetry != nullptr)`; with the default
///    `SimConfig::telemetry == nullptr` the whole layer costs one predictable
///    branch per phase. bench_engine_scaling pins the disabled overhead.
///  * **Deterministic shard merge.** The parallel kernel's per-shard work
///    (deposits, deliveries, replans) is folded into RoundTelemetry during
///    the engine's existing serial shard-merge, in shard order — so per-shard
///    imbalance is directly measurable and the merged totals equal the serial
///    engine's, for any thread count.
///
/// Memory is bounded like TraceLevel::Bounded: per-round samples live in a
/// ring of the last `window` rounds; everything older survives only in the
/// running totals. The Perfetto exporter (obs/perfetto_writer.hpp) emits one
/// slice per phase per ringed round plus counter tracks.

namespace dualrad::obs {

/// Round phases of both engines, in execution order. The reference engine
/// maps its node scans onto the same phases (its ShardMerge is always 0ns).
enum class Phase : std::uint8_t {
  Poll = 0,    ///< calendar pop + next_action polling (reference: node scan)
  Adversary,   ///< view construction, choose_unreliable_reach, on_round_end
  Propagate,   ///< arrival deposits (sender self + reliable rows + extras)
  Deliver,     ///< reception computation + on_receive/on_activate delivery
  ShardMerge,  ///< serial merge of per-shard buffers (parallel kernel only)
};
inline constexpr std::size_t kPhaseCount = 5;

[[nodiscard]] const char* phase_name(Phase phase);

/// Hot-path counters of one round (and, summed, of a whole execution). All
/// increments happen on the engine thread, outside the shard workers.
struct RoundCounters {
  std::uint64_t polled = 0;           ///< processes popped off the calendar
  std::uint64_t senders = 0;          ///< processes that actually sent
  std::uint64_t deliveries = 0;       ///< arrival deposits (self + G rows + extras)
  std::uint64_t collisions = 0;       ///< observed collision events
  std::uint64_t calendar_scanned = 0; ///< calendar bucket entries scanned (incl. stale)
  std::uint64_t replans = 0;          ///< SendCalendar::plan calls
  std::uint64_t reach_appends = 0;    ///< adversary ReachSink appends
  std::uint64_t newly_covered = 0;    ///< coverage delta size after the round

  void add(const RoundCounters& o) {
    polled += o.polled;
    senders += o.senders;
    deliveries += o.deliveries;
    collisions += o.collisions;
    calendar_scanned += o.calendar_scanned;
    replans += o.replans;
    reach_appends += o.reach_appends;
    newly_covered += o.newly_covered;
  }

  friend bool operator==(const RoundCounters&, const RoundCounters&) = default;
};

/// One ringed per-round sample: counters plus per-phase wall time.
struct RoundSample {
  Round round = 0;
  RoundCounters counters{};
  std::array<std::uint64_t, kPhaseCount> phase_ns{};
};

/// Per-shard totals over the whole execution, folded in shard order during
/// the kernel's serial merge (each field is the size of a per-shard buffer
/// the merge walks anyway, so collection costs nothing on the workers).
/// Imbalance = max/mean of `touched` over shards.
struct ShardTotals {
  std::uint64_t touched = 0;   ///< nodes with >= 1 arrival in this shard
  std::uint64_t collided = 0;  ///< nodes with >= 2 arrivals in this shard
  std::uint64_t replans = 0;   ///< deferred calendar replans emitted
  /// Rounds in which this shard participated (rounds below the parallel
  /// grain run single-sharded, so shard 0's count can exceed the others').
  std::uint64_t rounds = 0;
};

/// Monotonic nanosecond clock (CLOCK_MONOTONIC; the raw value is only ever
/// differenced).
[[nodiscard]] inline std::uint64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// The counter registry one execution writes into. Attach via
/// `SimConfig::telemetry`; the object must outlive the run. Not thread-safe:
/// all writes happen on the engine thread (per-shard data is folded in
/// during the serial merge).
class RoundTelemetry {
 public:
  /// `window`: per-round sample ring capacity (like SimConfig::trace_window).
  explicit RoundTelemetry(std::size_t window = 4096);

  /// Reset and size per-execution state. Engines call this once per run.
  void begin_execution(NodeId nodes, unsigned shards);
  void end_execution();

  void begin_round(Round round);
  /// Counters of the round being executed (engine thread only).
  [[nodiscard]] RoundCounters& counters() { return current_.counters; }
  void add_phase_ns(Phase phase, std::uint64_t ns) {
    current_.phase_ns[static_cast<std::size_t>(phase)] += ns;
  }
  /// Fold one shard's round contribution, called in shard order.
  void add_shard_round(unsigned shard, std::uint64_t touched,
                       std::uint64_t collided, std::uint64_t replans);
  void end_round();

  // --- accessors -----------------------------------------------------------
  [[nodiscard]] NodeId nodes() const { return nodes_; }
  [[nodiscard]] unsigned shards() const { return shards_; }
  [[nodiscard]] Round rounds_recorded() const { return rounds_recorded_; }
  [[nodiscard]] const RoundCounters& totals() const { return totals_; }
  [[nodiscard]] std::uint64_t total_phase_ns(Phase phase) const {
    return total_phase_ns_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] std::uint64_t total_ns() const;
  [[nodiscard]] const std::vector<ShardTotals>& shard_totals() const {
    return shard_totals_;
  }
  [[nodiscard]] std::size_t window() const { return window_; }
  /// True iff round r's sample is still in the ring.
  [[nodiscard]] bool in_window(Round r) const {
    return r >= 1 && r <= rounds_recorded_ &&
           r + static_cast<Round>(window_) > rounds_recorded_;
  }
  [[nodiscard]] const RoundSample& sample_at(Round r) const;
  /// Ringed samples in ascending round order (the Perfetto export order).
  [[nodiscard]] std::vector<RoundSample> window_samples() const;

  /// Peak deliveries observed in any single round (whole execution).
  [[nodiscard]] std::uint64_t max_round_deliveries() const {
    return max_round_deliveries_;
  }
  [[nodiscard]] Round max_round_deliveries_round() const {
    return max_round_deliveries_round_;
  }

 private:
  std::size_t window_;
  NodeId nodes_ = 0;
  unsigned shards_ = 1;
  Round rounds_recorded_ = 0;
  RoundSample current_{};
  std::vector<RoundSample> ring_;
  RoundCounters totals_{};
  std::array<std::uint64_t, kPhaseCount> total_phase_ns_{};
  std::vector<ShardTotals> shard_totals_;
  std::uint64_t max_round_deliveries_ = 0;
  Round max_round_deliveries_round_ = 0;
};

/// Scoped phase timer: samples the clock at construction and adds the
/// elapsed nanoseconds on stop()/destruction. Constructed only when
/// telemetry is attached, so the disabled path never touches the clock.
class PhaseTimer {
 public:
  PhaseTimer(RoundTelemetry* telemetry, Phase phase)
      : telemetry_(telemetry), phase_(phase),
        start_(telemetry ? monotonic_ns() : 0) {}
  ~PhaseTimer() { stop(); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  void stop() {
    if (telemetry_ == nullptr) return;
    telemetry_->add_phase_ns(phase_, monotonic_ns() - start_);
    telemetry_ = nullptr;
  }

 private:
  RoundTelemetry* telemetry_;
  Phase phase_;
  std::uint64_t start_;
};

}  // namespace dualrad::obs
