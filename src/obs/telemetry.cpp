#include "obs/telemetry.hpp"

#include <algorithm>

namespace dualrad::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::Poll: return "poll";
    case Phase::Adversary: return "adversary";
    case Phase::Propagate: return "propagate";
    case Phase::Deliver: return "deliver";
    case Phase::ShardMerge: return "shard-merge";
  }
  return "phase?";
}

RoundTelemetry::RoundTelemetry(std::size_t window) : window_(window) {
  DUALRAD_REQUIRE(window_ >= 1, "telemetry window must be positive");
  ring_.resize(window_);
}

void RoundTelemetry::begin_execution(NodeId nodes, unsigned shards) {
  nodes_ = nodes;
  shards_ = std::max(1u, shards);
  rounds_recorded_ = 0;
  current_ = RoundSample{};
  for (RoundSample& s : ring_) s = RoundSample{};
  totals_ = RoundCounters{};
  total_phase_ns_.fill(0);
  shard_totals_.assign(shards_, ShardTotals{});
  max_round_deliveries_ = 0;
  max_round_deliveries_round_ = 0;
}

void RoundTelemetry::end_execution() {}

void RoundTelemetry::begin_round(Round round) {
  current_ = RoundSample{};
  current_.round = round;
}

void RoundTelemetry::add_shard_round(unsigned shard, std::uint64_t touched,
                                     std::uint64_t collided,
                                     std::uint64_t replans) {
  if (shard >= shard_totals_.size()) shard_totals_.resize(shard + 1);
  ShardTotals& t = shard_totals_[shard];
  t.touched += touched;
  t.collided += collided;
  t.replans += replans;
  ++t.rounds;
}

void RoundTelemetry::end_round() {
  totals_.add(current_.counters);
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    total_phase_ns_[p] += current_.phase_ns[p];
  }
  if (current_.counters.deliveries > max_round_deliveries_) {
    max_round_deliveries_ = current_.counters.deliveries;
    max_round_deliveries_round_ = current_.round;
  }
  rounds_recorded_ = current_.round;
  ring_[static_cast<std::size_t>(current_.round - 1) % window_] = current_;
}

std::uint64_t RoundTelemetry::total_ns() const {
  std::uint64_t total = 0;
  for (const std::uint64_t ns : total_phase_ns_) total += ns;
  return total;
}

const RoundSample& RoundTelemetry::sample_at(Round r) const {
  DUALRAD_REQUIRE(in_window(r), "round not in the telemetry window");
  return ring_[static_cast<std::size_t>(r - 1) % window_];
}

std::vector<RoundSample> RoundTelemetry::window_samples() const {
  std::vector<RoundSample> out;
  if (rounds_recorded_ == 0) return out;
  const Round first = std::max<Round>(
      1, rounds_recorded_ - static_cast<Round>(window_) + 1);
  out.reserve(static_cast<std::size_t>(rounds_recorded_ - first + 1));
  for (Round r = first; r <= rounds_recorded_; ++r) {
    out.push_back(sample_at(r));
  }
  return out;
}

}  // namespace dualrad::obs
