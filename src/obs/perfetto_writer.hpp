#pragma once

#include <string>

#include "obs/telemetry.hpp"

/// \file perfetto_writer.hpp
/// Chrome trace-event JSON export of a RoundTelemetry — loadable in
/// ui.perfetto.dev (and chrome://tracing).
///
/// Layout: one complete ("ph":"X") slice per phase per ringed round on a
/// single engine track, laid out on a synthetic timeline built by summing
/// phase durations (the telemetry records durations, not absolute times, so
/// the trace shows each round's relative phase costs back to back), plus one
/// counter ("ph":"C") track per hot-path counter sampled at each round's
/// start, and a per-shard deposits counter track when the execution ran
/// sharded. Rounds older than the telemetry window are folded into a single
/// leading "earlier-rounds" slice sized by the out-of-window share of the
/// total phase time, so the timeline still spans the whole execution.

namespace dualrad::obs {

/// Serialize `telemetry` as Chrome trace-event JSON ({"traceEvents":[...]}).
/// `process_name` labels the trace's process row (e.g. the scenario name;
/// must not contain '"' or '\\').
[[nodiscard]] std::string to_perfetto_json(
    const RoundTelemetry& telemetry,
    const std::string& process_name = "dualrad");

/// Write to_perfetto_json(telemetry) to `path` (truncating). Throws
/// std::runtime_error on I/O failure.
void write_perfetto_trace(const RoundTelemetry& telemetry,
                          const std::string& path,
                          const std::string& process_name = "dualrad");

}  // namespace dualrad::obs
