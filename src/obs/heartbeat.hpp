#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

/// \file heartbeat.hpp
/// A reusable periodic background reporter.
///
/// Owns one thread that invokes a callback every `period` until stop().
/// The wait is a condition-variable wait, not a sleep, so stop() takes
/// effect immediately: a job that finishes after 50 ms never pays out a
/// 60 s heartbeat interval at shutdown. Used by the campaign engine's
/// progress heartbeat and the serve-mode coordinator's status stream.

namespace dualrad::obs {

class Heartbeat {
 public:
  Heartbeat() = default;
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;
  ~Heartbeat() { stop(); }

  /// Start ticking: `tick` runs on the reporter thread every `period`,
  /// first invocation one full period after start(). No-op if already
  /// running or period is non-positive.
  void start(std::chrono::milliseconds period, std::function<void()> tick);

  /// Stop promptly (without waiting out the current period) and join.
  /// Idempotent; safe to call when never started. The callback is never
  /// invoked again after stop() returns.
  void stop();

  [[nodiscard]] bool running() const { return thread_.joinable(); }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dualrad::obs
