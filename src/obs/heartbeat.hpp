#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

/// \file heartbeat.hpp
/// A reusable periodic background reporter.
///
/// Owns one thread that invokes a callback every `period` until stop().
/// The wait is a condition-variable wait, not a sleep, so stop() takes
/// effect immediately: a job that finishes after 50 ms never pays out a
/// 60 s heartbeat interval at shutdown. Used by the campaign engine's
/// progress heartbeat and the serve-mode coordinator's status stream.
///
/// Thread-safety: start(), stop() and running() may be called from any
/// thread, concurrently. Lifecycle transitions are serialized by their own
/// mutex (separate from the tick wait's mutex, so a stop() can never
/// deadlock against a tick in flight), and running() reads an atomic flag
/// rather than touching the std::thread object that start()/stop()
/// mutate — reading thread_.joinable() here used to be a data race under
/// concurrent stop() (caught by inspection while wiring the TSan CI job;
/// regression-tested in test_serve ServeHeartbeat.ConcurrentObserversAndStop).

namespace dualrad::obs {

class Heartbeat {
 public:
  Heartbeat() = default;
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;
  ~Heartbeat() { stop(); }

  /// Start ticking: `tick` runs on the reporter thread every `period`,
  /// first invocation one full period after start(). No-op if already
  /// running or period is non-positive.
  void start(std::chrono::milliseconds period, std::function<void()> tick);

  /// Stop promptly (without waiting out the current period) and join.
  /// Idempotent and safe to race with other stop() calls; safe to call
  /// when never started. The callback is never invoked again after the
  /// first stop() returns.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

 private:
  std::mutex lifecycle_;  ///< serializes start()/stop() against each other
  std::atomic<bool> running_{false};
  std::mutex mutex_;  ///< guards stop_, paired with cv_ for the tick wait
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dualrad::obs
