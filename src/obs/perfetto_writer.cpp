#include "obs/perfetto_writer.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace dualrad::obs {

namespace {

constexpr int kPid = 1;          // one trace process: the engine
constexpr int kPhaseTid = 1;     // the phase-slice track

void append(std::string& out, const char* fmt, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

/// Whole-microsecond timestamps keep the JSON exact (Chrome's "ts" is in us;
/// fractional values round-trip poorly through viewers). Durations below
/// 1 us are clamped up so every slice stays visible and the cursor advances.
std::uint64_t to_us(std::uint64_t ns) { return ns < 1000 ? 1 : ns / 1000; }

}  // namespace

std::string to_perfetto_json(const RoundTelemetry& telemetry,
                             const std::string& process_name) {
  DUALRAD_REQUIRE(process_name.find('"') == std::string::npos &&
                      process_name.find('\\') == std::string::npos,
                  "process name must not need JSON escaping");
  std::string out = "{\"traceEvents\":[\n";
  append(out,
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
         "\"args\":{\"name\":\"%s\"}},\n",
         kPid, process_name.c_str());
  append(out,
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
         "\"args\":{\"name\":\"engine rounds\"}},\n",
         kPid, kPhaseTid);

  const std::vector<RoundSample> samples = telemetry.window_samples();

  // Synthetic timeline cursor. Rounds that aged out of the window are
  // represented by one aggregate slice so the visible tail sits at its true
  // offset into the execution's total phase time.
  std::uint64_t cursor_us = 0;
  std::uint64_t windowed_ns = 0;
  for (const RoundSample& s : samples) {
    for (const std::uint64_t ns : s.phase_ns) windowed_ns += ns;
  }
  const std::uint64_t total = telemetry.total_ns();
  if (total > windowed_ns && !samples.empty()) {
    const std::uint64_t folded_us = to_us(total - windowed_ns);
    append(out,
           "{\"name\":\"earlier-rounds\",\"ph\":\"X\",\"ts\":%" PRIu64
           ",\"dur\":%" PRIu64 ",\"pid\":%d,\"tid\":%d,"
           "\"args\":{\"rounds\":%lld}},\n",
           cursor_us, folded_us, kPid, kPhaseTid,
           static_cast<long long>(samples.front().round - 1));
    cursor_us += folded_us;
  }

  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  first = true;
  for (const RoundSample& s : samples) {
    // Counter tracks sample at the round's start timestamp.
    comma();
    append(out,
           "{\"name\":\"senders\",\"ph\":\"C\",\"ts\":%" PRIu64
           ",\"pid\":%d,\"args\":{\"polled\":%" PRIu64 ",\"senders\":%" PRIu64
           "}}",
           cursor_us, kPid, s.counters.polled, s.counters.senders);
    comma();
    append(out,
           "{\"name\":\"deliveries\",\"ph\":\"C\",\"ts\":%" PRIu64
           ",\"pid\":%d,\"args\":{\"deliveries\":%" PRIu64
           ",\"collisions\":%" PRIu64 ",\"reach_appends\":%" PRIu64 "}}",
           cursor_us, kPid, s.counters.deliveries, s.counters.collisions,
           s.counters.reach_appends);
    comma();
    append(out,
           "{\"name\":\"coverage\",\"ph\":\"C\",\"ts\":%" PRIu64
           ",\"pid\":%d,\"args\":{\"newly_covered\":%" PRIu64
           ",\"replans\":%" PRIu64 "}}",
           cursor_us, kPid, s.counters.newly_covered, s.counters.replans);
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      const std::uint64_t ns = s.phase_ns[p];
      if (ns == 0) continue;  // ShardMerge is 0 on serial runs; skip noise
      const std::uint64_t dur = to_us(ns);
      comma();
      append(out,
             "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%" PRIu64
             ",\"dur\":%" PRIu64 ",\"pid\":%d,\"tid\":%d,"
             "\"args\":{\"round\":%lld}}",
             phase_name(static_cast<Phase>(p)), cursor_us, dur, kPid,
             kPhaseTid, static_cast<long long>(s.round));
      cursor_us += dur;
    }
  }

  // Per-shard deposit totals as one final counter sample per shard track —
  // the imbalance readout for sharded executions.
  if (telemetry.shards() > 1) {
    const auto& shards = telemetry.shard_totals();
    for (std::size_t w = 0; w < shards.size(); ++w) {
      comma();
      append(out,
             "{\"name\":\"shard%zu touched\",\"ph\":\"C\",\"ts\":%" PRIu64
             ",\"pid\":%d,\"args\":{\"touched\":%" PRIu64
             ",\"collided\":%" PRIu64 ",\"rounds\":%" PRIu64 "}}",
             w, cursor_us, kPid, shards[w].touched, shards[w].collided,
             shards[w].rounds);
    }
  }

  out += "\n]}\n";
  return out;
}

void write_perfetto_trace(const RoundTelemetry& telemetry,
                          const std::string& path,
                          const std::string& process_name) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("dualrad: cannot open " + path);
  const std::string json = to_perfetto_json(telemetry, process_name);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) throw std::runtime_error("dualrad: write failed: " + path);
}

}  // namespace dualrad::obs
