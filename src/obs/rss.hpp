#pragma once

#include <cstdint>

/// \file rss.hpp
/// Process resident-set-size sampling for the telemetry layer, the campaign
/// heartbeat, and the benches.
///
/// Linux's `getrusage` peak (`ru_maxrss`) is a process-lifetime high-water
/// mark: a bench that measures several scenarios in one process sees later
/// rows inherit earlier scenarios' peaks. The kernel *does* expose a
/// resettable peak: writing "5" to /proc/self/clear_refs resets the mm
/// high-water counters, after which /proc/self/status VmHWM reports the peak
/// since the reset. `reset_peak()` + `peak_rss_bytes()` implement that
/// per-measurement "delta mode"; when /proc is unavailable the functions
/// degrade to the monotone getrusage value (reset_peak returns false so
/// callers can annotate their output).

namespace dualrad::obs {

/// Current resident set size in bytes (VmRSS; 0 if unavailable).
[[nodiscard]] std::uint64_t current_rss_bytes();

/// Peak resident set size in bytes since process start — or since the last
/// successful reset_peak() (VmHWM, falling back to ru_maxrss).
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Reset the kernel's RSS high-water mark (echo 5 > /proc/self/clear_refs),
/// first trimming freed allocator arenas back to the OS (glibc) so the new
/// watermark starts from the live footprint rather than retained heap.
/// Returns true on success; false means peak_rss_bytes() stays monotone.
bool reset_peak();

[[nodiscard]] inline double current_rss_mb() {
  return static_cast<double>(current_rss_bytes()) / (1024.0 * 1024.0);
}
[[nodiscard]] inline double peak_rss_mb() {
  return static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0);
}

}  // namespace dualrad::obs
