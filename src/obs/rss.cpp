#include "obs/rss.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <cstring>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace dualrad::obs {

namespace {

/// Parse a "Vm...: <kB> kB" line from /proc/self/status; 0 if absent.
std::uint64_t proc_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &value) == 1) kb = value;
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::uint64_t current_rss_bytes() { return proc_status_kb("VmRSS") * 1024; }

std::uint64_t peak_rss_bytes() {
  const std::uint64_t hwm = proc_status_kb("VmHWM") * 1024;
  if (hwm != 0) return hwm;
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
}

bool reset_peak() {
#if defined(__GLIBC__)
  // Return freed arena pages to the OS first: clear_refs resets VmHWM to
  // the *current* RSS, so heap the allocator retains from earlier work
  // would otherwise leak into every later measurement's floor.
  malloc_trim(0);
#endif
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

}  // namespace dualrad::obs
