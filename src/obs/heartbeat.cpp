#include "obs/heartbeat.hpp"

#include <utility>

namespace dualrad::obs {

void Heartbeat::start(std::chrono::milliseconds period,
                      std::function<void()> tick) {
  const std::lock_guard<std::mutex> lifecycle(lifecycle_);
  if (thread_.joinable() || period.count() <= 0 || !tick) return;
  // No reporter thread exists yet, so this write needs no mutex_; the
  // std::thread constructor below synchronizes-with the new thread.
  stop_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this, period, tick = std::move(tick)] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, period, [this] { return stop_; })) {
      // Tick outside the lock so a slow callback never delays stop().
      lock.unlock();
      tick();
      lock.lock();
    }
  });
}

void Heartbeat::stop() {
  // lifecycle_ (not mutex_) serializes concurrent stop() calls: joining
  // under mutex_ would deadlock against a tick wait, and joining without a
  // lock would let two racing stop() calls both reach thread_.join().
  const std::lock_guard<std::mutex> lifecycle(lifecycle_);
  if (!thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_one();
  thread_.join();
  running_.store(false, std::memory_order_release);
}

}  // namespace dualrad::obs
