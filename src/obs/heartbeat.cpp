#include "obs/heartbeat.hpp"

#include <utility>

namespace dualrad::obs {

void Heartbeat::start(std::chrono::milliseconds period,
                      std::function<void()> tick) {
  if (thread_.joinable() || period.count() <= 0 || !tick) return;
  stop_ = false;
  thread_ = std::thread([this, period, tick = std::move(tick)] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, period, [this] { return stop_; })) {
      // Tick outside the lock so a slow callback never delays stop().
      lock.unlock();
      tick();
      lock.lock();
    }
  });
}

void Heartbeat::stop() {
  if (!thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_one();
  thread_.join();
}

}  // namespace dualrad::obs
