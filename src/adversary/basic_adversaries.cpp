#include "adversary/basic_adversaries.hpp"

namespace dualrad {

void FullInterferenceAdversary::choose_unreliable_reach(
    const AdversaryView& view, std::span<const NodeId> senders,
    ReachSink& sink) {
  for (std::size_t i = 0; i < senders.size(); ++i) {
    sink.add_span(i, view.unreliable->row(senders[i]));
  }
}

Reception FullInterferenceAdversary::resolve_cr4(
    const AdversaryView& view, NodeId node,
    const std::vector<Message>& arrivals) {
  (void)view;
  (void)node;
  if (!deliver_on_cr4_) return Reception::silence();
  const Message* best = &arrivals.front();
  for (const Message& m : arrivals) {
    if (m.origin < best->origin) best = &m;
  }
  return Reception::of(*best);
}

BernoulliAdversary::BernoulliAdversary(double p, std::uint64_t seed,
                                       bool reset_each_execution)
    : p_(p),
      seed_(seed),
      reset_each_execution_(reset_each_execution),
      rng_(seed) {
  DUALRAD_REQUIRE(p >= 0.0 && p <= 1.0, "p must be a probability");
}

void BernoulliAdversary::on_execution_start(const DualGraph& net) {
  (void)net;
  if (reset_each_execution_) rng_ = StreamRng(seed_);
}

void BernoulliAdversary::choose_unreliable_reach(
    const AdversaryView& view, std::span<const NodeId> senders,
    ReachSink& sink) {
  // One coin per (sender, unreliable out-neighbor), sampled straight off the
  // CSR row — the draw order (senders ascending, row order within a sender)
  // is the noise stream's replay contract.
  for (std::size_t i = 0; i < senders.size(); ++i) {
    for (const NodeId v : view.unreliable->row(senders[i])) {
      if (rng_.bernoulli(p_)) sink.add(i, v);
    }
  }
}

Reception BernoulliAdversary::resolve_cr4(const AdversaryView& view,
                                          NodeId node,
                                          const std::vector<Message>& arrivals) {
  (void)view;
  (void)node;
  if (rng_.bernoulli(0.5)) return Reception::silence();
  return Reception::of(arrivals[static_cast<std::size_t>(
      rng_.below(arrivals.size()))]);
}

FixedAssignmentAdversary::FixedAssignmentAdversary(
    std::vector<ProcessId> process_of_node, Adversary& inner)
    : process_of_node_(std::move(process_of_node)), inner_(inner) {}

std::vector<ProcessId> FixedAssignmentAdversary::assign_processes(
    const DualGraph& net) {
  DUALRAD_REQUIRE(process_of_node_.size() ==
                      static_cast<std::size_t>(net.node_count()),
                  "fixed assignment has wrong size");
  return process_of_node_;
}

void FixedAssignmentAdversary::choose_unreliable_reach(
    const AdversaryView& view, std::span<const NodeId> senders,
    ReachSink& sink) {
  inner_.choose_unreliable_reach(view, senders, sink);
}

Reception FixedAssignmentAdversary::resolve_cr4(
    const AdversaryView& view, NodeId node,
    const std::vector<Message>& arrivals) {
  return inner_.resolve_cr4(view, node, arrivals);
}

void FixedAssignmentAdversary::on_execution_start(const DualGraph& net) {
  inner_.on_execution_start(net);
}

void FixedAssignmentAdversary::on_round_end(const AdversaryView& view) {
  inner_.on_round_end(view);
}

}  // namespace dualrad
