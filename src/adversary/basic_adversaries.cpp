#include "adversary/basic_adversaries.hpp"

namespace dualrad {

std::vector<ReachChoice> FullInterferenceAdversary::choose_unreliable_reach(
    const AdversaryView& view, const std::vector<NodeId>& senders) {
  std::vector<ReachChoice> out(senders.size());
  for (std::size_t i = 0; i < senders.size(); ++i) {
    const auto extra = view.net->unreliable_out(senders[i]);
    out[i].extra.assign(extra.begin(), extra.end());
  }
  return out;
}

Reception FullInterferenceAdversary::resolve_cr4(
    const AdversaryView& view, NodeId node,
    const std::vector<Message>& arrivals) {
  (void)view;
  (void)node;
  if (!deliver_on_cr4_) return Reception::silence();
  const Message* best = &arrivals.front();
  for (const Message& m : arrivals) {
    if (m.origin < best->origin) best = &m;
  }
  return Reception::of(*best);
}

BernoulliAdversary::BernoulliAdversary(double p, std::uint64_t seed,
                                       bool reset_each_execution)
    : p_(p),
      seed_(seed),
      reset_each_execution_(reset_each_execution),
      rng_(seed) {
  DUALRAD_REQUIRE(p >= 0.0 && p <= 1.0, "p must be a probability");
}

void BernoulliAdversary::on_execution_start(const DualGraph& net) {
  (void)net;
  if (reset_each_execution_) rng_ = StreamRng(seed_);
}

std::vector<ReachChoice> BernoulliAdversary::choose_unreliable_reach(
    const AdversaryView& view, const std::vector<NodeId>& senders) {
  std::vector<ReachChoice> out(senders.size());
  for (std::size_t i = 0; i < senders.size(); ++i) {
    for (NodeId v : view.net->unreliable_out(senders[i])) {
      if (rng_.bernoulli(p_)) out[i].extra.push_back(v);
    }
  }
  return out;
}

Reception BernoulliAdversary::resolve_cr4(const AdversaryView& view,
                                          NodeId node,
                                          const std::vector<Message>& arrivals) {
  (void)view;
  (void)node;
  if (rng_.bernoulli(0.5)) return Reception::silence();
  return Reception::of(arrivals[static_cast<std::size_t>(
      rng_.below(arrivals.size()))]);
}

FixedAssignmentAdversary::FixedAssignmentAdversary(
    std::vector<ProcessId> process_of_node, Adversary& inner)
    : process_of_node_(std::move(process_of_node)), inner_(inner) {}

std::vector<ProcessId> FixedAssignmentAdversary::assign_processes(
    const DualGraph& net) {
  DUALRAD_REQUIRE(process_of_node_.size() ==
                      static_cast<std::size_t>(net.node_count()),
                  "fixed assignment has wrong size");
  return process_of_node_;
}

std::vector<ReachChoice> FixedAssignmentAdversary::choose_unreliable_reach(
    const AdversaryView& view, const std::vector<NodeId>& senders) {
  return inner_.choose_unreliable_reach(view, senders);
}

Reception FixedAssignmentAdversary::resolve_cr4(
    const AdversaryView& view, NodeId node,
    const std::vector<Message>& arrivals) {
  return inner_.resolve_cr4(view, node, arrivals);
}

void FixedAssignmentAdversary::on_execution_start(const DualGraph& net) {
  inner_.on_execution_start(net);
}

}  // namespace dualrad
