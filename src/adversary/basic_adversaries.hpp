#pragma once

#include <cstdint>
#include <vector>

#include "core/adversary.hpp"
#include "core/rng.hpp"

/// \file basic_adversaries.hpp
/// Simple adversaries: benign (no unreliable edge ever fires), full
/// interference (every unreliable edge fires every round), and Bernoulli
/// (each unreliable edge fires independently with probability p).
///
/// All are legal adversaries of the model; none is worst-case. They bracket
/// the space the greedy blocker (greedy_blocker.hpp) and the proof-exact
/// lower-bound adversaries live in. All write their choices through the
/// sparse batch `ReachSink` API and allocate nothing per round.

namespace dualrad {

/// Never fires an unreliable edge; CR4 collisions resolve to silence.
/// Equivalent to running on the reliable graph alone.
class BenignAdversary : public Adversary {};

/// Every unreliable edge fires every round. CR4 collisions resolve to
/// silence by default, or to the message of the smallest-id sender when
/// `deliver_on_cr4` is set.
class FullInterferenceAdversary : public Adversary {
 public:
  explicit FullInterferenceAdversary(bool deliver_on_cr4 = false)
      : deliver_on_cr4_(deliver_on_cr4) {}

  void choose_unreliable_reach(const AdversaryView& view,
                               std::span<const NodeId> senders,
                               ReachSink& sink) override;

  [[nodiscard]] Reception resolve_cr4(
      const AdversaryView& view, NodeId node,
      const std::vector<Message>& arrivals) override;

 private:
  bool deliver_on_cr4_;
};

/// Each unreliable edge fires independently with probability p each round;
/// CR4 collisions resolve to silence with probability 1/2, otherwise to a
/// uniformly random arriving message. Fully deterministic given the seed.
/// By default the noise stream resets at each execution (identical replays,
/// good for reproducing single runs); pass reset_each_execution = false to
/// model ongoing channel noise across repeated broadcasts (required for
/// link-quality estimation experiments, where replayed noise would
/// correlate the samples).
class BernoulliAdversary : public Adversary {
 public:
  BernoulliAdversary(double p, std::uint64_t seed,
                     bool reset_each_execution = true);

  void choose_unreliable_reach(const AdversaryView& view,
                               std::span<const NodeId> senders,
                               ReachSink& sink) override;

  [[nodiscard]] Reception resolve_cr4(
      const AdversaryView& view, NodeId node,
      const std::vector<Message>& arrivals) override;

  void on_execution_start(const DualGraph& net) override;

 private:
  double p_;
  std::uint64_t seed_;
  bool reset_each_execution_;
  StreamRng rng_;
};

/// Adversary that chooses a fixed proc mapping and otherwise delegates to a
/// wrapped adversary. Used to pin ids (e.g. "bridge gets id i").
class FixedAssignmentAdversary : public Adversary {
 public:
  FixedAssignmentAdversary(std::vector<ProcessId> process_of_node,
                           Adversary& inner);

  [[nodiscard]] std::vector<ProcessId> assign_processes(
      const DualGraph& net) override;
  void choose_unreliable_reach(const AdversaryView& view,
                               std::span<const NodeId> senders,
                               ReachSink& sink) override;
  [[nodiscard]] Reception resolve_cr4(
      const AdversaryView& view, NodeId node,
      const std::vector<Message>& arrivals) override;
  void on_execution_start(const DualGraph& net) override;
  void on_round_end(const AdversaryView& view) override;

 private:
  std::vector<ProcessId> process_of_node_;
  Adversary& inner_;
};

}  // namespace dualrad
