#include "adversary/scripted_adversary.hpp"

namespace dualrad {

std::vector<ProcessId> ScriptedAdversary::assign_processes(
    const DualGraph& net) {
  if (script_.process_of_node.empty()) return Adversary::assign_processes(net);
  DUALRAD_REQUIRE(script_.process_of_node.size() ==
                      static_cast<std::size_t>(net.node_count()),
                  "scripted assignment has wrong size");
  return script_.process_of_node;
}

void ScriptedAdversary::choose_unreliable_reach(
    const AdversaryView& view, std::span<const NodeId> senders,
    ReachSink& sink) {
  const auto r = static_cast<std::size_t>(view.round - 1);
  if (r >= script_.reach.size()) return;
  const auto& plan = script_.reach[r];
  for (std::size_t i = 0; i < senders.size(); ++i) {
    if (const auto it = plan.find(senders[i]); it != plan.end()) {
      sink.add_span(i, it->second);
    }
  }
}

Reception ScriptedAdversary::resolve_cr4(const AdversaryView& view,
                                         NodeId node,
                                         const std::vector<Message>& arrivals) {
  (void)arrivals;
  const auto r = static_cast<std::size_t>(view.round - 1);
  if (r < script_.cr4.size()) {
    if (const auto it = script_.cr4[r].find(node); it != script_.cr4[r].end()) {
      return it->second;
    }
  }
  return Reception::silence();
}

}  // namespace dualrad
