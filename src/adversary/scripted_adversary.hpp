#pragma once

#include <unordered_map>
#include <vector>

#include "core/adversary.hpp"

/// \file scripted_adversary.hpp
/// An adversary that replays recorded choices. Used to re-execute the
/// executions constructed by the lower-bound builders (notably Theorem 12)
/// inside the real simulator, verifying that they are legal executions of
/// the model in which the algorithm indeed fails to finish.

namespace dualrad {

struct AdversaryScript {
  std::vector<ProcessId> process_of_node{};
  /// reach[r-1][sender node] = extra (G'-only) nodes reached in round r.
  /// Senders absent from the map get no extras; rounds beyond the script
  /// get no extras.
  std::vector<std::unordered_map<NodeId, std::vector<NodeId>>> reach{};
  /// cr4[r-1][node] = forced resolution for a CR4 collision at `node` in
  /// round r. Nodes absent from the map resolve to silence.
  std::vector<std::unordered_map<NodeId, Reception>> cr4{};
};

class ScriptedAdversary : public Adversary {
 public:
  explicit ScriptedAdversary(AdversaryScript script)
      : script_(std::move(script)) {}

  [[nodiscard]] std::vector<ProcessId> assign_processes(
      const DualGraph& net) override;

  void choose_unreliable_reach(const AdversaryView& view,
                               std::span<const NodeId> senders,
                               ReachSink& sink) override;

  [[nodiscard]] Reception resolve_cr4(
      const AdversaryView& view, NodeId node,
      const std::vector<Message>& arrivals) override;

 private:
  AdversaryScript script_;
};

}  // namespace dualrad
