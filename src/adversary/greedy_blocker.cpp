#include "adversary/greedy_blocker.hpp"

namespace dualrad {

std::vector<ReachChoice> GreedyBlockerAdversary::choose_unreliable_reach(
    const AdversaryView& view, const std::vector<NodeId>& senders) {
  const DualGraph& net = *view.net;
  const NodeFlags& covered = *view.covered;
  const auto n = static_cast<std::size_t>(net.node_count());

  // Reliable arrival counts at every node (sender self-arrivals included:
  // they matter for CR1 at sender nodes, but senders are not blocking
  // targets below, so count only edge deliveries plus self).
  std::vector<int> reliable_arrivals(n, 0);
  std::vector<bool> is_sender(n, false);
  for (NodeId u : senders) {
    is_sender[static_cast<std::size_t>(u)] = true;
    ++reliable_arrivals[static_cast<std::size_t>(u)];  // own message
    for (NodeId v : net.g_csr().row(u)) {
      ++reliable_arrivals[static_cast<std::size_t>(v)];
    }
  }

  std::vector<ReachChoice> out(senders.size());
  if (senders.size() < 2) return out;  // a lone sender cannot be jammed

  // For each uncovered non-sender about to hear exactly one message, find a
  // second sender with an unreliable edge to it. Iterate senders' unreliable
  // adjacency (cheaper than per-target scans on sparse G').
  std::vector<int> planned_extra(n, 0);
  for (std::size_t i = 0; i < senders.size(); ++i) {
    const NodeId u = senders[i];
    for (NodeId v : net.unreliable_out(u)) {
      const auto uv = static_cast<std::size_t>(v);
      if (covered[uv] || is_sender[uv]) continue;
      // Fire u->v iff v currently expects exactly one message and no other
      // jammer has been assigned yet (one extra message suffices).
      if (reliable_arrivals[uv] == 1 && planned_extra[uv] == 0) {
        out[i].extra.push_back(v);
        planned_extra[uv] = 1;
      }
    }
  }
  return out;
}

Reception GreedyBlockerAdversary::resolve_cr4(
    const AdversaryView& view, NodeId node,
    const std::vector<Message>& arrivals) {
  (void)view;
  (void)node;
  // Prefer handing over a tokenless message (useless to the algorithm but
  // indistinguishable from progress); otherwise stay silent.
  for (const Message& m : arrivals) {
    if (!m.token) return Reception::of(m);
  }
  return Reception::silence();
}

}  // namespace dualrad
