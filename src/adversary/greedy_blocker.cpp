#include "adversary/greedy_blocker.hpp"

namespace dualrad {

void GreedyBlockerAdversary::on_execution_start(const DualGraph& net) {
  // Size the stamped scratch once; epoch 0 means "stale everywhere".
  slots_.assign(static_cast<std::size_t>(net.node_count()), Slot{});
  epoch_ = 0;
}

void GreedyBlockerAdversary::choose_unreliable_reach(
    const AdversaryView& view, std::span<const NodeId> senders,
    ReachSink& sink) {
  if (senders.size() < 2) return;  // a lone sender cannot be jammed
  const NodeFlags& covered = *view.covered;
  // Harnesses may drive the blocker without an execution around it.
  if (slots_.size() != covered.size()) {
    slots_.assign(covered.size(), Slot{});
    epoch_ = 0;
  }
  ++epoch_;
  const auto touch = [&](NodeId v) -> Slot& {
    Slot& s = slot_at(v);
    if (s.epoch != epoch_) {
      s = Slot{};
      s.epoch = epoch_;
    }
    return s;
  };

  // Pass 1 — reliable arrival counts on the boundary (sender self-arrivals
  // included: they matter for CR1 at sender nodes, but senders are not
  // blocking targets below, so count only edge deliveries plus self).
  for (const NodeId u : senders) {
    Slot& su = touch(u);
    su.is_sender = 1;
    ++su.reliable_arrivals;
    for (const NodeId v : view.g->row(u)) ++touch(v).reliable_arrivals;
  }

  // Pass 2 — for each uncovered non-sender about to hear exactly one
  // message, find a second sender with an unreliable edge to it. Iterate
  // senders' unreliable adjacency (cheaper than per-target scans on sparse
  // G'); one extra message suffices, so each target is jammed once.
  for (std::size_t i = 0; i < senders.size(); ++i) {
    for (const NodeId v : view.unreliable->row(senders[i])) {
      if (covered[static_cast<std::size_t>(v)]) continue;
      Slot& sv = touch(v);
      if (sv.is_sender || sv.jammed) continue;
      if (sv.reliable_arrivals == 1) {
        sink.add(i, v);
        sv.jammed = 1;
      }
    }
  }
}

Reception GreedyBlockerAdversary::resolve_cr4(
    const AdversaryView& view, NodeId node,
    const std::vector<Message>& arrivals) {
  (void)view;
  (void)node;
  // Prefer handing over a tokenless message (useless to the algorithm but
  // indistinguishable from progress); otherwise stay silent.
  for (const Message& m : arrivals) {
    if (!m.token) return Reception::of(m);
  }
  return Reception::silence();
}

}  // namespace dualrad
