#pragma once

#include <vector>

#include "core/adversary.hpp"

/// \file greedy_blocker.hpp
/// The greedy collision-blocker: the strongest computable adversary we field
/// against the upper-bound algorithms.
///
/// Strategy, per round, with full knowledge of who is covered:
///   * If an uncovered node v would receive exactly one message over
///     reliable edges (progress!), look for another sender w with an
///     unreliable edge (w, v) and fire it, turning the solo delivery into a
///     collision. Under CR1/CR2 v then hears top; under CR3 silence; under
///     CR4 this adversary resolves the collision to silence (or to a
///     tokenless message if one is available, which is even less useful to
///     the algorithm).
///   * No unreliable edge is ever fired toward covered nodes, and no edge is
///     fired that would itself constitute a solo delivery.
///
/// This is exactly the obstruction the paper's lower-bound constructions
/// weaponize (Theorems 2 and 12): a node whose reliable neighbors are all
/// covered can still blanket uncovered G'-neighbors with collisions. The
/// upper-bound theorems hold against every adversary, so measurements under
/// this one are legal executions; they realize the qualitative worst-case
/// shape without claiming to be the exact worst case (see DESIGN.md,
/// Substitutions).

namespace dualrad {

class GreedyBlockerAdversary : public Adversary {
 public:
  GreedyBlockerAdversary() = default;

  [[nodiscard]] std::vector<ReachChoice> choose_unreliable_reach(
      const AdversaryView& view, const std::vector<NodeId>& senders) override;

  [[nodiscard]] Reception resolve_cr4(
      const AdversaryView& view, NodeId node,
      const std::vector<Message>& arrivals) override;
};

}  // namespace dualrad
