#pragma once

#include <cstdint>
#include <vector>

#include "core/adversary.hpp"

/// \file greedy_blocker.hpp
/// The greedy collision-blocker: the strongest computable adversary we field
/// against the upper-bound algorithms.
///
/// Strategy, per round, with full knowledge of who is covered:
///   * If an uncovered node v would receive exactly one message over
///     reliable edges (progress!), look for another sender w with an
///     unreliable edge (w, v) and fire it, turning the solo delivery into a
///     collision. Under CR1/CR2 v then hears top; under CR3 silence; under
///     CR4 this adversary resolves the collision to silence (or to a
///     tokenless message if one is available, which is even less useful to
///     the algorithm).
///   * No unreliable edge is ever fired toward covered nodes, and no edge is
///     fired that would itself constitute a solo delivery.
///
/// This is exactly the obstruction the paper's lower-bound constructions
/// weaponize (Theorems 2 and 12): a node whose reliable neighbors are all
/// covered can still blanket uncovered G'-neighbors with collisions. The
/// upper-bound theorems hold against every adversary, so measurements under
/// this one are legal executions; they realize the qualitative worst-case
/// shape without claiming to be the exact worst case (see DESIGN.md,
/// Substitutions).
///
/// Cost: the blocker is frontier-based. All per-node state lives in one
/// epoch-stamped slot array sized once per execution; a round touches only
/// the *boundary* — the senders, their reliable out-rows, and their
/// unreliable out-rows — so its cost is O(sum of sender degrees), not O(n).
/// (The old implementation allocated three O(n) arrays per round, which
/// capped adversarial runs at ~10^4 nodes; this one runs the scale/*-greedy
/// scenarios at 10^5-10^6.)

namespace dualrad {

class GreedyBlockerAdversary : public Adversary {
 public:
  GreedyBlockerAdversary() = default;

  void on_execution_start(const DualGraph& net) override;

  void choose_unreliable_reach(const AdversaryView& view,
                               std::span<const NodeId> senders,
                               ReachSink& sink) override;

  [[nodiscard]] Reception resolve_cr4(
      const AdversaryView& view, NodeId node,
      const std::vector<Message>& arrivals) override;

 private:
  /// Per-node scratch, valid only while `epoch` equals the blocker's current
  /// epoch — nothing is ever cleared between rounds.
  struct Slot {
    std::uint64_t epoch = 0;
    std::uint32_t reliable_arrivals = 0;
    std::uint8_t is_sender = 0;
    std::uint8_t jammed = 0;
  };

  Slot& slot_at(NodeId v) { return slots_[static_cast<std::size_t>(v)]; }

  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 0;
};

}  // namespace dualrad
