#include "adversary/theorem2_adversary.hpp"

namespace dualrad {

void Theorem2Adversary::choose_unreliable_reach(
    const AdversaryView& view, std::span<const NodeId> senders,
    ReachSink& sink) {
  if (senders.empty()) return;

  if (senders.size() >= 2) {
    // Rule 1: every message reaches everyone.
    for (std::size_t i = 0; i < senders.size(); ++i) {
      sink.add_span(i, view.unreliable->row(senders[i]));
    }
    return;
  }

  const NodeId u = senders.front();
  if (u == layout_.receiver) {
    // Rule 3 (receiver): reach everyone; its only reliable edge is to the
    // bridge, the rest are unreliable.
    sink.add_span(0, view.unreliable->row(u));
  }
  // Rule 3 (bridge): reliable edges already cover everyone; no extras.
  // Rule 2 (clique non-bridge): reliable edges cover exactly C; no extras.
}

std::vector<ProcessId> theorem2_assignment(NodeId n, ProcessId bridge_id) {
  DUALRAD_REQUIRE(n >= 3, "bridge network needs n >= 3");
  DUALRAD_REQUIRE(bridge_id >= 1 && bridge_id <= n - 2,
                  "bridge id must be an inner id");
  const auto layout = duals::bridge_layout(n);
  std::vector<ProcessId> process_of_node(static_cast<std::size_t>(n),
                                         kInvalidProcess);
  process_of_node[static_cast<std::size_t>(layout.source)] = 0;
  process_of_node[static_cast<std::size_t>(layout.receiver)] = n - 1;
  process_of_node[static_cast<std::size_t>(layout.bridge)] = bridge_id;
  ProcessId next = 1;
  for (NodeId v = 0; v < n; ++v) {
    auto& slot = process_of_node[static_cast<std::size_t>(v)];
    if (slot != kInvalidProcess) continue;
    while (next == bridge_id) ++next;
    slot = next++;
  }
  return process_of_node;
}

}  // namespace dualrad
