#pragma once

#include <vector>

#include "core/adversary.hpp"
#include "graph/dual_builders.hpp"

/// \file theorem2_adversary.hpp
/// The fixed communication rules from the proof of Theorem 2, on the bridge
/// network (clique C of n-1 nodes containing source s and bridge b, plus a
/// receiver r attached only to b; G' complete):
///
///   1. If more than one process sends, all messages reach all processes
///      (everyone receives top under CR1).
///   2. If a single process at a node in C - {b} sends, its message reaches
///      exactly the processes at nodes in C (the receiver hears bottom).
///   3. If only proc(b) or only proc(r) sends, the message reaches everyone.
///
/// The adversary resolves only communication nondeterminism; the proc
/// mapping is chosen by the surrounding harness (lowerbound/theorem2.hpp),
/// which pins the bridge id. The rules never let the message cross to the
/// receiver until the bridge process sends alone.

namespace dualrad {

class Theorem2Adversary : public Adversary {
 public:
  explicit Theorem2Adversary(duals::BridgeNetworkLayout layout)
      : layout_(layout) {}

  void choose_unreliable_reach(const AdversaryView& view,
                               std::span<const NodeId> senders,
                               ReachSink& sink) override;

 private:
  duals::BridgeNetworkLayout layout_;
};

/// The proc mapping of the Theorem 2 executions alpha_i: the source node
/// gets id 0, the receiver node gets id n-1, the bridge node gets
/// `bridge_id`, and the remaining ids fill the remaining clique nodes in
/// ascending order (the proof's "default rule").
[[nodiscard]] std::vector<ProcessId> theorem2_assignment(NodeId n,
                                                         ProcessId bridge_id);

}  // namespace dualrad
