#pragma once

#include <vector>

#include "adversary/scripted_adversary.hpp"
#include "core/process.hpp"
#include "core/types.hpp"

/// \file theorem12.hpp
/// The constructive Omega(n log n) lower-bound adversary of Theorem 12.
///
/// Given *any* deterministic algorithm, the builder constructs — stage by
/// stage, exactly following the proof — an execution on the complete-layered
/// dual network (duals::theorem12_network) in which at least
/// (n-1)/4 * (log2(n-1) - 2) rounds pass while at most half the processes
/// have the message. Collision rule CR1, synchronous start.
///
/// Construction recap (Section 6): node 0 is the source with a distinguished
/// id i0 = 0. Stage k+1 assigns two processes to layer L_{k+1} and extends
/// the committed execution alpha_k:
///   * round 0 of the stage: the unique "about to be isolated" process of
///     A_k sends; the adversary delivers its message to exactly
///     A_k ∪ {i, i'} (rule 2), for every hypothetical pair {i, i'};
///   * candidate sets C_0 ⊇ C_1 ⊇ ... ⊇ C_{log(n-1)-2} shrink via the
///     proof's three cases, chosen so that every process outside the pair
///     receives pair-independent feedback and no candidate pair member ever
///     sends alone;
///   * the pair is then fixed (two smallest surviving candidates) and the
///     execution extends until one of them is about to send alone, which
///     seeds the next stage.
///
/// The builder maintains live process instances per history class
/// (individual for assigned processes, one shared-feedback class for the
/// unassigned, plus per-candidate in-pair branches) and relies on the
/// Process purity contract to peek at "would this process send next round?".
///
/// Fidelity note: the proof's case analysis tracks would-be senders only
/// within the current candidate set; candidates removed in earlier rounds of
/// the same stage are also unassigned in the final execution and may send
/// again. The builder accounts for the full sender set — every such round
/// still yields pair-independent feedback under the adversary rules (>= 2
/// senders => everyone hears top; a single unassigned sender's message is
/// delivered everywhere by rule 3), so the invariants P(l) survive
/// unchanged. See DESIGN.md.

namespace dualrad::lowerbound {

struct Theorem12Options {
  /// Cap on committed execution length; exceeding it aborts with
  /// valid=false (never observed for terminating algorithms).
  Round max_rounds = 2'000'000;
  /// Cap on a single stage's continuation ("until i or i' is about to be
  /// isolated"). Hitting it means the algorithm never again isolates a pair
  /// member — the execution runs forever without completing the broadcast,
  /// an even stronger witness; the builder stops and flags `stalled`.
  Round stage_cap = 500'000;
  /// Record the full adversary script (proc mapping + per-round unreliable
  /// reach) so the execution can be replayed in the Simulator.
  bool build_script = false;
};

struct Theorem12Result {
  NodeId n = 0;
  /// False only if an internal cap or a proof invariant failed.
  bool valid = false;
  /// True if some stage's continuation never ended: the algorithm never
  /// isolates the frontier pair again, so broadcast never completes.
  bool stalled = false;
  int stages_completed = 0;
  int stages_target = 0;
  /// Rounds committed by the construction (>= guaranteed_bound when valid).
  Round total_rounds = 0;
  /// (n-1)/4 * (log2(n-1) - 2).
  Round guaranteed_bound = 0;
  /// Processes holding the broadcast message at the end (= 2*stages + 1).
  NodeId covered_processes = 0;
  /// Rounds contributed by stage 0 and by each stage.
  std::vector<Round> stage_lengths{};
  /// Pair chosen at each stage.
  std::vector<std::pair<ProcessId, ProcessId>> stage_pairs{};
  /// Replay script (when requested): process placement and reach choices.
  AdversaryScript script{};
};

/// Run the construction against a deterministic algorithm. The factory must
/// produce processes satisfying the purity contract; randomized algorithms
/// are outside the theorem's scope.
[[nodiscard]] Theorem12Result run_theorem12(NodeId n,
                                            const ProcessFactory& factory,
                                            const Theorem12Options& options = {});

/// The bound (n-1)/4 * (log2(n-1) - 2) the construction guarantees.
[[nodiscard]] Round theorem12_bound(NodeId n);

}  // namespace dualrad::lowerbound
