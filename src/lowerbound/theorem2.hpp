#pragma once

#include <vector>

#include "core/process.hpp"
#include "core/types.hpp"

/// \file theorem2.hpp
/// Executor for the Theorem 2 lower bound: on the 2-broadcastable bridge
/// network, *every* deterministic algorithm has an execution taking more
/// than n-3 rounds, i.e. at least n-2 rounds.
///
/// The harness enumerates the proof's executions alpha_i (bridge process id
/// i in {1..n-2}, fixed-rule adversary, CR1, synchronous start) and reports
/// the worst one. The proof guarantees max_i rounds(alpha_i) >= n-2 for
/// deterministic algorithms; the harness verifies it empirically for any
/// algorithm it is handed.

namespace dualrad::lowerbound {

struct Theorem2Result {
  NodeId n = 0;
  /// Completion round of alpha_i, indexed by bridge id i-1; kNever if the
  /// execution did not complete within max_rounds.
  std::vector<Round> rounds_by_bridge_id{};
  ProcessId worst_bridge_id = kInvalidProcess;
  /// max_i rounds(alpha_i); kNever if some execution never completed (an
  /// even stronger witness).
  Round worst_rounds = 0;
  /// The theorem's bound: no deterministic algorithm finishes every alpha_i
  /// within n-3 rounds, so the worst case is >= n-2.
  Round theorem_bound = 0;
  bool bound_respected = false;  ///< worst_rounds >= theorem_bound (or never)
};

[[nodiscard]] Theorem2Result run_theorem2(NodeId n,
                                          const ProcessFactory& factory,
                                          Round max_rounds,
                                          std::uint64_t seed = 1);

}  // namespace dualrad::lowerbound
