#pragma once

#include "graph/dual_graph.hpp"

/// \file theorem11_network.hpp
/// The directed sqrt(n)-broadcastable network family behind Theorem 11
/// (the Omega(n^{3/2}) directed lower bound, adapted from Theorem 4.2 of
/// [9] = Clementi-Monti-Silvestri).
///
/// The family: about sqrt(n) layers of about sqrt(n) nodes each, with a
/// single source on top. G has complete bipartite reliable links between
/// consecutive layers (so the network is (num_layers)-broadcastable); G'
/// additionally contains *all* forward links (from every layer to every
/// deeper layer), which is what lets an adversary replay the selective-
/// family lower bound of [9]: frontier layers can always be jammed by
/// deeper G'-only links. The Omega(n^{3/2}) bound itself is cited, not
/// re-derived; this module supplies the workload on which the E6 experiment
/// measures Strong Select against the greedy blocker.

namespace dualrad::lowerbound {

struct Theorem11Layout {
  NodeId width = 0;
  NodeId num_layers = 0;  ///< excluding the source layer
};

/// Layout with width = round(sqrt(n)), as many full layers as fit; the last
/// layer absorbs the remainder.
[[nodiscard]] Theorem11Layout theorem11_layout(NodeId n);

/// Build the directed dual network described above with >= n nodes
/// (exactly n when n-1 is divisible by the chosen width).
[[nodiscard]] DualGraph theorem11_network(NodeId n);

}  // namespace dualrad::lowerbound
