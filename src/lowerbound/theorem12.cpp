#include "lowerbound/theorem12.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <utility>

#include "graph/dual_builders.hpp"

namespace dualrad::lowerbound {
namespace {

/// How a committed round's messages were delivered by the adversary.
enum class Delivery : std::uint8_t {
  None,        ///< nobody sent
  All,         ///< every message reached every process (rules 1 and 3)
  Restricted,  ///< single A_k sender; reached exactly A_k ∪ {i, i'} (rule 2)
};

/// A committed round, possibly with the stage pair still symbolic.
struct RoundCommit {
  Delivery delivery = Delivery::None;
  /// Exact sender pids. For candidate rounds these are finalized when the
  /// stage's pair is chosen.
  std::vector<ProcessId> senders{};
  /// Restricted only: target pids (A_k; the stage pair is appended when
  /// chosen).
  std::vector<ProcessId> targets{};
};

/// Candidate-round bookkeeping needed to finalize senders later:
/// senders(pair) = a_send ∪ extra_out ∪ (n_c \ pair) ∪ (pair ∩ s).
struct PendingRound {
  std::size_t log_index = 0;
  std::vector<ProcessId> a_send{}, extra_out{}, n_c{}, s{};
};

class Builder {
 public:
  Builder(NodeId n, const ProcessFactory& factory,
          const Theorem12Options& options)
      : n_(n), options_(options) {
    DUALRAD_REQUIRE(n >= 9 && std::has_single_bit(
                                  static_cast<std::uint64_t>(n - 1)),
                    "theorem 12 needs n-1 a power of two, n-1 >= 8");
    committed_.resize(static_cast<std::size_t>(n));
    assigned_.assign(static_cast<std::size_t>(n), false);
    for (ProcessId pid = 0; pid < n; ++pid) {
      committed_[static_cast<std::size_t>(pid)] =
          factory(pid, n, /*seed=*/0);
    }
    // Synchronous start: everyone is activated before round 1; the source
    // process i0 = 0 receives the broadcast message from the environment.
    const Message env{/*token=*/true, kInvalidProcess, 0, 0};
    committed_[0]->on_activate(0, env);
    for (ProcessId pid = 1; pid < n; ++pid) {
      committed_[static_cast<std::size_t>(pid)]->on_activate(0, std::nullopt);
    }
    assigned_[0] = true;
    a_members_.push_back(0);
    node_of_pid_.assign(static_cast<std::size_t>(n), kInvalidNode);
    node_of_pid_[0] = 0;
  }

  Theorem12Result run() {
    result_.n = n_;
    result_.guaranteed_bound = theorem12_bound(n_);
    result_.stages_target = static_cast<int>((n_ - 1) / 4);

    if (!run_stage0()) return finish();
    for (int stage = 1; stage <= result_.stages_target; ++stage) {
      if (!run_stage(stage)) return finish();
      ++result_.stages_completed;
    }
    result_.valid = true;
    return finish();
  }

 private:
  // ---- peeking helpers (rely on the Process purity contract) ----

  [[nodiscard]] bool would_send(const Process& p, Round r) const {
    return p.next_action(r).send;
  }
  [[nodiscard]] Message message_of(const Process& p, Round r) const {
    const Action a = p.next_action(r);
    DUALRAD_CHECK(a.send, "peeked message of a silent process");
    return a.message;
  }

  [[nodiscard]] std::vector<ProcessId> committed_senders(Round r) const {
    std::vector<ProcessId> out;
    for (ProcessId pid = 0; pid < n_; ++pid) {
      if (would_send(*committed_[static_cast<std::size_t>(pid)], r)) {
        out.push_back(pid);
      }
    }
    return out;
  }

  // ---- feedback application ----

  void advance(Process& p, Round r, const Reception& fb) { p.on_receive(r, fb); }

  void advance_committed(Round r, const Reception& fb) {
    for (auto& p : committed_) advance(*p, r, fb);
  }

  // ---- stage 0: all G'-edges used every round, until i0 is about to be
  // isolated ----

  bool run_stage0() {
    const Round start = now_;
    for (;;) {
      const Round r = now_ + 1;
      const auto senders = committed_senders(r);
      if (senders.size() == 1 && senders.front() == 0) {
        about_to_send_ = 0;
        break;
      }
      if (now_ - start >= options_.stage_cap || now_ >= options_.max_rounds) {
        // i0 is never isolated: the message can never leave the source, so
        // the broadcast never completes. Strongest possible witness.
        result_.stalled = true;
        result_.valid = true;
        return false;
      }
      RoundCommit commit;
      commit.senders = senders;
      Reception fb = Reception::silence();
      if (senders.empty()) {
        commit.delivery = Delivery::None;
      } else if (senders.size() >= 2) {
        commit.delivery = Delivery::All;
        fb = Reception::collision();
      } else {
        commit.delivery = Delivery::All;
        fb = Reception::of(message_of(
            *committed_[static_cast<std::size_t>(senders.front())], r));
      }
      advance_committed(r, fb);
      log_.push_back(std::move(commit));
      now_ = r;
    }
    result_.stage_lengths.push_back(now_ - start);
    return true;
  }

  // ---- one stage of the construction ----

  bool run_stage(int stage) {
    const Round start = now_;
    const auto log2n1 = std::bit_width(static_cast<std::uint64_t>(n_ - 1)) - 1;
    const int ell_target = static_cast<int>(log2n1) - 2;
    const std::vector<ProcessId> a_before = a_members_;

    // Candidates: all unassigned ids.
    std::vector<ProcessId> candidates;
    std::vector<ProcessId> unassigned;
    for (ProcessId pid = 0; pid < n_; ++pid) {
      if (!assigned_[static_cast<std::size_t>(pid)]) unassigned.push_back(pid);
    }
    candidates = unassigned;
    DUALRAD_CHECK(2 * static_cast<NodeId>(candidates.size()) >= n_ - 1,
                  "candidate pool shrank below (n-1)/2");

    // In-pair branches, one per candidate.
    std::map<ProcessId, std::unique_ptr<Process>> inpair;
    for (ProcessId c : candidates) {
      inpair[c] = committed_[static_cast<std::size_t>(c)]->clone();
    }

    std::vector<PendingRound> pending;

    // ---- stage round 0: the isolated A_k process sends; its message is
    // delivered to exactly A_k ∪ {i, i'}. ----
    {
      const Round r = now_ + 1;
      const auto senders = committed_senders(r);
      if (senders.size() != 1 || senders.front() != about_to_send_ ||
          !assigned_[static_cast<std::size_t>(about_to_send_)]) {
        result_.valid = false;  // purity contract violated
        return false;
      }
      const Message m0 = message_of(
          *committed_[static_cast<std::size_t>(about_to_send_)], r);
      for (ProcessId a : a_before) {
        advance(*committed_[static_cast<std::size_t>(a)], r, Reception::of(m0));
      }
      for (auto& [c, p] : inpair) advance(*p, r, Reception::of(m0));
      for (ProcessId u : unassigned) {
        advance(*committed_[static_cast<std::size_t>(u)], r,
                Reception::silence());
      }
      RoundCommit commit;
      commit.delivery = Delivery::Restricted;
      commit.senders = {about_to_send_};
      commit.targets = a_before;  // pair appended at stage end
      pending_restricted_.push_back(log_.size());
      log_.push_back(std::move(commit));
      now_ = r;
    }

    // ---- candidate rounds 1 .. ell_target ----
    for (int ell_plus_1 = 1; ell_plus_1 <= ell_target; ++ell_plus_1) {
      const Round r = now_ + 1;
      std::vector<ProcessId> s_set, n_set, a_send, extra_out;
      for (ProcessId c : candidates) {
        if (would_send(*inpair[c], r)) s_set.push_back(c);
        if (would_send(*committed_[static_cast<std::size_t>(c)], r)) {
          n_set.push_back(c);
        }
      }
      for (ProcessId a : a_before) {
        if (would_send(*committed_[static_cast<std::size_t>(a)], r)) {
          a_send.push_back(a);
        }
      }
      for (ProcessId u : unassigned) {
        if (std::binary_search(candidates.begin(), candidates.end(), u)) {
          continue;
        }
        if (would_send(*committed_[static_cast<std::size_t>(u)], r)) {
          extra_out.push_back(u);
        }
      }

      Reception fb_a = Reception::silence();
      Reception fb_out = Reception::silence();
      Reception fb_in = Reception::silence();
      Delivery delivery = Delivery::None;
      std::vector<ProcessId> next_candidates;

      if (n_set.size() >= 2) {
        // Case I: drop the two smallest would-be out-branch senders; they
        // remain unassigned, send in this round, and collide.
        next_candidates = candidates;
        for (int drop = 0; drop < 2; ++drop) {
          next_candidates.erase(std::find(next_candidates.begin(),
                                          next_candidates.end(),
                                          n_set[static_cast<std::size_t>(drop)]));
        }
        fb_a = fb_out = fb_in = Reception::collision();
        delivery = Delivery::All;
      } else if (2 * s_set.size() >= candidates.size()) {
        // Case II: keep exactly the in-pair senders; both pair members then
        // send and collide.
        next_candidates = s_set;
        fb_a = fb_out = fb_in = Reception::collision();
        delivery = Delivery::All;
      } else {
        // Case III: keep candidates that send in neither branch.
        next_candidates.reserve(candidates.size());
        for (ProcessId c : candidates) {
          const bool in_s =
              std::binary_search(s_set.begin(), s_set.end(), c);
          const bool in_n =
              std::binary_search(n_set.begin(), n_set.end(), c);
          if (!in_s && !in_n) next_candidates.push_back(c);
        }
        // Real senders are pair-independent here: A_k senders, the possible
        // single n_set process (now surely unassigned), and re-senders among
        // previously removed candidates.
        const std::size_t total =
            a_send.size() + n_set.size() + extra_out.size();
        if (total == 0) {
          delivery = Delivery::None;
        } else if (total >= 2) {
          fb_a = fb_out = fb_in = Reception::collision();
          delivery = Delivery::All;
        } else if (a_send.size() == 1) {
          // Rule 2: reaches exactly A_k ∪ {i, i'}.
          const Message m = message_of(
              *committed_[static_cast<std::size_t>(a_send.front())], r);
          fb_a = fb_in = Reception::of(m);
          fb_out = Reception::silence();
          delivery = Delivery::Restricted;
        } else {
          // Rule 3: the lone unassigned sender reaches everyone.
          const ProcessId u =
              n_set.size() == 1 ? n_set.front() : extra_out.front();
          const Message m =
              message_of(*committed_[static_cast<std::size_t>(u)], r);
          fb_a = fb_out = fb_in = Reception::of(m);
          delivery = Delivery::All;
        }
      }

      // Advance every class.
      for (ProcessId a : a_before) {
        advance(*committed_[static_cast<std::size_t>(a)], r, fb_a);
      }
      for (ProcessId u : unassigned) {
        advance(*committed_[static_cast<std::size_t>(u)], r, fb_out);
      }
      for (auto it = inpair.begin(); it != inpair.end();) {
        if (std::binary_search(next_candidates.begin(), next_candidates.end(),
                               it->first)) {
          advance(*it->second, r, fb_in);
          ++it;
        } else {
          it = inpair.erase(it);
        }
      }

      // Log with symbolic pair; finalized below.
      RoundCommit commit;
      commit.delivery = delivery;
      if (delivery == Delivery::Restricted) {
        commit.targets = a_before;
        pending_restricted_.push_back(log_.size());
      }
      PendingRound pend;
      pend.log_index = log_.size();
      pend.a_send = std::move(a_send);
      pend.extra_out = std::move(extra_out);
      pend.n_c = n_set;
      pend.s = std::move(s_set);
      pending.push_back(std::move(pend));
      log_.push_back(std::move(commit));
      now_ = r;

      candidates = std::move(next_candidates);
      // Claim 13, part 1: |C_{l+1}| >= (n-1) / 2^{l+2}.
      if (static_cast<Round>(candidates.size()) <
          (static_cast<Round>(n_) - 1) / (Round{1} << (ell_plus_1 + 1))) {
        result_.valid = false;
        return false;
      }
    }

    if (candidates.size() < 2) {
      result_.valid = false;
      return false;
    }
    const ProcessId i1 = candidates[0];
    const ProcessId i2 = candidates[1];

    // Finalize the symbolic rounds for the chosen pair.
    for (const PendingRound& pend : pending) {
      auto& commit = log_[pend.log_index];
      std::vector<ProcessId> senders = pend.a_send;
      for (ProcessId u : pend.extra_out) senders.push_back(u);
      for (ProcessId u : pend.n_c) {
        if (u != i1 && u != i2) senders.push_back(u);
      }
      for (ProcessId p : {i1, i2}) {
        if (std::binary_search(pend.s.begin(), pend.s.end(), p)) {
          senders.push_back(p);
        }
      }
      std::sort(senders.begin(), senders.end());
      commit.senders = std::move(senders);
    }

    // ---- continuation: run beta_{i1,i2} until i1 or i2 is about to be
    // isolated. ----
    std::vector<ProcessId> others;  // unassigned minus the pair
    for (ProcessId u : unassigned) {
      if (u != i1 && u != i2) others.push_back(u);
    }
    for (;;) {
      const Round r = now_ + 1;
      std::vector<ProcessId> a_send, out_send, pair_send;
      for (ProcessId a : a_before) {
        if (would_send(*committed_[static_cast<std::size_t>(a)], r)) {
          a_send.push_back(a);
        }
      }
      for (ProcessId u : others) {
        if (would_send(*committed_[static_cast<std::size_t>(u)], r)) {
          out_send.push_back(u);
        }
      }
      for (ProcessId p : {i1, i2}) {
        if (would_send(*inpair[p], r)) pair_send.push_back(p);
      }
      const std::size_t total =
          a_send.size() + out_send.size() + pair_send.size();
      if (total == 1 && pair_send.size() == 1) {
        about_to_send_ = pair_send.front();
        break;  // this round is NOT executed; it seeds the next stage
      }
      if (now_ - start >= options_.stage_cap || now_ >= options_.max_rounds) {
        result_.stalled = true;
        result_.valid = true;
        commit_pair(stage, i1, i2, inpair, a_before);
        result_.stage_lengths.push_back(now_ - start);
        result_.stage_pairs.emplace_back(i1, i2);
        return false;
      }

      Reception fb_a = Reception::silence();
      Reception fb_out = Reception::silence();
      Reception fb_in = Reception::silence();
      RoundCommit commit;
      commit.senders = a_send;
      for (ProcessId u : out_send) commit.senders.push_back(u);
      for (ProcessId p : pair_send) commit.senders.push_back(p);
      std::sort(commit.senders.begin(), commit.senders.end());
      if (total == 0) {
        commit.delivery = Delivery::None;
      } else if (total >= 2) {
        fb_a = fb_out = fb_in = Reception::collision();
        commit.delivery = Delivery::All;
      } else if (a_send.size() == 1) {
        const Message m = message_of(
            *committed_[static_cast<std::size_t>(a_send.front())], r);
        fb_a = fb_in = Reception::of(m);
        commit.delivery = Delivery::Restricted;
        commit.targets = a_before;
        pending_restricted_.push_back(log_.size());
      } else {
        // single unassigned (non-pair) sender: rule 3, reaches everyone.
        const Message m = message_of(
            *committed_[static_cast<std::size_t>(out_send.front())], r);
        fb_a = fb_out = fb_in = Reception::of(m);
        commit.delivery = Delivery::All;
      }
      for (ProcessId a : a_before) {
        advance(*committed_[static_cast<std::size_t>(a)], r, fb_a);
      }
      for (ProcessId u : others) {
        advance(*committed_[static_cast<std::size_t>(u)], r, fb_out);
      }
      advance(*inpair[i1], r, fb_in);
      advance(*inpair[i2], r, fb_in);
      log_.push_back(std::move(commit));
      now_ = r;
    }

    commit_pair(stage, i1, i2, inpair, a_before);
    result_.stage_lengths.push_back(now_ - start);
    result_.stage_pairs.emplace_back(i1, i2);
    return true;
  }

  void commit_pair(int stage, ProcessId i1, ProcessId i2,
                   std::map<ProcessId, std::unique_ptr<Process>>& inpair,
                   const std::vector<ProcessId>& a_before) {
    (void)a_before;
    committed_[static_cast<std::size_t>(i1)] = std::move(inpair.at(i1));
    committed_[static_cast<std::size_t>(i2)] = std::move(inpair.at(i2));
    assigned_[static_cast<std::size_t>(i1)] = true;
    assigned_[static_cast<std::size_t>(i2)] = true;
    a_members_.push_back(i1);
    a_members_.push_back(i2);
    node_of_pid_[static_cast<std::size_t>(i1)] =
        static_cast<NodeId>(2 * stage - 1);
    node_of_pid_[static_cast<std::size_t>(i2)] =
        static_cast<NodeId>(2 * stage);
    // Append the pair to every Restricted round recorded this stage.
    for (std::size_t idx : pending_restricted_) {
      log_[idx].targets.push_back(i1);
      log_[idx].targets.push_back(i2);
    }
    pending_restricted_.clear();
  }

  Theorem12Result finish() {
    result_.total_rounds = now_;
    result_.covered_processes =
        static_cast<NodeId>(2 * result_.stages_completed + 1);
    if (result_.stalled && result_.stages_completed < result_.stages_target) {
      result_.covered_processes = static_cast<NodeId>(a_members_.size());
    }
    if (options_.build_script) materialize_script();
    return std::move(result_);
  }

  void materialize_script() {
    // Assign remaining processes to remaining nodes, ascending.
    std::vector<bool> node_used(static_cast<std::size_t>(n_), false);
    for (ProcessId pid = 0; pid < n_; ++pid) {
      const NodeId v = node_of_pid_[static_cast<std::size_t>(pid)];
      if (v != kInvalidNode) node_used[static_cast<std::size_t>(v)] = true;
    }
    NodeId next_node = 0;
    for (ProcessId pid = 0; pid < n_; ++pid) {
      if (node_of_pid_[static_cast<std::size_t>(pid)] != kInvalidNode) continue;
      while (node_used[static_cast<std::size_t>(next_node)]) ++next_node;
      node_of_pid_[static_cast<std::size_t>(pid)] = next_node;
      node_used[static_cast<std::size_t>(next_node)] = true;
    }
    result_.script.process_of_node.assign(static_cast<std::size_t>(n_),
                                          kInvalidProcess);
    for (ProcessId pid = 0; pid < n_; ++pid) {
      result_.script.process_of_node[static_cast<std::size_t>(
          node_of_pid_[static_cast<std::size_t>(pid)])] = pid;
    }

    const DualGraph net = duals::theorem12_network(n_);
    result_.script.reach.resize(log_.size());
    for (std::size_t ridx = 0; ridx < log_.size(); ++ridx) {
      const RoundCommit& commit = log_[ridx];
      if (commit.delivery == Delivery::None) continue;
      auto& plan = result_.script.reach[ridx];
      for (ProcessId p : commit.senders) {
        const NodeId u = node_of_pid_[static_cast<std::size_t>(p)];
        if (commit.delivery == Delivery::All) {
          const auto extra = net.unreliable_out(u);
          plan[u].assign(extra.begin(), extra.end());
          continue;
        }
        // Restricted: message reaches exactly the targets' nodes.
        std::vector<bool> is_target(static_cast<std::size_t>(n_), false);
        for (ProcessId t : commit.targets) {
          is_target[static_cast<std::size_t>(
              node_of_pid_[static_cast<std::size_t>(t)])] = true;
        }
        for (NodeId v : net.g().out_neighbors(u)) {
          DUALRAD_CHECK(is_target[static_cast<std::size_t>(v)],
                        "restricted delivery would miss a reliable neighbor");
        }
        std::vector<NodeId> extra;
        for (NodeId v : net.unreliable_out(u)) {
          if (is_target[static_cast<std::size_t>(v)]) extra.push_back(v);
        }
        plan[u] = std::move(extra);
      }
    }
  }

  NodeId n_;
  Theorem12Options options_;
  std::vector<std::unique_ptr<Process>> committed_;
  std::vector<bool> assigned_;
  std::vector<ProcessId> a_members_;
  std::vector<NodeId> node_of_pid_;
  Round now_ = 0;
  ProcessId about_to_send_ = kInvalidProcess;
  std::vector<RoundCommit> log_;
  std::vector<std::size_t> pending_restricted_;
  Theorem12Result result_;
};

}  // namespace

Round theorem12_bound(NodeId n) {
  DUALRAD_REQUIRE(n >= 9, "theorem 12 bound needs n >= 9");
  const auto log2n1 =
      static_cast<Round>(std::bit_width(static_cast<std::uint64_t>(n - 1)) - 1);
  return static_cast<Round>((n - 1) / 4) * (log2n1 - 2);
}

Theorem12Result run_theorem12(NodeId n, const ProcessFactory& factory,
                              const Theorem12Options& options) {
  Builder builder(n, factory, options);
  return builder.run();
}

}  // namespace dualrad::lowerbound
