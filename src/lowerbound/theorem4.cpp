#include "lowerbound/theorem4.hpp"

#include <algorithm>

#include "adversary/basic_adversaries.hpp"
#include "adversary/theorem2_adversary.hpp"
#include "core/rng.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"
#include "stats/stats.hpp"

namespace dualrad::lowerbound {

Theorem4Result run_theorem4(NodeId n, const ProcessFactory& factory,
                            const std::vector<Round>& ks, std::size_t trials,
                            std::uint64_t seed) {
  DUALRAD_REQUIRE(n >= 4, "theorem 4 harness needs n >= 4");
  DUALRAD_REQUIRE(trials >= 1, "need at least one trial");
  DUALRAD_REQUIRE(!ks.empty(), "need at least one k");
  const DualGraph net = duals::bridge_network(n);
  const auto layout = duals::bridge_layout(n);
  const Round max_k = *std::max_element(ks.begin(), ks.end());

  // completion[i-1][t]: completion round of trial t against bridge id i.
  std::vector<std::vector<Round>> completion(
      static_cast<std::size_t>(n - 2));
  for (ProcessId i = 1; i <= n - 2; ++i) {
    auto& rounds = completion[static_cast<std::size_t>(i - 1)];
    rounds.reserve(trials);
    for (std::size_t t = 0; t < trials; ++t) {
      Theorem2Adversary rules(layout);
      FixedAssignmentAdversary adversary(theorem2_assignment(n, i), rules);
      SimConfig config;
      config.rule = CollisionRule::CR1;
      config.start = StartRule::Synchronous;
      config.max_rounds = max_k;
      config.seed = mix_seed(seed, static_cast<std::uint64_t>(t) * 1000003 +
                                       static_cast<std::uint64_t>(i));
      const SimResult sim = run_broadcast(net, factory, adversary, config);
      rounds.push_back(sim.completed ? sim.completion_round : kNever);
    }
  }

  Theorem4Result result;
  result.n = n;
  for (Round k : ks) {
    Theorem4Point point;
    point.k = k;
    point.bound = static_cast<double>(k) / static_cast<double>(n - 2);
    point.trials = trials;
    double min_p = 2.0, sum_p = 0.0;
    for (ProcessId i = 1; i <= n - 2; ++i) {
      const auto& rounds = completion[static_cast<std::size_t>(i - 1)];
      const auto successes = static_cast<std::size_t>(std::count_if(
          rounds.begin(), rounds.end(),
          [k](Round r) { return r != kNever && r <= k; }));
      const double p =
          static_cast<double>(successes) / static_cast<double>(trials);
      sum_p += p;
      if (p < min_p) {
        min_p = p;
        point.worst_bridge_id = i;
      }
    }
    point.min_success_prob = min_p;
    point.mean_success_prob = sum_p / static_cast<double>(n - 2);
    // Allow Monte-Carlo slack of one Wilson interval.
    const double slack = stats::wilson_half_width(
        static_cast<std::size_t>(min_p * static_cast<double>(trials)), trials);
    if (min_p > point.bound + slack) result.bound_respected = false;
    result.points.push_back(point);
  }
  return result;
}

}  // namespace dualrad::lowerbound
