#include "lowerbound/theorem11_network.hpp"

#include <cmath>
#include <vector>

#include "graph/generators.hpp"

namespace dualrad::lowerbound {

Theorem11Layout theorem11_layout(NodeId n) {
  DUALRAD_REQUIRE(n >= 5, "theorem 11 network needs n >= 5");
  Theorem11Layout layout;
  layout.width = std::max<NodeId>(
      2, static_cast<NodeId>(std::lround(std::sqrt(static_cast<double>(n)))));
  layout.num_layers = std::max<NodeId>(2, (n - 1) / layout.width);
  return layout;
}

DualGraph theorem11_network(NodeId n) {
  const Theorem11Layout layout = theorem11_layout(n);
  std::vector<NodeId> sizes;
  sizes.push_back(1);  // source layer
  NodeId remaining = n - 1;
  for (NodeId i = 0; i < layout.num_layers; ++i) {
    const NodeId size = (i + 1 == layout.num_layers)
                            ? remaining
                            : std::min(layout.width, remaining);
    if (size <= 0) break;
    sizes.push_back(size);
    remaining -= size;
  }
  Graph g = gen::directed_layered(sizes);
  // G': all forward links between distinct layers.
  const auto off = gen::layer_offsets(sizes);
  Graph gp(g.node_count());
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    for (std::size_t j = i + 1; j < sizes.size(); ++j) {
      for (NodeId u = off[i]; u < off[i + 1]; ++u) {
        for (NodeId v = off[j]; v < off[j + 1]; ++v) gp.add_edge(u, v);
      }
    }
  }
  return DualGraph(std::move(g), std::move(gp), /*source=*/0);
}

}  // namespace dualrad::lowerbound
