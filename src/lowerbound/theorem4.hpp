#pragma once

#include <cstdint>
#include <vector>

#include "core/process.hpp"
#include "core/types.hpp"

/// \file theorem4.hpp
/// Monte-Carlo executor for the Theorem 4 randomized lower bound: on the
/// bridge network with the restricted (fixed-rule) adversary class, no
/// algorithm solves broadcast within k rounds with probability greater than
/// k/(n-2), for 1 <= k <= n-3.
///
/// The restricted adversary only chooses the proc mapping (the bridge id);
/// communication resolves by the deterministic rules of Theorem 2. The
/// harness estimates, for each bridge id i, the probability that the
/// algorithm finishes within k rounds, and reports min_i — the success
/// probability against the best adversary response — next to the k/(n-2)
/// bound.

namespace dualrad::lowerbound {

struct Theorem4Point {
  Round k = 0;
  double min_success_prob = 0.0;     ///< min over bridge ids
  double mean_success_prob = 0.0;    ///< mean over bridge ids (reference)
  ProcessId worst_bridge_id = kInvalidProcess;
  double bound = 0.0;                ///< k / (n-2)
  std::size_t trials = 0;
};

struct Theorem4Result {
  NodeId n = 0;
  std::vector<Theorem4Point> points{};
  /// True iff every point satisfies min_success_prob <= bound + CI slack.
  bool bound_respected = true;
};

[[nodiscard]] Theorem4Result run_theorem4(NodeId n,
                                          const ProcessFactory& factory,
                                          const std::vector<Round>& ks,
                                          std::size_t trials,
                                          std::uint64_t seed = 1);

}  // namespace dualrad::lowerbound
