#include "lowerbound/theorem2.hpp"

#include <algorithm>

#include "adversary/basic_adversaries.hpp"
#include "adversary/theorem2_adversary.hpp"
#include "core/simulator.hpp"
#include "graph/dual_builders.hpp"

namespace dualrad::lowerbound {

Theorem2Result run_theorem2(NodeId n, const ProcessFactory& factory,
                            Round max_rounds, std::uint64_t seed) {
  DUALRAD_REQUIRE(n >= 4, "theorem 2 harness needs n >= 4");
  const DualGraph net = duals::bridge_network(n);
  const auto layout = duals::bridge_layout(n);

  Theorem2Result result;
  result.n = n;
  result.theorem_bound = n - 2;

  bool any_incomplete = false;
  for (ProcessId i = 1; i <= n - 2; ++i) {
    Theorem2Adversary rules(layout);
    FixedAssignmentAdversary adversary(theorem2_assignment(n, i), rules);
    SimConfig config;
    config.rule = CollisionRule::CR1;
    config.start = StartRule::Synchronous;
    config.max_rounds = max_rounds;
    config.seed = seed;
    const SimResult sim = run_broadcast(net, factory, adversary, config);
    const Round rounds = sim.completed ? sim.completion_round : kNever;
    result.rounds_by_bridge_id.push_back(rounds);
    if (rounds == kNever) {
      any_incomplete = true;
      result.worst_bridge_id = i;
    } else if (!any_incomplete && rounds > result.worst_rounds) {
      result.worst_rounds = rounds;
      result.worst_bridge_id = i;
    }
  }
  if (any_incomplete) result.worst_rounds = kNever;
  result.bound_respected =
      any_incomplete || result.worst_rounds >= result.theorem_bound;
  return result;
}

}  // namespace dualrad::lowerbound
