#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <utility>

#include "graph/graph.hpp"

/// \file dual_graph.hpp
/// The dual graph network (G, G') of Section 2.1.
///
/// G = (V, E) holds the *reliable* links: a sender's message always reaches
/// its G-out-neighbors. G' = (V, E') with E contained in E' holds *all* links;
/// each round the adversary picks, for each sender, an arbitrary subset of its
/// G'-only out-neighbors that the message additionally reaches.
///
/// The model assumes a distinguished source node from which every node is
/// reachable in G. The classical (reliable) radio-network model is the
/// special case G == G'.
///
/// Representation: a DualGraph always carries frozen `CsrGraph` snapshots of
/// G, G', and the G'-only ("unreliable") adjacency — these back every hot
/// path (the round engine, adversaries, the trace auditor). Networks built
/// from `Graph` objects additionally keep those builders for the mutable
/// Graph API (`g()` / `g_prime()`); networks streamed straight from a
/// `CsrGraphBuilder` (the 10^5+-node scale families) materialize a `Graph`
/// view lazily — and pay its hash-set RSS — only if some cold path actually
/// asks for one.

namespace dualrad {

class DualGraph {
 public:
  /// Build a network from a reliable graph, a full graph, and a source.
  /// Validates: same vertex set, E subset of E', source in range, and every
  /// node reachable from the source in G.
  DualGraph(Graph reliable, Graph full, NodeId source);

  /// Build a network from frozen CSR snapshots (typically streamed from
  /// CsrGraphBuilder — no Graph, no hash set). Same validation as above.
  DualGraph(CsrGraph reliable, CsrGraph full, NodeId source);

  [[nodiscard]] NodeId node_count() const { return g_csr_.node_count(); }
  [[nodiscard]] NodeId source() const { return source_; }

  /// The reliable graph G as a mutable-API Graph view. CSR-built networks
  /// materialize it (with its hash index) on first use — avoid on 10^5+-node
  /// networks; hot paths should use g_csr().
  [[nodiscard]] const Graph& g() const;
  /// The full graph G' (reliable plus unreliable links); see g().
  [[nodiscard]] const Graph& g_prime() const;

  /// Frozen CSR snapshot of G. Row order is the authoritative delivery
  /// order of the engines.
  [[nodiscard]] const CsrGraph& g_csr() const { return g_csr_; }
  /// Frozen CSR snapshot of G'.
  [[nodiscard]] const CsrGraph& g_prime_csr() const { return gp_csr_; }
  /// Frozen CSR of the G'-only adjacency (row order matches g_prime_csr).
  [[nodiscard]] const CsrGraph& unreliable_csr() const {
    return unreliable_csr_;
  }

  /// True iff both G and G' are symmetric (the paper's "undirected network").
  [[nodiscard]] bool is_undirected() const {
    return g_csr_.is_symmetric() && gp_csr_.is_symmetric();
  }

  /// True iff the network has no unreliable links (classical model).
  [[nodiscard]] bool is_classical() const {
    return g_csr_.edge_count() == gp_csr_.edge_count();
  }

  /// G'-only out-neighbors of u: nodes reachable from u only unreliably.
  /// Precomputed; cheap to call per round.
  [[nodiscard]] std::span<const NodeId> unreliable_out(NodeId u) const {
    return unreliable_csr_.row(u);
  }

  /// Number of unreliable (G'-only) directed edges.
  [[nodiscard]] std::size_t unreliable_edge_count() const {
    return unreliable_csr_.edge_count();
  }

 private:
  void validate_and_index();

  CsrGraph g_csr_;
  CsrGraph gp_csr_;
  CsrGraph unreliable_csr_;
  NodeId source_ = 0;
  /// Guards lazy Graph materialization; non-null iff CSR-built. Copies of a
  /// DualGraph share the mutex and any already-materialized views (both are
  /// immutable once set).
  std::shared_ptr<std::mutex> lazy_;
  mutable std::shared_ptr<const Graph> reliable_view_;
  mutable std::shared_ptr<const Graph> full_view_;
};

/// Convenience: a classical network (G == G').
[[nodiscard]] DualGraph make_classical(Graph g, NodeId source);

}  // namespace dualrad
