#pragma once

#include <utility>

#include "graph/graph.hpp"

/// \file dual_graph.hpp
/// The dual graph network (G, G') of Section 2.1.
///
/// G = (V, E) holds the *reliable* links: a sender's message always reaches
/// its G-out-neighbors. G' = (V, E') with E contained in E' holds *all* links;
/// each round the adversary picks, for each sender, an arbitrary subset of its
/// G'-only out-neighbors that the message additionally reaches.
///
/// The model assumes a distinguished source node from which every node is
/// reachable in G. The classical (reliable) radio-network model is the
/// special case G == G'.

namespace dualrad {

class DualGraph {
 public:
  /// Build a network from a reliable graph, a full graph, and a source.
  /// Validates: same vertex set, E subset of E', source in range, and every
  /// node reachable from the source in G.
  DualGraph(Graph reliable, Graph full, NodeId source);

  [[nodiscard]] NodeId node_count() const { return reliable_.node_count(); }
  [[nodiscard]] NodeId source() const { return source_; }

  /// The reliable graph G.
  [[nodiscard]] const Graph& g() const { return reliable_; }
  /// The full graph G' (reliable plus unreliable links).
  [[nodiscard]] const Graph& g_prime() const { return full_; }

  /// True iff both G and G' are symmetric (the paper's "undirected network").
  [[nodiscard]] bool is_undirected() const {
    return reliable_.is_undirected() && full_.is_undirected();
  }

  /// True iff the network has no unreliable links (classical model).
  [[nodiscard]] bool is_classical() const {
    return reliable_.edge_count() == full_.edge_count();
  }

  /// G'-only out-neighbors of u: nodes reachable from u only unreliably.
  /// Precomputed; cheap to call per round.
  [[nodiscard]] const std::vector<NodeId>& unreliable_out(NodeId u) const;

  /// Number of unreliable (G'-only) directed edges.
  [[nodiscard]] std::size_t unreliable_edge_count() const;

 private:
  Graph reliable_;
  Graph full_;
  NodeId source_;
  std::vector<std::vector<NodeId>> unreliable_out_{};
};

/// Convenience: a classical network (G == G').
[[nodiscard]] DualGraph make_classical(Graph g, NodeId source);

}  // namespace dualrad
