#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/types.hpp"

/// \file graph.hpp
/// A simple directed graph with O(1) edge lookup and in/out adjacency lists,
/// plus a frozen CSR (compressed sparse row) snapshot for hot paths.
///
/// Graphs in the dual graph model (Section 2.1) are directed; a network is
/// called *undirected* when every edge appears in both directions. The
/// `Graph` class therefore stores directed edges and provides helpers for
/// symmetric insertion and symmetry checking. `Graph` is the mutable
/// *builder*; performance-sensitive consumers (the round engine, the trace
/// auditor) freeze it into a `CsrGraph` once per execution and iterate flat
/// arrays instead of a vector-of-vectors.

namespace dualrad {

class Graph {
 public:
  Graph() = default;

  /// Create a graph with nodes {0, ..., n-1} and no edges.
  explicit Graph(NodeId n);

  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(out_.size());
  }
  [[nodiscard]] std::size_t edge_count() const { return edge_set_.size(); }

  /// Add the directed edge (u, v). Self-loops and duplicates are rejected.
  void add_edge(NodeId u, NodeId v);

  /// Add both (u, v) and (v, u). Either may already be present.
  void add_undirected_edge(NodeId u, NodeId v);

  /// True iff the directed edge (u, v) exists.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  [[nodiscard]] const std::vector<NodeId>& out_neighbors(NodeId u) const;
  [[nodiscard]] const std::vector<NodeId>& in_neighbors(NodeId u) const;

  [[nodiscard]] std::size_t out_degree(NodeId u) const {
    return out_neighbors(u).size();
  }
  [[nodiscard]] std::size_t in_degree(NodeId u) const {
    return in_neighbors(u).size();
  }

  /// Maximum in-degree over all nodes (the Delta of [11]).
  [[nodiscard]] std::size_t max_in_degree() const;
  [[nodiscard]] std::size_t max_out_degree() const;

  /// True iff for every edge (u, v), the reverse edge (v, u) exists.
  [[nodiscard]] bool is_undirected() const;

  /// True iff every edge of this graph is an edge of `other`
  /// (subgraph on the same vertex set).
  [[nodiscard]] bool is_subgraph_of(const Graph& other) const;

  /// All directed edges, in insertion order.
  [[nodiscard]] const std::vector<std::pair<NodeId, NodeId>>& edges() const {
    return edge_list_;
  }

  friend bool operator==(const Graph& a, const Graph& b) {
    return a.out_.size() == b.out_.size() && a.edge_set_ == b.edge_set_;
  }

 private:
  void check_node(NodeId u, const char* what) const;
  [[nodiscard]] static std::uint64_t key(NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }

  std::vector<std::vector<NodeId>> out_{};
  std::vector<std::vector<NodeId>> in_{};
  std::unordered_set<std::uint64_t> edge_set_{};
  std::vector<std::pair<NodeId, NodeId>> edge_list_{};
};

/// Immutable CSR snapshot of a Graph's out-adjacency.
///
/// Two flat arrays replace the per-node neighbor vectors: `offsets_[u]`
/// indexes into `targets_`, and `row(u)` returns the out-neighbors of `u`
/// *in the builder's insertion order* — the round engine relies on that
/// order matching `Graph::out_neighbors` exactly, so executions are
/// bit-identical whichever representation delivers the messages. A per-row
/// sorted copy backs `contains()` (binary search), replacing the builder's
/// hash-set lookup on membership-heavy paths.
class CsrGraph {
 public:
  CsrGraph() = default;
  explicit CsrGraph(const Graph& g);

  [[nodiscard]] NodeId node_count() const {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  [[nodiscard]] std::size_t edge_count() const { return targets_.size(); }

  /// Out-neighbors of u, in the order they were added to the builder.
  [[nodiscard]] std::span<const NodeId> row(NodeId u) const {
    const auto uu = static_cast<std::size_t>(u);
    return {targets_.data() + offsets_[uu], offsets_[uu + 1] - offsets_[uu]};
  }

  [[nodiscard]] std::size_t out_degree(NodeId u) const {
    const auto uu = static_cast<std::size_t>(u);
    return offsets_[uu + 1] - offsets_[uu];
  }

  /// True iff the directed edge (u, v) exists. O(log out_degree(u)).
  [[nodiscard]] bool contains(NodeId u, NodeId v) const;

 private:
  std::vector<std::uint32_t> offsets_{};  ///< size node_count() + 1
  std::vector<NodeId> targets_{};         ///< insertion order per row
  std::vector<NodeId> sorted_{};          ///< per-row sorted copy of targets_
};

}  // namespace dualrad
