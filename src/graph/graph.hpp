#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/types.hpp"

/// \file graph.hpp
/// A simple directed graph with O(1) edge lookup and in/out adjacency lists,
/// plus a frozen CSR (compressed sparse row) snapshot for hot paths and a
/// streaming CSR builder for large-n construction.
///
/// Graphs in the dual graph model (Section 2.1) are directed; a network is
/// called *undirected* when every edge appears in both directions. The
/// `Graph` class therefore stores directed edges and provides helpers for
/// symmetric insertion and symmetry checking. `Graph` is the mutable
/// *builder*; performance-sensitive consumers (the round engine, the trace
/// auditor) freeze it into a `CsrGraph` once per execution and iterate flat
/// arrays instead of a vector-of-vectors.
///
/// Memory at scale: `Graph` keeps a hash set of packed edge keys for O(1)
/// has_edge, which costs tens of bytes per edge and dominates peak RSS from
/// n ~ 10^5 up. Scale workloads should skip `Graph` entirely and stream
/// edges into a `CsrGraphBuilder` (~8 bytes per emitted edge transient,
/// sort-based dedup, ~4 bytes per edge frozen); callers that must route
/// through `Graph` can bound the damage with `reserve_edges` + a
/// `release_edge_index` once construction is complete.

namespace dualrad {

class Graph {
 public:
  Graph() = default;

  /// Create a graph with nodes {0, ..., n-1} and no edges.
  explicit Graph(NodeId n);

  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(out_.size());
  }
  [[nodiscard]] std::size_t edge_count() const { return edge_list_.size(); }

  /// Add the directed edge (u, v). Self-loops and duplicates are rejected.
  void add_edge(NodeId u, NodeId v);

  /// Add both (u, v) and (v, u). Either may already be present.
  void add_undirected_edge(NodeId u, NodeId v);

  /// True iff the directed edge (u, v) exists.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Size the edge index (and edge list) for `edges` insertions up front, so
  /// bulk construction does not rehash repeatedly.
  void reserve_edges(std::size_t edges);

  /// Drop the hash-set edge index — the peak-RSS hog at large n. The graph
  /// stays fully functional: has_edge (and the add_edge duplicate check)
  /// fall back to scanning the out-adjacency of u, which is O(out_degree)
  /// instead of O(1). Call after construction, once the graph is about to be
  /// frozen or used read-mostly; adding more edges afterwards is legal but
  /// slow on high-degree nodes.
  void release_edge_index();

  [[nodiscard]] const std::vector<NodeId>& out_neighbors(NodeId u) const;
  [[nodiscard]] const std::vector<NodeId>& in_neighbors(NodeId u) const;

  [[nodiscard]] std::size_t out_degree(NodeId u) const {
    return out_neighbors(u).size();
  }
  [[nodiscard]] std::size_t in_degree(NodeId u) const {
    return in_neighbors(u).size();
  }

  /// Maximum in-degree over all nodes (the Delta of [11]).
  [[nodiscard]] std::size_t max_in_degree() const;
  [[nodiscard]] std::size_t max_out_degree() const;

  /// True iff for every edge (u, v), the reverse edge (v, u) exists.
  [[nodiscard]] bool is_undirected() const;

  /// True iff every edge of this graph is an edge of `other`
  /// (subgraph on the same vertex set).
  [[nodiscard]] bool is_subgraph_of(const Graph& other) const;

  /// All directed edges, in insertion order.
  [[nodiscard]] const std::vector<std::pair<NodeId, NodeId>>& edges() const {
    return edge_list_;
  }

  /// Equality is edge-set equality on the same vertex count (insertion order
  /// is irrelevant; works whether or not either side released its index).
  friend bool operator==(const Graph& a, const Graph& b);

 private:
  void check_node(NodeId u, const char* what) const;
  [[nodiscard]] static std::uint64_t key(NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }

  std::vector<std::vector<NodeId>> out_{};
  std::vector<std::vector<NodeId>> in_{};
  std::unordered_set<std::uint64_t> edge_set_{};
  bool indexed_ = true;  ///< false once release_edge_index() dropped the set
  std::vector<std::pair<NodeId, NodeId>> edge_list_{};
};

/// Immutable CSR snapshot of a directed graph's out-adjacency.
///
/// Two flat arrays replace the per-node neighbor vectors: `offsets_[u]`
/// indexes into `targets_`, and `row(u)` returns the out-neighbors of `u`.
/// Snapshots frozen from a `Graph` keep the builder's *insertion order* —
/// the round engine relies on that order matching `Graph::out_neighbors`
/// exactly, so executions are bit-identical whichever representation
/// delivers the messages — and carry a per-row sorted copy backing
/// `contains()` (binary search). Snapshots produced by `CsrGraphBuilder`
/// have rows already sorted ascending, so `contains()` searches the rows
/// directly and the sorted copy (and its ~4 bytes/edge) is not allocated.
class CsrGraph {
 public:
  /// Largest edge count a snapshot can hold: offsets are 32-bit, so one
  /// more edge would wrap them. Every freeze path (Graph snapshot,
  /// CsrGraphBuilder::freeze) funnels through require_edges_fit, which
  /// throws a clear error instead of silently truncating — the 10^7-node
  /// grid will need 64-bit offsets (ROADMAP), not a wrap.
  static constexpr std::size_t kMaxEdges =
      static_cast<std::size_t>((std::uint64_t{1} << 32) - 1);

  /// Throws std::invalid_argument when `edge_count` cannot be addressed by
  /// the 32-bit CSR offset type.
  static void require_edges_fit(std::size_t edge_count);

  CsrGraph() = default;
  explicit CsrGraph(const Graph& g);

  /// Build from explicit rows in the given order (offsets has node_count + 1
  /// entries; targets[offsets[u]..offsets[u+1]) is row u). Row order is
  /// preserved; a sorted index is built only if some row is unsorted.
  [[nodiscard]] static CsrGraph from_rows(std::vector<std::uint32_t> offsets,
                                          std::vector<NodeId> targets);

  [[nodiscard]] NodeId node_count() const {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  [[nodiscard]] std::size_t edge_count() const { return targets_.size(); }

  /// Out-neighbors of u: insertion order for Graph-frozen snapshots,
  /// ascending for builder-frozen ones.
  [[nodiscard]] std::span<const NodeId> row(NodeId u) const {
    const auto uu = static_cast<std::size_t>(u);
    return {targets_.data() + offsets_[uu], offsets_[uu + 1] - offsets_[uu]};
  }

  [[nodiscard]] std::size_t out_degree(NodeId u) const {
    const auto uu = static_cast<std::size_t>(u);
    return offsets_[uu + 1] - offsets_[uu];
  }

  /// True iff rows are sorted ascending (builder-frozen snapshots).
  [[nodiscard]] bool rows_sorted() const { return sorted_.empty(); }

  /// True iff the directed edge (u, v) exists. O(log out_degree(u)).
  [[nodiscard]] bool contains(NodeId u, NodeId v) const;

  /// True iff for every edge (u, v), the reverse edge (v, u) exists.
  [[nodiscard]] bool is_symmetric() const;

  /// True iff every edge of this graph is an edge of `other` (same vertex
  /// set required).
  [[nodiscard]] bool is_subgraph_of(const CsrGraph& other) const;

  [[nodiscard]] std::size_t max_out_degree() const;

  /// Maximum in-degree over all nodes (the Delta of [11]). O(m).
  [[nodiscard]] std::size_t max_in_degree() const;

 private:
  friend class CsrGraphBuilder;
  CsrGraph(std::vector<std::uint32_t> offsets, std::vector<NodeId> targets)
      : offsets_(std::move(offsets)), targets_(std::move(targets)) {}

  std::vector<std::uint32_t> offsets_{};  ///< size node_count() + 1
  std::vector<NodeId> targets_{};
  std::vector<NodeId> sorted_{};  ///< per-row sorted copy; empty = rows sorted
};

/// Streaming CSR construction for large graphs: emit directed edges into a
/// flat packed array (8 bytes each, duplicates welcome), then `freeze()`
/// sorts, deduplicates, and lays out the CSR — no hash set, no per-node
/// vectors, no `Graph` intermediate. Peak RSS is ~8 bytes per emitted edge
/// during construction and ~4 bytes per distinct edge after freeze, which
/// is what makes 10^6-node generator families fit in memory. Frozen rows
/// are sorted ascending (a builder-frozen CsrGraph therefore needs no
/// separate sorted index).
class CsrGraphBuilder {
 public:
  explicit CsrGraphBuilder(NodeId n);

  [[nodiscard]] NodeId node_count() const { return n_; }
  /// Edges emitted so far, duplicates included.
  [[nodiscard]] std::size_t emitted() const { return edges_.size(); }

  void reserve(std::size_t edges) { edges_.reserve(edges); }

  /// Emit the directed edge (u, v). Self-loops are rejected; duplicates are
  /// collapsed at freeze().
  void add_edge(NodeId u, NodeId v);

  /// Emit both (u, v) and (v, u).
  void add_undirected_edge(NodeId u, NodeId v) {
    add_edge(u, v);
    add_edge(v, u);
  }

  /// Sort + dedup + lay out the CSR. The builder is left empty (reusable).
  [[nodiscard]] CsrGraph freeze();

 private:
  NodeId n_ = 0;
  std::vector<std::uint64_t> edges_{};  ///< packed (u << 32) | v
};

}  // namespace dualrad
