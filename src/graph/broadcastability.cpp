#include "graph/broadcastability.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace dualrad::broadcastability {

Round broadcastability_lower_bound(const DualGraph& net) {
  return graphalg::eccentricity(net.g(), net.source());
}

NodeId coverage_after(const DualGraph& net, const OracleSchedule& schedule) {
  std::vector<bool> covered(static_cast<std::size_t>(net.node_count()), false);
  covered[static_cast<std::size_t>(net.source())] = true;
  NodeId count = 1;
  for (NodeId u : schedule.senders) {
    DUALRAD_REQUIRE(u >= 0 && u < net.node_count(), "sender out of range");
    DUALRAD_REQUIRE(covered[static_cast<std::size_t>(u)],
                    "scheduled sender does not hold the message");
    for (NodeId v : net.g().out_neighbors(u)) {
      if (!covered[static_cast<std::size_t>(v)]) {
        covered[static_cast<std::size_t>(v)] = true;
        ++count;
      }
    }
  }
  return count;
}

OracleSchedule greedy_oracle_schedule(const DualGraph& net) {
  const NodeId n = net.node_count();
  std::vector<bool> covered(static_cast<std::size_t>(n), false);
  covered[static_cast<std::size_t>(net.source())] = true;
  NodeId remaining = n - 1;
  OracleSchedule schedule;
  while (remaining > 0) {
    NodeId best = kInvalidNode;
    NodeId best_gain = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (!covered[static_cast<std::size_t>(u)]) continue;
      NodeId gain = 0;
      for (NodeId v : net.g().out_neighbors(u)) {
        if (!covered[static_cast<std::size_t>(v)]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = u;
      }
    }
    DUALRAD_CHECK(best != kInvalidNode,
                  "coverage stalled despite reachability invariant");
    schedule.senders.push_back(best);
    for (NodeId v : net.g().out_neighbors(best)) {
      if (!covered[static_cast<std::size_t>(v)]) {
        covered[static_cast<std::size_t>(v)] = true;
        --remaining;
      }
    }
  }
  return schedule;
}

namespace {

bool dfs(const DualGraph& net, std::vector<bool>& covered, NodeId remaining,
         Round budget, OracleSchedule& schedule) {
  if (remaining == 0) return true;
  if (budget == 0) return false;
  const NodeId n = net.node_count();
  // Prune: one sender covers at most max out-degree new nodes per round.
  const auto max_gain = static_cast<NodeId>(net.g().max_out_degree());
  if (static_cast<Round>((remaining + max_gain - 1) / max_gain) > budget) {
    return false;
  }
  for (NodeId u = 0; u < n; ++u) {
    if (!covered[static_cast<std::size_t>(u)]) continue;
    std::vector<NodeId> newly;
    for (NodeId v : net.g().out_neighbors(u)) {
      if (!covered[static_cast<std::size_t>(v)]) newly.push_back(v);
    }
    if (newly.empty()) continue;
    for (NodeId v : newly) covered[static_cast<std::size_t>(v)] = true;
    schedule.senders.push_back(u);
    if (dfs(net, covered, remaining - static_cast<NodeId>(newly.size()),
            budget - 1, schedule)) {
      return true;
    }
    schedule.senders.pop_back();
    for (NodeId v : newly) covered[static_cast<std::size_t>(v)] = false;
  }
  return false;
}

}  // namespace

OracleSchedule exact_oracle_schedule(const DualGraph& net, Round max_rounds) {
  const NodeId n = net.node_count();
  for (Round budget = 0; budget <= max_rounds; ++budget) {
    std::vector<bool> covered(static_cast<std::size_t>(n), false);
    covered[static_cast<std::size_t>(net.source())] = true;
    OracleSchedule schedule;
    if (dfs(net, covered, n - 1, budget, schedule)) return schedule;
  }
  throw std::invalid_argument(
      "no oracle schedule within max_rounds; raise the cap");
}

}  // namespace dualrad::broadcastability
