#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

namespace dualrad::graphalg {

std::vector<Round> bfs_distances(const Graph& g, NodeId source) {
  DUALRAD_REQUIRE(source >= 0 && source < g.node_count(),
                  "BFS source out of range");
  std::vector<Round> dist(static_cast<std::size_t>(g.node_count()), kNever);
  std::queue<NodeId> frontier;
  dist[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.out_neighbors(u)) {
      auto& dv = dist[static_cast<std::size_t>(v)];
      if (dv == kNever) {
        dv = dist[static_cast<std::size_t>(u)] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<Round> bfs_distances(const CsrGraph& g, NodeId source) {
  DUALRAD_REQUIRE(source >= 0 && source < g.node_count(),
                  "BFS source out of range");
  std::vector<Round> dist(static_cast<std::size_t>(g.node_count()), kNever);
  // A vector frontier (swap per level) instead of std::queue: BFS over a
  // 10^6-node CSR graph is on the construction path of the scale families.
  std::vector<NodeId> frontier{source}, next;
  dist[static_cast<std::size_t>(source)] = 0;
  Round level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const NodeId u : frontier) {
      for (const NodeId v : g.row(u)) {
        auto& dv = dist[static_cast<std::size_t>(v)];
        if (dv == kNever) {
          dv = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

bool all_reachable(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  return std::none_of(dist.begin(), dist.end(),
                      [](Round d) { return d == kNever; });
}

bool all_reachable(const CsrGraph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  return std::none_of(dist.begin(), dist.end(),
                      [](Round d) { return d == kNever; });
}

std::vector<NodeId> reachable_set(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (dist[static_cast<std::size_t>(v)] != kNever) out.push_back(v);
  }
  return out;
}

Round eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  Round ecc = 0;
  for (Round d : dist) {
    if (d == kNever) return kNever;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

Round diameter(const Graph& g) {
  Round diam = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const Round ecc = eccentricity(g, u);
    if (ecc == kNever) return kNever;
    diam = std::max(diam, ecc);
  }
  return diam;
}

bool weakly_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  Graph closure(g.node_count());
  for (const auto& [u, v] : g.edges()) closure.add_undirected_edge(u, v);
  return all_reachable(closure, 0);
}

}  // namespace dualrad::graphalg
