#pragma once

#include <vector>

#include "graph/dual_graph.hpp"

/// \file broadcastability.hpp
/// k-broadcastability (Section 3).
///
/// A network (G, G') is k-broadcastable if some deterministic algorithm and
/// proc mapping deliver the message to everyone within k rounds under CR1
/// and synchronous start, *for every* adversary. Scheduling exactly one
/// sender per round sidesteps the adversary entirely: with a single sender
/// no node can ever receive two messages, so no collisions occur and the
/// message propagates along reliable edges regardless of which unreliable
/// links fire. The optimal single-sender schedule ("telephone broadcast" on
/// G) is NP-hard in general; this module provides:
///   - the trivial lower bound: eccentricity of the source in G
///     (any k-broadcastable network has all G-distances <= k, Section 3);
///   - a greedy oracle schedule (max-new-coverage) whose length upper-bounds
///     the network's broadcastability;
///   - an exact minimal schedule by IDDFS for small networks (tests).
///
/// The bridge network of Theorem 2 is the showcase: 2-broadcastable (source
/// then bridge), yet Omega(n) for any fixed deterministic algorithm.

namespace dualrad::broadcastability {

struct OracleSchedule {
  /// senders[r] transmits in round r+1, alone. Empty = nothing to do (n=1).
  std::vector<NodeId> senders{};
  [[nodiscard]] Round rounds() const {
    return static_cast<Round>(senders.size());
  }
};

/// Lower bound on k for k-broadcastability: max BFS distance from the
/// source in G.
[[nodiscard]] Round broadcastability_lower_bound(const DualGraph& net);

/// Greedy oracle schedule: each round the covered node covering the most
/// new nodes (via G out-edges) transmits. Always valid; length >=
/// optimal >= broadcastability_lower_bound.
[[nodiscard]] OracleSchedule greedy_oracle_schedule(const DualGraph& net);

/// Exact minimum single-sender schedule via iterative-deepening search.
/// Exponential; intended for n <= ~12 (tests and demos).
[[nodiscard]] OracleSchedule exact_oracle_schedule(const DualGraph& net,
                                                   Round max_rounds = 12);

/// Verify that executing `schedule` covers everyone: replays coverage along
/// reliable edges, requiring every scheduled sender to be covered when it
/// transmits. Returns the number of covered nodes at the end.
[[nodiscard]] NodeId coverage_after(const DualGraph& net,
                                    const OracleSchedule& schedule);

}  // namespace dualrad::broadcastability
