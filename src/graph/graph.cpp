#include "graph/graph.hpp"

#include <algorithm>

namespace dualrad {

Graph::Graph(NodeId n) {
  DUALRAD_REQUIRE(n >= 0, "node count must be non-negative");
  out_.resize(static_cast<std::size_t>(n));
  in_.resize(static_cast<std::size_t>(n));
}

void Graph::check_node(NodeId u, const char* what) const {
  DUALRAD_REQUIRE(u >= 0 && u < node_count(), what);
}

void Graph::add_edge(NodeId u, NodeId v) {
  check_node(u, "edge endpoint out of range");
  check_node(v, "edge endpoint out of range");
  DUALRAD_REQUIRE(u != v, "self-loops are not allowed");
  DUALRAD_REQUIRE(!has_edge(u, v), "duplicate edge");
  edge_set_.insert(key(u, v));
  edge_list_.emplace_back(u, v);
  out_[static_cast<std::size_t>(u)].push_back(v);
  in_[static_cast<std::size_t>(v)].push_back(u);
}

void Graph::add_undirected_edge(NodeId u, NodeId v) {
  if (!has_edge(u, v)) add_edge(u, v);
  if (!has_edge(v, u)) add_edge(v, u);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= node_count() || v >= node_count()) return false;
  return edge_set_.contains(key(u, v));
}

const std::vector<NodeId>& Graph::out_neighbors(NodeId u) const {
  check_node(u, "node out of range");
  return out_[static_cast<std::size_t>(u)];
}

const std::vector<NodeId>& Graph::in_neighbors(NodeId u) const {
  check_node(u, "node out of range");
  return in_[static_cast<std::size_t>(u)];
}

std::size_t Graph::max_in_degree() const {
  std::size_t best = 0;
  for (const auto& nbrs : in_) best = std::max(best, nbrs.size());
  return best;
}

std::size_t Graph::max_out_degree() const {
  std::size_t best = 0;
  for (const auto& nbrs : out_) best = std::max(best, nbrs.size());
  return best;
}

bool Graph::is_undirected() const {
  return std::all_of(edge_list_.begin(), edge_list_.end(),
                     [&](const auto& e) { return has_edge(e.second, e.first); });
}

bool Graph::is_subgraph_of(const Graph& other) const {
  if (node_count() != other.node_count()) return false;
  return std::all_of(
      edge_list_.begin(), edge_list_.end(),
      [&](const auto& e) { return other.has_edge(e.first, e.second); });
}

CsrGraph::CsrGraph(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  DUALRAD_REQUIRE(g.edge_count() < (std::uint64_t{1} << 32),
                  "CSR snapshot supports < 2^32 edges");
  offsets_.resize(n + 1, 0);
  targets_.reserve(g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto& nbrs = g.out_neighbors(u);
    offsets_[static_cast<std::size_t>(u) + 1] =
        offsets_[static_cast<std::size_t>(u)] +
        static_cast<std::uint32_t>(nbrs.size());
    targets_.insert(targets_.end(), nbrs.begin(), nbrs.end());
  }
  sorted_ = targets_;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto uu = static_cast<std::size_t>(u);
    std::sort(sorted_.begin() + offsets_[uu], sorted_.begin() + offsets_[uu + 1]);
  }
}

bool CsrGraph::contains(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= node_count() || v >= node_count()) return false;
  const auto uu = static_cast<std::size_t>(u);
  const auto begin = sorted_.begin() + offsets_[uu];
  const auto end = sorted_.begin() + offsets_[uu + 1];
  return std::binary_search(begin, end, v);
}

}  // namespace dualrad
