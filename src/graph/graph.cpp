#include "graph/graph.hpp"

#include <algorithm>

namespace dualrad {

Graph::Graph(NodeId n) {
  DUALRAD_REQUIRE(n >= 0, "node count must be non-negative");
  out_.resize(static_cast<std::size_t>(n));
  in_.resize(static_cast<std::size_t>(n));
}

void Graph::check_node(NodeId u, const char* what) const {
  DUALRAD_REQUIRE(u >= 0 && u < node_count(), what);
}

void Graph::add_edge(NodeId u, NodeId v) {
  check_node(u, "edge endpoint out of range");
  check_node(v, "edge endpoint out of range");
  DUALRAD_REQUIRE(u != v, "self-loops are not allowed");
  DUALRAD_REQUIRE(!has_edge(u, v), "duplicate edge");
  if (indexed_) edge_set_.insert(key(u, v));
  edge_list_.emplace_back(u, v);
  out_[static_cast<std::size_t>(u)].push_back(v);
  in_[static_cast<std::size_t>(v)].push_back(u);
}

void Graph::add_undirected_edge(NodeId u, NodeId v) {
  if (!has_edge(u, v)) add_edge(u, v);
  if (!has_edge(v, u)) add_edge(v, u);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= node_count() || v >= node_count()) return false;
  if (indexed_) return edge_set_.contains(key(u, v));
  const auto& nbrs = out_[static_cast<std::size_t>(u)];
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

void Graph::reserve_edges(std::size_t edges) {
  if (indexed_) edge_set_.reserve(edges);
  edge_list_.reserve(edges);
}

void Graph::release_edge_index() {
  indexed_ = false;
  edge_set_ = {};  // actually free the buckets (clear() keeps them)
}

const std::vector<NodeId>& Graph::out_neighbors(NodeId u) const {
  check_node(u, "node out of range");
  return out_[static_cast<std::size_t>(u)];
}

const std::vector<NodeId>& Graph::in_neighbors(NodeId u) const {
  check_node(u, "node out of range");
  return in_[static_cast<std::size_t>(u)];
}

std::size_t Graph::max_in_degree() const {
  std::size_t best = 0;
  for (const auto& nbrs : in_) best = std::max(best, nbrs.size());
  return best;
}

std::size_t Graph::max_out_degree() const {
  std::size_t best = 0;
  for (const auto& nbrs : out_) best = std::max(best, nbrs.size());
  return best;
}

bool Graph::is_undirected() const {
  return std::all_of(edge_list_.begin(), edge_list_.end(),
                     [&](const auto& e) { return has_edge(e.second, e.first); });
}

bool Graph::is_subgraph_of(const Graph& other) const {
  if (node_count() != other.node_count()) return false;
  return std::all_of(
      edge_list_.begin(), edge_list_.end(),
      [&](const auto& e) { return other.has_edge(e.first, e.second); });
}

bool operator==(const Graph& a, const Graph& b) {
  if (a.out_.size() != b.out_.size() ||
      a.edge_list_.size() != b.edge_list_.size()) {
    return false;
  }
  if (a.indexed_ && b.indexed_) return a.edge_set_ == b.edge_set_;
  const auto sorted_keys = [](const Graph& g) {
    std::vector<std::uint64_t> keys;
    keys.reserve(g.edge_list_.size());
    for (const auto& [u, v] : g.edge_list_) keys.push_back(Graph::key(u, v));
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  return sorted_keys(a) == sorted_keys(b);
}

void CsrGraph::require_edges_fit(std::size_t edge_count) {
  if (edge_count > kMaxEdges) {
    throw std::invalid_argument(
        "dualrad: cannot freeze a CSR snapshot with " +
        std::to_string(edge_count) + " edges: 32-bit row offsets address at "
        "most " + std::to_string(kMaxEdges) +
        " edges; this build needs the 64-bit-offset CSR before scaling "
        "further");
  }
}

CsrGraph::CsrGraph(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  require_edges_fit(g.edge_count());
  offsets_.resize(n + 1, 0);
  targets_.reserve(g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto& nbrs = g.out_neighbors(u);
    offsets_[static_cast<std::size_t>(u) + 1] =
        offsets_[static_cast<std::size_t>(u)] +
        static_cast<std::uint32_t>(nbrs.size());
    targets_.insert(targets_.end(), nbrs.begin(), nbrs.end());
  }
  sorted_ = targets_;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto uu = static_cast<std::size_t>(u);
    std::sort(sorted_.begin() + offsets_[uu], sorted_.begin() + offsets_[uu + 1]);
  }
  // An edge-free Graph-frozen snapshot is indistinguishable from a sorted
  // one — rows_sorted() is vacuously true and contains() has nothing to
  // find, so the sorted_/targets_ distinction does not matter there.
}

CsrGraph CsrGraph::from_rows(std::vector<std::uint32_t> offsets,
                             std::vector<NodeId> targets) {
  DUALRAD_REQUIRE(!offsets.empty() && offsets.front() == 0 &&
                      offsets.back() == targets.size(),
                  "malformed CSR offsets");
  CsrGraph csr(std::move(offsets), std::move(targets));
  bool sorted = true;
  for (NodeId u = 0; sorted && u < csr.node_count(); ++u) {
    const auto row = csr.row(u);
    sorted = std::is_sorted(row.begin(), row.end());
  }
  if (!sorted) {
    csr.sorted_ = csr.targets_;
    for (NodeId u = 0; u < csr.node_count(); ++u) {
      const auto uu = static_cast<std::size_t>(u);
      std::sort(csr.sorted_.begin() + csr.offsets_[uu],
                csr.sorted_.begin() + csr.offsets_[uu + 1]);
    }
  }
  return csr;
}

bool CsrGraph::contains(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= node_count() || v >= node_count()) return false;
  const auto uu = static_cast<std::size_t>(u);
  const std::vector<NodeId>& keys = sorted_.empty() ? targets_ : sorted_;
  const auto begin = keys.begin() + offsets_[uu];
  const auto end = keys.begin() + offsets_[uu + 1];
  return std::binary_search(begin, end, v);
}

bool CsrGraph::is_symmetric() const {
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const NodeId v : row(u)) {
      if (!contains(v, u)) return false;
    }
  }
  return true;
}

bool CsrGraph::is_subgraph_of(const CsrGraph& other) const {
  if (node_count() != other.node_count()) return false;
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const NodeId v : row(u)) {
      if (!other.contains(u, v)) return false;
    }
  }
  return true;
}

std::size_t CsrGraph::max_out_degree() const {
  std::size_t best = 0;
  for (NodeId u = 0; u < node_count(); ++u) {
    best = std::max(best, out_degree(u));
  }
  return best;
}

std::size_t CsrGraph::max_in_degree() const {
  std::vector<std::uint32_t> in_deg(static_cast<std::size_t>(node_count()), 0);
  for (const NodeId v : targets_) ++in_deg[static_cast<std::size_t>(v)];
  std::uint32_t best = 0;
  for (const std::uint32_t d : in_deg) best = std::max(best, d);
  return best;
}

CsrGraphBuilder::CsrGraphBuilder(NodeId n) : n_(n) {
  DUALRAD_REQUIRE(n >= 0, "node count must be non-negative");
}

void CsrGraphBuilder::add_edge(NodeId u, NodeId v) {
  DUALRAD_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_,
                  "edge endpoint out of range");
  DUALRAD_REQUIRE(u != v, "self-loops are not allowed");
  edges_.push_back(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
      static_cast<std::uint32_t>(v));
}

CsrGraph CsrGraphBuilder::freeze() {
  // Packed (u << 32) | v keys sort by source then target, so one sort both
  // groups the rows and orders each row ascending; dedup is then adjacent.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  CsrGraph::require_edges_fit(edges_.size());

  std::vector<std::uint32_t> offsets(static_cast<std::size_t>(n_) + 1, 0);
  std::vector<NodeId> targets;
  targets.reserve(edges_.size());
  for (const std::uint64_t e : edges_) {
    ++offsets[static_cast<std::size_t>(e >> 32) + 1];
    targets.push_back(static_cast<NodeId>(e & 0xFFFFFFFFULL));
  }
  for (std::size_t u = 0; u < static_cast<std::size_t>(n_); ++u) {
    offsets[u + 1] += offsets[u];
  }
  edges_ = {};  // release the packed array before handing out the CSR
  return CsrGraph(std::move(offsets), std::move(targets));
}

}  // namespace dualrad
