#include "graph/generators.hpp"

#include <numeric>

#include "core/rng.hpp"

namespace dualrad::gen {
namespace {

// The deterministic classic generators are written once against a generic
// edge sink and instantiated for both representations: the mutable `Graph`
// builder (the historical API, identical insertion order) and the streaming
// `CsrGraphBuilder` (no hash set, no per-node vectors — the scale path).
// None of them emits a duplicate pair, so the two sinks produce the same
// edge sets.

template <class Sink>
void emit_clique(Sink& sink, NodeId n) {
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) sink.add_undirected_edge(u, v);
  }
}

template <class Sink>
void emit_path(Sink& sink, NodeId n) {
  for (NodeId u = 0; u + 1 < n; ++u) sink.add_undirected_edge(u, u + 1);
}

template <class Sink>
void emit_star(Sink& sink, NodeId n) {
  for (NodeId u = 1; u < n; ++u) sink.add_undirected_edge(0, u);
}

template <class Sink>
void emit_complete_layered(Sink& sink, const std::vector<NodeId>& off) {
  for (std::size_t i = 0; i + 1 < off.size(); ++i) {
    // Intra-layer clique.
    for (NodeId u = off[i]; u < off[i + 1]; ++u) {
      for (NodeId v = u + 1; v < off[i + 1]; ++v) {
        sink.add_undirected_edge(u, v);
      }
    }
    // Complete bipartite to the next layer.
    if (i + 2 < off.size()) {
      for (NodeId u = off[i]; u < off[i + 1]; ++u) {
        for (NodeId v = off[i + 1]; v < off[i + 2]; ++v) {
          sink.add_undirected_edge(u, v);
        }
      }
    }
  }
}

template <class Sink>
void emit_grid(Sink& sink, NodeId width, NodeId height) {
  const auto at = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      if (x + 1 < width) sink.add_undirected_edge(at(x, y), at(x + 1, y));
      if (y + 1 < height) sink.add_undirected_edge(at(x, y), at(x, y + 1));
    }
  }
}

}  // namespace

Graph clique(NodeId n) {
  DUALRAD_REQUIRE(n >= 1, "clique needs n >= 1");
  Graph g(n);
  g.reserve_edges(static_cast<std::size_t>(n) * (n - 1));
  emit_clique(g, n);
  return g;
}

CsrGraph clique_csr(NodeId n) {
  DUALRAD_REQUIRE(n >= 1, "clique needs n >= 1");
  CsrGraphBuilder b(n);
  b.reserve(static_cast<std::size_t>(n) * (n - 1));
  emit_clique(b, n);
  return b.freeze();
}

Graph path(NodeId n) {
  DUALRAD_REQUIRE(n >= 1, "path needs n >= 1");
  Graph g(n);
  emit_path(g, n);
  return g;
}

CsrGraph path_csr(NodeId n) {
  DUALRAD_REQUIRE(n >= 1, "path needs n >= 1");
  CsrGraphBuilder b(n);
  emit_path(b, n);
  return b.freeze();
}

Graph cycle(NodeId n) {
  DUALRAD_REQUIRE(n >= 3, "cycle needs n >= 3");
  Graph g = path(n);
  g.add_undirected_edge(n - 1, 0);
  return g;
}

CsrGraph cycle_csr(NodeId n) {
  DUALRAD_REQUIRE(n >= 3, "cycle needs n >= 3");
  CsrGraphBuilder b(n);
  emit_path(b, n);
  b.add_undirected_edge(n - 1, 0);
  return b.freeze();
}

Graph star(NodeId n) {
  DUALRAD_REQUIRE(n >= 2, "star needs n >= 2");
  Graph g(n);
  emit_star(g, n);
  return g;
}

CsrGraph star_csr(NodeId n) {
  DUALRAD_REQUIRE(n >= 2, "star needs n >= 2");
  CsrGraphBuilder b(n);
  emit_star(b, n);
  return b.freeze();
}

std::vector<NodeId> layer_offsets(const std::vector<NodeId>& layer_sizes) {
  std::vector<NodeId> offsets(layer_sizes.size() + 1, 0);
  for (std::size_t i = 0; i < layer_sizes.size(); ++i) {
    DUALRAD_REQUIRE(layer_sizes[i] >= 1, "layer sizes must be positive");
    offsets[i + 1] = offsets[i] + layer_sizes[i];
  }
  return offsets;
}

Graph complete_layered(const std::vector<NodeId>& layer_sizes) {
  DUALRAD_REQUIRE(!layer_sizes.empty(), "need at least one layer");
  const auto off = layer_offsets(layer_sizes);
  Graph g(off.back());
  emit_complete_layered(g, off);
  return g;
}

CsrGraph complete_layered_csr(const std::vector<NodeId>& layer_sizes) {
  DUALRAD_REQUIRE(!layer_sizes.empty(), "need at least one layer");
  const auto off = layer_offsets(layer_sizes);
  CsrGraphBuilder b(off.back());
  emit_complete_layered(b, off);
  return b.freeze();
}

Graph directed_layered(const std::vector<NodeId>& layer_sizes) {
  DUALRAD_REQUIRE(!layer_sizes.empty(), "need at least one layer");
  const auto off = layer_offsets(layer_sizes);
  Graph g(off.back());
  for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    for (NodeId u = off[i]; u < off[i + 1]; ++u) {
      for (NodeId v = off[i + 1]; v < off[i + 2]; ++v) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  DUALRAD_REQUIRE(n >= 1, "tree needs n >= 1");
  StreamRng rng(seed);
  Graph g(n);
  for (NodeId u = 1; u < n; ++u) {
    const auto parent = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(u)));
    g.add_undirected_edge(parent, u);
  }
  return g;
}

Graph gnp_connected(NodeId n, double p, std::uint64_t seed) {
  DUALRAD_REQUIRE(p >= 0.0 && p <= 1.0, "p must be a probability");
  StreamRng rng(mix_seed(seed, 0x6e70));
  Graph g = random_tree(n, mix_seed(seed, 0x7472));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v) && rng.bernoulli(p)) g.add_undirected_edge(u, v);
    }
  }
  return g;
}

Graph grid(NodeId width, NodeId height) {
  DUALRAD_REQUIRE(width >= 1 && height >= 1, "grid needs positive dims");
  Graph g(width * height);
  emit_grid(g, width, height);
  return g;
}

CsrGraph grid_csr(NodeId width, NodeId height) {
  DUALRAD_REQUIRE(width >= 1 && height >= 1, "grid needs positive dims");
  CsrGraphBuilder b(width * height);
  emit_grid(b, width, height);
  return b.freeze();
}

}  // namespace dualrad::gen
