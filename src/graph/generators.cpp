#include "graph/generators.hpp"

#include <numeric>

#include "core/rng.hpp"

namespace dualrad::gen {

Graph clique(NodeId n) {
  DUALRAD_REQUIRE(n >= 1, "clique needs n >= 1");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_undirected_edge(u, v);
  }
  return g;
}

Graph path(NodeId n) {
  DUALRAD_REQUIRE(n >= 1, "path needs n >= 1");
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_undirected_edge(u, u + 1);
  return g;
}

Graph cycle(NodeId n) {
  DUALRAD_REQUIRE(n >= 3, "cycle needs n >= 3");
  Graph g = path(n);
  g.add_undirected_edge(n - 1, 0);
  return g;
}

Graph star(NodeId n) {
  DUALRAD_REQUIRE(n >= 2, "star needs n >= 2");
  Graph g(n);
  for (NodeId u = 1; u < n; ++u) g.add_undirected_edge(0, u);
  return g;
}

std::vector<NodeId> layer_offsets(const std::vector<NodeId>& layer_sizes) {
  std::vector<NodeId> offsets(layer_sizes.size() + 1, 0);
  for (std::size_t i = 0; i < layer_sizes.size(); ++i) {
    DUALRAD_REQUIRE(layer_sizes[i] >= 1, "layer sizes must be positive");
    offsets[i + 1] = offsets[i] + layer_sizes[i];
  }
  return offsets;
}

Graph complete_layered(const std::vector<NodeId>& layer_sizes) {
  DUALRAD_REQUIRE(!layer_sizes.empty(), "need at least one layer");
  const auto off = layer_offsets(layer_sizes);
  Graph g(off.back());
  for (std::size_t i = 0; i < layer_sizes.size(); ++i) {
    // Intra-layer clique.
    for (NodeId u = off[i]; u < off[i + 1]; ++u) {
      for (NodeId v = u + 1; v < off[i + 1]; ++v) g.add_undirected_edge(u, v);
    }
    // Complete bipartite to the next layer.
    if (i + 1 < layer_sizes.size()) {
      for (NodeId u = off[i]; u < off[i + 1]; ++u) {
        for (NodeId v = off[i + 1]; v < off[i + 2]; ++v) {
          g.add_undirected_edge(u, v);
        }
      }
    }
  }
  return g;
}

Graph directed_layered(const std::vector<NodeId>& layer_sizes) {
  DUALRAD_REQUIRE(!layer_sizes.empty(), "need at least one layer");
  const auto off = layer_offsets(layer_sizes);
  Graph g(off.back());
  for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    for (NodeId u = off[i]; u < off[i + 1]; ++u) {
      for (NodeId v = off[i + 1]; v < off[i + 2]; ++v) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  DUALRAD_REQUIRE(n >= 1, "tree needs n >= 1");
  StreamRng rng(seed);
  Graph g(n);
  for (NodeId u = 1; u < n; ++u) {
    const auto parent = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(u)));
    g.add_undirected_edge(parent, u);
  }
  return g;
}

Graph gnp_connected(NodeId n, double p, std::uint64_t seed) {
  DUALRAD_REQUIRE(p >= 0.0 && p <= 1.0, "p must be a probability");
  StreamRng rng(mix_seed(seed, 0x6e70));
  Graph g = random_tree(n, mix_seed(seed, 0x7472));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v) && rng.bernoulli(p)) g.add_undirected_edge(u, v);
    }
  }
  return g;
}

Graph grid(NodeId width, NodeId height) {
  DUALRAD_REQUIRE(width >= 1 && height >= 1, "grid needs positive dims");
  Graph g(width * height);
  const auto at = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      if (x + 1 < width) g.add_undirected_edge(at(x, y), at(x + 1, y));
      if (y + 1 < height) g.add_undirected_edge(at(x, y), at(x, y + 1));
    }
  }
  return g;
}

}  // namespace dualrad::gen
