#include "graph/dual_graph.hpp"

#include <numeric>

#include "graph/algorithms.hpp"

namespace dualrad {

DualGraph::DualGraph(Graph reliable, Graph full, NodeId source)
    : reliable_(std::move(reliable)), full_(std::move(full)), source_(source) {
  DUALRAD_REQUIRE(reliable_.node_count() == full_.node_count(),
                  "G and G' must share a vertex set");
  DUALRAD_REQUIRE(reliable_.node_count() >= 2, "the model fixes n >= 2");
  DUALRAD_REQUIRE(source_ >= 0 && source_ < reliable_.node_count(),
                  "source out of range");
  DUALRAD_REQUIRE(reliable_.is_subgraph_of(full_),
                  "E must be a subset of E'");
  DUALRAD_REQUIRE(graphalg::all_reachable(reliable_, source_),
                  "every node must be reachable from the source in G");
  unreliable_out_.resize(static_cast<std::size_t>(node_count()));
  for (NodeId u = 0; u < node_count(); ++u) {
    for (NodeId v : full_.out_neighbors(u)) {
      if (!reliable_.has_edge(u, v)) {
        unreliable_out_[static_cast<std::size_t>(u)].push_back(v);
      }
    }
  }
}

const std::vector<NodeId>& DualGraph::unreliable_out(NodeId u) const {
  DUALRAD_REQUIRE(u >= 0 && u < node_count(), "node out of range");
  return unreliable_out_[static_cast<std::size_t>(u)];
}

std::size_t DualGraph::unreliable_edge_count() const {
  return std::accumulate(
      unreliable_out_.begin(), unreliable_out_.end(), std::size_t{0},
      [](std::size_t acc, const auto& v) { return acc + v.size(); });
}

DualGraph make_classical(Graph g, NodeId source) {
  Graph copy = g;
  return DualGraph(std::move(copy), std::move(g), source);
}

}  // namespace dualrad
