#include "graph/dual_graph.hpp"

#include "graph/algorithms.hpp"

namespace dualrad {

namespace {

/// Rebuild a mutable Graph view from a CSR snapshot (row order preserved,
/// so out_neighbors matches the CSR delivery order exactly).
[[nodiscard]] Graph to_graph(const CsrGraph& csr) {
  Graph g(csr.node_count());
  g.reserve_edges(csr.edge_count());
  for (NodeId u = 0; u < csr.node_count(); ++u) {
    for (const NodeId v : csr.row(u)) g.add_edge(u, v);
  }
  return g;
}

/// The G'-only adjacency: each G' row minus the G edges, *in G' row order*
/// — stateful adversaries consume their RNG streams in this order, so it
/// must match what iterating g_prime().out_neighbors minus G produced.
[[nodiscard]] CsrGraph unreliable_of(const CsrGraph& g, const CsrGraph& gp) {
  std::vector<std::uint32_t> offsets(
      static_cast<std::size_t>(gp.node_count()) + 1, 0);
  std::vector<NodeId> targets;
  targets.reserve(gp.edge_count() - g.edge_count());
  for (NodeId u = 0; u < gp.node_count(); ++u) {
    for (const NodeId v : gp.row(u)) {
      if (!g.contains(u, v)) targets.push_back(v);
    }
    offsets[static_cast<std::size_t>(u) + 1] =
        static_cast<std::uint32_t>(targets.size());
  }
  return CsrGraph::from_rows(std::move(offsets), std::move(targets));
}

}  // namespace

void DualGraph::validate_and_index() {
  DUALRAD_REQUIRE(g_csr_.node_count() == gp_csr_.node_count(),
                  "G and G' must share a vertex set");
  DUALRAD_REQUIRE(g_csr_.node_count() >= 2, "the model fixes n >= 2");
  DUALRAD_REQUIRE(source_ >= 0 && source_ < g_csr_.node_count(),
                  "source out of range");
  DUALRAD_REQUIRE(g_csr_.is_subgraph_of(gp_csr_), "E must be a subset of E'");
  DUALRAD_REQUIRE(graphalg::all_reachable(g_csr_, source_),
                  "every node must be reachable from the source in G");
  unreliable_csr_ = unreliable_of(g_csr_, gp_csr_);
}

DualGraph::DualGraph(Graph reliable, Graph full, NodeId source)
    : g_csr_(reliable), gp_csr_(full), source_(source) {
  validate_and_index();
  reliable_view_ = std::make_shared<const Graph>(std::move(reliable));
  full_view_ = std::make_shared<const Graph>(std::move(full));
}

DualGraph::DualGraph(CsrGraph reliable, CsrGraph full, NodeId source)
    : g_csr_(std::move(reliable)),
      gp_csr_(std::move(full)),
      source_(source),
      lazy_(std::make_shared<std::mutex>()) {
  validate_and_index();
}

const Graph& DualGraph::g() const {
  if (!lazy_) return *reliable_view_;
  const std::lock_guard<std::mutex> lock(*lazy_);
  if (!reliable_view_) {
    reliable_view_ = std::make_shared<const Graph>(to_graph(g_csr_));
  }
  return *reliable_view_;
}

const Graph& DualGraph::g_prime() const {
  if (!lazy_) return *full_view_;
  const std::lock_guard<std::mutex> lock(*lazy_);
  if (!full_view_) {
    full_view_ = std::make_shared<const Graph>(to_graph(gp_csr_));
  }
  return *full_view_;
}

DualGraph make_classical(Graph g, NodeId source) {
  Graph copy = g;
  return DualGraph(std::move(copy), std::move(g), source);
}

}  // namespace dualrad
