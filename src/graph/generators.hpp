#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

/// \file generators.hpp
/// Plain-graph generators (single graphs; dual graph families live in
/// dual_builders.hpp). All generators produce nodes {0, ..., n-1}.
///
/// The deterministic classics come in two flavors sharing one emission
/// routine: the historical `Graph`-returning builders, and `*_csr` variants
/// that stream edges straight into a `CsrGraphBuilder` — same edge set, no
/// hash set, no per-node vectors — for networks too large for the `Graph`
/// representation. (The randomized generators stay `Graph`-only: they need
/// has_edge during construction.)

namespace dualrad::gen {

/// Complete undirected graph on n nodes.
[[nodiscard]] Graph clique(NodeId n);
[[nodiscard]] CsrGraph clique_csr(NodeId n);

/// Undirected path 0 - 1 - ... - n-1.
[[nodiscard]] Graph path(NodeId n);
[[nodiscard]] CsrGraph path_csr(NodeId n);

/// Undirected cycle.
[[nodiscard]] Graph cycle(NodeId n);
[[nodiscard]] CsrGraph cycle_csr(NodeId n);

/// Undirected star centered at node 0.
[[nodiscard]] Graph star(NodeId n);
[[nodiscard]] CsrGraph star_csr(NodeId n);

/// Complete layered undirected graph: nodes grouped into consecutive layers
/// of the given sizes; all intra-layer edges and all edges between adjacent
/// layers are present. (The reliable graph of the Theorem 12 construction is
/// of this form.)
[[nodiscard]] Graph complete_layered(const std::vector<NodeId>& layer_sizes);
[[nodiscard]] CsrGraph complete_layered_csr(
    const std::vector<NodeId>& layer_sizes);

/// Directed complete layered graph: every node of layer i has edges to every
/// node of layer i+1 (forward only, no intra-layer edges).
[[nodiscard]] Graph directed_layered(const std::vector<NodeId>& layer_sizes);

/// Erdos-Renyi G(n, p) undirected, made connected by first adding a random
/// spanning tree (uniform attachment).
[[nodiscard]] Graph gnp_connected(NodeId n, double p, std::uint64_t seed);

/// Random spanning tree on n nodes (uniform-attachment construction).
[[nodiscard]] Graph random_tree(NodeId n, std::uint64_t seed);

/// 2D grid graph of width x height nodes (undirected, 4-neighborhood).
[[nodiscard]] Graph grid(NodeId width, NodeId height);
[[nodiscard]] CsrGraph grid_csr(NodeId width, NodeId height);

/// Node index ranges per layer for the layered generators: layer i occupies
/// [offsets[i], offsets[i+1]).
[[nodiscard]] std::vector<NodeId> layer_offsets(
    const std::vector<NodeId>& layer_sizes);

}  // namespace dualrad::gen
