#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file algorithms.hpp
/// Graph algorithms used throughout: BFS distances, reachability, diameter,
/// and the k-broadcastability distance bound of Section 3.

namespace dualrad::graphalg {

/// BFS distances from `source` along directed edges. Unreachable nodes get
/// dualrad::kNever (-1).
[[nodiscard]] std::vector<Round> bfs_distances(const Graph& g, NodeId source);
[[nodiscard]] std::vector<Round> bfs_distances(const CsrGraph& g,
                                               NodeId source);

/// True iff every node is reachable from `source`.
[[nodiscard]] bool all_reachable(const Graph& g, NodeId source);
[[nodiscard]] bool all_reachable(const CsrGraph& g, NodeId source);

/// Nodes reachable from `source` (including `source`).
[[nodiscard]] std::vector<NodeId> reachable_set(const Graph& g, NodeId source);

/// Eccentricity of `source`: max finite BFS distance; kNever if some node is
/// unreachable.
[[nodiscard]] Round eccentricity(const Graph& g, NodeId source);

/// Directed diameter: max over all ordered pairs of the BFS distance;
/// kNever if the graph is not strongly connected.
[[nodiscard]] Round diameter(const Graph& g);

/// True iff the undirected closure of g is connected.
[[nodiscard]] bool weakly_connected(const Graph& g);

}  // namespace dualrad::graphalg
